// Prefixpipeline: pipelined parallel-prefix operations (Section 4.2 of
// the paper). A chain of workers holds local partial results x_0..x_N;
// every round, worker i must learn y_i = x_0 + ... + x_i (think
// running totals of partitioned counters, or carry propagation in
// big-integer pipelines). The example builds a prefix platform, prices
// the chain allocation scheme, and demonstrates the Theorem 5
// NP-hardness gadget: deciding whether period 1 is reachable encodes
// MINIMUM-SET-COVER.
package main

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/prefix"
	"repro/internal/setcover"
)

func main() {
	log.SetFlags(0)

	// A 6-worker chain with heterogeneous links and CPUs.
	g := graph.New()
	workers := g.AddNodes("w", 6)
	linkCosts := []float64{0.2, 0.4, 0.1, 0.3, 0.2}
	for i, c := range linkCosts {
		g.AddEdge(workers[i], workers[i+1], c)
	}
	compute := make([]float64, g.NumNodes())
	for i := range compute {
		compute[i] = 0.15 + 0.05*float64(i%3)
	}
	platform := &prefix.Platform{
		G:            g,
		Participants: workers,
		Compute:      compute,
		Size:         prefix.UnitSize,
		Work:         prefix.UnitWork,
	}
	scheme, err := prefix.ChainScheme(platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chain prefix over %d workers: steady-state period %.3f (%.2f prefixes per 10 time units)\n",
		len(workers), scheme.Period(), 10/scheme.Period())
	for i, w := range workers {
		fmt.Printf("  w%d: send %.3f  recv %.3f  compute %.3f\n",
			i, scheme.SendTime(w), scheme.RecvTime(w), scheme.CompTime(w))
	}

	// The Theorem 5 gadget: pipelined prefix scheduling hides set cover.
	ins := setcover.PaperExample()
	cover, err := setcover.Exact(ins)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 5 gadget from the Figure 2 set-cover instance (K* = %d):\n", len(cover))
	for _, b := range []int{len(cover), len(cover) - 1} {
		r, err := prefix.Reduce(ins, b)
		if err != nil {
			log.Fatal(err)
		}
		s, err := r.CoverScheme(cover)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  bound B=%d: best-known scheme period %.3f\n", b, s.Period())
	}
	fmt.Println("period 1 is reachable iff a cover of size <= B exists — the scheduling problem is NP-complete")
}
