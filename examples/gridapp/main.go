// Gridapp: the paper's motivating scenario — a data-parallel
// application on a hierarchical grid platform multicasts a long series
// of same-size input blocks from the master to the subset of workers
// holding replicas. Pipelined steady-state throughput, not per-message
// makespan, decides how fast the whole computation is fed.
//
// The example generates a Tiers-like "small" platform, draws a worker
// set among the LAN hosts, compares all heuristics against the LP
// bounds, and reports the effective input bandwidth each schedule
// sustains.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro/internal/heur"
	"repro/internal/steady"
	"repro/internal/tiers"
)

func main() {
	log.SetFlags(0)

	platform, err := tiers.Generate(tiers.Small(42))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	workers := platform.RandomTargets(rng, 0.5)
	fmt.Printf("grid platform: %d nodes, %d links; master %s feeds %d replica workers\n\n",
		platform.G.NumNodes(), platform.G.NumEdges()/2, platform.G.Name(platform.Source), len(workers))

	problem, err := steady.NewProblem(platform.G, platform.Source, workers)
	if err != nil {
		log.Fatal(err)
	}
	ub, err := steady.ScatterUB(problem)
	if err != nil {
		log.Fatal(err)
	}
	lb, err := steady.MulticastLB(problem)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintf(w, "strategy\tperiod\tblocks/1000 time units\tvs lower bound\n")
	row := func(name string, period float64) {
		fmt.Fprintf(w, "%s\t%.1f\t%.2f\t%.3f\n", name, period, 1000/period, period/lb.Period)
	}
	row("scatter (no sharing)", ub.Period)
	row("theoretical lower bound", lb.Period)
	for _, h := range heur.All() {
		res, err := h.Run(problem)
		if err != nil {
			log.Fatalf("%s: %v", h.Name, err)
		}
		row(h.Name, res.Period)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe LP heuristics sit close to the bound; MCPH is nearly as good with no LP solves")
}
