// Quickstart: build a small heterogeneous platform, compute the
// steady-state multicast bounds, run a heuristic, and verify the
// resulting tree in the one-port simulator.
package main

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/heur"
	"repro/internal/sim"
	"repro/internal/steady"
	"repro/internal/tree"
)

func main() {
	log.SetFlags(0)

	// A source, a fast relay and three clients; the direct client link
	// is slow, the relayed ones are fast.
	g := graph.New()
	src := g.AddNode("source")
	relay := g.AddNode("relay")
	clients := g.AddNodes("client", 3)
	g.AddEdge(src, relay, 1)        // 1 time unit per message
	g.AddEdge(src, clients[0], 2.5) // slow direct link
	for _, c := range clients {
		g.AddEdge(relay, c, 0.5)
	}

	problem, err := steady.NewProblem(g, src, clients)
	if err != nil {
		log.Fatal(err)
	}

	// The two LP bounds of the paper: scatter (achievable) and the
	// optimistic lower bound on the period.
	ub, err := steady.ScatterUB(problem)
	if err != nil {
		log.Fatal(err)
	}
	lb, err := steady.MulticastLB(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scatter bound:  period %.3f (throughput %.3f)\n", ub.Period, ub.Throughput())
	fmt.Printf("lower bound:    period %.3f (throughput %.3f)\n", lb.Period, lb.Throughput())

	// MCPH builds a single pipelined multicast tree.
	res, err := heur.MCPH(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MCPH tree:      period %.3f (throughput %.3f)\n", res.Period, res.Throughput())

	// Simulate 100 pipelined multicasts through that tree under the
	// one-port model and measure the sustained rate.
	report, err := sim.Run(g, src, clients, []tree.WeightedTree{
		{Tree: res.Tree, Rate: res.Throughput()},
	}, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated:      throughput %.3f over %d messages (%d transfers)\n",
		report.Throughput, report.Messages, report.Transfers)
}
