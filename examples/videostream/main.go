// Videostream: replicate a live stream to a subset of edge hosts.
//
// A content origin pushes a continuous sequence of fixed-size video
// segments to the region caches that currently serve viewers — a
// pipelined multicast to a strict subset of the platform. The example
// compares the naive strategies an operator might try (unicast to every
// cache, flooding everyone) against the paper's heuristics, and turns
// the best tree into an explicit conflict-free periodic transmission
// timetable.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/graph"
	"repro/internal/heur"
	"repro/internal/sched"
	"repro/internal/steady"
	"repro/internal/tree"
)

func main() {
	log.SetFlags(0)

	// Origin, two regional hubs, six edge caches. Cross-region links
	// are slow; intra-region fan-out is fast. Three caches currently
	// have viewers.
	g := graph.New()
	origin := g.AddNode("origin")
	hubs := []graph.NodeID{g.AddNode("hub-eu"), g.AddNode("hub-us")}
	var caches []graph.NodeID
	for i := 0; i < 6; i++ {
		caches = append(caches, g.AddNode(fmt.Sprintf("cache%d", i)))
	}
	g.AddEdge(origin, hubs[0], 1)
	g.AddEdge(origin, hubs[1], 2)
	g.AddLink(hubs[0], hubs[1], 3)
	for i, c := range caches {
		hub := hubs[i/3]
		g.AddLink(hub, c, 0.5)
		if i%3 == 0 {
			g.AddEdge(origin, c, 4) // slow direct backup path
		}
	}
	active := []graph.NodeID{caches[0], caches[2], caches[4]} // viewers here

	problem, err := steady.NewProblem(g, origin, active)
	if err != nil {
		log.Fatal(err)
	}

	ub, err := steady.ScatterUB(problem)
	if err != nil {
		log.Fatal(err)
	}
	lb, err := steady.MulticastLB(problem)
	if err != nil {
		log.Fatal(err)
	}
	bc, err := steady.BroadcastEB(g, origin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segments per 10 time units, origin -> %d active caches:\n", len(active))
	fmt.Printf("  %-28s %6.2f\n", "unicast to each cache (scatter)", 10/ub.Period)
	fmt.Printf("  %-28s %6.2f\n", "flood everyone (broadcast)", 10/bc.Period)

	best := ""
	bestPeriod := bc.Period
	for _, h := range heur.All() {
		res, err := h.Run(problem)
		if err != nil {
			log.Fatalf("%s: %v", h.Name, err)
		}
		fmt.Printf("  %-28s %6.2f\n", h.Name, 10/res.Period)
		if res.Period < bestPeriod {
			best, bestPeriod = h.Name, res.Period
		}
	}
	fmt.Printf("  %-28s %6.2f (not always reachable)\n", "theoretical bound", 10/lb.Period)
	fmt.Printf("\nbest heuristic: %s (period %.2f)\n", best, bestPeriod)

	// Turn the MCPH tree into an explicit periodic timetable: which
	// link transmits when, with no port ever double-booked.
	res, err := heur.MCPH(problem)
	if err != nil {
		log.Fatal(err)
	}
	tt, err := sched.FromTrees(g, []tree.WeightedTree{
		{Tree: res.Tree, Rate: res.Throughput()},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMCPH periodic timetable (period %.2f):\n", tt.Period)
	slots := tt.Slots
	sort.Slice(slots, func(i, j int) bool { return slots[i].Start < slots[j].Start })
	for _, s := range slots {
		e := g.Edge(s.EdgeID)
		fmt.Printf("  t=%.3f..%.3f  %s -> %s\n", s.Start, s.Start+s.Length, g.Name(e.From), g.Name(e.To))
	}
}
