// Planclient: talk to the mcastd planning daemon over HTTP — upload a
// platform once, then request multicast plans against it by ID and
// watch the cache and coalescer do their work.
//
// By default the example starts an in-process daemon on a loopback
// listener so it is self-contained; point it at a running daemon with
//
//	go run ./examples/planclient -addr http://localhost:8723
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "", "base URL of a running mcastd (empty starts one in-process)")
	flag.Parse()

	base := *addr
	if base == "" {
		ts := httptest.NewServer(repro.NewPlanServer(repro.ServeConfig{Shards: 2}))
		defer ts.Close()
		base = ts.URL
		fmt.Printf("started in-process daemon at %s\n\n", base)
	}

	// The quickstart platform: a fast relay in front of three clients.
	platform := `
node source
edge source relay 1
edge source client0 2.5
edge relay client0 0.5
edge relay client1 0.5
edge relay client2 0.5
`
	up := post(base+"/v1/platforms", repro.PlatformUpload{
		ID: "quickstart", Platform: platform, Source: "source",
	})
	fmt.Printf("uploaded platform: %s\n\n", up)

	req := repro.PlanRequest{
		PlatformID: "quickstart",
		Targets:    []string{"client0", "client1", "client2"},
	}
	fmt.Println("plan (computed):")
	fmt.Println(indent(post(base+"/v1/plan", req)))

	// The identical request again: served from the plan cache,
	// byte-identical body (check the X-Mcastd-Cache header).
	fmt.Println("plan again (cache hit, same bytes):")
	fmt.Println(indent(post(base+"/v1/plan", req)))

	stats := get(base + "/v1/stats")
	fmt.Println("stats:")
	fmt.Println(indent(stats))
}

func post(url string, body any) string {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		log.Fatalf("%s: %d %s", url, resp.StatusCode, out)
	}
	if how := resp.Header.Get("X-Mcastd-Cache"); how != "" {
		fmt.Printf("  (served: %s)\n", how)
	}
	return strings.TrimSpace(string(out))
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return strings.TrimSpace(string(out))
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
