// Planclient: talk to the mcastd planning daemon through the typed
// client — upload a platform once, request an interactive plan, stream
// a batch, and run the same batch as an async job with a resumable
// result stream.
//
// By default the example starts an in-process daemon on a loopback
// listener so it is self-contained; point it at a running daemon with
//
//	go run ./examples/planclient -addr http://localhost:8723
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "", "base URL of a running mcastd (empty starts one in-process)")
	flag.Parse()

	base := *addr
	if base == "" {
		ts := httptest.NewServer(repro.NewPlanServer(repro.ServeConfig{Shards: 2}))
		defer ts.Close()
		base = ts.URL
		fmt.Printf("started in-process daemon at %s\n\n", base)
	}
	c := repro.NewClient(base, nil)
	ctx := context.Background()

	// The quickstart platform: a fast relay in front of three clients.
	platform := `
node source
edge source relay 1
edge source client0 2.5
edge relay client0 0.5
edge relay client1 0.5
edge relay client2 0.5
`
	up, err := c.UploadPlatform(ctx, &repro.PlatformUpload{
		ID: "quickstart", Platform: platform, Source: "source",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded platform %s (%d nodes, %d edges)\n\n", up.ID, up.Nodes, up.Edges)

	// One interactive plan. Running it twice would be a cache hit with a
	// byte-identical body (check the X-Mcastd-Cache header via PlanRaw).
	plan, err := c.Plan(ctx, &repro.PlanRequest{PlanSpec: repro.PlanSpec{
		PlatformID: "quickstart",
		Targets:    []string{"client0", "client1", "client2"},
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan bounds:")
	for _, b := range plan.Bounds {
		fmt.Printf("  %-22s throughput %g\n", b.Name, b.Throughput)
	}

	// The same work as a batch: shared platform and source at the batch
	// level, per-item target sets, one NDJSON line per item in
	// submission order.
	batch := &repro.BatchRequest{
		PlanSpec: repro.PlanSpec{PlatformID: "quickstart"},
		Items: []repro.BatchItem{
			{PlanSpec: repro.PlanSpec{Targets: []string{"client0"}}},
			{PlanSpec: repro.PlanSpec{Targets: []string{"client1", "client2"}}},
			{PlanSpec: repro.PlanSpec{Targets: []string{"client0", "client1", "client2"}}},
		},
	}
	fmt.Println("\nbatch stream:")
	err = c.PlanBatch(ctx, batch, func(line repro.BatchLine) error {
		switch {
		case line.Kind == "summary":
			fmt.Printf("  summary: %d items, %d errors\n", line.Items, line.ErrorCount)
		case line.Error != nil:
			fmt.Printf("  item %d: error %s: %s\n", line.Index, line.Error.Code, line.Error.Message)
		default:
			fmt.Printf("  item %d: %d targets, %d bounds\n",
				line.Index, len(line.Plan.Targets), len(line.Plan.Bounds))
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// The identical batch as an async job: submit, poll to completion,
	// then fetch the result stream — byte-identical to the synchronous
	// batch response above, resumable from any byte offset.
	job, err := c.SubmitJob(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubmitted %s (%d items)\n", job.ID, job.Items)
	for job.State == "running" {
		time.Sleep(10 * time.Millisecond)
		if job, err = c.Job(ctx, job.ID); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("job %s: %s, %d/%d items, %d bytes of results\n",
		job.ID, job.State, job.Completed, job.Items, job.Bytes)
	fmt.Println("job stream (same bytes as the batch endpoint):")
	if _, err := c.StreamJob(ctx, job.ID, 0, indentWriter{}); err != nil {
		log.Fatal(err)
	}
}

// indentWriter prints stream chunks two-space indented.
type indentWriter struct{}

func (indentWriter) Write(p []byte) (int, error) {
	for _, line := range splitLines(p) {
		fmt.Printf("  %s\n", line)
	}
	return len(p), nil
}

func splitLines(p []byte) []string {
	var out []string
	start := 0
	for i, b := range p {
		if b == '\n' {
			out = append(out, string(p[start:i]))
			start = i + 1
		}
	}
	if start < len(p) {
		out = append(out, string(p[start:]))
	}
	return out
}
