// Resilience: stream a what-if analysis from the mcastd planning
// daemon — upload a platform, then POST /v1/whatif and watch the
// per-scenario NDJSON lines arrive as the shard pool evaluates node
// failures, link failures and source promotions on warm-started
// evaluator clones, followed by the criticality summary.
//
// By default the example starts an in-process daemon on a loopback
// listener so it is self-contained; point it at a running daemon with
//
//	go run ./examples/resilience -addr http://localhost:8723
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"repro"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "", "base URL of a running mcastd (empty starts one in-process)")
	flag.Parse()

	base := *addr
	if base == "" {
		ts := httptest.NewServer(repro.NewPlanServer(repro.ServeConfig{Shards: 2}))
		defer ts.Close()
		base = ts.URL
		fmt.Printf("started in-process daemon at %s\n\n", base)
	}

	// The quickstart platform: a fast relay in front of three clients,
	// plus a slow direct backup link to client0 only.
	platform := `
node source
edge source relay 1
edge source client0 2.5
edge relay client0 0.5
edge relay client1 0.5
edge relay client2 0.5
`
	post(base+"/v1/platforms", repro.PlatformUpload{
		ID: "quickstart", Platform: platform, Source: "source",
	})

	req := repro.WhatifRequest{
		PlanSpec: repro.PlanSpec{
			PlatformID: "quickstart",
			Targets:    []string{"client0", "client1", "client2"},
		},
		EdgeFactors: []float64{0, 4}, // every link failure, every link 4x slower
	}
	data, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/whatif", "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("whatif: %s", resp.Status)
	}

	// Stream the NDJSON lines as they arrive: baseline, one line per
	// scenario in deterministic order, then the summary.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			Kind          string                     `json:"kind"`
			Scenarios     int                        `json:"scenarios"`
			LBPeriod      float64                    `json:"lb_period"`
			Node          string                     `json:"node"`
			Factor        float64                    `json:"factor"`
			Delta         float64                    `json:"delta"`
			Infeasible    bool                       `json:"infeasible"`
			TreeSurvives  bool                       `json:"tree_survives"`
			TreeSurviving int                        `json:"tree_surviving"`
			Edge          *struct{ From, To string } `json:"edge"`
			CriticalNodes []struct {
				Node  string  `json:"node"`
				Delta float64 `json:"delta"`
			} `json:"critical_nodes"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			log.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		switch line.Kind {
		case "baseline":
			fmt.Printf("baseline: LB period %.3f, %d scenarios queued\n", line.LBPeriod, line.Scenarios)
		case "summary":
			fmt.Printf("summary: MCPH tree survives %d/%d scenarios\n", line.TreeSurviving, line.Scenarios)
			for _, rk := range line.CriticalNodes {
				fmt.Printf("  critical node %-8s delta %+.4f\n", rk.Node, rk.Delta)
			}
		default:
			what := line.Node
			if line.Edge != nil {
				what = line.Edge.From + "->" + line.Edge.To
				if line.Factor != 0 {
					what += fmt.Sprintf(" x%g", line.Factor)
				}
			}
			note := ""
			if line.Infeasible {
				note = "  [multicast infeasible]"
			} else if !line.TreeSurvives {
				note = "  [tree dies]"
			}
			fmt.Printf("  %-14s %-18s delta %+.4f%s\n", line.Kind, what, line.Delta, note)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

func post(url string, body any) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		log.Fatalf("%s: %s %s", url, resp.Status, out)
	}
	fmt.Printf("uploaded platform (%s)\n", resp.Status)
}
