// Command mcast analyses a Series-of-Multicasts instance: it loads a
// platform (from a file in the graph text format, or a generated
// Tiers-like topology), computes the paper's LP bounds, runs the
// heuristics, and optionally the exact optimum on small instances.
//
// Usage:
//
//	mcast -platform file.graph -source S -targets a,b,c [-exact] [-dot out.dot]
//	mcast -tiers small -seed 1 -density 0.4 [-exact]
//	mcast -tiers small -seed 1 -whatif [-whatif-factors 0,4]
//
// -whatif runs the resilience engine after the bounds and heuristics:
// every node failure, the per-edge scenarios of -whatif-factors (0 is
// a link failure, f > 1 multiplies the edge cost), and every source
// promotion, each warm-started from the baseline solve, then prints
// the criticality ranking.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/heur"
	"repro/internal/steady"
	"repro/internal/tiers"
	"repro/internal/tree"
	"repro/internal/whatif"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcast: ")
	var (
		platformFile = flag.String("platform", "", "platform file in the graph text format")
		sourceName   = flag.String("source", "", "source node name (with -platform)")
		targetNames  = flag.String("targets", "", "comma-separated target node names (with -platform)")
		tiersSize    = flag.String("tiers", "", `generate a Tiers-like platform: "small" or "big"`)
		seed         = flag.Int64("seed", 1, "random seed (with -tiers)")
		density      = flag.Float64("density", 0.4, "target density over LAN hosts (with -tiers)")
		exact        = flag.Bool("exact", false, "also compute the exact optimum (exponential; small instances only)")
		dotFile      = flag.String("dot", "", "write the platform as Graphviz DOT to this file")
		doWhatif     = flag.Bool("whatif", false, "run the resilience engine (node/edge failures, source promotions)")
		whatifFacts  = flag.String("whatif-factors", "0", "comma-separated per-edge scenario factors for -whatif (0 = link failure)")
	)
	flag.Parse()

	g, source, targets, err := load(*platformFile, *sourceName, *targetNames, *tiersSize, *seed, *density)
	if err != nil {
		log.Fatal(err)
	}
	p, err := steady.NewProblem(g, source, targets)
	if err != nil {
		log.Fatal(err)
	}
	if *dotFile != "" {
		if err := os.WriteFile(*dotFile, []byte(g.DOT("platform", targets)), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("platform: %d nodes, %d edges, %d targets\n", g.NumActive(), len(g.ActiveEdges()), len(targets))

	ub, err := steady.ScatterUB(p)
	if err != nil {
		log.Fatal(err)
	}
	lb, err := steady.MulticastLB(p)
	if err != nil {
		log.Fatal(err)
	}
	bc, err := steady.BroadcastEB(g, source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s period %10.4f  throughput %.6f\n", "scatter (Multicast-UB)", ub.Period, ub.Throughput())
	fmt.Printf("%-22s period %10.4f  throughput %.6f\n", "bound (Multicast-LB)", lb.Period, lb.Throughput())
	fmt.Printf("%-22s period %10.4f  throughput %.6f\n", "broadcast (EB)", bc.Period, bc.Throughput())

	for _, h := range heur.All() {
		res, err := h.Run(p)
		if err != nil {
			log.Fatalf("%s: %v", h.Name, err)
		}
		extra := ""
		switch {
		case res.Tree != nil:
			extra = fmt.Sprintf("  (tree with %d edges)", len(res.Tree.Edges))
		case len(res.Sources) > 0:
			var names []string
			for _, s := range res.Sources {
				names = append(names, g.Name(s))
			}
			extra = "  (sources: " + strings.Join(names, ", ") + ")"
		case res.Kept != nil:
			extra = fmt.Sprintf("  (%d nodes kept)", len(res.Kept))
		}
		fmt.Printf("%-22s period %10.4f  throughput %.6f%s\n", h.Name, res.Period, res.Throughput(), extra)
	}

	if *exact {
		pk, err := tree.PackOptimal(g, source, targets)
		if err != nil {
			log.Fatalf("exact: %v", err)
		}
		fmt.Printf("%-22s period %10.4f  throughput %.6f  (%d trees)\n",
			"exact (tree packing)", pk.Period(), pk.Throughput, len(pk.Trees))
	}

	if *doWhatif {
		if err := runWhatif(p, *whatifFacts); err != nil {
			log.Fatalf("whatif: %v", err)
		}
	}
}

// runWhatif runs the resilience engine and prints the criticality
// report.
func runWhatif(p steady.Problem, factorList string) error {
	cfg := whatif.DefaultConfig()
	cfg.EdgeFactors = nil
	for _, f := range strings.Split(factorList, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return fmt.Errorf("bad -whatif-factors entry %q", f)
		}
		cfg.EdgeFactors = append(cfg.EdgeFactors, v)
	}
	rep, err := whatif.Analyze(p, cfg)
	if err != nil {
		return err
	}
	g := p.G
	fmt.Printf("\nwhat-if: %d scenarios (baseline LB period %.4f, MCPH tree period %.4f)\n",
		len(rep.Results), rep.Baseline.LB.Period, rep.Baseline.TreePeriod)
	fmt.Printf("MCPH tree survives %d/%d scenarios\n", rep.Surviving, len(rep.Results))
	if rep.FastPathScenarios > 0 {
		fmt.Printf("tree fast path answered %d/%d scenarios\n", rep.FastPathScenarios, len(rep.Results))
	}

	const top = 5
	fmt.Println("most critical nodes (throughput delta when failed):")
	for i, rk := range rep.CriticalNodes {
		if i == top {
			break
		}
		fmt.Printf("  %-12s %+.6f%s\n", g.Name(rk.Node), rk.Delta, infTag(rk.Infeasible))
	}
	fmt.Println("most critical edges (worst throughput delta across factors):")
	for i, rk := range rep.CriticalEdges {
		if i == top {
			break
		}
		e := g.Edge(rk.Edge)
		fmt.Printf("  %s -> %-8s %+.6f%s\n", g.Name(e.From), g.Name(e.To), rk.Delta, infTag(rk.Infeasible))
	}
	best := -1
	for i, r := range rep.Results {
		if r.Kind == whatif.KindPromoteSource && r.Err == nil &&
			(best < 0 || r.Delta > rep.Results[best].Delta) {
			best = i
		}
	}
	if best >= 0 {
		r := rep.Results[best]
		fmt.Printf("best source promotion: %s (%+.6f throughput)\n", g.Name(r.Node), r.Delta)
	}
	fmt.Printf("solver: baseline %v; scenarios %v\n", rep.BaselineStats, rep.ScenarioStats)
	return nil
}

func infTag(inf bool) string {
	if inf {
		return "  (multicast infeasible)"
	}
	return ""
}

func load(file, sourceName, targetNames, tiersSize string, seed int64, density float64) (*graph.Graph, graph.NodeID, []graph.NodeID, error) {
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, 0, nil, err
		}
		defer f.Close()
		g, err := graph.Decode(f)
		if err != nil {
			return nil, 0, nil, err
		}
		source, ok := g.NodeByName(sourceName)
		if !ok {
			return nil, 0, nil, fmt.Errorf("unknown source node %q", sourceName)
		}
		if targetNames == "" {
			return nil, 0, nil, fmt.Errorf("-targets required with -platform")
		}
		var targets []graph.NodeID
		for _, name := range strings.Split(targetNames, ",") {
			t, ok := g.NodeByName(strings.TrimSpace(name))
			if !ok {
				return nil, 0, nil, fmt.Errorf("unknown target node %q", name)
			}
			targets = append(targets, t)
		}
		return g, source, targets, nil
	case tiersSize != "":
		var cfg tiers.Config
		switch tiersSize {
		case "small":
			cfg = tiers.Small(seed)
		case "big":
			cfg = tiers.Big(seed)
		default:
			return nil, 0, nil, fmt.Errorf("unknown tiers size %q", tiersSize)
		}
		pl, err := tiers.Generate(cfg)
		if err != nil {
			return nil, 0, nil, err
		}
		// Target drawing shares the sweep engine's splitmix64 seeding path,
		// so `mcast -tiers -seed N` reproduces the same target set on every
		// go version (rand.NewSource(seed) alone is version-stable too, but
		// the raw seed correlates neighbouring -seed runs; DeriveSeed
		// scrambles them the same way neighbouring sweep tasks are).
		rng := exp.NewRNG(seed, 0)
		return pl.G, pl.Source, pl.RandomTargets(rng, density), nil
	default:
		return nil, 0, nil, fmt.Errorf("need -platform or -tiers (see -help)")
	}
}
