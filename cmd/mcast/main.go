// Command mcast analyses a Series-of-Multicasts instance: it loads a
// platform (from a file in the graph text format, or a generated
// Tiers-like topology), computes the paper's LP bounds, runs the
// heuristics, and optionally the exact optimum on small instances.
//
// Usage:
//
//	mcast -platform file.graph -source S -targets a,b,c [-exact] [-dot out.dot]
//	mcast -tiers small -seed 1 -density 0.4 [-exact]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/heur"
	"repro/internal/steady"
	"repro/internal/tiers"
	"repro/internal/tree"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcast: ")
	var (
		platformFile = flag.String("platform", "", "platform file in the graph text format")
		sourceName   = flag.String("source", "", "source node name (with -platform)")
		targetNames  = flag.String("targets", "", "comma-separated target node names (with -platform)")
		tiersSize    = flag.String("tiers", "", `generate a Tiers-like platform: "small" or "big"`)
		seed         = flag.Int64("seed", 1, "random seed (with -tiers)")
		density      = flag.Float64("density", 0.4, "target density over LAN hosts (with -tiers)")
		exact        = flag.Bool("exact", false, "also compute the exact optimum (exponential; small instances only)")
		dotFile      = flag.String("dot", "", "write the platform as Graphviz DOT to this file")
	)
	flag.Parse()

	g, source, targets, err := load(*platformFile, *sourceName, *targetNames, *tiersSize, *seed, *density)
	if err != nil {
		log.Fatal(err)
	}
	p, err := steady.NewProblem(g, source, targets)
	if err != nil {
		log.Fatal(err)
	}
	if *dotFile != "" {
		if err := os.WriteFile(*dotFile, []byte(g.DOT("platform", targets)), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("platform: %d nodes, %d edges, %d targets\n", g.NumActive(), len(g.ActiveEdges()), len(targets))

	ub, err := steady.ScatterUB(p)
	if err != nil {
		log.Fatal(err)
	}
	lb, err := steady.MulticastLB(p)
	if err != nil {
		log.Fatal(err)
	}
	bc, err := steady.BroadcastEB(g, source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s period %10.4f  throughput %.6f\n", "scatter (Multicast-UB)", ub.Period, ub.Throughput())
	fmt.Printf("%-22s period %10.4f  throughput %.6f\n", "bound (Multicast-LB)", lb.Period, lb.Throughput())
	fmt.Printf("%-22s period %10.4f  throughput %.6f\n", "broadcast (EB)", bc.Period, bc.Throughput())

	for _, h := range heur.All() {
		res, err := h.Run(p)
		if err != nil {
			log.Fatalf("%s: %v", h.Name, err)
		}
		extra := ""
		switch {
		case res.Tree != nil:
			extra = fmt.Sprintf("  (tree with %d edges)", len(res.Tree.Edges))
		case len(res.Sources) > 0:
			var names []string
			for _, s := range res.Sources {
				names = append(names, g.Name(s))
			}
			extra = "  (sources: " + strings.Join(names, ", ") + ")"
		case res.Kept != nil:
			extra = fmt.Sprintf("  (%d nodes kept)", len(res.Kept))
		}
		fmt.Printf("%-22s period %10.4f  throughput %.6f%s\n", h.Name, res.Period, res.Throughput(), extra)
	}

	if *exact {
		pk, err := tree.PackOptimal(g, source, targets)
		if err != nil {
			log.Fatalf("exact: %v", err)
		}
		fmt.Printf("%-22s period %10.4f  throughput %.6f  (%d trees)\n",
			"exact (tree packing)", pk.Period(), pk.Throughput, len(pk.Trees))
	}
}

func load(file, sourceName, targetNames, tiersSize string, seed int64, density float64) (*graph.Graph, graph.NodeID, []graph.NodeID, error) {
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, 0, nil, err
		}
		defer f.Close()
		g, err := graph.Decode(f)
		if err != nil {
			return nil, 0, nil, err
		}
		source, ok := g.NodeByName(sourceName)
		if !ok {
			return nil, 0, nil, fmt.Errorf("unknown source node %q", sourceName)
		}
		if targetNames == "" {
			return nil, 0, nil, fmt.Errorf("-targets required with -platform")
		}
		var targets []graph.NodeID
		for _, name := range strings.Split(targetNames, ",") {
			t, ok := g.NodeByName(strings.TrimSpace(name))
			if !ok {
				return nil, 0, nil, fmt.Errorf("unknown target node %q", name)
			}
			targets = append(targets, t)
		}
		return g, source, targets, nil
	case tiersSize != "":
		var cfg tiers.Config
		switch tiersSize {
		case "small":
			cfg = tiers.Small(seed)
		case "big":
			cfg = tiers.Big(seed)
		default:
			return nil, 0, nil, fmt.Errorf("unknown tiers size %q", tiersSize)
		}
		pl, err := tiers.Generate(cfg)
		if err != nil {
			return nil, 0, nil, err
		}
		// Target drawing shares the sweep engine's splitmix64 seeding path,
		// so `mcast -tiers -seed N` reproduces the same target set on every
		// go version (rand.NewSource(seed) alone is version-stable too, but
		// the raw seed correlates neighbouring -seed runs; DeriveSeed
		// scrambles them the same way neighbouring sweep tasks are).
		rng := exp.NewRNG(seed, 0)
		return pl.G, pl.Source, pl.RandomTargets(rng, density), nil
	default:
		return nil, 0, nil, fmt.Errorf("need -platform or -tiers (see -help)")
	}
}
