// Command tiersgen generates Tiers-like hierarchical platforms (the
// topology model of the paper's simulation study) and prints them in
// the graph text format or as Graphviz DOT.
//
// Usage:
//
//	tiersgen -size small -seed 7            # text format on stdout
//	tiersgen -size big -seed 3 -format dot  # DOT with LAN hosts shaded
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/tiers"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tiersgen: ")
	var (
		size   = flag.String("size", "small", `platform preset: "small" (30 nodes) or "big" (65 nodes)`)
		seed   = flag.Int64("seed", 1, "random seed")
		format = flag.String("format", "text", `output format: "text" or "dot"`)
	)
	flag.Parse()

	var cfg tiers.Config
	switch *size {
	case "small":
		cfg = tiers.Small(*seed)
	case "big":
		cfg = tiers.Big(*seed)
	default:
		log.Fatalf("unknown size %q", *size)
	}
	p, err := tiers.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	switch *format {
	case "text":
		fmt.Printf("# tiers %s seed=%d: %d nodes (%d WAN, %d MAN, %d LAN), source %s\n",
			*size, *seed, p.G.NumNodes(), len(p.WAN), len(p.MAN), len(p.LAN), p.G.Name(p.Source))
		if err := p.G.Encode(os.Stdout); err != nil {
			log.Fatal(err)
		}
	case "dot":
		fmt.Print(p.G.DOT(fmt.Sprintf("tiers_%s_%d", *size, *seed), p.LAN))
	default:
		log.Fatalf("unknown format %q", *format)
	}
}
