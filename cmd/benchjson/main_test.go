package main

import (
	"reflect"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFigure1Example-8   	     100	  10000000 ns/op	         1.000 packing-thr	         0.6667 singletree-thr
BenchmarkMulticastLBWarmCuts 	       3	  34139002 ns/op	        12.00 lp-solves	       104.0 simplex-iters	        11.00 warm-solves
BenchmarkSimplexDense-8     	     500	    250000 ns/op	   16384 B/op	      42 allocs/op
PASS
ok  	repro	1.234s
`

func TestParse(t *testing.T) {
	entries, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{
		{
			Name: "BenchmarkFigure1Example", Iterations: 100, NsPerOp: 1e7,
			Metrics: map[string]float64{"packing-thr": 1, "singletree-thr": 0.6667},
		},
		{
			Name: "BenchmarkMulticastLBWarmCuts", Iterations: 3, NsPerOp: 34139002,
			Metrics: map[string]float64{"lp-solves": 12, "simplex-iters": 104, "warm-solves": 11},
		},
		{
			Name: "BenchmarkSimplexDense", Iterations: 500, NsPerOp: 250000,
			BytesPerOp: 16384, AllocsPerOp: 42,
		},
	}
	if !reflect.DeepEqual(entries, want) {
		t.Errorf("parsed entries:\ngot:  %+v\nwant: %+v", entries, want)
	}
}

func TestParseSkipsGarbage(t *testing.T) {
	entries, err := Parse(strings.NewReader("nothing here\nBenchmarkBroken xyz\nok\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("got %d entries from garbage input: %+v", len(entries), entries)
	}
}

func TestParseKeepsHyphenatedNames(t *testing.T) {
	// A trailing -N is a GOMAXPROCS suffix and must be stripped; an
	// interior hyphen that is not numeric must survive.
	entries, err := Parse(strings.NewReader("BenchmarkFoo-bar-16 1 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "BenchmarkFoo-bar" {
		t.Errorf("entries = %+v, want one entry named BenchmarkFoo-bar", entries)
	}
}

func entry(name string, ns float64) Entry {
	return Entry{Name: name, Iterations: 1, NsPerOp: ns}
}

func TestCompareFlagsRegressions(t *testing.T) {
	baseline := []Entry{
		entry("BenchmarkA", 10e6),
		entry("BenchmarkB", 10e6),
		entry("BenchmarkC", 10e6),
		entry("BenchmarkNoise", 1000), // below min-ns: never compared
		entry("BenchmarkGone", 10e6),
	}
	candidate := []Entry{
		entry("BenchmarkA", 12e6),    // +20%: within tolerance
		entry("BenchmarkB", 13e6),    // +30%: regression
		entry("BenchmarkC", 5e6),     // improvement
		entry("BenchmarkNoise", 1e9), // huge but skipped
		entry("BenchmarkNew", 10e6),  // not in baseline: ignored
	}
	report, regressions, removed := Compare(baseline, candidate, 0.25, 0.35, 1e6)
	if regressions != 1 {
		t.Fatalf("got %d regressions, want 1\n%s", regressions, strings.Join(report, "\n"))
	}
	if removed != 1 {
		t.Fatalf("got %d removed, want 1 (BenchmarkGone)\n%s", removed, strings.Join(report, "\n"))
	}
	var sawB, sawGone, sawNew, sawImproved bool
	for _, line := range report {
		if strings.Contains(line, "REGRESSION") && strings.Contains(line, "BenchmarkB") {
			sawB = true
		}
		if strings.Contains(line, "removed") && strings.Contains(line, "BenchmarkGone") {
			sawGone = true
		}
		if strings.Contains(line, "added") && strings.Contains(line, "BenchmarkNew") {
			sawNew = true
		}
		if strings.Contains(line, "improved") && strings.Contains(line, "BenchmarkC") {
			sawImproved = true
		}
		if strings.Contains(line, "BenchmarkNoise") && !strings.Contains(line, "compared") {
			t.Errorf("noise benchmark was compared: %s", line)
		}
	}
	if !sawB || !sawGone || !sawNew || !sawImproved {
		t.Errorf("report missing expected lines (B=%v gone=%v new=%v improved=%v):\n%s",
			sawB, sawGone, sawNew, sawImproved, strings.Join(report, "\n"))
	}
}

func TestCompareCleanRun(t *testing.T) {
	baseline := []Entry{entry("BenchmarkA", 10e6)}
	candidate := []Entry{entry("BenchmarkA", 10.1e6)}
	report, regressions, removed := Compare(baseline, candidate, 0.25, 0.35, 1e6)
	if regressions != 0 || removed != 0 {
		t.Errorf("clean run reported %d regressions, %d removed:\n%s",
			regressions, removed, strings.Join(report, "\n"))
	}
}

func entryB(name string, ns, bytes float64) Entry {
	return Entry{Name: name, Iterations: 1, NsPerOp: ns, BytesPerOp: bytes}
}

// TestCompareFlagsBytesRegressions: the bytes/op gate fires on
// allocation growth beyond its own tolerance, skips benchmarks without
// -benchmem data, and can be disabled with bytesTol <= 0.
func TestCompareFlagsBytesRegressions(t *testing.T) {
	baseline := []Entry{
		entryB("BenchmarkA", 10e6, 1e6),
		entryB("BenchmarkB", 10e6, 1e6),
		entry("BenchmarkNoBytes", 10e6),
	}
	candidate := []Entry{
		entryB("BenchmarkA", 10e6, 2e6),   // +100% bytes: regression
		entryB("BenchmarkB", 10e6, 1.2e6), // +20%: within tolerance
		entry("BenchmarkNoBytes", 10e6),   // no bytes on either side: skipped
	}
	report, regressions, _ := Compare(baseline, candidate, 0.25, 0.35, 1e6)
	if regressions != 1 {
		t.Fatalf("got %d regressions, want 1 (bytes/op on BenchmarkA)\n%s", regressions, strings.Join(report, "\n"))
	}
	saw := false
	for _, line := range report {
		if strings.Contains(line, "REGRESSION") && strings.Contains(line, "B/op") && strings.Contains(line, "BenchmarkA") {
			saw = true
		}
	}
	if !saw {
		t.Errorf("report missing the bytes/op regression line:\n%s", strings.Join(report, "\n"))
	}
	if _, regressions, _ = Compare(baseline, candidate, 0.25, 0, 1e6); regressions != 0 {
		t.Errorf("bytesTol=0 still reported %d regressions", regressions)
	}
}

// TestCompareFlagsMissingBytes: a candidate entry with no B/op where
// the baseline tracks allocations (the benchmark ran without
// -benchmem) must not silently pass the bytes gate — it is flagged and
// counted as coverage drift so -strict fails, while a benchmark with
// no bytes on either side stays a plain skip.
func TestCompareFlagsMissingBytes(t *testing.T) {
	baseline := []Entry{
		entryB("BenchmarkA", 10e6, 1e6),
		entry("BenchmarkNeverHadBytes", 10e6),
	}
	candidate := []Entry{
		entry("BenchmarkA", 10e6), // bytes coverage lost
		entry("BenchmarkNeverHadBytes", 10e6),
	}
	report, regressions, removed := Compare(baseline, candidate, 0.25, 0.35, 1e6)
	if regressions != 0 {
		t.Errorf("missing bytes misread as a regression (%d):\n%s", regressions, strings.Join(report, "\n"))
	}
	if removed != 1 {
		t.Errorf("got %d removed, want 1 (bytes coverage drift on BenchmarkA)\n%s", removed, strings.Join(report, "\n"))
	}
	saw := false
	for _, line := range report {
		if strings.Contains(line, "no bytes") {
			if strings.Contains(line, "BenchmarkNeverHadBytes") {
				t.Errorf("flagged a benchmark that never tracked bytes: %s", line)
			}
			if strings.Contains(line, "BenchmarkA") {
				saw = true
			}
		}
	}
	if !saw {
		t.Errorf("report missing the no-bytes line for BenchmarkA:\n%s", strings.Join(report, "\n"))
	}
	// Disabling the bytes gate disables the drift check with it.
	if _, _, removed = Compare(baseline, candidate, 0.25, 0, 1e6); removed != 0 {
		t.Errorf("bytesTol=0 still counted %d removed", removed)
	}
}

// TestCompareCountsRemovalsBelowMinNs: a removed benchmark counts as
// baseline drift even when its baseline timing sits below the noise
// floor — min-ns gates the timing comparison, not presence.
func TestCompareCountsRemovalsBelowMinNs(t *testing.T) {
	baseline := []Entry{entry("BenchmarkTiny", 1000), entry("BenchmarkBig", 10e6)}
	candidate := []Entry{entry("BenchmarkBig", 10e6)}
	_, regressions, removed := Compare(baseline, candidate, 0.25, 0.35, 1e6)
	if regressions != 0 || removed != 1 {
		t.Errorf("got %d regressions, %d removed, want 0 and 1", regressions, removed)
	}
}
