package main

import (
	"reflect"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFigure1Example-8   	     100	  10000000 ns/op	         1.000 packing-thr	         0.6667 singletree-thr
BenchmarkMulticastLBWarmCuts 	       3	  34139002 ns/op	        12.00 lp-solves	       104.0 simplex-iters	        11.00 warm-solves
BenchmarkSimplexDense-8     	     500	    250000 ns/op	   16384 B/op	      42 allocs/op
PASS
ok  	repro	1.234s
`

func TestParse(t *testing.T) {
	entries, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{
		{
			Name: "BenchmarkFigure1Example", Iterations: 100, NsPerOp: 1e7,
			Metrics: map[string]float64{"packing-thr": 1, "singletree-thr": 0.6667},
		},
		{
			Name: "BenchmarkMulticastLBWarmCuts", Iterations: 3, NsPerOp: 34139002,
			Metrics: map[string]float64{"lp-solves": 12, "simplex-iters": 104, "warm-solves": 11},
		},
		{
			Name: "BenchmarkSimplexDense", Iterations: 500, NsPerOp: 250000,
			BytesPerOp: 16384, AllocsPerOp: 42,
		},
	}
	if !reflect.DeepEqual(entries, want) {
		t.Errorf("parsed entries:\ngot:  %+v\nwant: %+v", entries, want)
	}
}

func TestParseSkipsGarbage(t *testing.T) {
	entries, err := Parse(strings.NewReader("nothing here\nBenchmarkBroken xyz\nok\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("got %d entries from garbage input: %+v", len(entries), entries)
	}
}

func TestParseKeepsHyphenatedNames(t *testing.T) {
	// A trailing -N is a GOMAXPROCS suffix and must be stripped; an
	// interior hyphen that is not numeric must survive.
	entries, err := Parse(strings.NewReader("BenchmarkFoo-bar-16 1 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "BenchmarkFoo-bar" {
		t.Errorf("entries = %+v, want one entry named BenchmarkFoo-bar", entries)
	}
}
