// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON file, so CI can track the performance
// trajectory (time, allocations and the solver's custom metrics such
// as simplex-iters and warm-solves) from run to run.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x -benchmem ./... | benchjson -o BENCH_sweep.json
//	benchjson -o BENCH_sweep.json bench.out
//	benchjson -compare [-tolerance 0.25] [-bytes-tolerance 0.35] [-min-ns 1000000] old.json new.json
//
// Every `BenchmarkName-P  N  <value> <unit> ...` line becomes one JSON
// object; ns/op, B/op and allocs/op map to fixed fields, and every
// other reported unit (the repo's benchmarks report reproduced paper
// quantities and solver statistics) lands in the metrics map.
//
// The -compare mode is CI's bench-regression guard: it exits non-zero
// when any benchmark present in both files has regressed its ns/op by
// more than -tolerance (relative) or its bytes/op by more than
// -bytes-tolerance against the committed baseline — allocation wins
// are locked in the same way timing wins are.
// Benchmarks faster than -min-ns in the baseline are skipped — at
// -benchtime=1x their timing is dominated by scheduler noise.
// Benchmarks present in only one of the two files are reported to
// stderr (added ones are informational; removed ones usually mean the
// committed baseline drifted after a rename), and -strict turns
// removals into failures so CI catches the drift instead of silently
// shrinking its coverage.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "BENCH_sweep.json", "output JSON file (\"-\" for stdout)")
	compare := flag.Bool("compare", false, "compare two JSON files (baseline, candidate) and fail on ns/op and bytes/op regressions")
	tolerance := flag.Float64("tolerance", 0.25, "relative ns/op regression allowed by -compare")
	bytesTol := flag.Float64("bytes-tolerance", 0.35, "relative bytes/op regression allowed by -compare (0 disables the bytes gate)")
	minNs := flag.Float64("min-ns", 1e6, "with -compare, skip benchmarks whose baseline ns/op is below this (timing noise)")
	strict := flag.Bool("strict", false, "with -compare, also fail when a baseline benchmark was not run (baseline drift)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("-compare wants exactly two arguments: baseline.json candidate.json")
		}
		old, err := loadEntries(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		cur, err := loadEntries(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		report, regressions, removed := Compare(old, cur, *tolerance, *bytesTol, *minNs)
		for _, line := range report {
			fmt.Fprintln(os.Stderr, line)
		}
		if regressions > 0 {
			log.Fatalf("%d benchmark(s) regressed (ns/op beyond %.0f%% or bytes/op beyond %.0f%%) vs %s",
				regressions, *tolerance*100, *bytesTol*100, flag.Arg(0))
		}
		if *strict && removed > 0 {
			log.Fatalf("%d baseline benchmark(s) lost coverage — not run, or run without -benchmem (-strict): update %s", removed, flag.Arg(0))
		}
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	entries, err := Parse(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(entries) == 0 {
		log.Fatal("no benchmark lines found in input")
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(entries), *out)
}

func loadEntries(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return entries, nil
}

// Compare checks the candidate entries against the baseline and
// returns a human-readable report plus the number of regressions —
// ns/op beyond tolerance, or bytes/op beyond bytesTol when both sides
// report allocation bytes (bytesTol <= 0 disables that gate) — and the
// number of baseline benchmarks whose coverage the candidate lost:
// either not run at all, or run without -benchmem when the baseline
// tracks B/op (a zero candidate bytes/op must not read as a win). Baseline
// entries below minNs are skipped (their single-iteration timings are
// noise; the bytes gate shares the filter because tiny benchmarks
// allocate per-call noise too). Benchmarks present in only one file
// are reported by name: removals usually mean the baseline drifted
// after a rename (-strict makes main fail on them), additions are new
// coverage the baseline does not track yet. Only a measured regression
// of a benchmark present in both files counts.
func Compare(baseline, candidate []Entry, tolerance, bytesTol, minNs float64) (report []string, regressions, removed int) {
	cur := make(map[string]Entry, len(candidate))
	for _, e := range candidate {
		cur[e.Name] = e
	}
	base := make(map[string]bool, len(baseline))
	skipped := 0
	for _, old := range baseline {
		base[old.Name] = true
		now, ok := cur[old.Name]
		if !ok {
			removed++
			report = append(report, fmt.Sprintf("removed: %s is in the baseline but was not run", old.Name))
			continue
		}
		if old.NsPerOp < minNs {
			skipped++
			continue
		}
		ratio := now.NsPerOp / old.NsPerOp
		switch {
		case ratio > 1+tolerance:
			regressions++
			report = append(report, fmt.Sprintf("REGRESSION: %s: %.0f ns/op -> %.0f ns/op (%+.1f%% > %.0f%%)",
				old.Name, old.NsPerOp, now.NsPerOp, (ratio-1)*100, tolerance*100))
		case ratio < 1-tolerance:
			report = append(report, fmt.Sprintf("improved: %s: %.0f ns/op -> %.0f ns/op (%+.1f%%)",
				old.Name, old.NsPerOp, now.NsPerOp, (ratio-1)*100))
		}
		if bytesTol > 0 && old.BytesPerOp > 0 && now.BytesPerOp == 0 {
			// The baseline tracks allocations but the candidate run
			// reported none — almost always a missing -benchmem. Treating
			// it as "no regression" would let the bytes gate silently
			// lose coverage, so it counts as drift (-strict fails on it)
			// instead of poisoning the ratio with a zero.
			removed++
			report = append(report, fmt.Sprintf("no bytes: %s has %.0f B/op in the baseline but the candidate reports none (missing -benchmem?)",
				old.Name, old.BytesPerOp))
		}
		if bytesTol > 0 && old.BytesPerOp > 0 && now.BytesPerOp > 0 {
			bratio := now.BytesPerOp / old.BytesPerOp
			switch {
			case bratio > 1+bytesTol:
				regressions++
				report = append(report, fmt.Sprintf("REGRESSION: %s: %.0f B/op -> %.0f B/op (%+.1f%% > %.0f%%)",
					old.Name, old.BytesPerOp, now.BytesPerOp, (bratio-1)*100, bytesTol*100))
			case bratio < 1-bytesTol:
				report = append(report, fmt.Sprintf("improved: %s: %.0f B/op -> %.0f B/op (%+.1f%%)",
					old.Name, old.BytesPerOp, now.BytesPerOp, (bratio-1)*100))
			}
		}
	}
	added := 0
	for _, e := range candidate {
		if !base[e.Name] {
			added++
			report = append(report, fmt.Sprintf("added: %s was run but is not in the baseline", e.Name))
		}
	}
	report = append(report, fmt.Sprintf("compared %d baseline benchmarks (%d below %.0fms skipped): %d regression(s), %d removed, %d added",
		len(baseline), skipped, minNs/1e6, regressions, removed, added))
	return report, regressions, removed
}

// Parse extracts benchmark entries from `go test -bench` output.
// Non-benchmark lines (headers, PASS/ok, compile chatter) are skipped.
func Parse(r io.Reader) ([]Entry, error) {
	var entries []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		e, ok := parseLine(line)
		if !ok {
			continue
		}
		entries = append(entries, e)
	}
	return entries, sc.Err()
}

// parseLine parses one line of the form
//
//	BenchmarkName-8   3   34139002 ns/op   104.0 simplex-iters   16 B/op   2 allocs/op
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Entry{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = val
		case "B/op":
			e.BytesPerOp = val
		case "allocs/op":
			e.AllocsPerOp = val
		case "MB/s":
			e.Metrics["MB/s"] = val
		default:
			e.Metrics[unit] = val
		}
	}
	if len(e.Metrics) == 0 {
		e.Metrics = nil
	}
	return e, true
}
