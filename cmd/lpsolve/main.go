// Command lpsolve solves an MPS-format linear program with the repo's
// sparse revised simplex — the same engine the multicast planners use —
// and reports the solution in the file's original variable space.
//
// Usage:
//
//	lpsolve [flags] problem.mps     ("-" reads stdin)
//
//	-check        cross-validate against the dense reference simplex
//	-presolve     run the presolve reductions (default true)
//	-vars         print every variable's value
//	-duals        print every constraint row's dual value
//	-q            print only the objective value
//
// The exit code encodes the verdict so scripts can branch on it:
// 0 optimal, 2 infeasible, 3 unbounded, 1 any error (including a
// -check disagreement).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"time"

	"repro/internal/lp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lpsolve: ")
	check := flag.Bool("check", false, "cross-validate the solution against the dense reference simplex")
	presolve := flag.Bool("presolve", true, "run presolve reductions before the simplex")
	vars := flag.Bool("vars", false, "print variable values (original variable space)")
	duals := flag.Bool("duals", false, "print constraint duals (original row space)")
	quiet := flag.Bool("q", false, "print only the objective value")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lpsolve [flags] problem.mps")
		flag.PrintDefaults()
		os.Exit(1)
	}

	var src io.Reader
	if name := flag.Arg(0); name == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		src = f
	}
	mps, err := lp.ReadMPS(src)
	if err != nil {
		log.Fatal(err)
	}

	m := mps.Model
	m.SetPresolve(*presolve)
	ws := lp.NewWorkspace()
	start := time.Now()
	sol, err := m.SolveWith(ws)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if *check {
		ref, err := lp.SolveDense(m)
		if err != nil {
			log.Fatalf("dense reference: %v", err)
		}
		if ref.Status != sol.Status {
			log.Fatalf("check failed: sparse %v, dense reference %v", sol.Status, ref.Status)
		}
		if sol.Status == lp.Optimal {
			diff := math.Abs(sol.Objective - ref.Objective)
			scale := math.Max(1, math.Max(math.Abs(sol.Objective), math.Abs(ref.Objective)))
			if diff > 1e-6*scale {
				log.Fatalf("check failed: sparse objective %v, dense reference %v", sol.Objective, ref.Objective)
			}
		}
	}

	switch {
	case *quiet && sol.Status == lp.Optimal:
		fmt.Printf("%.10g\n", mps.Objective(sol))
	case *quiet:
		fmt.Println(sol.Status)
	default:
		name := mps.Name
		if name == "" {
			name = flag.Arg(0)
		}
		fmt.Printf("problem   %s  (%d vars, %d rows as read; %d vars, %d rows lowered)\n",
			name, mps.NumVars(), mps.NumRows(), m.NumVars(), m.NumRows())
		fmt.Printf("status    %s\n", sol.Status)
		if sol.Status == lp.Optimal {
			fmt.Printf("objective %.10g\n", mps.Objective(sol))
		}
		st := ws.Stats()
		fmt.Printf("simplex   %d iterations (%d dual) in %s\n", sol.Iterations, sol.DualIterations, elapsed.Round(time.Microsecond))
		fmt.Printf("presolve  removed %d rows, %d cols\n", st.PresolveRows, st.PresolveCols)
		if *check {
			fmt.Printf("check     dense reference agrees\n")
		}
	}
	if sol.Status == lp.Optimal && *vars {
		names := mps.VarNames()
		for j, v := range mps.Values(sol) {
			fmt.Printf("  %-12s %.10g\n", names[j], v)
		}
	}
	if sol.Status == lp.Optimal && *duals {
		names := mps.RowNames()
		for i, name := range names {
			fmt.Printf("  %-12s %.10g\n", name, mps.RowDual(sol, i))
		}
	}

	switch sol.Status {
	case lp.Infeasible:
		os.Exit(2)
	case lp.Unbounded:
		os.Exit(3)
	}
}
