// Command lpsolve solves an MPS-format linear program with the repo's
// sparse revised simplex — the same engine the multicast planners use —
// and reports the solution in the file's original variable space.
//
// Usage:
//
//	lpsolve [flags] problem.mps     ("-" reads stdin)
//
//	-check        cross-validate against the dense reference simplex
//	-presolve     run the presolve reductions (default true)
//	-vars         print every variable's value
//	-duals        print every constraint row's dual value
//	-q            print only the objective value
//
// The exit code encodes the verdict so scripts can branch on it:
//
//	0  optimal
//	1  usage or parse error (bad flags, bad arguments, malformed MPS)
//	2  infeasible
//	3  unbounded
//	4  internal error (I/O failure, solver failure, -check disagreement)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/lp"
)

// Exit codes: 0 and 2/3 report the solved verdict; 1 and 4 split the
// failures by whose fault they are — 1 means the invocation or the
// input text is wrong (fix the command line or the file), 4 means the
// tool itself failed to produce a verdict (I/O, solver internals, or a
// -check cross-validation mismatch).
const (
	exitOptimal    = 0
	exitUsage      = 1
	exitInfeasible = 2
	exitUnbounded  = 3
	exitInternal   = 4
)

const exitCodeTable = `exit codes:
  0  optimal
  1  usage or parse error (bad flags, bad arguments, malformed MPS)
  2  infeasible
  3  unbounded
  4  internal error (I/O failure, solver failure, -check disagreement)
`

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lpsolve: "+format+"\n", args...)
	os.Exit(code)
}

func main() {
	fs := flag.NewFlagSet("lpsolve", flag.ContinueOnError)
	check := fs.Bool("check", false, "cross-validate the solution against the dense reference simplex")
	presolve := fs.Bool("presolve", true, "run presolve reductions before the simplex")
	vars := fs.Bool("vars", false, "print variable values (original variable space)")
	duals := fs.Bool("duals", false, "print constraint duals (original row space)")
	quiet := fs.Bool("q", false, "print only the objective value")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: lpsolve [flags] problem.mps    (\"-\" reads stdin)")
		fs.PrintDefaults()
		fmt.Fprint(fs.Output(), exitCodeTable)
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(exitOptimal)
		}
		// The flag package already printed the complaint and the usage.
		os.Exit(exitUsage)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(exitUsage)
	}

	var src io.Reader
	if name := fs.Arg(0); name == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			fail(exitInternal, "%v", err)
		}
		defer f.Close()
		src = f
	}
	mps, err := lp.ReadMPS(src)
	if err != nil {
		// Malformed input is the caller's to fix — distinct from the
		// internal failures below.
		fail(exitUsage, "%v", err)
	}

	m := mps.Model
	m.SetPresolve(*presolve)
	ws := lp.NewWorkspace()
	start := time.Now()
	sol, err := m.SolveWith(ws)
	if err != nil {
		fail(exitInternal, "%v", err)
	}
	elapsed := time.Since(start)

	if *check {
		ref, err := lp.SolveDense(m)
		if err != nil {
			fail(exitInternal, "dense reference: %v", err)
		}
		if ref.Status != sol.Status {
			fail(exitInternal, "check failed: sparse %v, dense reference %v", sol.Status, ref.Status)
		}
		if sol.Status == lp.Optimal {
			diff := math.Abs(sol.Objective - ref.Objective)
			scale := math.Max(1, math.Max(math.Abs(sol.Objective), math.Abs(ref.Objective)))
			if diff > 1e-6*scale {
				fail(exitInternal, "check failed: sparse objective %v, dense reference %v", sol.Objective, ref.Objective)
			}
		}
	}

	switch {
	case *quiet && sol.Status == lp.Optimal:
		fmt.Printf("%.10g\n", mps.Objective(sol))
	case *quiet:
		fmt.Println(sol.Status)
	default:
		name := mps.Name
		if name == "" {
			name = fs.Arg(0)
		}
		fmt.Printf("problem   %s  (%d vars, %d rows as read; %d vars, %d rows lowered)\n",
			name, mps.NumVars(), mps.NumRows(), m.NumVars(), m.NumRows())
		fmt.Printf("status    %s\n", sol.Status)
		if sol.Status == lp.Optimal {
			fmt.Printf("objective %.10g\n", mps.Objective(sol))
		}
		st := ws.Stats()
		fmt.Printf("simplex   %d iterations (%d dual) in %s\n", sol.Iterations, sol.DualIterations, elapsed.Round(time.Microsecond))
		fmt.Printf("presolve  removed %d rows, %d cols\n", st.PresolveRows, st.PresolveCols)
		if *check {
			fmt.Printf("check     dense reference agrees\n")
		}
	}
	if sol.Status == lp.Optimal && *vars {
		names := mps.VarNames()
		for j, v := range mps.Values(sol) {
			fmt.Printf("  %-12s %.10g\n", names[j], v)
		}
	}
	if sol.Status == lp.Optimal && *duals {
		names := mps.RowNames()
		for i, name := range names {
			fmt.Printf("  %-12s %.10g\n", name, mps.RowDual(sol, i))
		}
	}

	switch sol.Status {
	case lp.Infeasible:
		os.Exit(exitInfeasible)
	case lp.Unbounded:
		os.Exit(exitUnbounded)
	}
}
