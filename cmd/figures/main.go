// Command figures regenerates the paper's worked examples and
// theoretical artefacts:
//
//	figures -fig 1      Section 3 example: single tree vs optimal packing
//	figures -fig 2      Theorem 1 set-cover reduction on the Figure 2 instance
//	figures -fig 3      Theorem 5 parallel-prefix reduction
//	figures -fig 4      Figure 4: neither LP bound is tight
//	figures -fig 5      Figure 5: the |Ptarget| gap between the bounds
//	figures -fig 11     Figure 11 density sweep (reduced; see cmd/experiments
//	                    for the full paper-scale run); honours -workers for
//	                    the concurrent sweep engine and -json to persist the
//	                    cells
//	figures -fig 12     Figure 12 case study: MCPH vs Multisource MC on a Tiers platform
//	figures -fig table  Section 4 complexity table, as measured runtimes
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/heur"
	"repro/internal/platforms"
	"repro/internal/prefix"
	"repro/internal/setcover"
	"repro/internal/steady"
	"repro/internal/tiers"
	"repro/internal/tree"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	fig := flag.String("fig", "1", "figure to regenerate: 1, 2, 3, 4, 5, 11, 12 or table")
	seed := flag.Int64("seed", 1, "random seed (figures 11 and 12)")
	size := flag.String("size", "small", `platform preset for figure 11: "small" or "big"`)
	workers := flag.Int("workers", 0, "concurrent sweep workers for figure 11 (default GOMAXPROCS)")
	jsonOut := flag.String("json", "", "persist the figure 11 cells as JSON to this file")
	solveStats := flag.Bool("solvestats", false, "report aggregate LP-solver statistics after the figure 11 sweep")
	flag.Parse()

	var err error
	switch *fig {
	case "1":
		err = figure1()
	case "2":
		err = figure2()
	case "3":
		err = figure3()
	case "4":
		err = figure4()
	case "5":
		err = figure5()
	case "11":
		err = figure11(*seed, *size, *workers, *jsonOut, *solveStats)
	case "12":
		err = figure12(*seed)
	case "table":
		err = complexityTable()
	default:
		log.Fatalf("unknown figure %q", *fig)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func figure1() error {
	pl := platforms.Figure1()
	p := pl.Problem()
	fmt.Println("Figure 1 - the Section 3 worked example (targets P7..P13)")
	lb, err := steady.MulticastLB(p)
	if err != nil {
		return err
	}
	_, single, err := tree.BestSingleTree(pl.G, pl.Source, pl.Targets)
	if err != nil {
		return err
	}
	pk, err := tree.PackOptimal(pl.G, pl.Source, pl.Targets)
	if err != nil {
		return err
	}
	fmt.Printf("  upper bound from P7's in-edge:    throughput 1\n")
	fmt.Printf("  Multicast-LB:                     throughput %.4f\n", lb.Throughput())
	fmt.Printf("  best single multicast tree:       throughput %.4f  (< 1: one tree is not enough)\n", 1/single)
	fmt.Printf("  optimal weighted tree packing:    throughput %.4f  using %d trees:\n", pk.Throughput, len(pk.Trees))
	for i, wt := range pk.Trees {
		fmt.Printf("    tree %d at rate %.3f: %s\n", i+1, wt.Rate, describeTree(pl.G, wt.Tree))
	}
	return nil
}

func figure2() error {
	ins := setcover.PaperExample()
	fmt.Println("Figure 2 - COMPACT-MULTICAST reduction of the example set-cover instance")
	cover, err := setcover.Exact(ins)
	if err != nil {
		return err
	}
	fmt.Printf("  minimum cover: %v (size %d)\n", coverNames(cover), len(cover))
	for _, B := range []int{len(cover) - 1, len(cover), len(cover) + 1} {
		if B < 1 || B > len(ins.Subsets) {
			continue
		}
		r, err := setcover.Reduce(ins, B)
		if err != nil {
			return err
		}
		_, period, err := tree.BestSingleTree(r.G, r.Source, r.Targets())
		if err != nil {
			return err
		}
		verdict := "no"
		if period <= 1+1e-9 {
			verdict = "yes"
		}
		fmt.Printf("  B=%d: best single tree period %.4f -> throughput 1 reachable: %s\n", B, period, verdict)
	}
	return nil
}

func figure3() error {
	ins := setcover.PaperExample()
	cover, err := setcover.Exact(ins)
	if err != nil {
		return err
	}
	fmt.Println("Figure 3 - COMPACT-PREFIX reduction (Theorem 5)")
	for _, B := range []int{len(cover), len(cover) - 1} {
		if B < 1 {
			continue
		}
		r, err := prefix.Reduce(ins, B)
		if err != nil {
			return err
		}
		s, err := r.CoverScheme(cover)
		if err != nil {
			return err
		}
		fmt.Printf("  B=%d: cover scheme period %.4f (%d steps)\n", B, s.Period(), len(s.Steps))
	}
	fmt.Println("  period 1 is reachable exactly when a cover of size <= B exists")
	return nil
}

func figure4() error {
	pl := platforms.Figure4()
	p := pl.Problem()
	fmt.Println("Figure 4 - neither bound is tight")
	ub, err := steady.ScatterUB(p)
	if err != nil {
		return err
	}
	lb, err := steady.MulticastLB(p)
	if err != nil {
		return err
	}
	pk, err := tree.PackOptimal(pl.G, pl.Source, pl.Targets)
	if err != nil {
		return err
	}
	fmt.Printf("  scatter bound (Multicast-UB):  throughput %.4f\n", ub.Throughput())
	fmt.Printf("  true optimum (tree packing):   throughput %.4f\n", pk.Throughput)
	fmt.Printf("  optimistic bound (Multicast-LB): throughput %.4f\n", lb.Throughput())
	return nil
}

func figure5() error {
	pl := platforms.Figure5()
	p := pl.Problem()
	fmt.Println("Figure 5 - the gap between the bounds reaches |Ptarget|")
	ub, err := steady.ScatterUB(p)
	if err != nil {
		return err
	}
	lb, err := steady.MulticastLB(p)
	if err != nil {
		return err
	}
	fmt.Printf("  scatter period %.4f vs optimistic period %.4f: gap %.1fx = |Ptarget| = %d\n",
		ub.Period, lb.Period, ub.Period/lb.Period, len(pl.Targets))
	return nil
}

// figure11 runs a reduced density sweep (3 platforms, paper densities)
// on the concurrent engine and prints both panel baselines; the
// paper-scale 10-platform run lives in cmd/experiments.
func figure11(seed int64, size string, workers int, jsonOut string, solveStats bool) error {
	cfg := exp.Config{
		Size:      size,
		Platforms: 3,
		Seed:      seed,
		Workers:   workers,
		Progress:  os.Stderr,
	}
	results, err := exp.Sweep(cfg)
	if err != nil {
		return err
	}
	cells := exp.Aggregate(results)
	if taskErr := exp.Errors(results); taskErr != nil {
		// Per-task failures still yield the surviving cells; only a
		// sweep with nothing to show is fatal.
		if len(cells) == 0 {
			return taskErr
		}
		fmt.Fprintf(os.Stderr, "figures: warning: some sweep tasks failed, rendering the surviving cells: %v\n", taskErr)
	}
	if solveStats {
		fmt.Fprintf(os.Stderr, "solver: %v\n", exp.AggregateStats(results))
	}
	fmt.Printf("Figure 11 - density sweep (%s platforms, reduced to %d platforms)\n\n", size, cfg.Platforms)
	fmt.Printf("ratio of periods to the scatter bound\n\n%s\n", exp.Table(cells, "scatter"))
	fmt.Printf("ratio of periods to the lower bound\n\n%s", exp.Table(cells, "lb"))
	if jsonOut != "" {
		return exp.WriteCellsFile(jsonOut, cells)
	}
	return nil
}

func figure12(seed int64) error {
	pl, err := tiers.Generate(tiers.Small(seed))
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	targets := pl.RandomTargets(rng, 0.4)
	p, err := steady.NewProblem(pl.G, pl.Source, targets)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 12 - case study on a Tiers platform (seed %d, %d targets)\n", seed, len(targets))
	mcph, err := heur.MCPH(p)
	if err != nil {
		return err
	}
	ms, err := heur.AugmentedSources(p)
	if err != nil {
		return err
	}
	fmt.Printf("  MCPH:           period %.1f (single tree, %d edges)\n", mcph.Period, len(mcph.Tree.Edges))
	var names []string
	for _, s := range ms.Sources {
		names = append(names, pl.G.Name(s))
	}
	fmt.Printf("  Multisource MC: period %.1f (secondary sources: %v)\n", ms.Period, names)
	fmt.Printf("  ratio: %.3f (the paper's instance reports 789/1000)\n", ms.Period/mcph.Period)
	return nil
}

func complexityTable() error {
	fmt.Println("Section 4 complexity table, as measured runtime scaling")
	fmt.Println("  broadcast (polynomial, Broadcast-EB) vs multicast optimum (exponential, tree packing)")
	for _, n := range []int{4, 6, 8, 10, 12} {
		g := graph.New()
		s := g.AddNode("S")
		prev := s
		var targets []graph.NodeID
		for i := 0; i < n; i++ {
			v := g.AddNode(fmt.Sprintf("n%d", i))
			g.AddLink(prev, v, 1)
			g.AddEdge(s, v, float64(i+2))
			targets = append(targets, v)
			prev = v
		}
		t0 := time.Now()
		if _, err := steady.BroadcastEB(g, s); err != nil {
			return err
		}
		dBC := time.Since(t0)
		t0 = time.Now()
		if _, err := tree.PackOptimal(g, s, targets); err != nil {
			return err
		}
		dOPT := time.Since(t0)
		fmt.Printf("  |targets|=%2d: Broadcast-EB %10v   exact multicast %10v\n", n, dBC.Round(time.Microsecond), dOPT.Round(time.Microsecond))
	}
	return nil
}

func describeTree(g *graph.Graph, t *tree.Tree) string {
	out := ""
	for i, id := range t.Edges {
		if i > 0 {
			out += " "
		}
		e := g.Edge(id)
		out += g.Name(e.From) + ">" + g.Name(e.To)
	}
	return out
}

func coverNames(pick []int) []string {
	var names []string
	for _, i := range pick {
		names = append(names, fmt.Sprintf("C%d", i+1))
	}
	return names
}
