// Command mcastd is the multicast-planning daemon: a long-running
// HTTP/JSON service that answers Series-of-Multicasts plan requests
// over a sharded pool of warm bound evaluators (see internal/serve and
// DESIGN.md Section 9).
//
// Usage:
//
//	mcastd [-addr :8723] [-shards N] [-cache N] [-max-jobs N]
//	       [-job-ttl 10m] [-default-timeout 0] [-max-concurrent N]
//	       [-max-queue N] [-pprof 127.0.0.1:6060]
//
// Endpoints:
//
//	GET    /healthz              liveness (200 while the process serves)
//	GET    /readyz               readiness (503 while draining/saturated)
//	POST   /v1/platforms         upload a platform (graph text format)
//	GET    /v1/platforms         list registered platforms
//	GET    /v1/platforms/{id}    one platform's metadata
//	POST   /v1/plan              compute bounds and heuristic plans
//	POST   /v1/plan:batch        many plans, one NDJSON stream in order
//	POST   /v1/jobs              submit a batch as an async job (202)
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         poll one job's progress
//	GET    /v1/jobs/{id}/stream  tail a job's NDJSON results (?offset=N)
//	DELETE /v1/jobs/{id}         cancel a job
//	POST   /v1/whatif            resilience what-if analysis (NDJSON)
//	GET    /v1/stats             solver + serving statistics
//
// Errors are the structured envelope {"error":{"code":...,
// "message":...}} on every endpoint; see DESIGN.md Section 13.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: /readyz flips
// unready, live subscribe streams are closed with a final terminator
// line, running async jobs get the -drain window to finish (then are
// canceled), and in-flight requests drain for the remainder of the
// window.
//
// -pprof starts net/http/pprof on a separate listener (opt-in and
// intended for a loopback or otherwise private address — the profile
// endpoints expose internals and never belong on the serving port).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("mcastd: ")
	var (
		addr      = flag.String("addr", ":8723", "listen address")
		shards    = flag.Int("shards", 0, "evaluator shards (0 = GOMAXPROCS)")
		cache     = flag.Int("cache", 0, "plan cache capacity in responses (0 = default, negative disables)")
		drain     = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window")
		pprofAddr = flag.String("pprof", "", "serve /debug/pprof on this address (empty disables; use a private address)")
		maxJobs   = flag.Int("max-jobs", 0, "max unfinished async jobs before 429 (0 = default)")
		jobTTL    = flag.Duration("job-ttl", 0, "how long finished job results stay retrievable (0 = default)")
		defTO     = flag.Duration("default-timeout", 0, "per-request compute deadline when the request sets no timeout_ms (0 = none)")
		maxConc   = flag.Int("max-concurrent", 0, "max concurrent computations before queueing (0 = 2x shards, negative disables admission control)")
		maxQueue  = flag.Int("max-queue", 0, "max queued admissions before 429/saturated (0 = 4x shards)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
			ps := &http.Server{Addr: *pprofAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
			if err := ps.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	srv := serve.New(serve.Config{
		Shards: *shards, CacheSize: *cache, MaxJobs: *maxJobs, JobTTL: *jobTTL,
		DefaultTimeout: *defTO, MaxConcurrent: *maxConc, MaxQueue: *maxQueue,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		// No blanket write timeout: big-platform plans legitimately run
		// for tens of seconds; the shard pool bounds concurrent work.
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("serving on %s with %d evaluator shards", *addr, srv.Shards())

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down (draining up to %s)", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Application drain first: /readyz unready, subscribe streams closed
	// with their final line, async jobs finished or canceled. Only then
	// the connection-level drain — Shutdown would otherwise wait on
	// subscribe streams that never end.
	srv.Drain(sctx)
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
}
