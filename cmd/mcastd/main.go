// Command mcastd is the multicast-planning daemon: a long-running
// HTTP/JSON service that answers Series-of-Multicasts plan requests
// over a sharded pool of warm bound evaluators (see internal/serve and
// DESIGN.md Section 9).
//
// Usage:
//
//	mcastd [-addr :8723] [-shards N] [-cache N]
//
// Endpoints:
//
//	GET  /healthz            liveness
//	POST /v1/platforms       upload a platform (graph text format)
//	GET  /v1/platforms       list registered platforms
//	GET  /v1/platforms/{id}  one platform's metadata
//	POST /v1/plan            compute bounds and heuristic plans
//	GET  /v1/stats           solver + serving statistics
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight requests for up to -drain seconds.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("mcastd: ")
	var (
		addr   = flag.String("addr", ":8723", "listen address")
		shards = flag.Int("shards", 0, "evaluator shards (0 = GOMAXPROCS)")
		cache  = flag.Int("cache", 0, "plan cache capacity in responses (0 = default, negative disables)")
		drain  = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window")
	)
	flag.Parse()

	srv := serve.New(serve.Config{Shards: *shards, CacheSize: *cache})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		// No blanket write timeout: big-platform plans legitimately run
		// for tens of seconds; the shard pool bounds concurrent work.
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("serving on %s with %d evaluator shards", *addr, srv.Shards())

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down (draining up to %s)", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
}
