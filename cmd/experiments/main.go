// Command experiments regenerates the paper's Figure 11: the target
// density sweep over random Tiers-like platforms, reporting the mean
// period of every bound and heuristic relative to the scatter upper
// bound (panels a/c) and to the theoretical lower bound (panels b/d).
//
// The full paper-scale run (10 platforms, 6 densities, both sizes)
// takes a while; -platforms and -densities trade fidelity for time.
//
// Usage:
//
//	experiments -size small -baseline scatter        # Figure 11(a)
//	experiments -size small -baseline lb             # Figure 11(b)
//	experiments -size big   -baseline scatter        # Figure 11(c)
//	experiments -size big   -baseline lb             # Figure 11(d)
//	experiments -size small -baseline both -csv out.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		size      = flag.String("size", "small", `platform preset: "small" or "big"`)
		platforms = flag.Int("platforms", 10, "number of random platforms (the paper uses 10)")
		densities = flag.String("densities", "", "comma-separated target densities (default: the paper's sweep)")
		seed      = flag.Int64("seed", 1, "base random seed")
		baseline  = flag.String("baseline", "both", `ratio baseline: "scatter", "lb" or "both"`)
		csvOut    = flag.String("csv", "", "also write raw cells as CSV to this file")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()

	cfg := exp.Config{Size: *size, Platforms: *platforms, Seed: *seed}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	if *densities != "" {
		for _, part := range strings.Split(*densities, ",") {
			d, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				log.Fatalf("bad density %q: %v", part, err)
			}
			cfg.Densities = append(cfg.Densities, d)
		}
	}

	cells, err := exp.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	switch *baseline {
	case "scatter":
		fmt.Printf("ratio of periods to the scatter bound (%s platforms)\n\n%s", *size, exp.Table(cells, "scatter"))
	case "lb":
		fmt.Printf("ratio of periods to the lower bound (%s platforms)\n\n%s", *size, exp.Table(cells, "lb"))
	case "both":
		fmt.Printf("ratio of periods to the scatter bound (%s platforms)\n\n%s\n", *size, exp.Table(cells, "scatter"))
		fmt.Printf("ratio of periods to the lower bound (%s platforms)\n\n%s", *size, exp.Table(cells, "lb"))
	default:
		log.Fatalf("unknown baseline %q", *baseline)
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			log.Fatal(err)
		}
		w := csv.NewWriter(f)
		if err := w.Write([]string{"density", "series", "vs_scatter", "vs_lb", "runs"}); err != nil {
			log.Fatal(err)
		}
		for _, c := range cells {
			rec := []string{
				strconv.FormatFloat(c.Density, 'g', 6, 64),
				c.Series,
				strconv.FormatFloat(c.VsScatter, 'g', 8, 64),
				strconv.FormatFloat(c.VsLB, 'g', 8, 64),
				strconv.Itoa(c.Runs),
			}
			if err := w.Write(rec); err != nil {
				log.Fatal(err)
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
