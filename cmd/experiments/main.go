// Command experiments regenerates the paper's Figure 11: the target
// density sweep over random Tiers-like platforms, reporting the mean
// period of every bound and heuristic relative to the scatter upper
// bound (panels a/c) and to the theoretical lower bound (panels b/d).
//
// The full paper-scale run (10 platforms, 6 densities, both sizes)
// takes a while; -platforms and -densities trade fidelity for time.
//
// The sweep grid runs on a worker pool (-workers, default GOMAXPROCS);
// per-task seeding keeps the output bit-identical for any worker
// count. -json persists the aggregated cells so a finished sweep can
// be re-rendered later with -from without re-solving the LPs.
//
// Usage:
//
//	experiments -size small -baseline scatter        # Figure 11(a)
//	experiments -size small -baseline lb             # Figure 11(b)
//	experiments -size big   -baseline scatter        # Figure 11(c)
//	experiments -size big   -baseline lb             # Figure 11(d)
//	experiments -size small -baseline both -csv out.csv
//	experiments -size big -workers 8 -json sweep.json
//	experiments -from sweep.json -baseline lb        # re-render, no solve
//	experiments -size small -solvestats              # report LP solver work
//	experiments -size big -cpuprofile cpu.out -memprofile mem.out
//
// -solvestats reports the sweep's aggregate solver activity on stderr:
// bound evaluations and cache hits, LP solves split into warm starts
// and cold starts, simplex iterations (with the dual-simplex cleanup
// share), and cutting-plane rounds/cuts.
//
// -cpuprofile and -memprofile write pprof profiles of the sweep (the
// heap profile is taken after the sweep completes), so solver hot
// spots can be inspected on the full paper-scale workload rather than
// only on the reduced benchmark grids.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		size       = flag.String("size", "small", `platform preset: "small" or "big"`)
		platforms  = flag.Int("platforms", 10, "number of random platforms (the paper uses 10)")
		densities  = flag.String("densities", "", "comma-separated target densities (default: the paper's sweep)")
		seed       = flag.Int64("seed", 1, "base random seed")
		baseline   = flag.String("baseline", "both", `ratio baseline: "scatter", "lb" or "both"`)
		workers    = flag.Int("workers", 0, "concurrent sweep workers (default GOMAXPROCS)")
		jsonOut    = flag.String("json", "", "also write the aggregated cells as JSON to this file")
		fromJSON   = flag.String("from", "", "skip the sweep and re-render cells from this JSON file")
		csvOut     = flag.String("csv", "", "also write raw cells as CSV to this file")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		solveStats = flag.Bool("solvestats", false, "report aggregate LP-solver statistics (solves, iterations, warm starts, cache hits) after the sweep")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (taken after the sweep) to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC() // settle the heap so the profile shows retained allocations
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}()

	var cells []exp.Cell
	// label names the data's origin in the table headers; the persisted
	// JSON does not record the platform size, so re-rendered cells are
	// labelled by their source file rather than by the (ignored) -size
	// flag.
	label := *size + " platforms"
	if *fromJSON != "" {
		label = "from " + *fromJSON
		f, err := os.Open(*fromJSON)
		if err != nil {
			log.Fatal(err)
		}
		cells, err = exp.DecodeCells(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cfg := exp.Config{Size: *size, Platforms: *platforms, Seed: *seed, Workers: *workers}
		if !*quiet {
			cfg.Progress = os.Stderr
		}
		if *densities != "" {
			for _, part := range strings.Split(*densities, ",") {
				d, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
				if err != nil {
					log.Fatalf("bad density %q: %v", part, err)
				}
				cfg.Densities = append(cfg.Densities, d)
			}
		}
		results, err := exp.Sweep(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cells = exp.Aggregate(results)
		if taskErr := exp.Errors(results); taskErr != nil {
			// Per-task failures leave the cells of the tasks that did
			// succeed; a partially failed sweep is still worth rendering
			// and persisting.
			if len(cells) == 0 {
				log.Fatal(taskErr)
			}
			log.Printf("warning: some sweep tasks failed, rendering the surviving cells: %v", taskErr)
		}
		if *solveStats {
			// Stats go to stderr; stdout carries the figure tables.
			fmt.Fprintf(os.Stderr, "solver: %v\n", exp.AggregateStats(results))
		}
	}

	switch *baseline {
	case "scatter":
		fmt.Printf("ratio of periods to the scatter bound (%s)\n\n%s", label, exp.Table(cells, "scatter"))
	case "lb":
		fmt.Printf("ratio of periods to the lower bound (%s)\n\n%s", label, exp.Table(cells, "lb"))
	case "both":
		fmt.Printf("ratio of periods to the scatter bound (%s)\n\n%s\n", label, exp.Table(cells, "scatter"))
		fmt.Printf("ratio of periods to the lower bound (%s)\n\n%s", label, exp.Table(cells, "lb"))
	default:
		log.Fatalf("unknown baseline %q", *baseline)
	}

	if *jsonOut != "" {
		if err := exp.WriteCellsFile(*jsonOut, cells); err != nil {
			log.Fatal(err)
		}
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			log.Fatal(err)
		}
		w := csv.NewWriter(f)
		if err := w.Write([]string{"density", "series", "vs_scatter", "vs_lb", "runs"}); err != nil {
			log.Fatal(err)
		}
		for _, c := range cells {
			rec := []string{
				strconv.FormatFloat(c.Density, 'g', 6, 64),
				c.Series,
				strconv.FormatFloat(c.VsScatter, 'g', 8, 64),
				strconv.FormatFloat(c.VsLB, 'g', 8, 64),
				strconv.Itoa(c.Runs),
			}
			if err := w.Write(rec); err != nil {
				log.Fatal(err)
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
