// Command loadgen drives a mcastd daemon with synthetic plan traffic
// and reports request rates and latency percentiles. It exists to make
// the serving layer's concurrency story measurable: how the plan
// cache, the coalescer and the shard pool behave under realistic
// arrival shapes rather than under one benchmark loop.
//
// Usage:
//
//	loadgen [-addr http://host:8723]
//	        [-shape hot|churn|herd|churn-live|overload]
//	        [-clients N] [-duration 5s] [-seed 1] [-smoke]
//
// With no -addr, loadgen starts an in-process daemon on a loopback
// listener, so it is runnable anywhere the repo builds. Each run first
// measures a serial baseline (one client, same request mix), then the
// concurrent phase, and prints both — on the hot shape with the cache
// enabled, the concurrent rate should beat the serial baseline.
//
// Shapes:
//
//	hot    hot-platform skew: 90% of requests draw from a small pool
//	       of repeating target sets on one platform (cache-friendly),
//	       10% roam a second platform with fresh target sets.
//	churn  the hot shape, but the hot platform is re-uploaded (content
//	       swapped, generation bumped) at a steady tick, invalidating
//	       its cache entries while requests are in flight.
//	herd   thundering herd: every client fires the identical request
//	       in synchronized waves, each wave immediately after a
//	       re-upload — all coalescer, no cache.
//
//	churn-live
//	       the hot shape over a *live* platform: a mutator PATCHes the
//	       hot platform at a steady tick (exact x2 / x0.5 edge-cost
//	       scalings, so content revisits earlier fingerprints) while
//	       two subscribers hold replan streams open — plan cache
//	       invalidation, repair and version streaming all under load.
//
//	overload
//	       deliberate saturation: every request bypasses the plan cache
//	       so each one wants a compute slot, and the in-process daemon
//	       runs with tight admission limits. Half the requests opt into
//	       degraded mode. The report adds the shed rate (429s) and the
//	       degraded fraction next to p99 — the overload triage triple.
//
// -smoke runs every shape briefly against an in-process daemon and
// exits nonzero on any request failure; CI runs it as a serving-stack
// smoke test.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
	"repro/internal/mcastclient"
	"repro/internal/serve"
	"repro/internal/tiers"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		addr     = flag.String("addr", "", "base URL of a running mcastd (empty starts one in-process)")
		shape    = flag.String("shape", "hot", "arrival shape: hot, churn, herd, churn-live or overload")
		clients  = flag.Int("clients", 8, "concurrent clients")
		duration = flag.Duration("duration", 5*time.Second, "length of each measured phase")
		seed     = flag.Int64("seed", 1, "workload seed (target-set pools, request mix)")
		shards   = flag.Int("shards", 0, "evaluator shards for the in-process daemon (0 = GOMAXPROCS)")
		smoke    = flag.Bool("smoke", false, "short self-contained run of every shape; nonzero exit on any error")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(*seed); err != nil {
			log.Fatal(err)
		}
		fmt.Println("smoke: PASS")
		return
	}

	cfg := serve.Config{Shards: *shards}
	if *shape == "overload" {
		// Tight admission limits so the in-process daemon actually sheds;
		// an external -addr daemon is measured with whatever it runs.
		cfg.MaxConcurrent = 2
		cfg.MaxQueue = 2
	}
	base, closeFn := ensureDaemon(*addr, cfg)
	defer closeFn()
	c := mcastclient.New(base, nil)
	rep, err := runShape(c, *shape, *clients, *duration, *seed)
	if err != nil {
		log.Fatal(err)
	}
	rep.print(os.Stdout)
	if rep.errors > 0 {
		os.Exit(1)
	}
}

// ensureDaemon returns the base URL to load, starting an in-process
// daemon when addr is empty.
func ensureDaemon(addr string, cfg serve.Config) (string, func()) {
	if addr != "" {
		return addr, func() {}
	}
	ts := httptest.NewServer(serve.New(cfg))
	// The default transport caps idle conns per host at 2; a loadgen
	// with N clients wants N warm conns or it measures dial latency.
	tr := ts.Client().Transport.(*http.Transport)
	tr.MaxIdleConnsPerHost = 256
	fmt.Printf("in-process daemon at %s\n", ts.URL)
	return ts.URL, ts.Close
}

// workload is a prepared request mix: uploaded platforms plus the
// request pools the clients draw from.
type workload struct {
	hotID, coldID string
	// hotPool are the repeating hot-platform requests (the cacheable
	// 90%); coldPool are fresh-ish cold-platform requests (the 10%).
	hotPool  []*serve.PlanRequest
	coldPool []*serve.PlanRequest
	// churn alternates the hot platform's content between two
	// generated topologies (fingerprint change → cache invalidation).
	churnUploads [2]*serve.UploadRequest
	// hotEdges is the hot platform's edge count — the churn-live
	// mutator's edge-ID range.
	hotEdges int
}

// buildWorkload generates the platforms, uploads them, and prepares
// deterministic request pools. All randomness flows from exp.NewRNG on
// (seed, fixed coordinates), so two loadgen runs issue the same mix.
func buildWorkload(c *mcastclient.Client, seed int64) (*workload, error) {
	ctx := context.Background()
	w := &workload{hotID: "loadgen-hot", coldID: "loadgen-cold"}
	for variant := 0; variant < 2; variant++ {
		pl, err := tiers.Generate(tiers.Small(seed + int64(variant)))
		if err != nil {
			return nil, err
		}
		up := &serve.UploadRequest{
			ID:       w.hotID,
			Platform: pl.G.String(),
			Source:   pl.G.Name(pl.Source),
		}
		w.churnUploads[variant] = up
		if variant == 0 {
			if _, err := c.UploadPlatform(ctx, up); err != nil {
				return nil, err
			}
			w.hotPool = requestPool(pl, w.hotID, seed, 8)
			w.hotEdges = pl.G.NumEdges()
		} else {
			up2 := *up
			up2.ID = w.coldID
			if _, err := c.UploadPlatform(ctx, &up2); err != nil {
				return nil, err
			}
			w.coldPool = requestPool(pl, w.coldID, seed+100, 64)
		}
	}
	return w, nil
}

// requestPool draws n deterministic target sets from the platform's
// LAN hosts at the paper's mid density.
func requestPool(pl *tiers.Platform, id string, seed int64, n int) []*serve.PlanRequest {
	pool := make([]*serve.PlanRequest, n)
	for i := range pool {
		rng := exp.NewRNG(seed, i)
		targets := pl.RandomTargets(rng, 0.3)
		names := make([]string, len(targets))
		for j, t := range targets {
			names[j] = pl.G.Name(t)
		}
		pool[i] = &serve.PlanRequest{PlanSpec: serve.PlanSpec{
			PlatformID: id,
			Targets:    names,
			// Bounds-only requests keep individual solves fast enough that
			// a phase completes thousands of them; the heuristics are
			// exercised by cmd/mcast and the benchmarks.
			Bounds:     []string{"scatter", "lb"},
			Heuristics: []string{},
		}}
	}
	return pool
}

// pick returns the next request of the hot-skew mix: 90% from the hot
// pool's first quarter (the truly hot sets), 10% roaming cold.
func (w *workload) pick(rng *rand.Rand) *serve.PlanRequest {
	if rng.Float64() < 0.9 {
		return w.hotPool[rng.Intn(len(w.hotPool))]
	}
	return w.coldPool[rng.Intn(len(w.coldPool))]
}

// report is one phase's measurements.
type report struct {
	shape            string
	serialRate       float64 // req/s, one client
	concurrentRate   float64 // req/s, -clients clients
	requests, errors int64
	p50, p90, p99    time.Duration
	// churn-live only: PATCHes applied and subscriber updates received
	// during the concurrent phase.
	patches, liveUpdates int64
	// overload only: requests shed with 429/saturated (not counted as
	// errors) and requests answered by a degraded fallback.
	shed, degraded int64
}

func (r *report) print(w *os.File) {
	fmt.Fprintf(w, "shape %s:\n", r.shape)
	fmt.Fprintf(w, "  serial baseline  %10.1f req/s\n", r.serialRate)
	fmt.Fprintf(w, "  concurrent       %10.1f req/s  (%d requests, %d errors)\n",
		r.concurrentRate, r.requests, r.errors)
	fmt.Fprintf(w, "  latency          p50 %s  p90 %s  p99 %s\n", r.p50, r.p90, r.p99)
	if r.shape == "churn-live" {
		fmt.Fprintf(w, "  live churn       %d patches, %d subscriber updates\n", r.patches, r.liveUpdates)
	}
	if r.shape == "overload" && r.requests > 0 {
		fmt.Fprintf(w, "  overload         %d shed (%.1f%%), %d degraded (%.1f%%)\n",
			r.shed, 100*float64(r.shed)/float64(r.requests),
			r.degraded, 100*float64(r.degraded)/float64(r.requests))
	}
	switch {
	case r.serialRate == 0:
		// Overload has no serial baseline: a serial client can never shed.
	case r.concurrentRate >= r.serialRate:
		fmt.Fprintf(w, "  concurrent/serial %.2fx\n", r.concurrentRate/r.serialRate)
	default:
		fmt.Fprintf(w, "  WARNING: concurrent rate below serial baseline (%.2fx)\n",
			r.concurrentRate/r.serialRate)
	}
}

// runShape measures one shape: serial baseline first, then the
// concurrent phase (with the shape's churn/herd choreography).
func runShape(c *mcastclient.Client, shape string, clients int, duration time.Duration, seed int64) (*report, error) {
	switch shape {
	case "hot", "churn", "herd", "churn-live", "overload":
	default:
		return nil, fmt.Errorf("unknown shape %q (want hot, churn, herd, churn-live or overload)", shape)
	}
	w, err := buildWorkload(c, seed)
	if err != nil {
		return nil, err
	}
	rep := &report{shape: shape}
	if shape == "overload" {
		return runOverload(c, w, rep, clients, duration, seed)
	}

	// Serial baseline: one client, the same hot-skew mix, half the
	// phase length (it needs less time to stabilise).
	serialN, _, err := drive(c, w, 1, duration/2, seed, shape == "herd")
	if err != nil {
		return nil, err
	}
	rep.serialRate = float64(serialN.requests) / (duration / 2).Seconds()

	// Churn choreography: swap the hot platform's content at a steady
	// tick while the concurrent phase runs.
	stopChurn := make(chan struct{})
	var churnWG sync.WaitGroup
	if shape == "churn" {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			tick := time.NewTicker(duration / 10)
			defer tick.Stop()
			for variant := 1; ; variant++ {
				select {
				case <-stopChurn:
					return
				case <-tick.C:
					up := w.churnUploads[variant%2]
					if _, err := c.UploadPlatform(context.Background(), up); err != nil {
						log.Printf("churn upload: %v", err)
						return
					}
				}
			}
		}()
	}

	// Churn-live choreography: a PATCH mutator scales edge costs by
	// exact x2 / x0.5 pairs (each pair restores the edge bit-exactly, so
	// the platform's content cycles through a bounded fingerprint set)
	// while two subscribers hold replan streams open for the phase.
	subCtx, subCancel := context.WithCancel(context.Background())
	defer subCancel()
	var patches, liveUpdates atomic.Int64
	if shape == "churn-live" {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			tick := time.NewTicker(duration / 50)
			defer tick.Stop()
			edge, inverse := 0, false
			for {
				select {
				case <-stopChurn:
					return
				case <-tick.C:
					factor := 2.0
					if inverse {
						factor = 0.5
					}
					e := edge
					_, err := c.PatchPlatform(context.Background(), w.hotID, &serve.PatchRequest{
						Ops: []serve.PatchOp{{Op: "scale_edge_cost", Edge: &e, Factor: factor}},
					})
					if err != nil {
						log.Printf("churn-live patch: %v", err)
						return
					}
					patches.Add(1)
					if inverse {
						edge = (edge + 1) % w.hotEdges
					}
					inverse = !inverse
				}
			}
		}()
		for i := 0; i < 2; i++ {
			churnWG.Add(1)
			go func(i int) {
				defer churnWG.Done()
				req := w.hotPool[i%len(w.hotPool)]
				sub, err := c.Subscribe(subCtx, w.hotID, mcastclient.SubscribeSpec{
					Targets:    req.Targets,
					Bounds:     req.Bounds,
					Heuristics: req.Heuristics,
				})
				if err != nil {
					log.Printf("churn-live subscribe: %v", err)
					return
				}
				defer sub.Close()
				for {
					if _, err := sub.Next(); err != nil {
						return // phase over (context canceled) or stream closed
					}
					liveUpdates.Add(1)
				}
			}(i)
		}
	}

	n, lats, err := drive(c, w, clients, duration, seed+1, shape == "herd")
	close(stopChurn)
	subCancel()
	churnWG.Wait()
	if err != nil {
		return nil, err
	}
	rep.patches, rep.liveUpdates = patches.Load(), liveUpdates.Load()
	return finishReport(rep, n, lats, duration), nil
}

// runOverload drives the overload shape: the hot pool is computed once
// to warm the plan cache, then every client fires no_cache requests
// (each wants a compute slot) with every second request opting into
// degraded mode. Sheds (429) and degraded answers are counted
// separately from hard errors — under deliberate saturation they are
// the expected outcomes, not failures.
func runOverload(c *mcastclient.Client, w *workload, rep *report, clients int, duration time.Duration, seed int64) (*report, error) {
	// The overload pool reuses the hot target sets but asks for all
	// three bounds: the broadcast bound's LP makes each no_cache solve
	// long enough (tens of milliseconds) to genuinely occupy a compute
	// slot. The other shapes' scatter/lb-only requests finish faster
	// than arrivals can pile up behind the limiter, so they never shed.
	pool := make([]*serve.PlanRequest, len(w.hotPool))
	for i, hot := range w.hotPool {
		r := *hot
		r.Bounds = []string{serve.BoundScatter, serve.BoundLB, serve.BoundBroadcast}
		pool[i] = &r
	}
	// Warm the cache so degraded requests have a degraded-cache answer
	// available when they are shed.
	for _, req := range pool {
		if _, err := c.Plan(context.Background(), req); err != nil {
			return nil, fmt.Errorf("overload warmup: %w", err)
		}
	}
	deadline := time.Now().Add(duration)
	perClient := make([][]time.Duration, clients)
	var reqs, errs, shed, degraded atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			rng := exp.NewRNG(seed, 7000+client)
			for k := 0; time.Now().Before(deadline); k++ {
				req := *pool[rng.Intn(len(pool))]
				req.NoCache = true
				req.Degraded = k%2 == 0
				start := time.Now()
				_, hdr, err := c.PlanRaw(context.Background(), &req)
				perClient[client] = append(perClient[client], time.Since(start))
				reqs.Add(1)
				switch {
				case err == nil && hdr.Get(serve.HeaderDegraded) != "":
					degraded.Add(1)
				case err == nil:
				case mcastclient.IsCode(err, serve.CodeSaturated):
					shed.Add(1)
				default:
					errs.Add(1)
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}(i)
	}
	wg.Wait()
	var lats []time.Duration
	for _, l := range perClient {
		lats = append(lats, l...)
	}
	rep.shed, rep.degraded = shed.Load(), degraded.Load()
	n := counts{requests: reqs.Load(), errs: errs.Load()}
	if e := firstErr.Load(); e != nil {
		return nil, fmt.Errorf("%d hard errors under overload, first: %w", n.errs, e.(error))
	}
	return finishReport(rep, n, lats, duration), nil
}

type counts struct {
	requests int64
	errs     int64
}

func finishReport(rep *report, n counts, lats []time.Duration, duration time.Duration) *report {
	rep.requests = n.requests
	rep.errors = n.errs
	rep.concurrentRate = float64(n.requests) / duration.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	rep.p50, rep.p90, rep.p99 = pct(0.50), pct(0.90), pct(0.99)
	return rep
}

// drive runs the request mix on n clients for the given duration and
// returns the request/error counts and every request latency. In herd
// mode the clients run in synchronized waves: all fire the identical
// request at once, and each wave is preceded by a hot-platform
// re-upload so the wave can never be a cache hit — pure coalescer.
func drive(c *mcastclient.Client, w *workload, n int, duration time.Duration, seed int64, herd bool) (counts, []time.Duration, error) {
	deadline := time.Now().Add(duration)
	var total counts
	perClient := make([][]time.Duration, n)
	var firstErr atomic.Value

	if herd {
		return driveHerd(c, w, n, deadline, seed)
	}

	var reqs, errs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			rng := exp.NewRNG(seed, client)
			for time.Now().Before(deadline) {
				req := w.pick(rng)
				start := time.Now()
				_, err := c.Plan(context.Background(), req)
				perClient[client] = append(perClient[client], time.Since(start))
				reqs.Add(1)
				if err != nil {
					errs.Add(1)
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}(i)
	}
	wg.Wait()
	total.requests, total.errs = reqs.Load(), errs.Load()
	var lats []time.Duration
	for _, l := range perClient {
		lats = append(lats, l...)
	}
	if e := firstErr.Load(); e != nil && total.errs > 0 {
		return total, lats, fmt.Errorf("%d request errors, first: %w", total.errs, e.(error))
	}
	return total, lats, nil
}

// driveHerd runs synchronized waves of the identical request.
func driveHerd(c *mcastclient.Client, w *workload, n int, deadline time.Time, seed int64) (counts, []time.Duration, error) {
	var total counts
	var lats []time.Duration
	rng := exp.NewRNG(seed, 999)
	for wave := 0; time.Now().Before(deadline); wave++ {
		// Re-upload (content swap) so the wave's request is never cached.
		up := w.churnUploads[wave%2]
		if _, err := c.UploadPlatform(context.Background(), up); err != nil {
			return total, lats, err
		}
		req := w.hotPool[rng.Intn(len(w.hotPool))]
		var wg sync.WaitGroup
		waveLats := make([]time.Duration, n)
		var errs atomic.Int64
		var firstErr atomic.Value
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(client int) {
				defer wg.Done()
				start := time.Now()
				if _, err := c.Plan(context.Background(), req); err != nil {
					errs.Add(1)
					firstErr.CompareAndSwap(nil, err)
				}
				waveLats[client] = time.Since(start)
			}(i)
		}
		wg.Wait()
		total.requests += int64(n)
		total.errs += errs.Load()
		lats = append(lats, waveLats...)
		if e := firstErr.Load(); e != nil {
			return total, lats, fmt.Errorf("herd wave %d: %w", wave, e.(error))
		}
	}
	return total, lats, nil
}

// runSmoke exercises every shape briefly against an in-process daemon
// (plus one batch and one async job through the typed client) and
// fails on any request error.
func runSmoke(seed int64) error {
	ts := httptest.NewServer(serve.New(serve.Config{Shards: 2}))
	defer ts.Close()
	tr := ts.Client().Transport.(*http.Transport)
	tr.MaxIdleConnsPerHost = 64
	c := mcastclient.New(ts.URL, nil)

	for _, shape := range []string{"hot", "churn", "herd", "churn-live"} {
		rep, err := runShape(c, shape, 4, 400*time.Millisecond, seed)
		if err != nil {
			return fmt.Errorf("shape %s: %w", shape, err)
		}
		rep.print(os.Stdout)
		if rep.errors > 0 {
			return fmt.Errorf("shape %s: %d request errors", shape, rep.errors)
		}
		if shape == "churn-live" && (rep.patches == 0 || rep.liveUpdates == 0) {
			return fmt.Errorf("shape %s: no live churn observed (%d patches, %d updates)",
				shape, rep.patches, rep.liveUpdates)
		}
	}

	// The overload shape runs against its own daemon with tight
	// admission limits, so shedding and degraded fallbacks actually
	// happen at smoke scale.
	ots := httptest.NewServer(serve.New(serve.Config{Shards: 2, MaxConcurrent: 1, MaxQueue: 1}))
	defer ots.Close()
	ots.Client().Transport.(*http.Transport).MaxIdleConnsPerHost = 64
	orep, err := runShape(mcastclient.New(ots.URL, nil), "overload", 8, 400*time.Millisecond, seed)
	if err != nil {
		return fmt.Errorf("shape overload: %w", err)
	}
	orep.print(os.Stdout)
	if orep.shed == 0 || orep.degraded == 0 {
		return fmt.Errorf("shape overload: expected both shedding and degraded answers, got %d shed, %d degraded",
			orep.shed, orep.degraded)
	}

	// One batch and one job through the same pools, verifying the
	// stream discipline end to end.
	w, err := buildWorkload(c, seed)
	if err != nil {
		return err
	}
	batch := &serve.BatchRequest{}
	for i := 0; i < 4; i++ {
		batch.Items = append(batch.Items, serve.BatchItem{PlanSpec: w.hotPool[i].PlanSpec})
	}
	plans := 0
	if err := c.PlanBatch(context.Background(), batch, func(line serve.BatchLine) error {
		if line.Kind == "plan" {
			if line.Error != nil {
				return fmt.Errorf("batch item %d: %s", line.Index, line.Error.Message)
			}
			plans++
		}
		return nil
	}); err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	if plans != len(batch.Items) {
		return fmt.Errorf("batch: %d plan lines, want %d", plans, len(batch.Items))
	}
	job, err := c.SubmitJob(context.Background(), batch)
	if err != nil {
		return fmt.Errorf("job submit: %w", err)
	}
	for job.State == serve.JobRunning {
		time.Sleep(5 * time.Millisecond)
		if job, err = c.Job(context.Background(), job.ID); err != nil {
			return fmt.Errorf("job poll: %w", err)
		}
	}
	if job.State != serve.JobDone || job.Failed != 0 {
		return fmt.Errorf("job finished %s with %d failures", job.State, job.Failed)
	}
	return nil
}
