package graph

import "testing"

// chain builds s -> v1 -> ... -> v(n-1) with full-duplex links of cost 1.
func chain(n int) (*Graph, []NodeID) {
	g := New()
	ids := g.AddNodes("n", n)
	for i := 1; i < n; i++ {
		g.AddLink(ids[i-1], ids[i], 1)
	}
	return g, ids
}

func classOf(t *testing.T, g *Graph, root NodeID) Class {
	t.Helper()
	var c Classifier
	return c.Classify(g, root).Class
}

func TestClassifyChainAndStar(t *testing.T) {
	g, ids := chain(5)
	for _, root := range ids {
		if got := classOf(t, g, root); got != ClassTree {
			t.Errorf("chain rooted at %v: class %v, want ClassTree", root, got)
		}
	}

	star := New()
	hub := star.AddNode("hub")
	for i := 0; i < 4; i++ {
		leaf := star.AddNode(string(rune('a' + i)))
		star.AddLink(hub, leaf, float64(i+1))
	}
	if got := classOf(t, star, hub); got != ClassTree {
		t.Errorf("star: class %v, want ClassTree", got)
	}
}

func TestClassifyForwardOnlyTree(t *testing.T) {
	// Directed-only arcs (no reverse edges) are still a tree.
	g := New()
	ids := g.AddNodes("n", 4)
	g.AddEdge(ids[0], ids[1], 1)
	g.AddEdge(ids[1], ids[2], 2)
	g.AddEdge(ids[1], ids[3], 3)
	if got := classOf(t, g, ids[0]); got != ClassTree {
		t.Errorf("forward-only tree: class %v, want ClassTree", got)
	}
	// From a non-root node nothing else is reachable, so the reachable
	// subgraph is the single node: trivially a tree.
	if got := classOf(t, g, ids[2]); got != ClassTree {
		t.Errorf("leaf-rooted view: class %v, want ClassTree", got)
	}
}

func TestClassifyRejectsCrossEdge(t *testing.T) {
	g, ids := chain(4)
	extra := g.AddEdge(ids[0], ids[2], 5) // closes an undirected cycle
	if got := classOf(t, g, ids[0]); got != ClassGeneral {
		t.Fatalf("chain + cross edge: class %v, want ClassGeneral", got)
	}
	// Disabling the cross edge restores tree-ness; re-enabling removes
	// it again. The classifier must see both transitions through the
	// mutation stamp.
	var c Classifier
	g.DisableEdge(extra)
	if got := c.Classify(g, ids[0]).Class; got != ClassTree {
		t.Fatalf("cross edge disabled: class %v, want ClassTree", got)
	}
	g.EnableEdge(extra)
	if got := c.Classify(g, ids[0]).Class; got != ClassGeneral {
		t.Fatalf("cross edge re-enabled: class %v, want ClassGeneral", got)
	}
}

func TestClassifyRejectsParallelEdges(t *testing.T) {
	// Two parallel forward arcs let the LP split load; the classifier
	// must refuse the combinatorial claim.
	g := New()
	ids := g.AddNodes("n", 2)
	g.AddEdge(ids[0], ids[1], 1)
	g.AddEdge(ids[0], ids[1], 2)
	if got := classOf(t, g, ids[0]); got != ClassGeneral {
		t.Errorf("parallel forward arcs: class %v, want ClassGeneral", got)
	}

	// Same for duplicated reverse arcs.
	g2 := New()
	ids2 := g2.AddNodes("n", 2)
	g2.AddEdge(ids2[0], ids2[1], 1)
	g2.AddEdge(ids2[1], ids2[0], 1)
	g2.AddEdge(ids2[1], ids2[0], 2)
	if got := classOf(t, g2, ids2[0]); got != ClassGeneral {
		t.Errorf("parallel reverse arcs: class %v, want ClassGeneral", got)
	}
}

func TestClassifyDeactivationUnlocksTree(t *testing.T) {
	// A 4-cycle is not a tree; deactivating one node leaves a path.
	g := New()
	ids := g.AddNodes("n", 4)
	for i := range ids {
		g.AddLink(ids[i], ids[(i+1)%4], 1)
	}
	if got := classOf(t, g, ids[0]); got != ClassGeneral {
		t.Fatalf("4-cycle: class %v, want ClassGeneral", got)
	}
	g.Deactivate(ids[2])
	if got := classOf(t, g, ids[0]); got != ClassTree {
		t.Fatalf("4-cycle minus a node: class %v, want ClassTree", got)
	}
}

func TestClassifyIgnoresUnreachablePart(t *testing.T) {
	// A cycle the root cannot reach does not disqualify the reachable
	// tree: no source flow can traverse it.
	g, ids := chain(3)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddLink(a, b, 1)
	g.AddLink(b, c, 1)
	g.AddLink(c, a, 1)
	if got := classOf(t, g, ids[0]); got != ClassTree {
		t.Errorf("tree + unreachable cycle: class %v, want ClassTree", got)
	}
	// Rooted inside the cycle it is general.
	if got := classOf(t, g, a); got != ClassGeneral {
		t.Errorf("rooted in cycle: class %v, want ClassGeneral", got)
	}
}

func TestClassifyParentOrientation(t *testing.T) {
	g, ids := chain(4)
	var c Classifier
	view := c.Classify(g, ids[1])
	if !view.IsTree() {
		t.Fatal("chain should classify as tree")
	}
	if view.Root != ids[1] {
		t.Errorf("root = %v, want %v", view.Root, ids[1])
	}
	if view.ParentEdge[ids[1]] != -1 {
		t.Errorf("root has parent edge %d", view.ParentEdge[ids[1]])
	}
	// Every other node's parent edge must point away from the root.
	for _, v := range []NodeID{ids[0], ids[2], ids[3]} {
		pe := view.ParentEdge[v]
		if pe < 0 {
			t.Fatalf("node %v unreached", v)
		}
		if g.Edge(pe).To != v {
			t.Errorf("parent edge %d of %v does not enter it", pe, v)
		}
	}
	if len(view.Order) != 4 || view.Order[0] != ids[1] {
		t.Errorf("BFS order %v, want root-first over 4 nodes", view.Order)
	}
}

func TestClassifyMemoisesOnStamp(t *testing.T) {
	g, ids := chain(3)
	var c Classifier
	v1 := c.Classify(g, ids[0])
	v2 := c.Classify(g, ids[0])
	if v1 != v2 {
		t.Error("unmutated graph reclassified (memo miss)")
	}
	before := g.Stamp()
	g.SetEdgeCost(0, 2)
	if g.Stamp() == before {
		t.Error("SetEdgeCost did not bump the stamp")
	}
	// Changing a cost cannot change the class, but the memo must still
	// refresh (the view is recomputed, not reused stale).
	if got := c.Classify(g, ids[0]).Class; got != ClassTree {
		t.Errorf("after cost change: class %v, want ClassTree", got)
	}
}

func TestStampBumpsOnMutations(t *testing.T) {
	g, ids := chain(3)
	last := g.Stamp()
	bump := func(what string, f func()) {
		t.Helper()
		f()
		if g.Stamp() == last {
			t.Errorf("%s did not bump the stamp", what)
		}
		last = g.Stamp()
	}
	bump("Deactivate", func() { g.Deactivate(ids[2]) })
	bump("Activate", func() { g.Activate(ids[2]) })
	bump("DisableEdge", func() { g.DisableEdge(0) })
	bump("EnableEdge", func() { g.EnableEdge(0) })
	bump("SetEdgeCost", func() { g.SetEdgeCost(0, 3) })
	bump("Restrict", func() { g.Restrict(ids[:2]) })
	bump("ActivateAll", func() { g.ActivateAll() })
	bump("AddNode", func() { g.AddNode("x") })
	bump("AddEdge", func() { g.AddEdge(ids[0], ids[2], 1) })
}
