package graph

import (
	"math"
	"testing"
)

// diamondWithShortcut builds s -> a -> t (costs 1+1) plus a direct
// shortcut s -> t (cost 5): the shortest route goes through a, the
// bottleneck route through the shortcut once the relay is gone.
func diamondWithShortcut() (*Graph, NodeID, NodeID, NodeID, int, int, int) {
	g := New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	t := g.AddNode("t")
	sa := g.AddEdge(s, a, 1)
	at := g.AddEdge(a, t, 1)
	st := g.AddEdge(s, t, 5)
	return g, s, a, t, sa, at, st
}

func TestShortestPathsIgnoreDisabledEdges(t *testing.T) {
	g, s, _, dst, sa, at, st := diamondWithShortcut()

	dist, parent := g.ShortestPaths(s, CostWeight)
	if dist[dst] != 2 || parent[dst] != at {
		t.Fatalf("baseline: dist=%v parent=%d, want 2 via edge %d", dist[dst], parent[dst], at)
	}

	// Killing the relay's first hop forces the shortcut.
	g.DisableEdge(sa)
	dist, parent = g.ShortestPaths(s, CostWeight)
	if dist[dst] != 5 || parent[dst] != st {
		t.Errorf("sa disabled: dist=%v parent=%d, want 5 via edge %d", dist[dst], parent[dst], st)
	}
	if !math.IsInf(dist[1], 1) || parent[1] != -1 {
		t.Errorf("sa disabled: relay still reached: dist=%v parent=%d", dist[1], parent[1])
	}

	// Disabling both routes makes the target unreachable.
	g.DisableEdge(st)
	dist, parent = g.ShortestPaths(s, CostWeight)
	if !math.IsInf(dist[dst], 1) || parent[dst] != -1 {
		t.Errorf("both disabled: dist=%v parent=%d, want unreachable", dist[dst], parent[dst])
	}

	// Re-enabling restores the original answer exactly.
	g.EnableEdge(sa)
	g.EnableEdge(st)
	dist, parent = g.ShortestPaths(s, CostWeight)
	if dist[dst] != 2 || parent[dst] != at {
		t.Errorf("re-enabled: dist=%v parent=%d, want 2 via edge %d", dist[dst], parent[dst], at)
	}
}

func TestBottleneckPathsIgnoreDisabledEdges(t *testing.T) {
	g, s, _, dst, sa, _, st := diamondWithShortcut()

	// Minimax: through the relay the worst edge is 1, the shortcut is 5.
	dist, _ := g.BottleneckPaths(s, CostWeight)
	if dist[dst] != 1 {
		t.Fatalf("baseline bottleneck = %v, want 1", dist[dst])
	}
	g.DisableEdge(sa)
	dist, parent := g.BottleneckPaths(s, CostWeight)
	if dist[dst] != 5 || parent[dst] != st {
		t.Errorf("sa disabled: bottleneck=%v parent=%d, want 5 via edge %d", dist[dst], parent[dst], st)
	}
	g.EnableEdge(sa)
	if dist, _ := g.BottleneckPaths(s, CostWeight); dist[dst] != 1 {
		t.Errorf("re-enabled: bottleneck = %v, want 1", dist[dst])
	}
}

func TestMultiSourceBottleneckIgnoresDisabledEdges(t *testing.T) {
	g := New()
	s1 := g.AddNode("s1")
	s2 := g.AddNode("s2")
	t1 := g.AddNode("t")
	e1 := g.AddEdge(s1, t1, 2)
	e2 := g.AddEdge(s2, t1, 7)
	dist, parent := g.MultiSourceBottleneck([]NodeID{s1, s2}, CostWeight)
	if dist[t1] != 2 || parent[t1] != e1 {
		t.Fatalf("baseline: dist=%v parent=%d", dist[t1], parent[t1])
	}
	g.DisableEdge(e1)
	dist, parent = g.MultiSourceBottleneck([]NodeID{s1, s2}, CostWeight)
	if dist[t1] != 7 || parent[t1] != e2 {
		t.Errorf("e1 disabled: dist=%v parent=%d, want 7 via %d", dist[t1], parent[t1], e2)
	}
}

func TestWalkBackAvoidsDisabledEdges(t *testing.T) {
	g, s, _, dst, _, at, st := diamondWithShortcut()
	g.DisableEdge(at)
	_, parent := g.ShortestPaths(s, CostWeight)
	path := g.WalkBack(parent, dst)
	if len(path) != 1 || path[0] != st {
		t.Errorf("path = %v, want the shortcut [%d]", path, st)
	}
	for _, id := range path {
		if g.EdgeDisabled(id) {
			t.Errorf("path uses disabled edge %d", id)
		}
	}
}

func TestReachableIgnoresDisabledEdges(t *testing.T) {
	g, s, relay, dst, sa, _, st := diamondWithShortcut()
	if !g.ReachesAll(s, []NodeID{relay, dst}) {
		t.Fatal("baseline: not all reachable")
	}
	g.DisableEdge(sa)
	r := g.Reachable(s)
	if r[relay] {
		t.Error("relay reachable through a disabled edge")
	}
	if !r[dst] {
		t.Error("target lost despite the live shortcut")
	}
	if g.ReachesAll(s, []NodeID{relay, dst}) {
		t.Error("ReachesAll true with the relay cut off")
	}
	if !g.ReachesAll(s, []NodeID{dst}) {
		t.Error("ReachesAll false for the still-reachable target")
	}
	g.DisableEdge(st)
	if r := g.Reachable(s); r[dst] {
		t.Error("target reachable with every route disabled")
	}
	g.EnableEdge(sa)
	g.EnableEdge(st)
	if !g.ReachesAll(s, []NodeID{relay, dst}) {
		t.Error("re-enabled: reachability not restored")
	}
}
