package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The text format is line-oriented:
//
//	# comment
//	node <name>
//	edge <from> <to> <cost>
//	link <a> <b> <cost>       (two directed edges)
//
// Node lines may be omitted: edge endpoints are created on first use.

// Encode writes the graph (active part only) in the text format.
func (g *Graph) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for v, name := range g.names {
		if g.inactive[v] {
			continue
		}
		if _, err := fmt.Fprintf(bw, "node %s\n", name); err != nil {
			return err
		}
	}
	for id := range g.edges {
		if !g.EdgeActive(id) {
			continue
		}
		e := g.edges[id]
		if _, err := fmt.Fprintf(bw, "edge %s %s %g\n", g.names[e.From], g.names[e.To], e.Cost); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// String renders the graph in the text format.
func (g *Graph) String() string {
	var sb strings.Builder
	if err := g.Encode(&sb); err != nil {
		return fmt.Sprintf("graph<error: %v>", err)
	}
	return sb.String()
}

// Decode parses a graph from the text format.
func Decode(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	getNode := func(name string) NodeID {
		if id, ok := g.NodeByName(name); ok {
			return id
		}
		return g.AddNode(name)
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want 'node <name>'", lineNo)
			}
			if _, ok := g.NodeByName(fields[1]); ok {
				return nil, fmt.Errorf("graph: line %d: duplicate node %q", lineNo, fields[1])
			}
			g.AddNode(fields[1])
		case "edge", "link":
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: want '%s <from> <to> <cost>'", lineNo, fields[0])
			}
			cost, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad cost %q: %v", lineNo, fields[3], err)
			}
			if cost <= 0 {
				return nil, fmt.Errorf("graph: line %d: cost must be positive", lineNo)
			}
			from, to := getNode(fields[1]), getNode(fields[2])
			if from == to {
				return nil, fmt.Errorf("graph: line %d: self-loop on %q", lineNo, fields[1])
			}
			if fields[0] == "edge" {
				g.AddEdge(from, to, cost)
			} else {
				g.AddLink(from, to, cost)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	return g, sc.Err()
}

// DOT renders the active part of the graph in Graphviz DOT format.
// Nodes listed in highlight are drawn shaded (the paper shades target
// nodes in its figures).
func (g *Graph) DOT(name string, highlight []NodeID) string {
	hl := make(map[NodeID]bool, len(highlight))
	for _, v := range highlight {
		hl[v] = true
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	ids := g.ActiveNodes()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, v := range ids {
		if hl[v] {
			fmt.Fprintf(&sb, "  %q [style=filled, fillcolor=gray80];\n", g.names[v])
		} else {
			fmt.Fprintf(&sb, "  %q;\n", g.names[v])
		}
	}
	for id := range g.edges {
		if !g.EdgeActive(id) {
			continue
		}
		e := g.edges[id]
		fmt.Fprintf(&sb, "  %q -> %q [label=%q];\n", g.names[e.From], g.names[e.To], trimFloat(e.Cost))
	}
	sb.WriteString("}\n")
	return sb.String()
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', 6, 64)
}
