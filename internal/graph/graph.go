// Package graph implements the platform model of Beaumont, Legrand,
// Marchal and Robert (RR-5123): an edge-weighted digraph G = (V, E, c)
// whose edge weights c(j,k) give the time needed to send one unit-size
// message from node j to node k under the bidirectional one-port model.
//
// Nodes carry stable integer identifiers. Heuristics such as REDUCED
// BROADCAST repeatedly remove nodes from the platform; to keep every
// identifier valid across such restrictions the graph carries an
// activity mask instead of physically deleting nodes: Deactivate hides a
// node and all its incident edges from every query and algorithm.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node of a Graph. IDs are dense, start at 0, and
// remain stable when nodes are deactivated.
type NodeID int

// None is the NodeID used to mean "no node" (for example the parent of a
// tree root).
const None NodeID = -1

// Edge is a directed communication link. Cost is the time needed to
// transfer one unit-size message across the link.
type Edge struct {
	ID   int
	From NodeID
	To   NodeID
	Cost float64
}

// Graph is a directed platform graph with stable node IDs and an
// activity mask. The zero value is an empty graph ready to use.
//
// Besides the node activity mask, individual edges can be disabled
// (DisableEdge) and their costs rescaled (SetEdgeCost): the what-if
// resilience engine uses both to model link failures and bandwidth
// degradation without rebuilding the platform.
type Graph struct {
	names    []string
	inactive []bool
	edges    []Edge
	edgeOff  []bool  // lazily allocated on the first DisableEdge
	out      [][]int // node -> edge IDs leaving it
	in       [][]int // node -> edge IDs entering it
	byName   map[string]NodeID
	stamp    uint64 // bumped on every mutation; see Stamp
}

// Stamp returns the graph's mutation counter: every operation that can
// change what an algorithm observes — adding nodes or edges, the
// activity masks, edge costs — bumps it. Derived structure caches (the
// tree Classifier) compare stamps to decide whether a cached result is
// still about the current platform; equal stamps on the same Graph
// value always mean unchanged content. Clone copies the stamp, so a
// clone and its parent are distinguished by identity, not stamp.
func (g *Graph) Stamp() uint64 { return g.stamp }

// New returns an empty graph.
func New() *Graph {
	return &Graph{byName: make(map[string]NodeID)}
}

// AddNode adds a node with the given name and returns its ID. Names must
// be unique and non-empty.
func (g *Graph) AddNode(name string) NodeID {
	if name == "" {
		panic("graph: empty node name")
	}
	if g.byName == nil {
		g.byName = make(map[string]NodeID)
	}
	if _, dup := g.byName[name]; dup {
		panic(fmt.Sprintf("graph: duplicate node name %q", name))
	}
	g.stamp++
	id := NodeID(len(g.names))
	g.names = append(g.names, name)
	g.inactive = append(g.inactive, false)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.byName[name] = id
	return id
}

// AddNodes adds n nodes named prefix0..prefix(n-1) and returns their IDs.
func (g *Graph) AddNodes(prefix string, n int) []NodeID {
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = g.AddNode(fmt.Sprintf("%s%d", prefix, i))
	}
	return ids
}

// AddEdge adds a directed edge and returns its ID. Cost must be positive
// and finite (the paper encodes "no link" as c = +inf; here absent edges
// are simply not added).
func (g *Graph) AddEdge(from, to NodeID, cost float64) int {
	g.checkNode(from)
	g.checkNode(to)
	if from == to {
		panic("graph: self-loop")
	}
	if cost <= 0 || math.IsInf(cost, 0) || math.IsNaN(cost) {
		panic(fmt.Sprintf("graph: invalid edge cost %v", cost))
	}
	g.stamp++
	id := len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Cost: cost})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	return id
}

// AddLink adds the pair of directed edges from<->to, both with the given
// cost, and returns their IDs. Platform generators use it for full-duplex
// physical links.
func (g *Graph) AddLink(a, b NodeID, cost float64) (ab, ba int) {
	return g.AddEdge(a, b, cost), g.AddEdge(b, a, cost)
}

func (g *Graph) checkNode(v NodeID) {
	if v < 0 || int(v) >= len(g.names) {
		panic(fmt.Sprintf("graph: node %d out of range", v))
	}
}

// NumNodes returns the total number of nodes, active or not.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumEdges returns the total number of edges, including edges hidden by
// deactivated endpoints.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Name returns the name of node v.
func (g *Graph) Name(v NodeID) string { g.checkNode(v); return g.names[v] }

// NodeByName returns the node with the given name.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge {
	if id < 0 || id >= len(g.edges) {
		panic(fmt.Sprintf("graph: edge %d out of range", id))
	}
	return g.edges[id]
}

// Active reports whether node v is active.
func (g *Graph) Active(v NodeID) bool { g.checkNode(v); return !g.inactive[v] }

// EdgeActive reports whether edge id is enabled and both its endpoints
// are active.
func (g *Graph) EdgeActive(id int) bool {
	e := g.Edge(id)
	return !g.edgeDisabled(id) && !g.inactive[e.From] && !g.inactive[e.To]
}

func (g *Graph) edgeDisabled(id int) bool {
	return g.edgeOff != nil && g.edgeOff[id]
}

// EdgeDisabled reports whether edge id has been disabled with
// DisableEdge (independently of its endpoints' activity).
func (g *Graph) EdgeDisabled(id int) bool {
	g.Edge(id) // range check
	return g.edgeDisabled(id)
}

// DisableEdge hides edge id from every query and algorithm while both
// its endpoints stay active — a single link failure, where Deactivate
// is a whole node failure.
//
// The edge is spliced out of its endpoints' adjacency lists (and
// EnableEdge re-inserts it in edge-ID order), so the hot neighborhood
// loops (OutEdges, InEdges, every path and flow algorithm above them)
// pay nothing for the feature; the mask only backs EdgeActive,
// ActiveEdges and the platform fingerprint.
func (g *Graph) DisableEdge(id int) {
	e := g.Edge(id)
	if g.edgeOff == nil {
		g.edgeOff = make([]bool, len(g.edges))
	}
	if g.edgeOff[id] {
		return
	}
	g.stamp++
	g.edgeOff[id] = true
	g.out[e.From] = removeID(g.out[e.From], id)
	g.in[e.To] = removeID(g.in[e.To], id)
}

// EnableEdge re-enables an edge hidden by DisableEdge.
func (g *Graph) EnableEdge(id int) {
	e := g.Edge(id)
	if g.edgeOff == nil || !g.edgeOff[id] {
		return
	}
	g.stamp++
	g.edgeOff[id] = false
	g.out[e.From] = insertID(g.out[e.From], id)
	g.in[e.To] = insertID(g.in[e.To], id)
}

// removeID splices id out of an adjacency list, preserving order.
func removeID(s []int, id int) []int {
	for i, v := range s {
		if v == id {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// insertID re-inserts id into an adjacency list at its edge-ID-sorted
// position (AddEdge appends ascending IDs, and remove/insert preserve
// that order, so disabling and re-enabling edges in any sequence
// restores the exact original neighborhood order — which the
// deterministic algorithms above rely on).
func insertID(s []int, id int) []int {
	i := sort.SearchInts(s, id)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = id
	return s
}

// SetEdgeCost rescales edge id to the given cost, which must be
// positive and finite like in AddEdge. Trial perturbations are
// expected to restore the original cost when done.
func (g *Graph) SetEdgeCost(id int, cost float64) {
	g.Edge(id) // range check
	if cost <= 0 || math.IsInf(cost, 0) || math.IsNaN(cost) {
		panic(fmt.Sprintf("graph: invalid edge cost %v", cost))
	}
	g.stamp++
	g.edges[id].Cost = cost
}

// Deactivate hides node v and all its incident edges.
func (g *Graph) Deactivate(v NodeID) { g.checkNode(v); g.stamp++; g.inactive[v] = true }

// Activate re-enables node v.
func (g *Graph) Activate(v NodeID) { g.checkNode(v); g.stamp++; g.inactive[v] = false }

// Restrict activates exactly the given node set and deactivates all
// others.
func (g *Graph) Restrict(keep []NodeID) {
	g.stamp++
	for v := range g.inactive {
		g.inactive[v] = true
	}
	for _, v := range keep {
		g.checkNode(v)
		g.inactive[v] = false
	}
}

// ActivateAll re-enables every node.
func (g *Graph) ActivateAll() {
	g.stamp++
	for v := range g.inactive {
		g.inactive[v] = false
	}
}

// ActiveNodes returns the IDs of all active nodes in increasing order.
func (g *Graph) ActiveNodes() []NodeID {
	var ids []NodeID
	for v := range g.names {
		if !g.inactive[v] {
			ids = append(ids, NodeID(v))
		}
	}
	return ids
}

// NumActive returns the number of active nodes.
func (g *Graph) NumActive() int {
	n := 0
	for _, off := range g.inactive {
		if !off {
			n++
		}
	}
	return n
}

// OutEdges appends to dst the IDs of active edges leaving v and returns
// the extended slice. If v itself is inactive the result is empty.
func (g *Graph) OutEdges(v NodeID, dst []int) []int {
	g.checkNode(v)
	if g.inactive[v] {
		return dst
	}
	for _, id := range g.out[v] {
		if !g.inactive[g.edges[id].To] {
			dst = append(dst, id)
		}
	}
	return dst
}

// InEdges appends to dst the IDs of active edges entering v and returns
// the extended slice.
func (g *Graph) InEdges(v NodeID, dst []int) []int {
	g.checkNode(v)
	if g.inactive[v] {
		return dst
	}
	for _, id := range g.in[v] {
		if !g.inactive[g.edges[id].From] {
			dst = append(dst, id)
		}
	}
	return dst
}

// ActiveEdges returns the IDs of all active edges in increasing order.
func (g *Graph) ActiveEdges() []int {
	return g.AppendActiveEdges(nil)
}

// AppendActiveEdges appends the IDs of all active edges in increasing
// order to dst and returns the extended slice — the buffer-reuse
// counterpart of ActiveEdges for loops that would otherwise allocate a
// fresh ID slice per call.
func (g *Graph) AppendActiveEdges(dst []int) []int {
	for id := range g.edges {
		if g.EdgeActive(id) {
			dst = append(dst, id)
		}
	}
	return dst
}

// AppendActiveNodes appends the IDs of all active nodes in increasing
// order to dst and returns the extended slice — the buffer-reuse
// counterpart of ActiveNodes.
func (g *Graph) AppendActiveNodes(dst []NodeID) []NodeID {
	for v := range g.names {
		if !g.inactive[v] {
			dst = append(dst, NodeID(v))
		}
	}
	return dst
}

// FindEdge returns the cheapest active edge from -> to, if any.
func (g *Graph) FindEdge(from, to NodeID) (Edge, bool) {
	g.checkNode(from)
	var best Edge
	found := false
	if g.inactive[from] || g.inactive[to] {
		return best, false
	}
	for _, id := range g.out[from] {
		e := g.edges[id]
		if e.To == to && (!found || e.Cost < best.Cost) {
			best, found = e, true
		}
	}
	return best, found
}

// Clone returns a deep copy of the graph including its activity mask.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		names:    append([]string(nil), g.names...),
		inactive: append([]bool(nil), g.inactive...),
		edges:    append([]Edge(nil), g.edges...),
		edgeOff:  append([]bool(nil), g.edgeOff...),
		out:      make([][]int, len(g.out)),
		in:       make([][]int, len(g.in)),
		byName:   make(map[string]NodeID, len(g.byName)),
		stamp:    g.stamp,
	}
	for v := range g.out {
		c.out[v] = append([]int(nil), g.out[v]...)
		c.in[v] = append([]int(nil), g.in[v]...)
	}
	for name, id := range g.byName {
		c.byName[name] = id
	}
	return c
}

// Reachable returns the set of active nodes reachable from src along
// active edges (src included, if active).
func (g *Graph) Reachable(src NodeID) []bool {
	g.checkNode(src)
	seen := make([]bool, len(g.names))
	if g.inactive[src] {
		return seen
	}
	stack := []NodeID{src}
	seen[src] = true
	var buf []int
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		buf = g.OutEdges(v, buf[:0])
		for _, id := range buf {
			to := g.edges[id].To
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return seen
}

// ReachesAll reports whether every node of targets is reachable from src.
func (g *Graph) ReachesAll(src NodeID, targets []NodeID) bool {
	seen := g.Reachable(src)
	for _, t := range targets {
		if !seen[t] {
			return false
		}
	}
	return true
}

// MaxCost returns the largest active edge cost, or 0 for an edgeless
// graph.
func (g *Graph) MaxCost() float64 {
	m := 0.0
	for id := range g.edges {
		if g.EdgeActive(id) && g.edges[id].Cost > m {
			m = g.edges[id].Cost
		}
	}
	return m
}

// SortedNodeNames returns the names of active nodes in lexicographic
// order (useful for deterministic reports).
func (g *Graph) SortedNodeNames() []string {
	var names []string
	for v, name := range g.names {
		if !g.inactive[v] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
