package graph

import (
	"fmt"
	"math"
)

// The shared platform-mutation vocabulary. A Delta is an ordered batch
// of mutation ops — the one description of "what changed" used by
// every layer that perturbs a platform: the what-if engine's scenarios
// (internal/whatif), the serving layer's PATCH /v1/platforms/{id}
// endpoint and mutation log (internal/serve), and the incremental
// replan entry point (steady.Evaluator.Replan, internal/live). Keeping
// one vocabulary means a link failure is the same object whether it is
// a hypothetical (what-if), an observed event (PATCH) or a replan
// trigger (live), and the fingerprint/version interplay is defined in
// exactly one place.
//
// Ops split into two families:
//
//   - State ops (DeltaDropNode, DeltaRestoreNode, DeltaDisableEdge,
//     DeltaEnableEdge, DeltaSetEdgeCost, DeltaScaleEdgeCost) flip
//     masks or rescale costs. They are exactly invertible: Apply
//     records the observed prior state, so the returned undo delta
//     restores the platform bit-for-bit — same fingerprint, same
//     adjacency order (DisableEdge/EnableEdge splice deterministically).
//   - Structural ops (DeltaAddNode, DeltaAddEdge) grow the platform.
//     Nodes and edges are never physically removed (stable IDs are the
//     package's core invariant), so their undo is logical: the added
//     node is deactivated, the added edge disabled. The platform then
//     *behaves* like before, but NumNodes/NumEdges — and therefore the
//     content fingerprint — keep the growth. Callers that need exact
//     fingerprint restoration (the what-if engine) use state ops only.

// DeltaKind names one mutation op of the shared delta vocabulary.
type DeltaKind uint8

const (
	// DeltaDropNode deactivates a node and all its incident edges — a
	// node failure, or an overlay member leaving.
	DeltaDropNode DeltaKind = iota + 1
	// DeltaRestoreNode re-activates a dropped node.
	DeltaRestoreNode
	// DeltaAddNode adds a new named node (structural; see above).
	DeltaAddNode
	// DeltaAddEdge adds a new directed edge (structural).
	DeltaAddEdge
	// DeltaDisableEdge hides one directed edge — a link failure.
	DeltaDisableEdge
	// DeltaEnableEdge re-enables a disabled edge.
	DeltaEnableEdge
	// DeltaSetEdgeCost sets an edge's cost to an absolute value — a
	// measured bandwidth update.
	DeltaSetEdgeCost
	// DeltaScaleEdgeCost multiplies an edge's cost by a factor — a
	// relative degradation (factor > 1) or recovery (factor < 1).
	DeltaScaleEdgeCost
)

// String returns the kind's wire spelling (the PATCH op names).
func (k DeltaKind) String() string {
	switch k {
	case DeltaDropNode:
		return "drop_node"
	case DeltaRestoreNode:
		return "restore_node"
	case DeltaAddNode:
		return "add_node"
	case DeltaAddEdge:
		return "add_edge"
	case DeltaDisableEdge:
		return "disable_edge"
	case DeltaEnableEdge:
		return "enable_edge"
	case DeltaSetEdgeCost:
		return "set_edge_cost"
	case DeltaScaleEdgeCost:
		return "scale_edge_cost"
	}
	return fmt.Sprintf("delta-kind-%d", uint8(k))
}

// DeltaOp is one mutation. Which fields are meaningful depends on
// Kind; the constructors below set exactly the right ones.
type DeltaOp struct {
	Kind DeltaKind
	// Node is the dropped/restored node.
	Node NodeID
	// Edge is the perturbed edge ID (disable/enable/set/scale).
	Edge int
	// Cost is the absolute cost of DeltaSetEdgeCost and DeltaAddEdge,
	// or the multiplicative factor of DeltaScaleEdgeCost.
	Cost float64
	// Name is the new node's name (DeltaAddNode).
	Name string
	// From and To are the new edge's endpoints (DeltaAddEdge).
	From, To NodeID
}

// DropNodeOp deactivates node v.
func DropNodeOp(v NodeID) DeltaOp { return DeltaOp{Kind: DeltaDropNode, Node: v} }

// RestoreNodeOp re-activates node v.
func RestoreNodeOp(v NodeID) DeltaOp { return DeltaOp{Kind: DeltaRestoreNode, Node: v} }

// AddNodeOp adds a node named name.
func AddNodeOp(name string) DeltaOp { return DeltaOp{Kind: DeltaAddNode, Name: name} }

// AddEdgeOp adds a directed edge from -> to with the given cost.
func AddEdgeOp(from, to NodeID, cost float64) DeltaOp {
	return DeltaOp{Kind: DeltaAddEdge, From: from, To: to, Cost: cost}
}

// DisableEdgeOp disables edge id.
func DisableEdgeOp(id int) DeltaOp { return DeltaOp{Kind: DeltaDisableEdge, Edge: id} }

// EnableEdgeOp re-enables edge id.
func EnableEdgeOp(id int) DeltaOp { return DeltaOp{Kind: DeltaEnableEdge, Edge: id} }

// SetEdgeCostOp sets edge id's cost to the absolute value cost.
func SetEdgeCostOp(id int, cost float64) DeltaOp {
	return DeltaOp{Kind: DeltaSetEdgeCost, Edge: id, Cost: cost}
}

// ScaleEdgeCostOp multiplies edge id's cost by factor.
func ScaleEdgeCostOp(id int, factor float64) DeltaOp {
	return DeltaOp{Kind: DeltaScaleEdgeCost, Edge: id, Cost: factor}
}

// String renders the op for logs and errors.
func (op DeltaOp) String() string {
	switch op.Kind {
	case DeltaDropNode, DeltaRestoreNode:
		return fmt.Sprintf("%s(%d)", op.Kind, op.Node)
	case DeltaAddNode:
		return fmt.Sprintf("%s(%q)", op.Kind, op.Name)
	case DeltaAddEdge:
		return fmt.Sprintf("%s(%d->%d, %g)", op.Kind, op.From, op.To, op.Cost)
	case DeltaDisableEdge, DeltaEnableEdge:
		return fmt.Sprintf("%s(%d)", op.Kind, op.Edge)
	case DeltaSetEdgeCost, DeltaScaleEdgeCost:
		return fmt.Sprintf("%s(%d, %g)", op.Kind, op.Edge, op.Cost)
	}
	return op.Kind.String()
}

// Delta is an ordered batch of mutation ops, applied front to back.
// Later ops may reference nodes and edges created by earlier ops of
// the same delta (IDs are assigned densely, so the caller knows the
// ID an add op will produce).
type Delta []DeltaOp

// validateOp checks op against g's current state, returning an error
// instead of letting the graph mutators panic — deltas carry
// client-controlled input (PATCH bodies, fuzz corpora).
func (g *Graph) validateOp(op DeltaOp) error {
	checkNode := func(v NodeID) error {
		if v < 0 || int(v) >= g.NumNodes() {
			return fmt.Errorf("graph: delta %s: node %d out of range", op, v)
		}
		return nil
	}
	checkEdge := func(id int) error {
		if id < 0 || id >= g.NumEdges() {
			return fmt.Errorf("graph: delta %s: edge %d out of range", op, id)
		}
		return nil
	}
	checkCost := func(c float64) error {
		if c <= 0 || math.IsInf(c, 0) || math.IsNaN(c) {
			return fmt.Errorf("graph: delta %s: invalid cost %v", op, c)
		}
		return nil
	}
	switch op.Kind {
	case DeltaDropNode, DeltaRestoreNode:
		return checkNode(op.Node)
	case DeltaAddNode:
		if op.Name == "" {
			return fmt.Errorf("graph: delta %s: empty node name", op)
		}
		if _, dup := g.NodeByName(op.Name); dup {
			return fmt.Errorf("graph: delta %s: duplicate node name %q", op, op.Name)
		}
		return nil
	case DeltaAddEdge:
		if err := checkNode(op.From); err != nil {
			return err
		}
		if err := checkNode(op.To); err != nil {
			return err
		}
		if op.From == op.To {
			return fmt.Errorf("graph: delta %s: self-loop", op)
		}
		return checkCost(op.Cost)
	case DeltaDisableEdge, DeltaEnableEdge:
		return checkEdge(op.Edge)
	case DeltaSetEdgeCost:
		if err := checkEdge(op.Edge); err != nil {
			return err
		}
		return checkCost(op.Cost)
	case DeltaScaleEdgeCost:
		if err := checkEdge(op.Edge); err != nil {
			return err
		}
		if err := checkCost(op.Cost); err != nil {
			return err
		}
		// The factor and the current cost are both positive and finite,
		// but their product can still overflow.
		return checkCost(g.Edge(op.Edge).Cost * op.Cost)
	}
	return fmt.Errorf("graph: unknown delta kind %d", op.Kind)
}

// applyOp applies one validated op and returns its undo op (Kind 0
// means nothing to undo — the op was already satisfied).
func (g *Graph) applyOp(op DeltaOp) DeltaOp {
	switch op.Kind {
	case DeltaDropNode:
		if !g.Active(op.Node) {
			return DeltaOp{}
		}
		g.Deactivate(op.Node)
		return RestoreNodeOp(op.Node)
	case DeltaRestoreNode:
		if g.Active(op.Node) {
			return DeltaOp{}
		}
		g.Activate(op.Node)
		return DropNodeOp(op.Node)
	case DeltaAddNode:
		v := g.AddNode(op.Name)
		return DropNodeOp(v)
	case DeltaAddEdge:
		id := g.AddEdge(op.From, op.To, op.Cost)
		return DisableEdgeOp(id)
	case DeltaDisableEdge:
		if g.EdgeDisabled(op.Edge) {
			return DeltaOp{}
		}
		g.DisableEdge(op.Edge)
		return EnableEdgeOp(op.Edge)
	case DeltaEnableEdge:
		if !g.EdgeDisabled(op.Edge) {
			return DeltaOp{}
		}
		g.EnableEdge(op.Edge)
		return DisableEdgeOp(op.Edge)
	case DeltaSetEdgeCost:
		old := g.Edge(op.Edge).Cost
		if old == op.Cost {
			return DeltaOp{}
		}
		g.SetEdgeCost(op.Edge, op.Cost)
		return SetEdgeCostOp(op.Edge, old)
	case DeltaScaleEdgeCost:
		old := g.Edge(op.Edge).Cost
		scaled := old * op.Cost
		if scaled == old {
			return DeltaOp{}
		}
		g.SetEdgeCost(op.Edge, scaled)
		// The undo records the exact prior cost, not 1/factor: dividing
		// back is not bit-exact in floating point.
		return SetEdgeCostOp(op.Edge, old)
	}
	panic(fmt.Sprintf("graph: applyOp on unvalidated op %s", op))
}

// Apply applies the delta to g front to back and returns the undo
// delta that restores the prior state (see the package comment on
// structural ops: their undo is logical, not physical). Application is
// atomic: if any op fails validation, every op already applied is
// rolled back and g is exactly as before the call.
//
// The undo delta is ordered for direct application: applying it with
// Apply (or op by op, front to back) restores the prior state. Ops
// that were already satisfied (dropping an inactive node, disabling a
// disabled edge, setting a cost to its current value) apply as no-ops
// and contribute nothing to the undo.
func (d Delta) Apply(g *Graph) (undo Delta, err error) {
	for _, op := range d {
		if err := g.validateOp(op); err != nil {
			// Roll back the applied prefix; undo is already in reverse-
			// application order (see below), so apply it front to back.
			for _, u := range undo {
				g.applyOp(u)
			}
			return nil, err
		}
		if u := g.applyOp(op); u.Kind != 0 {
			// Prepend: undoing must unwind in reverse order (a delta that
			// sets one edge's cost twice must restore the original, not
			// the intermediate).
			undo = append(Delta{u}, undo...)
		}
	}
	return undo, nil
}

// Validate dry-runs the delta against g and reports the first error
// without mutating g. (Sequential semantics — later ops seeing earlier
// ops' effects — require a real application, so Validate applies to a
// clone.)
func (d Delta) Validate(g *Graph) error {
	_, err := d.Apply(g.Clone())
	return err
}
