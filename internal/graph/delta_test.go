package graph

import (
	"math"
	"strings"
	"testing"
)

// deltaTestGraph builds a small two-cluster platform with a cross
// link: s -> a -> b and s -> c, plus a parallel (more expensive)
// s -> a edge so disable/enable exercises splice order.
func deltaTestGraph(t *testing.T) (*Graph, []NodeID) {
	t.Helper()
	g := New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddEdge(s, a, 1)   // 0
	g.AddEdge(a, b, 2)   // 1
	g.AddEdge(s, c, 3)   // 2
	g.AddEdge(s, a, 1.5) // 3: parallel to edge 0
	return g, []NodeID{s, a, b, c}
}

// graphState snapshots everything a state op can touch, for exact
// before/after comparison.
func graphState(g *Graph) string {
	var sb strings.Builder
	g.Encode(&sb)
	return sb.String()
}

func TestDeltaApplyAndUndoRoundTrip(t *testing.T) {
	g, ids := deltaTestGraph(t)
	before := graphState(g)
	beforeFP := fingerprintForTest(g)

	d := Delta{
		DropNodeOp(ids[3]),        // drop c
		DisableEdgeOp(1),          // a->b gone
		SetEdgeCostOp(0, 7),       // s->a repriced
		ScaleEdgeCostOp(3, 1.0/3), // parallel s->a degraded by an inexact factor
	}
	undo, err := d.Apply(g)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if g.Active(ids[3]) || !g.EdgeDisabled(1) || g.Edge(0).Cost != 7 {
		t.Fatalf("delta not applied: active=%v disabled=%v cost=%v",
			g.Active(ids[3]), g.EdgeDisabled(1), g.Edge(0).Cost)
	}
	if _, err := undo.Apply(g); err != nil {
		t.Fatalf("undo Apply: %v", err)
	}
	if got := graphState(g); got != before {
		t.Fatalf("undo did not restore graph:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	if fp := fingerprintForTest(g); fp != beforeFP {
		t.Fatalf("undo did not restore fingerprint: %#x != %#x", fp, beforeFP)
	}
}

// fingerprintForTest is a local content hash over the fields deltas
// touch (activity, disable mask, costs, sizes); the real serving
// fingerprint lives in steady and cannot be imported from here.
func fingerprintForTest(g *Graph) uint64 {
	var h uint64 = 1469598103934665603
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	mix(uint64(g.NumNodes()))
	for v := 0; v < g.NumNodes(); v++ {
		if g.Active(NodeID(v)) {
			mix(uint64(v) + 1)
		}
	}
	mix(uint64(g.NumEdges()))
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(id)
		mix(uint64(e.From)<<32 | uint64(e.To))
		mix(math.Float64bits(e.Cost))
		if g.EdgeDisabled(id) {
			mix(uint64(id) + 7)
		}
	}
	return h
}

func TestDeltaAtomicRollbackOnError(t *testing.T) {
	g, ids := deltaTestGraph(t)
	before := graphState(g)

	d := Delta{
		DisableEdgeOp(0),
		SetEdgeCostOp(1, 9),
		DropNodeOp(ids[1]),
		SetEdgeCostOp(99, 1), // out of range: whole batch must roll back
	}
	if _, err := d.Apply(g); err == nil {
		t.Fatal("Apply succeeded with out-of-range edge")
	}
	if got := graphState(g); got != before {
		t.Fatalf("failed Apply left mutations behind:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	if g.EdgeDisabled(0) || g.Edge(1).Cost != 2 || !g.Active(ids[1]) {
		t.Fatal("rollback incomplete")
	}
}

func TestDeltaUndoUnwindsInReverseOrder(t *testing.T) {
	g, _ := deltaTestGraph(t)
	// Two sets on the same edge: undo must restore the original cost 1,
	// not the intermediate 5.
	d := Delta{SetEdgeCostOp(0, 5), SetEdgeCostOp(0, 11)}
	undo, err := d.Apply(g)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if g.Edge(0).Cost != 11 {
		t.Fatalf("cost = %v, want 11", g.Edge(0).Cost)
	}
	if _, err := undo.Apply(g); err != nil {
		t.Fatalf("undo: %v", err)
	}
	if g.Edge(0).Cost != 1 {
		t.Fatalf("undo restored cost %v, want original 1", g.Edge(0).Cost)
	}
}

func TestDeltaNoOpsProduceEmptyUndo(t *testing.T) {
	g, ids := deltaTestGraph(t)
	g.Deactivate(ids[3])
	g.DisableEdge(1)

	d := Delta{
		DropNodeOp(ids[3]),      // already inactive
		DisableEdgeOp(1),        // already disabled
		SetEdgeCostOp(0, 1),     // already 1
		ScaleEdgeCostOp(0, 1.0), // identity factor
	}
	undo, err := d.Apply(g)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(undo) != 0 {
		t.Fatalf("satisfied ops produced undo %v", undo)
	}
}

func TestDeltaStructuralOps(t *testing.T) {
	g, ids := deltaTestGraph(t)
	n, m := g.NumNodes(), g.NumEdges()

	// Later ops reference the node/edge created earlier in the batch.
	d := Delta{
		AddNodeOp("d"),
		AddEdgeOp(ids[0], NodeID(n), 4),
		SetEdgeCostOp(m, 6),
	}
	undo, err := d.Apply(g)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if g.NumNodes() != n+1 || g.NumEdges() != m+1 {
		t.Fatalf("sizes after add: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Edge(m).Cost != 6 {
		t.Fatalf("new edge cost %v, want 6", g.Edge(m).Cost)
	}
	if _, err := undo.Apply(g); err != nil {
		t.Fatalf("undo: %v", err)
	}
	// Structural undo is logical: sizes keep the growth, but the added
	// parts are dormant.
	if g.NumNodes() != n+1 || g.NumEdges() != m+1 {
		t.Fatal("undo physically removed structure")
	}
	if g.Active(NodeID(n)) || !g.EdgeDisabled(m) {
		t.Fatal("undo did not dormant the added node/edge")
	}
}

func TestDeltaValidateDoesNotMutate(t *testing.T) {
	g, _ := deltaTestGraph(t)
	before := graphState(g)
	good := Delta{DisableEdgeOp(0), AddNodeOp("x")}
	if err := good.Validate(g); err != nil {
		t.Fatalf("Validate(good): %v", err)
	}
	bad := Delta{DisableEdgeOp(0), EnableEdgeOp(-1)}
	if err := bad.Validate(g); err == nil {
		t.Fatal("Validate(bad) = nil")
	}
	if graphState(g) != before || g.NumNodes() != 4 {
		t.Fatal("Validate mutated the graph")
	}
}

func TestDeltaValidationErrors(t *testing.T) {
	g, ids := deltaTestGraph(t)
	cases := []struct {
		name string
		op   DeltaOp
	}{
		{"node out of range", DropNodeOp(99)},
		{"negative node", RestoreNodeOp(-1)},
		{"empty name", AddNodeOp("")},
		{"duplicate name", AddNodeOp("a")},
		{"self loop", AddEdgeOp(ids[0], ids[0], 1)},
		{"edge cost zero", AddEdgeOp(ids[0], ids[2], 0)},
		{"edge out of range", DisableEdgeOp(4)},
		{"set cost negative", SetEdgeCostOp(0, -2)},
		{"set cost nan", SetEdgeCostOp(0, math.NaN())},
		{"scale by zero", ScaleEdgeCostOp(0, 0)},
		{"scale overflow", ScaleEdgeCostOp(2, math.MaxFloat64)},
		{"unknown kind", DeltaOp{Kind: DeltaKind(99)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := graphState(g)
			if _, err := (Delta{tc.op}).Apply(g); err == nil {
				t.Fatalf("Apply(%s) = nil error", tc.op)
			}
			if graphState(g) != before {
				t.Fatal("failed op mutated graph")
			}
		})
	}
}
