package graph

import (
	"container/heap"
	"math"
)

// WeightFunc maps an edge to a non-negative traversal weight. Algorithms
// that take a WeightFunc ignore Edge.Cost and use the function instead,
// which lets callers plug in residual or dual-adjusted costs.
type WeightFunc func(Edge) float64

// CostWeight is the WeightFunc that returns the edge's own cost.
func CostWeight(e Edge) float64 { return e.Cost }

type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// ShortestPaths runs Dijkstra from src over active edges using w as the
// edge weight. It returns dist (math.Inf(1) for unreachable nodes) and
// parentEdge (the edge ID used to reach each node, -1 at src and at
// unreachable nodes).
func (g *Graph) ShortestPaths(src NodeID, w WeightFunc) (dist []float64, parentEdge []int) {
	return g.shortest(src, w, false)
}

// BottleneckPaths is the minimax variant of Dijkstra: the length of a
// path is the maximum edge weight along it. It is the path rule used by
// the MCPH tree heuristic (Section 6 of the paper).
func (g *Graph) BottleneckPaths(src NodeID, w WeightFunc) (dist []float64, parentEdge []int) {
	return g.shortest(src, w, true)
}

func (g *Graph) shortest(src NodeID, w WeightFunc, minimax bool) ([]float64, []int) {
	g.checkNode(src)
	n := len(g.names)
	dist := make([]float64, n)
	parent := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	if g.inactive[src] {
		return dist, parent
	}
	dist[src] = 0
	q := pq{{src, 0}}
	var buf []int
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		buf = g.OutEdges(it.node, buf[:0])
		for _, id := range buf {
			e := g.edges[id]
			wt := w(e)
			if wt < 0 {
				panic("graph: negative edge weight")
			}
			var d float64
			if minimax {
				d = math.Max(it.dist, wt)
			} else {
				d = it.dist + wt
			}
			if d < dist[e.To] {
				dist[e.To] = d
				parent[e.To] = id
				heap.Push(&q, pqItem{e.To, d})
			}
		}
	}
	return dist, parent
}

// MultiSourceBottleneck runs the minimax Dijkstra from a set of sources
// (all at distance 0). Used by MCPH, whose growing tree acts as the
// source set.
func (g *Graph) MultiSourceBottleneck(sources []NodeID, w WeightFunc) (dist []float64, parentEdge []int) {
	n := len(g.names)
	dist = make([]float64, n)
	parentEdge = make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parentEdge[i] = -1
	}
	q := pq{}
	for _, s := range sources {
		g.checkNode(s)
		if g.inactive[s] {
			continue
		}
		if dist[s] > 0 {
			dist[s] = 0
			q = append(q, pqItem{s, 0})
		}
	}
	heap.Init(&q)
	var buf []int
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		buf = g.OutEdges(it.node, buf[:0])
		for _, id := range buf {
			e := g.edges[id]
			wt := w(e)
			if wt < 0 {
				panic("graph: negative edge weight")
			}
			d := math.Max(it.dist, wt)
			if d < dist[e.To] {
				dist[e.To] = d
				parentEdge[e.To] = id
				heap.Push(&q, pqItem{e.To, d})
			}
		}
	}
	return dist, parentEdge
}

// WalkBack reconstructs the edge IDs of the path ending at node v from a
// parentEdge array, ordered from the path start to v. It returns nil if v
// has no recorded parent (v is a source or unreachable).
func (g *Graph) WalkBack(parentEdge []int, v NodeID) []int {
	var rev []int
	for parentEdge[v] >= 0 {
		id := parentEdge[v]
		rev = append(rev, id)
		v = g.edges[id].From
		if len(rev) > len(g.edges) {
			panic("graph: parent cycle")
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
