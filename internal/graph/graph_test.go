package graph

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func diamond(t *testing.T) (*Graph, NodeID, NodeID, NodeID, NodeID) {
	t.Helper()
	g := New()
	s := g.AddNode("S")
	a := g.AddNode("A")
	b := g.AddNode("B")
	d := g.AddNode("D")
	g.AddEdge(s, a, 1)
	g.AddEdge(s, b, 2)
	g.AddEdge(a, d, 3)
	g.AddEdge(b, d, 1)
	return g, s, a, b, d
}

func TestAddAndQuery(t *testing.T) {
	g, s, a, b, d := diamond(t)
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Name(s) != "S" {
		t.Errorf("Name(s) = %q", g.Name(s))
	}
	if id, ok := g.NodeByName("B"); !ok || id != b {
		t.Errorf("NodeByName(B) = %v, %v", id, ok)
	}
	if _, ok := g.NodeByName("missing"); ok {
		t.Error("NodeByName(missing) found something")
	}
	out := g.OutEdges(s, nil)
	if len(out) != 2 {
		t.Fatalf("OutEdges(S) = %v", out)
	}
	in := g.InEdges(d, nil)
	if len(in) != 2 {
		t.Fatalf("InEdges(D) = %v", in)
	}
	e, ok := g.FindEdge(a, d)
	if !ok || e.Cost != 3 {
		t.Errorf("FindEdge(A,D) = %+v, %v", e, ok)
	}
	if _, ok := g.FindEdge(d, a); ok {
		t.Error("FindEdge(D,A) should not exist")
	}
	_ = b
}

func TestAddLink(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	ab, ba := g.AddLink(a, b, 2.5)
	if g.Edge(ab).From != a || g.Edge(ab).To != b || g.Edge(ab).Cost != 2.5 {
		t.Errorf("ab edge wrong: %+v", g.Edge(ab))
	}
	if g.Edge(ba).From != b || g.Edge(ba).To != a {
		t.Errorf("ba edge wrong: %+v", g.Edge(ba))
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	mustPanic("dup name", func() { g.AddNode("a") })
	mustPanic("empty name", func() { g.AddNode("") })
	mustPanic("self loop", func() { g.AddEdge(a, a, 1) })
	mustPanic("zero cost", func() { g.AddEdge(a, b, 0) })
	mustPanic("neg cost", func() { g.AddEdge(a, b, -1) })
	mustPanic("inf cost", func() { g.AddEdge(a, b, math.Inf(1)) })
	mustPanic("bad node", func() { g.Name(NodeID(99)) })
	mustPanic("bad edge", func() { g.Edge(99) })
}

func TestActivityMask(t *testing.T) {
	g, s, a, b, d := diamond(t)
	g.Deactivate(a)
	if g.Active(a) {
		t.Fatal("A still active")
	}
	if g.NumActive() != 3 {
		t.Fatalf("NumActive = %d", g.NumActive())
	}
	if out := g.OutEdges(s, nil); len(out) != 1 || g.Edge(out[0]).To != b {
		t.Fatalf("OutEdges(S) after deactivate = %v", out)
	}
	if in := g.InEdges(d, nil); len(in) != 1 {
		t.Fatalf("InEdges(D) after deactivate = %v", in)
	}
	if got := len(g.ActiveEdges()); got != 2 {
		t.Fatalf("ActiveEdges = %d, want 2", got)
	}
	g.Activate(a)
	if got := len(g.ActiveEdges()); got != 4 {
		t.Fatalf("ActiveEdges after reactivate = %d", got)
	}
	g.Restrict([]NodeID{s, d})
	if g.NumActive() != 2 || len(g.ActiveEdges()) != 0 {
		t.Fatalf("Restrict failed: %d nodes %d edges", g.NumActive(), len(g.ActiveEdges()))
	}
	g.ActivateAll()
	if g.NumActive() != 4 {
		t.Fatalf("ActivateAll: %d", g.NumActive())
	}
}

func TestCloneIndependence(t *testing.T) {
	g, s, a, _, _ := diamond(t)
	c := g.Clone()
	c.Deactivate(a)
	if !g.Active(a) {
		t.Fatal("clone deactivation leaked into original")
	}
	c.AddNode("extra")
	if g.NumNodes() != 4 {
		t.Fatal("clone node add leaked into original")
	}
	if _, ok := c.NodeByName("S"); !ok {
		t.Fatal("clone lost byName index")
	}
	if out := c.OutEdges(s, nil); len(out) != 1 {
		t.Fatalf("clone OutEdges(S) = %v", out)
	}
}

func TestReachable(t *testing.T) {
	g, s, a, b, d := diamond(t)
	seen := g.Reachable(s)
	for _, v := range []NodeID{s, a, b, d} {
		if !seen[v] {
			t.Errorf("node %d not reachable", v)
		}
	}
	if !g.ReachesAll(s, []NodeID{a, b, d}) {
		t.Error("ReachesAll false")
	}
	g.Deactivate(a)
	g.Deactivate(b)
	if g.ReachesAll(s, []NodeID{d}) {
		t.Error("D should be cut off")
	}
	seen = g.Reachable(d)
	if seen[s] {
		t.Error("S should not be reachable from D")
	}
}

func TestShortestPaths(t *testing.T) {
	g, s, a, b, d := diamond(t)
	dist, parent := g.ShortestPaths(s, CostWeight)
	if dist[d] != 3 { // S->B->D = 2+1 beats S->A->D = 4
		t.Fatalf("dist[D] = %v, want 3", dist[d])
	}
	path := g.WalkBack(parent, d)
	if len(path) != 2 || g.Edge(path[0]).To != b || g.Edge(path[1]).To != d {
		t.Fatalf("path = %v", path)
	}
	if dist[a] != 1 || dist[b] != 2 || dist[s] != 0 {
		t.Fatalf("dist = %v", dist)
	}
}

func TestBottleneckPaths(t *testing.T) {
	g, s, _, _, d := diamond(t)
	dist, parent := g.BottleneckPaths(s, CostWeight)
	// S->A->D has max edge 3; S->B->D has max edge 2.
	if dist[d] != 2 {
		t.Fatalf("bottleneck dist[D] = %v, want 2", dist[d])
	}
	path := g.WalkBack(parent, d)
	if len(path) != 2 {
		t.Fatalf("path = %v", path)
	}
}

func TestMultiSourceBottleneck(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.AddEdge(a, c, 5)
	g.AddEdge(b, c, 1)
	g.AddEdge(c, d, 2)
	dist, parent := g.MultiSourceBottleneck([]NodeID{a, b}, CostWeight)
	if dist[c] != 1 {
		t.Fatalf("dist[c] = %v, want 1 (via b)", dist[c])
	}
	if dist[d] != 2 {
		t.Fatalf("dist[d] = %v, want 2", dist[d])
	}
	if g.Edge(parent[c]).From != b {
		t.Fatalf("parent of c should be edge from b")
	}
	if dist[a] != 0 || dist[b] != 0 {
		t.Fatalf("source dists = %v %v", dist[a], dist[b])
	}
}

func TestShortestPathsUnreachable(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	dist, parent := g.ShortestPaths(a, CostWeight)
	if !math.IsInf(dist[b], 1) {
		t.Fatalf("dist[b] = %v", dist[b])
	}
	if p := g.WalkBack(parent, b); p != nil {
		t.Fatalf("path to unreachable = %v", p)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g, _, _, _, _ := diamond(t)
	text := g.String()
	g2, err := Decode(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d nodes, %d/%d edges",
			g2.NumNodes(), g.NumNodes(), g2.NumEdges(), g.NumEdges())
	}
	if g2.String() != text {
		t.Fatalf("round trip text mismatch:\n%s\nvs\n%s", g2.String(), text)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"node",
		"node a\nnode a",
		"edge a b",
		"edge a b zero",
		"edge a b -1",
		"edge a a 1",
		"frobnicate a b 1",
	}
	for _, src := range cases {
		if _, err := Decode(strings.NewReader(src)); err == nil {
			t.Errorf("Decode(%q): expected error", src)
		}
	}
}

func TestDecodeLinkAndComments(t *testing.T) {
	src := "# platform\nlink a b 2\n\nedge b c 1\n"
	g, err := Decode(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("%d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestDOT(t *testing.T) {
	g, s, _, _, d := diamond(t)
	dot := g.DOT("test", []NodeID{d})
	for _, want := range []string{"digraph", `"S" -> "A"`, "gray80"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	_ = s
}

// Property: on random DAG-ish graphs, Dijkstra distances satisfy the
// triangle inequality over every active edge, and bottleneck distances
// are no larger than additive ones.
func TestShortestPathProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 2 + rng.Intn(10)
		ids := g.AddNodes("n", n)
		for i := 0; i < 3*n; i++ {
			a := ids[rng.Intn(n)]
			b := ids[rng.Intn(n)]
			if a != b {
				g.AddEdge(a, b, 0.1+rng.Float64())
			}
		}
		src := ids[0]
		dist, _ := g.ShortestPaths(src, CostWeight)
		bott, _ := g.BottleneckPaths(src, CostWeight)
		for _, id := range g.ActiveEdges() {
			e := g.Edge(id)
			if dist[e.To] > dist[e.From]+e.Cost+1e-12 {
				return false
			}
			if bott[e.To] > math.Max(bott[e.From], e.Cost)+1e-12 {
				return false
			}
		}
		for v := range dist {
			if bott[v] > dist[v]+1e-12 { // max <= sum for positive weights
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeMask covers DisableEdge/EnableEdge: a disabled edge vanishes
// from every query while its endpoints stay active, exactly like a
// single link failure.
func TestEdgeMask(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	ab := g.AddEdge(a, b, 1)
	ab2 := g.AddEdge(a, b, 3) // parallel, slower
	g.AddEdge(b, c, 1)

	g.DisableEdge(ab)
	if g.EdgeActive(ab) || !g.EdgeDisabled(ab) {
		t.Error("disabled edge still active")
	}
	if !g.Active(a) || !g.Active(b) {
		t.Error("disabling an edge deactivated a node")
	}
	if got := g.OutEdges(a, nil); len(got) != 1 || got[0] != ab2 {
		t.Errorf("OutEdges(a) = %v, want [%d]", got, ab2)
	}
	if got := g.InEdges(b, nil); len(got) != 1 || got[0] != ab2 {
		t.Errorf("InEdges(b) = %v, want [%d]", got, ab2)
	}
	if e, ok := g.FindEdge(a, b); !ok || e.ID != ab2 {
		t.Errorf("FindEdge(a,b) = %+v ok=%v, want the parallel edge", e, ok)
	}
	if got := g.ActiveEdges(); len(got) != 2 {
		t.Errorf("ActiveEdges = %v, want 2 edges", got)
	}

	// The mask survives Clone, independently of the original.
	cl := g.Clone()
	if cl.EdgeActive(ab) {
		t.Error("clone lost the edge mask")
	}
	cl.EnableEdge(ab)
	if !cl.EdgeActive(ab) || g.EdgeActive(ab) {
		t.Error("clone edge mask is not independent")
	}

	g.EnableEdge(ab)
	if !g.EdgeActive(ab) {
		t.Error("EnableEdge did not restore the edge")
	}
	// EnableEdge on a never-disabled graph is a no-op.
	g2 := New()
	x := g2.AddNode("x")
	y := g2.AddNode("y")
	xy := g2.AddEdge(x, y, 1)
	g2.EnableEdge(xy)
	if !g2.EdgeActive(xy) {
		t.Error("EnableEdge broke an untouched edge")
	}
}

// TestEdgeMaskReachability: disabling a bridge disconnects exactly the
// nodes behind it.
func TestEdgeMaskReachability(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddEdge(a, b, 1)
	bc := g.AddEdge(b, c, 1)
	if !g.ReachesAll(a, []NodeID{c}) {
		t.Fatal("c unreachable before disable")
	}
	g.DisableEdge(bc)
	if g.ReachesAll(a, []NodeID{c}) {
		t.Error("c reachable across a disabled bridge")
	}
	if !g.ReachesAll(a, []NodeID{b}) {
		t.Error("b lost with the wrong edge")
	}
}

// TestSetEdgeCost checks cost rescaling and its validation.
func TestSetEdgeCost(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	id := g.AddEdge(a, b, 2)
	g.SetEdgeCost(id, 5)
	if got := g.Edge(id).Cost; got != 5 {
		t.Errorf("cost = %v, want 5", got)
	}
	if m := g.MaxCost(); m != 5 {
		t.Errorf("MaxCost = %v, want 5", m)
	}
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetEdgeCost(%v) did not panic", bad)
				}
			}()
			g.SetEdgeCost(id, bad)
		}()
	}
}
