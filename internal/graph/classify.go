package graph

// Topology classification for the steady-state fast paths. On a tree
// platform the optimal multicast period is combinatorial — every
// target has a unique source path, so the LP machinery degenerates to
// a port-occupation scan (Emek–Kutten, "Multicast Communications in
// Tree Networks with Heterogeneous Capacity Constraints") — and the
// planners route around the simplex entirely. Classify is the
// gatekeeper of that routing: it must say ClassTree only when the
// combinatorial formula is provably the LP optimum, and anything it is
// not sure about is ClassGeneral (the LP is always correct, only
// slower), so every structural ambiguity falls back.

// Class is the topology class of a platform's active-edge view rooted
// at a source node.
type Class uint8

const (
	// ClassGeneral is any platform the fast paths make no claim about.
	ClassGeneral Class = iota
	// ClassTree means the active subgraph reachable from the root has
	// tree undirected support with no parallel directed edges: every
	// reachable node is joined to its BFS parent by at most one edge in
	// each direction, and no other edges exist between reachable nodes.
	// Every source->target flow is then forced onto the unique tree
	// path, which is what makes the combinatorial period exact.
	ClassTree
)

// TreeView is the rooted orientation a classification produces: the
// BFS forest of the active subgraph reachable from Root, plus the
// class verdict. The slices are owned by the Classifier that produced
// the view and are only valid until its next Classify call.
type TreeView struct {
	Class Class
	Root  NodeID
	// ParentEdge maps every node to the edge entering it on its unique
	// path from Root (-1 for the root itself and for nodes the root
	// does not reach). Meaningful only when Class is ClassTree.
	ParentEdge []int
	// Order lists the nodes reachable from Root in BFS order, root
	// first. Processing it in reverse visits children before parents,
	// which is how the rate formulas accumulate subtree target counts
	// without recursion.
	Order []NodeID
}

// IsTree reports whether the view classified as a tree.
func (v *TreeView) IsTree() bool { return v.Class == ClassTree }

// Classifier computes and caches TreeViews. It memoises the last
// (graph, stamp, root) triple, so repeated classification of an
// unmutated platform — the common case between evaluator calls — is
// free, while any mutation (DisableEdge, SetEdgeCost, Deactivate, …)
// bumps the graph stamp and invalidates the cache automatically. The
// zero value is ready to use. A Classifier is not safe for concurrent
// use; it belongs to exactly one evaluator.
type Classifier struct {
	g     *Graph // cache key; also pins the graph while cached
	stamp uint64
	root  NodeID
	valid bool
	view  TreeView

	buf     []int  // adjacency scratch
	revSeen []bool // per-node reverse-arc dedupe scratch
}

// Invalidate drops the memoised view (and the graph reference pinning
// it). Classification is a pure function of the platform content, so
// this is never needed for correctness — it exists so long-lived
// evaluators can stop pinning a platform they are done with.
func (c *Classifier) Invalidate() {
	c.g = nil
	c.valid = false
}

// Classify returns the TreeView of g's active-edge view rooted at
// root. The returned view is owned by the classifier and valid until
// the next Classify or Invalidate call.
func (c *Classifier) Classify(g *Graph, root NodeID) *TreeView {
	if c.valid && c.g == g && c.stamp == g.stamp && c.root == root {
		return &c.view
	}
	c.g, c.stamp, c.root = g, g.stamp, root
	c.valid = true
	c.classify(g, root)
	return &c.view
}

// classify recomputes the view. The tree test exploits the BFS
// orientation: the undirected support of the reachable active subgraph
// is a tree if and only if every active edge between reached nodes is
// either the BFS parent arc of its head or the exact reverse of the
// parent arc of its tail — any other edge closes an undirected cycle —
// and no ordered pair carries two such edges (parallel links would let
// the LP split load, which the combinatorial formula does not model).
func (c *Classifier) classify(g *Graph, root NodeID) {
	n := g.NumNodes()
	v := &c.view
	v.Root = root
	v.Class = ClassGeneral
	if cap(v.ParentEdge) < n {
		v.ParentEdge = make([]int, n)
	}
	v.ParentEdge = v.ParentEdge[:n]
	for i := range v.ParentEdge {
		v.ParentEdge[i] = -1
	}
	v.Order = v.Order[:0]
	g.checkNode(root)
	if !g.Active(root) {
		return
	}

	// BFS from the root over active out-edges, recording parent arcs.
	v.Order = append(v.Order, root)
	for qi := 0; qi < len(v.Order); qi++ {
		u := v.Order[qi]
		c.buf = g.OutEdges(u, c.buf[:0])
		for _, id := range c.buf {
			to := g.edges[id].To
			if to != root && v.ParentEdge[to] == -1 {
				v.ParentEdge[to] = id
				v.Order = append(v.Order, to)
			}
		}
	}

	// Verdict pass: every active edge whose endpoints the root reaches
	// must be a parent arc or the unique reverse of one. Edges touching
	// unreached nodes are irrelevant to the optimum — no source flow
	// can traverse them and return — and are ignored, like the LP
	// effectively does. reverseSeen dedupes parallel reverse arcs per
	// tail (the parent arc is deduped for free: only one edge ID can
	// equal ParentEdge[head]).
	reached := func(u NodeID) bool { return u == root || v.ParentEdge[u] >= 0 }
	if cap(c.revSeen) < n {
		c.revSeen = make([]bool, n)
	}
	reverseSeen := c.revSeen[:n]
	for i := range reverseSeen {
		reverseSeen[i] = false
	}
	for id := range g.edges {
		if !g.EdgeActive(id) {
			continue
		}
		e := g.edges[id]
		if !reached(e.From) || !reached(e.To) {
			continue
		}
		if v.ParentEdge[e.To] == id {
			continue // the parent arc itself
		}
		// Reverse of the tail's parent arc: From's parent must be To.
		pe := -1
		if e.From != root {
			pe = v.ParentEdge[e.From]
		}
		if pe >= 0 && g.edges[pe].From == e.To && !reverseSeen[e.From] {
			reverseSeen[e.From] = true
			continue
		}
		return // cross edge, parallel edge, or second reverse arc
	}
	v.Class = ClassTree
}
