// Package prefix implements the pipelined parallel-prefix problem of
// Section 4.2: processors P_0..P_N hold values x_0..x_N and each P_i
// must end up with y_i = x_0 + x_1 + ... + x_i for an associative,
// non-commutative operator. The package models the enriched platform
// (G, P, f, g, w) — communication costs per partial result [k,m] of
// size f(k,m), computation tasks T_{k,l,m} of weight g on processors of
// speed w — and provides prefix allocation schemes, whose per-resource
// loads determine the steady-state period of a pipelined series of
// prefix operations.
//
// It also builds the Theorem 5 reduction from MINIMUM-SET-COVER
// (Figure 3), the proof that pipelined parallel prefix is NP-complete.
package prefix

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
)

// Platform is a parallel-prefix instance (G, P, f, g, w).
type Platform struct {
	G *graph.Graph
	// Participants lists P_0..P_N in order; P_i initially holds x_i and
	// must compute y_i.
	Participants []graph.NodeID
	// Compute is the per-node time per unit of task weight
	// (math.Inf(1) for nodes that do not compute).
	Compute []float64
	// Size is f(k, m), the size of the partial result [k, m].
	Size func(k, m int) float64
	// Work is g(k, l, m), the weight of task T_{k,l,m} which reduces
	// [k, l] and [l+1, m] into [k, m].
	Work func(k, l, m int) float64
}

// N returns the largest prefix index (participants are P_0..P_N).
func (p *Platform) N() int { return len(p.Participants) - 1 }

// Validate checks the platform's shape.
func (p *Platform) Validate() error {
	if len(p.Participants) < 2 {
		return errors.New("prefix: need at least two participants")
	}
	if len(p.Compute) != p.G.NumNodes() {
		return errors.New("prefix: Compute must have one entry per node")
	}
	if p.Size == nil || p.Work == nil {
		return errors.New("prefix: Size and Work functions required")
	}
	for i, v := range p.Participants {
		if !p.G.Active(v) {
			return fmt.Errorf("prefix: participant %d inactive", i)
		}
		if math.IsInf(p.Compute[v], 1) {
			return fmt.Errorf("prefix: participant %d cannot compute", i)
		}
	}
	return nil
}

// UnitSize is the paper's f for the reduction: the size of [k, m] is
// the length of the reduced interval.
func UnitSize(k, m int) float64 { return float64(m - k + 1) }

// UnitWork is the paper's g == 1.
func UnitWork(k, l, m int) float64 { return 1 }

// Step is one action of a prefix allocation scheme: either a transfer
// of the partial result [K, M] along Edge, or (Edge == -1) the
// execution of task T_{K,L,M} on Node.
type Step struct {
	Edge    int
	Node    graph.NodeID
	K, L, M int
	Time    float64
}

// Scheme is a prefix allocation scheme: the full list of transfers and
// computations of one pipelined prefix instance, with the accumulated
// per-resource occupation times that bound the steady-state period.
type Scheme struct {
	p     *Platform
	Steps []Step
	send  []float64
	recv  []float64
	comp  []float64
}

// NewScheme returns an empty scheme over the platform.
func NewScheme(p *Platform) (*Scheme, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.G.NumNodes()
	return &Scheme{
		p:    p,
		send: make([]float64, n),
		recv: make([]float64, n),
		comp: make([]float64, n),
	}, nil
}

// Send records the transfer of [k, m] over the given edge.
func (s *Scheme) Send(edgeID, k, m int) error {
	if !s.p.G.EdgeActive(edgeID) {
		return fmt.Errorf("prefix: edge %d inactive", edgeID)
	}
	if k > m {
		return fmt.Errorf("prefix: bad interval [%d, %d]", k, m)
	}
	e := s.p.G.Edge(edgeID)
	t := s.p.Size(k, m) * e.Cost
	s.send[e.From] += t
	s.recv[e.To] += t
	s.Steps = append(s.Steps, Step{Edge: edgeID, Node: e.From, K: k, L: -1, M: m, Time: t})
	return nil
}

// ComputeTask records the execution of T_{k,l,m} on node v.
func (s *Scheme) ComputeTask(v graph.NodeID, k, l, m int) error {
	if k > l || l >= m {
		return fmt.Errorf("prefix: bad task T_{%d,%d,%d}", k, l, m)
	}
	w := s.p.Compute[v]
	if math.IsInf(w, 1) {
		return fmt.Errorf("prefix: node %s cannot compute", s.p.G.Name(v))
	}
	t := s.p.Work(k, l, m) * w
	s.comp[v] += t
	s.Steps = append(s.Steps, Step{Edge: -1, Node: v, K: k, L: l, M: m, Time: t})
	return nil
}

// Period returns the steady-state period of the pipelined scheme: the
// maximum, over all nodes, of send, receive and compute occupation —
// the quantity the Theorem 5 certificate argument bounds.
func (s *Scheme) Period() float64 {
	best := 0.0
	for v := range s.send {
		best = math.Max(best, math.Max(s.send[v], math.Max(s.recv[v], s.comp[v])))
	}
	return best
}

// SendTime, RecvTime and CompTime expose the per-node occupations.
func (s *Scheme) SendTime(v graph.NodeID) float64 { return s.send[v] }

// RecvTime returns the receive occupation of v.
func (s *Scheme) RecvTime(v graph.NodeID) float64 { return s.recv[v] }

// CompTime returns the compute occupation of v.
func (s *Scheme) CompTime(v graph.NodeID) float64 { return s.comp[v] }

// ChainScheme is the straightforward pipeline over the participant
// chain: P_i forwards the singleton values x_0..x_i to P_{i+1} and
// computes y_i locally by left-to-right reduction. It requires an edge
// between consecutive participants and is the baseline scheduler used
// by the examples.
func ChainScheme(p *Platform) (*Scheme, error) {
	s, err := NewScheme(p)
	if err != nil {
		return nil, err
	}
	n := p.N()
	for i := 0; i < n; i++ {
		e, ok := p.G.FindEdge(p.Participants[i], p.Participants[i+1])
		if !ok {
			return nil, fmt.Errorf("prefix: no edge between participants %d and %d", i, i+1)
		}
		for q := 0; q <= i; q++ {
			if err := s.Send(e.ID, q, q); err != nil {
				return nil, err
			}
		}
	}
	for i := 1; i <= n; i++ {
		for q := 1; q <= i; q++ {
			if err := s.ComputeTask(p.Participants[i], 0, q-1, q); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}
