package prefix

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/setcover"
)

// Reduction is the Theorem 5 gadget (Figure 3): a parallel-prefix
// platform built from a MINIMUM-SET-COVER instance such that a
// steady-state period of 1 is reachable iff the instance has a cover
// of size at most B. The participant set is {Ps, X'_1, ..., X'_N}.
type Reduction struct {
	P        *Platform
	Ins      setcover.Instance
	B        int
	Source   graph.NodeID // Ps = P_0
	Subsets  []graph.NodeID
	Elements []graph.NodeID // X_i relay nodes
	Primes   []graph.NodeID // X'_i participant nodes
}

// UCost is the Figure 3 weight of edge X_i -> X'_i.
func UCost(i, n int) float64 { return 1/float64(i) - 1/float64(n+1) }

// VCost is the Figure 3 weight of edge X'_i -> X'_{i+1}.
func VCost(i, n int) float64 { return 1/float64(i+1) + 1/(float64(n+1)*float64(i)) }

// Reduce builds the Theorem 5 platform for bound B.
func Reduce(ins setcover.Instance, B int) (*Reduction, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	if B < 1 || B > len(ins.Subsets) {
		return nil, fmt.Errorf("prefix: bound B=%d outside [1, %d]", B, len(ins.Subsets))
	}
	n := ins.NumElements
	g := graph.New()
	r := &Reduction{Ins: ins, B: B, Source: g.AddNode("Ps")}
	for i := range ins.Subsets {
		r.Subsets = append(r.Subsets, g.AddNode(fmt.Sprintf("C%d", i+1)))
	}
	for i := 1; i <= n; i++ {
		r.Elements = append(r.Elements, g.AddNode(fmt.Sprintf("X%d", i)))
	}
	for i := 1; i <= n; i++ {
		r.Primes = append(r.Primes, g.AddNode(fmt.Sprintf("X'%d", i)))
	}
	cb := 1 / float64(B)
	cn := 1 / float64(n)
	for i, s := range ins.Subsets {
		g.AddEdge(r.Source, r.Subsets[i], cb)
		for _, e := range s {
			g.AddEdge(r.Subsets[i], r.Elements[e], cn)
		}
	}
	for i := 1; i <= n; i++ {
		g.AddEdge(r.Elements[i-1], r.Primes[i-1], UCost(i, n))
	}
	for i := 1; i < n; i++ {
		g.AddEdge(r.Primes[i-1], r.Primes[i], VCost(i, n))
	}

	compute := make([]float64, g.NumNodes())
	for v := range compute {
		compute[v] = math.Inf(1)
	}
	participants := append([]graph.NodeID{r.Source}, r.Primes...)
	for _, v := range participants {
		compute[v] = 1 / float64(n)
	}
	r.P = &Platform{
		G:            g,
		Participants: participants,
		Compute:      compute,
		Size:         UnitSize,
		Work:         UnitWork,
	}
	return r, nil
}

// CoverScheme builds the single prefix allocation scheme of the
// Theorem 5 completeness proof from a set cover:
//
//   - Ps sends x_0 to the chosen subsets;
//   - each chosen subset forwards x_0 to the elements it is the
//     leftmost chosen cover of;
//   - each X_i relays x_0 to the participant X'_i;
//   - each X'_i forwards the singletons x_1..x_i down the chain and
//     reduces y_i left-to-right.
//
// With a cover of size <= B every load is <= 1, so the pipelined
// period is exactly 1.
func (r *Reduction) CoverScheme(cover []int) (*Scheme, error) {
	if !r.Ins.Covers(cover) {
		return nil, fmt.Errorf("prefix: %v is not a cover", cover)
	}
	s, err := NewScheme(r.P)
	if err != nil {
		return nil, err
	}
	picked := append([]int(nil), cover...)
	sort.Ints(picked)
	g := r.P.G
	for _, ci := range picked {
		e, _ := g.FindEdge(r.Source, r.Subsets[ci])
		if err := s.Send(e.ID, 0, 0); err != nil {
			return nil, err
		}
	}
	// Leftmost-cover rule: element j is served by the first chosen
	// subset containing it.
	for j := 0; j < r.Ins.NumElements; j++ {
		served := false
		for _, ci := range picked {
			if contains(r.Ins.Subsets[ci], j) {
				e, _ := g.FindEdge(r.Subsets[ci], r.Elements[j])
				if err := s.Send(e.ID, 0, 0); err != nil {
					return nil, err
				}
				served = true
				break
			}
		}
		if !served {
			return nil, fmt.Errorf("prefix: element %d not served", j)
		}
	}
	n := r.Ins.NumElements
	for i := 1; i <= n; i++ {
		e, _ := g.FindEdge(r.Elements[i-1], r.Primes[i-1])
		if err := s.Send(e.ID, 0, 0); err != nil {
			return nil, err
		}
	}
	for i := 1; i < n; i++ {
		e, _ := g.FindEdge(r.Primes[i-1], r.Primes[i])
		for q := 1; q <= i; q++ {
			if err := s.Send(e.ID, q, q); err != nil {
				return nil, err
			}
		}
	}
	for i := 1; i <= n; i++ {
		for q := 1; q <= i; q++ {
			if err := s.ComputeTask(r.Primes[i-1], 0, q-1, q); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
