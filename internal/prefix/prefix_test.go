package prefix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/setcover"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func chainPlatform(t *testing.T, n int, edgeCost, w float64) *Platform {
	t.Helper()
	g := graph.New()
	parts := g.AddNodes("P", n+1)
	for i := 0; i < n; i++ {
		g.AddEdge(parts[i], parts[i+1], edgeCost)
	}
	compute := make([]float64, g.NumNodes())
	for v := range compute {
		compute[v] = w
	}
	return &Platform{
		G:            g,
		Participants: parts,
		Compute:      compute,
		Size:         UnitSize,
		Work:         UnitWork,
	}
}

func TestPlatformValidate(t *testing.T) {
	p := chainPlatform(t, 2, 1, 0.5)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Participants = p.Participants[:1]
	if err := p.Validate(); err == nil {
		t.Error("single participant accepted")
	}
	p = chainPlatform(t, 2, 1, 0.5)
	p.Compute[p.Participants[1]] = math.Inf(1)
	if err := p.Validate(); err == nil {
		t.Error("non-computing participant accepted")
	}
	p = chainPlatform(t, 2, 1, 0.5)
	p.Compute = p.Compute[:1]
	if err := p.Validate(); err == nil {
		t.Error("short Compute slice accepted")
	}
}

func TestChainSchemeLoads(t *testing.T) {
	// P0 -> P1 -> P2, unit edges, w = 1/2. P1 forwards x0 and x1 to P2
	// (send 2), P2 receives 2 and computes two tasks (comp 1).
	p := chainPlatform(t, 2, 1, 0.5)
	s, err := ChainScheme(p)
	if err != nil {
		t.Fatal(err)
	}
	p0, p1, p2 := p.Participants[0], p.Participants[1], p.Participants[2]
	if !approx(s.SendTime(p0), 1, 1e-12) || !approx(s.SendTime(p1), 2, 1e-12) {
		t.Errorf("sends = %v, %v", s.SendTime(p0), s.SendTime(p1))
	}
	if !approx(s.RecvTime(p2), 2, 1e-12) {
		t.Errorf("recv(P2) = %v", s.RecvTime(p2))
	}
	if !approx(s.CompTime(p1), 0.5, 1e-12) || !approx(s.CompTime(p2), 1, 1e-12) {
		t.Errorf("comp = %v, %v", s.CompTime(p1), s.CompTime(p2))
	}
	if !approx(s.Period(), 2, 1e-12) {
		t.Errorf("period = %v, want 2", s.Period())
	}
}

func TestChainSchemeNeedsEdges(t *testing.T) {
	g := graph.New()
	parts := g.AddNodes("P", 3)
	g.AddEdge(parts[0], parts[1], 1) // missing P1->P2
	compute := []float64{1, 1, 1}
	p := &Platform{G: g, Participants: parts, Compute: compute, Size: UnitSize, Work: UnitWork}
	if _, err := ChainScheme(p); err == nil {
		t.Fatal("missing edge accepted")
	}
}

func TestSchemeRejectsBadSteps(t *testing.T) {
	p := chainPlatform(t, 2, 1, 0.5)
	s, err := NewScheme(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(0, 2, 1); err == nil {
		t.Error("bad interval accepted")
	}
	if err := s.ComputeTask(p.Participants[0], 1, 1, 1); err == nil {
		t.Error("bad task accepted")
	}
	p.Compute[3-1] = math.Inf(1) // make a non-participant... node 2 is a participant; use explicit graph below
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(a, b, 1)
	pp := &Platform{
		G:            g,
		Participants: []graph.NodeID{a, b},
		Compute:      []float64{1, math.Inf(1)},
		Size:         UnitSize,
		Work:         UnitWork,
	}
	if err := pp.Validate(); err == nil {
		t.Error("participant with infinite compute accepted")
	}
}

func TestFigure3EdgeWeights(t *testing.T) {
	// The proof's key identity: u_i + (i-1) v_{i-1} = 1 for 2 <= i <= N.
	for n := 2; n <= 12; n++ {
		for i := 2; i <= n; i++ {
			got := UCost(i, n) + float64(i-1)*VCost(i-1, n)
			if !approx(got, 1, 1e-12) {
				t.Fatalf("n=%d i=%d: u+iv = %v, want 1", n, i, got)
			}
		}
		for i := 1; i <= n; i++ {
			if UCost(i, n) <= 0 {
				t.Fatalf("u_%d <= 0 for n=%d", i, n)
			}
		}
	}
}

// TestTheorem5Correspondence builds the Figure 3 gadget from the
// paper's Figure 2 set-cover instance and checks the completeness
// argument: with B = K* the cover scheme reaches period exactly 1;
// with B = K* - 1 the source's out-port alone exceeds 1.
func TestTheorem5Correspondence(t *testing.T) {
	ins := setcover.PaperExample()
	cover, err := setcover.Exact(ins)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Reduce(ins, len(cover))
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.CoverScheme(cover)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Period(), 1, 1e-9) {
		t.Fatalf("period with B = K*: %v, want 1", s.Period())
	}
	// Every X'_i (i >= 2) is receive-saturated, as in the proof.
	for i := 2; i <= ins.NumElements; i++ {
		if !approx(s.RecvTime(r.Primes[i-1]), 1, 1e-9) {
			t.Errorf("recv(X'_%d) = %v, want 1", i, s.RecvTime(r.Primes[i-1]))
		}
	}

	r2, err := Reduce(ins, len(cover)-1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r2.CoverScheme(cover)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Period() <= 1+1e-9 {
		t.Fatalf("period with B = K*-1: %v, want > 1", s2.Period())
	}
	if !approx(s2.SendTime(r2.Source), float64(len(cover))/float64(len(cover)-1), 1e-9) {
		t.Errorf("source send = %v", s2.SendTime(r2.Source))
	}
}

func TestCoverSchemeRejectsNonCover(t *testing.T) {
	ins := setcover.PaperExample()
	r, err := Reduce(ins, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.CoverScheme([]int{0}); err == nil {
		t.Fatal("non-cover accepted")
	}
}

func TestReduceValidatesBounds(t *testing.T) {
	ins := setcover.PaperExample()
	if _, err := Reduce(ins, 0); err == nil {
		t.Error("B = 0 accepted")
	}
	if _, err := Reduce(ins, 99); err == nil {
		t.Error("B > |C| accepted")
	}
}

// Property: for random coverable instances and any valid cover of size
// <= B, the cover scheme's period is exactly max(1, |cover|/B); the
// receive saturation identity holds independently of the instance.
func TestCoverSchemePeriodProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		k := 2 + rng.Intn(4)
		ins := setcover.Instance{NumElements: n}
		for i := 0; i < k; i++ {
			var s []int
			for e := 0; e < n; e++ {
				if rng.Intn(2) == 0 {
					s = append(s, e)
				}
			}
			if len(s) == 0 {
				s = []int{rng.Intn(n)}
			}
			ins.Subsets = append(ins.Subsets, s)
		}
		if ins.Validate() != nil {
			return true
		}
		cover, err := setcover.Exact(ins)
		if err != nil {
			return true
		}
		B := 1 + rng.Intn(k)
		r, err := Reduce(ins, B)
		if err != nil {
			return false
		}
		s, err := r.CoverScheme(cover)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want := math.Max(1, float64(len(cover))/float64(B))
		if !approx(s.Period(), want, 1e-9) {
			t.Logf("seed %d: period %v, want %v", seed, s.Period(), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
