package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// classic builds the textbook 6-node max-flow instance with value 23.
func classic(t *testing.T) (*graph.Graph, []float64, graph.NodeID, graph.NodeID) {
	t.Helper()
	g := graph.New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	sink := g.AddNode("t")
	caps := map[int]float64{}
	add := func(from, to graph.NodeID, c float64) {
		caps[g.AddEdge(from, to, 1)] = c
	}
	add(s, a, 16)
	add(s, b, 13)
	add(a, b, 10)
	add(b, a, 4)
	add(a, c, 12)
	add(c, b, 9)
	add(b, d, 14)
	add(d, c, 7)
	add(c, sink, 20)
	add(d, sink, 4)
	capacity := make([]float64, g.NumEdges())
	for id, c := range caps {
		capacity[id] = c
	}
	return g, capacity, s, sink
}

func TestMaxFlowClassic(t *testing.T) {
	g, capacity, s, sink := classic(t)
	value, f := MaxFlow(g, capacity, s, sink)
	if math.Abs(value-23) > 1e-9 {
		t.Fatalf("max flow = %v, want 23", value)
	}
	if !Conserves(g, f, s, sink, value, 1e-9) {
		t.Fatal("flow does not conserve")
	}
	for id, v := range f {
		if v > capacity[id]+1e-9 {
			t.Fatalf("edge %d overloaded: %v > %v", id, v, capacity[id])
		}
	}
}

func TestMaxFlowUpTo(t *testing.T) {
	g, capacity, s, sink := classic(t)
	value, f := MaxFlowUpTo(g, capacity, s, sink, 5)
	if math.Abs(value-5) > 1e-9 {
		t.Fatalf("bounded flow = %v, want 5", value)
	}
	if !Conserves(g, f, s, sink, 5, 1e-9) {
		t.Fatal("bounded flow does not conserve")
	}
}

func TestMaxFlowTrivialCases(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	id := g.AddEdge(a, b, 1)
	capacity := []float64{3}
	if v, _ := MaxFlow(g, capacity, a, a); v != 0 {
		t.Errorf("s == t flow = %v", v)
	}
	if v, _ := MaxFlow(g, capacity, b, a); v != 0 {
		t.Errorf("reverse flow = %v", v)
	}
	g.Deactivate(b)
	if v, _ := MaxFlow(g, capacity, a, b); v != 0 {
		t.Errorf("flow to inactive = %v", v)
	}
	_ = id
}

func TestMinCutClassic(t *testing.T) {
	g, capacity, s, sink := classic(t)
	value, side, cut := MinCut(g, capacity, s, sink)
	if math.Abs(value-23) > 1e-9 {
		t.Fatalf("cut value = %v, want 23", value)
	}
	if !side[s] || side[sink] {
		t.Fatal("cut sides wrong")
	}
	sum := 0.0
	for _, id := range cut {
		sum += capacity[id]
	}
	if math.Abs(sum-23) > 1e-9 {
		t.Fatalf("cut capacity = %v, want 23", sum)
	}
}

func TestDecomposeTwoSinks(t *testing.T) {
	// s sends 1 unit to each of t1, t2 via a shared relay.
	g := graph.New()
	s := g.AddNode("s")
	r := g.AddNode("r")
	t1 := g.AddNode("t1")
	t2 := g.AddNode("t2")
	eSR := g.AddEdge(s, r, 1)
	eRT1 := g.AddEdge(r, t1, 1)
	eRT2 := g.AddEdge(r, t2, 1)
	f := make([]float64, g.NumEdges())
	f[eSR] = 2
	f[eRT1] = 1
	f[eRT2] = 1
	per, err := Decompose(g, f, s, map[graph.NodeID]float64{t1: 1, t2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !Conserves(g, per[t1], s, t1, 1, 1e-9) || !Conserves(g, per[t2], s, t2, 1, 1e-9) {
		t.Fatal("per-sink flows invalid")
	}
	if math.Abs(per[t1][eSR]-1) > 1e-9 || math.Abs(per[t2][eSR]-1) > 1e-9 {
		t.Fatalf("shared edge split wrong: %v / %v", per[t1][eSR], per[t2][eSR])
	}
}

func TestDecomposeThroughSink(t *testing.T) {
	// t1 is both a sink and a relay towards t2.
	g := graph.New()
	s := g.AddNode("s")
	t1 := g.AddNode("t1")
	t2 := g.AddNode("t2")
	e1 := g.AddEdge(s, t1, 1)
	e2 := g.AddEdge(t1, t2, 1)
	f := make([]float64, g.NumEdges())
	f[e1] = 2
	f[e2] = 1
	per, err := Decompose(g, f, s, map[graph.NodeID]float64{t1: 1, t2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(per[t2][e2]-1) > 1e-9 {
		t.Fatalf("t2 flow on e2 = %v", per[t2][e2])
	}
}

func TestDecomposeCancelsCycle(t *testing.T) {
	g := graph.New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	tk := g.AddNode("t")
	eSA := g.AddEdge(s, a, 1)
	eAB := g.AddEdge(a, b, 1)
	eBA := g.AddEdge(b, a, 1)
	eAT := g.AddEdge(a, tk, 1)
	f := make([]float64, g.NumEdges())
	f[eSA] = 1
	f[eAB] = 0.5 // useless circulation a->b->a
	f[eBA] = 0.5
	f[eAT] = 1
	per, err := Decompose(g, f, s, map[graph.NodeID]float64{tk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if per[tk][eAB] > 1e-9 || per[tk][eBA] > 1e-9 {
		t.Fatalf("cycle flow leaked into decomposition: %v", per[tk])
	}
}

func TestDecomposeInsufficient(t *testing.T) {
	g := graph.New()
	s := g.AddNode("s")
	tk := g.AddNode("t")
	e := g.AddEdge(s, tk, 1)
	f := make([]float64, g.NumEdges())
	f[e] = 0.5
	if _, err := Decompose(g, f, s, map[graph.NodeID]float64{tk: 1}); err == nil {
		t.Fatal("expected decomposition failure")
	}
}

func randomNetwork(rng *rand.Rand) (*graph.Graph, []float64, graph.NodeID, graph.NodeID) {
	g := graph.New()
	n := 3 + rng.Intn(8)
	ids := g.AddNodes("n", n)
	var capacity []float64
	for i := 0; i < 3*n; i++ {
		a := ids[rng.Intn(n)]
		b := ids[rng.Intn(n)]
		if a == b {
			continue
		}
		g.AddEdge(a, b, 1)
		capacity = append(capacity, float64(1+rng.Intn(10)))
	}
	return g, capacity, ids[0], ids[n-1]
}

// Property: max-flow value equals min-cut value, the flow respects
// capacities and conservation.
func TestMaxFlowMinCutProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, capacity, s, sink := randomNetwork(rng)
		value, fl := MaxFlow(g, capacity, s, sink)
		if !Conserves(g, fl, s, sink, value, 1e-7) {
			return false
		}
		for _, id := range g.ActiveEdges() {
			if fl[id] > capacity[id]+1e-7 {
				return false
			}
		}
		cutVal, side, cut := MinCut(g, capacity, s, sink)
		if math.Abs(cutVal-value) > 1e-7 {
			return false
		}
		sum := 0.0
		for _, id := range cut {
			sum += capacity[id]
		}
		if math.Abs(sum-value) > 1e-7 {
			return false
		}
		return side[s] && (value == 0 || !side[sink])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: a max flow with integer value decomposes exactly into unit
// flows per sink when demands sum to the value.
func TestDecomposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, capacity, s, sink := randomNetwork(rng)
		value, fl := MaxFlow(g, capacity, s, sink)
		if value < 1 {
			return true
		}
		want := math.Floor(value)
		value, fl = MaxFlowUpTo(g, capacity, s, sink, want)
		per, err := Decompose(g, fl, s, map[graph.NodeID]float64{sink: want})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return Conserves(g, per[sink], s, sink, want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
