// Package flow implements maximum flows, minimum cuts and flow
// decomposition over platform graphs.
//
// The cutting-plane solver for the paper's Multicast-LB program
// (internal/steady) separates violated constraints with min-cut
// computations, recovers the per-target flow variables x^i of the
// original exponential LP with bounded max-flows, and splits the
// aggregate flow of the Multicast-UB program into per-target unit flows
// by path peeling.
package flow

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// eps is the capacity tolerance below which arcs are treated as
// saturated.
const eps = 1e-12

// network is a residual arc representation of the active part of a
// platform graph.
type network struct {
	n     int
	head  [][]int // node -> arc indices
	to    []graph.NodeID
	cap   []float64
	edge  []int // platform edge ID for forward arcs, -1 for residuals
	level []int
	iter  []int
}

func build(g *graph.Graph, capacity []float64) *network {
	nw := &network{n: g.NumNodes()}
	nw.head = make([][]int, nw.n)
	for _, id := range g.ActiveEdges() {
		c := capacity[id]
		if c <= eps {
			continue
		}
		e := g.Edge(id)
		nw.addArc(e.From, e.To, c, id)
	}
	return nw
}

func (nw *network) addArc(from, to graph.NodeID, c float64, edgeID int) {
	nw.head[from] = append(nw.head[from], len(nw.to))
	nw.to = append(nw.to, to)
	nw.cap = append(nw.cap, c)
	nw.edge = append(nw.edge, edgeID)
	nw.head[to] = append(nw.head[to], len(nw.to))
	nw.to = append(nw.to, from)
	nw.cap = append(nw.cap, 0)
	nw.edge = append(nw.edge, -1)
}

func (nw *network) bfs(s, t graph.NodeID) bool {
	nw.level = make([]int, nw.n)
	for i := range nw.level {
		nw.level[i] = -1
	}
	queue := []graph.NodeID{s}
	nw.level[s] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range nw.head[v] {
			if nw.cap[a] > eps && nw.level[nw.to[a]] < 0 {
				nw.level[nw.to[a]] = nw.level[v] + 1
				queue = append(queue, nw.to[a])
			}
		}
	}
	return nw.level[t] >= 0
}

func (nw *network) dfs(v, t graph.NodeID, f float64) float64 {
	if v == t {
		return f
	}
	for ; nw.iter[v] < len(nw.head[v]); nw.iter[v]++ {
		a := nw.head[v][nw.iter[v]]
		w := nw.to[a]
		if nw.cap[a] <= eps || nw.level[w] != nw.level[v]+1 {
			continue
		}
		d := nw.dfs(w, t, math.Min(f, nw.cap[a]))
		if d > eps {
			nw.cap[a] -= d
			nw.cap[a^1] += d
			return d
		}
	}
	return 0
}

// MaxFlow computes a maximum s->t flow over the active edges of g with
// per-edge capacities cap (indexed by edge ID). It returns the flow
// value and the per-edge flow.
func MaxFlow(g *graph.Graph, capacity []float64, s, t graph.NodeID) (float64, []float64) {
	return MaxFlowUpTo(g, capacity, s, t, math.Inf(1))
}

// MaxFlowUpTo is MaxFlow with an early stop: augmentation halts once the
// flow value reaches limit, and the final augmenting path is trimmed so
// the value never exceeds it. The paper's per-target variables x^i are
// unit flows, recovered with limit = 1.
func MaxFlowUpTo(g *graph.Graph, capacity []float64, s, t graph.NodeID, limit float64) (float64, []float64) {
	perEdge := make([]float64, g.NumEdges())
	if s == t || limit <= 0 || !g.Active(s) || !g.Active(t) {
		return 0, perEdge
	}
	nw := build(g, capacity)
	value := 0.0
	for value < limit-eps && nw.bfs(s, t) {
		nw.iter = make([]int, nw.n)
		for value < limit-eps {
			d := nw.dfs(s, t, limit-value)
			if d <= eps {
				break
			}
			value += d
		}
	}
	for _, arcs := range nw.head {
		for _, a := range arcs {
			if nw.edge[a] >= 0 {
				id := nw.edge[a]
				f := capacity[id] - nw.cap[a]
				if f > eps {
					perEdge[id] += f
				}
			}
		}
	}
	return value, perEdge
}

// MinCut computes a minimum s->t cut. It returns the cut value, the
// source side of the cut as a node mask, and the IDs of the active
// edges crossing the cut (source side -> sink side).
func MinCut(g *graph.Graph, capacity []float64, s, t graph.NodeID) (float64, []bool, []int) {
	value, _ := MaxFlow(g, capacity, s, t)
	// Residual reachability from s marks the source side. Rebuild and
	// re-run: MaxFlow discards the residual network, so recompute it.
	nw := build(g, capacity)
	flowed := math.Inf(1)
	for flowed > eps {
		if !nw.bfs(s, t) {
			break
		}
		nw.iter = make([]int, nw.n)
		flowed = 0
		for {
			d := nw.dfs(s, t, math.Inf(1))
			if d <= eps {
				break
			}
			flowed += d
		}
	}
	side := make([]bool, g.NumNodes())
	stack := []graph.NodeID{s}
	side[s] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range nw.head[v] {
			if nw.cap[a] > eps && !side[nw.to[a]] {
				side[nw.to[a]] = true
				stack = append(stack, nw.to[a])
			}
		}
	}
	var cut []int
	for _, id := range g.ActiveEdges() {
		e := g.Edge(id)
		if side[e.From] && !side[e.To] {
			cut = append(cut, id)
		}
	}
	return value, side, cut
}

// Decompose splits a flow f (per-edge values over the active part of g,
// with all flow originating at source s) into one unit flow per sink:
// demands[t] units must terminate at each sink t. Flow cycles are
// cancelled. It returns per-sink per-edge flows and fails if the flow
// cannot cover the demands.
func Decompose(g *graph.Graph, f []float64, s graph.NodeID, demands map[graph.NodeID]float64) (map[graph.NodeID][]float64, error) {
	const tol = 1e-6
	res := make([]float64, len(f))
	copy(res, f)
	remaining := make(map[graph.NodeID]float64, len(demands))
	total := 0.0
	for t, d := range demands {
		if d > eps {
			remaining[t] = d
			total += d
		}
	}
	out := make(map[graph.NodeID][]float64, len(demands))
	for t := range demands {
		out[t] = make([]float64, len(f))
	}

	outArcs := make([][]int, g.NumNodes())
	for _, id := range g.ActiveEdges() {
		e := g.Edge(id)
		outArcs[e.From] = append(outArcs[e.From], id)
	}
	nextArc := func(v graph.NodeID) int {
		for _, id := range outArcs[v] {
			if res[id] > tol {
				return id
			}
		}
		return -1
	}

	guard := 4*len(f)*len(f) + 64
	for total > tol {
		guard--
		if guard < 0 {
			return nil, fmt.Errorf("flow: decomposition did not converge (remaining %.3g)", total)
		}
		// Walk from s along positive arcs until reaching a sink with
		// remaining demand or closing a cycle.
		var path []int
		pos := make(map[graph.NodeID]int) // node -> index in path where first visited
		pos[s] = 0
		v := s
		for {
			if d := remaining[v]; d > tol && v != s {
				break
			}
			id := nextArc(v)
			if id < 0 {
				return nil, fmt.Errorf("flow: walk stuck at %s with %.3g demand left", g.Name(v), total)
			}
			w := g.Edge(id).To
			if at, seen := pos[w]; seen {
				// Cancel the cycle path[at:] + id.
				cyc := append(append([]int(nil), path[at:]...), id)
				m := math.Inf(1)
				for _, c := range cyc {
					m = math.Min(m, res[c])
				}
				for _, c := range cyc {
					res[c] -= m
				}
				// Restart the walk from scratch.
				path = nil
				pos = map[graph.NodeID]int{s: 0}
				v = s
				continue
			}
			path = append(path, id)
			pos[w] = len(path)
			v = w
		}
		amount := remaining[v]
		for _, id := range path {
			amount = math.Min(amount, res[id])
		}
		if amount <= tol {
			return nil, fmt.Errorf("flow: zero-amount path during decomposition")
		}
		sink := v
		for _, id := range path {
			res[id] -= amount
			out[sink][id] += amount
		}
		remaining[sink] -= amount
		total -= amount
	}
	return out, nil
}

// Conserves reports whether f is a valid flow on the active part of g
// shipping value units from s to t: non-negative, conserved at interior
// nodes, with net outflow value at s (within tol).
func Conserves(g *graph.Graph, f []float64, s, t graph.NodeID, value, tol float64) bool {
	div := make([]float64, g.NumNodes())
	for _, id := range g.ActiveEdges() {
		if f[id] < -tol {
			return false
		}
		e := g.Edge(id)
		div[e.From] += f[id]
		div[e.To] -= f[id]
	}
	for _, v := range g.ActiveNodes() {
		want := 0.0
		switch v {
		case s:
			want = value
		case t:
			want = -value
		}
		if math.Abs(div[v]-want) > tol {
			return false
		}
	}
	return true
}
