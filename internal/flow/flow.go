// Package flow implements maximum flows, minimum cuts and flow
// decomposition over platform graphs.
//
// The cutting-plane solver for the paper's Multicast-LB program
// (internal/steady) separates violated constraints with min-cut
// computations, recovers the per-target flow variables x^i of the
// original exponential LP with bounded max-flows, and splits the
// aggregate flow of the Multicast-UB program into per-target unit flows
// by path peeling.
package flow

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// eps is the capacity tolerance below which arcs are treated as
// saturated.
const eps = 1e-12

// Solver owns every scratch allocation of the Dinic max-flow runs: the
// CSR residual network, the BFS levels and queue, and the cut marking.
// Hot loops — the Multicast-LB separation calls one min-cut per target
// per round, the heuristics recover one bounded flow per target per
// trial — hold a Solver and stop paying a network build allocation per
// call; the package-level MaxFlow/MinCut wrappers allocate a private
// one, so their behaviour is unchanged. A Solver is not safe for
// concurrent use.
type Solver struct {
	n       int
	adjPtr  []int32 // node -> arc index range in adjArc
	adjArc  []int32
	to      []int32   // arc -> head node
	cap     []float64 // arc -> residual capacity
	edge    []int32   // arc -> platform edge ID for forward arcs, -1 for residuals
	level   []int32
	iter    []int32
	queue   []int32
	side    []bool
	cut     []int
	edgeBuf []int
}

// NewSolver returns an empty flow solver.
func NewSolver() *Solver { return &Solver{} }

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// build compiles the active, positive-capacity part of g into the CSR
// residual network. Arc 2k is the k-th admitted edge, arc 2k+1 its
// residual, so the partner of arc a is always a^1.
func (sv *Solver) build(g *graph.Graph, capacity []float64) {
	n := g.NumNodes()
	sv.n = n
	sv.edgeBuf = g.AppendActiveEdges(sv.edgeBuf[:0])
	sv.adjPtr = growI32(sv.adjPtr, n+1)
	for i := 0; i <= n; i++ {
		sv.adjPtr[i] = 0
	}
	arcs := 0
	for _, id := range sv.edgeBuf {
		if capacity[id] <= eps {
			continue
		}
		e := g.Edge(id)
		sv.adjPtr[e.From+1]++
		sv.adjPtr[e.To+1]++
		arcs += 2
	}
	for i := 0; i < n; i++ {
		sv.adjPtr[i+1] += sv.adjPtr[i]
	}
	sv.adjArc = growI32(sv.adjArc, arcs)
	sv.to = growI32(sv.to, arcs)
	sv.cap = growF(sv.cap, arcs)
	sv.edge = growI32(sv.edge, arcs)
	sv.iter = growI32(sv.iter, n)
	sv.level = growI32(sv.level, n)
	sv.queue = growI32(sv.queue, n)
	fill := sv.iter // borrow as the CSR fill cursor; reset before use below
	for i := 0; i < n; i++ {
		fill[i] = sv.adjPtr[i]
	}
	a := int32(0)
	for _, id := range sv.edgeBuf {
		if capacity[id] <= eps {
			continue
		}
		e := g.Edge(id)
		sv.to[a] = int32(e.To)
		sv.cap[a] = capacity[id]
		sv.edge[a] = int32(id)
		sv.adjArc[fill[e.From]] = a
		fill[e.From]++
		sv.to[a+1] = int32(e.From)
		sv.cap[a+1] = 0
		sv.edge[a+1] = -1
		sv.adjArc[fill[e.To]] = a + 1
		fill[e.To]++
		a += 2
	}
}

func (sv *Solver) bfs(s, t graph.NodeID) bool {
	for i := 0; i < sv.n; i++ {
		sv.level[i] = -1
	}
	q := sv.queue[:0]
	q = append(q, int32(s))
	sv.level[s] = 0
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for _, a := range sv.adjArc[sv.adjPtr[v]:sv.adjPtr[v+1]] {
			if w := sv.to[a]; sv.cap[a] > eps && sv.level[w] < 0 {
				sv.level[w] = sv.level[v] + 1
				q = append(q, w)
			}
		}
	}
	return sv.level[t] >= 0
}

func (sv *Solver) dfs(v, t int32, f float64) float64 {
	if v == t {
		return f
	}
	for ; sv.iter[v] < sv.adjPtr[v+1]-sv.adjPtr[v]; sv.iter[v]++ {
		a := sv.adjArc[sv.adjPtr[v]+sv.iter[v]]
		w := sv.to[a]
		if sv.cap[a] <= eps || sv.level[w] != sv.level[v]+1 {
			continue
		}
		d := sv.dfs(w, t, math.Min(f, sv.cap[a]))
		if d > eps {
			sv.cap[a] -= d
			sv.cap[a^1] += d
			return d
		}
	}
	return 0
}

// run executes the Dinic phases until limit is reached or no augmenting
// path remains, returning the flow value.
func (sv *Solver) run(s, t graph.NodeID, limit float64) float64 {
	value := 0.0
	for value < limit-eps && sv.bfs(s, t) {
		for i := 0; i < sv.n; i++ {
			sv.iter[i] = 0
		}
		for value < limit-eps {
			d := sv.dfs(int32(s), int32(t), limit-value)
			if d <= eps {
				break
			}
			value += d
		}
	}
	return value
}

// MaxFlowUpTo computes an s->t flow of value at most limit over the
// active edges of g with per-edge capacities (indexed by edge ID). The
// per-edge flow is written into perEdge when it is non-nil (it must
// have length g.NumEdges(); it is zeroed first) and allocated
// otherwise.
func (sv *Solver) MaxFlowUpTo(g *graph.Graph, capacity []float64, s, t graph.NodeID, limit float64, perEdge []float64) (float64, []float64) {
	if perEdge == nil {
		perEdge = make([]float64, g.NumEdges())
	} else {
		for i := range perEdge {
			perEdge[i] = 0
		}
	}
	if s == t || limit <= 0 || !g.Active(s) || !g.Active(t) {
		return 0, perEdge
	}
	sv.build(g, capacity)
	value := sv.run(s, t, limit)
	for a := 0; a < len(sv.to); a += 2 {
		id := sv.edge[a]
		if f := capacity[id] - sv.cap[a]; f > eps {
			perEdge[id] += f
		}
	}
	return value, perEdge
}

// MinCut computes a minimum s->t cut: the cut value and the IDs of the
// active edges crossing from the source side to the sink side. The
// returned slice is owned by the Solver and valid until its next call.
func (sv *Solver) MinCut(g *graph.Graph, capacity []float64, s, t graph.NodeID) (float64, []int) {
	value, side := sv.minCutSide(g, capacity, s, t)
	sv.cut = sv.cut[:0]
	for _, id := range sv.edgeBuf {
		e := g.Edge(id)
		if side[e.From] && !side[e.To] {
			sv.cut = append(sv.cut, id)
		}
	}
	return value, sv.cut
}

// minCutSide runs one max-flow and marks the residual-reachable source
// side on the same network (the historical implementation re-built and
// re-ran the whole flow just to recover the residual). The side mask is
// Solver-owned.
func (sv *Solver) minCutSide(g *graph.Graph, capacity []float64, s, t graph.NodeID) (float64, []bool) {
	sv.build(g, capacity)
	value := sv.run(s, t, math.Inf(1))
	if cap(sv.side) < sv.n {
		sv.side = make([]bool, sv.n)
	}
	sv.side = sv.side[:sv.n]
	for i := range sv.side {
		sv.side[i] = false
	}
	stack := sv.queue[:0]
	stack = append(stack, int32(s))
	sv.side[s] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range sv.adjArc[sv.adjPtr[v]:sv.adjPtr[v+1]] {
			if w := sv.to[a]; sv.cap[a] > eps && !sv.side[w] {
				sv.side[w] = true
				stack = append(stack, w)
			}
		}
	}
	return value, sv.side
}

// MaxFlow computes a maximum s->t flow over the active edges of g with
// per-edge capacities cap (indexed by edge ID). It returns the flow
// value and the per-edge flow.
func MaxFlow(g *graph.Graph, capacity []float64, s, t graph.NodeID) (float64, []float64) {
	return MaxFlowUpTo(g, capacity, s, t, math.Inf(1))
}

// MaxFlowUpTo is MaxFlow with an early stop: augmentation halts once the
// flow value reaches limit, and the final augmenting path is trimmed so
// the value never exceeds it. The paper's per-target variables x^i are
// unit flows, recovered with limit = 1.
func MaxFlowUpTo(g *graph.Graph, capacity []float64, s, t graph.NodeID, limit float64) (float64, []float64) {
	return NewSolver().MaxFlowUpTo(g, capacity, s, t, limit, nil)
}

// MinCut computes a minimum s->t cut. It returns the cut value, the
// source side of the cut as a node mask, and the IDs of the active
// edges crossing the cut (source side -> sink side).
func MinCut(g *graph.Graph, capacity []float64, s, t graph.NodeID) (float64, []bool, []int) {
	sv := NewSolver()
	value, side := sv.minCutSide(g, capacity, s, t)
	out := make([]bool, len(side))
	copy(out, side)
	var cut []int
	for _, id := range sv.edgeBuf {
		e := g.Edge(id)
		if side[e.From] && !side[e.To] {
			cut = append(cut, id)
		}
	}
	return value, out, cut
}

// Decompose splits a flow f (per-edge values over the active part of g,
// with all flow originating at source s) into one unit flow per sink:
// demands[t] units must terminate at each sink t. Flow cycles are
// cancelled. It returns per-sink per-edge flows and fails if the flow
// cannot cover the demands.
func Decompose(g *graph.Graph, f []float64, s graph.NodeID, demands map[graph.NodeID]float64) (map[graph.NodeID][]float64, error) {
	const tol = 1e-6
	res := make([]float64, len(f))
	copy(res, f)
	remaining := make(map[graph.NodeID]float64, len(demands))
	total := 0.0
	for t, d := range demands {
		if d > eps {
			remaining[t] = d
			total += d
		}
	}
	out := make(map[graph.NodeID][]float64, len(demands))
	for t := range demands {
		out[t] = make([]float64, len(f))
	}

	outArcs := make([][]int, g.NumNodes())
	for _, id := range g.ActiveEdges() {
		e := g.Edge(id)
		outArcs[e.From] = append(outArcs[e.From], id)
	}
	nextArc := func(v graph.NodeID) int {
		for _, id := range outArcs[v] {
			if res[id] > tol {
				return id
			}
		}
		return -1
	}

	guard := 4*len(f)*len(f) + 64
	for total > tol {
		guard--
		if guard < 0 {
			return nil, fmt.Errorf("flow: decomposition did not converge (remaining %.3g)", total)
		}
		// Walk from s along positive arcs until reaching a sink with
		// remaining demand or closing a cycle.
		var path []int
		pos := make(map[graph.NodeID]int) // node -> index in path where first visited
		pos[s] = 0
		v := s
		for {
			if d := remaining[v]; d > tol && v != s {
				break
			}
			id := nextArc(v)
			if id < 0 {
				return nil, fmt.Errorf("flow: walk stuck at %s with %.3g demand left", g.Name(v), total)
			}
			w := g.Edge(id).To
			if at, seen := pos[w]; seen {
				// Cancel the cycle path[at:] + id.
				cyc := append(append([]int(nil), path[at:]...), id)
				m := math.Inf(1)
				for _, c := range cyc {
					m = math.Min(m, res[c])
				}
				for _, c := range cyc {
					res[c] -= m
				}
				// Restart the walk from scratch.
				path = nil
				pos = map[graph.NodeID]int{s: 0}
				v = s
				continue
			}
			path = append(path, id)
			pos[w] = len(path)
			v = w
		}
		amount := remaining[v]
		for _, id := range path {
			amount = math.Min(amount, res[id])
		}
		if amount <= tol {
			return nil, fmt.Errorf("flow: zero-amount path during decomposition")
		}
		sink := v
		for _, id := range path {
			res[id] -= amount
			out[sink][id] += amount
		}
		remaining[sink] -= amount
		total -= amount
	}
	return out, nil
}

// Conserves reports whether f is a valid flow on the active part of g
// shipping value units from s to t: non-negative, conserved at interior
// nodes, with net outflow value at s (within tol).
func Conserves(g *graph.Graph, f []float64, s, t graph.NodeID, value, tol float64) bool {
	div := make([]float64, g.NumNodes())
	for _, id := range g.ActiveEdges() {
		if f[id] < -tol {
			return false
		}
		e := g.Edge(id)
		div[e.From] += f[id]
		div[e.To] -= f[id]
	}
	for _, v := range g.ActiveNodes() {
		want := 0.0
		switch v {
		case s:
			want = value
		case t:
			want = -value
		}
		if math.Abs(div[v]-want) > tol {
			return false
		}
	}
	return true
}
