// Package sched builds explicit periodic communication schedules from
// steady-state solutions: given the per-edge occupation times of one
// period, it orchestrates all transfers into non-conflicting time slots
// using the weighted bipartite edge colouring of internal/color — the
// constructive half of the paper's NP-membership certificates, and the
// reconstruction scheme referenced for the scatter-like solutions
// (Multicast-UB, MulticastMultiSource-UB).
package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/color"
	"repro/internal/graph"
	"repro/internal/tree"
)

// tol is the slack tolerance of schedule validation.
const tol = 1e-6

// Slot is one contiguous transfer on a platform edge within a period.
type Slot struct {
	EdgeID int
	Start  float64
	Length float64
}

// Timetable is a periodic schedule: the slots repeat every Period time
// units.
type Timetable struct {
	Period float64
	Slots  []Slot
}

// FromLoads orchestrates per-edge occupation times (occupation[e] =
// n(e) * c(e), the link busy time per period) into a conflict-free
// timetable. It fails if some port's total occupation exceeds the
// period — otherwise König's theorem guarantees the packing fits.
func FromLoads(g *graph.Graph, occupation []float64, period float64) (*Timetable, error) {
	var demands []color.Demand
	type pairKey struct{ from, to graph.NodeID }
	perPair := map[pairKey][]int{}
	for _, id := range g.ActiveEdges() {
		occ := occupation[id]
		if occ <= tol {
			continue
		}
		e := g.Edge(id)
		demands = append(demands, color.Demand{Sender: int(e.From), Receiver: int(e.To), Load: occ})
		k := pairKey{e.From, e.To}
		perPair[k] = append(perPair[k], id)
	}
	ivs, makespan, err := color.Schedule(demands)
	if err != nil {
		return nil, err
	}
	if makespan > period+tol {
		return nil, fmt.Errorf("sched: port load %.6g exceeds period %.6g", makespan, period)
	}
	// Map pair intervals back to edges; parallel edges between the same
	// pair consume the pair's intervals in time order.
	remaining := map[int]float64{}
	for k, ids := range perPair {
		_ = k
		for _, id := range ids {
			remaining[id] = occupation[id]
		}
	}
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].Start < ivs[b].Start })
	tt := &Timetable{Period: period}
	for _, iv := range ivs {
		k := pairKey{graph.NodeID(iv.Sender), graph.NodeID(iv.Receiver)}
		start, left := iv.Start, iv.Length
		for _, id := range perPair[k] {
			if left <= tol {
				break
			}
			take := math.Min(left, remaining[id])
			if take <= tol {
				continue
			}
			tt.Slots = append(tt.Slots, Slot{EdgeID: id, Start: start, Length: take})
			remaining[id] -= take
			start += take
			left -= take
		}
		if left > tol {
			return nil, fmt.Errorf("sched: interval for %v->%v not fully assigned", iv.Sender, iv.Receiver)
		}
	}
	return tt, tt.Validate(g, occupation)
}

// FromTrees builds the one-time-unit periodic timetable carrying rate_k
// messages of each weighted tree per period. It fails if the trees
// overload some port (total rate-weighted cost above 1 per time unit).
func FromTrees(g *graph.Graph, trees []tree.WeightedTree) (*Timetable, error) {
	occupation := make([]float64, g.NumEdges())
	for _, wt := range trees {
		for _, id := range wt.Tree.Edges {
			occupation[id] += wt.Rate * g.Edge(id).Cost
		}
	}
	return FromLoads(g, occupation, 1)
}

// Validate checks the timetable against the one-port model and the
// requested occupations: slots fit in the period, per-edge totals match
// occupation, and no node sends (or receives) two overlapping slots.
func (tt *Timetable) Validate(g *graph.Graph, occupation []float64) error {
	perEdge := make([]float64, g.NumEdges())
	type busy struct{ start, end float64 }
	send := map[graph.NodeID][]busy{}
	recv := map[graph.NodeID][]busy{}
	for _, s := range tt.Slots {
		if s.Length < -tol || s.Start < -tol || s.Start+s.Length > tt.Period+tol {
			return fmt.Errorf("sched: slot %+v escapes the period %.6g", s, tt.Period)
		}
		e := g.Edge(s.EdgeID)
		perEdge[s.EdgeID] += s.Length
		send[e.From] = append(send[e.From], busy{s.Start, s.Start + s.Length})
		recv[e.To] = append(recv[e.To], busy{s.Start, s.Start + s.Length})
	}
	for id, occ := range occupation {
		if math.Abs(perEdge[id]-occ) > tol*(1+occ) {
			return fmt.Errorf("sched: edge %d scheduled %.6g, want %.6g", id, perEdge[id], occ)
		}
	}
	check := func(m map[graph.NodeID][]busy, kind string) error {
		for v, list := range m {
			sort.Slice(list, func(a, b int) bool { return list[a].start < list[b].start })
			for i := 1; i < len(list); i++ {
				if list[i].start < list[i-1].end-tol {
					return fmt.Errorf("sched: %s conflict at %s", kind, g.Name(v))
				}
			}
		}
		return nil
	}
	if err := check(send, "send"); err != nil {
		return err
	}
	return check(recv, "receive")
}
