package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/steady"
	"repro/internal/tree"
)

func TestFromLoadsSimple(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	b := g.AddNode("b")
	e1 := g.AddEdge(s, a, 1)
	e2 := g.AddEdge(s, b, 1)
	occ := make([]float64, g.NumEdges())
	occ[e1] = 0.5
	occ[e2] = 0.5
	tt, err := FromLoads(g, occ, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tt.Slots) != 2 {
		t.Fatalf("slots = %+v", tt.Slots)
	}
	// Both leave S: they must not overlap.
	if tt.Slots[0].Start+tt.Slots[0].Length > tt.Slots[1].Start+1e-9 &&
		tt.Slots[1].Start+tt.Slots[1].Length > tt.Slots[0].Start+1e-9 {
		t.Fatalf("overlapping sends: %+v", tt.Slots)
	}
}

func TestFromLoadsOverload(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	e := g.AddEdge(s, a, 1)
	occ := make([]float64, g.NumEdges())
	occ[e] = 2
	if _, err := FromLoads(g, occ, 1); err == nil {
		t.Fatal("overload accepted")
	}
}

func TestFromLoadsParallelEdges(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	e1 := g.AddEdge(s, a, 1)
	e2 := g.AddEdge(s, a, 2) // parallel link, different speed
	occ := make([]float64, g.NumEdges())
	occ[e1] = 0.25
	occ[e2] = 0.5
	tt, err := FromLoads(g, occ, 1)
	if err != nil {
		t.Fatal(err)
	}
	per := map[int]float64{}
	for _, sl := range tt.Slots {
		per[sl.EdgeID] += sl.Length
	}
	if math.Abs(per[e1]-0.25) > 1e-6 || math.Abs(per[e2]-0.5) > 1e-6 {
		t.Fatalf("per-edge totals = %v", per)
	}
}

// TestScatterScheduleRealisable closes the loop the paper describes for
// scatter-like solutions: solve Multicast-UB, then actually build the
// conflict-free periodic timetable achieving its period.
func TestScatterScheduleRealisable(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	hub := g.AddNode("A")
	ts := g.AddNodes("t", 3)
	g.AddEdge(s, hub, 1)
	for _, v := range ts {
		g.AddEdge(hub, v, 1.0/3)
	}
	p, err := steady.NewProblem(g, s, ts)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := steady.ScatterUB(p)
	if err != nil {
		t.Fatal(err)
	}
	occ := make([]float64, g.NumEdges())
	for _, id := range g.ActiveEdges() {
		occ[id] = ub.EdgeLoad[id] * g.Edge(id).Cost
	}
	tt, err := FromLoads(g, occ, ub.Period)
	if err != nil {
		t.Fatal(err)
	}
	if len(tt.Slots) == 0 {
		t.Fatal("empty timetable")
	}
}

// TestFigure1TreesSchedule orchestrates the paper's two rate-1/2 trees
// into a period-1 timetable: the constructive counterpart of the
// "occupation time of each edge" table in Figure 1(e).
func TestFigure1TreesSchedule(t *testing.T) {
	// Reuse the platform through the tree package to avoid an import
	// cycle with platforms (which imports steady only).
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	b := g.AddNode("b")
	e1 := g.AddEdge(s, a, 0.5)
	e2 := g.AddEdge(a, b, 0.5)
	e3 := g.AddEdge(s, b, 0.5)
	t1 := &tree.Tree{Root: s, Edges: []int{e1, e2}}
	t2 := &tree.Tree{Root: s, Edges: []int{e3, g.AddEdge(b, a, 0.5)}}
	tt, err := FromTrees(g, []tree.WeightedTree{{Tree: t1, Rate: 1}, {Tree: t2, Rate: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if tt.Period != 1 {
		t.Fatalf("period = %v", tt.Period)
	}
}

func TestValidateCatchesBadSlots(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	e := g.AddEdge(s, a, 1)
	occ := make([]float64, g.NumEdges())
	occ[e] = 0.5
	tt := &Timetable{Period: 1, Slots: []Slot{{EdgeID: e, Start: 0.8, Length: 0.5}}}
	if err := tt.Validate(g, occ); err == nil {
		t.Fatal("slot escaping period accepted")
	}
	tt = &Timetable{Period: 1, Slots: []Slot{{EdgeID: e, Start: 0, Length: 0.4}}}
	if err := tt.Validate(g, occ); err == nil {
		t.Fatal("wrong total accepted")
	}
}

// Property: random load profiles that respect the port bound always
// orchestrate into a valid timetable whose per-edge totals are exact.
func TestFromLoadsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		n := 3 + rng.Intn(6)
		ids := g.AddNodes("n", n)
		for i := 0; i < 3*n; i++ {
			a := ids[rng.Intn(n)]
			b := ids[rng.Intn(n)]
			if a != b {
				g.AddEdge(a, b, 0.2+rng.Float64())
			}
		}
		// Random occupations, then scale so no port exceeds the period.
		occ := make([]float64, g.NumEdges())
		for _, id := range g.ActiveEdges() {
			occ[id] = rng.Float64()
		}
		load := make([]float64, g.NumNodes())
		maxLoad := 0.0
		for _, id := range g.ActiveEdges() {
			e := g.Edge(id)
			load[e.From] += occ[id]
			load[e.To] += occ[id]
		}
		for _, l := range load {
			if l > maxLoad {
				maxLoad = l
			}
		}
		if maxLoad == 0 {
			return true
		}
		period := 1.0
		for i := range occ {
			occ[i] /= maxLoad // now every port load <= 1
		}
		tt, err := FromLoads(g, occ, period)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return tt.Validate(g, occ) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
