// Package testutil holds tiny helpers shared by the test suites of the
// implementation packages.
package testutil

import "math"

// Near reports whether x and y agree within eps, treating eps as an
// absolute tolerance widened by the magnitude of the operands (so it
// behaves sensibly for both ratios near 1 and raw LP objectives in the
// thousands). NaNs are never near anything.
func Near(x, y, eps float64) bool {
	if math.IsNaN(x) || math.IsNaN(y) {
		return false
	}
	if math.IsInf(x, 0) || math.IsInf(y, 0) {
		return x == y
	}
	scale := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	return math.Abs(x-y) <= eps*scale
}

// NearSlice reports whether two equal-length slices are element-wise
// Near.
func NearSlice(xs, ys []float64, eps float64) bool {
	if len(xs) != len(ys) {
		return false
	}
	for i := range xs {
		if !Near(xs[i], ys[i], eps) {
			return false
		}
	}
	return true
}
