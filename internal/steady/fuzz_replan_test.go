package steady

import (
	"testing"

	"repro/internal/graph"
)

// FuzzReplanVsCold cross-validates incremental replanning against cold
// re-solves on fuzzer-driven churn: a random platform (tree plus
// chords, so sequences cross the tree/general classification boundary)
// hit by a random delta sequence — edge failures, recoveries, cost
// scalings, repricings, node drops and restores. One warm evaluator
// carries its cut/path pools and workspace across the whole sequence
// (Replan mutates the graph in place); after every event a fresh
// evaluator cold-solves an independently mutated shadow clone and the
// two must agree on feasibility and to 1e-9 on both bound periods.
func FuzzReplanVsCold(f *testing.F) {
	f.Add([]byte{7, 1, 3, 9, 1, 14, 2, 30, 5, 11, 90, 41})
	f.Add([]byte{12, 3, 250, 8, 61, 3, 17, 99, 4, 200, 33, 12, 7})
	f.Add([]byte{5, 0, 5, 5, 5, 5, 5, 5, 5, 5, 129, 200, 4, 66})
	f.Add([]byte{18, 7, 0, 255, 128, 64, 32, 16, 8, 4, 2, 1, 77, 190})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			t.Skip()
		}
		pos := 2
		next := func() int {
			b := int(data[pos%len(data)])
			pos++
			return b
		}
		n := 3 + int(data[0])%14
		flags := data[1]
		bidir := flags&1 != 0
		chords := int(flags>>1) % 4

		g := graph.New()
		ids := g.AddNodes("n", n)
		cost := func() float64 { return 0.25 + float64(next()%32)*0.125 }
		for i := 1; i < n; i++ {
			p := ids[next()%i]
			if bidir {
				g.AddLink(p, ids[i], cost())
			} else {
				g.AddEdge(p, ids[i], cost())
			}
		}
		for c := 0; c < chords; c++ {
			u, v := ids[next()%n], ids[next()%n]
			if u == v {
				continue
			}
			g.AddEdge(u, v, cost())
		}

		var targets []graph.NodeID
		for _, v := range ids[1:] {
			if next()%2 == 0 {
				targets = append(targets, v)
			}
		}
		if len(targets) == 0 {
			targets = append(targets, ids[1+next()%(n-1)])
		}
		p, err := NewProblem(g, ids[0], targets)
		if err != nil {
			t.Fatal(err)
		}

		shadow := g.Clone()
		warm := NewEvaluator()
		factors := []float64{0.5, 0.75, 1.25, 2}
		events := 2 + next()%5
		for ev := 0; ev < events; ev++ {
			var d graph.Delta
			switch next() % 5 {
			case 0:
				d = graph.Delta{graph.ScaleEdgeCostOp(next()%g.NumEdges(), factors[next()%len(factors)])}
			case 1:
				d = graph.Delta{graph.DisableEdgeOp(next() % g.NumEdges())}
			case 2:
				d = graph.Delta{graph.EnableEdgeOp(next() % g.NumEdges())}
			case 3:
				d = graph.Delta{graph.DropNodeOp(ids[1+next()%(n-1)])}
			case 4:
				d = graph.Delta{graph.RestoreNodeOp(ids[1+next()%(n-1)])}
			}
			res, err := warm.Replan(p, d)
			if err != nil {
				// The delta invalidated the problem (dropped the source's
				// reach of a target set member); Replan rolled it back, so
				// the shadow stays in lockstep by skipping it too.
				continue
			}

			if _, err := d.Apply(shadow); err != nil {
				t.Fatalf("event %d: shadow apply diverged: %v", ev, err)
			}
			cold := NewEvaluator()
			cp, err := NewProblem(shadow, ids[0], targets)
			if err != nil {
				t.Fatalf("event %d: shadow problem diverged: %v", ev, err)
			}
			coldLB, err1 := cold.MulticastLB(cp)
			coldSc, err2 := cold.ScatterUB(cp)
			if err1 != nil || err2 != nil {
				t.Fatalf("event %d: cold solve: %v / %v", ev, err1, err2)
			}
			if res.LB.Infeasible() != coldLB.Infeasible() {
				t.Fatalf("event %d: LB infeasible warm=%v cold=%v", ev, res.LB.Infeasible(), coldLB.Infeasible())
			}
			if !res.LB.Infeasible() {
				if diff := relDiff(res.LB.Period, coldLB.Period); diff > 1e-9 {
					t.Fatalf("event %d: warm LB %.17g vs cold %.17g (rel %.3g > 1e-9)",
						ev, res.LB.Period, coldLB.Period, diff)
				}
			}
			if res.Scatter.Infeasible() != coldSc.Infeasible() {
				t.Fatalf("event %d: scatter infeasible warm=%v cold=%v", ev, res.Scatter.Infeasible(), coldSc.Infeasible())
			}
			if !res.Scatter.Infeasible() {
				if diff := relDiff(res.Scatter.Period, coldSc.Period); diff > 1e-9 {
					t.Fatalf("event %d: warm scatter %.17g vs cold %.17g (rel %.3g > 1e-9)",
						ev, res.Scatter.Period, coldSc.Period, diff)
				}
			}
		}
	})
}
