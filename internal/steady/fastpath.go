package steady

import (
	"math"

	"repro/internal/graph"
	"repro/internal/tree"
)

// The tree-topology fast path (DESIGN.md Section 12). When the active
// platform classifies as a tree rooted at the multicast source, every
// source->target flow is forced onto the unique tree path, so the
// Multicast-LB and Multicast-UB optima are port-occupation scans over
// the Steiner subtree — no simplex, no cutting planes, O(V + E) per
// bound. The evaluator consults the classifier on every non-cached
// bound evaluation; because trial ops (DropEdgeMulticast,
// ScaleEdgeMulticast, DropNodeBroadcast) mutate the graph before
// re-evaluating, a what-if clone whose edge-disable mask turns the
// platform into a tree picks the fast path up automatically — the
// graph's mutation stamp invalidates the classifier memo and the next
// classification sees the tree.
//
// Dispatch policy: the classifier errs toward ClassGeneral (parallel
// edges, cross links, anything structurally ambiguous), and
// ClassGeneral always takes the LP, which is correct on every
// platform. The fast path is therefore an optimisation with an exact
// mathematical contract — on ClassTree platforms its period IS the LP
// optimum — verified to <= 1e-9 relative by the cross-validation
// tests and the FuzzTreeVsLP target.

// SetFastPath toggles the tree-topology combinatorial fast path
// (enabled by default). Disabling it forces every bound evaluation
// through the LP — the reference configuration the cross-validation
// tests, the forced-LP what-if runs and the benchmark baselines use.
func (e *Evaluator) SetFastPath(on bool) { e.noFastPath = !on }

// FastPath reports whether the tree fast path is enabled.
func (e *Evaluator) FastPath() bool { return !e.noFastPath }

// treeBound answers a bound evaluation combinatorially when the
// platform classifies as a tree rooted at p.Source. The boolean
// reports whether the fast path applied; false means the caller must
// run the LP. scatter selects Multicast-UB semantics (per-target
// loads) over Multicast-LB semantics (optimistic shared loads).
func (e *Evaluator) treeBound(p Problem, scatter bool) (*Bound, bool) {
	if e.noFastPath {
		return nil, false
	}
	view := e.classifier.Classify(p.G, p.Source)
	if !view.IsTree() {
		e.stats.FastPathMisses++
		return nil, false
	}
	e.stats.FastPathHits++
	load := make([]float64, p.G.NumEdges())
	period := tree.SteadyPeriod(p.G, view, p.Targets, scatter, load, &e.rateSc)
	if math.IsInf(period, 1) {
		return infeasibleBound(), true
	}
	return &Bound{Period: period, EdgeLoad: load}, true
}

// TreeClass classifies the active platform rooted at source through
// the evaluator's memoised classifier — the same view the dispatch
// uses, surfaced for callers that want to predict or report routing
// (exp sweeps, tests).
func (e *Evaluator) TreeClass(g *graph.Graph, source graph.NodeID) graph.Class {
	return e.classifier.Classify(g, source).Class
}
