package steady

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/tiers"
)

// TestEvaluatorMatchesDirectCalls checks every Evaluator program
// against its package-level counterpart on random platforms: caching,
// workspace reuse and pooled warm starts must not change any value.
func TestEvaluatorMatchesDirectCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		p, ok := randomProblem(rng)
		if !ok {
			continue
		}
		ev := NewEvaluator()
		type pair struct {
			name     string
			got, ref func() (*Bound, error)
		}
		var extra []graph.NodeID
		for _, v := range p.G.ActiveNodes() {
			if v != p.Source {
				extra = append(extra, v)
				break
			}
		}
		checks := []pair{
			{"ScatterUB", func() (*Bound, error) { return ev.ScatterUB(p) }, func() (*Bound, error) { return ScatterUB(p) }},
			{"MulticastLB", func() (*Bound, error) { return ev.MulticastLB(p) }, func() (*Bound, error) { return MulticastLB(p) }},
			{"BroadcastEB", func() (*Bound, error) { return ev.BroadcastEB(p.G, p.Source) }, func() (*Bound, error) { return BroadcastEB(p.G, p.Source) }},
			{"MultiSourceUB", func() (*Bound, error) { return ev.MultiSourceUB(p, extra) }, func() (*Bound, error) { return MultiSourceUB(p, extra) }},
		}
		for _, c := range checks {
			got, err := c.got()
			if err != nil {
				t.Fatalf("trial %d: %s (evaluator): %v", trial, c.name, err)
			}
			ref, err := c.ref()
			if err != nil {
				t.Fatalf("trial %d: %s (direct): %v", trial, c.name, err)
			}
			if got.Infeasible() != ref.Infeasible() {
				t.Fatalf("trial %d: %s: feasibility disagrees", trial, c.name)
			}
			if !got.Infeasible() && math.Abs(got.Period-ref.Period) > 1e-5*(1+ref.Period) {
				t.Errorf("trial %d: %s: evaluator %v vs direct %v", trial, c.name, got.Period, ref.Period)
			}
		}
	}
}

// TestEvaluatorCaches checks that identical evaluations are answered
// from the cache and that returned bounds are safe to mutate.
func TestEvaluatorCaches(t *testing.T) {
	p := relay(t)
	ev := NewEvaluator()
	b1, err := ev.MulticastLB(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b1.EdgeLoad {
		b1.EdgeLoad[i] = -99 // must not poison the cache
	}
	b2, err := ev.MulticastLB(p)
	if err != nil {
		t.Fatal(err)
	}
	if b2.EdgeLoad[0] == -99 {
		t.Fatal("cache returned an aliased EdgeLoad")
	}
	st := ev.Stats()
	if st.Evaluations != 2 || st.CacheHits != 1 {
		t.Errorf("stats = %+v, want 2 evaluations with 1 cache hit", st)
	}
	if !approx(b1.Period, b2.Period, 1e-12) {
		t.Errorf("cached period %v != computed %v", b2.Period, b1.Period)
	}
}

// TestEvaluatorTrialOpsRestoreMask checks the incremental heuristic
// operations evaluate the modified platform but leave the activity
// mask untouched.
func TestEvaluatorTrialOpsRestoreMask(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	r := g.AddNode("r")
	tgt := g.AddNode("t")
	g.AddEdge(s, r, 1)
	g.AddEdge(r, tgt, 1)
	g.AddEdge(s, tgt, 5)
	ev := NewEvaluator()

	drop, err := ev.DropNodeBroadcast(g, s, r)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Active(r) {
		t.Fatal("DropNodeBroadcast left the node deactivated")
	}
	g.Deactivate(r)
	want, err := BroadcastEB(g, s)
	g.Activate(r)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(drop.Period, want.Period, 1e-9) {
		t.Errorf("drop trial period %v, want %v", drop.Period, want.Period)
	}

	g.Deactivate(r)
	add, err := ev.AddNodeBroadcast(g, s, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.Active(r) {
		t.Fatal("AddNodeBroadcast left the node activated")
	}
	g.Activate(r)
	full, err := BroadcastEB(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(add.Period, full.Period, 1e-9) {
		t.Errorf("add trial period %v, want %v", add.Period, full.Period)
	}

	p := mustNewProblem(t, g, s, []graph.NodeID{tgt})
	promoted, err := ev.PromoteSource(p, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := MultiSourceUB(p, []graph.NodeID{r})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(promoted.Period, ref.Period, 1e-6) {
		t.Errorf("promote trial period %v, want %v", promoted.Period, ref.Period)
	}
}

func mustNewProblem(t *testing.T, g *graph.Graph, s graph.NodeID, targets []graph.NodeID) Problem {
	t.Helper()
	p, err := NewProblem(g, s, targets)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEvaluatorWarmAndPooledCuts drives the dense-target cutting-plane
// regime on a generated platform: the loop must actually warm-start,
// and a dropped-node re-evaluation must agree with a from-scratch
// solve while reusing the pooled cuts.
func TestEvaluatorWarmAndPooledCuts(t *testing.T) {
	if testing.Short() {
		t.Skip("generated-platform LP solve is slow")
	}
	pl, err := tiers.Generate(tiers.Big(3))
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator()
	b, err := ev.BroadcastEB(pl.G, pl.Source)
	if err != nil {
		t.Fatal(err)
	}
	if b.Infeasible() {
		t.Fatal("generated platform disconnected")
	}
	if b.Rounds > 1 && b.WarmSolves == 0 {
		t.Errorf("cutting plane ran %d rounds with no warm-started solve", b.Rounds)
	}
	drop := pl.LAN[0]
	trial, err := ev.DropNodeBroadcast(pl.G, pl.Source, drop)
	if err != nil {
		t.Fatal(err)
	}
	g2 := pl.G.Clone()
	g2.Deactivate(drop)
	want, err := BroadcastEB(g2, pl.Source)
	if err != nil {
		t.Fatal(err)
	}
	if trial.Infeasible() != want.Infeasible() {
		t.Fatal("dropped-node feasibility disagrees")
	}
	if !trial.Infeasible() && math.Abs(trial.Period-want.Period) > 1e-5*(1+want.Period) {
		t.Errorf("dropped-node trial %v vs reference %v", trial.Period, want.Period)
	}
	st := ev.Stats()
	if st.WarmSolves == 0 {
		t.Errorf("no warm-started solves recorded: %+v", st)
	}
	if st.Cuts == 0 {
		t.Errorf("no cuts pooled: %+v", st)
	}
}

// TestEvaluatorReset checks the serving-shard contract: after Reset the
// evaluator answers bit-identically to a brand-new one (the logical
// state is gone), while the cumulative statistics and the workspace
// survive.
func TestEvaluatorReset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var problems []Problem
	for len(problems) < 3 {
		if p, ok := randomProblem(rng); ok {
			problems = append(problems, p)
		}
	}
	warm := NewEvaluator()
	// Warm the evaluator on the first problems, then reset and replay
	// the last one against a fresh evaluator.
	for _, p := range problems[:2] {
		if _, err := warm.MulticastLB(p); err != nil {
			t.Fatal(err)
		}
		if _, err := warm.ScatterUB(p); err != nil {
			t.Fatal(err)
		}
	}
	statsBefore := warm.Stats()
	if statsBefore.Evaluations == 0 || statsBefore.Solves == 0 {
		t.Fatalf("warmup did no work: %+v", statsBefore)
	}
	warm.Reset()
	if got := warm.Stats(); got.Evaluations != statsBefore.Evaluations || got.Solves != statsBefore.Solves {
		t.Errorf("Reset dropped cumulative stats: before %+v after %+v", statsBefore, got)
	}

	last := problems[2]
	fresh := NewEvaluator()
	got, err := warm.MulticastLB(last)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.MulticastLB(last)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Period) != math.Float64bits(want.Period) {
		t.Errorf("post-Reset period %v is not bit-identical to fresh %v", got.Period, want.Period)
	}
	if len(got.EdgeLoad) != len(want.EdgeLoad) {
		t.Fatalf("EdgeLoad lengths differ: %d vs %d", len(got.EdgeLoad), len(want.EdgeLoad))
	}
	for i := range got.EdgeLoad {
		if math.Float64bits(got.EdgeLoad[i]) != math.Float64bits(want.EdgeLoad[i]) {
			t.Fatalf("EdgeLoad[%d] differs after Reset: %v vs %v", i, got.EdgeLoad[i], want.EdgeLoad[i])
		}
	}
	// Re-evaluating the same problem must now be a cache hit again.
	before := warm.Stats()
	if _, err := warm.MulticastLB(last); err != nil {
		t.Fatal(err)
	}
	if d := warm.Stats().Delta(before); d.CacheHits != 1 {
		t.Errorf("expected a cache hit after re-population, got %+v", d)
	}
}

// TestFingerprint checks the exported platform fingerprint: stable
// across clones, sensitive to costs and to the activity mask.
func TestFingerprint(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(s, a, 1)
	e := g.AddEdge(a, b, 2)
	_ = e
	fp := Fingerprint(g)
	if fp != Fingerprint(g.Clone()) {
		t.Error("clone changed the fingerprint")
	}
	g2 := g.Clone()
	g2.Deactivate(b)
	if Fingerprint(g2) == fp {
		t.Error("deactivating a node did not change the fingerprint")
	}
	g3 := graph.New()
	s3 := g3.AddNode("S")
	a3 := g3.AddNode("a")
	b3 := g3.AddNode("b")
	g3.AddEdge(s3, a3, 1)
	g3.AddEdge(a3, b3, 3)
	if Fingerprint(g3) == fp {
		t.Error("changing an edge cost did not change the fingerprint")
	}
}

// TestEvaluatorEdgeTrialOps checks DropEdgeMulticast and
// ScaleEdgeMulticast: the trials evaluate the perturbed platform,
// match direct solves on a mutated clone, and restore the edge mask
// and costs before returning.
func TestEvaluatorEdgeTrialOps(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	r := g.AddNode("r")
	tgt := g.AddNode("t")
	sr := g.AddEdge(s, r, 1)
	g.AddEdge(r, tgt, 1)
	g.AddEdge(s, tgt, 5)
	p, err := NewProblem(g, s, []graph.NodeID{tgt})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator()

	drop, err := ev.DropEdgeMulticast(p, sr)
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeDisabled(sr) {
		t.Fatal("DropEdgeMulticast left the edge disabled")
	}
	gd := g.Clone()
	gd.DisableEdge(sr)
	pd, err := NewProblem(gd, s, []graph.NodeID{tgt})
	if err != nil {
		t.Fatal(err)
	}
	wantDrop, err := MulticastLB(pd)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(drop.Period, wantDrop.Period, 1e-9) {
		t.Errorf("drop-edge trial period %v, want %v", drop.Period, wantDrop.Period)
	}

	scale, err := ev.ScaleEdgeMulticast(p, sr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Edge(sr).Cost; got != 1 {
		t.Fatalf("ScaleEdgeMulticast left cost %v, want 1", got)
	}
	gs := g.Clone()
	gs.SetEdgeCost(sr, 10)
	ps, err := NewProblem(gs, s, []graph.NodeID{tgt})
	if err != nil {
		t.Fatal(err)
	}
	wantScale, err := MulticastLB(ps)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(scale.Period, wantScale.Period, 1e-9) {
		t.Errorf("scale-edge trial period %v, want %v", scale.Period, wantScale.Period)
	}
	if scale.Period <= drop.Period == (wantScale.Period > wantDrop.Period) {
		t.Errorf("trial ordering inconsistent with direct solves")
	}

	// Dropping the only useful edges leaves the slow direct edge.
	base, err := ev.MulticastLB(p)
	if err != nil {
		t.Fatal(err)
	}
	if scale.Period <= base.Period {
		t.Errorf("degrading the relay edge did not hurt: %v <= %v", scale.Period, base.Period)
	}
}

// TestEvaluatorCloneIndependence pins the Clone contract: a clone
// answers exactly like its parent, and the two share no mutable state —
// solving on one changes neither the other's results nor its
// SolveStats.
func TestEvaluatorCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var problems []Problem
	for len(problems) < 2 {
		if p, ok := randomProblem(rng); ok {
			problems = append(problems, p)
		}
	}
	warm, other := problems[0], problems[1]

	parent := NewEvaluator()
	if _, err := parent.MulticastLB(warm); err != nil {
		t.Fatal(err)
	}
	if _, err := parent.MultiSourceUB(warm, nil); err != nil {
		t.Fatal(err)
	}

	clone := parent.Clone()
	if got := clone.Stats(); got != (SolveStats{}) {
		t.Fatalf("clone starts with stats %+v, want zero", got)
	}

	// The clone answers the warmed problem from the copied cache...
	cb, err := clone.MulticastLB(warm)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := parent.MulticastLB(warm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(cb.Period) != math.Float64bits(pb.Period) {
		t.Errorf("clone period %v != parent period %v", cb.Period, pb.Period)
	}
	if d := clone.Stats(); d.CacheHits != 1 {
		t.Errorf("clone did not inherit the result cache: %+v", d)
	}

	// ...and fresh work on the clone leaves the parent untouched.
	before := parent.Stats()
	if _, err := clone.MulticastLB(other); err != nil {
		t.Fatal(err)
	}
	if _, err := clone.ScatterUB(other); err != nil {
		t.Fatal(err)
	}
	after := parent.Stats()
	if d := after.Delta(before); d != (SolveStats{}) {
		t.Errorf("clone work leaked into parent stats: %+v", d)
	}
	if cs := clone.Stats(); cs.Solves == 0 {
		t.Errorf("clone recorded no solves of its own: %+v", cs)
	}

	// Parent work after the clone point leaves the clone untouched.
	cloneBefore := clone.Stats()
	if _, err := parent.MultiSourceUB(other, nil); err != nil {
		t.Fatal(err)
	}
	if got := clone.Stats(); got != cloneBefore {
		t.Errorf("parent work leaked into clone stats: before %+v after %+v", cloneBefore, got)
	}
}

// TestFingerprintEdgeMask: disabling an edge changes the fingerprint,
// and re-enabling it restores the original value bit-for-bit.
func TestFingerprintEdgeMask(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	id := g.AddEdge(s, a, 1)
	fp := Fingerprint(g)
	g.DisableEdge(id)
	if Fingerprint(g) == fp {
		t.Error("disabling an edge did not change the fingerprint")
	}
	g.EnableEdge(id)
	if Fingerprint(g) != fp {
		t.Error("re-enabling the edge did not restore the fingerprint")
	}
}
