// Package steady implements the steady-state throughput programs of
// RR-5123: the scatter relaxation Multicast-UB, the optimistic bound
// Multicast-LB, the broadcast program Broadcast-EB, and the multi-source
// program MulticastMultiSource-UB.
//
// All programs reason about one unit-size multicast: they minimise the
// period T needed per message, so the steady-state throughput is 1/T.
// The paper writes these programs with one flow variable per (target,
// edge) pair, which is correct but large; this package solves provably
// equivalent compact forms (see DESIGN.md Section 4):
//
//   - Multicast-UB: per-target unit flows coupled by n(e) = sum_i x^i(e)
//     aggregate into a single source-to-targets flow (flow decomposition
//     theorem), giving an LP with one variable per edge.
//   - Multicast-LB: with n(e) = max_i x^i(e), feasibility of n is "every
//     source->target cut has capacity >= 1" (max-flow/min-cut), giving a
//     small LP over n solved by cutting planes with Dinic separation.
//   - Broadcast-EB is Multicast-LB with every node as a target; the
//     paper proves this bound is achievable for broadcast, so it is the
//     exact broadcast period.
//   - MulticastMultiSource-UB aggregates commodities per origin.
package steady

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/lp"
)

// cutTol is the violation tolerance of the cutting-plane separation.
const cutTol = 1e-7

// Problem is a Series-of-Multicasts instance.
type Problem struct {
	G       *graph.Graph
	Source  graph.NodeID
	Targets []graph.NodeID
}

// NewProblem validates and builds a Problem. The source must be active
// and must not belong to the target set; targets must be active,
// non-empty and distinct.
func NewProblem(g *graph.Graph, source graph.NodeID, targets []graph.NodeID) (Problem, error) {
	if !g.Active(source) {
		return Problem{}, errors.New("steady: source is not active")
	}
	if len(targets) == 0 {
		return Problem{}, errors.New("steady: no targets")
	}
	seen := make(map[graph.NodeID]bool, len(targets))
	for _, t := range targets {
		if t == source {
			return Problem{}, errors.New("steady: source cannot be a target")
		}
		if !g.Active(t) {
			return Problem{}, fmt.Errorf("steady: target %s is not active", g.Name(t))
		}
		if seen[t] {
			return Problem{}, fmt.Errorf("steady: duplicate target %s", g.Name(t))
		}
		seen[t] = true
	}
	return Problem{G: g, Source: source, Targets: append([]graph.NodeID(nil), targets...)}, nil
}

// Bound is the outcome of one of the steady-state programs. A Period of
// +Inf means the instance is infeasible (some target unreachable), as in
// the paper's convention Broadcast-EB(P \ Pm) = +Inf.
type Bound struct {
	// Period is the optimal T*: time needed per unit-size multicast.
	Period float64
	// EdgeLoad is the per-edge message load n(e) per multicast (indexed
	// by edge ID; nil when Period is infinite).
	EdgeLoad []float64
	// Rounds counts cutting-plane or column-generation iterations
	// (Multicast-LB and MulticastMultiSource-UB).
	Rounds int
	// Cuts counts generated cut constraints (Multicast-LB only).
	Cuts int
	// Solves counts the LP solves behind this bound.
	Solves int
	// Iterations counts the simplex pivots across those solves.
	Iterations int
	// WarmSolves counts the solves that reused the previous round's
	// optimal basis instead of starting cold.
	WarmSolves int
}

// noteSolve folds one LP solution's solver effort into the bound.
func (b *Bound) noteSolve(sol *lp.Solution) {
	b.Solves++
	b.Iterations += sol.Iterations
	if sol.WarmStarted {
		b.WarmSolves++
	}
}

// Throughput returns 1/Period (0 for an infeasible instance).
func (b *Bound) Throughput() float64 {
	if b == nil || math.IsInf(b.Period, 1) || b.Period <= 0 {
		return 0
	}
	return 1 / b.Period
}

// Infeasible reports whether the bound denotes an unreachable target
// set.
func (b *Bound) Infeasible() bool { return math.IsInf(b.Period, 1) }

func infeasibleBound() *Bound { return &Bound{Period: math.Inf(1)} }

// All programs are solved in throughput-normalised form: flows are
// expressed per unit of time, the one-port occupation of every port is
// bounded by 1, and the objective maximises the throughput rho (the
// paper's period is recovered as T = 1/rho, and its per-multicast
// loads as load/rho). The normalised form is numerically crucial: the
// direct "minimise T" form has only zero right-hand sides, which
// strands the tableau simplex on enormous degenerate plateaus, while
// in this form the origin is a feasible basis and ratio tests are
// non-degenerate.

// scratch pools the per-evaluation buffers of the steady-state
// programs: the flow solver's residual network, active-edge and node
// ID lists, the edge-to-variable index, LP term builders, and the
// BFS/layer-cut workspaces. An Evaluator owns one, so long heuristic
// runs stop reallocating these on every trial evaluation; the
// package-level entry points use a private one per call, which keeps
// their behaviour (and their outputs, bit for bit) unchanged.
type scratch struct {
	flow     flow.Solver
	edges    []int     // active-edge ID buffer
	varOf    []int32   // edge ID -> LP variable index, -1 when absent
	rank     []int32   // edge ID -> dense rank among active edges
	terms    []lp.Term // row-terms build buffer
	capacity []float64
	blocked  []bool
	seen     []bool
	stack    []graph.NodeID
	dist     []int32
	queue    []graph.NodeID
	cut      []int
	inT      []bool
	nodes    []graph.NodeID
	buf      []int
}

func (sc *scratch) growVarOf(n int) []int32 {
	if cap(sc.varOf) < n {
		sc.varOf = make([]int32, n)
	}
	sc.varOf = sc.varOf[:n]
	for i := range sc.varOf {
		sc.varOf[i] = -1
	}
	return sc.varOf
}

// addPortRows adds the normalised one-port occupation constraints
// sum_{e in in(v)} c(e) x(e) <= 1 and the symmetric out-port rows for
// every active node, where varOf maps edge IDs to LP variables.
func addPortRows(m *lp.Model, g *graph.Graph, varOf []int32, sc *scratch) {
	sc.nodes = g.AppendActiveNodes(sc.nodes[:0])
	for _, v := range sc.nodes {
		sc.buf = g.InEdges(v, sc.buf[:0])
		if len(sc.buf) > 0 {
			terms := sc.terms[:0]
			for _, id := range sc.buf {
				terms = append(terms, lp.Term{Var: int(varOf[id]), Coef: g.Edge(id).Cost})
			}
			m.AddRow(lp.LE, 1, terms...)
			sc.terms = terms[:0]
		}
		sc.buf = g.OutEdges(v, sc.buf[:0])
		if len(sc.buf) > 0 {
			terms := sc.terms[:0]
			for _, id := range sc.buf {
				terms = append(terms, lp.Term{Var: int(varOf[id]), Coef: g.Edge(id).Cost})
			}
			m.AddRow(lp.LE, 1, terms...)
			sc.terms = terms[:0]
		}
	}
}

// ScatterUB solves the paper's Multicast-UB program: the pessimistic
// relaxation in which the messages bound for distinct targets are
// counted separately on every link (a scatter). Its period is an upper
// bound on the optimal multicast period, and the bound is achievable
// (Section 5.1.2 of the paper).
func ScatterUB(p Problem) (*Bound, error) { return scatterUB(p, nil, nil) }

// scatterUB is ScatterUB on a caller-supplied LP workspace and scratch
// (nil for private ones); the Evaluator routes through it to reuse
// allocations across a whole heuristic run.
func scatterUB(p Problem, ws *lp.Workspace, sc *scratch) (*Bound, error) {
	g := p.G
	if !g.ReachesAll(p.Source, p.Targets) {
		return infeasibleBound(), nil
	}
	if sc == nil {
		sc = &scratch{}
	}
	m := lp.NewModel()
	m.Maximize()
	rhoVar := m.AddVar(1, "rho")
	sc.edges = g.AppendActiveEdges(sc.edges[:0])
	fVar := sc.growVarOf(g.NumEdges())
	for _, id := range sc.edges {
		fVar[id] = int32(m.AddVar(0, ""))
	}
	isTarget := make(map[graph.NodeID]bool, len(p.Targets))
	for _, t := range p.Targets {
		isTarget[t] = true
	}
	// Flow conservation per unit time: net outflow = +N*rho at the
	// source, -rho at targets.
	sc.nodes = g.AppendActiveNodes(sc.nodes[:0])
	for _, v := range sc.nodes {
		terms := sc.terms[:0]
		sc.buf = g.OutEdges(v, sc.buf[:0])
		for _, id := range sc.buf {
			terms = append(terms, lp.Term{Var: int(fVar[id]), Coef: 1})
		}
		sc.buf = g.InEdges(v, sc.buf[:0])
		for _, id := range sc.buf {
			terms = append(terms, lp.Term{Var: int(fVar[id]), Coef: -1})
		}
		switch {
		case v == p.Source:
			terms = append(terms, lp.Term{Var: rhoVar, Coef: -float64(len(p.Targets))})
		case isTarget[v]:
			terms = append(terms, lp.Term{Var: rhoVar, Coef: 1})
		}
		sc.terms = terms[:0]
		if len(terms) == 0 {
			continue
		}
		m.AddRow(lp.EQ, 0, terms...)
	}
	addPortRows(m, g, fVar, sc)
	sol, err := m.SolveWith(ws)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("steady: ScatterUB: unexpected LP status %v", sol.Status)
	}
	rho := sol.X[rhoVar]
	if rho <= cutTol {
		return nil, errors.New("steady: ScatterUB: zero throughput on a reachable instance")
	}
	load := make([]float64, g.NumEdges())
	for _, id := range sc.edges {
		load[id] = math.Max(0, sol.X[fVar[id]]) / rho
	}
	b := &Bound{Period: 1 / rho, EdgeLoad: load}
	b.noteSolve(sol)
	return b, nil
}

// MulticastLB solves the paper's Multicast-LB program: the optimistic
// relaxation in which messages bound for distinct targets may share
// links for free (n(e) = max_i x^i(e)). Its period is a lower bound on
// the optimal multicast period, not achievable in general (Figure 4).
//
// Two equivalent formulations are used depending on the target count.
// Sparse target sets use the paper's direct per-target formulation
// (polynomial but |targets|*|edges| variables); dense sets use the
// cut-covering master with min-cut separation, which is tiny and
// converges quickly when most nodes are targets but wanders through
// near-duplicate cuts when they are sparse. Both were cross-validated
// to produce identical values.
func MulticastLB(p Problem) (*Bound, error) {
	return MulticastLBWith(p, LBOptions{WarmStart: true})
}

// LBOptions tunes the Multicast-LB solver (and BroadcastEBWith, which
// is Multicast-LB over the full platform).
type LBOptions struct {
	// Workspace, when non-nil, supplies the reusable LP workspace; the
	// zero value allocates a private one. A workspace must not be
	// shared between goroutines.
	Workspace *lp.Workspace
	// WarmStart re-solves each cutting-plane round from the previous
	// round's optimal basis — the appended cut rows are repaired by
	// dual-simplex pivots — instead of re-solving the master from
	// scratch. MulticastLB enables it; disabling it gives the cold
	// baseline the benchmarks compare against.
	WarmStart bool
	// NoPresolve skips the LP presolve reductions on every model this
	// solve builds — the un-presolved baseline the tree fast-path
	// benchmarks compare against.
	NoPresolve bool

	// seeds are pre-validated source->target cuts used to prime the cut
	// pool (Evaluator reuse across related platforms); onCut observes
	// every cut the separation generates; sc supplies the pooled
	// evaluation scratch (nil allocates a private one per call).
	seeds []seedCut
	onCut func(target graph.NodeID, cut []int)
	sc    *scratch
}

type seedCut struct {
	target graph.NodeID
	edges  []int
}

// MulticastLBWith is MulticastLB with explicit solver options. Both
// formulations honour the workspace; WarmStart only concerns the
// cutting-plane regime (the direct form is a single solve).
func MulticastLBWith(p Problem, opts LBOptions) (*Bound, error) {
	g := p.G
	if !g.ReachesAll(p.Source, p.Targets) {
		return infeasibleBound(), nil
	}
	// Estimated direct-formulation row count; below the cap the direct
	// LP is cheap and immune to cut thrashing.
	if opts.sc == nil {
		opts.sc = &scratch{}
	}
	nodes := g.NumActive()
	opts.sc.edges = g.AppendActiveEdges(opts.sc.edges[:0])
	arcs := len(opts.sc.edges)
	if len(p.Targets)*(nodes+arcs)+2*nodes <= 4600 {
		return multicastLBDirect(p, opts.Workspace, opts.sc, opts.NoPresolve)
	}
	return multicastLBCuts(p, opts)
}

// multicastLBCuts solves Multicast-LB by cut-covering with min-cut
// separation (the dense-target regime of MulticastLB). The master LP is
// built once and then only grows: every separation round appends its
// violated cut rows to the same model and, under opts.WarmStart,
// re-solves from the previous round's basis.
func multicastLBCuts(p Problem, opts LBOptions) (*Bound, error) {
	g := p.G
	if !g.ReachesAll(p.Source, p.Targets) {
		return infeasibleBound(), nil
	}
	// Normalise the edge costs for conditioning: with c <= 1 the
	// optimal rho is O(1) instead of O(1/maxCost).
	scale := g.MaxCost()
	if scale <= 0 {
		return infeasibleBound(), nil
	}

	sc := opts.sc
	if sc == nil {
		sc = &scratch{}
		sc.edges = g.AppendActiveEdges(sc.edges[:0])
	}
	edges := sc.edges
	master := lp.NewModel()
	master.SetPresolve(!opts.NoPresolve)
	master.Maximize()
	rhoVar := master.AddVar(1, "rho")
	nVar := sc.growVarOf(g.NumEdges())
	for _, id := range edges {
		nVar[id] = int32(master.AddVar(0, ""))
	}
	addPortRowsScaled(master, g, nVar, sc, scale)

	seen := make(map[string]bool)
	ncuts := 0
	addCut := func(target graph.NodeID, cut []int) bool {
		if len(cut) == 0 {
			return false
		}
		key := cutKey(cut)
		if seen[key] {
			return false
		}
		seen[key] = true
		ncuts++
		terms := sc.terms[:0]
		for _, id := range cut {
			terms = append(terms, lp.Term{Var: int(nVar[id]), Coef: 1})
		}
		terms = append(terms, lp.Term{Var: rhoVar, Coef: -1})
		master.AddRow(lp.GE, 0, terms...)
		sc.terms = terms[:0]
		if opts.onCut != nil {
			opts.onCut(target, cut)
		}
		return true
	}
	// Prime with any pooled cuts from earlier, related solves, then the
	// trivial cuts (the source's out-edges, each target's in-edges) and
	// the hop-distance layer cuts around every target:
	// S_k = {v : hopdist(v -> t) > k} is a valid source-target
	// separator for every k below the source's distance. Without the
	// layer seeds the separation peels these one per round ("onion
	// peeling"), the textbook slow mode of Kelley cutting planes.
	for _, s := range opts.seeds {
		addCut(s.target, s.edges)
	}
	sc.buf = g.OutEdges(p.Source, sc.buf[:0])
	addCut(p.Targets[0], sc.buf)
	for _, t := range p.Targets {
		sc.buf = g.InEdges(t, sc.buf[:0])
		addCut(t, sc.buf)
		layerCuts(g, p.Source, t, sc, func(cut []int) { addCut(t, cut) })
	}

	ws := opts.Workspace
	if ws == nil {
		ws = lp.NewWorkspace()
	}
	bound := &Bound{}
	var basis lp.Basis
	if cap(sc.capacity) < g.NumEdges() {
		sc.capacity = make([]float64, g.NumEdges())
	}
	capacity := sc.capacity[:g.NumEdges()]
	for i := range capacity {
		capacity[i] = 0
	}
	const maxRounds = 500
	for round := 0; ; round++ {
		if round >= maxRounds {
			return nil, errors.New("steady: MulticastLB cutting plane did not converge")
		}
		var sol *lp.Solution
		var err error
		if opts.WarmStart && !basis.Empty() {
			sol, err = master.SolveFrom(ws, basis)
		} else {
			sol, err = master.SolveWith(ws)
		}
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("steady: MulticastLB: unexpected LP status %v", sol.Status)
		}
		bound.noteSolve(sol)
		basis = sol.Basis
		bound.Rounds = round + 1
		rho := sol.X[rhoVar]
		if rho <= cutTol {
			return nil, errors.New("steady: MulticastLB: zero throughput on a reachable instance")
		}
		for _, id := range edges {
			capacity[id] = math.Max(0, sol.X[nVar[id]])
		}
		violated := false
		for _, t := range p.Targets {
			value, cut := sc.flow.MinCut(g, capacity, p.Source, t)
			if value < rho*(1-cutTol) {
				if len(cut) == 0 {
					// No crossing edge at all: the target is unreachable.
					return infeasibleBound(), nil
				}
				if addCut(t, cut) {
					violated = true
				}
			}
		}
		if !violated {
			// Report the paper's per-multicast quantities; rho is per
			// *scaled* time unit, so the true period is scale/rho. The
			// load profile is returned to the caller, so it cannot live
			// in the scratch.
			loads := make([]float64, g.NumEdges())
			for i, c := range capacity {
				loads[i] = c / rho
			}
			bound.Period = scale / rho
			bound.EdgeLoad = loads
			bound.Cuts = ncuts
			return bound, nil
		}
	}
}

// addPortRowsScaled is addPortRows with every coefficient divided by
// scale (the cut master normalises edge costs for conditioning).
func addPortRowsScaled(m *lp.Model, g *graph.Graph, varOf []int32, sc *scratch, scale float64) {
	sc.nodes = g.AppendActiveNodes(sc.nodes[:0])
	for _, v := range sc.nodes {
		for _, in := range []bool{true, false} {
			if in {
				sc.buf = g.InEdges(v, sc.buf[:0])
			} else {
				sc.buf = g.OutEdges(v, sc.buf[:0])
			}
			if len(sc.buf) == 0 {
				continue
			}
			terms := sc.terms[:0]
			for _, id := range sc.buf {
				terms = append(terms, lp.Term{Var: int(varOf[id]), Coef: g.Edge(id).Cost / scale})
			}
			m.AddRow(lp.LE, 1, terms...)
			sc.terms = terms[:0]
		}
	}
}

// layerCuts emits the hop-distance layer cuts between source and
// target: for each k in [0, hopdist(source -> t)), the edges crossing
// from {v : hopdist(v -> t) > k} into the rest. Nodes that cannot reach
// t at all count as infinitely far (source side). The emitted slice is
// scratch-owned and only valid for the duration of the callback.
func layerCuts(g *graph.Graph, source, t graph.NodeID, sc *scratch, emit func(cut []int)) {
	const inf = int32(^uint32(0) >> 1)
	n := g.NumNodes()
	if cap(sc.dist) < n {
		sc.dist = make([]int32, n)
	}
	dist := sc.dist[:n]
	for i := range dist {
		dist[i] = inf
	}
	dist[t] = 0
	queue := append(sc.queue[:0], t)
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		sc.buf = g.InEdges(v, sc.buf[:0])
		for _, id := range sc.buf {
			from := g.Edge(id).From
			if dist[from] == inf {
				dist[from] = dist[v] + 1
				queue = append(queue, from)
			}
		}
	}
	sc.queue = queue[:0]
	if dist[source] == inf {
		return
	}
	for k := int32(0); k < dist[source]; k++ {
		cut := sc.cut[:0]
		for _, id := range sc.edges {
			e := g.Edge(id)
			if dist[e.From] > k && dist[e.To] <= k {
				cut = append(cut, id)
			}
		}
		sc.cut = cut[:0]
		if len(cut) > 0 {
			emit(cut)
		}
	}
}

func cutKey(cut []int) string {
	s := append([]int(nil), cut...)
	sort.Ints(s)
	var sb strings.Builder
	for _, id := range s {
		sb.WriteString(strconv.Itoa(id))
		sb.WriteByte(',')
	}
	return sb.String()
}

// BroadcastEB computes the optimal steady-state broadcast period on the
// active part of g: Multicast-LB with every active node (except the
// source) as a target. The paper (with [6, 5]) proves this bound is
// achieved by an actual broadcast schedule, so the returned period is
// exact. If some active node is unreachable the result is +Inf, the
// convention used by the REDUCED BROADCAST heuristic.
func BroadcastEB(g *graph.Graph, source graph.NodeID) (*Bound, error) {
	return BroadcastEBWith(g, source, LBOptions{WarmStart: true})
}

// BroadcastEBWith is BroadcastEB with explicit solver options (see
// LBOptions).
func BroadcastEBWith(g *graph.Graph, source graph.NodeID, opts LBOptions) (*Bound, error) {
	if !g.Active(source) {
		return infeasibleBound(), nil
	}
	var targets []graph.NodeID
	for _, v := range g.ActiveNodes() {
		if v != source {
			targets = append(targets, v)
		}
	}
	if len(targets) == 0 {
		return &Bound{Period: 0, EdgeLoad: make([]float64, g.NumEdges())}, nil
	}
	p, err := NewProblem(g, source, targets)
	if err != nil {
		return nil, err
	}
	return MulticastLBWith(p, opts)
}

// RecoverUnitFlows reconstructs the per-target variables x^i of the
// paper's LPs from a load profile: for every target it returns a unit
// s->target flow supported by load (per-edge capacities). Targets whose
// max-flow falls short of one unit (possible only through numerical
// noise) are returned with their maximum flow instead.
func RecoverUnitFlows(g *graph.Graph, load []float64, source graph.NodeID, targets []graph.NodeID) map[graph.NodeID][]float64 {
	var sv flow.Solver
	return recoverUnitFlows(&sv, g, load, source, targets)
}

// RecoverUnitFlows on an Evaluator reuses the evaluator's pooled flow
// solver, so heuristic scoring passes stop rebuilding one residual
// network per target. The per-target flow slices are fresh (callers
// retain them); only the solver scratch is shared.
func (e *Evaluator) RecoverUnitFlows(g *graph.Graph, load []float64, source graph.NodeID, targets []graph.NodeID) map[graph.NodeID][]float64 {
	return recoverUnitFlows(&e.sc.flow, g, load, source, targets)
}

func recoverUnitFlows(sv *flow.Solver, g *graph.Graph, load []float64, source graph.NodeID, targets []graph.NodeID) map[graph.NodeID][]float64 {
	out := make(map[graph.NodeID][]float64, len(targets))
	for _, t := range targets {
		_, f := sv.MaxFlowUpTo(g, load, source, t, 1, nil)
		out[t] = f
	}
	return out
}

// InflowAt returns the total per-target traffic entering node m:
// sum_i sum_{Pj in N^in(Pm)} x^{j,m}_i, the quantity the paper's
// LP-based heuristics sort candidate nodes by.
func InflowAt(g *graph.Graph, perTarget map[graph.NodeID][]float64, m graph.NodeID) float64 {
	total := 0.0
	var buf []int
	buf = g.InEdges(m, buf)
	for _, f := range perTarget {
		for _, id := range buf {
			total += f[id]
		}
	}
	return total
}

// AggregateInflowAt returns the load entering node m under an aggregate
// edge-load profile (used with scatter-like solutions, where the
// aggregate equals the per-target sum).
func AggregateInflowAt(g *graph.Graph, load []float64, m graph.NodeID) float64 {
	total := 0.0
	for _, id := range g.InEdges(m, nil) {
		total += load[id]
	}
	return total
}
