package steady

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// star: S -> t1, t2, t3 with unit costs. No sharing is possible, so the
// scatter bound and the optimistic bound coincide at period 3.
func star(t *testing.T) Problem {
	t.Helper()
	g := graph.New()
	s := g.AddNode("S")
	ts := g.AddNodes("t", 3)
	for _, v := range ts {
		g.AddEdge(s, v, 1)
	}
	p, err := NewProblem(g, s, ts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// relay is the paper's Figure 5 platform: S -> hub (cost 1), hub -> 3
// targets (cost 1/3). The gap between the two bounds is |Ptarget| = 3.
func relay(t *testing.T) Problem {
	t.Helper()
	g := graph.New()
	s := g.AddNode("S")
	hub := g.AddNode("A")
	ts := g.AddNodes("t", 3)
	g.AddEdge(s, hub, 1)
	for _, v := range ts {
		g.AddEdge(hub, v, 1.0/3)
	}
	p, err := NewProblem(g, s, ts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// chain: S -> a -> b, targets {a, b}, unit costs.
func chain(t *testing.T) Problem {
	t.Helper()
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(s, a, 1)
	g.AddEdge(a, b, 1)
	p, err := NewProblem(g, s, []graph.NodeID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewProblemValidation(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	g.AddEdge(s, a, 1)
	if _, err := NewProblem(g, s, nil); err == nil {
		t.Error("empty targets accepted")
	}
	if _, err := NewProblem(g, s, []graph.NodeID{s}); err == nil {
		t.Error("source-as-target accepted")
	}
	if _, err := NewProblem(g, s, []graph.NodeID{a, a}); err == nil {
		t.Error("duplicate target accepted")
	}
	g.Deactivate(a)
	if _, err := NewProblem(g, s, []graph.NodeID{a}); err == nil {
		t.Error("inactive target accepted")
	}
	g.Activate(a)
	g.Deactivate(s)
	if _, err := NewProblem(g, s, []graph.NodeID{a}); err == nil {
		t.Error("inactive source accepted")
	}
}

func TestScatterUBStar(t *testing.T) {
	b, err := ScatterUB(star(t))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(b.Period, 3, 1e-7) {
		t.Fatalf("star scatter period = %v, want 3", b.Period)
	}
	if !approx(b.Throughput(), 1.0/3, 1e-7) {
		t.Fatalf("throughput = %v", b.Throughput())
	}
}

func TestMulticastLBStar(t *testing.T) {
	b, err := MulticastLB(star(t))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(b.Period, 3, 1e-7) {
		t.Fatalf("star LB period = %v, want 3", b.Period)
	}
}

func TestFigure5Gap(t *testing.T) {
	p := relay(t)
	ub, err := ScatterUB(p)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := MulticastLB(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(ub.Period, 3, 1e-7) {
		t.Errorf("scatter period = %v, want 3", ub.Period)
	}
	if !approx(lb.Period, 1, 1e-7) {
		t.Errorf("LB period = %v, want 1", lb.Period)
	}
	if ratio := ub.Period / lb.Period; !approx(ratio, float64(len(p.Targets)), 1e-6) {
		t.Errorf("gap = %v, want |Ptarget| = %d", ratio, len(p.Targets))
	}
}

func TestChainBounds(t *testing.T) {
	p := chain(t)
	ub, err := ScatterUB(p)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := MulticastLB(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(ub.Period, 2, 1e-7) {
		t.Errorf("chain scatter period = %v, want 2", ub.Period)
	}
	if !approx(lb.Period, 1, 1e-7) {
		t.Errorf("chain LB period = %v, want 1", lb.Period)
	}
}

func TestBroadcastEBTwoNodes(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	g.AddEdge(s, a, 2)
	b, err := BroadcastEB(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(b.Period, 2, 1e-7) {
		t.Fatalf("broadcast period = %v, want 2", b.Period)
	}
}

func TestBroadcastEBSingleNode(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	b, err := BroadcastEB(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if b.Period != 0 {
		t.Fatalf("degenerate broadcast period = %v, want 0", b.Period)
	}
}

func TestUnreachableIsInfeasible(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	x := g.AddNode("x") // no edges at all
	g.AddEdge(s, a, 1)
	p, err := NewProblem(g, s, []graph.NodeID{a, x})
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(Problem) (*Bound, error){
		"ScatterUB":   ScatterUB,
		"MulticastLB": MulticastLB,
	} {
		b, err := f(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !b.Infeasible() || b.Throughput() != 0 {
			t.Errorf("%s: expected infeasible, got period %v", name, b.Period)
		}
	}
	bb, err := BroadcastEB(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if !bb.Infeasible() {
		t.Error("BroadcastEB: expected infeasible")
	}
	ms, err := MultiSourceUB(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ms.Infeasible() {
		t.Error("MultiSourceUB: expected infeasible")
	}
}

func TestMultiSourceEqualsScatterWithoutExtras(t *testing.T) {
	for _, p := range []Problem{star(t), relay(t), chain(t)} {
		ub, err := ScatterUB(p)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := MultiSourceUB(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(ub.Period, ms.Period, 1e-6) {
			t.Errorf("scatter %v vs multisource-no-extras %v", ub.Period, ms.Period)
		}
	}
}

func TestMultiSourceRelayPromotion(t *testing.T) {
	// Promoting the Figure 5 hub to an intermediate source recovers the
	// optimal period 1 that the plain scatter bound misses by 3x.
	p := relay(t)
	hub, _ := p.G.NodeByName("A")
	ms, err := MultiSourceUB(p, []graph.NodeID{hub})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(ms.Period, 1, 1e-6) {
		t.Fatalf("multisource period = %v, want 1", ms.Period)
	}
}

func TestMultiSourceChainPromotion(t *testing.T) {
	p := chain(t)
	a, _ := p.G.NodeByName("a")
	ms, err := MultiSourceUB(p, []graph.NodeID{a})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(ms.Period, 1, 1e-6) {
		t.Fatalf("multisource chain period = %v, want 1", ms.Period)
	}
}

func TestMultiSourceValidation(t *testing.T) {
	p := chain(t)
	a, _ := p.G.NodeByName("a")
	if _, err := MultiSourceUB(p, []graph.NodeID{a, a}); err == nil {
		t.Error("duplicate extra source accepted")
	}
	if _, err := MultiSourceUB(p, []graph.NodeID{p.Source}); err == nil {
		t.Error("main source duplicated as extra accepted")
	}
}

func TestRecoverUnitFlows(t *testing.T) {
	p := relay(t)
	lb, err := MulticastLB(p)
	if err != nil {
		t.Fatal(err)
	}
	flows := RecoverUnitFlows(p.G, lb.EdgeLoad, p.Source, p.Targets)
	if len(flows) != 3 {
		t.Fatalf("got %d flows", len(flows))
	}
	hub, _ := p.G.NodeByName("A")
	// Every target's unit flow passes through the hub.
	if got := InflowAt(p.G, flows, hub); !approx(got, 3, 1e-6) {
		t.Errorf("hub inflow = %v, want 3", got)
	}
	if got := AggregateInflowAt(p.G, lb.EdgeLoad, hub); !approx(got, 1, 1e-6) {
		t.Errorf("aggregate hub inflow under LB loads = %v, want 1", got)
	}
}

func randomProblem(rng *rand.Rand) (Problem, bool) {
	g := graph.New()
	n := 3 + rng.Intn(7)
	ids := g.AddNodes("n", n)
	for i := 0; i < 3*n; i++ {
		a := ids[rng.Intn(n)]
		b := ids[rng.Intn(n)]
		if a != b {
			g.AddEdge(a, b, 0.25+rng.Float64())
		}
	}
	src := ids[0]
	var targets []graph.NodeID
	for _, v := range ids[1:] {
		if rng.Intn(2) == 0 {
			targets = append(targets, v)
		}
	}
	if len(targets) == 0 {
		targets = append(targets, ids[1])
	}
	p, err := NewProblem(g, src, targets)
	if err != nil {
		return Problem{}, false
	}
	return p, true
}

// Property: the paper's bound ordering holds on random platforms:
//
//	MulticastLB <= ScatterUB <= |Ptarget| * MulticastLB
//	MulticastLB <= BroadcastEB   (broadcast serves a superset)
//	MulticastLB <= MultiSourceUB (multisource schedules are feasible
//	   schedules; note extras can make the period *worse* than plain
//	   scatter, because every intermediate source must receive the whole
//	   message — which is why AUGMENTED SOURCES only keeps improving
//	   promotions)
func TestBoundOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, ok := randomProblem(rng)
		if !ok {
			return true
		}
		ub, err := ScatterUB(p)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		lb, err := MulticastLB(p)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if ub.Infeasible() != lb.Infeasible() {
			return false
		}
		if ub.Infeasible() {
			return true
		}
		const tol = 1e-6
		if lb.Period > ub.Period+tol {
			t.Logf("seed %d: LB %v > UB %v", seed, lb.Period, ub.Period)
			return false
		}
		if ub.Period > float64(len(p.Targets))*lb.Period+tol {
			t.Logf("seed %d: UB %v > |T|*LB %v", seed, ub.Period, float64(len(p.Targets))*lb.Period)
			return false
		}
		bc, err := BroadcastEB(p.G, p.Source)
		if err != nil {
			return false
		}
		if !bc.Infeasible() && lb.Period > bc.Period+tol {
			t.Logf("seed %d: LB %v > BroadcastEB %v", seed, lb.Period, bc.Period)
			return false
		}
		// Promote the first non-target, non-source node (if any).
		var extra []graph.NodeID
		isT := map[graph.NodeID]bool{p.Source: true}
		for _, x := range p.Targets {
			isT[x] = true
		}
		for _, v := range p.G.ActiveNodes() {
			if !isT[v] {
				extra = append(extra, v)
				break
			}
		}
		ms, err := MultiSourceUB(p, extra)
		if err != nil {
			t.Logf("seed %d: multisource: %v", seed, err)
			return false
		}
		if !ms.Infeasible() && ms.Period < lb.Period-tol {
			t.Logf("seed %d: multisource %v < LB %v", seed, ms.Period, lb.Period)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the LB load profile supports a unit flow to every target
// and respects the one-port occupation bound T on every port.
func TestLBLoadsAreConsistentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, ok := randomProblem(rng)
		if !ok {
			return true
		}
		lb, err := MulticastLB(p)
		if err != nil || lb.Infeasible() {
			return err == nil
		}
		flows := RecoverUnitFlows(p.G, lb.EdgeLoad, p.Source, p.Targets)
		for _, tgt := range p.Targets {
			total := 0.0
			for _, id := range p.G.InEdges(tgt, nil) {
				total += flows[tgt][id]
			}
			outOf := 0.0
			for _, id := range p.G.OutEdges(tgt, nil) {
				outOf += flows[tgt][id]
			}
			if total-outOf < 1-1e-5 {
				t.Logf("seed %d: target %v net inflow %v", seed, tgt, total-outOf)
				return false
			}
		}
		var buf []int
		for _, v := range p.G.ActiveNodes() {
			occIn, occOut := 0.0, 0.0
			buf = p.G.InEdges(v, buf[:0])
			for _, id := range buf {
				occIn += p.G.Edge(id).Cost * lb.EdgeLoad[id]
			}
			buf = p.G.OutEdges(v, buf[:0])
			for _, id := range buf {
				occOut += p.G.Edge(id).Cost * lb.EdgeLoad[id]
			}
			if occIn > lb.Period+1e-6 || occOut > lb.Period+1e-6 {
				t.Logf("seed %d: port overload at %v", seed, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the two independent Multicast-LB implementations (direct
// per-target LP and cut-covering with min-cut separation) compute the
// same optimal period.
func TestLBFormulationsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, ok := randomProblem(rng)
		if !ok {
			return true
		}
		direct, err := multicastLBDirect(p, nil, nil, false)
		if err != nil {
			t.Logf("seed %d: direct: %v", seed, err)
			return false
		}
		cuts, err := multicastLBCuts(p, LBOptions{WarmStart: true})
		if err != nil {
			t.Logf("seed %d: cuts: %v", seed, err)
			return false
		}
		if direct.Infeasible() != cuts.Infeasible() {
			return false
		}
		if direct.Infeasible() {
			return true
		}
		if math.Abs(direct.Period-cuts.Period) > 1e-5*(1+direct.Period) {
			t.Logf("seed %d: direct %v vs cuts %v", seed, direct.Period, cuts.Period)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
