package steady

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lp"
)

// multicastLBDirect solves the Multicast-LB program in the paper's own
// per-target formulation (normalised to throughput form): one flow
// x^i per target of value rho under shared optimistic loads
// n(e) >= x^i(e). Polynomial-size but with |targets| * |edges|
// variables, so it is used for sparse target sets, where the
// cut-covering master of MulticastLB is known to wander (see
// solveLBMaster); for dense target sets the cutting plane is far
// smaller and converges quickly.
//
// Variable indices are arithmetic — rho, then the n block in
// active-edge order, then one x block per target — so no per-target
// edge-to-variable map is ever built.
func multicastLBDirect(p Problem, ws *lp.Workspace, sc *scratch, noPresolve bool) (*Bound, error) {
	g := p.G
	if !g.ReachesAll(p.Source, p.Targets) {
		return infeasibleBound(), nil
	}
	scale := g.MaxCost()
	if scale <= 0 {
		return infeasibleBound(), nil
	}
	if sc == nil {
		sc = &scratch{}
		sc.edges = g.AppendActiveEdges(sc.edges[:0])
	}
	edges := sc.edges
	m := lp.NewModel()
	m.SetPresolve(!noPresolve)
	m.Maximize()
	rhoVar := m.AddVar(1, "rho")
	nVar := sc.growVarOf(g.NumEdges())
	for _, id := range edges {
		nVar[id] = int32(m.AddVar(0, ""))
	}
	addPortRowsScaled(m, g, nVar, sc, scale)
	// Per-target flows of value rho, dominated by n. The x block of
	// target t starts at xBase = 1 + |edges| + t*|edges| and follows
	// active-edge rank order (sc.rank maps edge ID -> rank).
	if cap(sc.rank) < g.NumEdges() {
		sc.rank = make([]int32, g.NumEdges())
	}
	rank := sc.rank[:g.NumEdges()]
	for i, id := range edges {
		rank[id] = int32(i)
	}
	sc.nodes = g.AppendActiveNodes(sc.nodes[:0])
	nodes := sc.nodes
	for ti := range p.Targets {
		t := p.Targets[ti]
		xBase := m.NumVars()
		for range edges {
			m.AddVar(0, "")
		}
		xv := func(id int) int { return xBase + int(rank[id]) }
		for _, v := range nodes {
			terms := sc.terms[:0]
			sc.buf = g.OutEdges(v, sc.buf[:0])
			for _, id := range sc.buf {
				terms = append(terms, lp.Term{Var: xv(id), Coef: 1})
			}
			sc.buf = g.InEdges(v, sc.buf[:0])
			for _, id := range sc.buf {
				terms = append(terms, lp.Term{Var: xv(id), Coef: -1})
			}
			switch v {
			case p.Source:
				terms = append(terms, lp.Term{Var: rhoVar, Coef: -1})
			case t:
				terms = append(terms, lp.Term{Var: rhoVar, Coef: 1})
			}
			sc.terms = terms[:0]
			if len(terms) == 0 {
				continue
			}
			m.AddRow(lp.EQ, 0, terms...)
		}
		for _, id := range edges {
			m.AddRow(lp.LE, 0, lp.Term{Var: xv(id), Coef: 1}, lp.Term{Var: int(nVar[id]), Coef: -1})
		}
	}
	sol, err := m.SolveWith(ws)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("steady: MulticastLB direct: unexpected LP status %v", sol.Status)
	}
	rho := sol.X[rhoVar]
	if rho <= cutTol {
		return nil, errors.New("steady: MulticastLB direct: zero throughput on a reachable instance")
	}
	loads := make([]float64, g.NumEdges())
	for _, id := range edges {
		loads[id] = math.Max(0, sol.X[nVar[id]]) / rho
	}
	b := &Bound{Period: scale / rho, EdgeLoad: loads, Rounds: 1}
	b.noteSolve(sol)
	return b, nil
}
