package steady

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lp"
)

// multicastLBDirect solves the Multicast-LB program in the paper's own
// per-target formulation (normalised to throughput form): one flow
// x^i per target of value rho under shared optimistic loads
// n(e) >= x^i(e). Polynomial-size but with |targets| * |edges|
// variables, so it is used for sparse target sets, where the
// cut-covering master of MulticastLB is known to wander (see
// solveLBMaster); for dense target sets the cutting plane is far
// smaller and converges quickly.
func multicastLBDirect(p Problem, ws *lp.Workspace) (*Bound, error) {
	g := p.G
	if !g.ReachesAll(p.Source, p.Targets) {
		return infeasibleBound(), nil
	}
	scale := g.MaxCost()
	if scale <= 0 {
		return infeasibleBound(), nil
	}
	edges := g.ActiveEdges()
	m := lp.NewModel()
	m.Maximize()
	rhoVar := m.AddVar(1, "rho")
	nVar := make(map[int]int, len(edges))
	for _, id := range edges {
		nVar[id] = m.AddVar(0, "")
	}
	// Port rows over n.
	var buf []int
	for _, v := range g.ActiveNodes() {
		for _, in := range []bool{true, false} {
			if in {
				buf = g.InEdges(v, buf[:0])
			} else {
				buf = g.OutEdges(v, buf[:0])
			}
			if len(buf) == 0 {
				continue
			}
			terms := make([]lp.Term, 0, len(buf))
			for _, id := range buf {
				terms = append(terms, lp.Term{Var: nVar[id], Coef: g.Edge(id).Cost / scale})
			}
			m.AddRow(lp.LE, 1, terms...)
		}
	}
	// Per-target flows of value rho, dominated by n.
	for _, t := range p.Targets {
		xVar := make(map[int]int, len(edges))
		for _, id := range edges {
			xVar[id] = m.AddVar(0, "")
		}
		for _, v := range g.ActiveNodes() {
			var terms []lp.Term
			buf = g.OutEdges(v, buf[:0])
			for _, id := range buf {
				terms = append(terms, lp.Term{Var: xVar[id], Coef: 1})
			}
			buf = g.InEdges(v, buf[:0])
			for _, id := range buf {
				terms = append(terms, lp.Term{Var: xVar[id], Coef: -1})
			}
			switch v {
			case p.Source:
				terms = append(terms, lp.Term{Var: rhoVar, Coef: -1})
			case t:
				terms = append(terms, lp.Term{Var: rhoVar, Coef: 1})
			}
			if len(terms) == 0 {
				continue
			}
			m.AddRow(lp.EQ, 0, terms...)
		}
		for _, id := range edges {
			m.AddRow(lp.LE, 0, lp.Term{Var: xVar[id], Coef: 1}, lp.Term{Var: nVar[id], Coef: -1})
		}
	}
	sol, err := m.SolveWith(ws)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("steady: MulticastLB direct: unexpected LP status %v", sol.Status)
	}
	rho := sol.X[rhoVar]
	if rho <= cutTol {
		return nil, errors.New("steady: MulticastLB direct: zero throughput on a reachable instance")
	}
	loads := make([]float64, g.NumEdges())
	for id, v := range nVar {
		loads[id] = math.Max(0, sol.X[v]) / rho
	}
	b := &Bound{Period: scale / rho, EdgeLoad: loads, Rounds: 1}
	b.noteSolve(sol)
	return b, nil
}
