package steady

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// randomTree grows a uniformly random recursive tree: node i attaches
// to a uniform earlier node. bidir adds full-duplex links; otherwise
// the arcs point away from the root only.
func randomTree(r *rand.Rand, n int, bidir bool) (*graph.Graph, []graph.NodeID) {
	g := graph.New()
	ids := g.AddNodes("n", n)
	for i := 1; i < n; i++ {
		p := ids[r.Intn(i)]
		cost := 0.25 + r.Float64()*3.75
		if bidir {
			g.AddLink(p, ids[i], cost)
		} else {
			g.AddEdge(p, ids[i], cost)
		}
	}
	return g, ids
}

// randomTargets picks a non-empty subset of the non-source nodes.
func randomTargets(r *rand.Rand, ids []graph.NodeID) []graph.NodeID {
	var ts []graph.NodeID
	for _, v := range ids[1:] {
		if r.Intn(2) == 0 {
			ts = append(ts, v)
		}
	}
	if len(ts) == 0 {
		ts = append(ts, ids[1+r.Intn(len(ids)-1)])
	}
	return ts
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return math.Abs(a-b) / m
}

// requireAgreement compares a fast-path bound against the forced-LP
// reference on the same problem.
func requireAgreement(t *testing.T, what string, fast, ref *Bound, tol float64) {
	t.Helper()
	if fast.Infeasible() != ref.Infeasible() {
		t.Fatalf("%s: fast path infeasible=%v, LP infeasible=%v", what, fast.Infeasible(), ref.Infeasible())
	}
	if fast.Infeasible() {
		return
	}
	if d := relDiff(fast.Period, ref.Period); d > tol {
		t.Fatalf("%s: fast period %.17g vs LP %.17g (rel diff %.3g > %.1g)",
			what, fast.Period, ref.Period, d, tol)
	}
}

// lpEvaluator returns an evaluator with the fast path disabled — the
// reference configuration every cross-validation below compares
// against.
func lpEvaluator() *Evaluator {
	ev := NewEvaluator()
	ev.SetFastPath(false)
	return ev
}

func TestTreeFastPathMatchesLP(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	evFast := NewEvaluator()
	evLP := lpEvaluator()
	trees := 0
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(22)
		g, ids := randomTree(r, n, trial%2 == 0)
		if evFast.TreeClass(g, ids[0]) != graph.ClassTree {
			t.Fatalf("trial %d: random tree did not classify as tree", trial)
		}
		trees++
		p, err := NewProblem(g, ids[0], randomTargets(r, ids))
		if err != nil {
			t.Fatal(err)
		}
		fastLB, err1 := evFast.MulticastLB(p)
		refLB, err2 := evLP.MulticastLB(p)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: MulticastLB errors %v / %v", trial, err1, err2)
		}
		requireAgreement(t, "MulticastLB", fastLB, refLB, 1e-9)
		fastUB, err1 := evFast.ScatterUB(p)
		refUB, err2 := evLP.ScatterUB(p)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: ScatterUB errors %v / %v", trial, err1, err2)
		}
		requireAgreement(t, "ScatterUB", fastUB, refUB, 1e-9)

		// Multicast loads on a tree are exactly 1 on every edge of the
		// Steiner subtree spanned by the targets, 0 elsewhere.
		for id, l := range fastLB.EdgeLoad {
			if l != 0 && l != 1 {
				t.Fatalf("trial %d: fast-path multicast load[%d] = %v, want 0 or 1", trial, id, l)
			}
		}
	}
	fs := evFast.Stats()
	if fs.FastPathHits == 0 || fs.FastPathMisses != 0 {
		t.Errorf("fast evaluator: hits=%d misses=%d, want all-hit on pure trees", fs.FastPathHits, fs.FastPathMisses)
	}
	if fs.Solves != 0 {
		t.Errorf("fast evaluator ran %d LP solves on pure trees, want 0", fs.Solves)
	}
	ls := evLP.Stats()
	if ls.FastPathHits != 0 || ls.FastPathMisses != 0 {
		t.Errorf("forced-LP evaluator touched the classifier: hits=%d misses=%d", ls.FastPathHits, ls.FastPathMisses)
	}
	if ls.Solves == 0 {
		t.Error("forced-LP evaluator ran no LP solves")
	}
	t.Logf("validated %d random trees: %d fast-path bounds vs %d LP solves", trees, fs.FastPathHits, ls.Solves)
}

func TestFastPathNonTreeFallsBack(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	evFast := NewEvaluator()
	evLP := lpEvaluator()
	for trial := 0; trial < 20; trial++ {
		n := 4 + r.Intn(16)
		g, ids := randomTree(r, n, true)
		// A chord closes an undirected cycle: the platform is no longer
		// a tree and the LP can split flow across the two routes.
		u, v := ids[r.Intn(n)], ids[r.Intn(n)]
		for u == v {
			v = ids[r.Intn(n)]
		}
		g.AddLink(u, v, 0.25+r.Float64()*3.75)
		if evFast.TreeClass(g, ids[0]) != graph.ClassGeneral {
			// The chord may duplicate an existing link (parallel edges):
			// still ClassGeneral, so this cannot happen.
			t.Fatalf("trial %d: chorded tree classified as tree", trial)
		}
		p, err := NewProblem(g, ids[0], randomTargets(r, ids))
		if err != nil {
			t.Fatal(err)
		}
		fast, err1 := evFast.MulticastLB(p)
		ref, err2 := evLP.MulticastLB(p)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v / %v", trial, err1, err2)
		}
		// Both answered by the same LP: identical, not merely close.
		if fast.Period != ref.Period {
			t.Fatalf("trial %d: fallback LP period %.17g != forced LP period %.17g", trial, fast.Period, ref.Period)
		}
	}
	fs := evFast.Stats()
	if fs.FastPathHits != 0 {
		t.Errorf("fast path claimed %d hits on non-tree platforms", fs.FastPathHits)
	}
	if fs.FastPathMisses == 0 {
		t.Error("no fast-path misses recorded on non-tree platforms")
	}
	if fs.Solves == 0 {
		t.Error("no LP solves recorded despite fallback")
	}
}

func TestTrialOpsTakeFastPath(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		n := 5 + r.Intn(12)
		g, ids := randomTree(r, n, true)
		u, v := ids[1+r.Intn(n-1)], ids[1+r.Intn(n-1)]
		for u == v {
			v = ids[1+r.Intn(n-1)]
		}
		chord := g.AddEdge(u, v, 1.5)

		evFast := NewEvaluator()
		evLP := lpEvaluator()
		p, err := NewProblem(g, ids[0], ids[1:])
		if err != nil {
			t.Fatal(err)
		}

		// Failing the chord turns the platform back into a tree: the
		// what-if trial must pick the fast path up mid-flight, through
		// the stamp-invalidated classifier.
		before := evFast.Stats()
		fast, err1 := evFast.DropEdgeMulticast(p, chord)
		ref, err2 := evLP.DropEdgeMulticast(p, chord)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v / %v", trial, err1, err2)
		}
		requireAgreement(t, "DropEdgeMulticast", fast, ref, 1e-9)
		d := evFast.Stats().Delta(before)
		if d.FastPathHits != 1 {
			t.Fatalf("trial %d: DropEdgeMulticast fast-path hits = %d, want 1", trial, d.FastPathHits)
		}
		if d.Solves != 0 {
			t.Fatalf("trial %d: DropEdgeMulticast ran %d LP solves on a tree", trial, d.Solves)
		}

		// The mask is restored on return, so the same evaluator now
		// sees the chorded platform again and must fall back.
		before = evFast.Stats()
		fast, err1 = evFast.MulticastLB(p)
		ref, err2 = evLP.MulticastLB(p)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v / %v", trial, err1, err2)
		}
		if fast.Period != ref.Period {
			t.Fatalf("trial %d: post-restore period %.17g != %.17g", trial, fast.Period, ref.Period)
		}
		d = evFast.Stats().Delta(before)
		if d.FastPathMisses != 1 || d.FastPathHits != 0 {
			t.Fatalf("trial %d: post-restore hits=%d misses=%d, want 0/1", trial, d.FastPathHits, d.FastPathMisses)
		}
	}
}

func TestScaleAndDropNodeFastPath(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	g, ids := randomTree(r, 12, true)
	evFast := NewEvaluator()
	evLP := lpEvaluator()
	p, err := NewProblem(g, ids[0], ids[1:])
	if err != nil {
		t.Fatal(err)
	}
	for edge := 0; edge < g.NumEdges(); edge += 3 {
		fast, err1 := evFast.ScaleEdgeMulticast(p, edge, 2.5)
		ref, err2 := evLP.ScaleEdgeMulticast(p, edge, 2.5)
		if err1 != nil || err2 != nil {
			t.Fatalf("edge %d: %v / %v", edge, err1, err2)
		}
		requireAgreement(t, "ScaleEdgeMulticast", fast, ref, 1e-9)
	}
	// Dropping a leaf keeps the rest reachable; dropping an internal
	// node cuts its subtree off and broadcast must go infeasible. Both
	// verdicts must match the LP's.
	for _, drop := range ids[1:] {
		fast, err1 := evFast.DropNodeBroadcast(g, ids[0], drop)
		ref, err2 := evLP.DropNodeBroadcast(g, ids[0], drop)
		if err1 != nil || err2 != nil {
			t.Fatalf("drop %v: %v / %v", drop, err1, err2)
		}
		requireAgreement(t, "DropNodeBroadcast", fast, ref, 1e-9)
	}
	if s := evFast.Stats(); s.Solves != 0 {
		t.Errorf("fast evaluator ran %d LP solves across tree trials, want 0", s.Solves)
	}
}

func TestFastPathInfeasibleOnMaskedTree(t *testing.T) {
	// Disabling a forward-only tree arc leaves a (smaller) tree whose
	// lost subtree is unreachable: the fast path must report the same
	// +Inf the LP does.
	g := graph.New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	e1 := g.AddEdge(s, a, 1)
	g.AddEdge(a, b, 1)
	p, err := NewProblem(g, s, []graph.NodeID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	evFast := NewEvaluator()
	evLP := lpEvaluator()
	fast, err1 := evFast.DropEdgeMulticast(p, e1)
	ref, err2 := evLP.DropEdgeMulticast(p, e1)
	if err1 != nil || err2 != nil {
		t.Fatalf("%v / %v", err1, err2)
	}
	if !fast.Infeasible() || !ref.Infeasible() {
		t.Fatalf("fast=%v LP=%v, want both infeasible", fast.Period, ref.Period)
	}
	if evFast.Stats().Solves != 0 {
		t.Error("infeasible tree verdict should not have run the LP")
	}
}

func TestFastPathCacheInteraction(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g, ids := randomTree(r, 10, true)
	ev := NewEvaluator()
	p, err := NewProblem(g, ids[0], ids[1:])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.MulticastLB(p); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.MulticastLB(p); err != nil {
		t.Fatal(err)
	}
	s := ev.Stats()
	// The repeat evaluation is a cache hit, not a second fast-path hit.
	if s.FastPathHits != 1 || s.CacheHits != 1 || s.Evaluations != 2 {
		t.Errorf("hits=%d cacheHits=%d evals=%d, want 1/1/2", s.FastPathHits, s.CacheHits, s.Evaluations)
	}
}

func TestSetFastPathToggleAndClone(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g, ids := randomTree(r, 8, true)
	p, err := NewProblem(g, ids[0], ids[1:])
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator()
	if !ev.FastPath() {
		t.Fatal("fast path should be on by default")
	}
	ev.SetFastPath(false)
	if ev.FastPath() {
		t.Fatal("SetFastPath(false) did not stick")
	}
	clone := ev.Clone()
	if clone.FastPath() {
		t.Error("clone did not inherit the fast-path switch")
	}
	if _, err := clone.MulticastLB(p); err != nil {
		t.Fatal(err)
	}
	if s := clone.Stats(); s.Solves == 0 || s.FastPathHits != 0 {
		t.Errorf("forced-LP clone: solves=%d hits=%d, want LP-only", s.Solves, s.FastPathHits)
	}
	ev.SetFastPath(true)
	if _, err := ev.MulticastLB(p); err != nil {
		t.Fatal(err)
	}
	if s := ev.Stats(); s.FastPathHits != 1 {
		t.Errorf("re-enabled fast path hits = %d, want 1", s.FastPathHits)
	}
}

// TestFastPathMatchesCutRegime pins agreement at a scale where the LP
// reference runs the cut-covering master rather than the direct
// formulation (broadcast with ~80 nodes blows the direct-regime size
// cap). The cutting plane terminates at cutTol relative, so the
// comparison tolerance is the LP's, not the fast path's.
func TestFastPathMatchesCutRegime(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 4; trial++ {
		g, ids := randomTree(r, 80, true)
		evFast := NewEvaluator()
		evLP := lpEvaluator()
		fast, err1 := evFast.BroadcastEB(g, ids[0])
		ref, err2 := evLP.BroadcastEB(g, ids[0])
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v / %v", trial, err1, err2)
		}
		if d := relDiff(fast.Period, ref.Period); d > 10*cutTol {
			t.Fatalf("trial %d: fast %.17g vs cut-regime LP %.17g (rel diff %.3g)", trial, fast.Period, ref.Period, d)
		}
		if evLP.Stats().Cuts == 0 {
			t.Fatalf("trial %d: reference did not exercise the cut regime", trial)
		}
	}
}
