package steady

import (
	"fmt"

	"repro/internal/graph"
)

// Incremental replanning: the live serving path (internal/live) and
// any online controller built on the library turn platform mutation
// events into updated bounds without rebuilding an evaluator per
// event. Replan applies a graph.Delta in place and re-evaluates on the
// same evaluator, so everything the previous solves learned stays
// warm:
//
//   - The per-source cut pools seed the Multicast-LB cutting plane
//     with the incumbent cuts of the previous version (BFS-revalidated
//     against the mutated graph), so the master LP typically restarts
//     from the previous optimal constraint set and re-solves in one or
//     two separation rounds instead of re-peeling the whole cut
//     sequence — that pooled constraint set *is* the previous optimal
//     basis in cutting-plane terms, and within the loop every re-solve
//     warm-starts from the prior round's simplex basis (SolveFrom).
//   - The path pools replay the previous version's multi-source
//     columns the same way.
//   - The shared lp.Workspace keeps its factorisation scratch.
//
// Classification re-dispatch is automatic: every delta op bumps the
// graph's mutation stamp, which invalidates the evaluator's memoised
// classifier verdict, so a delta that breaks tree-ness falls back to
// the LP on the next evaluation and a delta that creates tree-ness
// routes combinatorially — no special-casing in Replan itself. A warm
// replan therefore answers tree-classified versions bit-identically to
// a cold solve; on general platforms warm and cold agree to LP
// optimality (~1e-9 — fuzz-pinned by FuzzReplanVsCold), which is why
// the serving layer's byte-determinism contract is carried by the
// canonical cold path instead (DESIGN.md §14).

// ReplanResult is the outcome of one incremental replan event.
type ReplanResult struct {
	// LB is the Multicast-LB bound of the mutated platform.
	LB *Bound
	// Scatter is the Multicast-UB scatter bound of the mutated platform.
	Scatter *Bound
	// Stats is the solver effort this event added on top of the
	// evaluator's prior cumulative stats — the warm-vs-cold comparison
	// currency (simplex iterations, rounds, warm solves).
	Stats SolveStats
	// TreeRouted reports whether the mutated platform classified as a
	// tree rooted at the source, i.e. both bounds were answered
	// combinatorially without touching the LP.
	TreeRouted bool
	// Fingerprint is the mutated platform's content fingerprint.
	Fingerprint uint64
}

// Replan applies delta to p.G in place — permanently, unlike the
// trial ops (DropEdgeMulticast etc.), which restore the graph before
// returning — and re-evaluates the multicast bounds warm on e. On any
// error (invalid delta, or the delta invalidated the problem by
// dropping the source or a target) the delta is rolled back and p.G is
// exactly as before the call.
func (e *Evaluator) Replan(p Problem, delta graph.Delta) (*ReplanResult, error) {
	undo, err := delta.Apply(p.G)
	if err != nil {
		return nil, fmt.Errorf("steady: replan: %w", err)
	}
	res, err := e.ReplanCurrent(p)
	if err != nil {
		undo.Apply(p.G)
		return nil, err
	}
	return res, nil
}

// ReplanCurrent re-evaluates the bounds for p's current graph state on
// the warm evaluator, for callers that already applied their delta
// (the serving registry mutates a private clone and publishes it). It
// revalidates the problem — mutation may have deactivated the source
// or a target — and reports the incremental solver effort.
func (e *Evaluator) ReplanCurrent(p Problem) (*ReplanResult, error) {
	vp, err := NewProblem(p.G, p.Source, p.Targets)
	if err != nil {
		return nil, fmt.Errorf("steady: replan: %w", err)
	}
	before := e.Stats()
	lb, err := e.MulticastLB(vp)
	if err != nil {
		return nil, err
	}
	scatter, err := e.ScatterUB(vp)
	if err != nil {
		return nil, err
	}
	after := e.Stats()
	return &ReplanResult{
		LB:          lb,
		Scatter:     scatter,
		Stats:       after.Delta(before),
		TreeRouted:  !e.noFastPath && e.TreeClass(vp.G, vp.Source) == graph.ClassTree,
		Fingerprint: Fingerprint(vp.G),
	}, nil
}
