package steady

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// replanGeneralPlatform builds a small general (non-tree) platform: a
// source feeding two relays that both reach three leaves, so flows
// have real routing choices and the LP regime is exercised.
func replanGeneralPlatform(t *testing.T) (*graph.Graph, Problem) {
	t.Helper()
	g := graph.New()
	s := g.AddNode("s")
	r1 := g.AddNode("r1")
	r2 := g.AddNode("r2")
	l1 := g.AddNode("l1")
	l2 := g.AddNode("l2")
	l3 := g.AddNode("l3")
	g.AddEdge(s, r1, 1)    // 0
	g.AddEdge(s, r2, 1.25) // 1
	g.AddEdge(r1, l1, 2)   // 2
	g.AddEdge(r1, l2, 2.5) // 3
	g.AddEdge(r2, l2, 2)   // 4
	g.AddEdge(r2, l3, 1.5) // 5
	g.AddEdge(r1, r2, 0.5) // 6
	g.AddEdge(r2, l1, 3)   // 7
	p, err := NewProblem(g, s, []graph.NodeID{l1, l2, l3})
	if err != nil {
		t.Fatal(err)
	}
	return g, p
}

// coldReference solves p's current graph state on a fresh evaluator.
func coldReference(t *testing.T, p Problem) (lb, scatter *Bound) {
	t.Helper()
	ev := NewEvaluator()
	vp, err := NewProblem(p.G, p.Source, p.Targets)
	if err != nil {
		t.Fatalf("cold reference problem: %v", err)
	}
	lb, err = ev.MulticastLB(vp)
	if err != nil {
		t.Fatalf("cold MulticastLB: %v", err)
	}
	scatter, err = ev.ScatterUB(vp)
	if err != nil {
		t.Fatalf("cold ScatterUB: %v", err)
	}
	return lb, scatter
}

func assertReplanMatchesCold(t *testing.T, res *ReplanResult, p Problem, event string) {
	t.Helper()
	lb, scatter := coldReference(t, p)
	if res.LB.Infeasible() != lb.Infeasible() {
		t.Fatalf("%s: warm LB infeasible=%v, cold=%v", event, res.LB.Infeasible(), lb.Infeasible())
	}
	if !res.LB.Infeasible() {
		if d := relDiff(res.LB.Period, lb.Period); d > 1e-9 {
			t.Fatalf("%s: warm LB %.17g vs cold %.17g (rel %.3g)", event, res.LB.Period, lb.Period, d)
		}
	}
	if res.Scatter.Infeasible() != scatter.Infeasible() {
		t.Fatalf("%s: warm scatter infeasible=%v, cold=%v", event, res.Scatter.Infeasible(), scatter.Infeasible())
	}
	if !res.Scatter.Infeasible() {
		if d := relDiff(res.Scatter.Period, scatter.Period); d > 1e-9 {
			t.Fatalf("%s: warm scatter %.17g vs cold %.17g (rel %.3g)", event, res.Scatter.Period, scatter.Period, d)
		}
	}
}

func TestReplanWarmMatchesColdAcrossDeltas(t *testing.T) {
	_, p := replanGeneralPlatform(t)
	ev := NewEvaluator()
	// Baseline solve to warm the pools, then a churn sequence: degrade,
	// fail, recover, reprice.
	if _, err := ev.ReplanCurrent(p); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	events := []struct {
		d    graph.Delta
		tree bool
	}{
		{graph.Delta{graph.ScaleEdgeCostOp(0, 2)}, false},                          // degrade s->r1
		{graph.Delta{graph.DisableEdgeOp(6)}, false},                               // relay cross-link fails
		{graph.Delta{graph.SetEdgeCostOp(4, 1.1)}, false},                          // r2->l2 repriced
		{graph.Delta{graph.EnableEdgeOp(6), graph.ScaleEdgeCostOp(0, 0.5)}, false}, // recovery batch
		// Losing relay r1 leaves a pure star behind r2 — the survivor
		// snapshot classifies as a tree and must fast-path.
		{graph.Delta{graph.DropNodeOp(1)}, true},
		{graph.Delta{graph.RestoreNodeOp(1)}, false}, // and returns
	}
	for i, e := range events {
		res, err := ev.Replan(p, e.d)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if res.TreeRouted != e.tree {
			t.Fatalf("event %d: TreeRouted=%v, want %v", i, res.TreeRouted, e.tree)
		}
		if res.Fingerprint != Fingerprint(p.G) {
			t.Fatalf("event %d: stale fingerprint", i)
		}
		assertReplanMatchesCold(t, res, p, fmt.Sprintf("event %d", i))
	}
}

func TestReplanCrossesTreeBoundary(t *testing.T) {
	// A tree platform plus one chord that is disabled at first: enabling
	// it breaks tree-ness (LP regime), disabling it restores the
	// combinatorial fast path. Replan must re-dispatch on both
	// crossings and agree with a cold solve each time.
	g := graph.New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddEdge(s, a, 1)   // 0
	g.AddEdge(a, b, 2)   // 1
	g.AddEdge(s, c, 1.5) // 2
	chord := g.AddEdge(c, b, 0.75)
	g.DisableEdge(chord)
	p, err := NewProblem(g, s, []graph.NodeID{b, c})
	if err != nil {
		t.Fatal(err)
	}

	ev := NewEvaluator()
	base, err := ev.ReplanCurrent(p)
	if err != nil {
		t.Fatal(err)
	}
	if !base.TreeRouted {
		t.Fatal("baseline tree platform not tree-routed")
	}
	assertReplanMatchesCold(t, base, p, "baseline")

	broke, err := ev.Replan(p, graph.Delta{graph.EnableEdgeOp(chord)})
	if err != nil {
		t.Fatal(err)
	}
	if broke.TreeRouted {
		t.Fatal("chord-enabled platform still tree-routed")
	}
	assertReplanMatchesCold(t, broke, p, "tree->general")
	if broke.LB.Period > base.LB.Period+1e-12 {
		t.Fatalf("extra chord made the period worse: %.17g > %.17g", broke.LB.Period, base.LB.Period)
	}

	healed, err := ev.Replan(p, graph.Delta{graph.DisableEdgeOp(chord)})
	if err != nil {
		t.Fatal(err)
	}
	if !healed.TreeRouted {
		t.Fatal("chord-disabled platform not re-dispatched to the tree path")
	}
	assertReplanMatchesCold(t, healed, p, "general->tree")
	if healed.LB.Period != base.LB.Period {
		t.Fatalf("returning to the baseline snapshot changed the period: %.17g vs %.17g",
			healed.LB.Period, base.LB.Period)
	}
}

func TestReplanRollsBackOnError(t *testing.T) {
	_, p := replanGeneralPlatform(t)
	ev := NewEvaluator()
	before := Fingerprint(p.G)

	// Invalid op: out-of-range edge.
	if _, err := ev.Replan(p, graph.Delta{graph.DisableEdgeOp(99)}); err == nil {
		t.Fatal("Replan accepted out-of-range edge")
	}
	if Fingerprint(p.G) != before {
		t.Fatal("failed Replan mutated the graph")
	}

	// Valid delta that invalidates the problem: dropping a target. The
	// applied delta must be rolled back.
	target := p.Targets[0]
	if _, err := ev.Replan(p, graph.Delta{graph.DropNodeOp(target)}); err == nil {
		t.Fatal("Replan accepted a delta that dropped a target")
	}
	if !p.G.Active(target) || Fingerprint(p.G) != before {
		t.Fatal("problem-invalidating delta was not rolled back")
	}
}

func TestReplanStatsAreIncremental(t *testing.T) {
	_, p := replanGeneralPlatform(t)
	ev := NewEvaluator()
	first, err := ev.ReplanCurrent(p)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Evaluations != 2 || first.Stats.Solves == 0 {
		t.Fatalf("baseline stats not incremental: %+v", first.Stats)
	}
	// Re-evaluating the unchanged platform answers from the result
	// cache: no new solves.
	again, err := ev.ReplanCurrent(p)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.Solves != 0 || again.Stats.CacheHits != 2 {
		t.Fatalf("unchanged replan did not hit the cache: %+v", again.Stats)
	}
}
