package steady

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/lp"
)

// diamond builds a non-tree platform (two disjoint S→t paths), so the
// bounds must run the LP rather than the combinatorial tree fast path.
func diamond(t *testing.T) Problem {
	t.Helper()
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	b := g.AddNode("b")
	tt := g.AddNode("t")
	g.AddEdge(s, a, 1)
	g.AddEdge(s, b, 1)
	g.AddEdge(a, tt, 1)
	g.AddEdge(b, tt, 1)
	p, err := NewProblem(g, s, []graph.NodeID{a, b, tt})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEvaluatorSetStop(t *testing.T) {
	p := diamond(t)
	ev := NewEvaluator()
	var stop atomic.Bool
	stop.Store(true)
	ev.SetStop(&stop)
	if _, err := ev.MulticastLB(p); !errors.Is(err, lp.ErrCanceled) {
		t.Fatalf("MulticastLB under stop = %v, want lp.ErrCanceled", err)
	}
	if _, err := ev.ScatterUB(p); !errors.Is(err, lp.ErrCanceled) {
		t.Fatalf("ScatterUB under stop = %v, want lp.ErrCanceled", err)
	}

	// Clearing the flag must leave the evaluator fully usable and its
	// answers identical to a never-canceled evaluator's.
	stop.Store(false)
	got, err := ev.MulticastLB(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewEvaluator().MulticastLB(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Period != want.Period {
		t.Fatalf("post-cancel period %v differs from fresh %v", got.Period, want.Period)
	}

	// A canceled evaluation is not cached: the successful re-solve above
	// must have computed, and a repeat is the cache hit.
	before := ev.Stats()
	if _, err := ev.MulticastLB(p); err != nil {
		t.Fatal(err)
	}
	if d := ev.Stats().Delta(before); d.CacheHits != 1 {
		t.Fatalf("repeat evaluation: %d cache hits, want 1", d.CacheHits)
	}
}

// TestEvaluatorSetStopLeavesCacheUsable verifies cached results still
// answer while the stop flag is set (cancellation refuses new simplex
// work only).
func TestEvaluatorSetStopLeavesCacheUsable(t *testing.T) {
	p := diamond(t)
	ev := NewEvaluator()
	want, err := ev.MulticastLB(p)
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	stop.Store(true)
	ev.SetStop(&stop)
	got, err := ev.MulticastLB(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Period != want.Period {
		t.Fatalf("cached period under stop = %v, want %v", got.Period, want.Period)
	}
}
