package steady

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/lp"
)

// MultiSourceUB solves the paper's MulticastMultiSource-UB program
// (Section 5.2.3): a scatter-like multicast in which an ordered list of
// intermediate sources {s_0 = Psource, s_1, ..., s_l} relays full
// copies of the message. Each intermediate source s_i must receive the
// entire message from strictly earlier sources (equations (1)/(2) of
// the program; pipelining makes the ordering legal in steady state),
// and every other target receives the entire message as a sum of
// contributions from the intermediate sources (equations (1b)/(2b)).
// Link occupation counts every commodity separately (equation (10)),
// so the resulting period is achievable by an actual schedule, like
// the plain scatter bound.
//
// extras lists the intermediate sources other than p.Source, in the
// order the AUGMENTED SOURCES heuristic promoted them. With no extras
// the program reduces to ScatterUB.
//
// Implementation note: the paper's edge-flow formulation carries one
// conservation row per (origin, node) pair with a zero right-hand
// side; at platform scale that produces a degenerate plateau that
// wrecks a tableau simplex. Since every commodity is an
// origin-to-destination flow, the program is solved here in its
// equivalent path form by column generation (flow decomposition
// equivalence, DESIGN.md Section 4.3): the master LP has one convexity
// row per destination plus the one-port rows, and the pricing problem
// is a cheapest path under dual-adjusted edge costs, solved by one
// Dijkstra per origin.
func MultiSourceUB(p Problem, extras []graph.NodeID) (*Bound, error) {
	g := p.G
	origins := append([]graph.NodeID{p.Source}, extras...)
	seen := make(map[graph.NodeID]bool, len(origins))
	for _, s := range origins {
		if !g.Active(s) {
			return nil, fmt.Errorf("steady: intermediate source %s is not active", g.Name(s))
		}
		if seen[s] {
			return nil, errors.New("steady: duplicate intermediate source")
		}
		seen[s] = true
	}

	// Destinations: extra sources receive from strictly earlier origins,
	// plain targets from any origin.
	originIndex := make(map[graph.NodeID]int, len(origins))
	for i, s := range origins {
		originIndex[s] = i
	}
	var dests []msDest
	for i, s := range origins[1:] {
		dests = append(dests, msDest{node: s, maxOrigin: i + 1})
	}
	for _, t := range p.Targets {
		if _, isOrigin := originIndex[t]; !isOrigin {
			dests = append(dests, msDest{node: t, maxOrigin: len(origins)})
		}
	}
	if len(dests) == 0 {
		return &Bound{Period: 0, EdgeLoad: make([]float64, g.NumEdges())}, nil
	}
	// Every destination must ultimately be fed from the primary source.
	destNodes := make([]graph.NodeID, len(dests))
	for i, d := range dests {
		destNodes[i] = d.node
	}
	if !g.ReachesAll(p.Source, destNodes) {
		return infeasibleBound(), nil
	}

	var pool []msPath
	poolKey := make(map[string]bool)
	addPath := func(di int, edges []int) bool {
		key := fmt.Sprint(di, edges)
		if poolKey[key] {
			return false
		}
		poolKey[key] = true
		pool = append(pool, msPath{dest: di, edges: append([]int(nil), edges...)})
		return true
	}
	// Initial columns: a cheapest path from the primary source to each
	// destination (origin 0 is allowed for every destination).
	_, parent := g.ShortestPaths(p.Source, graph.CostWeight)
	for di, d := range dests {
		addPath(di, g.WalkBack(parent, d.node))
	}

	const maxRounds = 400
	for round := 0; ; round++ {
		if round >= maxRounds {
			return nil, errors.New("steady: MultiSourceUB column generation did not converge")
		}
		period, loads, mu, alpha, beta, err := solveMSMaster(g, dests, pool)
		if err != nil {
			return nil, err
		}
		// Pricing: a path for destination d enters if its dual-adjusted
		// cost sum c(e)*(beta(tail) + alpha(head)) undercuts the
		// destination's convexity dual mu.
		w := func(e graph.Edge) float64 {
			d := beta[e.From] + alpha[e.To]
			if d < 0 {
				d = 0
			}
			return e.Cost * d
		}
		dist := make([][]float64, len(origins))
		par := make([][]int, len(origins))
		for j, s := range origins {
			dist[j], par[j] = g.ShortestPaths(s, w)
		}
		improved := false
		for di, d := range dests {
			bestJ, bestCost := -1, math.Inf(1)
			for j := 0; j < d.maxOrigin; j++ {
				if c := dist[j][d.node]; c < bestCost {
					bestJ, bestCost = j, c
				}
			}
			if bestJ >= 0 && bestCost < mu[di]-1e-9*(1+math.Abs(mu[di])) {
				if addPath(di, g.WalkBack(par[bestJ], d.node)) {
					improved = true
				}
			}
		}
		if !improved {
			return &Bound{Period: period, EdgeLoad: loads, Rounds: round + 1}, nil
		}
	}
}

type msDest struct {
	node      graph.NodeID
	maxOrigin int
}

type msPath struct {
	dest  int
	edges []int
}

// solveMSMaster solves the restricted path master in
// throughput-normalised form: maximise rho subject to one convexity
// row per destination (its paths' rates sum to rho) and the one-port
// occupation rows (<= 1). It returns the period 1/rho, the per-edge
// per-multicast loads, the convexity duals mu (sign-adjusted so that a
// path prices in when its dual-weighted cost undercuts mu), and the
// non-negative port duals alpha (receive side) and beta (send side).
func solveMSMaster(g *graph.Graph, dests []msDest, pool []msPath) (float64, []float64, []float64, []float64, []float64, error) {
	m := lp.NewModel()
	m.Maximize()
	rhoVar := m.AddVar(1, "rho")
	yVar := make([]int, len(pool))
	for i := range pool {
		yVar[i] = m.AddVar(0, fmt.Sprintf("y%d", i))
	}
	coverRow := make([]int, len(dests))
	coverTerms := make([][]lp.Term, len(dests))
	inTerms := make(map[graph.NodeID][]lp.Term)
	outTerms := make(map[graph.NodeID][]lp.Term)
	for i, pth := range pool {
		coverTerms[pth.dest] = append(coverTerms[pth.dest], lp.Term{Var: yVar[i], Coef: 1})
		for _, id := range pth.edges {
			e := g.Edge(id)
			outTerms[e.From] = append(outTerms[e.From], lp.Term{Var: yVar[i], Coef: e.Cost})
			inTerms[e.To] = append(inTerms[e.To], lp.Term{Var: yVar[i], Coef: e.Cost})
		}
	}
	for di := range dests {
		terms := append(coverTerms[di], lp.Term{Var: rhoVar, Coef: -1})
		coverRow[di] = m.AddRow(lp.EQ, 0, terms...)
	}
	inRow := make(map[graph.NodeID]int)
	outRow := make(map[graph.NodeID]int)
	for _, v := range g.ActiveNodes() {
		if terms := inTerms[v]; len(terms) > 0 {
			inRow[v] = m.AddRow(lp.LE, 1, terms...)
		}
		if terms := outTerms[v]; len(terms) > 0 {
			outRow[v] = m.AddRow(lp.LE, 1, terms...)
		}
	}
	sol, err := m.Solve()
	if err != nil {
		return 0, nil, nil, nil, nil, err
	}
	if sol.Status != lp.Optimal {
		return 0, nil, nil, nil, nil, fmt.Errorf("steady: MultiSourceUB master: unexpected LP status %v", sol.Status)
	}
	rho := sol.X[rhoVar]
	if rho <= cutTol {
		return 0, nil, nil, nil, nil, errors.New("steady: MultiSourceUB: zero throughput on a reachable instance")
	}
	loads := make([]float64, g.NumEdges())
	for i, pth := range pool {
		y := math.Max(0, sol.X[yVar[i]]) / rho
		for _, id := range pth.edges {
			loads[id] += y
		}
	}
	// For the max model, a path column for destination d prices in when
	// sum c(e)*(alpha+beta) < -dual(cover_d); expose mu = -dual so the
	// caller's test reads "path cost < mu".
	mu := make([]float64, len(dests))
	for di := range dests {
		mu[di] = -sol.Dual[coverRow[di]]
	}
	alpha := make([]float64, g.NumNodes())
	beta := make([]float64, g.NumNodes())
	for v, r := range inRow {
		alpha[v] = math.Max(0, sol.Dual[r])
	}
	for v, r := range outRow {
		beta[v] = math.Max(0, sol.Dual[r])
	}
	return 1 / rho, loads, mu, alpha, beta, nil
}
