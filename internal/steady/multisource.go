package steady

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/lp"
)

// MultiSourceUB solves the paper's MulticastMultiSource-UB program
// (Section 5.2.3): a scatter-like multicast in which an ordered list of
// intermediate sources {s_0 = Psource, s_1, ..., s_l} relays full
// copies of the message. Each intermediate source s_i must receive the
// entire message from strictly earlier sources (equations (1)/(2) of
// the program; pipelining makes the ordering legal in steady state),
// and every other target receives the entire message as a sum of
// contributions from the intermediate sources (equations (1b)/(2b)).
// Link occupation counts every commodity separately (equation (10)),
// so the resulting period is achievable by an actual schedule, like
// the plain scatter bound.
//
// extras lists the intermediate sources other than p.Source, in the
// order the AUGMENTED SOURCES heuristic promoted them. With no extras
// the program reduces to ScatterUB.
//
// Implementation note: the paper's edge-flow formulation carries one
// conservation row per (origin, node) pair with a zero right-hand
// side; at platform scale that produces a degenerate plateau that
// wrecks the simplex. Since every commodity is an origin-to-destination
// flow, the program is solved here in its equivalent path form by
// column generation (flow decomposition equivalence, DESIGN.md Section
// 4.3): the master LP has one convexity row per destination plus the
// one-port rows, and the pricing problem is a cheapest path under
// dual-adjusted edge costs, solved by one Dijkstra per origin. The
// master is built once and only grows: every pricing round appends its
// improving paths as columns (lp.Model.AddColumn) and re-solves warm
// from the previous basis.
func MultiSourceUB(p Problem, extras []graph.NodeID) (*Bound, error) {
	return multiSourceUB(p, extras, msOptions{})
}

// msOptions threads Evaluator state through the multisource solver:
// a reusable workspace, pooled path columns from earlier related
// solves, and an observer for newly priced-in paths.
type msOptions struct {
	ws     *lp.Workspace
	seeds  []pooledPath
	onPath func(origin, dest graph.NodeID, edges []int)
}

// pooledPath is a path column discovered by an earlier solve: an
// origin-to-destination path, reusable as a seed column whenever its
// origin is still allowed to feed its destination.
type pooledPath struct {
	origin, dest graph.NodeID
	edges        []int
}

func multiSourceUB(p Problem, extras []graph.NodeID, opts msOptions) (*Bound, error) {
	g := p.G
	origins := append([]graph.NodeID{p.Source}, extras...)
	seen := make(map[graph.NodeID]bool, len(origins))
	for _, s := range origins {
		if !g.Active(s) {
			return nil, fmt.Errorf("steady: intermediate source %s is not active", g.Name(s))
		}
		if seen[s] {
			return nil, errors.New("steady: duplicate intermediate source")
		}
		seen[s] = true
	}

	// Destinations: extra sources receive from strictly earlier origins,
	// plain targets from any origin.
	originIndex := make(map[graph.NodeID]int, len(origins))
	for i, s := range origins {
		originIndex[s] = i
	}
	var dests []msDest
	for i, s := range origins[1:] {
		dests = append(dests, msDest{node: s, maxOrigin: i + 1})
	}
	for _, t := range p.Targets {
		if _, isOrigin := originIndex[t]; !isOrigin {
			dests = append(dests, msDest{node: t, maxOrigin: len(origins)})
		}
	}
	if len(dests) == 0 {
		return &Bound{Period: 0, EdgeLoad: make([]float64, g.NumEdges())}, nil
	}
	// Every destination must ultimately be fed from the primary source.
	destNodes := make([]graph.NodeID, len(dests))
	destIndex := make(map[graph.NodeID]int, len(dests))
	for i, d := range dests {
		destNodes[i] = d.node
		destIndex[d.node] = i
	}
	if !g.ReachesAll(p.Source, destNodes) {
		return infeasibleBound(), nil
	}

	m := newMSMaster(g, dests)

	var pool []msPath
	poolKey := make(map[string]bool)
	addPath := func(di int, edges []int, origin graph.NodeID) bool {
		key := pathPoolKey(graph.NodeID(di), 0, edges)
		if poolKey[key] {
			return false
		}
		poolKey[key] = true
		pool = append(pool, msPath{dest: di, edges: append([]int(nil), edges...)})
		m.addColumn(di, pool[len(pool)-1].edges)
		if opts.onPath != nil {
			opts.onPath(origin, dests[di].node, edges)
		}
		return true
	}
	// Seed columns: pooled paths whose origin may still feed their
	// destination under the current promotion order (and whose edges
	// are all still active), then a cheapest path from the primary
	// source to each destination (origin 0 is allowed for every
	// destination).
	for _, s := range opts.seeds {
		di, ok := destIndex[s.dest]
		if !ok {
			continue
		}
		oi, ok := originIndex[s.origin]
		if !ok || oi >= dests[di].maxOrigin {
			continue
		}
		usable := true
		for _, id := range s.edges {
			if !g.EdgeActive(id) {
				usable = false
				break
			}
		}
		if usable {
			addPath(di, s.edges, s.origin)
		}
	}
	_, parent := g.ShortestPaths(p.Source, graph.CostWeight)
	for di, d := range dests {
		addPath(di, g.WalkBack(parent, d.node), p.Source)
	}

	ws := opts.ws
	if ws == nil {
		ws = lp.NewWorkspace()
	}
	bound := &Bound{}
	var basis lp.Basis
	const maxRounds = 400
	for round := 0; ; round++ {
		if round >= maxRounds {
			return nil, errors.New("steady: MultiSourceUB column generation did not converge")
		}
		period, loads, mu, alpha, beta, err := m.solve(ws, &basis, bound, pool)
		if err != nil {
			return nil, err
		}
		bound.Rounds = round + 1
		// Pricing: a path for destination d enters if its dual-adjusted
		// cost sum c(e)*(beta(tail) + alpha(head)) undercuts the
		// destination's convexity dual mu.
		w := func(e graph.Edge) float64 {
			d := beta[e.From] + alpha[e.To]
			if d < 0 {
				d = 0
			}
			return e.Cost * d
		}
		dist := make([][]float64, len(origins))
		par := make([][]int, len(origins))
		for j, s := range origins {
			dist[j], par[j] = g.ShortestPaths(s, w)
		}
		improved := false
		for di, d := range dests {
			bestJ, bestCost := -1, math.Inf(1)
			for j := 0; j < d.maxOrigin; j++ {
				if c := dist[j][d.node]; c < bestCost {
					bestJ, bestCost = j, c
				}
			}
			if bestJ >= 0 && bestCost < mu[di]-1e-9*(1+math.Abs(mu[di])) {
				if addPath(di, g.WalkBack(par[bestJ], d.node), origins[bestJ]) {
					improved = true
				}
			}
		}
		if !improved {
			bound.Period = period
			bound.EdgeLoad = loads
			return bound, nil
		}
	}
}

type msDest struct {
	node      graph.NodeID
	maxOrigin int
}

type msPath struct {
	dest  int
	edges []int
}

// msMaster is the restricted path master in throughput-normalised form:
// maximise rho subject to one convexity row per destination (its
// paths' rates sum to rho) and the one-port occupation rows (<= 1).
// The model is incremental: rows are laid down once, and each priced-in
// path joins as a column.
type msMaster struct {
	g        *graph.Graph
	dests    []msDest
	m        *lp.Model
	rhoVar   int
	coverRow []int
	inRow    map[graph.NodeID]int
	outRow   map[graph.NodeID]int
	yVar     []int
}

func newMSMaster(g *graph.Graph, dests []msDest) *msMaster {
	m := lp.NewModel()
	m.Maximize()
	ms := &msMaster{
		g:        g,
		dests:    dests,
		m:        m,
		rhoVar:   m.AddVar(1, "rho"),
		coverRow: make([]int, len(dests)),
		inRow:    make(map[graph.NodeID]int),
		outRow:   make(map[graph.NodeID]int),
	}
	for di := range dests {
		ms.coverRow[di] = m.AddRow(lp.EQ, 0, lp.Term{Var: ms.rhoVar, Coef: -1})
	}
	// Port rows for every active node, even those no current column
	// touches: future columns may, and rows cannot be appended to
	// retroactively without invalidating warm starts.
	for _, v := range g.ActiveNodes() {
		ms.inRow[v] = m.AddRow(lp.LE, 1)
		ms.outRow[v] = m.AddRow(lp.LE, 1)
	}
	return ms
}

// addColumn adds one path column: rate y >= 0 entering destination
// di's convexity row with coefficient 1 and loading the one-port rows
// of every edge on the path.
func (ms *msMaster) addColumn(di int, edges []int) {
	entries := make([]lp.RowCoef, 0, 2*len(edges)+1)
	entries = append(entries, lp.RowCoef{Row: ms.coverRow[di], Coef: 1})
	for _, id := range edges {
		e := ms.g.Edge(id)
		entries = append(entries, lp.RowCoef{Row: ms.outRow[e.From], Coef: e.Cost})
		entries = append(entries, lp.RowCoef{Row: ms.inRow[e.To], Coef: e.Cost})
	}
	ms.yVar = append(ms.yVar, ms.m.AddColumn(0, "", entries...))
}

// solve re-solves the master (warm from *basis when available), updates
// *basis, and returns the period 1/rho, the per-edge per-multicast
// loads, the convexity duals mu (sign-adjusted so that a path prices in
// when its dual-weighted cost undercuts mu), and the non-negative port
// duals alpha (receive side) and beta (send side).
func (ms *msMaster) solve(ws *lp.Workspace, basis *lp.Basis, bound *Bound, pool []msPath) (float64, []float64, []float64, []float64, []float64, error) {
	var sol *lp.Solution
	var err error
	if basis.Empty() {
		sol, err = ms.m.SolveWith(ws)
	} else {
		sol, err = ms.m.SolveFrom(ws, *basis)
	}
	if err != nil {
		return 0, nil, nil, nil, nil, err
	}
	if sol.Status != lp.Optimal {
		return 0, nil, nil, nil, nil, fmt.Errorf("steady: MultiSourceUB master: unexpected LP status %v", sol.Status)
	}
	bound.noteSolve(sol)
	*basis = sol.Basis
	rho := sol.X[ms.rhoVar]
	if rho <= cutTol {
		return 0, nil, nil, nil, nil, errors.New("steady: MultiSourceUB: zero throughput on a reachable instance")
	}
	loads := make([]float64, ms.g.NumEdges())
	for i, pth := range pool {
		y := math.Max(0, sol.X[ms.yVar[i]]) / rho
		for _, id := range pth.edges {
			loads[id] += y
		}
	}
	// For the max model, a path column for destination d prices in when
	// sum c(e)*(alpha+beta) < -dual(cover_d); expose mu = -dual so the
	// caller's test reads "path cost < mu".
	mu := make([]float64, len(ms.dests))
	for di := range ms.dests {
		mu[di] = -sol.Dual[ms.coverRow[di]]
	}
	alpha := make([]float64, ms.g.NumNodes())
	beta := make([]float64, ms.g.NumNodes())
	for v, r := range ms.inRow {
		alpha[v] = math.Max(0, sol.Dual[r])
	}
	for v, r := range ms.outRow {
		beta[v] = math.Max(0, sol.Dual[r])
	}
	return 1 / rho, loads, mu, alpha, beta, nil
}
