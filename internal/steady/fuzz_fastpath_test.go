package steady

import (
	"testing"

	"repro/internal/graph"
)

// FuzzTreeVsLP cross-validates the tree fast path against the LP on
// fuzzer-driven platforms: random trees, near-trees (trees plus a few
// chords — possibly parallel or self-duplicating, exercising the
// classifier's fallback verdicts) and random edge-disable masks
// (exercising the infeasibility convention). Instances stay small
// enough that MulticastLB runs its direct per-target formulation, which
// solves to simplex optimality — so the 1e-9 agreement demanded here is
// against an exact reference, not a cut-regime approximation.
func FuzzTreeVsLP(f *testing.F) {
	f.Add([]byte{7, 0, 3, 9, 1, 14, 2, 30, 5, 11})
	f.Add([]byte{21, 1, 250, 8, 61, 3, 17, 99, 4, 200, 33, 12})
	f.Add([]byte{12, 2, 5, 5, 5, 5, 5, 5, 5, 5})
	f.Add([]byte{4, 11, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{24, 15, 0, 255, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip()
		}
		// A cycling byte reader makes every instance a deterministic
		// function of the corpus entry.
		pos := 2
		next := func() int {
			b := int(data[pos%len(data)])
			pos++
			return b
		}
		n := 3 + int(data[0])%22
		flags := data[1]
		bidir := flags&1 != 0
		chords := int(flags>>1) % 4
		maskEdges := int(flags>>3) % 3

		g := graph.New()
		ids := g.AddNodes("n", n)
		cost := func() float64 { return 0.25 + float64(next()%32)*0.125 }
		for i := 1; i < n; i++ {
			p := ids[next()%i]
			if bidir {
				g.AddLink(p, ids[i], cost())
			} else {
				g.AddEdge(p, ids[i], cost())
			}
		}
		for c := 0; c < chords; c++ {
			u, v := ids[next()%n], ids[next()%n]
			if u == v {
				continue
			}
			g.AddEdge(u, v, cost())
		}
		for m := 0; m < maskEdges; m++ {
			g.DisableEdge(next() % g.NumEdges())
		}

		var targets []graph.NodeID
		for _, v := range ids[1:] {
			if next()%2 == 0 {
				targets = append(targets, v)
			}
		}
		if len(targets) == 0 {
			targets = append(targets, ids[1+next()%(n-1)])
		}
		p, err := NewProblem(g, ids[0], targets)
		if err != nil {
			t.Fatal(err)
		}

		evFast := NewEvaluator()
		evLP := NewEvaluator()
		evLP.SetFastPath(false)
		for _, scatter := range []bool{false, true} {
			var fast, ref *Bound
			var err1, err2 error
			if scatter {
				fast, err1 = evFast.ScatterUB(p)
				ref, err2 = evLP.ScatterUB(p)
			} else {
				fast, err1 = evFast.MulticastLB(p)
				ref, err2 = evLP.MulticastLB(p)
			}
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("scatter=%v: error disagreement: fast %v, LP %v", scatter, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if fast.Infeasible() != ref.Infeasible() {
				t.Fatalf("scatter=%v: fast infeasible=%v, LP infeasible=%v", scatter, fast.Infeasible(), ref.Infeasible())
			}
			if fast.Infeasible() {
				continue
			}
			if d := relDiff(fast.Period, ref.Period); d > 1e-9 {
				t.Fatalf("scatter=%v: fast period %.17g vs LP %.17g (rel diff %.3g > 1e-9)",
					scatter, fast.Period, ref.Period, d)
			}
		}
	})
}
