package color

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakespan(t *testing.T) {
	demands := []Demand{
		{Sender: 0, Receiver: 10, Load: 1},
		{Sender: 0, Receiver: 11, Load: 2}, // sender 0 loaded to 3
		{Sender: 1, Receiver: 11, Load: 1}, // receiver 11 loaded to 3
	}
	if got := Makespan(demands); got != 3 {
		t.Fatalf("makespan = %v, want 3", got)
	}
}

func TestScheduleEmpty(t *testing.T) {
	ivs, T, err := Schedule(nil)
	if err != nil || len(ivs) != 0 || T != 0 {
		t.Fatalf("empty schedule: %v %v %v", ivs, T, err)
	}
}

func TestScheduleSinglePair(t *testing.T) {
	demands := []Demand{{Sender: 5, Receiver: 7, Load: 2.5}}
	ivs, T, err := Schedule(demands)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(T-2.5) > 1e-9 {
		t.Fatalf("T = %v", T)
	}
	if err := Validate(demands, ivs, 1e-7); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleCrossPairs(t *testing.T) {
	// Two senders, two receivers, crossing loads: the schedule must
	// interleave the matchings; max port load is 3.
	demands := []Demand{
		{Sender: 0, Receiver: 0, Load: 2},
		{Sender: 0, Receiver: 1, Load: 1},
		{Sender: 1, Receiver: 0, Load: 1},
		{Sender: 1, Receiver: 1, Load: 2},
	}
	ivs, T, err := Schedule(demands)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(T-3) > 1e-9 {
		t.Fatalf("T = %v, want 3", T)
	}
	if err := Validate(demands, ivs, 1e-7); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleUnbalancedSides(t *testing.T) {
	// More receivers than senders: padding handles the rectangle.
	demands := []Demand{
		{Sender: 0, Receiver: 1, Load: 1},
		{Sender: 0, Receiver: 2, Load: 1},
		{Sender: 0, Receiver: 3, Load: 1},
	}
	ivs, T, err := Schedule(demands)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(T-3) > 1e-9 {
		t.Fatalf("T = %v, want 3", T)
	}
	if err := Validate(demands, ivs, 1e-7); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleRejectsNegative(t *testing.T) {
	if _, _, err := Schedule([]Demand{{0, 0, -1}}); err == nil {
		t.Fatal("negative load accepted")
	}
}

func TestValidateCatchesConflicts(t *testing.T) {
	demands := []Demand{{0, 0, 2}, {0, 1, 2}}
	bad := []Interval{
		{Sender: 0, Receiver: 0, Start: 0, Length: 2},
		{Sender: 0, Receiver: 1, Start: 1, Length: 2}, // overlaps on sender 0
	}
	if err := Validate(demands, bad, 1e-9); err == nil {
		t.Fatal("overlap not caught")
	}
	short := []Interval{{Sender: 0, Receiver: 0, Start: 0, Length: 1}}
	if err := Validate(demands, short, 1e-9); err == nil {
		t.Fatal("missing load not caught")
	}
	extra := []Interval{
		{Sender: 0, Receiver: 0, Start: 0, Length: 2},
		{Sender: 0, Receiver: 1, Start: 2, Length: 2},
		{Sender: 9, Receiver: 9, Start: 0, Length: 1},
	}
	if err := Validate(demands, extra, 1e-9); err == nil {
		t.Fatal("unrequested pair not caught")
	}
}

// Property: random demand sets always schedule within their makespan
// and pass validation (König's theorem, constructively).
func TestScheduleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ns := 1 + rng.Intn(6)
		nr := 1 + rng.Intn(6)
		var demands []Demand
		for i := 0; i < 2+rng.Intn(12); i++ {
			demands = append(demands, Demand{
				Sender:   rng.Intn(ns),
				Receiver: 100 + rng.Intn(nr),
				Load:     0.1 + 3*rng.Float64(),
			})
		}
		ivs, T, err := Schedule(demands)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if math.Abs(T-Makespan(demands)) > 1e-7 {
			t.Logf("seed %d: T %v vs makespan %v", seed, T, Makespan(demands))
			return false
		}
		for _, iv := range ivs {
			if iv.Start < -1e-9 || iv.Start+iv.Length > T+1e-7 {
				t.Logf("seed %d: interval escapes horizon: %+v", seed, iv)
				return false
			}
		}
		if err := Validate(demands, ivs, 1e-6); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
