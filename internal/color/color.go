// Package color implements weighted bipartite edge colouring: packing a
// set of sender-receiver loads into conflict-free time intervals whose
// total span equals the maximum port load.
//
// This is the orchestration theorem the paper leans on in the
// NP-membership proofs of Theorems 1, 3 and 5 ("there is a nice theorem
// from graph theory that states that all the communications occurring
// in the K multicast trees can safely be scheduled within T
// time-units"): build the bipartite graph of send-ports versus
// receive-ports, then decompose the load matrix into matchings — a
// Birkhoff/von-Neumann decomposition after padding the matrix to
// doubly-T form. Each matching becomes a time slot during which every
// port handles at most one communication.
package color

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// eps is the load tolerance of the decomposition.
const eps = 1e-9

// Demand is an amount of communication time from a sender port to a
// receiver port. Sender and receiver live in separate index spaces (the
// two sides of the bipartite graph); a platform node contributes its
// send port on one side and its receive port on the other.
type Demand struct {
	Sender   int
	Receiver int
	Load     float64
}

// Interval is a scheduled chunk of a demand.
type Interval struct {
	Sender   int
	Receiver int
	Start    float64
	Length   float64
}

// Makespan returns the maximum total load over all sender and receiver
// ports — the optimal schedule length by König's theorem.
func Makespan(demands []Demand) float64 {
	send := map[int]float64{}
	recv := map[int]float64{}
	best := 0.0
	for _, d := range demands {
		send[d.Sender] += d.Load
		recv[d.Receiver] += d.Load
		best = math.Max(best, math.Max(send[d.Sender], recv[d.Receiver]))
	}
	return best
}

// Schedule packs the demands into time intervals such that no sender
// and no receiver handles two overlapping intervals, finishing within
// Makespan(demands). Demands may be preempted (split across intervals),
// as in the preemptive open-shop schedules underlying the paper's
// certificate argument. The per-pair interval lengths sum exactly to
// the pair's demanded load.
func Schedule(demands []Demand) ([]Interval, float64, error) {
	// Aggregate per (sender, receiver) pair and index the ports.
	sIdx := map[int]int{}
	rIdx := map[int]int{}
	var sIDs, rIDs []int
	for _, d := range demands {
		if d.Load < -eps {
			return nil, 0, fmt.Errorf("color: negative load %v", d.Load)
		}
		if _, ok := sIdx[d.Sender]; !ok {
			sIdx[d.Sender] = len(sIDs)
			sIDs = append(sIDs, d.Sender)
		}
		if _, ok := rIdx[d.Receiver]; !ok {
			rIdx[d.Receiver] = len(rIDs)
			rIDs = append(rIDs, d.Receiver)
		}
	}
	n := len(sIDs)
	if len(rIDs) > n {
		n = len(rIDs)
	}
	if n == 0 {
		return nil, 0, nil
	}
	work := make([][]float64, n) // genuine communication time
	pad := make([][]float64, n)  // idle padding
	for i := range work {
		work[i] = make([]float64, n)
		pad[i] = make([]float64, n)
	}
	for _, d := range demands {
		if d.Load > eps {
			work[sIdx[d.Sender]][rIdx[d.Receiver]] += d.Load
		}
	}
	rowSum := make([]float64, n)
	colSum := make([]float64, n)
	T := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rowSum[i] += work[i][j]
			colSum[j] += work[i][j]
		}
	}
	for i := 0; i < n; i++ {
		T = math.Max(T, math.Max(rowSum[i], colSum[i]))
	}
	if T <= eps {
		return nil, 0, nil
	}
	// Pad to a doubly-T matrix: every row and column sums to T.
	for i, j := 0, 0; i < n && j < n; {
		needRow := T - rowSum[i]
		needCol := T - colSum[j]
		if needRow <= eps {
			i++
			continue
		}
		if needCol <= eps {
			j++
			continue
		}
		f := math.Min(needRow, needCol)
		pad[i][j] += f
		rowSum[i] += f
		colSum[j] += f
	}

	remaining := func(i, j int) float64 { return work[i][j] + pad[i][j] }
	var out []Interval
	now := 0.0
	guard := 2*n*n + 2*len(demands) + 16
	for now < T-eps {
		if guard--; guard < 0 {
			return nil, 0, errors.New("color: decomposition did not converge")
		}
		match, err := perfectMatching(n, remaining)
		if err != nil {
			return nil, 0, err
		}
		delta := T - now
		for i, j := range match {
			delta = math.Min(delta, remaining(i, j))
		}
		if delta <= eps {
			return nil, 0, errors.New("color: degenerate matching step")
		}
		for i, j := range match {
			// Attribute work communication first; padding absorbs the rest.
			r := math.Min(delta, work[i][j])
			if r > eps {
				out = append(out, Interval{
					Sender:   sIDs[i],
					Receiver: rIDs[j],
					Start:    now,
					Length:   r,
				})
			}
			work[i][j] -= r
			pad[i][j] -= delta - r
			if work[i][j] < 0 {
				work[i][j] = 0
			}
			if pad[i][j] < 0 {
				pad[i][j] = 0
			}
		}
		now += delta
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		if out[a].Sender != out[b].Sender {
			return out[a].Sender < out[b].Sender
		}
		return out[a].Receiver < out[b].Receiver
	})
	return out, T, nil
}

// perfectMatching finds a perfect matching in the bipartite graph whose
// (i, j) edge exists when remaining(i, j) > eps, using Kuhn's
// augmenting-path algorithm. A doubly-T matrix always admits one
// (Hall's condition / Birkhoff-von Neumann).
func perfectMatching(n int, remaining func(i, j int) float64) (map[int]int, error) {
	matchCol := make([]int, n) // column -> row
	for j := range matchCol {
		matchCol[j] = -1
	}
	var seen []bool
	var try func(i int) bool
	try = func(i int) bool {
		for j := 0; j < n; j++ {
			if seen[j] || remaining(i, j) <= eps {
				continue
			}
			seen[j] = true
			if matchCol[j] < 0 || try(matchCol[j]) {
				matchCol[j] = i
				return true
			}
		}
		return false
	}
	for i := 0; i < n; i++ {
		seen = make([]bool, n)
		if !try(i) {
			return nil, errors.New("color: no perfect matching (matrix not doubly stochastic)")
		}
	}
	match := make(map[int]int, n)
	for j, i := range matchCol {
		match[i] = j
	}
	return match, nil
}

// Validate checks that the intervals are a correct schedule for the
// demands: non-negative lengths, per-pair totals matching the demanded
// loads (within tol), and no overlapping use of any sender or receiver.
func Validate(demands []Demand, intervals []Interval, tol float64) error {
	want := map[[2]int]float64{}
	for _, d := range demands {
		want[[2]int{d.Sender, d.Receiver}] += d.Load
	}
	got := map[[2]int]float64{}
	for _, iv := range intervals {
		if iv.Length < -tol {
			return fmt.Errorf("color: negative interval %+v", iv)
		}
		got[[2]int{iv.Sender, iv.Receiver}] += iv.Length
	}
	for k, w := range want {
		if math.Abs(got[k]-w) > tol {
			return fmt.Errorf("color: pair %v scheduled %v, want %v", k, got[k], w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok && got[k] > tol {
			return fmt.Errorf("color: unrequested pair %v scheduled", k)
		}
	}
	if err := checkExclusive(intervals, tol, func(iv Interval) (int, bool) { return iv.Sender, true }); err != nil {
		return fmt.Errorf("color: sender conflict: %w", err)
	}
	if err := checkExclusive(intervals, tol, func(iv Interval) (int, bool) { return iv.Receiver, true }); err != nil {
		return fmt.Errorf("color: receiver conflict: %w", err)
	}
	return nil
}

func checkExclusive(intervals []Interval, tol float64, port func(Interval) (int, bool)) error {
	byPort := map[int][]Interval{}
	for _, iv := range intervals {
		if p, ok := port(iv); ok {
			byPort[p] = append(byPort[p], iv)
		}
	}
	for p, ivs := range byPort {
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].Start < ivs[b].Start })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].Start < ivs[i-1].Start+ivs[i-1].Length-tol {
				return fmt.Errorf("port %d: %+v overlaps %+v", p, ivs[i-1], ivs[i])
			}
		}
	}
	return nil
}
