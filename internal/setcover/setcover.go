// Package setcover implements MINIMUM-SET-COVER instances, solvers and
// the reduction of Theorem 1: every set-cover instance maps to a
// COMPACT-MULTICAST platform (Figure 2 of the paper) on which finding
// the best single multicast tree is exactly finding a minimum cover.
// This is the machinery behind the paper's NP-hardness and
// inapproximability results (Theorems 1-4), reproduced here both as
// executable evidence and as a generator of adversarial test instances.
package setcover

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Instance is a MINIMUM-SET-COVER instance: cover all elements
// 0..NumElements-1 using as few of the Subsets as possible.
type Instance struct {
	NumElements int
	Subsets     [][]int
}

// Validate checks element indices and that a cover exists at all.
func (ins Instance) Validate() error {
	if ins.NumElements <= 0 {
		return errors.New("setcover: no elements")
	}
	if len(ins.Subsets) == 0 {
		return errors.New("setcover: no subsets")
	}
	covered := make([]bool, ins.NumElements)
	for si, s := range ins.Subsets {
		if len(s) == 0 {
			return fmt.Errorf("setcover: subset %d is empty", si)
		}
		for _, e := range s {
			if e < 0 || e >= ins.NumElements {
				return fmt.Errorf("setcover: subset %d references element %d", si, e)
			}
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			return fmt.Errorf("setcover: element %d is uncoverable", e)
		}
	}
	return nil
}

// Covers reports whether the chosen subset indices cover every element.
func (ins Instance) Covers(pick []int) bool {
	covered := make([]bool, ins.NumElements)
	n := 0
	for _, si := range pick {
		if si < 0 || si >= len(ins.Subsets) {
			return false
		}
		for _, e := range ins.Subsets[si] {
			if !covered[e] {
				covered[e] = true
				n++
			}
		}
	}
	return n == ins.NumElements
}

// PaperExample is the instance of Figure 2: X = {X1..X8},
// C = {{X1,X2,X3,X4}, {X3,X4,X5}, {X4,X5,X6}, {X5,X6,X7,X8}} (the
// paper's text has an obvious typo, "{X5,X6,X6,X8}"). Elements are
// zero-indexed here. Its minimum cover is {C1, C4}, size 2.
func PaperExample() Instance {
	return Instance{
		NumElements: 8,
		Subsets: [][]int{
			{0, 1, 2, 3},
			{2, 3, 4},
			{3, 4, 5},
			{4, 5, 6, 7},
		},
	}
}

// Greedy returns the classical ln(n)-approximate cover: repeatedly take
// the subset covering the most uncovered elements (ties to the lowest
// index).
func Greedy(ins Instance) []int {
	covered := make([]bool, ins.NumElements)
	left := ins.NumElements
	var pick []int
	for left > 0 {
		best, bestGain := -1, 0
		for si, s := range ins.Subsets {
			gain := 0
			for _, e := range s {
				if !covered[e] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = si, gain
			}
		}
		if best < 0 {
			return nil // uncoverable
		}
		pick = append(pick, best)
		for _, e := range ins.Subsets[best] {
			if !covered[e] {
				covered[e] = true
				left--
			}
		}
	}
	sort.Ints(pick)
	return pick
}

// MaxExactSubsets guards the exponential exact solver.
const MaxExactSubsets = 24

// Exact returns a minimum cover by branch-and-bound over subsets
// (greedy incumbent, uncovered-element branching). Exponential;
// guarded by MaxExactSubsets.
func Exact(ins Instance) ([]int, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	if len(ins.Subsets) > MaxExactSubsets {
		return nil, errors.New("setcover: instance too large for exact search")
	}
	bestPick := Greedy(ins)
	if bestPick == nil {
		return nil, errors.New("setcover: uncoverable")
	}
	best := len(bestPick)
	coveredBy := make([][]int, ins.NumElements)
	for si, s := range ins.Subsets {
		for _, e := range s {
			coveredBy[e] = append(coveredBy[e], si)
		}
	}
	count := make([]int, ins.NumElements)
	var cur []int
	var rec func(depth int)
	rec = func(depth int) {
		if depth >= best {
			return
		}
		// Branch on the first uncovered element.
		uncovered := -1
		for e, c := range count {
			if c == 0 {
				uncovered = e
				break
			}
		}
		if uncovered < 0 {
			best = depth
			bestPick = append(bestPick[:0], cur...)
			return
		}
		for _, si := range coveredBy[uncovered] {
			cur = append(cur, si)
			for _, e := range ins.Subsets[si] {
				count[e]++
			}
			rec(depth + 1)
			for _, e := range ins.Subsets[si] {
				count[e]--
			}
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	sort.Ints(bestPick)
	return bestPick, nil
}

// Reduction is the Theorem 1 platform built from a set-cover instance:
// a source, one relay per subset (edges of cost 1/B from the source)
// and one target per element (edges of cost 1/N from each subset
// containing it). A single multicast tree of period <= 1 exists iff the
// instance has a cover of size <= B, and the optimal single-tree
// throughput is exactly B divided by the minimum cover size.
type Reduction struct {
	G        *graph.Graph
	Source   graph.NodeID
	Subsets  []graph.NodeID
	Elements []graph.NodeID
	B        int
}

// Targets returns the element nodes (the multicast target set).
func (r *Reduction) Targets() []graph.NodeID {
	return append([]graph.NodeID(nil), r.Elements...)
}

// Reduce builds the Figure 2 platform for bound B.
func Reduce(ins Instance, B int) (*Reduction, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	if B < 1 || B > len(ins.Subsets) {
		return nil, fmt.Errorf("setcover: bound B=%d outside [1, %d]", B, len(ins.Subsets))
	}
	g := graph.New()
	r := &Reduction{G: g, Source: g.AddNode("Psource"), B: B}
	for i := range ins.Subsets {
		r.Subsets = append(r.Subsets, g.AddNode(fmt.Sprintf("C%d", i+1)))
	}
	for e := 0; e < ins.NumElements; e++ {
		r.Elements = append(r.Elements, g.AddNode(fmt.Sprintf("X%d", e+1)))
	}
	cb := 1 / float64(B)
	cn := 1 / float64(ins.NumElements)
	for i, s := range ins.Subsets {
		g.AddEdge(r.Source, r.Subsets[i], cb)
		for _, e := range s {
			g.AddEdge(r.Subsets[i], r.Elements[e], cn)
		}
	}
	return r, nil
}
