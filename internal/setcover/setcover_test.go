package setcover

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tree"
)

func TestValidate(t *testing.T) {
	if err := PaperExample().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Instance{
		{NumElements: 0, Subsets: [][]int{{0}}},
		{NumElements: 2, Subsets: nil},
		{NumElements: 2, Subsets: [][]int{{}}},
		{NumElements: 2, Subsets: [][]int{{5}}},
		{NumElements: 2, Subsets: [][]int{{0}}}, // element 1 uncoverable
	}
	for i, ins := range bad {
		if err := ins.Validate(); err == nil {
			t.Errorf("case %d: invalid instance accepted", i)
		}
	}
}

func TestGreedyAndExactOnPaperExample(t *testing.T) {
	ins := PaperExample()
	g := Greedy(ins)
	if !ins.Covers(g) {
		t.Fatalf("greedy pick %v is not a cover", g)
	}
	exact, err := Exact(ins)
	if err != nil {
		t.Fatal(err)
	}
	if !ins.Covers(exact) {
		t.Fatalf("exact pick %v is not a cover", exact)
	}
	if len(exact) != 2 {
		t.Fatalf("minimum cover size = %d, want 2", len(exact))
	}
	if len(g) < len(exact) {
		t.Fatalf("greedy %v beat exact %v", g, exact)
	}
}

func TestExactGuards(t *testing.T) {
	ins := Instance{NumElements: 1, Subsets: make([][]int, MaxExactSubsets+1)}
	for i := range ins.Subsets {
		ins.Subsets[i] = []int{0}
	}
	if _, err := Exact(ins); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

func TestReduceShape(t *testing.T) {
	ins := PaperExample()
	r, err := Reduce(ins, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.G.NumNodes() != 1+len(ins.Subsets)+ins.NumElements {
		t.Fatalf("nodes = %d", r.G.NumNodes())
	}
	wantEdges := len(ins.Subsets)
	for _, s := range ins.Subsets {
		wantEdges += len(s)
	}
	if r.G.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", r.G.NumEdges(), wantEdges)
	}
	if _, err := Reduce(ins, 0); err == nil {
		t.Error("B=0 accepted")
	}
	if _, err := Reduce(ins, 5); err == nil {
		t.Error("B>|C| accepted")
	}
}

// TestTheorem1Correspondence checks the reduction's defining property
// on the paper's own example: with B equal to the minimum cover size
// the best single multicast tree reaches period exactly 1 (throughput
// rho = 1), and with B one less it cannot.
func TestTheorem1Correspondence(t *testing.T) {
	ins := PaperExample()
	exact, err := Exact(ins)
	if err != nil {
		t.Fatal(err)
	}
	kStar := len(exact) // 2

	r, err := Reduce(ins, kStar)
	if err != nil {
		t.Fatal(err)
	}
	_, period, err := tree.BestSingleTree(r.G, r.Source, r.Targets())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(period-1) > 1e-9 {
		t.Errorf("B = K*: best single tree period = %v, want 1", period)
	}

	r, err = Reduce(ins, kStar-1)
	if err != nil {
		t.Fatal(err)
	}
	_, period, err = tree.BestSingleTree(r.G, r.Source, r.Targets())
	if err != nil {
		t.Fatal(err)
	}
	if period <= 1+1e-9 {
		t.Errorf("B = K*-1: best single tree period = %v, want > 1", period)
	}
}

// TestTheorem2Correspondence checks the sharper statement used for the
// inapproximability result: the optimal single-tree throughput equals
// B / K*, and (because the source out-port lower-bounds every tree by
// the cover size) even the optimal weighted tree packing cannot beat
// it.
func TestTheorem2Correspondence(t *testing.T) {
	ins := Instance{
		NumElements: 4,
		Subsets:     [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 1, 2}},
	}
	exact, err := Exact(ins)
	if err != nil {
		t.Fatal(err)
	}
	kStar := float64(len(exact)) // {0,1,2} + one containing 3 -> 2
	if kStar != 2 {
		t.Fatalf("unexpected K* = %v", kStar)
	}
	B := 3
	r, err := Reduce(ins, B)
	if err != nil {
		t.Fatal(err)
	}
	_, period, err := tree.BestSingleTree(r.G, r.Source, r.Targets())
	if err != nil {
		t.Fatal(err)
	}
	wantThr := float64(B) / kStar
	if math.Abs(1/period-wantThr) > 1e-9 {
		t.Errorf("single-tree throughput = %v, want B/K* = %v", 1/period, wantThr)
	}
	pk, err := tree.PackOptimal(r.G, r.Source, r.Targets())
	if err != nil {
		t.Fatal(err)
	}
	if pk.Throughput > wantThr+1e-6 {
		t.Errorf("packing throughput %v beats B/K* = %v", pk.Throughput, wantThr)
	}
	if pk.Throughput < wantThr-1e-6 {
		t.Errorf("packing throughput %v below the achievable B/K* = %v", pk.Throughput, wantThr)
	}
}

// Property: greedy always returns a cover; exact is a cover no larger
// than greedy; exact matches brute-force enumeration.
func TestSolversProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		k := 2 + rng.Intn(5)
		ins := Instance{NumElements: n}
		for i := 0; i < k; i++ {
			var s []int
			for e := 0; e < n; e++ {
				if rng.Intn(3) == 0 {
					s = append(s, e)
				}
			}
			if len(s) == 0 {
				s = []int{rng.Intn(n)}
			}
			ins.Subsets = append(ins.Subsets, s)
		}
		if ins.Validate() != nil {
			return true // uncoverable draws are fine to skip
		}
		greedy := Greedy(ins)
		if !ins.Covers(greedy) {
			return false
		}
		exact, err := Exact(ins)
		if err != nil || !ins.Covers(exact) {
			return false
		}
		if len(exact) > len(greedy) {
			return false
		}
		// Brute force over all subset combinations.
		best := k + 1
		for mask := 1; mask < 1<<k; mask++ {
			var pick []int
			for i := 0; i < k; i++ {
				if mask&(1<<i) != 0 {
					pick = append(pick, i)
				}
			}
			if len(pick) < best && ins.Covers(pick) {
				best = len(pick)
			}
		}
		return len(exact) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
