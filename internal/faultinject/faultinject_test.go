package faultinject

import (
	"context"
	"errors"
	"testing"
)

func TestNilByDefault(t *testing.T) {
	Set(nil)
	if err := SolveEnter(context.Background()); err != nil {
		t.Fatalf("SolveEnter with no hooks = %v", err)
	}
	HandlerEnter("POST /v1/plan") // must not panic
	if err := StreamWrite(context.Background()); err != nil {
		t.Fatalf("StreamWrite with no hooks = %v", err)
	}
}

func TestHooksFire(t *testing.T) {
	defer Set(nil)
	boom := errors.New("injected")
	var entered []string
	Set(&Hooks{
		SolveEnter:   func(context.Context) error { return boom },
		HandlerEnter: func(route string) { entered = append(entered, route) },
		StreamWrite:  func(context.Context) error { return boom },
	})
	if err := SolveEnter(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("SolveEnter = %v, want injected error", err)
	}
	HandlerEnter("GET /v1/stats")
	if len(entered) != 1 || entered[0] != "GET /v1/stats" {
		t.Fatalf("HandlerEnter recorded %v", entered)
	}
	if err := StreamWrite(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("StreamWrite = %v, want injected error", err)
	}
}

func TestPartialHooks(t *testing.T) {
	defer Set(nil)
	Set(&Hooks{HandlerEnter: func(string) {}})
	if err := SolveEnter(context.Background()); err != nil {
		t.Fatalf("nil SolveEnter field = %v", err)
	}
	if err := StreamWrite(context.Background()); err != nil {
		t.Fatalf("nil StreamWrite field = %v", err)
	}
}
