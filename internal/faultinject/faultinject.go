// Package faultinject is a compiled-in, nil-by-default fault-injection
// registry for the serving stack. Chaos tests install a Hooks value to
// make specific failure modes happen on demand — a solver that stalls,
// a solve that errors, a handler that panics, a subscriber stream that
// wedges — and the daemon's resilience machinery (deadlines, panic
// recovery, shedding) is then exercised against real faults instead of
// mocks.
//
// Production pays one atomic pointer load per hook site: with no hooks
// installed (the default), every site is a nil check. The registry is
// process-global because the faults it models are process-global —
// injecting them through every constructor would thread test plumbing
// through the whole stack for no production benefit.
package faultinject

import (
	"context"
	"sync/atomic"
)

// Hooks is one set of injected faults. Any field may be nil; a nil
// field injects nothing at that site. Hook functions run on the
// serving goroutine that hit the site and must be safe for concurrent
// calls.
type Hooks struct {
	// SolveEnter runs at the start of every shard compute, before the
	// evaluator solves. Returning a non-nil error makes the compute fail
	// with it; blocking (e.g. until ctx is done) models a stalled
	// solver. The context is the request's, so a stall hook can honour
	// cancellation.
	SolveEnter func(ctx context.Context) error

	// HandlerEnter runs when a handler for the given route pattern
	// (e.g. "POST /v1/plan") begins, inside the recovery middleware.
	// Panicking here models a handler bug.
	HandlerEnter func(route string)

	// StreamWrite runs before every subscribe/job stream line is
	// written. Blocking models a slow or wedged subscriber; returning a
	// non-nil error aborts the stream.
	StreamWrite func(ctx context.Context) error
}

var active atomic.Pointer[Hooks]

// Set installs hooks for the whole process; Set(nil) removes them.
// Tests that install hooks must restore the previous value (usually
// via defer faultinject.Set(nil)) and must not run in parallel with
// other hook-installing tests.
func Set(h *Hooks) { active.Store(h) }

// SolveEnter invokes the SolveEnter hook if one is installed.
func SolveEnter(ctx context.Context) error {
	if h := active.Load(); h != nil && h.SolveEnter != nil {
		return h.SolveEnter(ctx)
	}
	return nil
}

// HandlerEnter invokes the HandlerEnter hook if one is installed.
func HandlerEnter(route string) {
	if h := active.Load(); h != nil && h.HandlerEnter != nil {
		h.HandlerEnter(route)
	}
}

// StreamWrite invokes the StreamWrite hook if one is installed.
func StreamWrite(ctx context.Context) error {
	if h := active.Load(); h != nil && h.StreamWrite != nil {
		return h.StreamWrite(ctx)
	}
	return nil
}
