// Package heur implements the paper's polynomial-time heuristics for
// the Series-of-Multicasts problem (Sections 5.2 and 6):
//
//   - MCPH, the tree heuristic adapted from the Minimum Cost Path
//     Heuristic for Steiner trees, rewritten for the one-port metric
//     (the send time of a node is the sum of its outgoing tree edges);
//   - REDUCED BROADCAST, which starts from Broadcast-EB on the whole
//     platform and greedily removes the nodes contributing least to the
//     targets;
//   - AUGMENTED MULTICAST, which grows the target set with the nodes
//     contributing most in the Multicast-LB solution until broadcasting
//     over the grown set beats the current best;
//   - AUGMENTED SOURCES (Multisource MC), which promotes the most
//     loaded nodes of the MulticastMultiSource-UB solution to secondary
//     sources while this improves the period.
//
// All heuristics return a period in time-per-multicast; steady-state
// throughput is the reciprocal.
package heur

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/steady"
	"repro/internal/tree"
)

// improveTol is the relative threshold below which two LP periods are
// considered equal (floating-point guard for the paper's exact "<="
// acceptance tests).
const improveTol = 1e-6

// Result is the outcome of a heuristic run.
type Result struct {
	Name   string
	Period float64
	// Tree is the multicast tree built by tree-based heuristics (MCPH);
	// nil for the LP-based heuristics, whose schedules are flow-shaped.
	Tree *tree.Tree
	// Sources lists the promoted secondary sources (AUGMENTED SOURCES),
	// excluding the primary source. The order is the (deterministic)
	// promotion order.
	Sources []graph.NodeID
	// Kept lists the platform nodes retained (REDUCED BROADCAST) or
	// included (AUGMENTED MULTICAST) in the final broadcast platform,
	// in increasing node-ID order.
	Kept []graph.NodeID
	// Evals counts the LP/bound evaluations performed (including those
	// answered by an evaluator's cache).
	Evals int
	// Stats carries the LP-solver statistics of the run's evaluator.
	Stats steady.SolveStats
}

// Throughput returns 1/Period (0 when the heuristic failed to find a
// finite period).
func (r *Result) Throughput() float64 {
	if r == nil || r.Period <= 0 || math.IsInf(r.Period, 1) {
		return 0
	}
	return 1 / r.Period
}

// A Heuristic is a named algorithm for the Series problem.
type Heuristic struct {
	Name string
	Run  func(steady.Problem) (*Result, error)
}

// All returns the paper's heuristic set in the order of Figure 11's
// legend (MCPH, Augm. MC, Red. BC, Multisource MC). Every run uses a
// private bound evaluator; use AllWith to share one across heuristics.
func All() []Heuristic { return AllWith(nil) }

// AllWith returns the paper's heuristic set bound to a shared
// steady.Evaluator, so the heuristics of one experiment cell reuse
// each other's cached bounds, pooled cuts and LP workspace. A nil
// evaluator gives each run a private one. The evaluator (and hence the
// returned heuristics) must not be shared between goroutines.
func AllWith(ev *steady.Evaluator) []Heuristic {
	bind := func(f func(*steady.Evaluator, steady.Problem) (*Result, error)) func(steady.Problem) (*Result, error) {
		return func(p steady.Problem) (*Result, error) {
			e := ev
			if e == nil {
				e = steady.NewEvaluator()
			}
			return f(e, p)
		}
	}
	return []Heuristic{
		{Name: "MCPH", Run: MCPH},
		{Name: "Augm. MC", Run: bind(augmentedMulticast)},
		{Name: "Red. BC", Run: bind(reducedBroadcast)},
		{Name: "Multisource MC", Run: bind(augmentedSources)},
	}
}

// MCPH is the tree-based heuristic of Figure 9: grow a multicast tree
// from the source, repeatedly attaching the target whose bottleneck
// path from the current tree is cheapest under working edge costs that
// account for the one-port send occupation already committed at every
// node (adding a branch at node i makes all further branches from i
// more expensive; edges already in the tree are free).
func MCPH(p steady.Problem) (*Result, error) {
	return mcph(p, true)
}

// MCPHPlain is the ablation of MCPH without the paper's one-port cost
// update (Figure 9 lines 11-13): committed edges still become free, but
// branching at an already-busy sender costs nothing extra — the
// classical Steiner-style Minimum Cost Path Heuristic under the
// bottleneck metric. Comparing it against MCPH isolates the value of
// the paper's metric adaptation.
func MCPHPlain(p steady.Problem) (*Result, error) {
	res, err := mcph(p, false)
	if err != nil {
		return nil, err
	}
	res.Name = "MCPH-plain"
	return res, nil
}

func mcph(p steady.Problem, portAwareCosts bool) (*Result, error) {
	g := p.G
	if !g.ReachesAll(p.Source, p.Targets) {
		return nil, errors.New("heur: MCPH: some target unreachable")
	}
	cost := make([]float64, g.NumEdges())
	for _, id := range g.ActiveEdges() {
		cost[id] = g.Edge(id).Cost
	}
	w := func(e graph.Edge) float64 { return cost[e.ID] }

	inTree := map[graph.NodeID]bool{p.Source: true}
	treeNodes := []graph.NodeID{p.Source}
	var treeEdges []int
	remaining := make(map[graph.NodeID]bool, len(p.Targets))
	for _, t := range p.Targets {
		remaining[t] = true
	}

	for len(remaining) > 0 {
		dist, parent := g.MultiSourceBottleneck(treeNodes, w)
		best := graph.None
		for t := range remaining {
			if best == graph.None || dist[t] < dist[best] || (dist[t] == dist[best] && t < best) {
				best = t
			}
		}
		if math.IsInf(dist[best], 1) {
			return nil, fmt.Errorf("heur: MCPH: target %s became unreachable", g.Name(best))
		}
		path := g.WalkBack(parent, best)
		for _, id := range path {
			e := g.Edge(id)
			treeEdges = append(treeEdges, id)
			if !inTree[e.To] {
				inTree[e.To] = true
				treeNodes = append(treeNodes, e.To)
			}
		}
		delete(remaining, best)
		// Cost update (Figure 9, lines 11-13): committing edge (i,j)
		// adds its send time to every other out-edge of i, and the edge
		// itself becomes free for later targets.
		for _, id := range path {
			e := g.Edge(id)
			delta := cost[id]
			if portAwareCosts {
				for _, out := range g.OutEdges(e.From, nil) {
					cost[out] += delta
				}
			}
			cost[id] = 0
		}
	}

	tr := &tree.Tree{Root: p.Source, Edges: treeEdges}
	if err := tr.Validate(g, p.Source, p.Targets); err != nil {
		return nil, fmt.Errorf("heur: MCPH built an invalid tree: %w", err)
	}
	return &Result{Name: "MCPH", Period: tr.Period(g), Tree: tr}, nil
}

// ReducedBroadcast is the heuristic of Figure 6: broadcast to the whole
// platform, then repeatedly drop the non-target node with the smallest
// per-target traffic in the current Broadcast-EB solution, as long as
// the broadcast period does not degrade.
func ReducedBroadcast(p steady.Problem) (*Result, error) {
	return ReducedBroadcastWith(steady.NewEvaluator(), p)
}

// ReducedBroadcastWith is ReducedBroadcast on a caller-supplied
// evaluator, whose cache and cut pools make the drop/re-broadcast
// inner loop incremental.
func ReducedBroadcastWith(ev *steady.Evaluator, p steady.Problem) (*Result, error) {
	return reducedBroadcast(ev, p)
}

func reducedBroadcast(ev *steady.Evaluator, p steady.Problem) (*Result, error) {
	g := p.G.Clone()
	res := &Result{Name: "Red. BC"}
	before := ev.Stats()
	best, err := ev.BroadcastEB(g, p.Source)
	res.Evals++
	if err != nil {
		return nil, err
	}
	isFixed := map[graph.NodeID]bool{p.Source: true}
	for _, t := range p.Targets {
		isFixed[t] = true
	}
	for improved := true; improved; {
		improved = false
		order := scoreCandidates(ev, g, best, p, candidatesNotFixed(g, isFixed), false)
		for _, m := range order {
			// Never disconnect the multicast targets: with an infinite
			// incumbent (stray unreachable nodes) any removal would
			// otherwise "not degrade" the period.
			g.Deactivate(m)
			reaches := g.ReachesAll(p.Source, p.Targets)
			g.Activate(m)
			if !reaches {
				continue
			}
			trial, err := ev.DropNodeBroadcast(g, p.Source, m)
			res.Evals++
			if err != nil {
				return nil, err
			}
			if trial.Period <= best.Period+improveTol*(1+best.Period) {
				g.Deactivate(m) // commit the trial
				best = trial
				improved = true
				break
			}
		}
	}
	res.Period = best.Period
	res.Kept = keptNodes(g)
	res.Stats = ev.Stats().Delta(before)
	return res, nil
}

// AugmentedMulticast is the heuristic of Figure 7: start from a
// broadcast over just {source} + targets, then grow that platform with
// the nodes carrying the most per-target traffic in the full-platform
// Multicast-LB solution, while this does not degrade the period.
func AugmentedMulticast(p steady.Problem) (*Result, error) {
	return AugmentedMulticastWith(steady.NewEvaluator(), p)
}

// AugmentedMulticastWith is AugmentedMulticast on a caller-supplied
// evaluator, whose cache and cut pools make the add/re-broadcast inner
// loop incremental.
func AugmentedMulticastWith(ev *steady.Evaluator, p steady.Problem) (*Result, error) {
	return augmentedMulticast(ev, p)
}

func augmentedMulticast(ev *steady.Evaluator, p steady.Problem) (*Result, error) {
	full := p.G
	res := &Result{Name: "Augm. MC"}
	before := ev.Stats()
	lb, err := ev.MulticastLB(p)
	res.Evals++
	if err != nil {
		return nil, err
	}
	inSet := map[graph.NodeID]bool{p.Source: true}
	kept := []graph.NodeID{p.Source}
	for _, t := range p.Targets {
		inSet[t] = true
		kept = append(kept, t)
	}
	order := scoreCandidates(ev, full, lb, p, candidatesNotFixed(full, inSet), true)

	g := full.Clone()
	g.Restrict(kept)
	best, err := ev.BroadcastEB(g, p.Source)
	res.Evals++
	if err != nil {
		return nil, err
	}
	for improved := true; improved; {
		improved = false
		for _, m := range order {
			if inSet[m] {
				continue
			}
			trial, err := ev.AddNodeBroadcast(g, p.Source, m)
			res.Evals++
			if err != nil {
				return nil, err
			}
			if trial.Period <= best.Period+improveTol*(1+best.Period) {
				g.Activate(m) // commit the trial
				best = trial
				inSet[m] = true
				improved = true
				break
			}
		}
	}
	res.Period = best.Period
	res.Kept = keptNodes(g)
	res.Stats = ev.Stats().Delta(before)
	return res, nil
}

// AugmentedSources is the heuristic of Figure 8 (Multisource MC in the
// plots): repeatedly promote the node with the largest aggregate
// traffic in the current MulticastMultiSource-UB solution to a
// secondary source, while this does not degrade the period.
func AugmentedSources(p steady.Problem) (*Result, error) {
	return AugmentedSourcesWith(steady.NewEvaluator(), p)
}

// AugmentedSourcesWith is AugmentedSources on a caller-supplied
// evaluator, whose path-column pool makes each promotion trial an
// incremental re-solve of the multisource master.
func AugmentedSourcesWith(ev *steady.Evaluator, p steady.Problem) (*Result, error) {
	return augmentedSources(ev, p)
}

func augmentedSources(ev *steady.Evaluator, p steady.Problem) (*Result, error) {
	g := p.G
	res := &Result{Name: "Multisource MC"}
	before := ev.Stats()
	var sources []graph.NodeID
	best, err := ev.MultiSourceUB(p, sources)
	res.Evals++
	if err != nil {
		return nil, err
	}
	isSource := map[graph.NodeID]bool{p.Source: true}
	for improved := true; improved; {
		improved = false
		if best.Infeasible() {
			break
		}
		type scored struct {
			node  graph.NodeID
			value float64
		}
		var order []scored
		for _, m := range g.ActiveNodes() {
			if !isSource[m] {
				order = append(order, scored{m, steady.AggregateInflowAt(g, best.EdgeLoad, m)})
			}
		}
		sort.Slice(order, func(i, j int) bool {
			if order[i].value != order[j].value {
				return order[i].value > order[j].value
			}
			return order[i].node < order[j].node
		})
		for _, cand := range order {
			trial, err := ev.PromoteSource(p, sources, cand.node)
			res.Evals++
			if err != nil {
				return nil, err
			}
			// The paper accepts "<=", which is harmless in exact
			// arithmetic; with floating-point LP solutions an equality
			// acceptance promotes one useless source per round on pure
			// solver noise, so we require a real improvement.
			if trial.Period < best.Period-improveTol*(1+best.Period) {
				best = trial
				sources = append(sources, cand.node)
				isSource[cand.node] = true
				improved = true
				break
			}
		}
	}
	res.Period = best.Period
	res.Sources = sources
	res.Stats = ev.Stats().Delta(before)
	return res, nil
}

// keptNodes returns the active node set in increasing node-ID order
// (ActiveNodes already scans in ID order; the sort pins the contract
// for Result.Kept regardless of how the platform was built).
func keptNodes(g *graph.Graph) []graph.NodeID {
	kept := g.ActiveNodes()
	sort.Slice(kept, func(i, j int) bool { return kept[i] < kept[j] })
	return kept
}

// candidatesNotFixed returns the active nodes outside the fixed set.
func candidatesNotFixed(g *graph.Graph, fixed map[graph.NodeID]bool) []graph.NodeID {
	var out []graph.NodeID
	for _, v := range g.ActiveNodes() {
		if !fixed[v] {
			out = append(out, v)
		}
	}
	return out
}

// scoreCandidates orders candidate nodes by their per-target traffic
// sum_{i in Ptarget} sum_{j in N^in(m)} x^{j,m}_i in the given bound's
// solution, recovering the per-target flows from the load profile
// (through the evaluator's pooled flow solver, so repeated scoring
// passes stop rebuilding a residual network per target). Ascending
// order when desc is false (REDUCED BROADCAST), descending otherwise
// (AUGMENTED MULTICAST).
func scoreCandidates(ev *steady.Evaluator, g *graph.Graph, b *steady.Bound, p steady.Problem, cands []graph.NodeID, desc bool) []graph.NodeID {
	if b.Infeasible() || len(cands) == 0 {
		return cands
	}
	flows := ev.RecoverUnitFlows(g, b.EdgeLoad, p.Source, p.Targets)
	score := make(map[graph.NodeID]float64, len(cands))
	for _, m := range cands {
		score[m] = steady.InflowAt(g, flows, m)
	}
	sort.Slice(cands, func(i, j int) bool {
		si, sj := score[cands[i]], score[cands[j]]
		if si != sj {
			if desc {
				return si > sj
			}
			return si < sj
		}
		return cands[i] < cands[j]
	})
	return cands
}
