package heur

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/steady"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func mustProblem(t *testing.T, g *graph.Graph, s graph.NodeID, targets []graph.NodeID) steady.Problem {
	t.Helper()
	p, err := steady.NewProblem(g, s, targets)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// relay5 is the Figure 5 platform.
func relay5(t *testing.T) steady.Problem {
	t.Helper()
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("A")
	ts := g.AddNodes("t", 3)
	g.AddEdge(s, a, 1)
	for _, v := range ts {
		g.AddEdge(a, v, 1.0/3)
	}
	return mustProblem(t, g, s, ts)
}

func TestMCPHRelay(t *testing.T) {
	res, err := MCPH(relay5(t))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Period, 1, 1e-9) {
		t.Fatalf("period = %v, want 1", res.Period)
	}
	if res.Tree == nil || len(res.Tree.Edges) != 4 {
		t.Fatalf("tree = %+v", res.Tree)
	}
	if !approx(res.Throughput(), 1, 1e-9) {
		t.Fatalf("throughput = %v", res.Throughput())
	}
}

func TestMCPHCostUpdateMatters(t *testing.T) {
	// Targets a and b. Direct stars S->a, S->b would load S's out-port
	// to 2; after attaching a, the update rule makes S->b cost 2, so
	// the relay route a->b (1.2) is preferred: period 1.2.
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(s, a, 1)
	g.AddEdge(s, b, 1)
	g.AddEdge(a, b, 1.2)
	res, err := MCPH(mustProblem(t, g, s, []graph.NodeID{a, b}))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Period, 1.2, 1e-9) {
		t.Fatalf("period = %v, want 1.2 (relay route)", res.Period)
	}
}

func TestMCPHThroughTarget(t *testing.T) {
	// The cheapest path to b passes through target a: both targets are
	// covered by one path, and the second selection costs nothing.
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(s, a, 1)
	g.AddEdge(a, b, 1)
	res, err := MCPH(mustProblem(t, g, s, []graph.NodeID{a, b}))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Period, 1, 1e-9) {
		t.Fatalf("period = %v, want 1", res.Period)
	}
}

func TestMCPHUnreachable(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	x := g.AddNode("x")
	g.AddEdge(x, s, 1)
	if _, err := MCPH(mustProblem(t, g, s, []graph.NodeID{x})); err == nil {
		t.Fatal("expected error")
	}
}

func TestReducedBroadcastDropsSlowRelay(t *testing.T) {
	// Broadcasting to everyone forces the slow relay r (period >= 5);
	// the target only needs the direct edge (period 1).
	g := graph.New()
	s := g.AddNode("S")
	tgt := g.AddNode("t")
	r := g.AddNode("r")
	g.AddEdge(s, tgt, 1)
	g.AddEdge(s, r, 5)
	g.AddEdge(r, tgt, 5)
	res, err := ReducedBroadcast(mustProblem(t, g, s, []graph.NodeID{tgt}))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Period, 1, 1e-6) {
		t.Fatalf("period = %v, want 1", res.Period)
	}
	for _, v := range res.Kept {
		if v == r {
			t.Fatal("slow relay was kept")
		}
	}
}

func TestReducedBroadcastKeepsNeededRelay(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	r := g.AddNode("r")
	tgt := g.AddNode("t")
	g.AddEdge(s, r, 1)
	g.AddEdge(r, tgt, 1)
	res, err := ReducedBroadcast(mustProblem(t, g, s, []graph.NodeID{tgt}))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Period, 1, 1e-6) {
		t.Fatalf("period = %v, want 1", res.Period)
	}
	if len(res.Kept) != 3 {
		t.Fatalf("kept = %v, want all three nodes", res.Kept)
	}
}

func TestAugmentedMulticastAddsRelay(t *testing.T) {
	// The target is only reachable through r, so the initial broadcast
	// over {S, t} is infeasible and the heuristic must pull r in.
	g := graph.New()
	s := g.AddNode("S")
	r := g.AddNode("r")
	tgt := g.AddNode("t")
	g.AddEdge(s, r, 1)
	g.AddEdge(r, tgt, 1)
	res, err := AugmentedMulticast(mustProblem(t, g, s, []graph.NodeID{tgt}))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Period, 1, 1e-6) {
		t.Fatalf("period = %v, want 1", res.Period)
	}
	if len(res.Kept) != 3 {
		t.Fatalf("kept = %v", res.Kept)
	}
}

func TestAugmentedMulticastSkipsUselessNodes(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	tgt := g.AddNode("t")
	slow := g.AddNode("slow")
	g.AddEdge(s, tgt, 1)
	g.AddEdge(s, slow, 9)
	g.AddEdge(slow, tgt, 9)
	res, err := AugmentedMulticast(mustProblem(t, g, s, []graph.NodeID{tgt}))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Period, 1, 1e-6) {
		t.Fatalf("period = %v, want 1", res.Period)
	}
}

func TestAugmentedSourcesRelay(t *testing.T) {
	res, err := AugmentedSources(relay5(t))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Period, 1, 1e-6) {
		t.Fatalf("period = %v, want 1 (scatter alone gives 3)", res.Period)
	}
	if len(res.Sources) == 0 {
		t.Fatal("no sources promoted")
	}
}

func TestAllRegistry(t *testing.T) {
	hs := All()
	if len(hs) != 4 {
		t.Fatalf("registry has %d heuristics", len(hs))
	}
	p := relay5(t)
	for _, h := range hs {
		res, err := h.Run(p)
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		if math.IsInf(res.Period, 1) || res.Period <= 0 {
			t.Errorf("%s: period = %v", h.Name, res.Period)
		}
	}
}

// Property: on random connected platforms every heuristic produces a
// finite period no better than the Multicast-LB lower bound.
func TestHeuristicsDominatedByLB(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		n := 4 + rng.Intn(5)
		ids := g.AddNodes("n", n)
		// Random spanning tree first for connectivity, then extras.
		for i := 1; i < n; i++ {
			g.AddLink(ids[rng.Intn(i)], ids[i], 0.25+rng.Float64())
		}
		for i := 0; i < n; i++ {
			a := ids[rng.Intn(n)]
			b := ids[rng.Intn(n)]
			if a != b {
				if _, dup := g.FindEdge(a, b); !dup {
					g.AddEdge(a, b, 0.25+rng.Float64())
				}
			}
		}
		src := ids[0]
		var targets []graph.NodeID
		for _, v := range ids[1:] {
			if rng.Intn(2) == 0 {
				targets = append(targets, v)
			}
		}
		if len(targets) == 0 {
			targets = ids[1:2]
		}
		p, err := steady.NewProblem(g, src, targets)
		if err != nil {
			return false
		}
		lb, err := steady.MulticastLB(p)
		if err != nil {
			t.Logf("seed %d: LB: %v", seed, err)
			return false
		}
		for _, h := range All() {
			res, err := h.Run(p)
			if err != nil {
				t.Logf("seed %d: %s: %v", seed, h.Name, err)
				return false
			}
			if math.IsInf(res.Period, 1) {
				t.Logf("seed %d: %s: infinite period on a connected platform", seed, h.Name)
				return false
			}
			if res.Period < lb.Period-1e-6 {
				t.Logf("seed %d: %s period %v below LB %v", seed, h.Name, res.Period, lb.Period)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMCPHPlainAblation(t *testing.T) {
	// On the platform where the cost update matters, the plain variant
	// keeps both direct star edges (period 2) while full MCPH reroutes
	// through the relay (period 1.2).
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(s, a, 1)
	g.AddEdge(s, b, 1)
	g.AddEdge(a, b, 1.2)
	p := mustProblem(t, g, s, []graph.NodeID{a, b})
	plain, err := MCPHPlain(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(plain.Period, 2, 1e-9) {
		t.Fatalf("plain period = %v, want 2 (star)", plain.Period)
	}
	full, err := MCPH(p)
	if err != nil {
		t.Fatal(err)
	}
	if full.Period >= plain.Period {
		t.Fatalf("cost update should win: full %v vs plain %v", full.Period, plain.Period)
	}
	if plain.Name != "MCPH-plain" {
		t.Fatalf("name = %q", plain.Name)
	}
}
