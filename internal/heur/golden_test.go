package heur

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/platforms"
	"repro/internal/steady"
)

// TestHeuristicsGoldenFigure4 pins the full heuristic registry output
// on the paper's Figure 4 gadget: names, periods, and the
// deterministically-ordered Kept/Sources sets. This is the regression
// baseline for future solver or heuristic changes — all four
// heuristics reach the exact optimum (period 2, between Multicast-LB
// at 1.5 and the scatter bound at 3), REDUCED BROADCAST and AUGMENTED
// MULTICAST both settle on the platform without the dead relay C3, and
// AUGMENTED SOURCES promotes exactly C1.
func TestHeuristicsGoldenFigure4(t *testing.T) {
	pl := platforms.Figure4()
	p := pl.Problem()
	c1, ok := pl.G.NodeByName("C1")
	if !ok {
		t.Fatal("Figure 4 platform has no node C1")
	}
	c3, ok := pl.G.NodeByName("C3")
	if !ok {
		t.Fatal("Figure 4 platform has no node C3")
	}
	var keptWant []graph.NodeID
	for v := 0; v < pl.G.NumNodes(); v++ {
		if graph.NodeID(v) != c3 {
			keptWant = append(keptWant, graph.NodeID(v))
		}
	}

	want := []struct {
		name    string
		period  float64
		kept    []graph.NodeID // nil = not applicable
		sources []graph.NodeID
		tree    bool
	}{
		{name: "MCPH", period: 2, tree: true},
		{name: "Augm. MC", period: 2, kept: keptWant},
		{name: "Red. BC", period: 2, kept: keptWant},
		{name: "Multisource MC", period: 2, sources: []graph.NodeID{c1}},
	}

	hs := All()
	if len(hs) != len(want) {
		t.Fatalf("registry has %d heuristics, want %d", len(hs), len(want))
	}
	for i, h := range hs {
		w := want[i]
		if h.Name != w.name {
			t.Errorf("heuristic %d name = %q, want %q", i, h.Name, w.name)
			continue
		}
		res, err := h.Run(p)
		if err != nil {
			t.Errorf("%s: %v", h.Name, err)
			continue
		}
		if res.Name != w.name {
			t.Errorf("%s: result name = %q", h.Name, res.Name)
		}
		if !approx(res.Period, w.period, 1e-6) {
			t.Errorf("%s: period = %v, want %v", h.Name, res.Period, w.period)
		}
		if w.kept != nil && !reflect.DeepEqual(res.Kept, w.kept) {
			t.Errorf("%s: kept = %v, want %v", h.Name, res.Kept, w.kept)
		}
		if w.sources != nil && !reflect.DeepEqual(res.Sources, w.sources) {
			t.Errorf("%s: sources = %v, want %v", h.Name, res.Sources, w.sources)
		}
		if w.tree != (res.Tree != nil) {
			t.Errorf("%s: tree presence = %v, want %v", h.Name, res.Tree != nil, w.tree)
		}
	}
}

// TestHeuristicsGoldenStableAcrossSharedEvaluator re-runs the registry
// on one shared evaluator and checks the results are identical to the
// private-evaluator runs — caching and pooled warm starts must never
// change heuristic output.
func TestHeuristicsGoldenStableAcrossSharedEvaluator(t *testing.T) {
	pl := platforms.Figure4()
	p := pl.Problem()
	ev := steady.NewEvaluator()
	private := All()
	shared := AllWith(ev)
	for i := range private {
		a, err := private[i].Run(p)
		if err != nil {
			t.Fatalf("%s (private): %v", private[i].Name, err)
		}
		b, err := shared[i].Run(p)
		if err != nil {
			t.Fatalf("%s (shared): %v", shared[i].Name, err)
		}
		if !approx(a.Period, b.Period, 1e-9) {
			t.Errorf("%s: private period %v vs shared %v", private[i].Name, a.Period, b.Period)
		}
		if !reflect.DeepEqual(a.Kept, b.Kept) || !reflect.DeepEqual(a.Sources, b.Sources) {
			t.Errorf("%s: private kept/sources %v/%v vs shared %v/%v",
				private[i].Name, a.Kept, a.Sources, b.Kept, b.Sources)
		}
	}
	st := ev.Stats()
	if st.CacheHits == 0 {
		t.Errorf("shared evaluator recorded no cache hits: %+v", st)
	}
}
