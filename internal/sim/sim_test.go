package sim

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/platforms"
	"repro/internal/tree"
)

func TestRunChain(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	b := g.AddNode("b")
	e1 := g.AddEdge(s, a, 1)
	e2 := g.AddEdge(a, b, 1)
	tr := &tree.Tree{Root: s, Edges: []int{e1, e2}}
	rep, err := Run(g, s, []graph.NodeID{a, b}, []tree.WeightedTree{{Tree: tr, Rate: 1}}, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Fully pipelined chain: one multicast per time unit in steady state.
	if math.Abs(rep.Throughput-1) > 0.05 {
		t.Fatalf("throughput = %v, want ~1", rep.Throughput)
	}
	if rep.Transfers != 2*64 {
		t.Fatalf("transfers = %d, want 128", rep.Transfers)
	}
	if rep.Makespan < 65 || rep.Makespan > 67 {
		t.Fatalf("makespan = %v, want ~66", rep.Makespan)
	}
}

func TestRunStarSerialisesSends(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	ts := g.AddNodes("t", 3)
	var edges []int
	for _, v := range ts {
		edges = append(edges, g.AddEdge(s, v, 1))
	}
	tr := &tree.Tree{Root: s, Edges: edges}
	rep, err := Run(g, s, ts, []tree.WeightedTree{{Tree: tr, Rate: 1.0 / 3}}, 48)
	if err != nil {
		t.Fatal(err)
	}
	// The source's out-port serialises three unit sends per message.
	if math.Abs(rep.Throughput-1.0/3) > 0.02 {
		t.Fatalf("throughput = %v, want ~1/3", rep.Throughput)
	}
}

// TestRunFigure1 drives the paper's two rate-1/2 trees and checks that
// the simulated one-port execution sustains (close to) the optimal
// throughput of one multicast per time unit that the static analysis
// promises.
func TestRunFigure1(t *testing.T) {
	pl, treeEdges := platforms.Figure1Trees()
	trees := []tree.WeightedTree{
		{Tree: &tree.Tree{Root: pl.Source, Edges: treeEdges[0]}, Rate: 0.5},
		{Tree: &tree.Tree{Root: pl.Source, Edges: treeEdges[1]}, Rate: 0.5},
	}
	rep, err := Run(pl.G, pl.Source, pl.Targets, trees, 160)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput < 0.9 || rep.Throughput > 1.05 {
		t.Fatalf("simulated throughput = %v, want ~1 (greedy may lose a few %%)", rep.Throughput)
	}
}

func TestRunValidation(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	e := g.AddEdge(s, a, 1)
	tr := &tree.Tree{Root: s, Edges: []int{e}}
	if _, err := Run(g, s, []graph.NodeID{a}, []tree.WeightedTree{{Tree: tr, Rate: 1}}, 0); err == nil {
		t.Error("zero messages accepted")
	}
	if _, err := Run(g, s, []graph.NodeID{a}, []tree.WeightedTree{{Tree: tr, Rate: -1}}, 4); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := Run(g, s, []graph.NodeID{a}, nil, 4); err == nil {
		t.Error("empty tree set accepted")
	}
	bad := &tree.Tree{Root: s, Edges: nil} // does not cover the target
	if _, err := Run(g, s, []graph.NodeID{a}, []tree.WeightedTree{{Tree: bad, Rate: 1}}, 4); err == nil {
		t.Error("non-covering tree accepted")
	}
}

func TestRunSplitsLoadAcrossTrees(t *testing.T) {
	// Two disjoint unit-cost routes to the same target; with rate 1/2
	// each, messages alternate and sustain throughput ~1.
	g := graph.New()
	s := g.AddNode("S")
	r1 := g.AddNode("r1")
	r2 := g.AddNode("r2")
	x := g.AddNode("x")
	t1 := &tree.Tree{Root: s, Edges: []int{g.AddEdge(s, r1, 1), g.AddEdge(r1, x, 1)}}
	t2 := &tree.Tree{Root: s, Edges: []int{g.AddEdge(s, r2, 1), g.AddEdge(r2, x, 1)}}
	rep, err := Run(g, s, []graph.NodeID{x}, []tree.WeightedTree{
		{Tree: t1, Rate: 0.5}, {Tree: t2, Rate: 0.5},
	}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput < 0.9 {
		t.Fatalf("throughput = %v, want ~1", rep.Throughput)
	}
}
