package sim

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/platforms"
	"repro/internal/tiers"
	"repro/internal/tree"
)

// The simulator is the end-to-end check on the analytic machinery: the
// optimal weighted tree packing of Theorem 4 claims a steady-state
// throughput, and the discrete-event one-port execution must actually
// sustain (close to) it. Greedy earliest-start list scheduling is not
// the paper's asymptotically optimal periodic schedule, so a small
// loss is tolerated; a large gap would mean the packing's rates or the
// simulator's port accounting are wrong.

// checkSustains runs count messages through the packing's trees and
// compares the sustained throughput against the analytic rate.
func checkSustains(t *testing.T, g *graph.Graph, source graph.NodeID, targets []graph.NodeID, pk *tree.Packing, count int) {
	t.Helper()
	rep, err := Run(g, source, targets, pk.Trees, count)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput < 0.9*pk.Throughput {
		t.Errorf("simulated throughput %v sustains only %.1f%% of the analytic packing rate %v",
			rep.Throughput, 100*rep.Throughput/pk.Throughput, pk.Throughput)
	}
	if rep.Throughput > 1.05*pk.Throughput {
		t.Errorf("simulated throughput %v exceeds the analytic optimum %v — port accounting is leaking capacity",
			rep.Throughput, pk.Throughput)
	}
}

func TestSimSustainsOptimalPackingFigure1(t *testing.T) {
	pl := platforms.Figure1()
	pk, err := tree.PackOptimal(pl.G, pl.Source, pl.Targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(pk.Trees) == 0 {
		t.Fatal("optimal packing has no trees")
	}
	checkSustains(t, pl.G, pl.Source, pl.Targets, pk, 200)
}

func TestSimSustainsOptimalPackingTiers(t *testing.T) {
	if testing.Short() {
		t.Skip("tree-packing LP on a generated platform is slow")
	}
	pl, err := tiers.Generate(tiers.Small(7))
	if err != nil {
		t.Fatal(err)
	}
	// A handful of LAN hosts keeps the exponential pricing oracle
	// tractable while still exercising WAN/MAN relaying.
	targets := pl.LAN[:3]
	pk, err := tree.PackOptimal(pl.G, pl.Source, targets)
	if err != nil {
		t.Fatal(err)
	}
	if pk.Throughput <= 0 {
		t.Fatalf("packing throughput = %v", pk.Throughput)
	}
	checkSustains(t, pl.G, pl.Source, targets, pk, 300)
}
