// Package sim is a discrete-event simulator of the paper's
// bidirectional one-port communication model. It executes a series of
// multicasts routed through a set of weighted multicast trees with
// store-and-forward pipelining and greedy earliest-start list
// scheduling, and measures the steady-state throughput actually
// sustained — an end-to-end check that the analytically-claimed
// periods of heuristic solutions are realisable.
package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/tree"
)

// Report summarises a simulation run.
type Report struct {
	// Messages is the number of multicast instances injected.
	Messages int
	// Makespan is the completion time of the last delivery.
	Makespan float64
	// Throughput is the sustained steady-state rate, measured between
	// the 25% and 75% completion quantiles to exclude ramp-up and
	// drain-out.
	Throughput float64
	// Transfers counts individual edge transmissions executed.
	Transfers int
	// Completions holds the completion time of each message in
	// injection order.
	Completions []float64
}

// Run injects messages multicast instances at the aggregate nominal
// rate of the weighted trees (message i enters the source at time
// i/sumRates), routes each instance through one tree chosen by
// largest-remainder proportional assignment, and executes all edge
// transfers greedily under the one-port model: a transfer starts as
// soon as its data has arrived at the tail and both ports are free.
func Run(g *graph.Graph, source graph.NodeID, targets []graph.NodeID, trees []tree.WeightedTree, messages int) (*Report, error) {
	if messages <= 0 {
		return nil, errors.New("sim: need at least one message")
	}
	total := 0.0
	for _, wt := range trees {
		if wt.Rate <= 0 {
			return nil, fmt.Errorf("sim: non-positive rate %v", wt.Rate)
		}
		if err := wt.Tree.Validate(g, source, targets); err != nil {
			return nil, fmt.Errorf("sim: tree invalid: %w", err)
		}
		total += wt.Rate
	}
	if total <= 0 {
		return nil, errors.New("sim: no trees")
	}

	// Largest-remainder assignment of messages to trees.
	assigned := make([]int, len(trees))
	pick := make([]int, messages)
	for i := 0; i < messages; i++ {
		best, bestGap := 0, math.Inf(-1)
		for k, wt := range trees {
			gap := wt.Rate/total*float64(i+1) - float64(assigned[k])
			if gap > bestGap {
				best, bestGap = k, gap
			}
		}
		pick[i] = best
		assigned[best]++
	}

	children := make([][][]int, len(trees))
	for k := range trees {
		children[k] = trees[k].Tree.Children(g)
	}
	isTarget := make([]bool, g.NumNodes())
	distinctTargets := 0
	for _, t := range targets {
		if !isTarget[t] {
			isTarget[t] = true
			distinctTargets++
		}
	}

	sendFree := make([]float64, g.NumNodes())
	recvFree := make([]float64, g.NumNodes())
	pendingDeliveries := make([]int, messages)
	completions := make([]float64, messages)
	for i := range completions {
		completions[i] = math.NaN()
		pendingDeliveries[i] = distinctTargets // trees validated to cover all targets
	}

	// Ready transfers, keyed for determinism; executed greedily by
	// earliest feasible start time.
	ready := map[[2]int]float64{} // (msg, edgeID) -> data-ready time
	arrival := func(msg int, v graph.NodeID, at float64, rep *Report) {
		if isTarget[v] {
			pendingDeliveries[msg]--
			if pendingDeliveries[msg] == 0 {
				completions[msg] = at
				if at > rep.Makespan {
					rep.Makespan = at
				}
			}
		}
		for _, id := range children[pick[msg]][v] {
			ready[[2]int{msg, id}] = at
		}
	}

	rep := &Report{Messages: messages}
	for i := 0; i < messages; i++ {
		arrival(i, source, float64(i)/total, rep)
	}

	guard := 0
	for len(ready) > 0 {
		if guard++; guard > messages*g.NumEdges()+16 {
			return nil, errors.New("sim: scheduler did not converge")
		}
		// Pick the ready transfer with the earliest feasible start.
		bestKey := [2]int{-1, -1}
		bestStart := math.Inf(1)
		for key, at := range ready {
			e := g.Edge(key[1])
			start := math.Max(at, math.Max(sendFree[e.From], recvFree[e.To]))
			if start < bestStart ||
				(start == bestStart && (key[0] < bestKey[0] || (key[0] == bestKey[0] && key[1] < bestKey[1]))) {
				bestKey, bestStart = key, start
			}
		}
		delete(ready, bestKey)
		e := g.Edge(bestKey[1])
		end := bestStart + e.Cost
		sendFree[e.From] = end
		recvFree[e.To] = end
		rep.Transfers++
		arrival(bestKey[0], e.To, end, rep)
	}

	for i, c := range completions {
		if math.IsNaN(c) {
			return nil, fmt.Errorf("sim: message %d never completed", i)
		}
	}
	rep.Completions = completions
	rep.Throughput = steadyThroughput(completions)
	return rep, nil
}

// steadyThroughput estimates the sustained rate from the middle half of
// the completion sequence.
func steadyThroughput(completions []float64) float64 {
	sorted := append([]float64(nil), completions...)
	sort.Float64s(sorted)
	n := len(sorted)
	lo, hi := n/4, (3*n)/4
	if hi <= lo {
		lo, hi = 0, n-1
	}
	if hi == lo || sorted[hi] <= sorted[lo] {
		return 0
	}
	return float64(hi-lo) / (sorted[hi] - sorted[lo])
}
