// Package whatif is the resilience and sensitivity engine: given a
// Series-of-Multicasts instance it evaluates a family of perturbation
// scenarios — single-node failures, per-edge link failures and
// bandwidth degradations, and secondary-source promotions — and ranks
// how critical every node and edge is to the steady-state throughput.
//
// Real heterogeneous platforms degrade: nodes fail, links slow down,
// sources move. The paper's bounds answer "how fast can this platform
// multicast", and this package answers "how much of that survives when
// X breaks" without replanning cold: every scenario runs on a
// steady.Evaluator clone seeded from the baseline solve, so the
// baseline's pooled Multicast-LB cuts and multisource path columns
// warm-start each perturbed LP (DESIGN.md Section 10).
//
// Determinism contract: scenario enumeration is a pure function of the
// platform and the config, and every scenario is evaluated on a fresh
// clone of the same baseline evaluator over a private graph copy, so
// Analyze returns bit-identical reports for any worker count — the
// same contract the serving layer's /v1/whatif endpoint streams over
// HTTP.
package whatif

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/heur"
	"repro/internal/steady"
	"repro/internal/tree"
)

// Kind names a scenario class.
type Kind string

const (
	// KindNodeFailure removes one non-source node (and all its links).
	KindNodeFailure Kind = "node-failure"
	// KindEdgeFailure removes one directed edge.
	KindEdgeFailure Kind = "edge-failure"
	// KindEdgeDegrade multiplies one directed edge's cost by Factor.
	KindEdgeDegrade Kind = "edge-degrade"
	// KindPromoteSource promotes one node to a secondary source.
	KindPromoteSource Kind = "promote-source"
)

// Scenario is one perturbation of the baseline platform.
type Scenario struct {
	Kind Kind
	// Node is the failed node (KindNodeFailure) or the promotion
	// candidate (KindPromoteSource).
	Node graph.NodeID
	// Edge is the perturbed edge ID (KindEdgeFailure, KindEdgeDegrade).
	Edge int
	// Factor is the cost multiplier of KindEdgeDegrade (> 1 means a
	// slower link; 0 denotes KindEdgeFailure in configs).
	Factor float64
}

// Delta expresses the scenario's platform perturbation in the shared
// graph-delta vocabulary — the same ops a live PATCH or an incremental
// replan applies, so "relay r1 fails" is the same object whether it is
// hypothetical here or an observed event on a live platform.
// KindPromoteSource returns nil: promotion perturbs the problem (an
// extra source), not the platform.
func (sc Scenario) Delta() graph.Delta {
	switch sc.Kind {
	case KindNodeFailure:
		return graph.Delta{graph.DropNodeOp(sc.Node)}
	case KindEdgeFailure:
		return graph.Delta{graph.DisableEdgeOp(sc.Edge)}
	case KindEdgeDegrade:
		return graph.Delta{graph.ScaleEdgeCostOp(sc.Edge, sc.Factor)}
	}
	return nil
}

// Config parameterises a what-if analysis.
type Config struct {
	// Workers bounds the concurrent scenario evaluations; values < 1
	// mean runtime.GOMAXPROCS(0). The report is bit-identical for any
	// worker count.
	Workers int
	// NodeFailures enables one scenario per active non-source node.
	NodeFailures bool
	// FailNodes restricts the node-failure scenarios to an explicit
	// candidate list instead of every active non-source node (ignored
	// unless NodeFailures is set; candidates that are inactive or the
	// source are skipped).
	FailNodes []graph.NodeID
	// EdgeFactors enables, per active edge, one scenario per factor: 0
	// is a link failure, a factor f > 0 multiplies the edge cost by f.
	// Factors of exactly 1 are skipped (no-ops).
	EdgeFactors []float64
	// PromoteSources lists secondary-source candidates; nil with
	// AllSources false means none.
	PromoteSources []graph.NodeID
	// AllSources promotes every active non-source node instead of the
	// explicit PromoteSources list.
	AllSources bool
	// Cold evaluates every scenario on a fresh evaluator instead of a
	// baseline clone — the replan-from-scratch reference that
	// BenchmarkWhatifWarm is measured against. Results are identical up
	// to LP degeneracy; only the solver effort changes.
	Cold bool
}

// DefaultConfig is the scenario family the serving layer and cmd/mcast
// run when the caller does not choose: every node failure, every link
// failure, and every source promotion.
func DefaultConfig() Config {
	return Config{NodeFailures: true, EdgeFactors: []float64{0}, AllSources: true}
}

func (c Config) workers() int {
	if c.Workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// Baseline is the unperturbed reference every scenario is compared
// against. It owns a private evaluator snapshot taken after the
// baseline solves, so clones of Ev inherit the pooled cuts and path
// columns whatever happens to the evaluator the baseline was computed
// on (serving shards Reset theirs between requests).
type Baseline struct {
	Problem steady.Problem
	// LB is the Multicast-LB bound, the throughput reference of node
	// and edge scenarios.
	LB *steady.Bound
	// MultiSource is MulticastMultiSource-UB with no promoted sources,
	// the reference of promotion scenarios.
	MultiSource *steady.Bound
	// Tree is the MCPH multicast tree, used for the cheap "does the
	// incumbent plan survive this scenario" check; nil when MCPH fails
	// on the instance (e.g. an unreachable target).
	Tree *tree.Tree
	// TreePeriod is Tree's one-port period (0 when Tree is nil).
	TreePeriod float64
	// Ev is the evaluator snapshot scenario clones are taken from.
	Ev *steady.Evaluator
}

// NewBaseline computes the baseline bounds and MCPH tree on the given
// evaluator (seeding its cut and path pools), then snapshots it. The
// problem must already be validated (steady.NewProblem).
func NewBaseline(ev *steady.Evaluator, p steady.Problem) (*Baseline, error) {
	lb, err := ev.MulticastLB(p)
	if err != nil {
		return nil, fmt.Errorf("whatif: baseline Multicast-LB: %w", err)
	}
	ms, err := ev.MultiSourceUB(p, nil)
	if err != nil {
		return nil, fmt.Errorf("whatif: baseline MulticastMultiSource-UB: %w", err)
	}
	b := &Baseline{Problem: p, LB: lb, MultiSource: ms, Ev: ev.Clone()}
	if res, err := heur.MCPH(p); err == nil {
		b.Tree = res.Tree
		b.TreePeriod = res.Period
	}
	return b, nil
}

// Enumerate lists the scenarios of cfg on the given instance, in the
// deterministic report order: node failures by increasing node ID,
// then edge scenarios by increasing edge ID (factors in config order),
// then source promotions in candidate order.
func Enumerate(g *graph.Graph, source graph.NodeID, cfg Config) []Scenario {
	var out []Scenario
	if cfg.NodeFailures {
		cands := cfg.FailNodes
		if cands == nil {
			cands = g.ActiveNodes()
		}
		for _, v := range cands {
			if v != source && g.Active(v) {
				out = append(out, Scenario{Kind: KindNodeFailure, Node: v})
			}
		}
	}
	if len(cfg.EdgeFactors) > 0 {
		for _, id := range g.ActiveEdges() {
			for _, f := range cfg.EdgeFactors {
				switch {
				case f == 0:
					out = append(out, Scenario{Kind: KindEdgeFailure, Edge: id})
				case f != 1:
					out = append(out, Scenario{Kind: KindEdgeDegrade, Edge: id, Factor: f})
				}
			}
		}
	}
	cands := cfg.PromoteSources
	if cfg.AllSources {
		cands = nil
		for _, v := range g.ActiveNodes() {
			if v != source {
				cands = append(cands, v)
			}
		}
	}
	for _, v := range cands {
		if v != source && g.Active(v) {
			out = append(out, Scenario{Kind: KindPromoteSource, Node: v})
		}
	}
	return out
}

// Result is the outcome of one scenario evaluation.
type Result struct {
	Scenario
	// Err reports an evaluation failure; the other fields are zero.
	Err error
	// Infeasible marks a scenario under which some target cannot be
	// served at all (throughput 0).
	Infeasible bool
	// Period and Throughput are the perturbed bound of the scenario's
	// reference program (Multicast-LB for node and edge scenarios,
	// MulticastMultiSource-UB for promotions).
	Period     float64
	Throughput float64
	// Delta is Throughput minus the baseline throughput of the same
	// program: negative for degradations, positive when a promotion
	// helps.
	Delta float64
	// TargetLost marks a node failure that removed a multicast target
	// (the remaining targets are still evaluated).
	TargetLost bool
	// TreeSurvives reports whether the baseline MCPH tree is still
	// valid under the scenario; TreePeriod is its (possibly degraded)
	// one-port period when it survives.
	TreeSurvives bool
	TreePeriod   float64
}

// Eval evaluates one scenario. ev must be private to the call (a
// Baseline.Ev clone, or a fresh evaluator for cold replans) and g a
// private copy of the baseline platform, which Eval perturbs via the
// scenario's graph delta and restores via the delta's exact-bits undo.
// The result depends only on (base, scenario) — never on which worker
// ran it or what ran before it on g.
func Eval(base *Baseline, ev *steady.Evaluator, g *graph.Graph, sc Scenario) Result {
	res := Result{Scenario: sc}
	p := steady.Problem{G: g, Source: base.Problem.Source, Targets: base.Problem.Targets}
	switch sc.Kind {
	case KindNodeFailure:
		evalNodeFailure(base, ev, g, sc, &res)
	case KindEdgeFailure, KindEdgeDegrade:
		undo, err := sc.Delta().Apply(g)
		if err != nil {
			res.Err = err
			return res
		}
		bound, err := ev.MulticastLB(p)
		undo.Apply(g)
		finishEdge(base, g, sc, bound, err, &res)
	case KindPromoteSource:
		bound, err := ev.PromoteSource(p, nil, sc.Node)
		if err != nil {
			res.Err = err
			return res
		}
		noteBound(&res, bound, base.MultiSource.Throughput())
		res.TreeSurvives = base.Tree != nil
		res.TreePeriod = base.TreePeriod
	default:
		res.Err = fmt.Errorf("whatif: unknown scenario kind %q", sc.Kind)
	}
	return res
}

func evalNodeFailure(base *Baseline, ev *steady.Evaluator, g *graph.Graph, sc Scenario, res *Result) {
	targets := make([]graph.NodeID, 0, len(base.Problem.Targets))
	for _, t := range base.Problem.Targets {
		if t == sc.Node {
			res.TargetLost = true
			continue
		}
		targets = append(targets, t)
	}
	undo, err := sc.Delta().Apply(g)
	if err != nil {
		res.Err = err
		return
	}
	defer undo.Apply(g)
	if len(targets) == 0 {
		res.Infeasible = true
		res.Delta = -base.LB.Throughput()
		return
	}
	p, err := steady.NewProblem(g, base.Problem.Source, targets)
	if err != nil {
		res.Err = err
		return
	}
	bound, err := ev.MulticastLB(p)
	if err != nil {
		res.Err = err
		return
	}
	noteBound(res, bound, base.LB.Throughput())
	if base.Tree != nil && !base.Tree.Nodes(g)[sc.Node] {
		res.TreeSurvives = true
		res.TreePeriod = base.TreePeriod
	}
}

// finishEdge fills an edge scenario's result from its bound: the tree
// survives an edge failure iff it does not use the edge, and always
// survives a degradation (with a recomputed period).
func finishEdge(base *Baseline, g *graph.Graph, sc Scenario, bound *steady.Bound, err error, res *Result) {
	if err != nil {
		res.Err = err
		return
	}
	noteBound(res, bound, base.LB.Throughput())
	if base.Tree == nil {
		return
	}
	uses := false
	for _, id := range base.Tree.Edges {
		if id == sc.Edge {
			uses = true
			break
		}
	}
	switch sc.Kind {
	case KindEdgeFailure:
		if !uses {
			res.TreeSurvives = true
			res.TreePeriod = base.TreePeriod
		}
	case KindEdgeDegrade:
		res.TreeSurvives = true
		if uses {
			res.TreePeriod = scaledTreePeriod(g, base.Tree, sc.Edge, sc.Factor)
		} else {
			res.TreePeriod = base.TreePeriod
		}
	}
}

func noteBound(res *Result, b *steady.Bound, baseThroughput float64) {
	if b.Infeasible() {
		res.Infeasible = true
		res.Delta = -baseThroughput
		return
	}
	res.Period = b.Period
	res.Throughput = b.Throughput()
	res.Delta = res.Throughput - baseThroughput
}

// scaledTreePeriod recomputes a tree's one-port period with one edge's
// cost multiplied by factor, without mutating the graph.
func scaledTreePeriod(g *graph.Graph, t *tree.Tree, edge int, factor float64) float64 {
	send := make(map[graph.NodeID]float64)
	period := 0.0
	for _, id := range t.Edges {
		e := g.Edge(id)
		cost := e.Cost
		if id == edge {
			cost *= factor
		}
		send[e.From] += cost
		if cost > period {
			period = cost
		}
	}
	for _, s := range send {
		if s > period {
			period = s
		}
	}
	return period
}

// Ranked is one entry of a criticality ranking: the perturbed element
// and the throughput delta of its worst scenario.
type Ranked struct {
	Node  graph.NodeID // node-failure rankings
	Edge  int          // edge rankings
	Delta float64
	// Infeasible marks elements whose failure makes some target
	// unservable.
	Infeasible bool
}

// Report is the outcome of a what-if analysis.
type Report struct {
	Baseline *Baseline
	// Scenarios and Results are index-aligned, in Enumerate order.
	Scenarios []Scenario
	Results   []Result
	// CriticalNodes ranks node failures worst-first (largest throughput
	// loss; ties by node ID). CriticalEdges ranks edges by their worst
	// scenario across the configured factors.
	CriticalNodes []Ranked
	CriticalEdges []Ranked
	// Surviving counts the scenarios the baseline MCPH tree survives.
	Surviving int
	// FastPathScenarios counts the scenarios whose evaluator clone
	// answered at least one bound through the tree-topology fast path —
	// e.g. a link failure whose disable mask turns the platform into a
	// tree. The results themselves are byte-identical either way
	// (TestWhatifFastPathByteIdentical); this only reports where the
	// solver effort went.
	FastPathScenarios int
	// BaselineStats is the solver effort of the baseline solves;
	// ScenarioStats aggregates the per-scenario evaluator effort (the
	// warm-start win shows up here as fewer simplex iterations than a
	// cold replan of every scenario).
	BaselineStats steady.SolveStats
	ScenarioStats steady.SolveStats
}

// Analyze runs the full what-if analysis: baseline, concurrent
// scenario fan-out on evaluator clones, and the criticality rankings.
// The report is deterministic for any Config.Workers.
func Analyze(p steady.Problem, cfg Config) (*Report, error) {
	for _, f := range cfg.EdgeFactors {
		// Guard here rather than panicking in SetEdgeCost mid-fan-out.
		if f < 0 || math.IsInf(f, 0) || math.IsNaN(f) {
			return nil, fmt.Errorf("whatif: edge factor %v is not a finite non-negative number", f)
		}
	}
	ev := steady.NewEvaluator()
	base, err := NewBaseline(ev, p)
	if err != nil {
		return nil, err
	}
	scenarios := Enumerate(p.G, p.Source, cfg)
	results, stats, fast := Run(base, scenarios, cfg)
	rep := BuildReport(base, scenarios, results)
	rep.BaselineStats = ev.Stats()
	rep.ScenarioStats = stats
	rep.FastPathScenarios = fast
	return rep, nil
}

// Run evaluates the scenarios against the baseline on cfg.workers()
// concurrent workers and returns the index-aligned results, the
// aggregated scenario solver statistics, and the number of scenarios
// answered (at least partly) through the tree fast path. Each scenario
// gets a fresh clone of base.Ev (or a fresh evaluator when cfg.Cold)
// and each worker a private platform copy, so the results are
// independent of scheduling.
func Run(base *Baseline, scenarios []Scenario, cfg Config) ([]Result, steady.SolveStats, int) {
	results := make([]Result, len(scenarios))
	var (
		next  atomic.Int64
		mu    sync.Mutex
		stats steady.SolveStats
		fast  int
		wg    sync.WaitGroup
	)
	workers := cfg.workers()
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := base.Problem.G.Clone()
			var local steady.SolveStats
			localFast := 0
			for {
				i := int(next.Add(1)) - 1
				if i >= len(scenarios) {
					break
				}
				sev := steady.NewEvaluator()
				if !cfg.Cold {
					sev = base.Ev.Clone()
				}
				results[i] = Eval(base, sev, g, scenarios[i])
				// The clone is private to this scenario, so its counters
				// attribute exactly one evaluation.
				if sev.Stats().FastPathHits > 0 {
					localFast++
				}
				local.Add(sev.Stats())
			}
			mu.Lock()
			stats.Add(local)
			fast += localFast
			mu.Unlock()
		}()
	}
	wg.Wait()
	return results, stats, fast
}

// BuildReport assembles the rankings from index-aligned scenarios and
// results.
func BuildReport(base *Baseline, scenarios []Scenario, results []Result) *Report {
	rep := &Report{Baseline: base, Scenarios: scenarios, Results: results}
	worstEdge := make(map[int]Ranked)
	var edgeOrder []int
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		if r.TreeSurvives {
			rep.Surviving++
		}
		switch r.Kind {
		case KindNodeFailure:
			rep.CriticalNodes = append(rep.CriticalNodes, Ranked{Node: r.Node, Delta: r.Delta, Infeasible: r.Infeasible})
		case KindEdgeFailure, KindEdgeDegrade:
			w, seen := worstEdge[r.Edge]
			if !seen {
				edgeOrder = append(edgeOrder, r.Edge)
				w = Ranked{Edge: r.Edge, Delta: r.Delta, Infeasible: r.Infeasible}
			} else {
				if r.Delta < w.Delta {
					w.Delta = r.Delta
				}
				w.Infeasible = w.Infeasible || r.Infeasible
			}
			worstEdge[r.Edge] = w
		}
	}
	for _, id := range edgeOrder {
		rep.CriticalEdges = append(rep.CriticalEdges, worstEdge[id])
	}
	sort.SliceStable(rep.CriticalNodes, func(i, j int) bool {
		a, b := rep.CriticalNodes[i], rep.CriticalNodes[j]
		if a.Delta != b.Delta {
			return a.Delta < b.Delta
		}
		return a.Node < b.Node
	})
	sort.SliceStable(rep.CriticalEdges, func(i, j int) bool {
		a, b := rep.CriticalEdges[i], rep.CriticalEdges[j]
		if a.Delta != b.Delta {
			return a.Delta < b.Delta
		}
		return a.Edge < b.Edge
	})
	return rep
}
