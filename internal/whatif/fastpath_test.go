package whatif

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/steady"
)

// nearTreeProblem builds a tree of integer-cost full-duplex links plus
// one directed chord arc, and returns the problem and the chord's edge
// ID. The baseline platform is ClassGeneral because of the chord; the
// edge-failure scenario that disables it is exactly a "link failure
// whose disable mask turns the platform into a tree", so its what-if
// clone evaluates combinatorially.
func nearTreeProblem(t *testing.T) (steady.Problem, int) {
	t.Helper()
	g := graph.New()
	ids := g.AddNodes("n", 10)
	parents := []int{0, 0, 1, 1, 2, 4, 4, 5, 6}
	costs := []float64{2, 5, 3, 7, 1, 4, 6, 2, 3}
	for i, p := range parents {
		g.AddLink(ids[p], ids[i+1], costs[i])
	}
	// The chord closes a cycle between two branches.
	chord := g.AddEdge(ids[3], ids[7], 4)
	p, err := steady.NewProblem(g, ids[0], ids[1:])
	if err != nil {
		t.Fatal(err)
	}
	return p, chord
}

// runWith evaluates the default link-failure + node-failure family on
// base evaluators with the fast path on or off.
func runWith(t *testing.T, p steady.Problem, fastPath bool) (*Report, []Result, int) {
	t.Helper()
	ev := steady.NewEvaluator()
	ev.SetFastPath(fastPath)
	base, err := NewBaseline(ev, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{NodeFailures: true, EdgeFactors: []float64{0, 2.5}}
	scenarios := Enumerate(p.G, p.Source, cfg)
	results, _, fast := Run(base, scenarios, cfg)
	rep := BuildReport(base, scenarios, results)
	rep.FastPathScenarios = fast
	return rep, results, fast
}

// TestWhatifFastPathByteIdentical is the satellite regression test:
// scenario evaluation must produce byte-identical results whether the
// tree fast path answers the tree-shaped scenarios or the LP does. On
// this platform the baseline is general (a chord), and exactly the
// scenarios whose disable mask removes the chord classify as trees —
// those are the ones the fast-path run answers combinatorially.
func TestWhatifFastPathByteIdentical(t *testing.T) {
	p, chord := nearTreeProblem(t)
	repFast, fastResults, fastCount := runWith(t, p, true)
	repLP, lpResults, lpCount := runWith(t, p, false)

	if lpCount != 0 {
		t.Fatalf("forced-LP run reported %d fast-path scenarios", lpCount)
	}
	if fastCount == 0 {
		t.Fatal("fast-path run reported no fast-path scenarios on a near-tree platform")
	}

	if !reflect.DeepEqual(fastResults, lpResults) {
		for i := range fastResults {
			if !reflect.DeepEqual(fastResults[i], lpResults[i]) {
				t.Fatalf("scenario %d (%+v): fast %+v vs LP %+v",
					i, fastResults[i].Scenario, fastResults[i], lpResults[i])
			}
		}
		t.Fatal("results diverge")
	}
	fastJSON, err := json.Marshal(fastResults)
	if err != nil {
		t.Fatal(err)
	}
	lpJSON, err := json.Marshal(lpResults)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fastJSON, lpJSON) {
		t.Fatal("serialized results are not byte-identical")
	}

	// The rankings and survival counts are derived from the results, so
	// they agree too.
	if !reflect.DeepEqual(repFast.CriticalNodes, repLP.CriticalNodes) ||
		!reflect.DeepEqual(repFast.CriticalEdges, repLP.CriticalEdges) ||
		repFast.Surviving != repLP.Surviving {
		t.Fatal("derived report fields diverge between fast-path and forced-LP runs")
	}

	// Sanity: the chord-failure scenario is among the fast-path ones —
	// evaluate it directly and watch the clone's counters.
	ev := steady.NewEvaluator()
	base, err := NewBaseline(ev, p)
	if err != nil {
		t.Fatal(err)
	}
	sev := base.Ev.Clone()
	res := Eval(base, sev, p.G.Clone(), Scenario{Kind: KindEdgeFailure, Edge: chord})
	if res.Err != nil {
		t.Fatalf("chord failure: %v", res.Err)
	}
	if sev.Stats().FastPathHits == 0 {
		t.Error("failing the chord did not take the fast path")
	}
}

// TestWhatifPureTreeAllFastPath pins the all-tree extreme: on a pure
// tree platform every node- and edge-failure scenario evaluates
// combinatorially and the scenario stats record zero LP solves.
func TestWhatifPureTreeAllFastPath(t *testing.T) {
	g := graph.New()
	ids := g.AddNodes("n", 8)
	parents := []int{0, 0, 1, 2, 2, 4, 5}
	for i, pa := range parents {
		g.AddLink(ids[pa], ids[i+1], float64(i%3+1))
	}
	p, err := steady.NewProblem(g, ids[0], ids[1:])
	if err != nil {
		t.Fatal(err)
	}
	ev := steady.NewEvaluator()
	base, err := NewBaseline(ev, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{NodeFailures: true, EdgeFactors: []float64{0}}
	scenarios := Enumerate(p.G, p.Source, cfg)
	results, stats, fast := Run(base, scenarios, cfg)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("scenario %d: %v", i, r.Err)
		}
	}
	if fast != len(scenarios) {
		t.Errorf("fast-path scenarios = %d, want all %d", fast, len(scenarios))
	}
	if stats.Solves != 0 {
		t.Errorf("scenario fan-out ran %d LP solves on a pure tree, want 0", stats.Solves)
	}
	if stats.FastPathHits < len(scenarios) {
		t.Errorf("fast-path hits = %d < scenarios = %d", stats.FastPathHits, len(scenarios))
	}
}
