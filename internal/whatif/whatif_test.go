package whatif

import (
	"math"
	"testing"

	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/steady"
	"repro/internal/tiers"
)

// relayProblem builds the small relay platform: S reaches t1,t2 fast
// through relay r, slowly via direct edges.
func relayProblem(t *testing.T) (steady.Problem, map[string]graph.NodeID, map[string]int) {
	t.Helper()
	g := graph.New()
	s := g.AddNode("S")
	r := g.AddNode("r")
	t1 := g.AddNode("t1")
	t2 := g.AddNode("t2")
	x := g.AddNode("x") // idle bystander
	edges := map[string]int{
		"S>r":  g.AddEdge(s, r, 1),
		"r>t1": g.AddEdge(r, t1, 1),
		"r>t2": g.AddEdge(r, t2, 1),
		"S>t1": g.AddEdge(s, t1, 6),
		"S>t2": g.AddEdge(s, t2, 6),
		"S>x":  g.AddEdge(s, x, 1),
	}
	p, err := steady.NewProblem(g, s, []graph.NodeID{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[string]graph.NodeID{"S": s, "r": r, "t1": t1, "t2": t2, "x": x}
	return p, nodes, edges
}

func TestEnumerateDeterministicOrder(t *testing.T) {
	p, nodes, _ := relayProblem(t)
	cfg := Config{NodeFailures: true, EdgeFactors: []float64{0, 1, 4}, AllSources: true}
	scs := Enumerate(p.G, p.Source, cfg)
	// 4 node failures + 6 edges x {failure, x4 degrade} + 4 promotions;
	// the factor 1 no-op is skipped.
	if want := 4 + 6*2 + 4; len(scs) != want {
		t.Fatalf("enumerated %d scenarios, want %d", len(scs), want)
	}
	if scs[0].Kind != KindNodeFailure || scs[0].Node != nodes["r"] {
		t.Errorf("first scenario %+v, want node-failure of r", scs[0])
	}
	// Edge scenarios come edge-major with factors in config order.
	if scs[4].Kind != KindEdgeFailure || scs[4].Edge != 0 {
		t.Errorf("scenario 4 = %+v, want failure of edge 0", scs[4])
	}
	if scs[5].Kind != KindEdgeDegrade || scs[5].Edge != 0 || scs[5].Factor != 4 {
		t.Errorf("scenario 5 = %+v, want x4 degrade of edge 0", scs[5])
	}
	if last := scs[len(scs)-1]; last.Kind != KindPromoteSource || last.Node != nodes["x"] {
		t.Errorf("last scenario %+v, want promotion of x", last)
	}
	// Identical calls enumerate identically.
	again := Enumerate(p.G, p.Source, cfg)
	for i := range scs {
		if scs[i] != again[i] {
			t.Fatalf("enumeration is not deterministic at %d: %+v vs %+v", i, scs[i], again[i])
		}
	}
}

// TestAnalyzeRelay checks the semantics on the relay platform, where
// criticality is obvious: the relay r is the critical node, its out
// edges the critical links, and x is useless as a secondary source.
func TestAnalyzeRelay(t *testing.T) {
	p, nodes, edges := relayProblem(t)
	rep, err := Analyze(p, Config{NodeFailures: true, EdgeFactors: []float64{0, 4}, AllSources: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rep.Results {
		if r.Err != nil {
			t.Fatalf("scenario %d (%+v) failed: %v", i, rep.Scenarios[i], r.Err)
		}
	}
	if rep.Baseline.LB.Infeasible() || rep.Baseline.Tree == nil {
		t.Fatalf("unexpected baseline: %+v", rep.Baseline)
	}

	// Node ranking: r must be the worst non-target node, and the target
	// failures mark TargetLost.
	if len(rep.CriticalNodes) != 4 {
		t.Fatalf("ranked %d nodes, want 4", len(rep.CriticalNodes))
	}
	worstNonTarget := graph.None
	for _, rk := range rep.CriticalNodes {
		if rk.Node != nodes["t1"] && rk.Node != nodes["t2"] {
			worstNonTarget = rk.Node
			break
		}
	}
	if worstNonTarget != nodes["r"] {
		t.Errorf("worst non-target node = %v, want relay r; ranking %+v", worstNonTarget, rep.CriticalNodes)
	}
	byNode := map[graph.NodeID]Result{}
	byPromo := map[graph.NodeID]Result{}
	for _, r := range rep.Results {
		switch r.Kind {
		case KindNodeFailure:
			byNode[r.Node] = r
		case KindPromoteSource:
			byPromo[r.Node] = r
		}
	}
	if r := byNode[nodes["t1"]]; !r.TargetLost {
		t.Errorf("failing target t1 not marked TargetLost: %+v", r)
	}
	if r := byNode[nodes["x"]]; r.TargetLost || math.Abs(r.Delta) > 1e-9 {
		t.Errorf("failing the bystander changed throughput: %+v", r)
	}
	if r := byNode[nodes["x"]]; !r.TreeSurvives {
		t.Errorf("tree should survive losing the bystander: %+v", r)
	}
	if r := byNode[nodes["r"]]; r.TreeSurvives || r.Delta >= 0 {
		t.Errorf("losing the relay must kill the MCPH tree and throughput: %+v", r)
	}

	// Edge ranking: an r out-edge (or S>r) must rank worst, and the
	// failure of a slow direct edge must be harmless.
	if len(rep.CriticalEdges) != 6 {
		t.Fatalf("ranked %d edges, want 6", len(rep.CriticalEdges))
	}
	worst := rep.CriticalEdges[0]
	if worst.Edge == edges["S>x"] || worst.Delta >= 0 {
		t.Errorf("worst edge %+v is implausible", worst)
	}
	var bystander Ranked
	for _, rk := range rep.CriticalEdges {
		if rk.Edge == edges["S>x"] {
			bystander = rk
		}
	}
	if math.Abs(bystander.Delta) > 1e-9 || bystander.Infeasible {
		t.Errorf("bystander edge ranked critical: %+v", bystander)
	}

	// Promotion deltas are measured against the multisource baseline.
	// (They may be negative: a promoted source must receive the full
	// series itself, so promoting a useless node costs bandwidth.)
	if len(byPromo) != 4 {
		t.Fatalf("got %d promotion results, want 4", len(byPromo))
	}
	baseThr := rep.Baseline.MultiSource.Throughput()
	for n, r := range byPromo {
		if math.Abs(r.Delta-(r.Throughput-baseThr)) > 1e-12 {
			t.Errorf("promotion delta of %v inconsistent: %+v (baseline %v)", n, r, baseThr)
		}
	}
}

// TestEdgeDegradeScalesTree: degrading a tree edge recomputes the
// surviving tree's period; a failure of the same edge kills the tree.
func TestEdgeDegradeScalesTree(t *testing.T) {
	p, _, edges := relayProblem(t)
	rep, err := Analyze(p, Config{EdgeFactors: []float64{0, 10}})
	if err != nil {
		t.Fatal(err)
	}
	treeEdge := edges["S>r"] // MCPH routes through the relay
	var fail, degrade *Result
	for i := range rep.Results {
		r := &rep.Results[i]
		if r.Edge != treeEdge {
			continue
		}
		switch r.Kind {
		case KindEdgeFailure:
			fail = r
		case KindEdgeDegrade:
			degrade = r
		}
	}
	if fail == nil || degrade == nil {
		t.Fatal("missing scenarios for the tree edge")
	}
	if fail.TreeSurvives {
		t.Errorf("tree survived losing its own edge: %+v", fail)
	}
	if !degrade.TreeSurvives || degrade.TreePeriod <= rep.Baseline.TreePeriod {
		t.Errorf("degrading a tree edge must slow the surviving tree: %+v (baseline %v)",
			degrade, rep.Baseline.TreePeriod)
	}
}

// TestAnalyzeDeterministicAcrossWorkers is the whatif core of the
// serving determinism contract: the report must be bit-identical at 1
// and 8 workers, warm or cold.
func TestAnalyzeDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("tiers-platform analysis is slow")
	}
	pl, err := tiers.Generate(tiers.Small(3))
	if err != nil {
		t.Fatal(err)
	}
	targets := pl.RandomTargets(exp.NewRNG(7, 0), 0.25)
	p, err := steady.NewProblem(pl.G, pl.Source, targets)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{NodeFailures: true, EdgeFactors: []float64{2}, AllSources: false}
	serial, err := Analyze(p, withWorkers(cfg, 1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Analyze(p, withWorkers(cfg, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Results) != len(parallel.Results) || len(serial.Results) == 0 {
		t.Fatalf("result counts differ: %d vs %d", len(serial.Results), len(parallel.Results))
	}
	for i := range serial.Results {
		a, b := serial.Results[i], parallel.Results[i]
		if a.Scenario != b.Scenario || a.Infeasible != b.Infeasible || a.TargetLost != b.TargetLost ||
			a.TreeSurvives != b.TreeSurvives ||
			math.Float64bits(a.Period) != math.Float64bits(b.Period) ||
			math.Float64bits(a.Delta) != math.Float64bits(b.Delta) ||
			math.Float64bits(a.TreePeriod) != math.Float64bits(b.TreePeriod) {
			t.Fatalf("scenario %d diverges across worker counts:\n1: %+v\n8: %+v", i, a, b)
		}
	}
	if serial.ScenarioStats != parallel.ScenarioStats {
		t.Errorf("scenario solver stats diverge: %+v vs %+v", serial.ScenarioStats, parallel.ScenarioStats)
	}
}

func withWorkers(cfg Config, w int) Config {
	cfg.Workers = w
	return cfg
}

// bigBroadcastInstance builds the dense-target (broadcast-shaped)
// instance of the Figure 11 big platform plus the first n LAN hosts as
// failure candidates — leaves, so every failure scenario stays
// feasible and actually re-solves the cutting-plane LB, which is the
// regime where the baseline cut pool warm-starts every scenario.
func bigBroadcastInstance(t testing.TB, n int) (steady.Problem, []graph.NodeID) {
	t.Helper()
	pl, err := tiers.Generate(tiers.Big(11))
	if err != nil {
		t.Fatal(err)
	}
	var targets []graph.NodeID
	for _, v := range pl.G.ActiveNodes() {
		if v != pl.Source {
			targets = append(targets, v)
		}
	}
	if len(pl.LAN) < n {
		t.Fatalf("platform has %d LAN hosts, want >= %d", len(pl.LAN), n)
	}
	fail := append([]graph.NodeID(nil), pl.LAN[:n]...)
	p, err := steady.NewProblem(pl.G, pl.Source, targets)
	if err != nil {
		t.Fatal(err)
	}
	return p, fail
}

// TestWarmStartBeatsColdReplan pins the point of the engine (and the
// acceptance bar of BenchmarkWhatifWarm): evaluating node failures of
// a broadcast-shaped instance of the Figure 11 big platform — the
// cutting-plane regime of Multicast-LB, where the baseline's pooled
// cuts seed every perturbed solve — must cost at least 1.5x fewer
// simplex iterations on baseline-seeded clones than replanning every
// scenario cold, with identical feasibility and matching periods.
//
// (The bar was 2x when the solver swept phase-1 artificials out in an
// uncounted eviction pass; the LU engine evicts them lazily through
// the ratio test, so both sides of this comparison now count every
// pivot — warm's fixed per-scenario master solve grew by its formerly
// hidden share, compressing the observed ratio.)
func TestWarmStartBeatsColdReplan(t *testing.T) {
	if testing.Short() {
		t.Skip("tiers-platform analysis is slow")
	}
	p, fail := bigBroadcastInstance(t, 8)
	cfg := Config{NodeFailures: true, FailNodes: fail}
	warm, err := Analyze(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldCfg := cfg
	coldCfg.Cold = true
	cold, err := Analyze(p, coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	wi := warm.ScenarioStats.Iterations + warm.ScenarioStats.DualIters
	ci := cold.ScenarioStats.Iterations + cold.ScenarioStats.DualIters
	if wi == 0 || ci == 0 {
		t.Fatalf("no solver activity: warm %d cold %d", wi, ci)
	}
	if 3*wi > 2*ci {
		t.Errorf("warm scenarios took %d simplex iterations vs %d cold — want at least a 1.5x win", wi, ci)
	}
	for i := range warm.Results {
		a, b := warm.Results[i], cold.Results[i]
		if a.Infeasible != b.Infeasible {
			t.Fatalf("scenario %d feasibility differs warm/cold: %+v vs %+v", i, a, b)
		}
		if !a.Infeasible && math.Abs(a.Period-b.Period) > 1e-6*(1+b.Period) {
			t.Errorf("scenario %d period differs warm/cold: %v vs %v", i, a.Period, b.Period)
		}
	}
}
