// Package mcastclient is the Go client for the mcastd v1 API: typed
// wrappers for platform upload, interactive plans, synchronous batch
// streams and the async job lifecycle, with every server-side failure
// decoded from the v1 error envelope into a typed *APIError.
//
// The client is a thin transport layer: request and response types are
// the serve package's own, so anything the daemon can say is
// expressible here without translation. It is safe for concurrent use
// (cmd/loadgen drives one Client from many goroutines).
package mcastclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/serve"
)

// APIError is a structured v1 API failure: the HTTP status plus the
// decoded error envelope. Responses whose body is not a v1 envelope
// (a proxy error page, a truncated read) still produce an APIError,
// with an empty Code and the raw body as the message.
type APIError struct {
	Status  int
	Code    serve.ErrorCode
	Message string
	// RetryAfterSecs is the parsed Retry-After header of a saturated
	// (429) response, 0 when absent.
	RetryAfterSecs int
}

func (e *APIError) Error() string {
	if e.Code == "" {
		return fmt.Sprintf("mcastd: HTTP %d: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("mcastd: %s (HTTP %d): %s", e.Code, e.Status, e.Message)
}

// IsCode reports whether err is an *APIError carrying the given code.
func IsCode(err error, code serve.ErrorCode) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Code == code
}

// Client talks to one mcastd base URL.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
}

// New returns a client for the daemon at baseURL (e.g.
// "http://localhost:8723"). A nil httpClient means
// http.DefaultClient.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// apiErr converts a non-2xx response into an *APIError, consuming the
// body.
func apiErr(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	ae := &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	var env serve.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		ae.Code = env.Error.Code
		ae.Message = env.Error.Message
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			ae.RetryAfterSecs = secs
		}
	}
	return ae
}

// roundTrip sends one JSON request and hands back the raw response,
// retrying transient failures when the client has a RetryPolicy (the
// body is marshalled once and re-sent from the start per attempt; for
// streaming endpoints only the opening exchange retries — once bytes
// flow, failures surface to the caller). The caller owns the body.
func (c *Client) roundTrip(ctx context.Context, method, path string, body any) (*http.Response, error) {
	var data []byte
	if body != nil {
		var err error
		data, err = json.Marshal(body)
		if err != nil {
			return nil, err
		}
	}
	attempt := func() (*http.Response, error) {
		var rd io.Reader
		if data != nil {
			rd = bytes.NewReader(data)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return nil, err
		}
		if data != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		return c.hc.Do(req)
	}
	nonIdempotent := (method == http.MethodPost && path == "/v1/jobs") || method == http.MethodPatch
	return c.doAttempts(ctx, nonIdempotent, attempt)
}

// doJSON sends one request and decodes a 2xx JSON response into out.
func (c *Client) doJSON(ctx context.Context, method, path string, body, out any) error {
	resp, err := c.roundTrip(ctx, method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return apiErr(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive only
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// UploadPlatform registers (or swaps) a platform.
func (c *Client) UploadPlatform(ctx context.Context, req *serve.UploadRequest) (*serve.UploadResponse, error) {
	var out serve.UploadResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/platforms", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Plan requests one multicast plan.
func (c *Client) Plan(ctx context.Context, req *serve.PlanRequest) (*serve.PlanResponse, error) {
	var out serve.PlanResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/plan", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PlanRaw requests one plan and returns the undecoded body plus the
// response headers — for callers that care about exact bytes or the
// X-Mcastd-* serving metadata.
func (c *Client) PlanRaw(ctx context.Context, req *serve.PlanRequest) ([]byte, http.Header, error) {
	resp, err := c.roundTrip(ctx, http.MethodPost, "/v1/plan", req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return nil, resp.Header, apiErr(resp)
	}
	body, err := io.ReadAll(resp.Body)
	return body, resp.Header, err
}

// PlanBatch streams POST /v1/plan:batch, invoking fn for every NDJSON
// line (item plan lines in submission order, then the summary line) as
// it arrives. A non-nil error from fn aborts the stream — closing the
// body cancels the server's remaining items.
func (c *Client) PlanBatch(ctx context.Context, req *serve.BatchRequest, fn func(serve.BatchLine) error) error {
	resp, err := c.roundTrip(ctx, http.MethodPost, "/v1/plan:batch", req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return apiErr(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 16<<20)
	for sc.Scan() {
		var line serve.BatchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("mcastd: bad batch line %q: %w", sc.Text(), err)
		}
		if err := fn(line); err != nil {
			return err
		}
	}
	return sc.Err()
}

// SubmitJob submits a batch for asynchronous execution and returns the
// accepted job's initial status. Admission-control refusals surface as
// an *APIError with code "saturated" and RetryAfterSecs set.
func (c *Client) SubmitJob(ctx context.Context, req *serve.BatchRequest) (*serve.JobStatus, error) {
	var out serve.JobStatus
	if err := c.doJSON(ctx, http.MethodPost, "/v1/jobs", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job polls one job's status.
func (c *Client) Job(ctx context.Context, id string) (*serve.JobStatus, error) {
	var out serve.JobStatus
	if err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Jobs lists the store's jobs, oldest first.
func (c *Client) Jobs(ctx context.Context) ([]serve.JobStatus, error) {
	var out []serve.JobStatus
	if err := c.doJSON(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// CancelJob cancels a job (a no-op on finished jobs) and returns its
// status at cancellation time.
func (c *Client) CancelJob(ctx context.Context, id string) (*serve.JobStatus, error) {
	var out serve.JobStatus
	if err := c.doJSON(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// StreamJob copies a job's NDJSON result stream from byte offset
// into w, following live until the job finishes (or ctx ends). It
// returns the number of bytes written; offset+written is the offset to
// resume from.
func (c *Client) StreamJob(ctx context.Context, id string, offset int64, w io.Writer) (int64, error) {
	path := "/v1/jobs/" + url.PathEscape(id) + "/stream"
	if offset > 0 {
		path += "?offset=" + strconv.FormatInt(offset, 10)
	}
	resp, err := c.roundTrip(ctx, http.MethodGet, path, nil)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return 0, apiErr(resp)
	}
	return io.Copy(w, resp.Body)
}

// PatchPlatform applies a delta batch to a registered platform,
// returning the new version. The batch is atomic: on an *APIError no
// op applied and the version did not move.
func (c *Client) PatchPlatform(ctx context.Context, id string, req *serve.PatchRequest) (*serve.PatchResponse, error) {
	var out serve.PatchResponse
	if err := c.doJSON(ctx, http.MethodPatch, "/v1/platforms/"+url.PathEscape(id), req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PlatformLog fetches a platform's mutation log, oldest first.
func (c *Client) PlatformLog(ctx context.Context, id string) ([]serve.ChangeRecord, error) {
	var out []serve.ChangeRecord
	if err := c.doJSON(ctx, http.MethodGet, "/v1/platforms/"+url.PathEscape(id)+"/log", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// SubscribeSpec parameterises a live subscription: the plan spec to
// watch (the platform is the Subscribe argument) plus the resume
// cursor.
type SubscribeSpec struct {
	// Source is the source node name; empty follows the platform's
	// default source.
	Source string
	// Targets are the target node names (required).
	Targets []string
	// Bounds and Heuristics mirror PlanSpec: nil means all, an empty
	// slice means none.
	Bounds     []string
	Heuristics []string
	// After suppresses updates with version <= After — pass the last
	// version a previous stream delivered to resume without replay.
	After int64
}

// Subscription iterates a live replan stream (GET
// /v1/platforms/{id}/subscribe). Next blocks for updates until the
// stream ends; Close (or canceling the Subscribe context) releases the
// connection.
type Subscription struct {
	resp *http.Response
	sc   *bufio.Scanner
}

// Subscribe opens a live replan stream for one plan spec. The server
// sends the current version's plan immediately, then one update per
// observed version — coalescing under churn, so a slow reader sees the
// newest version rather than every intermediate one.
func (c *Client) Subscribe(ctx context.Context, id string, spec SubscribeSpec) (*Subscription, error) {
	q := url.Values{}
	if spec.Source != "" {
		q.Set("source", spec.Source)
	}
	q.Set("targets", strings.Join(spec.Targets, ","))
	if spec.Bounds != nil {
		q.Set("bounds", strings.Join(spec.Bounds, ","))
	}
	if spec.Heuristics != nil {
		q.Set("heuristics", strings.Join(spec.Heuristics, ","))
	}
	if spec.After > 0 {
		q.Set("after", strconv.FormatInt(spec.After, 10))
	}
	path := "/v1/platforms/" + url.PathEscape(id) + "/subscribe?" + q.Encode()
	resp, err := c.roundTrip(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		return nil, apiErr(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 16<<20)
	return &Subscription{resp: resp, sc: sc}, nil
}

// Next blocks for the next update. It returns io.EOF when the server
// closed the stream, or the context/transport error when the
// subscription was torn down mid-read.
func (s *Subscription) Next() (*serve.SubscribeLine, error) {
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	var line serve.SubscribeLine
	if err := json.Unmarshal(s.sc.Bytes(), &line); err != nil {
		return nil, fmt.Errorf("mcastd: bad subscribe line %q: %w", s.sc.Text(), err)
	}
	return &line, nil
}

// Close releases the stream's connection. Safe to call while Next is
// blocked in another goroutine (Next returns an error).
func (s *Subscription) Close() error { return s.resp.Body.Close() }

// Stats fetches GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (*serve.StatsResponse, error) {
	var out serve.StatsResponse
	if err := c.doJSON(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
