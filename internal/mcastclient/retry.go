package mcastclient

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"time"
)

// RetryPolicy makes a Client retry transient failures — transport
// errors and 429/saturated refusals — with jittered exponential
// backoff. The zero value disables retries entirely (the historical
// behaviour); a policy with MaxAttempts > 1 enables them for every
// idempotent call.
//
// Job submission is the exception: POST /v1/jobs is not idempotent (a
// retry after an ambiguous transport failure could enqueue the same
// batch twice), so SubmitJob only retries when RetryJobs is set — and
// then only 429 refusals, which provably did not admit the job.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first;
	// values <= 1 mean no retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt. 0 means 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the computed backoff (a Retry-After header may still
	// exceed it — the server's explicit hint wins). 0 means 5s.
	MaxDelay time.Duration
	// RetryJobs opts SubmitJob's 429 refusals into retrying.
	RetryJobs bool
}

func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

func (p RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay <= 0 {
		return 100 * time.Millisecond
	}
	return p.BaseDelay
}

func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return 5 * time.Second
	}
	return p.MaxDelay
}

// delay computes the backoff before retry number retryNo (1-based):
// exponential with full jitter — uniform in [d/2, d] where d doubles
// per retry — so a herd of clients shed together does not return
// together. A server Retry-After hint overrides the backoff when
// longer.
func (p RetryPolicy) delay(retryNo, retryAfterSecs int) time.Duration {
	d := p.baseDelay() << (retryNo - 1)
	if max := p.maxDelay(); d > max || d <= 0 { // <= 0: shift overflow
		d = max
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if ra := time.Duration(retryAfterSecs) * time.Second; ra > d {
		d = ra
	}
	return d
}

// WithRetry returns a copy of c using policy p. The original client is
// unchanged, so one transport can serve both retrying and
// fire-once callers.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	cc := *c
	cc.retry = p
	return &cc
}

// retryable classifies one attempt's outcome: transport errors (no
// HTTP response at all — the request may be re-sent against an
// idempotent endpoint) and 429/saturated refusals (the server
// explicitly said "later") are worth another try. Context
// cancellations and every other status are final: a 4xx re-sends to
// the same rejection, a 5xx already consumed server work (and
// 503/deadline in particular means the budget we would retry with
// already expired once).
func retryable(err error, resp *http.Response) bool {
	if err != nil {
		return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
	}
	return resp.StatusCode == http.StatusTooManyRequests
}

// doAttempts runs attempt() under c's retry policy. nonIdempotent
// marks requests that must not be re-sent blindly (job submission,
// platform patches): transport errors there are never retried — the
// request may have been applied — and 429 refusals (which provably
// were not) only with RetryJobs. The successful (or final) response is
// returned unconsumed; intermediate 429 bodies are drained into their
// *APIError.
func (c *Client) doAttempts(ctx context.Context, nonIdempotent bool, attempt func() (*http.Response, error)) (*http.Response, error) {
	resp, err := attempt()
	if !c.retry.enabled() {
		return resp, err
	}
	for n := 1; n < c.retry.MaxAttempts; n++ {
		if !retryable(err, resp) {
			return resp, err
		}
		retryAfter := 0
		if err == nil { // a 429 refusal
			if nonIdempotent && !c.retry.RetryJobs {
				return resp, nil
			}
			ae := apiErr(resp).(*APIError)
			retryAfter = ae.RetryAfterSecs
			err = ae
		} else if nonIdempotent {
			// An ambiguous transport failure: the request may have been
			// applied. Never re-send.
			return nil, err
		}
		t := time.NewTimer(c.retry.delay(n, retryAfter))
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
		resp, err = attempt()
	}
	return resp, err
}
