package mcastclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// shedTwice answers 429/saturated to the first two requests of each
// path, then delegates to ok.
func shedTwice(ok http.HandlerFunc) (http.HandlerFunc, *atomic.Int64) {
	var calls atomic.Int64
	return func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"saturated","message":"busy"}}`)) //nolint:errcheck
			return
		}
		ok(w, r)
	}, &calls
}

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
}

func TestRetrySaturatedThenSuccess(t *testing.T) {
	h, calls := shedTwice(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"fingerprint":"f","source":"S","targets":["t"]}`)) //nolint:errcheck
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := New(ts.URL, nil).WithRetry(fastRetry(4))
	resp, err := c.Plan(context.Background(), &serve.PlanRequest{})
	if err != nil {
		t.Fatalf("retried plan: %v", err)
	}
	if resp.Source != "S" {
		t.Errorf("unexpected response: %+v", resp)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
}

func TestRetryDisabledByDefault(t *testing.T) {
	h, calls := shedTwice(nil)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := New(ts.URL, nil)
	_, err := c.Plan(context.Background(), &serve.PlanRequest{})
	if !IsCode(err, serve.CodeSaturated) {
		t.Fatalf("want saturated error, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1 (no policy, no retry)", got)
	}
}

func TestRetryAttemptCap(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":{"code":"saturated","message":"always busy"}}`)) //nolint:errcheck
	}))
	defer ts.Close()

	c := New(ts.URL, nil).WithRetry(fastRetry(3))
	_, err := c.Plan(context.Background(), &serve.PlanRequest{})
	if !IsCode(err, serve.CodeSaturated) {
		t.Fatalf("want saturated after exhausting attempts, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want exactly MaxAttempts=3", got)
	}
}

func TestRetryNonRetryableStatus(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"deadline","message":"too slow"}}`)) //nolint:errcheck
	}))
	defer ts.Close()

	c := New(ts.URL, nil).WithRetry(fastRetry(5))
	_, err := c.Plan(context.Background(), &serve.PlanRequest{})
	if !IsCode(err, serve.CodeDeadline) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1 (503/deadline is final)", got)
	}
}

type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func TestRetryTransportError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"fingerprint":"f","source":"S","targets":["t"]}`)) //nolint:errcheck
	}))
	defer ts.Close()

	var calls atomic.Int64
	base := http.DefaultTransport
	hc := &http.Client{Transport: roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		if calls.Add(1) == 1 {
			return nil, errors.New("connection reset")
		}
		return base.RoundTrip(r)
	})}
	c := New(ts.URL, hc).WithRetry(fastRetry(3))
	if _, err := c.Plan(context.Background(), &serve.PlanRequest{}); err != nil {
		t.Fatalf("plan after transport blip: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("transport saw %d attempts, want 2", got)
	}
}

func TestRetryJobsOffByDefault(t *testing.T) {
	h, calls := shedTwice(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"job-1","state":"running","items":1}`)) //nolint:errcheck
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := New(ts.URL, nil).WithRetry(fastRetry(5))
	_, err := c.SubmitJob(context.Background(), &serve.BatchRequest{})
	if !IsCode(err, serve.CodeSaturated) {
		t.Fatalf("want saturated (jobs excluded from retries by default), got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d submit attempts, want 1", got)
	}

	// Opting in retries the refusals (which provably did not admit).
	calls.Store(0)
	p := fastRetry(5)
	p.RetryJobs = true
	st, err := c.WithRetry(p).SubmitJob(context.Background(), &serve.BatchRequest{})
	if err != nil {
		t.Fatalf("retried submit: %v", err)
	}
	if st.ID != "job-1" || calls.Load() != 3 {
		t.Errorf("got job %+v after %d attempts, want job-1 after 3", st, calls.Load())
	}

	// Transport failures stay final even with RetryJobs: the job may
	// have been admitted.
	var tcalls atomic.Int64
	hc := &http.Client{Transport: roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		tcalls.Add(1)
		return nil, errors.New("connection reset")
	})}
	_, err = New(ts.URL, hc).WithRetry(p).SubmitJob(context.Background(), &serve.BatchRequest{})
	if err == nil || tcalls.Load() != 1 {
		t.Errorf("ambiguous submit failure: err=%v after %d attempts, want error after 1", err, tcalls.Load())
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":{"code":"saturated","message":"busy"}}`)) //nolint:errcheck
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := New(ts.URL, nil).WithRetry(fastRetry(3))
	start := time.Now()
	_, err := c.Plan(ctx, &serve.PlanRequest{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ctx deadline cutting the 30s Retry-After backoff short, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("retry backoff ignored the context (took %s)", time.Since(start))
	}
}
