package mcastclient

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
)

const diamondText = `
node S
edge S r1 1
edge S r2 1
edge r1 t1 1
edge r1 t2 1
edge r2 t1 1
edge r2 t2 1
edge S t1 6
edge S t2 6
`

func newClient(t *testing.T) *Client {
	t.Helper()
	ts := httptest.NewServer(serve.New(serve.Config{Shards: 2}))
	t.Cleanup(ts.Close)
	return New(ts.URL, nil)
}

// TestClientRoundTrip drives the typed client through the full v1
// surface: upload, plan, batch stream, job lifecycle, stats.
func TestClientRoundTrip(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()

	up, err := c.UploadPlatform(ctx, &serve.UploadRequest{ID: "d", Platform: diamondText, Source: "S"})
	if err != nil {
		t.Fatal(err)
	}
	if up.ID != "d" || up.Nodes != 5 {
		t.Fatalf("upload %+v", up)
	}

	plan, err := c.Plan(ctx, &serve.PlanRequest{PlanSpec: serve.PlanSpec{PlatformID: "d", Targets: []string{"t1"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Bounds) == 0 {
		t.Fatalf("plan %+v", plan)
	}

	raw, hdr, err := c.PlanRaw(ctx, &serve.PlanRequest{PlanSpec: serve.PlanSpec{PlatformID: "d", Targets: []string{"t1"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || hdr.Get(serve.HeaderCache) != "hit" {
		t.Errorf("raw plan: %d bytes, cache header %q (want hit)", len(raw), hdr.Get(serve.HeaderCache))
	}

	batch := &serve.BatchRequest{
		PlanSpec: serve.PlanSpec{PlatformID: "d", Heuristics: []string{}},
		Items: []serve.BatchItem{
			{PlanSpec: serve.PlanSpec{Targets: []string{"t1"}}},
			{PlanSpec: serve.PlanSpec{Targets: []string{"t2"}}},
		},
	}
	var kinds []string
	if err := c.PlanBatch(ctx, batch, func(line serve.BatchLine) error {
		kinds = append(kinds, line.Kind)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 3 || kinds[2] != "summary" {
		t.Fatalf("batch line kinds %v", kinds)
	}

	job, err := c.SubmitJob(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	for job.State == serve.JobRunning {
		time.Sleep(time.Millisecond)
		if job, err = c.Job(ctx, job.ID); err != nil {
			t.Fatal(err)
		}
	}
	if job.State != serve.JobDone || job.Completed != 2 {
		t.Fatalf("job %+v", job)
	}
	var full bytes.Buffer
	if n, err := c.StreamJob(ctx, job.ID, 0, &full); err != nil || n != job.Bytes {
		t.Fatalf("stream: %d bytes, err %v (want %d)", n, err, job.Bytes)
	}
	var tail bytes.Buffer
	if _, err := c.StreamJob(ctx, job.ID, job.Bytes/2, &tail); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tail.Bytes(), full.Bytes()[job.Bytes/2:]) {
		t.Error("resumed stream differs from stream[offset:]")
	}

	jobs, err := c.Jobs(ctx)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("jobs %v err %v", jobs, err)
	}
	st, err := c.Stats(ctx)
	if err != nil || st.Jobs.Done != 1 || st.Batch.Requests != 2 {
		t.Fatalf("stats %+v err %v", st, err)
	}
}

// TestClientTypedErrors: server failures decode into *APIError with
// the envelope's code, status and Retry-After hint.
func TestClientTypedErrors(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()

	_, err := c.Plan(ctx, &serve.PlanRequest{PlanSpec: serve.PlanSpec{PlatformID: "missing", Targets: []string{"x"}}})
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("err %T %v, want *APIError", err, err)
	}
	if ae.Status != 404 || ae.Code != serve.CodeNotFound || ae.Message == "" {
		t.Errorf("APIError %+v", ae)
	}
	if !IsCode(err, serve.CodeNotFound) || IsCode(err, serve.CodeSaturated) {
		t.Error("IsCode misclassified the error")
	}

	if _, err := c.Job(ctx, "job-404"); !IsCode(err, serve.CodeNotFound) {
		t.Errorf("job poll err %v, want not_found", err)
	}
}
