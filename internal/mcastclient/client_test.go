package mcastclient

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
)

const diamondText = `
node S
edge S r1 1
edge S r2 1
edge r1 t1 1
edge r1 t2 1
edge r2 t1 1
edge r2 t2 1
edge S t1 6
edge S t2 6
`

func newClient(t *testing.T) *Client {
	t.Helper()
	ts := httptest.NewServer(serve.New(serve.Config{Shards: 2}))
	t.Cleanup(ts.Close)
	return New(ts.URL, nil)
}

// TestClientRoundTrip drives the typed client through the full v1
// surface: upload, plan, batch stream, job lifecycle, stats.
func TestClientRoundTrip(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()

	up, err := c.UploadPlatform(ctx, &serve.UploadRequest{ID: "d", Platform: diamondText, Source: "S"})
	if err != nil {
		t.Fatal(err)
	}
	if up.ID != "d" || up.Nodes != 5 {
		t.Fatalf("upload %+v", up)
	}

	plan, err := c.Plan(ctx, &serve.PlanRequest{PlanSpec: serve.PlanSpec{PlatformID: "d", Targets: []string{"t1"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Bounds) == 0 {
		t.Fatalf("plan %+v", plan)
	}

	raw, hdr, err := c.PlanRaw(ctx, &serve.PlanRequest{PlanSpec: serve.PlanSpec{PlatformID: "d", Targets: []string{"t1"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || hdr.Get(serve.HeaderCache) != "hit" {
		t.Errorf("raw plan: %d bytes, cache header %q (want hit)", len(raw), hdr.Get(serve.HeaderCache))
	}

	batch := &serve.BatchRequest{
		PlanSpec: serve.PlanSpec{PlatformID: "d", Heuristics: []string{}},
		Items: []serve.BatchItem{
			{PlanSpec: serve.PlanSpec{Targets: []string{"t1"}}},
			{PlanSpec: serve.PlanSpec{Targets: []string{"t2"}}},
		},
	}
	var kinds []string
	if err := c.PlanBatch(ctx, batch, func(line serve.BatchLine) error {
		kinds = append(kinds, line.Kind)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 3 || kinds[2] != "summary" {
		t.Fatalf("batch line kinds %v", kinds)
	}

	job, err := c.SubmitJob(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	for job.State == serve.JobRunning {
		time.Sleep(time.Millisecond)
		if job, err = c.Job(ctx, job.ID); err != nil {
			t.Fatal(err)
		}
	}
	if job.State != serve.JobDone || job.Completed != 2 {
		t.Fatalf("job %+v", job)
	}
	var full bytes.Buffer
	if n, err := c.StreamJob(ctx, job.ID, 0, &full); err != nil || n != job.Bytes {
		t.Fatalf("stream: %d bytes, err %v (want %d)", n, err, job.Bytes)
	}
	var tail bytes.Buffer
	if _, err := c.StreamJob(ctx, job.ID, job.Bytes/2, &tail); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tail.Bytes(), full.Bytes()[job.Bytes/2:]) {
		t.Error("resumed stream differs from stream[offset:]")
	}

	jobs, err := c.Jobs(ctx)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("jobs %v err %v", jobs, err)
	}
	st, err := c.Stats(ctx)
	if err != nil || st.Jobs.Done != 1 || st.Batch.Requests != 2 {
		t.Fatalf("stats %+v err %v", st, err)
	}
}

// TestClientTypedErrors: server failures decode into *APIError with
// the envelope's code, status and Retry-After hint.
func TestClientTypedErrors(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()

	_, err := c.Plan(ctx, &serve.PlanRequest{PlanSpec: serve.PlanSpec{PlatformID: "missing", Targets: []string{"x"}}})
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("err %T %v, want *APIError", err, err)
	}
	if ae.Status != 404 || ae.Code != serve.CodeNotFound || ae.Message == "" {
		t.Errorf("APIError %+v", ae)
	}
	if !IsCode(err, serve.CodeNotFound) || IsCode(err, serve.CodeSaturated) {
		t.Error("IsCode misclassified the error")
	}

	if _, err := c.Job(ctx, "job-404"); !IsCode(err, serve.CodeNotFound) {
		t.Errorf("job poll err %v, want not_found", err)
	}
}

// TestClientPatchSubscribe drives the live-platform surface: PATCH
// delta batches, the mutation log, and the subscribe iterator —
// including a mid-stream disconnect and an After-cursor resume that
// must not replay the already-seen version.
func TestClientPatchSubscribe(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()

	up, err := c.UploadPlatform(ctx, &serve.UploadRequest{ID: "d", Platform: diamondText, Source: "S"})
	if err != nil {
		t.Fatal(err)
	}
	if up.Version != 1 {
		t.Fatalf("upload version = %d, want 1", up.Version)
	}

	sub, err := c.Subscribe(ctx, "d", SubscribeSpec{Targets: []string{"t1", "t2"}, Heuristics: []string{"MCPH"}})
	if err != nil {
		t.Fatal(err)
	}
	line, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	if line.Version != 1 || line.Plan == nil || line.Error != nil {
		t.Fatalf("first line %+v", line)
	}
	var v1 serve.PlanResponse
	if err := json.Unmarshal(line.Plan, &v1); err != nil {
		t.Fatal(err)
	}

	// Degrade both relay links: the subscriber must observe version 2
	// with a different fingerprint (and, on this platform, a different
	// plan).
	pr, err := c.PatchPlatform(ctx, "d", &serve.PatchRequest{Ops: []serve.PatchOp{
		{Op: "scale_edge_cost", From: "S", To: "r1", Factor: 8},
		{Op: "scale_edge_cost", From: "S", To: "r2", Factor: 8},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Version != 2 || pr.Applied != 2 {
		t.Fatalf("patch response %+v", pr)
	}
	line, err = sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	if line.Version != 2 || line.Plan == nil {
		t.Fatalf("post-patch line %+v", line)
	}
	var v2 serve.PlanResponse
	if err := json.Unmarshal(line.Plan, &v2); err != nil {
		t.Fatal(err)
	}
	if v2.Fingerprint == v1.Fingerprint {
		t.Fatal("patch did not change the streamed fingerprint")
	}

	// A bad batch is atomic: nothing applies, the version holds.
	if _, err := c.PatchPlatform(ctx, "d", &serve.PatchRequest{Ops: []serve.PatchOp{
		{Op: "scale_edge_cost", From: "S", To: "r1", Factor: 2},
		{Op: "disable_edge", From: "S", To: "nope"},
	}}); !IsCode(err, serve.CodeBadRequest) {
		t.Fatalf("bad batch err %v, want bad_request", err)
	}
	if info, err := c.PlatformLog(ctx, "d"); err != nil || len(info) != 2 {
		t.Fatalf("log %v err %v (want upload + one patch)", info, err)
	}

	// Mid-stream disconnect: close the subscription, mutate while
	// nobody is watching, then resume past the last seen version. The
	// resumed stream must start at version 3 — version 2 is suppressed
	// by the cursor even though the replan loop replays it.
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Next(); err == nil {
		t.Fatal("Next after Close did not fail")
	}
	if _, err := c.PatchPlatform(ctx, "d", &serve.PatchRequest{Ops: []serve.PatchOp{
		{Op: "scale_edge_cost", From: "S", To: "r1", Factor: 0.125},
		{Op: "scale_edge_cost", From: "S", To: "r2", Factor: 0.125},
	}}); err != nil {
		t.Fatal(err)
	}
	sub2, err := c.Subscribe(ctx, "d", SubscribeSpec{Targets: []string{"t1", "t2"}, Heuristics: []string{"MCPH"}, After: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	line, err = sub2.Next()
	if err != nil {
		t.Fatal(err)
	}
	if line.Version != 3 {
		t.Fatalf("resumed stream starts at version %d, want 3", line.Version)
	}
	// x8 then x1/8 is exact: version 3's content equals version 1's.
	var v3 serve.PlanResponse
	if err := json.Unmarshal(line.Plan, &v3); err != nil {
		t.Fatal(err)
	}
	if v3.Fingerprint != v1.Fingerprint {
		t.Fatal("exact inverse scaling did not restore the fingerprint")
	}

	// Canceling the subscribe context unblocks a concurrent Next.
	subCtx, cancel := context.WithCancel(ctx)
	sub3, err := c.Subscribe(subCtx, "d", SubscribeSpec{Targets: []string{"t1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer sub3.Close()
	if _, err := sub3.Next(); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := sub3.Next()
		errc <- err
	}()
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Next survived context cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not unblock on context cancellation")
	}
}
