// Package live owns the replan loops behind mcastd's platform
// subscriptions: it turns platform mutation events into a stream of
// versioned plan updates fanned out to any number of subscribers.
//
// The package is deliberately unopinionated about *what* a plan is —
// the compute closure injected by the serving layer returns the
// current platform version plus that version's canonical plan bytes
// (internal/serve routes it through the same cache/coalescer/shard
// path as an interactive request, which is what makes every streamed
// plan bit-identical to a cold solve of the same snapshot). live only
// owns the concurrency semantics:
//
//   - Coalescing: Notify marks "a new version may exist" and is safe
//     to call from any goroutine at any rate; the loop computes at
//     most one update at a time and always against the *latest*
//     version, so a burst of PATCHes costs one recompute, not one per
//     event. Intermediate versions are skipped by design — the stream
//     contract is "you always converge to the newest plan", not "you
//     see every version".
//   - Latest-wins backpressure: each subscriber owns a one-slot
//     mailbox. A slow reader never blocks the loop or other
//     subscribers; when it falls behind, stale updates are replaced in
//     the mailbox and it simply resumes at the newest version.
//   - Replay: late subscribers immediately receive the most recent
//     update (if any) so a stream always starts with the current plan
//     without waiting for the next mutation.
package live

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
)

// An Update is one versioned replan outcome delivered to subscribers.
type Update struct {
	// Version is the platform version this update describes.
	Version int64
	// Data is the version's canonical plan encoding (nil when Err is
	// set).
	Data json.RawMessage
	// Err reports a compute failure for this version — e.g. a mutation
	// dropped the subscribed spec's source. The loop keeps running; a
	// later version may compute again.
	Err error
}

// ErrClosed is returned by Sub.Next when the loop shut down.
var ErrClosed = errors.New("live: loop closed")

// Compute produces the current version and its plan bytes. It is
// called from the loop goroutine only, never concurrently with
// itself. The error return is delivered to subscribers as an erroring
// Update for that version, not treated as fatal.
type Compute func() (version int64, data json.RawMessage, err error)

// Loop is one replan loop: a single goroutine that recomputes on
// Notify and broadcasts to the current subscribers.
type Loop struct {
	compute Compute

	// notify is the coalescing wakeup: capacity 1, so any number of
	// pending Notify calls collapse into one recompute of the latest
	// state.
	notify chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup

	mu   sync.Mutex
	subs map[*Sub]struct{}
	last *Update // most recent update, replayed to late subscribers
}

// NewLoop starts a replan loop around compute. The loop is idle until
// the first Notify (or the first Subscribe, which self-notifies so a
// fresh stream gets the current plan).
func NewLoop(compute Compute) *Loop {
	l := &Loop{
		compute: compute,
		notify:  make(chan struct{}, 1),
		done:    make(chan struct{}),
		subs:    make(map[*Sub]struct{}),
	}
	l.wg.Add(1)
	go l.run()
	return l
}

// Notify tells the loop the platform may have a new version. It never
// blocks; concurrent notifications coalesce.
func (l *Loop) Notify() {
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

// Close stops the loop goroutine and fails all subscribers' Next
// calls with ErrClosed. Idempotent.
func (l *Loop) Close() {
	l.mu.Lock()
	select {
	case <-l.done:
		l.mu.Unlock()
		return
	default:
	}
	close(l.done)
	l.mu.Unlock()
	l.wg.Wait()
}

func (l *Loop) run() {
	defer l.wg.Done()
	for {
		select {
		case <-l.done:
			return
		case <-l.notify:
		}
		version, data, err := l.compute()
		u := Update{Version: version, Data: data, Err: err}

		l.mu.Lock()
		if prev := l.last; prev != nil && prev.Version == u.Version &&
			(prev.Err == nil) == (u.Err == nil) {
			// Coalesced notifications for a version already published;
			// nothing new to say.
			l.mu.Unlock()
			continue
		}
		l.last = &u
		for s := range l.subs {
			s.deliver(u)
		}
		l.mu.Unlock()
	}
}

// Subscribe attaches a new subscriber. If the loop has published an
// update it is replayed immediately; otherwise the loop is notified so
// the first update arrives without waiting for a mutation. Callers
// must Cancel the subscription when done.
func (l *Loop) Subscribe() *Sub {
	s := &Sub{l: l, box: make(chan Update, 1)}
	l.mu.Lock()
	l.subs[s] = struct{}{}
	replay := l.last
	if replay != nil {
		s.deliver(*replay)
	}
	l.mu.Unlock()
	if replay == nil {
		l.Notify()
	}
	return s
}

// Subscribers returns the current subscriber count.
func (l *Loop) Subscribers() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.subs)
}

// Sub is one subscription: a one-slot latest-wins mailbox.
type Sub struct {
	l   *Loop
	box chan Update
}

// deliver replaces the mailbox content with u if the subscriber has
// not consumed the previous update yet. Called with l.mu held, which
// serialises all senders — that is what makes the drain-and-replace
// below race-free.
func (s *Sub) deliver(u Update) {
	for {
		select {
		case s.box <- u:
			return
		default:
		}
		select {
		case <-s.box: // discard the stale update the reader never saw
		default:
		}
	}
}

// Next blocks until the next update, the context ends, or the loop
// closes (ErrClosed). Updates are strictly newer-version than the
// previous one returned, except that a version can repeat when its
// compute outcome flipped between error and success.
func (s *Sub) Next(ctx context.Context) (Update, error) {
	select {
	case u := <-s.box:
		return u, nil
	default:
	}
	select {
	case u := <-s.box:
		return u, nil
	case <-ctx.Done():
		return Update{}, ctx.Err()
	case <-s.l.done:
		// Drain a final update raced with Close.
		select {
		case u := <-s.box:
			return u, nil
		default:
			return Update{}, ErrClosed
		}
	}
}

// Cancel detaches the subscription. Safe to call multiple times and
// concurrently with Next (a concurrent Next may still return one
// already-delivered update).
func (s *Sub) Cancel() {
	s.l.mu.Lock()
	delete(s.l.subs, s)
	s.l.mu.Unlock()
}
