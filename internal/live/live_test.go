package live

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakePlatform is a mutable versioned source for loop tests.
type fakePlatform struct {
	version  atomic.Int64
	computes atomic.Int64
	fail     atomic.Bool
}

func (f *fakePlatform) compute() (int64, json.RawMessage, error) {
	f.computes.Add(1)
	v := f.version.Load()
	if f.fail.Load() {
		return v, nil, errors.New("boom")
	}
	return v, json.RawMessage(fmt.Sprintf(`{"v":%d}`, v)), nil
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSubscribeDeliversCurrentPlanWithoutMutation(t *testing.T) {
	fp := &fakePlatform{}
	fp.version.Store(1)
	l := NewLoop(fp.compute)
	defer l.Close()

	sub := l.Subscribe()
	defer sub.Cancel()
	u, err := sub.Next(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if u.Version != 1 || string(u.Data) != `{"v":1}` {
		t.Fatalf("first update = %+v", u)
	}
}

func TestNotifyCoalescesBursts(t *testing.T) {
	fp := &fakePlatform{}
	fp.version.Store(1)
	l := NewLoop(fp.compute)
	defer l.Close()

	sub := l.Subscribe()
	defer sub.Cancel()
	if _, err := sub.Next(testCtx(t)); err != nil {
		t.Fatal(err)
	}

	// A burst of mutations: the loop must converge to the final version
	// without computing once per Notify.
	for v := int64(2); v <= 50; v++ {
		fp.version.Store(v)
		l.Notify()
	}
	deadline := testCtx(t)
	for {
		u, err := sub.Next(deadline)
		if err != nil {
			t.Fatal(err)
		}
		if u.Version == 50 {
			break
		}
	}
	if c := fp.computes.Load(); c > 51 {
		t.Fatalf("burst of 49 notifies cost %d computes", c)
	}
}

func TestLatestWinsBackpressure(t *testing.T) {
	fp := &fakePlatform{}
	fp.version.Store(1)
	l := NewLoop(fp.compute)
	defer l.Close()

	sub := l.Subscribe()
	defer sub.Cancel()
	if _, err := sub.Next(testCtx(t)); err != nil {
		t.Fatal(err)
	}

	// Publish several distinct versions while the subscriber is not
	// reading: each must fully flow through the loop, so wait until the
	// compute count shows it ran.
	for v := int64(2); v <= 6; v++ {
		before := fp.computes.Load()
		fp.version.Store(v)
		l.Notify()
		for fp.computes.Load() == before {
			time.Sleep(time.Millisecond)
		}
	}
	// Give the final broadcast a moment to land in the mailbox.
	var last Update
	deadline := time.Now().Add(5 * time.Second)
	for {
		u, err := sub.Next(testCtx(t))
		if err != nil {
			t.Fatal(err)
		}
		last = u
		if u.Version == 6 || time.Now().After(deadline) {
			break
		}
	}
	if last.Version != 6 {
		t.Fatalf("slow subscriber did not converge to newest version: %+v", last)
	}
}

func TestUpdatesAreMonotonic(t *testing.T) {
	fp := &fakePlatform{}
	fp.version.Store(1)
	l := NewLoop(fp.compute)
	defer l.Close()

	sub := l.Subscribe()
	defer sub.Cancel()

	done := make(chan struct{})
	var got []int64
	go func() {
		defer close(done)
		ctx := testCtx(t)
		for {
			u, err := sub.Next(ctx)
			if err != nil {
				return
			}
			got = append(got, u.Version)
			if u.Version == 30 {
				return
			}
		}
	}()
	for v := int64(2); v <= 30; v++ {
		fp.version.Store(v)
		l.Notify()
		time.Sleep(time.Millisecond)
	}
	<-done
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("versions not strictly increasing: %v", got)
		}
	}
}

func TestErrorUpdatesFlowAndRecover(t *testing.T) {
	fp := &fakePlatform{}
	fp.version.Store(1)
	fp.fail.Store(true)
	l := NewLoop(fp.compute)
	defer l.Close()

	sub := l.Subscribe()
	defer sub.Cancel()
	u, err := sub.Next(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if u.Err == nil || u.Data != nil {
		t.Fatalf("expected error update, got %+v", u)
	}

	// Same version recovers: the error/success flip must republish.
	fp.fail.Store(false)
	l.Notify()
	u, err = sub.Next(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if u.Err != nil || u.Version != 1 {
		t.Fatalf("expected recovery update for v1, got %+v", u)
	}
}

func TestCloseUnblocksSubscribers(t *testing.T) {
	fp := &fakePlatform{}
	l := NewLoop(fp.compute)
	sub := l.Subscribe()
	if _, err := sub.Next(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := sub.Next(context.Background())
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("Next after Close = %v, want ErrClosed", err)
	}
	l.Close() // idempotent
}

func TestCancelDetaches(t *testing.T) {
	fp := &fakePlatform{}
	l := NewLoop(fp.compute)
	defer l.Close()
	a, b := l.Subscribe(), l.Subscribe()
	if n := l.Subscribers(); n != 2 {
		t.Fatalf("Subscribers = %d, want 2", n)
	}
	a.Cancel()
	a.Cancel() // idempotent
	if n := l.Subscribers(); n != 1 {
		t.Fatalf("Subscribers after cancel = %d, want 1", n)
	}
	b.Cancel()
}

// TestConcurrentChurn exercises the loop under -race: a notifier
// storm, subscribers joining/leaving, and readers consuming, all
// concurrent.
func TestConcurrentChurn(t *testing.T) {
	fp := &fakePlatform{}
	fp.version.Store(1)
	l := NewLoop(fp.compute)
	defer l.Close()

	ctx := testCtx(t)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := 0; v < 200; v++ {
				fp.version.Add(1)
				l.Notify()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				sub := l.Subscribe()
				u, err := sub.Next(ctx)
				if err == nil && u.Err == nil && u.Version == 0 {
					t.Error("delivered update with zero version")
				}
				sub.Cancel()
			}
		}()
	}
	wg.Wait()
}
