package tiers

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestSmallShape(t *testing.T) {
	p, err := Generate(Small(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.G.NumNodes(); got != 30 {
		t.Errorf("small platform has %d nodes, want 30", got)
	}
	if got := len(p.LAN); got != 17 {
		t.Errorf("small platform has %d LAN hosts, want 17", got)
	}
}

func TestBigShape(t *testing.T) {
	p, err := Generate(Big(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.G.NumNodes(); got != 65 {
		t.Errorf("big platform has %d nodes, want 65", got)
	}
	if got := len(p.LAN); got != 47 {
		t.Errorf("big platform has %d LAN hosts, want 47", got)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(Small(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Small(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.G.String() != b.G.String() {
		t.Fatal("same seed produced different platforms")
	}
	c, err := Generate(Small(43))
	if err != nil {
		t.Fatal(err)
	}
	if a.G.String() == c.G.String() {
		t.Fatal("different seeds produced identical platforms")
	}
}

func TestInvalidConfig(t *testing.T) {
	cfg := Small(1)
	cfg.WANNodes = 0
	if _, err := Generate(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRandomTargets(t *testing.T) {
	p, err := Generate(Small(7))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if got := len(p.RandomTargets(rng, 0)); got != 1 {
		t.Errorf("density 0 -> %d targets, want 1 (minimum)", got)
	}
	if got := len(p.RandomTargets(rng, 1)); got != len(p.LAN) {
		t.Errorf("density 1 -> %d targets, want %d", got, len(p.LAN))
	}
	half := p.RandomTargets(rng, 0.5)
	if len(half) != 9 { // round(0.5 * 17)
		t.Errorf("density .5 -> %d targets, want 9", len(half))
	}
	seen := map[graph.NodeID]bool{}
	for _, v := range half {
		if seen[v] {
			t.Fatal("duplicate target")
		}
		seen[v] = true
	}
}

// Property: generated platforms are strongly usable for the experiment:
// every node is reachable from the source (links are full duplex) and
// edge costs respect the configured level ranges.
func TestGenerateProperties(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Small(seed)
		p, err := Generate(cfg)
		if err != nil {
			return false
		}
		seen := p.G.Reachable(p.Source)
		for _, v := range p.G.ActiveNodes() {
			if !seen[v] {
				t.Logf("seed %d: node %s unreachable", seed, p.G.Name(v))
				return false
			}
		}
		lo, hi := cfg.LANCost[0], cfg.UplinkCost[1]
		for _, id := range p.G.ActiveEdges() {
			c := p.G.Edge(id).Cost
			if c < lo-1e-9 || c > hi+1e-9 {
				t.Logf("seed %d: cost %v outside [%v, %v]", seed, c, lo, hi)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
