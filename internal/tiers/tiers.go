// Package tiers generates random hierarchical network topologies in the
// style of the Tiers generator (Calvert, Doar, Zegura) that the paper
// uses for its simulation study: a WAN core, MAN rings hanging off it,
// and LAN hosts at the edge, with per-level link speeds. The paper's
// experiments draw multicast targets uniformly among the LAN hosts.
//
// The original Tiers tool is not redistributable here; this generator
// reproduces the statistical shape the experiments need — sparse
// hierarchical connectivity and heterogeneous per-level costs — with
// deterministic seeding (see DESIGN.md, substitutions table).
package tiers

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Config parameterises a generated platform. Costs are the time to
// transfer one unit-size message over a link of that level, drawn
// uniformly from the given [min, max] interval; every physical link is
// full duplex (two directed edges of equal cost).
type Config struct {
	Seed          int64
	WANNodes      int
	MANs          int
	MANNodes      int // nodes per MAN
	LANHosts      int // total LAN hosts, spread over the MAN nodes
	ExtraWANLinks int // redundancy links beyond the WAN spanning tree
	ExtraMANLinks int // redundancy links per MAN

	WANCost    [2]float64
	MANCost    [2]float64
	UplinkCost [2]float64 // MAN gateway <-> WAN
	LANCost    [2]float64 // host <-> MAN node
}

// Small is the paper's "small" platform type: 30 nodes, 17 of them LAN
// hosts.
func Small(seed int64) Config {
	return Config{
		Seed:     seed,
		WANNodes: 4, MANs: 3, MANNodes: 3, LANHosts: 17,
		ExtraWANLinks: 2, ExtraMANLinks: 1,
		WANCost:    [2]float64{10, 60},
		MANCost:    [2]float64{20, 120},
		UplinkCost: [2]float64{40, 200},
		LANCost:    [2]float64{10, 40},
	}
}

// Big is the paper's "big" platform type: 65 nodes, 47 of them LAN
// hosts.
func Big(seed int64) Config {
	cfg := Small(seed)
	cfg.WANNodes, cfg.MANs, cfg.MANNodes, cfg.LANHosts = 6, 4, 3, 47
	return cfg
}

// Platform is a generated hierarchical topology.
type Platform struct {
	G      *graph.Graph
	Source graph.NodeID // a WAN core node, as in the paper's Figure 12
	WAN    []graph.NodeID
	MAN    []graph.NodeID
	LAN    []graph.NodeID
}

// Generate builds the platform for the given configuration. The same
// configuration (including seed) always yields the same platform.
func Generate(cfg Config) (*Platform, error) {
	if cfg.WANNodes < 1 || cfg.MANs < 0 || cfg.MANNodes < 1 && cfg.MANs > 0 || cfg.LANHosts < 0 {
		return nil, fmt.Errorf("tiers: invalid shape %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cost := func(r [2]float64) float64 {
		if r[1] <= r[0] {
			return r[0]
		}
		return r[0] + rng.Float64()*(r[1]-r[0])
	}
	g := graph.New()
	p := &Platform{G: g}

	for i := 0; i < cfg.WANNodes; i++ {
		p.WAN = append(p.WAN, g.AddNode(fmt.Sprintf("wan%d", i)))
	}
	// WAN: random spanning tree plus redundancy.
	for i := 1; i < len(p.WAN); i++ {
		g.AddLink(p.WAN[rng.Intn(i)], p.WAN[i], cost(cfg.WANCost))
	}
	addExtra(g, rng, p.WAN, cfg.ExtraWANLinks, func() float64 { return cost(cfg.WANCost) })

	// MANs: random trees, gateways uplinked to random WAN nodes.
	for m := 0; m < cfg.MANs; m++ {
		var man []graph.NodeID
		for i := 0; i < cfg.MANNodes; i++ {
			man = append(man, g.AddNode(fmt.Sprintf("man%d_%d", m, i)))
		}
		for i := 1; i < len(man); i++ {
			g.AddLink(man[rng.Intn(i)], man[i], cost(cfg.MANCost))
		}
		addExtra(g, rng, man, cfg.ExtraMANLinks, func() float64 { return cost(cfg.MANCost) })
		g.AddLink(man[0], p.WAN[rng.Intn(len(p.WAN))], cost(cfg.UplinkCost))
		p.MAN = append(p.MAN, man...)
	}

	// LAN hosts: stars around the MAN nodes (or the WAN when no MANs).
	attach := p.MAN
	if len(attach) == 0 {
		attach = p.WAN
	}
	for i := 0; i < cfg.LANHosts; i++ {
		host := g.AddNode(fmt.Sprintf("lan%d", i))
		g.AddLink(attach[rng.Intn(len(attach))], host, cost(cfg.LANCost))
		p.LAN = append(p.LAN, host)
	}

	p.Source = p.WAN[0]
	return p, nil
}

// addExtra inserts up to n redundancy links between distinct random
// nodes that are not yet directly connected.
func addExtra(g *graph.Graph, rng *rand.Rand, nodes []graph.NodeID, n int, cost func() float64) {
	if len(nodes) < 2 {
		return
	}
	for added, attempts := 0, 0; added < n && attempts < 20*n+20; attempts++ {
		a := nodes[rng.Intn(len(nodes))]
		b := nodes[rng.Intn(len(nodes))]
		if a == b {
			continue
		}
		if _, dup := g.FindEdge(a, b); dup {
			continue
		}
		g.AddLink(a, b, cost())
		added++
	}
}

// RandomTargets draws a multicast target set of the given density from
// the LAN hosts: max(1, round(density*|LAN|)) distinct hosts. The rng
// lets callers draw several target sets from one platform, as the
// paper's Figure 11 sweep does.
func (p *Platform) RandomTargets(rng *rand.Rand, density float64) []graph.NodeID {
	if len(p.LAN) == 0 {
		return nil
	}
	n := int(density*float64(len(p.LAN)) + 0.5)
	if n < 1 {
		n = 1
	}
	if n > len(p.LAN) {
		n = len(p.LAN)
	}
	perm := rng.Perm(len(p.LAN))
	targets := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		targets[i] = p.LAN[perm[i]]
	}
	return targets
}
