package tree

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func classify(t *testing.T, g *graph.Graph, root graph.NodeID) *graph.TreeView {
	t.Helper()
	var c graph.Classifier
	view := c.Classify(g, root)
	if !view.IsTree() {
		t.Fatalf("platform did not classify as a tree")
	}
	return view
}

func TestSteadyPeriodStar(t *testing.T) {
	// Star: hub -> leaves with costs 1, 2, 3. Broadcast period is the
	// hub's send-port occupation 1+2+3 = 6; every receive port is below
	// that. Scatter is identical (one target per leaf edge).
	g := graph.New()
	hub := g.AddNode("hub")
	var leaves []graph.NodeID
	for i := 0; i < 3; i++ {
		leaf := g.AddNode(string(rune('a' + i)))
		g.AddLink(hub, leaf, float64(i+1))
		leaves = append(leaves, leaf)
	}
	view := classify(t, g, hub)
	load := make([]float64, g.NumEdges())

	got := SteadyPeriod(g, view, leaves, false, load, nil)
	if got != 6 {
		t.Errorf("broadcast period = %v, want 6", got)
	}
	for _, leaf := range leaves {
		if l := load[view.ParentEdge[leaf]]; l != 1 {
			t.Errorf("load on edge to %v = %v, want 1", leaf, l)
		}
	}
	if got := SteadyPeriod(g, view, leaves, true, load, nil); got != 6 {
		t.Errorf("scatter period = %v, want 6", got)
	}

	// Multicast to the two cheap leaves: send port 1+2 = 3, and the
	// unused edge carries no load.
	got = SteadyPeriod(g, view, leaves[:2], false, load, nil)
	if got != 3 {
		t.Errorf("multicast period = %v, want 3", got)
	}
	if l := load[view.ParentEdge[leaves[2]]]; l != 0 {
		t.Errorf("unused edge load = %v, want 0", l)
	}
}

func TestSteadyPeriodChain(t *testing.T) {
	// Chain s -2-> a -3-> b. Broadcast: a both receives (occupation 2)
	// and forwards (occupation 3), so the period is 3. Multicast to a
	// alone uses only the first edge: period 2.
	g := graph.New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddLink(s, a, 2)
	g.AddLink(a, b, 3)
	view := classify(t, g, s)

	if got := SteadyPeriod(g, view, []graph.NodeID{a, b}, false, nil, nil); got != 3 {
		t.Errorf("broadcast period = %v, want 3", got)
	}
	if got := SteadyPeriod(g, view, []graph.NodeID{a}, false, nil, nil); got != 2 {
		t.Errorf("multicast-to-a period = %v, want 2", got)
	}

	// Scatter to {a, b}: both messages cross s->a, so its occupation is
	// 2*2 = 4, above a's forwarding occupation 3.
	load := make([]float64, g.NumEdges())
	if got := SteadyPeriod(g, view, []graph.NodeID{a, b}, true, load, nil); got != 4 {
		t.Errorf("scatter period = %v, want 4", got)
	}
	if load[view.ParentEdge[a]] != 2 || load[view.ParentEdge[b]] != 1 {
		t.Errorf("scatter loads = %v, want 2 on s->a and 1 on a->b", load)
	}
}

func TestSteadyPeriodReceiveBound(t *testing.T) {
	// A single expensive leaf edge makes the receive port dominate:
	// hub -10-> a, hub -1-> b. Broadcast period is max(send 11,
	// receive 10) = 11; multicast to a alone is 10, set by a's receive
	// port, not the hub's send port.
	g := graph.New()
	hub := g.AddNode("hub")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddLink(hub, a, 10)
	g.AddLink(hub, b, 1)
	view := classify(t, g, hub)

	if got := SteadyPeriod(g, view, []graph.NodeID{a, b}, false, nil, nil); got != 11 {
		t.Errorf("broadcast period = %v, want 11", got)
	}
	if got := SteadyPeriod(g, view, []graph.NodeID{a}, false, nil, nil); got != 10 {
		t.Errorf("multicast period = %v, want 10", got)
	}
}

func TestSteadyPeriodUnreachable(t *testing.T) {
	// b has only an outgoing arc toward the tree, so it is unreachable
	// from s: infeasible, like the LPs report.
	g := graph.New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddLink(s, a, 1)
	g.AddEdge(b, a, 1)
	view := classify(t, g, s)
	if got := SteadyPeriod(g, view, []graph.NodeID{a, b}, false, nil, nil); !math.IsInf(got, 1) {
		t.Errorf("period = %v, want +Inf for unreachable target", got)
	}
}

func TestSteadyPeriodScratchReuse(t *testing.T) {
	// The same scratch must serve growing platforms and leave no stale
	// state behind between calls.
	var sc RateScratch
	g := graph.New()
	s := g.AddNode("s")
	prev := s
	var targets []graph.NodeID
	var c graph.Classifier
	for i := 0; i < 6; i++ {
		v := g.AddNode(string(rune('a' + i)))
		g.AddLink(prev, v, 1)
		targets = append(targets, v)
		prev = v

		view := c.Classify(g, s)
		if !view.IsTree() {
			t.Fatal("chain should classify as tree")
		}
		want := 1.0 // unit chain broadcast: every port occupation is 1
		if got := SteadyPeriod(g, view, targets, false, nil, &sc); got != want {
			t.Fatalf("n=%d: period = %v, want %v", i+2, got, want)
		}
		// Scatter down a chain: the first edge carries all i+1 targets.
		if got := SteadyPeriod(g, view, targets, true, nil, &sc); got != float64(i+1) {
			t.Fatalf("n=%d: scatter period = %v, want %v", i+2, got, i+1)
		}
	}
}
