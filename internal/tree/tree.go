// Package tree implements multicast trees and the exact solvers built
// on them: the one-port period metric, an exhaustive best-single-tree
// search (the COMPACT-MULTICAST optimum for S = 2), an exact directed
// Steiner arborescence solver, and the weighted tree-packing linear
// program of Theorem 4 solved by column generation, which yields the
// true optimal steady-state multicast throughput on small instances.
//
// Everything in this package is exponential in the number of targets or
// edges — necessarily so, since the paper proves these problems
// NP-hard — and is meant for small instances and as a test oracle for
// the polynomial heuristics in internal/heur.
package tree

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Tree is a multicast arborescence: a set of edges forming a tree
// rooted at Root in which every tree node other than the root has
// exactly one parent.
type Tree struct {
	Root  graph.NodeID
	Edges []int // platform edge IDs
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	return &Tree{Root: t.Root, Edges: append([]int(nil), t.Edges...)}
}

// Nodes returns the set of nodes touched by the tree (root included)
// as a mask indexed by NodeID.
func (t *Tree) Nodes(g *graph.Graph) []bool {
	in := make([]bool, g.NumNodes())
	in[t.Root] = true
	for _, id := range t.Edges {
		e := g.Edge(id)
		in[e.From] = true
		in[e.To] = true
	}
	return in
}

// Parent returns, for every node, the edge ID leading to it in the
// tree, or -1 (for the root and for nodes outside the tree).
func (t *Tree) Parent(g *graph.Graph) []int {
	parent := make([]int, g.NumNodes())
	for i := range parent {
		parent[i] = -1
	}
	for _, id := range t.Edges {
		parent[g.Edge(id).To] = id
	}
	return parent
}

// Children returns, for every node, the IDs of its child edges in the
// tree, ordered by edge ID.
func (t *Tree) Children(g *graph.Graph) [][]int {
	ch := make([][]int, g.NumNodes())
	edges := append([]int(nil), t.Edges...)
	sort.Ints(edges)
	for _, id := range edges {
		e := g.Edge(id)
		ch[e.From] = append(ch[e.From], id)
	}
	return ch
}

// Validate checks that t is an arborescence rooted at source covering
// every target, made of active edges of g.
func (t *Tree) Validate(g *graph.Graph, source graph.NodeID, targets []graph.NodeID) error {
	if t.Root != source {
		return fmt.Errorf("tree: root %s is not the source %s", g.Name(t.Root), g.Name(source))
	}
	parent := make(map[graph.NodeID]int, len(t.Edges))
	for _, id := range t.Edges {
		if !g.EdgeActive(id) {
			return fmt.Errorf("tree: edge %d is inactive", id)
		}
		e := g.Edge(id)
		if e.To == source {
			return fmt.Errorf("tree: edge %d enters the root", id)
		}
		if _, dup := parent[e.To]; dup {
			return fmt.Errorf("tree: node %s has two parents", g.Name(e.To))
		}
		parent[e.To] = id
	}
	// Every edge must hang off the root: walk up from each edge tail.
	for _, id := range t.Edges {
		v := g.Edge(id).From
		steps := 0
		for v != source {
			up, ok := parent[v]
			if !ok {
				return fmt.Errorf("tree: edge %d is disconnected from the root", id)
			}
			v = g.Edge(up).From
			if steps++; steps > len(t.Edges) {
				return fmt.Errorf("tree: cycle detected")
			}
		}
	}
	in := t.Nodes(g)
	for _, tgt := range targets {
		if !in[tgt] {
			return fmt.Errorf("tree: target %s not covered", g.Name(tgt))
		}
	}
	return nil
}

// SendLoad returns the time node v spends sending per message: the sum
// of its tree out-edge costs (the metric of Section 6 of the paper).
func (t *Tree) SendLoad(g *graph.Graph, v graph.NodeID) float64 {
	total := 0.0
	for _, id := range t.Edges {
		if e := g.Edge(id); e.From == v {
			total += e.Cost
		}
	}
	return total
}

// RecvLoad returns the time node v spends receiving per message: the
// cost of its parent edge (0 for the root).
func (t *Tree) RecvLoad(g *graph.Graph, v graph.NodeID) float64 {
	for _, id := range t.Edges {
		if e := g.Edge(id); e.To == v {
			return e.Cost
		}
	}
	return 0
}

// Period returns the steady-state period of the tree under the
// one-port model: the maximum, over all tree nodes, of the send and
// receive occupation per message. Pipelined over successive messages,
// the tree sustains one multicast every Period time units (the K = 1
// certificate of Theorem 1).
func (t *Tree) Period(g *graph.Graph) float64 {
	send := make(map[graph.NodeID]float64)
	period := 0.0
	for _, id := range t.Edges {
		e := g.Edge(id)
		send[e.From] += e.Cost
		if e.Cost > period {
			period = e.Cost // receive occupation of e.To
		}
	}
	for _, s := range send {
		if s > period {
			period = s
		}
	}
	return period
}

// Throughput returns 1/Period (0 for an empty tree).
func (t *Tree) Throughput(g *graph.Graph) float64 {
	p := t.Period(g)
	if p <= 0 {
		return 0
	}
	return 1 / p
}

// Cost returns the total weight of the tree under w (the Steiner
// objective).
func (t *Tree) Cost(g *graph.Graph, w graph.WeightFunc) float64 {
	total := 0.0
	for _, id := range t.Edges {
		total += w(g.Edge(id))
	}
	return total
}

// Prune removes branches that serve no target: it repeatedly deletes
// leaf edges whose head is neither a target nor an interior node.
func (t *Tree) Prune(g *graph.Graph, targets []graph.NodeID) {
	keep := make(map[graph.NodeID]bool, len(targets))
	for _, tgt := range targets {
		keep[tgt] = true
	}
	for {
		fanout := make(map[graph.NodeID]int)
		for _, id := range t.Edges {
			fanout[g.Edge(id).From]++
		}
		kept := t.Edges[:0]
		removed := false
		for _, id := range t.Edges {
			head := g.Edge(id).To
			if fanout[head] == 0 && !keep[head] {
				removed = true
				continue
			}
			kept = append(kept, id)
		}
		t.Edges = kept
		if !removed {
			return
		}
	}
}
