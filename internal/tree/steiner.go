package tree

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
)

// MaxSteinerTerminals bounds the subset DP of MinSteinerArborescence
// (3^k states over terminal subsets).
const MaxSteinerTerminals = 16

// MinSteinerArborescence computes a minimum-total-weight arborescence
// rooted at root that spans every terminal, under the non-negative edge
// weights w. This is the exact directed Steiner tree (Dreyfus–Wagner
// style DP over terminal subsets), used as the pricing oracle of the
// tree-packing column generation and by the Steiner-based analysis of
// Section 6. Exponential in len(terminals); guarded by
// MaxSteinerTerminals.
func MinSteinerArborescence(g *graph.Graph, root graph.NodeID, terminals []graph.NodeID, w graph.WeightFunc) (*Tree, float64, error) {
	// Normalise the terminal list: drop the root and duplicates.
	var ts []graph.NodeID
	seen := make(map[graph.NodeID]bool)
	for _, t := range terminals {
		if t != root && !seen[t] {
			seen[t] = true
			ts = append(ts, t)
		}
	}
	k := len(ts)
	if k == 0 {
		return &Tree{Root: root}, 0, nil
	}
	if k > MaxSteinerTerminals {
		return nil, 0, ErrTooLarge
	}
	if !g.ReachesAll(root, ts) {
		return nil, 0, errors.New("tree: some terminal unreachable from the root")
	}

	// All-pairs shortest paths under w (per-source Dijkstra).
	n := g.NumNodes()
	dist := make([][]float64, n)
	parent := make([][]int, n)
	for v := 0; v < n; v++ {
		if !g.Active(graph.NodeID(v)) {
			continue
		}
		dist[v], parent[v] = g.ShortestPaths(graph.NodeID(v), w)
	}

	full := (1 << k) - 1
	// dp[S][v]: min weight of an arborescence rooted at v spanning the
	// terminals of S. inner[S][v]: same, restricted to trees where v has
	// out-degree >= 2 or sits on a terminal split.
	dp := make([][]float64, full+1)
	walkTo := make([][]int32, full+1)
	splitOf := make([][]int32, full+1)
	for S := 1; S <= full; S++ {
		dp[S] = make([]float64, n)
		walkTo[S] = make([]int32, n)
		splitOf[S] = make([]int32, n)
	}
	for i, t := range ts {
		S := 1 << i
		for v := 0; v < n; v++ {
			if dist[v] == nil {
				dp[S][v] = math.Inf(1)
				continue
			}
			dp[S][v] = dist[v][t]
			walkTo[S][v] = int32(t)
			splitOf[S][v] = -1
		}
	}
	inner := make([]float64, n)
	innerSplit := make([]int32, n)
	for S := 1; S <= full; S++ {
		if S&(S-1) == 0 {
			continue // singleton handled above
		}
		for v := 0; v < n; v++ {
			inner[v] = math.Inf(1)
			innerSplit[v] = -1
		}
		for A := (S - 1) & S; A > 0; A = (A - 1) & S {
			B := S &^ A
			if A > B {
				continue // each split once
			}
			for v := 0; v < n; v++ {
				if c := dp[A][v] + dp[B][v]; c < inner[v] {
					inner[v] = c
					innerSplit[v] = int32(A)
				}
			}
		}
		for v := 0; v < n; v++ {
			best := math.Inf(1)
			bestU := int32(-1)
			if dist[v] != nil {
				for u := 0; u < n; u++ {
					if math.IsInf(inner[u], 1) || math.IsInf(dist[v][u], 1) {
						continue
					}
					if c := dist[v][u] + inner[u]; c < best {
						best = c
						bestU = int32(u)
					}
				}
			}
			dp[S][v] = best
			walkTo[S][v] = bestU
			if bestU >= 0 {
				splitOf[S][v] = innerSplit[bestU]
			} else {
				splitOf[S][v] = -1
			}
		}
	}
	value := dp[full][root]
	if math.IsInf(value, 1) {
		return nil, 0, errors.New("tree: no Steiner arborescence exists")
	}

	// Reconstruct the union of chosen paths, then extract a clean
	// arborescence from it (a BFS tree of the union costs no more, and
	// by optimality exactly the same).
	union := make(map[int]bool)
	emitPath := func(v, u graph.NodeID) {
		for _, id := range g.WalkBack(parent[v], u) {
			union[id] = true
		}
	}
	var emit func(S int, v graph.NodeID)
	emit = func(S int, v graph.NodeID) {
		if S&(S-1) == 0 {
			emitPath(v, graph.NodeID(walkTo[S][v]))
			return
		}
		u := graph.NodeID(walkTo[S][v])
		emitPath(v, u)
		A := int(splitOf[S][v])
		if A <= 0 || A&S != A {
			panic(fmt.Sprintf("tree: corrupt split table S=%b A=%d", S, A))
		}
		emit(A, u)
		emit(S&^A, u)
	}
	emit(full, root)

	t := bfsTreeOf(g, root, union)
	t.Prune(g, ts)
	if err := t.Validate(g, root, ts); err != nil {
		return nil, 0, fmt.Errorf("tree: steiner reconstruction: %w", err)
	}
	return t, t.Cost(g, w), nil
}

// bfsTreeOf extracts a BFS arborescence of the edge set union rooted at
// root.
func bfsTreeOf(g *graph.Graph, root graph.NodeID, union map[int]bool) *Tree {
	out := make(map[graph.NodeID][]int)
	for id := range union {
		e := g.Edge(id)
		out[e.From] = append(out[e.From], id)
	}
	t := &Tree{Root: root}
	seen := map[graph.NodeID]bool{root: true}
	queue := []graph.NodeID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, id := range out[v] {
			to := g.Edge(id).To
			if seen[to] {
				continue
			}
			seen[to] = true
			t.Edges = append(t.Edges, id)
			queue = append(queue, to)
		}
	}
	return t
}
