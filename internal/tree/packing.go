package tree

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/lp"
)

// MaxPackTargets bounds the target count accepted by PackOptimal (the
// pricing oracle is exponential in it).
const MaxPackTargets = 14

// WeightedTree is a multicast tree with the rate (multicasts per time
// unit) routed through it.
type WeightedTree struct {
	Tree *Tree
	Rate float64
}

// Packing is an optimal weighted tree packing: the solution of the
// Series-of-Multicasts LP of Theorem 4.
type Packing struct {
	Trees      []WeightedTree
	Throughput float64
	Iterations int // column-generation rounds
	PoolSize   int // total trees priced into the master
}

// Period returns 1/Throughput.
func (p *Packing) Period() float64 {
	if p.Throughput <= 0 {
		return math.Inf(1)
	}
	return 1 / p.Throughput
}

// PackOptimal computes the exact optimal steady-state multicast
// throughput: the maximum of sum_k y_k over weighted multicast trees
// subject to the one-port occupation constraints (Theorem 4 shows this
// LP characterises the optimum, with at most 2|E| trees carrying
// weight). The exponentially many columns are handled by column
// generation: the restricted master is solved with the simplex of
// internal/lp, and the pricing problem — find the multicast tree of
// minimum dual-weighted cost — is the exact Steiner arborescence DP.
//
// Exponential in len(targets) (the paper proves the problem NP-hard);
// guarded by MaxPackTargets.
func PackOptimal(g *graph.Graph, source graph.NodeID, targets []graph.NodeID) (*Packing, error) {
	if len(targets) == 0 {
		return nil, errors.New("tree: no targets")
	}
	if len(targets) > MaxPackTargets {
		return nil, ErrTooLarge
	}
	if !g.ReachesAll(source, targets) {
		return nil, errors.New("tree: some target unreachable from the source")
	}

	first, _, err := MinSteinerArborescence(g, source, targets, graph.CostWeight)
	if err != nil {
		return nil, err
	}
	nodes := g.ActiveNodes()
	master := newPackMaster(g, nodes)
	pool := []*Tree{first}
	inPool := map[string]bool{treeKey(first): true}
	master.addColumn(first)

	ws := lp.NewWorkspace()
	var basis lp.Basis
	const maxRounds = 1000
	for round := 1; ; round++ {
		if round > maxRounds {
			return nil, errors.New("tree: column generation did not converge")
		}
		obj, rates, alpha, beta, err := master.solve(ws, &basis)
		if err != nil {
			return nil, err
		}
		// Pricing: the entering tree minimises
		// sum_{(u,v) in tree} c(u,v) * (beta(u) + alpha(v)).
		w := func(e graph.Edge) float64 {
			d := beta[e.From] + alpha[e.To]
			if d < 0 {
				d = 0
			}
			return e.Cost * d
		}
		cand, cost, err := MinSteinerArborescence(g, source, targets, w)
		if err != nil {
			return nil, err
		}
		if cost >= 1-1e-7 || inPool[treeKey(cand)] {
			// No improving column: the master is optimal.
			pk := &Packing{Throughput: obj, Iterations: round, PoolSize: len(pool)}
			for i, y := range rates {
				if y > 1e-9 {
					pk.Trees = append(pk.Trees, WeightedTree{Tree: pool[i].Clone(), Rate: y})
				}
			}
			sort.Slice(pk.Trees, func(a, b int) bool { return pk.Trees[a].Rate > pk.Trees[b].Rate })
			return pk, nil
		}
		pool = append(pool, cand)
		inPool[treeKey(cand)] = true
		master.addColumn(cand)
	}
}

// packMaster is the restricted master LP over a growing tree pool:
// maximise sum y_k subject to per-node receive and send occupations
// <= 1. Rows are laid down once; every priced-in tree joins as a
// column and each round re-solves warm from the previous basis.
type packMaster struct {
	g       *graph.Graph
	nodes   []graph.NodeID
	m       *lp.Model
	recvRow map[graph.NodeID]int
	sendRow map[graph.NodeID]int
	yVar    []int
}

func newPackMaster(g *graph.Graph, nodes []graph.NodeID) *packMaster {
	pm := &packMaster{
		g:       g,
		nodes:   nodes,
		m:       lp.NewModel(),
		recvRow: make(map[graph.NodeID]int, len(nodes)),
		sendRow: make(map[graph.NodeID]int, len(nodes)),
	}
	pm.m.Maximize()
	for _, v := range nodes {
		pm.recvRow[v] = pm.m.AddRow(lp.LE, 1)
		pm.sendRow[v] = pm.m.AddRow(lp.LE, 1)
	}
	return pm
}

func (pm *packMaster) addColumn(t *Tree) {
	entries := make([]lp.RowCoef, 0, 2*len(t.Edges))
	for _, id := range t.Edges {
		e := pm.g.Edge(id)
		entries = append(entries, lp.RowCoef{Row: pm.sendRow[e.From], Coef: e.Cost})
		entries = append(entries, lp.RowCoef{Row: pm.recvRow[e.To], Coef: e.Cost})
	}
	pm.yVar = append(pm.yVar, pm.m.AddColumn(1, fmt.Sprintf("y%d", len(pm.yVar)), entries...))
}

// solve re-solves the master (warm from *basis when available) and
// returns the objective, the tree rates, and the duals alpha (receive
// rows) and beta (send rows) indexed by node.
func (pm *packMaster) solve(ws *lp.Workspace, basis *lp.Basis) (float64, []float64, []float64, []float64, error) {
	var sol *lp.Solution
	var err error
	if basis.Empty() {
		sol, err = pm.m.SolveWith(ws)
	} else {
		sol, err = pm.m.SolveFrom(ws, *basis)
	}
	if err != nil {
		return 0, nil, nil, nil, err
	}
	if sol.Status != lp.Optimal {
		return 0, nil, nil, nil, fmt.Errorf("tree: master LP status %v", sol.Status)
	}
	*basis = sol.Basis
	rates := make([]float64, len(pm.yVar))
	for i, v := range pm.yVar {
		rates[i] = math.Max(0, sol.X[v])
	}
	alpha := make([]float64, pm.g.NumNodes())
	beta := make([]float64, pm.g.NumNodes())
	for _, v := range pm.nodes {
		alpha[v] = math.Max(0, sol.Dual[pm.recvRow[v]])
		beta[v] = math.Max(0, sol.Dual[pm.sendRow[v]])
	}
	return sol.Objective, rates, alpha, beta, nil
}

func treeKey(t *Tree) string {
	ids := append([]int(nil), t.Edges...)
	sort.Ints(ids)
	var sb strings.Builder
	for _, id := range ids {
		sb.WriteString(strconv.Itoa(id))
		sb.WriteByte(',')
	}
	return sb.String()
}
