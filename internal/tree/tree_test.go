package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// relay5 is the Figure 5 platform: S -> A (1), A -> t0,t1,t2 (1/3).
func relay5(t *testing.T) (*graph.Graph, graph.NodeID, []graph.NodeID) {
	t.Helper()
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("A")
	ts := g.AddNodes("t", 3)
	g.AddEdge(s, a, 1)
	for _, v := range ts {
		g.AddEdge(a, v, 1.0/3)
	}
	return g, s, ts
}

func TestTreeMetrics(t *testing.T) {
	g, s, ts := relay5(t)
	tr := &Tree{Root: s, Edges: []int{0, 1, 2, 3}}
	if err := tr.Validate(g, s, ts); err != nil {
		t.Fatal(err)
	}
	a, _ := g.NodeByName("A")
	if got := tr.SendLoad(g, s); !approx(got, 1, 1e-12) {
		t.Errorf("SendLoad(S) = %v", got)
	}
	if got := tr.SendLoad(g, a); !approx(got, 1, 1e-12) {
		t.Errorf("SendLoad(A) = %v", got)
	}
	if got := tr.RecvLoad(g, a); !approx(got, 1, 1e-12) {
		t.Errorf("RecvLoad(A) = %v", got)
	}
	if got := tr.RecvLoad(g, s); got != 0 {
		t.Errorf("RecvLoad(S) = %v", got)
	}
	if got := tr.Period(g); !approx(got, 1, 1e-12) {
		t.Errorf("Period = %v, want 1", got)
	}
	if got := tr.Throughput(g); !approx(got, 1, 1e-12) {
		t.Errorf("Throughput = %v", got)
	}
	if got := tr.Cost(g, graph.CostWeight); !approx(got, 2, 1e-12) {
		t.Errorf("Cost = %v, want 2", got)
	}
	parent := tr.Parent(g)
	if parent[a] != 0 || parent[s] != -1 {
		t.Errorf("Parent = %v", parent)
	}
	ch := tr.Children(g)
	if len(ch[a]) != 3 || len(ch[s]) != 1 {
		t.Errorf("Children = %v", ch)
	}
}

func TestValidateRejects(t *testing.T) {
	g, s, ts := relay5(t)
	cases := map[string]*Tree{
		"wrong root":    {Root: ts[0], Edges: []int{0}},
		"two parents":   {Root: s, Edges: []int{0, 1, 2, 3, g.AddEdge(s, ts[0], 1)}},
		"disconnected":  {Root: s, Edges: []int{1, 2, 3}},
		"missing cover": {Root: s, Edges: []int{0, 1, 2}},
	}
	for name, tr := range cases {
		if err := tr.Validate(g, s, ts); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	g.Deactivate(ts[2])
	tr := &Tree{Root: s, Edges: []int{0, 1, 2, 3}}
	if err := tr.Validate(g, s, ts[:2]); err == nil {
		t.Error("inactive edge accepted")
	}
}

func TestPrune(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	e1 := g.AddEdge(s, a, 1)
	e2 := g.AddEdge(a, b, 1) // target branch
	e3 := g.AddEdge(a, c, 1) // useless branch
	tr := &Tree{Root: s, Edges: []int{e1, e2, e3}}
	tr.Prune(g, []graph.NodeID{b})
	if len(tr.Edges) != 2 {
		t.Fatalf("pruned edges = %v", tr.Edges)
	}
	for _, id := range tr.Edges {
		if id == e3 {
			t.Fatal("useless branch kept")
		}
	}
	// Pruning must cascade: if b were not a target, everything goes.
	tr2 := &Tree{Root: s, Edges: []int{e1, e2, e3}}
	tr2.Prune(g, nil)
	if len(tr2.Edges) != 0 {
		t.Fatalf("cascade prune left %v", tr2.Edges)
	}
}

func TestBestSingleTreeRelay(t *testing.T) {
	g, s, ts := relay5(t)
	tr, period, err := BestSingleTree(g, s, ts)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(period, 1, 1e-9) {
		t.Fatalf("period = %v, want 1", period)
	}
	if err := tr.Validate(g, s, ts); err != nil {
		t.Fatal(err)
	}
}

func TestBestSingleTreePrefersCheapRoute(t *testing.T) {
	// Two routes to the single target: direct (cost 3) and via a relay
	// (costs 1+1, bottleneck 1). The tree metric is minimax over port
	// loads, so the relay route wins.
	g := graph.New()
	s := g.AddNode("S")
	r := g.AddNode("r")
	x := g.AddNode("x")
	g.AddEdge(s, x, 3)
	g.AddEdge(s, r, 1)
	g.AddEdge(r, x, 1)
	tr, period, err := BestSingleTree(g, s, []graph.NodeID{x})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(period, 1, 1e-9) {
		t.Fatalf("period = %v, want 1", period)
	}
	if len(tr.Edges) != 2 {
		t.Fatalf("edges = %v", tr.Edges)
	}
}

func TestBestSingleTreeUnreachable(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	x := g.AddNode("x")
	_ = x
	if _, _, err := BestSingleTree(g, s, []graph.NodeID{x}); err == nil {
		t.Fatal("expected error")
	}
}

func TestSteinerSimplePath(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(s, a, 2)
	g.AddEdge(a, b, 3)
	g.AddEdge(s, b, 10)
	tr, cost, err := MinSteinerArborescence(g, s, []graph.NodeID{b}, graph.CostWeight)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(cost, 5, 1e-9) {
		t.Fatalf("cost = %v, want 5", cost)
	}
	if err := tr.Validate(g, s, []graph.NodeID{b}); err != nil {
		t.Fatal(err)
	}
}

func TestSteinerSharedTrunk(t *testing.T) {
	// Two terminals behind a shared trunk: the trunk must be counted
	// once (Steiner), not twice (shortest-path union would also give 1+
	// 1+5 here, but a naive double-count would claim 12).
	g := graph.New()
	s := g.AddNode("S")
	h := g.AddNode("h")
	t1 := g.AddNode("t1")
	t2 := g.AddNode("t2")
	g.AddEdge(s, h, 5)
	g.AddEdge(h, t1, 1)
	g.AddEdge(h, t2, 1)
	_, cost, err := MinSteinerArborescence(g, s, []graph.NodeID{t1, t2}, graph.CostWeight)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(cost, 7, 1e-9) {
		t.Fatalf("cost = %v, want 7", cost)
	}
}

func TestSteinerRootTerminalAndEmpty(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	tr, cost, err := MinSteinerArborescence(g, s, []graph.NodeID{s}, graph.CostWeight)
	if err != nil || cost != 0 || len(tr.Edges) != 0 {
		t.Fatalf("root-only steiner: %v %v %v", tr, cost, err)
	}
}

// bruteSteiner enumerates all edge subsets and returns the minimum cost
// of a valid covering arborescence.
func bruteSteiner(g *graph.Graph, root graph.NodeID, terminals []graph.NodeID, w graph.WeightFunc) float64 {
	edges := g.ActiveEdges()
	best := math.Inf(1)
	for mask := 0; mask < 1<<len(edges); mask++ {
		var sub []int
		for i, id := range edges {
			if mask&(1<<i) != 0 {
				sub = append(sub, id)
			}
		}
		tr := &Tree{Root: root, Edges: sub}
		if tr.Validate(g, root, terminals) != nil {
			continue
		}
		if c := tr.Cost(g, w); c < best {
			best = c
		}
	}
	return best
}

func TestSteinerMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		n := 3 + rng.Intn(3)
		ids := g.AddNodes("n", n)
		for len(g.ActiveEdges()) < 2*n && len(g.ActiveEdges()) < 11 {
			a := ids[rng.Intn(n)]
			b := ids[rng.Intn(n)]
			if a != b {
				if _, dup := g.FindEdge(a, b); !dup {
					g.AddEdge(a, b, float64(1+rng.Intn(8))/2)
				}
			}
		}
		root := ids[0]
		var terminals []graph.NodeID
		for _, v := range ids[1:] {
			if rng.Intn(2) == 0 {
				terminals = append(terminals, v)
			}
		}
		if len(terminals) == 0 {
			terminals = ids[1:2]
		}
		if !g.ReachesAll(root, terminals) {
			return true
		}
		_, got, err := MinSteinerArborescence(g, root, terminals, graph.CostWeight)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want := bruteSteiner(g, root, terminals, graph.CostWeight)
		if !approx(got, want, 1e-9) {
			t.Logf("seed %d: DP %v vs brute %v", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPackOptimalChain(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(s, a, 1)
	g.AddEdge(a, b, 1)
	pk, err := PackOptimal(g, s, []graph.NodeID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(pk.Throughput, 1, 1e-7) {
		t.Fatalf("chain packing throughput = %v, want 1", pk.Throughput)
	}
}

func TestPackOptimalStar(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	ts := g.AddNodes("t", 3)
	for _, v := range ts {
		g.AddEdge(s, v, 1)
	}
	pk, err := PackOptimal(g, s, ts)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(pk.Throughput, 1.0/3, 1e-7) {
		t.Fatalf("star packing throughput = %v, want 1/3", pk.Throughput)
	}
}

func TestPackOptimalRelay(t *testing.T) {
	g, s, ts := relay5(t)
	pk, err := PackOptimal(g, s, ts)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(pk.Throughput, 1, 1e-7) {
		t.Fatalf("relay packing throughput = %v, want 1", pk.Throughput)
	}
	for _, wt := range pk.Trees {
		if err := wt.Tree.Validate(g, s, ts); err != nil {
			t.Errorf("packed tree invalid: %v", err)
		}
	}
}

func TestPackOptimalGuards(t *testing.T) {
	g := graph.New()
	s := g.AddNode("S")
	ts := g.AddNodes("t", MaxPackTargets+1)
	for _, v := range ts {
		g.AddEdge(s, v, 1)
	}
	if _, err := PackOptimal(g, s, ts); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if _, err := PackOptimal(g, s, nil); err == nil {
		t.Fatal("empty targets accepted")
	}
}

// Property: every tree in an optimal packing validates, the number of
// weighted trees respects Theorem 4's 2|E| bound, the packed load
// respects the one-port constraints, and the throughput of the packing
// is at least that of the best of its trees alone.
func TestPackingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		n := 3 + rng.Intn(4)
		ids := g.AddNodes("n", n)
		for i := 0; i < 3*n; i++ {
			a := ids[rng.Intn(n)]
			b := ids[rng.Intn(n)]
			if a != b {
				if _, dup := g.FindEdge(a, b); !dup {
					g.AddEdge(a, b, 0.25+rng.Float64())
				}
			}
		}
		src := ids[0]
		var targets []graph.NodeID
		for _, v := range ids[1:] {
			if rng.Intn(2) == 0 {
				targets = append(targets, v)
			}
		}
		if len(targets) == 0 {
			targets = ids[1:2]
		}
		if !g.ReachesAll(src, targets) {
			return true
		}
		pk, err := PackOptimal(g, src, targets)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(pk.Trees) > 2*len(g.ActiveEdges()) {
			t.Logf("seed %d: %d trees > 2|E|", seed, len(pk.Trees))
			return false
		}
		send := make([]float64, g.NumNodes())
		recv := make([]float64, g.NumNodes())
		bestSingle := 0.0
		for _, wt := range pk.Trees {
			if err := wt.Tree.Validate(g, src, targets); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if thr := wt.Tree.Throughput(g); thr > bestSingle {
				bestSingle = thr
			}
			for _, id := range wt.Tree.Edges {
				e := g.Edge(id)
				send[e.From] += wt.Rate * e.Cost
				recv[e.To] += wt.Rate * e.Cost
			}
		}
		for v := range send {
			if send[v] > 1+1e-6 || recv[v] > 1+1e-6 {
				t.Logf("seed %d: port overload at node %d", seed, v)
				return false
			}
		}
		if pk.Throughput < bestSingle-1e-6 {
			t.Logf("seed %d: packing %v below best tree %v", seed, pk.Throughput, bestSingle)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
