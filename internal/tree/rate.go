package tree

import (
	"math"

	"repro/internal/graph"
)

// Combinatorial steady-state optima on tree platforms. When the
// active platform classifies as a tree (graph.Classifier), every
// source->target flow is forced onto the unique tree path, so the
// steady-state LPs of internal/steady collapse to closed forms over
// the Steiner subtree spanned by the targets (DESIGN.md Section 12):
//
//   - Multicast-LB / Broadcast-EB: the optimistic loads are n(e) = 1
//     on every subtree edge, and the period is the worst one-port
//     occupation T* = max_v max(c(parent(v)), sum_children c(v->c)).
//   - Multicast-UB (scatter): each of the k(e) targets below edge e
//     crosses it separately, so n(e) = k(e) and the occupations are
//     weighted by those counts.
//
// Both are O(V + E) scans with no simplex, which is the whole point:
// on a tree the evaluator's fast path answers a bound in the time one
// LP pivot would take.

// RateScratch pools the per-call buffers of SteadyPeriod so a
// long-lived evaluator allocates nothing per evaluation. The zero
// value is ready to use.
type RateScratch struct {
	cnt  []int32   // per-node targets-in-subtree count
	send []float64 // per-node out-port occupation
}

// SteadyPeriod computes the optimal steady-state period of the
// one-port multicast on a tree platform: the Multicast-LB optimum when
// scatter is false, the Multicast-UB scatter optimum when scatter is
// true. view must classify g as a tree rooted at the multicast source
// (view.IsTree()); targets must be non-empty, active and distinct,
// and must not contain the root — the same contract steady.Problem
// enforces.
//
// load, when non-nil, must have length g.NumEdges(); it is zeroed and
// filled with the per-multicast edge loads n(e) of the optimum (1 on
// every Steiner-subtree edge for multicast, the subtree target count
// for scatter), matching the EdgeLoad convention of steady.Bound.
//
// The returned period is +Inf when some target is not reachable from
// the root — the same infeasibility convention as the LPs.
func SteadyPeriod(g *graph.Graph, view *graph.TreeView, targets []graph.NodeID, scatter bool, load []float64, sc *RateScratch) float64 {
	if sc == nil {
		sc = &RateScratch{}
	}
	n := g.NumNodes()
	if cap(sc.cnt) < n {
		sc.cnt = make([]int32, n)
	}
	cnt := sc.cnt[:n]
	for i := range cnt {
		cnt[i] = 0
	}
	for _, t := range targets {
		if t != view.Root && view.ParentEdge[t] == -1 {
			return math.Inf(1) // unreachable target: infeasible
		}
		cnt[t]++
	}
	if load != nil {
		for i := range load {
			load[i] = 0
		}
	}
	// Children before parents: reverse BFS order pushes each subtree's
	// target count up its parent arc.
	if cap(sc.send) < n {
		sc.send = make([]float64, n)
	}
	send := sc.send[:n]
	for i := range send {
		send[i] = 0
	}
	period := 0.0
	for i := len(view.Order) - 1; i > 0; i-- {
		v := view.Order[i]
		if cnt[v] == 0 {
			continue
		}
		id := view.ParentEdge[v]
		e := g.Edge(id)
		k := 1.0
		if scatter {
			k = float64(cnt[v])
		}
		if load != nil {
			load[id] = k
		}
		occ := e.Cost * k
		if occ > period {
			period = occ // receive port of v
		}
		send[e.From] += occ
		cnt[e.From] += cnt[v]
	}
	for _, v := range view.Order {
		if send[v] > period {
			period = send[v] // send port of v
		}
	}
	return period
}
