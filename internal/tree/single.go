package tree

import (
	"errors"
	"math"

	"repro/internal/graph"
)

// MaxSearchEdges bounds the instance size accepted by BestSingleTree.
// The search is exponential in the worst case (Theorem 1 proves the
// problem NP-hard even for a single tree), so it is restricted to small
// platforms.
const MaxSearchEdges = 64

// ErrTooLarge is returned by the exact solvers when the instance
// exceeds their exponential-search guards.
var ErrTooLarge = errors.New("tree: instance too large for exact search")

// BestSingleTree finds the multicast tree with the minimum one-port
// period (equivalently, maximum single-tree steady-state throughput) by
// branch-and-bound over arborescences. This is the exact optimum of
// COMPACT-MULTICAST with S = 2 (one tree allowed); the paper proves the
// problem NP-hard, so the search is exponential and guarded by
// MaxSearchEdges. Returns the best tree and its period, or an error if
// the targets are unreachable.
func BestSingleTree(g *graph.Graph, source graph.NodeID, targets []graph.NodeID) (*Tree, float64, error) {
	edges := g.ActiveEdges()
	if len(edges) > MaxSearchEdges {
		return nil, 0, ErrTooLarge
	}
	if !g.ReachesAll(source, targets) {
		return nil, 0, errors.New("tree: some target unreachable from the source")
	}
	isTarget := make([]bool, g.NumNodes())
	remaining := 0
	for _, t := range targets {
		if t != source && !isTarget[t] {
			isTarget[t] = true
			remaining++
		}
	}

	s := &singleSearch{
		g:        g,
		source:   source,
		isTarget: isTarget,
		excluded: make([]bool, g.NumEdges()),
		inTree:   make([]bool, g.NumNodes()),
		send:     make([]float64, g.NumNodes()),
		best:     math.Inf(1),
	}
	s.inTree[source] = true
	s.recurse(remaining, 0)
	if math.IsInf(s.best, 1) {
		return nil, 0, errors.New("tree: no covering tree found")
	}
	t := &Tree{Root: source, Edges: append([]int(nil), s.bestEdges...)}
	t.Prune(g, targets)
	return t, s.best, nil
}

type singleSearch struct {
	g         *graph.Graph
	source    graph.NodeID
	isTarget  []bool
	excluded  []bool
	inTree    []bool
	send      []float64
	stack     []int // edges of the current partial tree
	best      float64
	bestEdges []int
}

// frontier returns the smallest-ID usable edge from the current tree to
// a node outside it, or -1.
func (s *singleSearch) frontier() int {
	best := -1
	var buf []int
	for v, in := range s.inTree {
		if !in {
			continue
		}
		buf = s.g.OutEdges(graph.NodeID(v), buf[:0])
		for _, id := range buf {
			if !s.excluded[id] && !s.inTree[s.g.Edge(id).To] && (best < 0 || id < best) {
				best = id
			}
		}
	}
	return best
}

// coverable reports whether every remaining target is still reachable
// from the current tree through non-excluded edges.
func (s *singleSearch) coverable(remaining int) bool {
	if remaining == 0 {
		return true
	}
	seen := make([]bool, s.g.NumNodes())
	var stack []graph.NodeID
	for v, in := range s.inTree {
		if in {
			seen[v] = true
			stack = append(stack, graph.NodeID(v))
		}
	}
	found := 0
	var buf []int
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		buf = s.g.OutEdges(v, buf[:0])
		for _, id := range buf {
			to := s.g.Edge(id).To
			if s.excluded[id] || seen[to] {
				continue
			}
			seen[to] = true
			if s.isTarget[to] && !s.inTree[to] {
				if found++; found == remaining {
					return true
				}
			}
			stack = append(stack, to)
		}
	}
	return false
}

func (s *singleSearch) recurse(remaining int, period float64) {
	if period >= s.best-1e-12 {
		return
	}
	if remaining == 0 {
		s.best = period
		s.bestEdges = append(s.bestEdges[:0], s.stack...)
		return
	}
	if !s.coverable(remaining) {
		return
	}
	id := s.frontier()
	if id < 0 {
		return
	}
	e := s.g.Edge(id)

	// Branch 1: include the edge.
	s.send[e.From] += e.Cost
	s.inTree[e.To] = true
	s.stack = append(s.stack, id)
	newPeriod := math.Max(period, math.Max(s.send[e.From], e.Cost))
	rem := remaining
	if s.isTarget[e.To] {
		rem--
	}
	s.recurse(rem, newPeriod)
	s.stack = s.stack[:len(s.stack)-1]
	s.inTree[e.To] = false
	s.send[e.From] -= e.Cost

	// Branch 2: exclude it permanently.
	s.excluded[id] = true
	s.recurse(remaining, period)
	s.excluded[id] = false
}
