package lp

import (
	"math/rand"
	"testing"

	"repro/internal/testutil"
)

// dualTol is the tolerance for the duality properties: LP quantities
// here are O(10), so a relative testutil.Near at 1e-6 comfortably
// covers simplex round-off while still catching sign or indexing bugs.
const dualTol = 1e-6

// densify expands a model row into a dense coefficient vector.
func densify(m *Model, i int) []float64 {
	dense := make([]float64, m.NumVars())
	for _, t := range m.rows[i].terms {
		dense[t.Var] += t.Coef
	}
	return dense
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// checkPrimalFeasible asserts every row of the model holds at X within
// feasTol, and that X respects the implicit non-negativity bounds.
func checkPrimalFeasible(t *testing.T, m *Model, x []float64) {
	t.Helper()
	for j, v := range x {
		if v < -feasTol {
			t.Errorf("x[%d] = %v violates non-negativity", j, v)
		}
	}
	for i := range m.rows {
		ax := dot(densify(m, i), x)
		rhs := m.rows[i].rhs
		var residual float64
		switch m.rows[i].sense {
		case LE:
			residual = ax - rhs
		case GE:
			residual = rhs - ax
		case EQ:
			if residual = ax - rhs; residual < 0 {
				residual = -residual
			}
		}
		if residual > feasTol*(1+absf(rhs)) {
			t.Errorf("row %d (%v %v): a.x = %v, residual %v > feasTol", i, m.rows[i].sense, rhs, ax, residual-feasTol)
		}
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// checkStrongDuality asserts the duals price out the objective:
// y.b equals the optimal objective, and the duals are feasible for the
// dual program (correct signs, no profitable reduced cost).
func checkStrongDuality(t *testing.T, m *Model, sol *Solution) {
	t.Helper()
	b := make([]float64, len(m.rows))
	for i := range m.rows {
		b[i] = m.rows[i].rhs
	}
	if yb := dot(sol.Dual, b); !testutil.Near(yb, sol.Objective, dualTol) {
		t.Errorf("strong duality: y.b = %v, objective = %v", yb, sol.Objective)
	}
	for i := range m.rows {
		y := sol.Dual[i]
		switch m.rows[i].sense {
		case LE: // y <= 0 for min, >= 0 for max (the package convention)
			if m.maximize && y < -dualTol || !m.maximize && y > dualTol {
				t.Errorf("dual[%d] = %v has the wrong sign for a %v row", i, y, LE)
			}
		case GE:
			if m.maximize && y > dualTol || !m.maximize && y < -dualTol {
				t.Errorf("dual[%d] = %v has the wrong sign for a %v row", i, y, GE)
			}
		}
	}
	// Reduced costs: no variable prices out better than its objective
	// coefficient (c_j - y.A_j >= 0 for min, <= 0 for max).
	for j := 0; j < m.NumVars(); j++ {
		yA := 0.0
		for i := range m.rows {
			yA += sol.Dual[i] * densify(m, i)[j]
		}
		red := m.obj[j] - yA
		if m.maximize && red > dualTol || !m.maximize && red < -dualTol {
			t.Errorf("reduced cost of var %d = %v has the wrong sign", j, red)
		}
	}
}

// randomPackingModel builds a random bounded, feasible maximisation:
// max c.x over Ax <= b with A, b >= 0 and a budget row covering every
// variable. The origin is always feasible and the budget row bounds
// the feasible region, so the status must come back Optimal.
func randomPackingModel(rng *rand.Rand) *Model {
	m := NewModel()
	m.Maximize()
	n := 2 + rng.Intn(8)
	for j := 0; j < n; j++ {
		m.AddVar(rng.Float64()*4-1, "") // mixed-sign objective
	}
	budget := make([]Term, n)
	for j := 0; j < n; j++ {
		budget[j] = Term{Var: j, Coef: 1}
	}
	m.AddRow(LE, 1+rng.Float64()*9, budget...)
	for r, rows := 0, 1+rng.Intn(9); r < rows; r++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.7 {
				terms = append(terms, Term{Var: j, Coef: rng.Float64() * 2})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: rng.Intn(n), Coef: 1})
		}
		m.AddRow(LE, 0.5+rng.Float64()*4.5, terms...)
	}
	return m
}

// randomCoveringModel builds a random feasible minimisation:
// min c.x, c >= 0, over Ax >= b with A >= 0 and every row non-empty,
// so scaling x up always reaches feasibility and zero bounds the
// objective below. The status must come back Optimal.
func randomCoveringModel(rng *rand.Rand) *Model {
	m := NewModel()
	n := 2 + rng.Intn(8)
	for j := 0; j < n; j++ {
		m.AddVar(0.1+rng.Float64()*2, "")
	}
	for r, rows := 0, 2+rng.Intn(9); r < rows; r++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.6 {
				terms = append(terms, Term{Var: j, Coef: 0.1 + rng.Float64()*2})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: rng.Intn(n), Coef: 1})
		}
		m.AddRow(GE, 0.5+rng.Float64()*4.5, terms...)
	}
	return m
}

// TestPropertyPackingModels checks primal feasibility and strong
// duality over a corpus of random bounded maximisation programs.
func TestPropertyPackingModels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		m := randomPackingModel(rng)
		sol, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal (origin is feasible, budget row bounds)", trial, sol.Status)
		}
		checkPrimalFeasible(t, m, sol.X)
		checkStrongDuality(t, m, sol)
	}
}

// TestPropertyCoveringModels does the same for random feasible
// minimisation programs with >= rows, the shape of the paper's
// steady-state LPs.
func TestPropertyCoveringModels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		m := randomCoveringModel(rng)
		sol, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal (covering LPs are feasible and bounded)", trial, sol.Status)
		}
		checkPrimalFeasible(t, m, sol.X)
		checkStrongDuality(t, m, sol)
	}
}

// TestPropertyMaxDualsColdWarmPresolved property-tests the documented
// dual-sign convention on maximisation models (y >= 0 for <= rows,
// objective negated back) across all three solve paths: the raw cold
// simplex, the presolved default, and a warm re-solve of a grown
// model. Only minimisation duals were property-tested before, so a
// sign slip on the max-negation path — in extract, in postsolve, or in
// the warm dual cleanup — had no coverage.
func TestPropertyMaxDualsColdWarmPresolved(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	warmHits := 0
	for trial := 0; trial < 40; trial++ {
		m := randomPackingModel(rng)

		// Raw cold path (presolve bypassed).
		m.SetPresolve(false)
		cold, err := m.SolveWith(NewWorkspace())
		if err != nil {
			t.Fatalf("trial %d cold: %v", trial, err)
		}
		if cold.Status != Optimal {
			t.Fatalf("trial %d cold: status %v", trial, cold.Status)
		}
		checkPrimalFeasible(t, m, cold.X)
		checkStrongDuality(t, m, cold)

		// Presolved default path.
		m.SetPresolve(true)
		ws := NewWorkspace()
		pre, err := m.SolveWith(ws)
		if err != nil {
			t.Fatalf("trial %d presolved: %v", trial, err)
		}
		if pre.Status != Optimal {
			t.Fatalf("trial %d presolved: status %v", trial, pre.Status)
		}
		checkPrimalFeasible(t, m, pre.X)
		checkStrongDuality(t, m, pre)
		if !testutil.Near(cold.Objective, pre.Objective, dualTol) {
			t.Fatalf("trial %d: cold objective %v, presolved %v", trial, cold.Objective, pre.Objective)
		}

		// Warm path: tighten the program with an appended row and
		// re-solve from the captured basis.
		var terms []Term
		for j := 0; j < m.NumVars(); j++ {
			terms = append(terms, Term{Var: j, Coef: 1})
		}
		m.AddRow(LE, 0.25+0.5*sum(pre.X), terms...)
		warm, err := m.SolveFrom(ws, pre.Basis)
		if err != nil {
			t.Fatalf("trial %d warm: %v", trial, err)
		}
		if warm.Status != Optimal {
			t.Fatalf("trial %d warm: status %v", trial, warm.Status)
		}
		checkPrimalFeasible(t, m, warm.X)
		checkStrongDuality(t, m, warm)
		if warm.WarmStarted {
			warmHits++
		}
	}
	if warmHits == 0 {
		t.Fatal("no trial exercised the warm path; the dual check never ran warm")
	}
}

// TestPathologicalStatuses pins the Infeasible/Unbounded verdicts on
// hand-built degenerate programs.
func TestPathologicalStatuses(t *testing.T) {
	t.Run("contradictory equalities", func(t *testing.T) {
		m := NewModel()
		x := m.AddVar(1, "x")
		y := m.AddVar(1, "y")
		m.AddRow(EQ, 1, Term{x, 1}, Term{y, 1})
		m.AddRow(EQ, 2, Term{x, 1}, Term{y, 1})
		sol, err := m.Solve()
		if err != nil || sol.Status != Infeasible {
			t.Fatalf("got %v (err %v), want infeasible", sol, err)
		}
	})
	t.Run("negative upper bound", func(t *testing.T) {
		m := NewModel()
		x := m.AddVar(1, "x")
		m.AddRow(LE, -1, Term{x, 1}) // x <= -1 contradicts x >= 0
		sol, err := m.Solve()
		if err != nil || sol.Status != Infeasible {
			t.Fatalf("got %v (err %v), want infeasible", sol, err)
		}
	})
	t.Run("unconstrained maximisation", func(t *testing.T) {
		m := NewModel()
		m.Maximize()
		x := m.AddVar(1, "x")
		m.AddRow(GE, 1, Term{x, 1})
		sol, err := m.Solve()
		if err != nil || sol.Status != Unbounded {
			t.Fatalf("got %v (err %v), want unbounded", sol, err)
		}
	})
	t.Run("ray escapes a finite-looking box", func(t *testing.T) {
		// y is capped but x only appears with negative coefficients, so
		// max x + y runs off along the x axis.
		m := NewModel()
		m.Maximize()
		x := m.AddVar(1, "x")
		y := m.AddVar(1, "y")
		m.AddRow(LE, 5, Term{y, 1})
		m.AddRow(LE, 3, Term{x, -1}, Term{y, 1})
		sol, err := m.Solve()
		if err != nil || sol.Status != Unbounded {
			t.Fatalf("got %v (err %v), want unbounded", sol, err)
		}
	})
}
