// MPS file I/O for the lp package.
//
// MPS is the venerable fixed-column interchange format for linear
// programs (and the format of the netlib LP test set); most solvers
// also accept the whitespace-delimited "free" variant. This reader
// handles both by tokenising on whitespace, which covers every fixed-
// format file whose names contain no embedded blanks — true of the
// netlib set and of everything this repo ships — and all free-format
// files. Names with embedded spaces are the one documented casualty.
//
// Supported sections: NAME, OBJSENSE (MIN/MAX, free-format extension),
// ROWS (N/L/G/E), COLUMNS, RHS, RANGES, BOUNDS (LO/UP/FX/FR/MI/PL),
// ENDATA. Integer markers and integer bound types (BV/LI/UI) are
// rejected: this is an LP toolkit.
//
// # Bound lowering
//
// Model variables are implicitly x >= 0 with no upper bounds, so the
// reader lowers general MPS bounds at load time:
//
//   - LO l (finite lower bound): substitute x = l + x' with x' >= 0 and
//     fold the shift into every row's right-hand side and into the
//     objective constant.
//   - FR / MI (no lower bound): split x = x+ - x- into two non-negative
//     columns with negated coefficients.
//   - UP u / FX / RANGES: the residual upper bound becomes one extra
//     <= row over the lowered column(s); an FX variable gets the
//     degenerate row x' <= 0, which presolve folds away again.
//
// The MPS value returned by ReadMPS records the inverse transform:
// Values, Value and Objective report in the original variable space,
// and RowDual maps original constraint rows to lowered model rows.
package lp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// MPS is a linear program loaded from an MPS file: the lowered Model
// ready to Solve, plus the bookkeeping needed to report solutions in
// the file's original variable space.
type MPS struct {
	// Name is the problem name from the NAME record (may be empty).
	Name string
	// Model is the lowered program: every original variable shifted
	// and/or split to the package's x >= 0 form, with residual upper
	// bounds appended as extra <= rows after the original constraints.
	Model *Model

	varNames []string
	rowNames []string
	prim     []int     // original row index -> lowered model row index
	xp       []int     // per original var: lowered column of the (shifted) positive part
	xm       []int     // per original var: lowered column of the negative part, or -1
	lo       []float64 // per original var: lower-bound shift (0 for split vars)
	objShift float64   // sum c_j * lo_j folded out of the lowered objective
	objConst float64   // constant from an RHS entry on the objective row
}

// NumVars returns the number of variables in the original file (before
// bound lowering).
func (f *MPS) NumVars() int { return len(f.varNames) }

// NumRows returns the number of constraint rows in the original file
// (excluding the objective and free rows).
func (f *MPS) NumRows() int { return len(f.rowNames) }

// VarNames returns the original variable names in file order.
func (f *MPS) VarNames() []string { return append([]string(nil), f.varNames...) }

// RowNames returns the original constraint row names in file order.
func (f *MPS) RowNames() []string { return append([]string(nil), f.rowNames...) }

// Value maps a solution of f.Model back to the original space: the
// value of original variable j, undoing the load-time shift or split.
func (f *MPS) Value(sol *Solution, j int) float64 {
	v := f.lo[j] + sol.X[f.xp[j]]
	if f.xm[j] >= 0 {
		v -= sol.X[f.xm[j]]
	}
	return v
}

// Values maps a solution of f.Model back to the original variable
// space, one value per original variable in file order.
func (f *MPS) Values(sol *Solution) []float64 {
	x := make([]float64, len(f.varNames))
	for j := range x {
		x[j] = f.Value(sol, j)
	}
	return x
}

// Objective returns the objective value in the original space: the
// lowered model's objective plus the constants folded out by the
// bound shifts and by any RHS entry on the objective row.
func (f *MPS) Objective(sol *Solution) float64 {
	return sol.Objective + f.objShift + f.objConst
}

// RowDual returns the dual value of original constraint row i. A row
// that RANGES turned into a two-sided constraint reports the dual of
// its primary (lower-bound side) lowered row.
func (f *MPS) RowDual(sol *Solution, i int) float64 { return sol.Dual[f.prim[i]] }

// mpsParse is the raw file contents before lowering.
type mpsParse struct {
	name     string
	maximize bool

	rowName  []string // non-N rows, file order
	rowSense []Sense
	rowOf    map[string]int // row name -> index; objective and free rows map to -1

	objName string
	objSeen bool

	varName []string
	varOf   map[string]int
	entries [][]mpsEntry // per var: (row, coef); row == -1 is the objective

	rhs      []float64
	objRHS   float64
	rng      []float64
	hasRange []bool

	lo, up           []float64
	loSet, upEverSet []bool
}

type mpsEntry struct {
	row  int // -1 for the objective row
	coef float64
}

// ReadMPS parses an MPS file (fixed or free format) and lowers it to
// a Model. See the package comment at the top of this file for the
// supported subset and the bound-lowering rules.
func ReadMPS(r io.Reader) (*MPS, error) {
	p := &mpsParse{
		rowOf: make(map[string]int),
		varOf: make(map[string]int),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	section := ""
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" || line[0] == '*' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		// Section headers start in column one; data lines are indented.
		if line[0] != ' ' && line[0] != '\t' {
			section = strings.ToUpper(fields[0])
			switch section {
			case "NAME":
				if len(fields) > 1 {
					p.name = fields[1]
				}
			case "OBJSENSE":
				// Either "OBJSENSE MAX" on one line or the value on the
				// next (indented) line.
				if len(fields) > 1 {
					if err := p.setObjSense(fields[1]); err != nil {
						return nil, lineErr(lineno, err)
					}
					section = ""
				}
			case "ROWS", "COLUMNS", "RHS", "RANGES", "BOUNDS":
			case "ENDATA":
				return p.lower()
			default:
				return nil, lineErr(lineno, fmt.Errorf("unsupported section %q", fields[0]))
			}
			continue
		}
		var err error
		switch section {
		case "OBJSENSE":
			err = p.setObjSense(fields[0])
		case "ROWS":
			err = p.addRow(fields)
		case "COLUMNS":
			err = p.addColumnEntries(fields)
		case "RHS":
			err = p.addRHS(fields)
		case "RANGES":
			err = p.addRanges(fields)
		case "BOUNDS":
			err = p.addBound(fields)
		case "":
			err = fmt.Errorf("data line before any section header")
		default:
			err = fmt.Errorf("data line in unsupported section %q", section)
		}
		if err != nil {
			return nil, lineErr(lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p.lower()
}

// ParseMPS is ReadMPS over an in-memory byte slice.
func ParseMPS(data []byte) (*MPS, error) { return ReadMPS(strings.NewReader(string(data))) }

func lineErr(lineno int, err error) error { return fmt.Errorf("mps: line %d: %w", lineno, err) }

func (p *mpsParse) setObjSense(tok string) error {
	switch strings.ToUpper(tok) {
	case "MAX", "MAXIMIZE":
		p.maximize = true
	case "MIN", "MINIMIZE":
		p.maximize = false
	default:
		return fmt.Errorf("unknown OBJSENSE %q", tok)
	}
	return nil
}

func (p *mpsParse) addRow(fields []string) error {
	if len(fields) != 2 {
		return fmt.Errorf("ROWS line wants 2 fields, got %d", len(fields))
	}
	name := fields[1]
	if _, dup := p.rowOf[name]; dup {
		return fmt.Errorf("duplicate row %q", name)
	}
	switch strings.ToUpper(fields[0]) {
	case "N":
		// The first N row is the objective; later N rows are free rows,
		// recorded so COLUMNS/RHS entries on them parse but are dropped.
		if !p.objSeen {
			p.objSeen = true
			p.objName = name
		}
		p.rowOf[name] = -1
	case "L", "G", "E":
		var sense Sense
		switch strings.ToUpper(fields[0]) {
		case "L":
			sense = LE
		case "G":
			sense = GE
		case "E":
			sense = EQ
		}
		p.rowOf[name] = len(p.rowName)
		p.rowName = append(p.rowName, name)
		p.rowSense = append(p.rowSense, sense)
		p.rhs = append(p.rhs, 0)
		p.rng = append(p.rng, 0)
		p.hasRange = append(p.hasRange, false)
	default:
		return fmt.Errorf("unknown row type %q", fields[0])
	}
	return nil
}

func (p *mpsParse) varIndex(name string) int {
	j, ok := p.varOf[name]
	if !ok {
		j = len(p.varName)
		p.varOf[name] = j
		p.varName = append(p.varName, name)
		p.entries = append(p.entries, nil)
		p.lo = append(p.lo, 0)
		p.up = append(p.up, math.Inf(1))
		p.loSet = append(p.loSet, false)
		p.upEverSet = append(p.upEverSet, false)
	}
	return j
}

func (p *mpsParse) addColumnEntries(fields []string) error {
	if len(fields) >= 3 && strings.Trim(fields[1], "'\"") == "MARKER" {
		return fmt.Errorf("integer MARKER sections are not supported (LP only)")
	}
	if len(fields) != 3 && len(fields) != 5 {
		return fmt.Errorf("COLUMNS line wants 3 or 5 fields, got %d", len(fields))
	}
	j := p.varIndex(fields[0])
	for k := 1; k < len(fields); k += 2 {
		ri, ok := p.rowOf[fields[k]]
		if !ok {
			return fmt.Errorf("unknown row %q", fields[k])
		}
		v, err := strconv.ParseFloat(fields[k+1], 64)
		if err != nil {
			return fmt.Errorf("bad coefficient %q: %v", fields[k+1], err)
		}
		if ri == -1 && fields[k] != p.objName {
			continue // entry on a non-objective free row: dropped
		}
		p.entries[j] = append(p.entries[j], mpsEntry{row: ri, coef: v})
	}
	return nil
}

// rhsPairs strips the optional set-name token from an RHS or RANGES
// line and returns the (row, value) pairs. The set name is optional in
// the wild: a line with an even field count whose first token names a
// row is taken as nameless.
func (p *mpsParse) rhsPairs(fields []string) ([]string, error) {
	_, firstIsRow := p.rowOf[fields[0]]
	if len(fields)%2 == 0 && firstIsRow {
		return fields, nil
	}
	if len(fields)%2 == 1 {
		return fields[1:], nil
	}
	return nil, fmt.Errorf("cannot parse row/value pairs from %d fields", len(fields))
}

func (p *mpsParse) addRHS(fields []string) error {
	pairs, err := p.rhsPairs(fields)
	if err != nil {
		return err
	}
	for k := 0; k < len(pairs); k += 2 {
		v, err := strconv.ParseFloat(pairs[k+1], 64)
		if err != nil {
			return fmt.Errorf("bad RHS value %q: %v", pairs[k+1], err)
		}
		ri, ok := p.rowOf[pairs[k]]
		if !ok {
			return fmt.Errorf("unknown row %q", pairs[k])
		}
		if ri == -1 {
			if pairs[k] == p.objName {
				// RHS on the objective row: the negated objective constant.
				p.objRHS = v
			}
			continue
		}
		p.rhs[ri] = v
	}
	return nil
}

func (p *mpsParse) addRanges(fields []string) error {
	pairs, err := p.rhsPairs(fields)
	if err != nil {
		return err
	}
	for k := 0; k < len(pairs); k += 2 {
		v, err := strconv.ParseFloat(pairs[k+1], 64)
		if err != nil {
			return fmt.Errorf("bad RANGES value %q: %v", pairs[k+1], err)
		}
		ri, ok := p.rowOf[pairs[k]]
		if !ok {
			return fmt.Errorf("unknown row %q", pairs[k])
		}
		if ri == -1 {
			return fmt.Errorf("RANGES entry on objective/free row %q", pairs[k])
		}
		p.rng[ri] = v
		p.hasRange[ri] = true
	}
	return nil
}

func (p *mpsParse) addBound(fields []string) error {
	if len(fields) < 2 {
		return fmt.Errorf("BOUNDS line wants at least a type and a column")
	}
	typ := strings.ToUpper(fields[0])
	needsValue := typ == "LO" || typ == "UP" || typ == "FX"
	// Layout is TYPE [SETNAME] COLUMN [VALUE]; the set name is optional
	// in the wild, so locate the column by the expected field count.
	var col, val string
	switch {
	case needsValue && len(fields) == 4:
		col, val = fields[2], fields[3]
	case needsValue && len(fields) == 3:
		col, val = fields[1], fields[2]
	case !needsValue && len(fields) == 3:
		col = fields[2]
	case !needsValue && len(fields) == 2:
		col = fields[1]
	default:
		return fmt.Errorf("cannot parse %s bound from %d fields", typ, len(fields))
	}
	j, ok := p.varOf[col]
	if !ok {
		// A bound may legally precede the column's COLUMNS entries only
		// in pathological files; require the column to exist to catch
		// typos, matching most strict readers.
		return fmt.Errorf("bound on unknown column %q", col)
	}
	var v float64
	if needsValue {
		var err error
		if v, err = strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("bad bound value %q: %v", val, err)
		}
	}
	switch typ {
	case "LO":
		p.lo[j] = v
		p.loSet[j] = true
	case "UP":
		p.up[j] = v
		p.upEverSet[j] = true
	case "FX":
		p.lo[j], p.up[j] = v, v
		p.loSet[j], p.upEverSet[j] = true, true
	case "FR":
		p.lo[j] = math.Inf(-1)
		p.loSet[j] = true
	case "MI":
		p.lo[j] = math.Inf(-1)
		p.loSet[j] = true
	case "PL":
		p.up[j] = math.Inf(1)
		p.upEverSet[j] = true
	case "BV", "LI", "UI":
		return fmt.Errorf("integer bound type %s is not supported (LP only)", typ)
	default:
		return fmt.Errorf("unknown bound type %q", typ)
	}
	return nil
}

// lower builds the x >= 0 Model from the parsed file: shift finite
// lower bounds, split unbounded-below variables, then emit the
// original rows (with RANGES expansion) followed by the residual
// upper-bound rows.
func (p *mpsParse) lower() (*MPS, error) {
	if !p.objSeen {
		return nil, fmt.Errorf("mps: no N (objective) row")
	}
	m := NewModel()
	if p.maximize {
		m.Maximize()
	}
	f := &MPS{
		Name:     p.name,
		Model:    m,
		varNames: append([]string(nil), p.varName...),
		rowNames: append([]string(nil), p.rowName...),
		objConst: -p.objRHS,
		xp:       make([]int, len(p.varName)),
		xm:       make([]int, len(p.varName)),
		lo:       make([]float64, len(p.varName)),
		prim:     make([]int, len(p.rowName)),
	}
	// Pass 1: create the lowered columns and collect each variable's
	// objective coefficient (needed before rows for the shift constant).
	obj := make([]float64, len(p.varName))
	for j, es := range p.entries {
		for _, e := range es {
			if e.row == -1 {
				obj[j] += e.coef
			}
		}
	}
	for j, name := range p.varName {
		split := math.IsInf(p.lo[j], -1)
		if split {
			f.lo[j] = 0
			f.xp[j] = m.AddVar(obj[j], name+"+")
			f.xm[j] = m.AddVar(-obj[j], name+"-")
			continue
		}
		f.lo[j] = p.lo[j]
		f.objShift += obj[j] * p.lo[j]
		f.xp[j] = m.AddVar(obj[j], name)
		f.xm[j] = -1
	}
	// Accumulate per-row terms and right-hand-side shifts.
	terms := make([][]Term, len(p.rowName))
	shift := make([]float64, len(p.rowName))
	for j, es := range p.entries {
		for _, e := range es {
			if e.row == -1 {
				continue
			}
			terms[e.row] = append(terms[e.row], Term{Var: f.xp[j], Coef: e.coef})
			if f.xm[j] >= 0 {
				terms[e.row] = append(terms[e.row], Term{Var: f.xm[j], Coef: -e.coef})
			}
			shift[e.row] += e.coef * f.lo[j]
		}
	}
	// Pass 2: original rows in file order, applying RANGES. The primary
	// lowered row keeps the original row's position so duals line up;
	// the second side of a ranged row is appended after all originals.
	type extraRow struct {
		sense Sense
		rhs   float64
		terms []Term
	}
	var extras []extraRow
	for i := range p.rowName {
		sense, b := p.rowSense[i], p.rhs[i]-shift[i]
		if !p.hasRange[i] {
			f.prim[i] = m.AddRow(sense, b, terms[i]...)
			continue
		}
		r := p.rng[i]
		var loB, upB float64
		switch sense {
		case LE: // [b - |r|, b]
			loB, upB = b-math.Abs(r), b
		case GE: // [b, b + |r|]
			loB, upB = b, b+math.Abs(r)
		case EQ: // r >= 0: [b, b+r]; r < 0: [b+r, b]
			if r >= 0 {
				loB, upB = b, b+r
			} else {
				loB, upB = b+r, b
			}
		}
		f.prim[i] = m.AddRow(GE, loB, terms[i]...)
		extras = append(extras, extraRow{sense: LE, rhs: upB, terms: terms[i]})
	}
	for _, e := range extras {
		m.AddRow(e.sense, e.rhs, e.terms...)
	}
	// Pass 3: residual upper bounds as singleton (or pair) <= rows.
	// An UP below the (possibly shifted) lower bound yields a negative
	// right-hand side here, which the solver reports as Infeasible —
	// the correct verdict for an empty box.
	for j := range p.varName {
		if math.IsInf(p.up[j], 1) {
			continue
		}
		if f.xm[j] >= 0 {
			m.AddRow(LE, p.up[j], Term{Var: f.xp[j], Coef: 1}, Term{Var: f.xm[j], Coef: -1})
		} else {
			m.AddRow(LE, p.up[j]-f.lo[j], Term{Var: f.xp[j], Coef: 1})
		}
	}
	return f, nil
}

// WriteMPS writes the model as an MPS file readable by ReadMPS and by
// external solvers. The output uses the fixed-format column layout
// (and is therefore also valid free format). Variables with empty or
// duplicate names are renamed X0000001-style; rows are named
// R0000001-style and the objective COST. Duplicate terms within a row
// are coalesced before writing, matching what the solver computes.
// Models written by WriteMPS always satisfy x >= 0, so no BOUNDS
// section is emitted.
func WriteMPS(w io.Writer, m *Model, name string) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "LP"
	}
	fmt.Fprintf(bw, "NAME          %s\n", name)
	if m.maximize {
		fmt.Fprintf(bw, "OBJSENSE\n    MAX\n")
	}

	// Assign unique, blank-free names.
	varName := make([]string, len(m.obj))
	seen := make(map[string]bool, len(m.obj))
	for j, n := range m.names {
		if n == "" || strings.ContainsAny(n, " \t") || seen[n] {
			n = fmt.Sprintf("X%07d", j+1)
		}
		seen[n] = true
		varName[j] = n
	}
	rowName := make([]string, len(m.rows))
	for i := range m.rows {
		rowName[i] = fmt.Sprintf("R%07d", i+1)
	}

	fmt.Fprintf(bw, "ROWS\n")
	fmt.Fprintf(bw, " N  COST\n")
	for i, r := range m.rows {
		var t byte
		switch r.sense {
		case LE:
			t = 'L'
		case GE:
			t = 'G'
		case EQ:
			t = 'E'
		}
		fmt.Fprintf(bw, " %c  %s\n", t, rowName[i])
	}

	// Gather each column's entries (objective first, then rows in
	// order), coalescing duplicate terms.
	type colEntry struct {
		row  string
		coef float64
	}
	cols := make([][]colEntry, len(m.obj))
	for j, c := range m.obj {
		if c != 0 {
			cols[j] = append(cols[j], colEntry{row: "COST", coef: c})
		}
	}
	acc := make(map[int]float64)
	for i, r := range m.rows {
		for k := range acc {
			delete(acc, k)
		}
		var order []int
		for _, t := range r.terms {
			if _, ok := acc[t.Var]; !ok {
				order = append(order, t.Var)
			}
			acc[t.Var] += t.Coef
		}
		sort.Ints(order)
		for _, j := range order {
			if c := acc[j]; c != 0 {
				cols[j] = append(cols[j], colEntry{row: rowName[i], coef: c})
			}
		}
	}
	fmt.Fprintf(bw, "COLUMNS\n")
	for j, es := range cols {
		for _, e := range es {
			fmt.Fprintf(bw, "    %-10s%-10s%.17g\n", varName[j], e.row, e.coef)
		}
	}

	fmt.Fprintf(bw, "RHS\n")
	for i, r := range m.rows {
		if r.rhs != 0 {
			fmt.Fprintf(bw, "    %-10s%-10s%.17g\n", "RHS", rowName[i], r.rhs)
		}
	}
	fmt.Fprintf(bw, "ENDATA\n")
	return bw.Flush()
}
