package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimpleMax(t *testing.T) {
	// Classic: max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
	// Optimum (2, 6), objective 36, duals (0, 3/2, 1).
	m := NewModel()
	m.Maximize()
	x := m.AddVar(3, "x")
	y := m.AddVar(5, "y")
	m.AddRow(LE, 4, Term{x, 1})
	m.AddRow(LE, 12, Term{y, 2})
	m.AddRow(LE, 18, Term{x, 3}, Term{y, 2})
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !approx(sol.Objective, 36, 1e-8) {
		t.Errorf("objective = %v, want 36", sol.Objective)
	}
	if !approx(sol.X[x], 2, 1e-8) || !approx(sol.X[y], 6, 1e-8) {
		t.Errorf("X = %v, want (2, 6)", sol.X)
	}
	wantDual := []float64{0, 1.5, 1}
	for i, w := range wantDual {
		if !approx(sol.Dual[i], w, 1e-8) {
			t.Errorf("dual[%d] = %v, want %v", i, sol.Dual[i], w)
		}
	}
}

func TestSimpleMin(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 4, x + 3y >= 6: optimum at (3, 1), obj 9.
	m := NewModel()
	x := m.AddVar(2, "x")
	y := m.AddVar(3, "y")
	m.AddRow(GE, 4, Term{x, 1}, Term{y, 1})
	m.AddRow(GE, 6, Term{x, 1}, Term{y, 3})
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 9, 1e-8) {
		t.Fatalf("got %v obj %v, want optimal 9", sol.Status, sol.Objective)
	}
	if !approx(sol.X[x], 3, 1e-8) || !approx(sol.X[y], 1, 1e-8) {
		t.Errorf("X = %v", sol.X)
	}
	// Duals of a >= min problem are >= 0 and satisfy y.b = objective.
	if sol.Dual[0] < -1e-9 || sol.Dual[1] < -1e-9 {
		t.Errorf("duals = %v, want nonnegative", sol.Dual)
	}
	if !approx(4*sol.Dual[0]+6*sol.Dual[1], 9, 1e-7) {
		t.Errorf("strong duality violated: %v", sol.Dual)
	}
}

func TestEquality(t *testing.T) {
	// min x + y s.t. x + 2y = 4, x - y = 1 -> x = 2, y = 1.
	m := NewModel()
	x := m.AddVar(1, "x")
	y := m.AddVar(1, "y")
	m.AddRow(EQ, 4, Term{x, 1}, Term{y, 2})
	m.AddRow(EQ, 1, Term{x, 1}, Term{y, -1})
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.X[x], 2, 1e-8) || !approx(sol.X[y], 1, 1e-8) {
		t.Fatalf("got %v %v", sol.Status, sol.X)
	}
	if !approx(4*sol.Dual[0]+1*sol.Dual[1], 3, 1e-7) {
		t.Errorf("strong duality violated: %v", sol.Dual)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3 (i.e. x >= 3).
	m := NewModel()
	x := m.AddVar(1, "x")
	m.AddRow(LE, -3, Term{x, -1})
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.X[x], 3, 1e-8) {
		t.Fatalf("got %v x=%v", sol.Status, sol.X[x])
	}
}

func TestInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1, "x")
	m.AddRow(LE, 1, Term{x, 1})
	m.AddRow(GE, 2, Term{x, 1})
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	m := NewModel()
	m.Maximize()
	x := m.AddVar(1, "x")
	y := m.AddVar(0, "y")
	m.AddRow(GE, 1, Term{x, 1}, Term{y, 1})
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestDegenerate(t *testing.T) {
	// A classically degenerate LP (multiple bases at the optimum).
	m := NewModel()
	m.Maximize()
	x := m.AddVar(2, "x")
	y := m.AddVar(1, "y")
	m.AddRow(LE, 4, Term{x, 1})
	m.AddRow(LE, 4, Term{x, 1}, Term{y, 1})
	m.AddRow(LE, 4, Term{x, 1}, Term{y, -1})
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 8, 1e-8) {
		t.Fatalf("got %v obj %v, want 8", sol.Status, sol.Objective)
	}
}

func TestRedundantEquality(t *testing.T) {
	// Second equality is a duplicate of the first; phase 1 must mark it
	// redundant rather than fail.
	m := NewModel()
	x := m.AddVar(1, "x")
	y := m.AddVar(2, "y")
	m.AddRow(EQ, 2, Term{x, 1}, Term{y, 1})
	m.AddRow(EQ, 4, Term{x, 2}, Term{y, 2})
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 2, 1e-8) {
		t.Fatalf("got %v obj %v, want 2 (x=2,y=0)", sol.Status, sol.Objective)
	}
}

func TestZeroRow(t *testing.T) {
	m := NewModel()
	x := m.AddVar(-1, "x")
	m.AddRow(LE, 5, Term{x, 1})
	m.AddRow(LE, 3) // 0 <= 3, trivially true
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.X[x], 5, 1e-9) {
		t.Fatalf("got %v %v", sol.Status, sol.X)
	}
}

func TestDuplicateTermsSummed(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1, "x")
	m.AddRow(GE, 6, Term{x, 1}, Term{x, 2}) // effectively 3x >= 6
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[x], 2, 1e-8) {
		t.Fatalf("x = %v, want 2", sol.X[x])
	}
}

// TestDuplicateTermsAddColumn pins the AddColumn side of the
// "duplicate terms are summed" contract: entries referencing the same
// row twice must coalesce in the compiled column store, exactly like
// AddRow duplicates.
func TestDuplicateTermsAddColumn(t *testing.T) {
	m := NewModel()
	m.Maximize()
	r := m.AddRow(LE, 6)
	x := m.AddColumn(1, "x", RowCoef{Row: r, Coef: 1}, RowCoef{Row: r, Coef: 2}) // 3x <= 6
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[x], 2, 1e-8) || !approx(sol.Objective, 2, 1e-8) {
		t.Fatalf("x = %v obj = %v, want x = 2 obj = 2", sol.X[x], sol.Objective)
	}
}

// TestDuplicateTermsWarmPath pins duplicate coalescing on the warm
// path: a row with duplicate terms appended after a solve must compile
// identically when SolveFrom re-solves from the previous basis.
func TestDuplicateTermsWarmPath(t *testing.T) {
	m := NewModel()
	m.Maximize()
	x := m.AddVar(1, "x")
	m.AddRow(LE, 10, Term{x, 1})
	ws := NewWorkspace()
	sol, err := m.SolveWith(ws)
	if err != nil {
		t.Fatal(err)
	}
	m.AddRow(LE, 6, Term{x, 1}, Term{x, 2}) // effectively 3x <= 6
	warm, err := m.SolveFrom(ws, sol.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(warm.X[x], 2, 1e-8) {
		t.Fatalf("x = %v, want 2 (duplicate terms not coalesced on the warm path)", warm.X[x])
	}

	// And the column-generation variant: an AddColumn with duplicate
	// entries into an existing row, priced in by a warm re-solve.
	m2 := NewModel()
	m2.Maximize()
	x2 := m2.AddVar(1, "x")
	r := m2.AddRow(LE, 12, Term{x2, 1})
	ws2 := NewWorkspace()
	sol2, err := m2.SolveWith(ws2)
	if err != nil {
		t.Fatal(err)
	}
	y := m2.AddColumn(5, "y", RowCoef{Row: r, Coef: 2}, RowCoef{Row: r, Coef: 1}) // effectively 3y
	warm2, err := m2.SolveFrom(ws2, sol2.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(warm2.X[y], 4, 1e-8) || !approx(warm2.Objective, 20, 1e-8) {
		t.Fatalf("y = %v obj = %v, want y = 4 obj = 20", warm2.X[y], warm2.Objective)
	}
}

// TestZeroRowBasisRoundTrip pins the Basis.Empty fix: the optimal
// basis of a 0-row model has no basic columns but is real information,
// so SolveFrom must treat it as a warm start — the column-generation
// masters start rowless and previously cold-started forever.
func TestZeroRowBasisRoundTrip(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1, "x")
	ws := NewWorkspace()
	sol, err := m.SolveWith(ws)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Basis.Empty() {
		t.Fatalf("0-row solve: status %v, basis empty %v; want optimal with a non-empty basis", sol.Status, sol.Basis.Empty())
	}
	warm, err := m.SolveFrom(ws, sol.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatalf("0-row basis did not round-trip: WarmStarted = false")
	}
	st := ws.Stats()
	if st.WarmAttempts != 1 || st.WarmHits != 1 {
		t.Fatalf("stats = %+v, want WarmAttempts = 1 and WarmHits = 1", st)
	}
	// The round-trip must also survive growth: an inequality appended to
	// the rowless basis joins on its slack.
	m.AddRow(GE, 2, Term{x, 1})
	grown, err := m.SolveFrom(ws, warm.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Status != Optimal || !approx(grown.X[x], 2, 1e-9) {
		t.Fatalf("grown solve: %+v, want optimal x = 2", grown)
	}
	// A zero Basis literal must still mean "no information".
	if !(Basis{}).Empty() {
		t.Fatal("zero Basis is not Empty")
	}
}

// degenerateZeroRHSModel builds the satellite's stress shape: a cycle
// of zero-RHS >= rows (massively degenerate) under a covering row.
func degenerateZeroRHSModel(n int) *Model {
	m := NewModel()
	for j := 0; j < n; j++ {
		m.AddVar(1, "")
	}
	for i := 0; i < n; i++ {
		m.AddRow(GE, 0, Term{i, 1}, Term{(i + 1) % n, -1})
	}
	terms := make([]Term, n)
	for j := 0; j < n; j++ {
		terms[j] = Term{j, 1}
	}
	m.AddRow(GE, 3, terms...)
	return m
}

// TestSolveFromFallbackLadder pins the unified fallback: SolveFrom on
// a degenerate zero-RHS instance — whether the basis is usable, stale,
// or outright junk — must end up at least as robust as SolveWith,
// including the perturbed ErrIterationLimit retry.
func TestSolveFromFallbackLadder(t *testing.T) {
	m := degenerateZeroRHSModel(12)
	ws := NewWorkspace()
	sol, err := m.SolveWith(ws)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("cold: %+v err %v", sol, err)
	}
	if !approx(sol.Objective, 3, 1e-6) {
		t.Fatalf("cold objective = %v, want 3", sol.Objective)
	}

	// Warm re-solve after appending another degenerate row.
	m.AddRow(GE, 0, Term{0, 1}, Term{6, -1})
	warm, err := m.SolveFrom(ws, sol.Basis)
	if err != nil {
		t.Fatalf("SolveFrom returned %v; the fallback ladder must absorb warm-path failures", err)
	}
	if warm.Status != Optimal || !approx(warm.Objective, 3, 1e-6) {
		t.Fatalf("warm: %+v, want optimal objective 3", warm)
	}

	// A basis from an unrelated model shape (too many rows) must be
	// rejected and still land on the cold ladder, not error out.
	other := degenerateZeroRHSModel(16)
	osol, err := other.SolveWith(NewWorkspace())
	if err != nil || osol.Status != Optimal {
		t.Fatalf("other cold: %+v err %v", osol, err)
	}
	fallback, err := m.SolveFrom(NewWorkspace(), osol.Basis)
	if err != nil {
		t.Fatalf("stale-basis SolveFrom: %v", err)
	}
	if fallback.WarmStarted {
		t.Fatal("oversized foreign basis was accepted as a warm start")
	}
	if fallback.Status != Optimal || !approx(fallback.Objective, 3, 1e-6) {
		t.Fatalf("fallback: %+v, want optimal objective 3", fallback)
	}
}

func TestBadVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := NewModel()
	m.AddRow(LE, 1, Term{3, 1})
}

// bruteForce solves min c.x, rows, x >= 0 by enumerating all basic
// solutions of the slack-augmented system. Returns (value, feasible).
func bruteForce(c []float64, rows []row) (float64, bool) {
	n := len(c)
	mRows := len(rows)
	// Build equality system with slacks.
	total := n
	for _, r := range rows {
		if r.sense != EQ {
			total++
		}
	}
	a := make([][]float64, mRows)
	b := make([]float64, mRows)
	col := n
	for i, r := range rows {
		a[i] = make([]float64, total)
		for _, t := range r.terms {
			a[i][t.Var] += t.Coef
		}
		b[i] = r.rhs
		switch r.sense {
		case LE:
			a[i][col] = 1
			col++
		case GE:
			a[i][col] = -1
			col++
		}
	}
	// Reduce to an independent row system first: duplicate or empty rows
	// make every square basis singular, which would wrongly report
	// infeasibility.
	a, b, consistent := rowReduce(a, b)
	if !consistent {
		return math.Inf(1), false
	}
	mRows = len(a)
	if mRows == 0 {
		// Vacuous system: unreachable in the property tests, which
		// always include a non-trivial box row.
		return 0, true
	}

	best := math.Inf(1)
	feasible := false
	idx := make([]int, mRows)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == mRows {
			x, ok := solveSquare(a, b, idx)
			if !ok {
				return
			}
			for _, v := range x {
				if v < -1e-7 {
					return
				}
			}
			feasible = true
			val := 0.0
			for p, j := range idx {
				if j < n {
					val += c[j] * x[p]
				}
			}
			if val < best {
				best = val
			}
			return
		}
		for j := start; j < total; j++ {
			idx[k] = j
			rec(j+1, k+1)
		}
	}
	rec(0, 0)
	return best, feasible
}

// rowReduce Gauss-eliminates [A | b], dropping dependent rows. It
// returns the independent system and whether it is consistent.
func rowReduce(a [][]float64, b []float64) ([][]float64, []float64, bool) {
	m := len(a)
	if m == 0 {
		return a, b, true
	}
	cols := len(a[0])
	work := make([][]float64, m)
	for i := range work {
		work[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	rank := 0
	for col := 0; col < cols && rank < m; col++ {
		p := -1
		for r := rank; r < m; r++ {
			if math.Abs(work[r][col]) > 1e-9 && (p < 0 || math.Abs(work[r][col]) > math.Abs(work[p][col])) {
				p = r
			}
		}
		if p < 0 {
			continue
		}
		work[rank], work[p] = work[p], work[rank]
		pv := work[rank][col]
		for j := col; j <= cols; j++ {
			work[rank][j] /= pv
		}
		for r := 0; r < m; r++ {
			if r == rank {
				continue
			}
			f := work[r][col]
			if f == 0 {
				continue
			}
			for j := col; j <= cols; j++ {
				work[r][j] -= f * work[rank][j]
			}
		}
		rank++
	}
	for r := rank; r < m; r++ {
		if math.Abs(work[r][cols]) > 1e-7 {
			return nil, nil, false // 0 = nonzero: inconsistent
		}
	}
	outA := make([][]float64, rank)
	outB := make([]float64, rank)
	for r := 0; r < rank; r++ {
		outA[r] = work[r][:cols]
		outB[r] = work[r][cols]
	}
	return outA, outB, true
}

// solveSquare solves A[:, idx] x = b by Gaussian elimination.
func solveSquare(a [][]float64, b []float64, idx []int) ([]float64, bool) {
	m := len(b)
	mat := make([][]float64, m)
	for i := range mat {
		mat[i] = make([]float64, m+1)
		for k, j := range idx {
			mat[i][k] = a[i][j]
		}
		mat[i][m] = b[i]
	}
	for col := 0; col < m; col++ {
		p := -1
		for r := col; r < m; r++ {
			if math.Abs(mat[r][col]) > 1e-9 && (p < 0 || math.Abs(mat[r][col]) > math.Abs(mat[p][col])) {
				p = r
			}
		}
		if p < 0 {
			return nil, false
		}
		mat[col], mat[p] = mat[p], mat[col]
		pv := mat[col][col]
		for j := col; j <= m; j++ {
			mat[col][j] /= pv
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := mat[r][col]
			if f == 0 {
				continue
			}
			for j := col; j <= m; j++ {
				mat[r][j] -= f * mat[col][j]
			}
		}
	}
	x := make([]float64, m)
	for i := range x {
		x[i] = mat[i][m]
	}
	return x, true
}

// Property: simplex agrees with brute-force basic-solution enumeration
// on random small bounded LPs.
func TestSimplexMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		mRows := 1 + rng.Intn(3)
		m := NewModel()
		c := make([]float64, n)
		for j := 0; j < n; j++ {
			c[j] = math.Round((rng.Float64()*4-2)*4) / 4
			m.AddVar(c[j], "")
		}
		var rows []row
		for i := 0; i < mRows; i++ {
			var terms []Term
			for j := 0; j < n; j++ {
				coef := math.Round((rng.Float64()*4-2)*2) / 2
				if coef != 0 {
					terms = append(terms, Term{j, coef})
				}
			}
			sense := Sense(rng.Intn(3))
			rhs := math.Round((rng.Float64()*6-2)*2) / 2
			m.AddRow(sense, rhs, terms...)
			rows = append(rows, row{sense: sense, rhs: rhs, terms: terms})
		}
		// Bound the feasible region so unboundedness cannot occur.
		boxTerms := make([]Term, n)
		for j := 0; j < n; j++ {
			boxTerms[j] = Term{j, 1}
		}
		m.AddRow(LE, 10, boxTerms...)
		rows = append(rows, row{sense: LE, rhs: 10, terms: boxTerms})

		sol, err := m.Solve()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want, feas := bruteForce(c, rows)
		if !feas {
			return sol.Status == Infeasible
		}
		if sol.Status != Optimal {
			t.Logf("seed %d: status %v but brute force found %v", seed, sol.Status, want)
			return false
		}
		if !approx(sol.Objective, want, 1e-6) {
			t.Logf("seed %d: simplex %v vs brute %v", seed, sol.Objective, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: at optimality, duals satisfy strong duality (y.b == c.x) on
// random feasible bounded LPs.
func TestStrongDuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := NewModel()
		for j := 0; j < n; j++ {
			m.AddVar(0.5+rng.Float64(), "") // positive costs: min is bounded
		}
		mRows := 1 + rng.Intn(4)
		rhs := make([]float64, 0, mRows)
		for i := 0; i < mRows; i++ {
			var terms []Term
			for j := 0; j < n; j++ {
				terms = append(terms, Term{j, rng.Float64()})
			}
			r := 1 + rng.Float64()*3
			m.AddRow(GE, r, terms...) // feasible: x large enough works
			rhs = append(rhs, r)
		}
		sol, err := m.Solve()
		if err != nil || sol.Status != Optimal {
			return false
		}
		dualObj := 0.0
		for i, y := range sol.Dual {
			if y < -1e-7 {
				return false // >= rows of a min problem must have y >= 0
			}
			dualObj += y * rhs[i]
		}
		return approx(dualObj, sol.Objective, 1e-6*(1+math.Abs(sol.Objective)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
