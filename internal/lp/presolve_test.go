package lp

import (
	"math/rand"
	"testing"

	"repro/internal/testutil"
)

// solveBoth solves the model with presolve off and on (fresh
// workspaces) and checks the two agree on status and, when optimal, on
// the objective; it returns both solutions plus the presolve-on
// workspace for stats assertions.
func solveBoth(t *testing.T, m *Model) (off, on *Solution, ws *Workspace) {
	t.Helper()
	m.SetPresolve(false)
	var err error
	off, err = m.SolveWith(NewWorkspace())
	if err != nil {
		t.Fatalf("no-presolve solve: %v", err)
	}
	m.SetPresolve(true)
	ws = NewWorkspace()
	on, err = m.SolveWith(ws)
	if err != nil {
		t.Fatalf("presolved solve: %v", err)
	}
	if off.Status != on.Status {
		t.Fatalf("status mismatch: no-presolve %v, presolved %v", off.Status, on.Status)
	}
	if off.Status == Optimal && !testutil.Near(off.Objective, on.Objective, 1e-7) {
		t.Fatalf("objective mismatch: no-presolve %v, presolved %v", off.Objective, on.Objective)
	}
	return off, on, ws
}

// TestPresolveSingletonEQFixDual pins the fix-variable reduction and
// its dual reconstruction: x fixed by an = singleton, the covering row
// shifted away, everything solved by presolve alone.
func TestPresolveSingletonEQFixDual(t *testing.T) {
	m := NewModel()
	x := m.AddVar(2, "x")
	y := m.AddVar(3, "y")
	m.AddRow(EQ, 4, Term{x, 1})
	m.AddRow(GE, 6, Term{x, 1}, Term{y, 1})
	_, sol, ws := solveBoth(t, m)
	if !approx(sol.X[x], 4, 1e-9) || !approx(sol.X[y], 2, 1e-9) {
		t.Errorf("X = %v, want [4 2]", sol.X)
	}
	if !approx(sol.Objective, 14, 1e-9) {
		t.Errorf("objective = %v, want 14", sol.Objective)
	}
	// Reconstructed duals: y_1 = 3 from y's reduced cost, then the = row
	// prices x at zero: y_0 = 2 - 3 = -1. Strong duality holds.
	if !approx(sol.Dual[1], 3, 1e-9) || !approx(sol.Dual[0], -1, 1e-9) {
		t.Errorf("Dual = %v, want [-1 3]", sol.Dual)
	}
	checkPrimalFeasible(t, m, sol.X)
	checkStrongDuality(t, m, sol)
	if st := ws.Stats(); st.PresolveRows != 2 || st.PresolveCols != 2 {
		t.Errorf("presolve stats = %+v, want both rows removed and both cols removed", st)
	}
	// The whole model dissolved: the simplex never ran an iteration.
	if sol.Iterations != 0 {
		t.Errorf("iterations = %d, want 0 (model fully presolved)", sol.Iterations)
	}
	if sol.Basis.Empty() {
		t.Fatalf("postsolved basis is empty")
	}
}

// TestPresolveLowerBoundShift pins the bound-tightening shift: a >=
// singleton becomes a variable shift and the row's dual comes back
// from the shifted variable's reduced cost.
func TestPresolveLowerBoundShift(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1, "x")
	m.AddRow(GE, 5, Term{x, 1})
	_, sol, _ := solveBoth(t, m)
	if !approx(sol.X[x], 5, 1e-9) || !approx(sol.Objective, 5, 1e-9) {
		t.Errorf("X=%v obj=%v, want x=5 obj=5", sol.X, sol.Objective)
	}
	if !approx(sol.Dual[0], 1, 1e-9) {
		t.Errorf("Dual = %v, want [1]", sol.Dual)
	}
	checkStrongDuality(t, m, sol)
}

// TestPresolveZeroUpperBound pins the near-zero upper-bound fix and
// its sign-clamped dual: min -x subject to x <= 0 must report x = 0
// with the <= row's dual at -1, not a sign-violating +1.
func TestPresolveZeroUpperBound(t *testing.T) {
	m := NewModel()
	x := m.AddVar(-1, "x")
	m.AddRow(LE, 0, Term{x, 1})
	_, sol, _ := solveBoth(t, m)
	if !approx(sol.X[x], 0, 1e-9) || !approx(sol.Objective, 0, 1e-9) {
		t.Errorf("X=%v obj=%v, want x=0 obj=0", sol.X, sol.Objective)
	}
	checkStrongDuality(t, m, sol)
}

// TestPresolveFreeSingletonColumn pins the zero-cost absorber: the
// costless surplus variable eats its >= row, the remaining variable
// becomes an empty column fixed at zero, and postsolve rebuilds the
// absorber's value from the row snapshot.
func TestPresolveFreeSingletonColumn(t *testing.T) {
	m := NewModel()
	x := m.AddVar(0, "x")
	y := m.AddVar(1, "y")
	m.AddRow(GE, 3, Term{x, 1}, Term{y, 1})
	_, sol, ws := solveBoth(t, m)
	if !approx(sol.X[x], 3, 1e-9) || !approx(sol.X[y], 0, 1e-9) {
		t.Errorf("X = %v, want [3 0]", sol.X)
	}
	checkPrimalFeasible(t, m, sol.X)
	checkStrongDuality(t, m, sol)
	if st := ws.Stats(); st.PresolveRows != 1 || st.PresolveCols != 2 {
		t.Errorf("presolve stats = %+v, want 1 row and 2 cols removed", st)
	}
}

// TestPresolveSubstEQ pins the singleton-column substitution out of an
// = row: the row survives as the inequality keeping the substituted
// variable non-negative, and its dual gains the c_j/a correction.
func TestPresolveSubstEQ(t *testing.T) {
	m := NewModel()
	s := m.AddVar(2, "s")
	x := m.AddVar(1, "x")
	m.AddRow(EQ, 5, Term{s, 1}, Term{x, 1})
	m.AddRow(LE, 3, Term{x, 1})
	_, sol, _ := solveBoth(t, m)
	// min 2s + x with s = 5 - x: objective 10 - x, so x runs to its
	// upper bound 3 and s picks up the remainder.
	if !approx(sol.X[x], 3, 1e-9) || !approx(sol.X[s], 2, 1e-9) {
		t.Errorf("X = %v, want [2 3]", sol.X)
	}
	if !approx(sol.Objective, 7, 1e-9) {
		t.Errorf("objective = %v, want 7", sol.Objective)
	}
	checkPrimalFeasible(t, m, sol.X)
	checkStrongDuality(t, m, sol)
}

// TestPresolveDuplicateAndRedundantRows pins duplicate-row merging and
// zero-RHS >=-row elimination together: the redundant twin drops with
// dual 0 and the binding copy keeps the tight rhs.
func TestPresolveDuplicateAndRedundantRows(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1, "x")
	y := m.AddVar(1, "y")
	m.AddRow(GE, 0, Term{x, 1}, Term{y, 1}) // redundant under x,y >= 0
	m.AddRow(GE, 2, Term{x, 1}, Term{y, 1}) // binding
	m.AddRow(GE, 1, Term{x, 1}, Term{y, 1}) // duplicate, dominated
	_, sol, ws := solveBoth(t, m)
	if !approx(sol.Objective, 2, 1e-9) {
		t.Errorf("objective = %v, want 2", sol.Objective)
	}
	checkPrimalFeasible(t, m, sol.X)
	checkStrongDuality(t, m, sol)
	if st := ws.Stats(); st.PresolveRows < 2 {
		t.Errorf("presolve stats = %+v, want at least 2 rows removed", st)
	}
}

// TestPresolveDetectsStatuses pins presolve-detected infeasibility and
// unboundedness, which short-circuit the simplex entirely.
func TestPresolveDetectsStatuses(t *testing.T) {
	t.Run("empty row contradiction", func(t *testing.T) {
		m := NewModel()
		m.AddVar(1, "x")
		m.AddRow(GE, 1) // 0 >= 1
		sol, err := m.Solve()
		if err != nil || sol.Status != Infeasible {
			t.Fatalf("got %+v (err %v), want infeasible", sol, err)
		}
	})
	t.Run("duplicate equalities disagree", func(t *testing.T) {
		m := NewModel()
		x := m.AddVar(1, "x")
		y := m.AddVar(1, "y")
		m.AddRow(EQ, 1, Term{x, 1}, Term{y, 2})
		m.AddRow(EQ, 3, Term{x, 1}, Term{y, 2})
		sol, err := m.Solve()
		if err != nil || sol.Status != Infeasible {
			t.Fatalf("got %+v (err %v), want infeasible", sol, err)
		}
	})
	t.Run("unconstrained column ray", func(t *testing.T) {
		m := NewModel()
		m.Maximize()
		m.AddVar(1, "x")
		sol, err := m.Solve()
		if err != nil || sol.Status != Unbounded {
			t.Fatalf("got %+v (err %v), want unbounded", sol, err)
		}
	})
	t.Run("infeasibility beats an unconstrained ray", func(t *testing.T) {
		// Fuzz-found (FuzzSolveMPS): a column whose duplicate terms
		// cancel to zero looks like an improving free ray, but the rest
		// of the model is infeasible — and unboundedness is only a valid
		// verdict on a feasible model. Presolve used to answer Unbounded
		// the moment it saw the empty column, before discovering the
		// contradiction.
		m := NewModel()
		free := m.AddVar(-10, "free")
		x := m.AddVar(0, "x")
		s := m.AddVar(0, "s")
		m.AddRow(EQ, 0, Term{free, 1}, Term{free, -1}) // coalesces to 0 = 0
		m.AddRow(EQ, 0, Term{x, 1}, Term{s, 1})        // x = s = 0
		m.AddRow(GE, 1, Term{x, 1})                    // contradicts x = 0
		sol, err := m.Solve()
		if err != nil || sol.Status != Infeasible {
			t.Fatalf("got %+v (err %v), want infeasible", sol, err)
		}
		// The mirror case stays Unbounded: same ray, feasible remainder.
		m2 := NewModel()
		m2.AddVar(-10, "free")
		x2 := m2.AddVar(0, "x")
		m2.AddRow(GE, 1, Term{x2, 1})
		sol2, err := m2.Solve()
		if err != nil || sol2.Status != Unbounded {
			t.Fatalf("got %+v (err %v), want unbounded", sol2, err)
		}
	})
}

// addReducibleStructure grafts presolve-bait onto a model: a duplicate
// row, a redundant zero-RHS >= row, an empty row, a fixed variable
// wired into an existing row, and a lower-bounded variable. The model
// keeps the same optimum over the original variables by construction
// only where the additions are redundant; the comparison oracle is the
// no-presolve solve of the *same* grown model, so every addition is
// fair game.
func addReducibleStructure(rng *rand.Rand, m *Model) {
	if len(m.rows) > 0 {
		// Exact duplicate of a random row (same term order).
		src := m.rows[rng.Intn(len(m.rows))]
		m.rows = append(m.rows, row{sense: src.sense, rhs: src.rhs, terms: append([]Term(nil), src.terms...)})
	}
	// Redundant sign row over a random subset.
	var terms []Term
	for j := 0; j < m.NumVars(); j++ {
		if rng.Float64() < 0.5 {
			terms = append(terms, Term{Var: j, Coef: rng.Float64()})
		}
	}
	if len(terms) > 0 {
		m.AddRow(GE, 0, terms...)
	}
	m.AddRow(LE, 1+rng.Float64()) // empty row, trivially true
	// A variable fixed by an = singleton, feeding an existing row.
	if len(m.rows) > 0 {
		r := rng.Intn(len(m.rows))
		z := m.AddColumn(rng.Float64()*2-1, "", RowCoef{Row: r, Coef: rng.Float64()})
		m.AddRow(EQ, rng.Float64()*2, Term{z, 1})
	}
	// A lower-bounded variable with positive cost (bounded).
	w := m.AddVar(0.5+rng.Float64(), "")
	m.AddRow(GE, rng.Float64()*3, Term{w, 1})
}

// TestPresolveEquivalenceRandom cross-checks presolve against the raw
// simplex over random models salted with reducible structure: same
// status, same objective, and the postsolved solution must be primal
// feasible with valid duals for the original program.
func TestPresolveEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sawReduction := false
	for trial := 0; trial < 60; trial++ {
		var m *Model
		if trial%2 == 0 {
			m = randomPackingModel(rng)
		} else {
			m = randomCoveringModel(rng)
		}
		addReducibleStructure(rng, m)
		_, on, ws := solveBoth(t, m)
		if t.Failed() {
			t.Fatalf("trial %d diverged", trial)
		}
		if on.Status != Optimal {
			continue
		}
		checkPrimalFeasible(t, m, on.X)
		checkStrongDuality(t, m, on)
		if st := ws.Stats(); st.PresolveRows > 0 || st.PresolveCols > 0 {
			sawReduction = true
		}
	}
	if !sawReduction {
		t.Fatalf("no trial triggered a presolve reduction; the bait generator is broken")
	}
}

// TestPresolvePostsolvedBasisWarmStarts checks the acceptance
// criterion that matters for the serving stack: the basis coming out
// of postsolve must be usable by SolveFrom on the original, since the
// steady-state masters capture it, grow the model, and re-solve warm.
func TestPresolvePostsolvedBasisWarmStarts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	warmHits := 0
	for trial := 0; trial < 40; trial++ {
		m := randomCoveringModel(rng)
		addReducibleStructure(rng, m)
		ws := NewWorkspace()
		sol, err := m.SolveWith(ws)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			continue
		}
		if sol.Basis.Empty() {
			t.Fatalf("trial %d: optimal presolved solve returned an empty basis", trial)
		}
		// Grow the model with a cutting row and re-solve warm.
		var terms []Term
		for j := 0; j < m.NumVars(); j++ {
			terms = append(terms, Term{Var: j, Coef: 1})
		}
		m.AddRow(GE, 1.05*sum(sol.X), terms...)
		warm, err := m.SolveFrom(ws, sol.Basis)
		if err != nil {
			t.Fatalf("trial %d: warm re-solve: %v", trial, err)
		}
		m.SetPresolve(false)
		cold, err := m.SolveWith(NewWorkspace())
		if err != nil {
			t.Fatalf("trial %d: cold oracle: %v", trial, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status %v, cold %v", trial, warm.Status, cold.Status)
		}
		if cold.Status == Optimal {
			if !testutil.Near(warm.Objective, cold.Objective, 1e-6) {
				t.Fatalf("trial %d: warm objective %v, cold %v", trial, warm.Objective, cold.Objective)
			}
			checkPrimalFeasible(t, m, warm.X)
		}
		if warm.WarmStarted {
			warmHits++
		}
	}
	// The warm path may legitimately fall back on stale numerics, but if
	// it never sticks, postsolve is producing junk bases.
	if warmHits == 0 {
		t.Fatalf("no postsolved basis ever warm-started")
	}
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}

// TestPresolveOptOut checks SetPresolve(false) really bypasses the
// reductions: the workspace records no presolve activity.
func TestPresolveOptOut(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1, "x")
	m.AddRow(GE, 5, Term{x, 1})
	m.SetPresolve(false)
	ws := NewWorkspace()
	sol, err := m.SolveWith(ws)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %+v err %v", sol, err)
	}
	if st := ws.Stats(); st.PresolveRows != 0 || st.PresolveCols != 0 {
		t.Errorf("opt-out still presolved: %+v", st)
	}
	if !approx(sol.Objective, 5, 1e-9) {
		t.Errorf("objective = %v, want 5", sol.Objective)
	}
}

// TestPresolveIterationReduction demonstrates the point of the pass on
// a steady-state-shaped program: redundant zero-RHS rows and fixed
// variables cost the raw simplex pivots that the presolved solve never
// performs.
func TestPresolveIterationReduction(t *testing.T) {
	build := func() *Model {
		m := NewModel()
		n := 20
		for j := 0; j < n; j++ {
			m.AddVar(1+float64(j%3), "")
		}
		for j := 0; j < n; j++ {
			m.AddRow(GE, 0, Term{j, 1}, Term{(j + 1) % n, 1}) // redundant
		}
		for j := 0; j < n/2; j++ {
			m.AddRow(EQ, float64(j%4), Term{j, 1}) // fixes half the vars
		}
		var terms []Term
		for j := n / 2; j < n; j++ {
			terms = append(terms, Term{Var: j, Coef: 1})
		}
		m.AddRow(GE, 7, terms...)
		return m
	}
	mOff := build()
	mOff.SetPresolve(false)
	off, err := mOff.SolveWith(NewWorkspace())
	if err != nil {
		t.Fatal(err)
	}
	mOn := build()
	ws := NewWorkspace()
	on, err := mOn.SolveWith(ws)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.Near(off.Objective, on.Objective, 1e-9) {
		t.Fatalf("objective mismatch: %v vs %v", off.Objective, on.Objective)
	}
	st := ws.Stats()
	if st.PresolveRows < 20 || st.PresolveCols < 10 {
		t.Errorf("presolve removed %d rows / %d cols, want >= 20 / >= 10", st.PresolveRows, st.PresolveCols)
	}
	if on.Iterations > off.Iterations {
		t.Errorf("presolved solve used %d iterations, raw used %d — presolve made it worse", on.Iterations, off.Iterations)
	}
	t.Logf("iterations: raw=%d presolved=%d; removed rows=%d cols=%d",
		off.Iterations, on.Iterations, st.PresolveRows, st.PresolveCols)
}

// TestPresolveMaximizeModels runs the reduction stack over maximising
// programs: the min-normalised decisions must not leak the wrong sign
// into values or duals.
func TestPresolveMaximizeModels(t *testing.T) {
	m := NewModel()
	m.Maximize()
	x := m.AddVar(3, "x")
	y := m.AddVar(1, "y")
	m.AddRow(EQ, 2, Term{x, 1})             // fixes x = 2
	m.AddRow(LE, 8, Term{x, 2}, Term{y, 1}) // y <= 4 after the fix
	m.AddRow(LE, 8, Term{x, 2}, Term{y, 1}) // duplicate
	_, sol, _ := solveBoth(t, m)
	if !approx(sol.X[x], 2, 1e-9) || !approx(sol.X[y], 4, 1e-9) {
		t.Errorf("X = %v, want [2 4]", sol.X)
	}
	if !approx(sol.Objective, 10, 1e-9) {
		t.Errorf("objective = %v, want 10", sol.Objective)
	}
	checkPrimalFeasible(t, m, sol.X)
	checkStrongDuality(t, m, sol)
	// Max-model convention: the binding <= row prices y at +1.
	if sol.Dual[1] < -dualTol {
		t.Errorf("dual[1] = %v, want >= 0 for a binding <= row of a max model", sol.Dual[1])
	}
}

// TestPresolveShiftInfeasibleTail checks a shift interacting with a
// later contradiction: x >= 5 shifted, then x <= 3 becomes an empty
// row with a negative rhs — infeasible either way.
func TestPresolveShiftInfeasibleTail(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1, "x")
	m.AddRow(GE, 5, Term{x, 1})
	m.AddRow(LE, 3, Term{x, 1})
	off, on, _ := solveBoth(t, m)
	if off.Status != Infeasible || on.Status != Infeasible {
		t.Fatalf("statuses %v / %v, want infeasible", off.Status, on.Status)
	}
}

// TestPresolveShiftDualThroughSubstEQ is the decoded form of a
// fuzz-found duality gap (FuzzSolveMPS corpus 824a622742f18e2f). The
// demand row's variable gets shifted, then substituted out of its
// balance equation; reconstructing the shift's dual requires knowing
// whether the shifted variable ended up basic, which postsolve reads
// from the reduced basis — and the reduced basis can hold a row's
// slack at a *different* row's basis position. The scatter used to
// re-label such a unit column with the position's row, which cascaded
// into a zero dual on the demand row (y.b = -50 instead of 300).
func TestPresolveShiftDualThroughSubstEQ(t *testing.T) {
	m := NewModel()
	x1 := m.AddVar(0, "x1")
	x00 := m.AddVar(0, "x00")
	i1 := m.AddVar(5, "i1")
	x0 := m.AddVar(7, "x0")
	s2 := m.AddVar(0, "s2")
	m.AddRow(EQ, 0, Term{x1, 1}, Term{i1, -1}, Term{x0, 1})   // BAL1
	m.AddRow(EQ, 0, Term{x00, 1}, Term{i1, 1}, Term{s2, -10}) // BAL2
	m.AddRow(LE, 0)                                           // empty
	m.AddRow(LE, 10, Term{x00, 1})                            // CAP2
	m.AddRow(GE, 10, Term{x1, 1})                             // DEM1
	m.AddRow(GE, 7, Term{s2, 1})                              // DEM2
	off, on, _ := solveBoth(t, m)
	if !approx(on.Objective, 300, 1e-9) {
		t.Fatalf("objective = %v, want 300", on.Objective)
	}
	checkStrongDuality(t, m, off)
	checkStrongDuality(t, m, on)
	// The demand row DEM2 is what forces all the flow: its dual is 50.
	if !approx(on.Dual[5], 50, 1e-7) {
		t.Errorf("presolved dual[DEM2] = %v, want 50", on.Dual[5])
	}
}
