package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestWarmStartAfterCutRow pins the canonical cutting-plane flow: solve,
// append a violated inequality, re-solve from the previous basis. The
// dual simplex must repair feasibility without a cold restart.
func TestWarmStartAfterCutRow(t *testing.T) {
	m := NewModel()
	m.Maximize()
	x := m.AddVar(2, "x")
	y := m.AddVar(1, "y")
	m.AddRow(LE, 4, Term{x, 1})
	m.AddRow(LE, 3, Term{y, 1})
	ws := NewWorkspace()
	sol, err := m.SolveWith(ws)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 11, 1e-8) {
		t.Fatalf("cold: %v obj %v, want 11", sol.Status, sol.Objective)
	}
	// Cut off the optimum (4, 3): now the unique optimum is (4, 1).
	m.AddRow(LE, 5, Term{x, 1}, Term{y, 1})
	warm, err := m.SolveFrom(ws, sol.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal || !approx(warm.Objective, 9, 1e-8) {
		t.Fatalf("warm: %v obj %v, want 9", warm.Status, warm.Objective)
	}
	if !warm.WarmStarted {
		t.Error("solve did not take the warm path")
	}
	if warm.DualIterations == 0 {
		t.Error("expected dual-simplex cleanup pivots after a violated cut")
	}
	if !approx(warm.X[x], 4, 1e-8) || !approx(warm.X[y], 1, 1e-8) {
		t.Errorf("X = %v, want (4, 1)", warm.X)
	}
	st := ws.Stats()
	if st.WarmAttempts != 1 || st.WarmHits != 1 {
		t.Errorf("stats = %+v, want one warm attempt and hit", st)
	}
}

// TestWarmStartAddColumn pins the column-generation flow: a priced-in
// column with a profitable reduced cost enters via the primal without a
// cold restart.
func TestWarmStartAddColumn(t *testing.T) {
	m := NewModel()
	m.Maximize()
	x := m.AddVar(1, "x")
	budget := m.AddRow(LE, 4, Term{x, 1})
	ws := NewWorkspace()
	sol, err := m.SolveWith(ws)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 4, 1e-8) {
		t.Fatalf("cold objective = %v, want 4", sol.Objective)
	}
	y := m.AddColumn(3, "y", RowCoef{Row: budget, Coef: 1})
	warm, err := m.SolveFrom(ws, sol.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal || !approx(warm.Objective, 12, 1e-8) {
		t.Fatalf("warm: %v obj %v, want 12", warm.Status, warm.Objective)
	}
	if !warm.WarmStarted {
		t.Error("solve did not take the warm path")
	}
	if !approx(warm.X[y], 4, 1e-8) || !approx(warm.X[x], 0, 1e-8) {
		t.Errorf("X = %v, want y = 4", warm.X)
	}
}

// TestWarmStartInfeasibleCut checks that contradictory appended rows
// still produce a trustworthy Infeasible verdict (the warm path defers
// to a cold solve rather than proving infeasibility itself).
func TestWarmStartInfeasibleCut(t *testing.T) {
	m := NewModel()
	m.Maximize()
	x := m.AddVar(1, "x")
	m.AddRow(LE, 4, Term{x, 1})
	ws := NewWorkspace()
	sol, err := m.SolveWith(ws)
	if err != nil {
		t.Fatal(err)
	}
	m.AddRow(GE, 10, Term{x, 1})
	warm, err := m.SolveFrom(ws, sol.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", warm.Status)
	}
}

// TestWarmStartStaleBasis feeds SolveFrom a basis from an unrelated
// model; it must fall back to a correct cold solve.
func TestWarmStartStaleBasis(t *testing.T) {
	other := NewModel()
	other.Maximize()
	for j := 0; j < 6; j++ {
		// Weight the last variable so the stale basis references a
		// structural index the small model below does not have.
		other.AddVar(float64(1+j), "")
	}
	terms := make([]Term, 6)
	for j := range terms {
		terms[j] = Term{j, 1}
	}
	other.AddRow(LE, 1, terms...)
	osol, err := other.Solve()
	if err != nil {
		t.Fatal(err)
	}

	m := NewModel()
	x := m.AddVar(2, "x")
	m.AddRow(GE, 3, Term{x, 1})
	ws := NewWorkspace()
	sol, err := m.SolveFrom(ws, osol.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 6, 1e-8) {
		t.Fatalf("got %v obj %v, want 6", sol.Status, sol.Objective)
	}
	if sol.WarmStarted {
		t.Error("a stale basis must not report a warm start")
	}
	if st := ws.Stats(); st.WarmAttempts != 1 || st.WarmHits != 0 || st.ColdSolves == 0 {
		t.Errorf("stats = %+v, want a failed warm attempt and a cold fallback", st)
	}
}

// TestWarmStartMatchesColdProperty grows random packing models with
// random extra rows and checks the warm-started optimum agrees with a
// from-scratch solve of the same grown model.
func TestWarmStartMatchesColdProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		m := randomPackingModel(rng)
		ws := NewWorkspace()
		sol, err := m.SolveWith(ws)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: cold status %v", trial, sol.Status)
		}
		basis := sol.Basis
		// Append 1-3 random rows, some of which cut the optimum off.
		for extra, nextra := 0, 1+rng.Intn(3); extra < nextra; extra++ {
			var terms []Term
			for j := 0; j < m.NumVars(); j++ {
				if rng.Float64() < 0.6 {
					terms = append(terms, Term{j, rng.Float64() * 2})
				}
			}
			if len(terms) == 0 {
				terms = append(terms, Term{rng.Intn(m.NumVars()), 1})
			}
			sense := LE
			if rng.Float64() < 0.3 {
				sense = GE
			}
			m.AddRow(sense, rng.Float64()*3, terms...)
		}
		warm, err := m.SolveFrom(ws, basis)
		if err != nil {
			t.Fatalf("trial %d: warm: %v", trial, err)
		}
		cold, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: cold re-solve: %v", trial, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status %v vs cold %v", trial, warm.Status, cold.Status)
		}
		if cold.Status != Optimal {
			continue
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
			t.Errorf("trial %d: warm obj %v vs cold %v", trial, warm.Objective, cold.Objective)
		}
		checkPrimalFeasible(t, m, warm.X)
		checkStrongDuality(t, m, warm)
	}
}

// TestWarmStartChainedRounds drives several cut rounds through one
// workspace, the exact shape of the Multicast-LB master loop, and
// checks every round stays on the warm path.
func TestWarmStartChainedRounds(t *testing.T) {
	m := NewModel()
	m.Maximize()
	n := 6
	for j := 0; j < n; j++ {
		m.AddVar(1, "")
	}
	for j := 0; j < n; j++ {
		m.AddRow(LE, 10, Term{j, 1})
	}
	ws := NewWorkspace()
	sol, err := m.SolveWith(ws)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		terms := make([]Term, n)
		for j := 0; j < n; j++ {
			terms[j] = Term{j, 1}
		}
		m.AddRow(LE, 40-float64(round*5), terms...)
		sol, err = m.SolveFrom(ws, sol.Basis)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !sol.WarmStarted {
			t.Fatalf("round %d fell off the warm path", round)
		}
		if want := math.Min(60, 40-float64(round*5)); !approx(sol.Objective, want, 1e-7) {
			t.Fatalf("round %d: objective %v, want %v", round, sol.Objective, want)
		}
	}
	st := ws.Stats()
	if st.WarmHits != 5 {
		t.Errorf("warm hits = %d, want 5 (stats %+v)", st.WarmHits, st)
	}
	if st.Refactorizations != 0 {
		t.Errorf("refactorizations = %d, want 0 (these tiny warm chains must never overflow the eta file mid-solve)", st.Refactorizations)
	}
	if st.Factorizations < 6 {
		t.Errorf("factorizations = %d, want >= 6 (one sparse LU per solve: the cold start plus five warm rounds)", st.Factorizations)
	}
}
