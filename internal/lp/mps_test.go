package lp

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/testutil"
)

// TestReadMPSFreeFormat parses a small free-format file touching every
// row sense and checks the optimum against the hand-computed answer:
// min 2x + 3y  s.t.  x + y >= 4,  x <= 3,  x - y = 1  ->  x=2.5, y=1.5.
func TestReadMPSFreeFormat(t *testing.T) {
	src := `
* hand-written free-format sample
NAME          TINY
ROWS
 N  COST
 G  COVER
 L  CAP
 E  TIE
COLUMNS
    X         COST      2.0   COVER     1.0
    X         CAP       1.0   TIE       1.0
    Y         COST      3.0   COVER     1.0
    Y         TIE       -1.0
RHS
    RHS       COVER     4.0   CAP       3.0
    RHS       TIE       1.0
ENDATA
`
	f, err := ReadMPS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "TINY" {
		t.Fatalf("name = %q", f.Name)
	}
	if f.NumVars() != 2 || f.NumRows() != 3 {
		t.Fatalf("got %d vars, %d rows", f.NumVars(), f.NumRows())
	}
	sol, err := f.Model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if got := f.Objective(sol); !testutil.Near(got, 9.5, 1e-9) {
		t.Fatalf("objective = %v, want 9.5", got)
	}
	x := f.Values(sol)
	if !testutil.Near(x[0], 2.5, 1e-9) || !testutil.Near(x[1], 1.5, 1e-9) {
		t.Fatalf("x = %v, want [2.5 1.5]", x)
	}
}

// TestReadMPSFixedFormat parses the same program laid out in the
// classic fixed columns (fields at 2, 5, 15, 25, 40, 50) to pin that
// whitespace tokenisation really does cover fixed-format files.
func TestReadMPSFixedFormat(t *testing.T) {
	src := "* fixed-format layout\n" +
		"NAME          TINYFIX\n" +
		"ROWS\n" +
		" N  COST\n" +
		" G  COVER\n" +
		" L  CAP\n" +
		"COLUMNS\n" +
		"    X         COST            2.0   COVER           1.0\n" +
		"    X         CAP             1.0\n" +
		"    Y         COST            3.0   COVER           1.0\n" +
		"RHS\n" +
		"    RHS       COVER           4.0   CAP             3.0\n" +
		"ENDATA\n"
	f, err := ReadMPS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := f.Model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// min 2x+3y, x+y>=4, x<=3 -> x=3, y=1, obj=9.
	if got := f.Objective(sol); sol.Status != Optimal || !testutil.Near(got, 9, 1e-9) {
		t.Fatalf("status %v objective %v, want optimal 9", sol.Status, got)
	}
}

// TestMPSBoundLowering exercises every supported BOUNDS type and
// checks that solutions come back in the original variable space.
func TestMPSBoundLowering(t *testing.T) {
	// min xl + xu + 0.5*xf + xfx + 0.3*xm
	//   s.t. xl + xu + xf + xfx + xm >= 10
	// with xl >= 2, 0 <= xu <= 3, xf free, xfx = 1.5, xm <= 1 (no lower
	// bound). Cheapest cover per unit is xm (0.3, capped at 1), then the
	// free xf (0.5); xl sits at its lower bound 2, xfx is fixed at 1.5,
	// xu stays 0. xf = 10 - 1 - 2 - 1.5 = 5.5 and
	// obj = 2 + 0 + 0.5*5.5 + 1.5 + 0.3 = 6.55.
	src := `
NAME          BOUNDS
ROWS
 N  COST
 G  COVER
COLUMNS
    XL        COST      1.0   COVER     1.0
    XU        COST      1.0   COVER     1.0
    XF        COST      0.5   COVER     1.0
    XFX       COST      1.0   COVER     1.0
    XM        COST      0.3   COVER     1.0
RHS
    RHS       COVER     10.0
BOUNDS
 LO BND       XL        2.0
 UP BND       XU        3.0
 FR BND       XF
 FX BND       XFX       1.5
 MI BND       XM
 UP BND       XM        1.0
ENDATA
`
	f, err := ReadMPS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := f.Model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	x := f.Values(sol)
	byName := map[string]float64{}
	for j, n := range f.VarNames() {
		byName[n] = x[j]
	}
	if !testutil.Near(byName["XFX"], 1.5, 1e-9) {
		t.Fatalf("fixed variable XFX = %v, want 1.5", byName["XFX"])
	}
	if byName["XL"] < 2-1e-9 {
		t.Fatalf("XL = %v violates its lower bound 2", byName["XL"])
	}
	if byName["XU"] > 3+1e-9 {
		t.Fatalf("XU = %v violates its upper bound 3", byName["XU"])
	}
	if byName["XM"] > 1+1e-9 {
		t.Fatalf("XM = %v violates its upper bound 1", byName["XM"])
	}
	if got := f.Objective(sol); !testutil.Near(got, 6.55, 1e-7) {
		t.Fatalf("objective = %v, want 6.55 (x = %v)", got, byName)
	}
	if !testutil.Near(byName["XF"], 5.5, 1e-7) {
		t.Fatalf("XF = %v, want 5.5", byName["XF"])
	}
	// The cover row must hold in the original space.
	s := 0.0
	for _, v := range x {
		s += v
	}
	if s < 10-1e-7 {
		t.Fatalf("cover row violated: sum = %v", s)
	}
}

// TestMPSFreeVariableGoesNegative pins the FR split: an unconstrained-
// below variable must be able to take a negative optimal value, and
// Values must undo the split.
func TestMPSFreeVariableGoesNegative(t *testing.T) {
	// min y  s.t.  y >= -5 written as -y <= 5, y free -> y = -5.
	src := `
NAME
ROWS
 N  COST
 L  FLOOR
COLUMNS
    Y         COST      1.0   FLOOR     -1.0
RHS
    RHS       FLOOR     5.0
BOUNDS
 FR BND       Y
ENDATA
`
	f, err := ReadMPS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := f.Model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if got := f.Value(sol, 0); !testutil.Near(got, -5, 1e-9) {
		t.Fatalf("y = %v, want -5", got)
	}
	if got := f.Objective(sol); !testutil.Near(got, -5, 1e-9) {
		t.Fatalf("objective = %v, want -5", got)
	}
}

// TestMPSRanges checks the RANGES expansion for every row sense.
func TestMPSRanges(t *testing.T) {
	// COST = x; ranged rows force 2 <= x <= 4 from an E row at 2 with
	// range 2, and the optimum sits at the lower edge x = 2.
	src := `
NAME          RANGED
ROWS
 N  COST
 E  BAND
COLUMNS
    X         COST      1.0   BAND      1.0
RHS
    RHS       BAND      2.0
RANGES
    RNG       BAND      2.0
ENDATA
`
	f, err := ReadMPS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := f.Model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !testutil.Near(f.Objective(sol), 2, 1e-9) {
		t.Fatalf("status %v objective %v, want optimal 2", sol.Status, f.Objective(sol))
	}
	// Maximising the same program must hit the upper edge x = 4: the E
	// row with range r>0 spans [rhs, rhs+r].
	src2 := strings.Replace(src, "NAME          RANGED", "NAME          RANGED\nOBJSENSE\n    MAX", 1)
	f2, err := ReadMPS(strings.NewReader(src2))
	if err != nil {
		t.Fatal(err)
	}
	sol2, err := f2.Model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != Optimal || !testutil.Near(f2.Objective(sol2), 4, 1e-9) {
		t.Fatalf("max: status %v objective %v, want optimal 4", sol2.Status, f2.Objective(sol2))
	}
}

// TestMPSObjectiveConstant pins the convention that an RHS entry on
// the objective row is the negated constant term.
func TestMPSObjectiveConstant(t *testing.T) {
	src := `
NAME
ROWS
 N  COST
 G  R1
COLUMNS
    X         COST      1.0   R1        1.0
RHS
    RHS       R1        3.0   COST      -10.0
ENDATA
`
	f, err := ReadMPS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := f.Model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// min x + 10 with x >= 3 -> 13.
	if got := f.Objective(sol); !testutil.Near(got, 13, 1e-9) {
		t.Fatalf("objective = %v, want 13", got)
	}
}

// TestMPSInfeasibleBox: an UP bound below the LO bound must solve to
// Infeasible, the correct verdict for an empty box.
func TestMPSInfeasibleBox(t *testing.T) {
	src := `
NAME
ROWS
 N  COST
 G  R1
COLUMNS
    X         COST      1.0   R1        1.0
RHS
    RHS       R1        1.0
BOUNDS
 LO BND       X         5.0
 UP BND       X         2.0
ENDATA
`
	f, err := ReadMPS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := f.Model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

// TestMPSErrors pins the reader's rejection of malformed and
// unsupported input.
func TestMPSErrors(t *testing.T) {
	cases := map[string]string{
		"no objective row": `
ROWS
 G  R1
ENDATA
`,
		"unknown row in COLUMNS": `
ROWS
 N  COST
COLUMNS
    X         NOPE      1.0
ENDATA
`,
		"integer marker": `
ROWS
 N  COST
COLUMNS
    M1        'MARKER'  'INTORG'
ENDATA
`,
		"integer bound": `
ROWS
 N  COST
COLUMNS
    X         COST      1.0
BOUNDS
 BV BND       X
ENDATA
`,
		"bad coefficient": `
ROWS
 N  COST
COLUMNS
    X         COST      twelve
ENDATA
`,
		"unknown section": `
QSECTION
ENDATA
`,
		"ranges on objective": `
ROWS
 N  COST
COLUMNS
    X         COST      1.0
RANGES
    RNG       COST      1.0
ENDATA
`,
	}
	for name, src := range cases {
		if _, err := ReadMPS(strings.NewReader(src)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

// TestWriteMPSRoundTrip writes random models out and reads them back,
// asserting the round-tripped program solves to the same status and
// objective, with matching variable values in original space.
func TestWriteMPSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		var m *Model
		if trial%2 == 0 {
			m = randomPackingModel(rng)
		} else {
			m = randomCoveringModel(rng)
		}
		want, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var buf bytes.Buffer
		if err := WriteMPS(&buf, m, "RT"); err != nil {
			t.Fatalf("trial %d write: %v", trial, err)
		}
		f, err := ReadMPS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d read back: %v\n%s", trial, err, buf.String())
		}
		got, err := f.Model.Solve()
		if err != nil {
			t.Fatalf("trial %d re-solve: %v", trial, err)
		}
		if got.Status != want.Status {
			t.Fatalf("trial %d: status %v after round trip, want %v", trial, got.Status, want.Status)
		}
		if want.Status == Optimal && !testutil.Near(f.Objective(got), want.Objective, 1e-7) {
			t.Fatalf("trial %d: objective %v after round trip, want %v", trial, f.Objective(got), want.Objective)
		}
	}
}

// TestWriteMPSCoalescesDuplicates: a row built with duplicate terms
// must be written with one summed coefficient per (row, column) pair.
func TestWriteMPSCoalescesDuplicates(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1, "x")
	m.AddRow(LE, 6, Term{x, 1}, Term{x, 2})
	var buf bytes.Buffer
	if err := WriteMPS(&buf, m, "DUP"); err != nil {
		t.Fatal(err)
	}
	// ROWS entry + one coalesced COLUMNS entry + RHS entry = 3 mentions.
	if n := strings.Count(buf.String(), "R0000001"); n != 3 {
		t.Fatalf("row mentioned %d times, want 3 (no duplicate COLUMNS entries):\n%s", n, buf.String())
	}
	f, err := ReadMPS(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	f.Model.Maximize()
	sol, err := f.Model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.Near(f.Values(sol)[0], 2, 1e-9) { // max x s.t. 3x <= 6
		t.Fatalf("x = %v, want 2", f.Values(sol)[0])
	}
}

// TestMPSNamelessRHS accepts RHS/RANGES lines without the optional
// set-name token, as written by several tools.
func TestMPSNamelessRHS(t *testing.T) {
	src := `
NAME
ROWS
 N  COST
 G  R1
COLUMNS
    X         COST      1.0   R1        1.0
RHS
    R1        3.0
ENDATA
`
	f, err := ReadMPS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := f.Model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.Near(f.Objective(sol), 3, 1e-9) {
		t.Fatalf("objective = %v, want 3", f.Objective(sol))
	}
}

// TestMPSRowDual maps duals back through the lowering: a shifted
// variable changes right-hand sides but not dual values.
func TestMPSRowDual(t *testing.T) {
	// min 3x + 2y s.t. x + y >= 6, x >= 4 (as a LO bound). y is cheaper,
	// so it fills the residual cover: x = 4 (at its bound), y = 2, and
	// the cover row's dual is y's cost, 2.
	src := `
NAME
ROWS
 N  COST
 G  COVER
COLUMNS
    X         COST      3.0   COVER     1.0
    Y         COST      2.0   COVER     1.0
RHS
    RHS       COVER     6.0
BOUNDS
 LO BND       X         4.0
ENDATA
`
	f, err := ReadMPS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := f.Model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	x := f.Values(sol)
	if !testutil.Near(x[0], 4, 1e-9) || !testutil.Near(x[1], 2, 1e-9) {
		t.Fatalf("x = %v, want [4 2]", x)
	}
	if d := f.RowDual(sol, 0); !testutil.Near(d, 2, 1e-9) {
		t.Fatalf("cover dual = %v, want 2", d)
	}
	if got := f.Objective(sol); !testutil.Near(got, 16, 1e-9) {
		t.Fatalf("objective = %v, want 16", got)
	}
}

// TestMPSLargeValueParsing guards the %.17g writer round trip at full
// float64 precision.
func TestMPSLargeValueParsing(t *testing.T) {
	m := NewModel()
	x := m.AddVar(math.Pi, "x")
	m.AddRow(GE, math.Sqrt2, Term{x, 1.0 / 3.0})
	var buf bytes.Buffer
	if err := WriteMPS(&buf, m, ""); err != nil {
		t.Fatal(err)
	}
	f, err := ReadMPS(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Model.rows[0].terms[0].Coef; got != 1.0/3.0 {
		t.Fatalf("coefficient %v survived as %v", 1.0/3.0, got)
	}
	if got := f.Model.rows[0].rhs; got != math.Sqrt2 {
		t.Fatalf("rhs %v survived as %v", math.Sqrt2, got)
	}
}
