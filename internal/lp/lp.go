// Package lp implements a small linear-programming toolkit: a sparse
// model builder and a dense two-phase primal simplex solver.
//
// The paper's bounds and heuristics (Multicast-LB, Multicast-UB,
// Broadcast-EB, MulticastMultiSource-UB and the exact tree-packing
// program of Theorem 4) are all linear programs; the original authors
// relied on an external LP solver, which the Go standard library does
// not provide, so this package rebuilds the required machinery from
// scratch. Variables are non-negative; rows may be <=, >= or =;
// objectives may be minimised or maximised. Dual values are exposed,
// which the column-generation solver in internal/tree requires.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Eps is the pivot tolerance of the simplex solver.
const Eps = 1e-9

// feasTol is the tolerance used to declare phase-1 success and to report
// residual feasibility.
const feasTol = 1e-7

// Sense is the relational operator of a constraint row.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // <=
	GE              // >=
	EQ              // =
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Term is one coefficient of a constraint row.
type Term struct {
	Var  int
	Coef float64
}

type row struct {
	sense Sense
	rhs   float64
	terms []Term
}

// Model is a linear program under construction. All variables are
// implicitly bounded below by zero.
type Model struct {
	obj      []float64
	names    []string
	rows     []row
	maximize bool
}

// NewModel returns an empty minimisation model.
func NewModel() *Model { return &Model{} }

// Maximize switches the model to maximisation.
func (m *Model) Maximize() { m.maximize = true }

// AddVar adds a non-negative variable with the given objective
// coefficient and returns its index.
func (m *Model) AddVar(objCoef float64, name string) int {
	m.obj = append(m.obj, objCoef)
	m.names = append(m.names, name)
	return len(m.obj) - 1
}

// NumVars returns the number of variables added so far.
func (m *Model) NumVars() int { return len(m.obj) }

// NumRows returns the number of constraint rows added so far.
func (m *Model) NumRows() int { return len(m.rows) }

// AddRow adds a constraint and returns its row index. Terms referencing
// the same variable twice are summed.
func (m *Model) AddRow(sense Sense, rhs float64, terms ...Term) int {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(m.obj) {
			panic(fmt.Sprintf("lp: term references unknown variable %d", t.Var))
		}
	}
	m.rows = append(m.rows, row{sense: sense, rhs: rhs, terms: append([]Term(nil), terms...)})
	return len(m.rows) - 1
}

// Solution is the result of solving a model.
type Solution struct {
	Status     Status
	Objective  float64   // in the model's own sense (negated back for maximisation)
	X          []float64 // one value per variable
	Dual       []float64 // one value per row; see the Dual convention below
	Iterations int
}

// Dual convention: for a minimisation model the duals y satisfy
// complementary slackness with reduced costs c_j - y.A_j >= 0 and
// y.b = objective; y_i >= 0 for >= rows, y_i <= 0 for <= rows, free for
// = rows. For a maximisation model the returned duals are those of the
// equivalent negated minimisation, negated back, so that y_i >= 0 for
// <= rows of a max model (the usual convention).

// ErrIterationLimit is returned when the simplex fails to converge
// within its iteration budget (indicative of severe cycling).
var ErrIterationLimit = errors.New("lp: simplex iteration limit exceeded")

// Solve runs the two-phase primal simplex and returns the solution.
//
// Heavily degenerate programs (the steady-state flow LPs have hundreds
// of zero right-hand sides) can trap the simplex on a degenerate
// plateau; when that happens Solve retries once with a tiny
// deterministic right-hand-side perturbation, the standard lexicographic
// workaround, at the cost of O(1e-8)-relative noise on the result.
func (m *Model) Solve() (*Solution, error) {
	sol, err := m.solveOnce(0)
	if errors.Is(err, ErrIterationLimit) {
		sol, err = m.solveOnce(1e-7)
	}
	return sol, err
}

func (m *Model) solveOnce(perturb float64) (*Solution, error) {
	n := len(m.obj)
	nrows := len(m.rows)
	prng := newXorshift(uint64(nrows)*0x9e3779b9 + uint64(n) + 7)

	obj := make([]float64, n)
	copy(obj, m.obj)
	if m.maximize {
		for j := range obj {
			obj[j] = -obj[j]
		}
	}

	// Column layout: [0,n) structural, [n, n+nslack) slack/surplus,
	// [n+nslack, total) artificial. One slack per LE/GE row.
	nslack := 0
	for _, r := range m.rows {
		if r.sense != EQ {
			nslack++
		}
	}

	t := &tableau{
		n:       n,
		m:       nrows,
		rowOf:   make([]int, nrows),
		sign:    make([]float64, nrows),
		basis:   make([]int, nrows),
		rhs:     make([]float64, nrows),
		dead:    make([]bool, nrows),
		slackOf: make([]int, nrows),
	}

	// Build dense rows with slacks, normalised to rhs >= 0.
	nart := 0
	artOf := make([]int, nrows) // artificial column per row, or -1
	slackCol := n
	for i, r := range m.rows {
		t.rowOf[i] = i
		t.sign[i] = 1
		t.slackOf[i] = -1
		artOf[i] = -1
		dense := make([]float64, n)
		for _, tm := range r.terms {
			dense[tm.Var] += tm.Coef
		}
		rhs := r.rhs
		if perturb > 0 {
			rhs += perturb * (1 + math.Abs(rhs)) * (1 + float64(prng.intn(1000))/1000)
		}
		slackCoef := 0.0
		switch r.sense {
		case LE:
			slackCoef = 1
		case GE:
			slackCoef = -1
		}
		if rhs < 0 {
			for j := range dense {
				dense[j] = -dense[j]
			}
			rhs = -rhs
			slackCoef = -slackCoef
			t.sign[i] = -1
		}
		col := -1
		if r.sense != EQ {
			col = slackCol
			slackCol++
			t.slackOf[i] = col
		}
		if col < 0 || slackCoef < 0 {
			// EQ row, or a slack that cannot start basic: needs an artificial.
			nart++
		}
		t.denseRows = append(t.denseRows, dense)
		t.rhs[i] = rhs
		t.slackCoef = append(t.slackCoef, slackCoef)
	}

	total := n + nslack + nart
	t.total = total
	t.a = make([]float64, nrows*total)
	t.artStart = n + nslack
	artCol := t.artStart
	for i := range m.rows {
		rowBase := i * total
		copy(t.a[rowBase:rowBase+n], t.denseRows[i])
		if c := t.slackOf[i]; c >= 0 {
			t.a[rowBase+c] = t.slackCoef[i]
		}
		if t.slackOf[i] >= 0 && t.slackCoef[i] > 0 {
			t.basis[i] = t.slackOf[i]
		} else {
			t.a[rowBase+artCol] = 1
			artOf[i] = artCol
			t.basis[i] = artCol
			artCol++
		}
	}
	t.denseRows = nil

	t.improveEps = Eps
	if perturb > 0 {
		// Perturbed pivots make strictly positive but sub-Eps progress;
		// any strict decrease counts, otherwise the stall bailout would
		// defeat the perturbation.
		t.improveEps = 0
	}

	sol := &Solution{X: make([]float64, n), Dual: make([]float64, nrows)}

	// Phase 1: minimise the sum of artificials.
	if nart > 0 {
		p1 := make([]float64, total)
		for i := range m.rows {
			if artOf[i] >= 0 {
				p1[artOf[i]] = 1
			}
		}
		t.setObjective(p1)
		// The artificial sum can never drop below zero: stop at the
		// feasibility threshold (with its perturbation slack).
		phase1Stop := feasTol / 2
		if perturb > 0 {
			phase1Stop = feasTol
		}
		iters, status := t.iterate(t.artStart, phase1Stop) // artificials may leave but not re-enter
		sol.Iterations += iters
		if status == statusIterLimit {
			return nil, fmt.Errorf("%w (phase 1, m=%d total=%d)", ErrIterationLimit, t.m, t.total)
		}
		slack := feasTol
		if perturb > 0 {
			for _, r := range t.rhs {
				slack += 2 * perturb * (2 + math.Abs(r))
			}
		}
		if t.objValue() > slack {
			sol.Status = Infeasible
			return sol, nil
		}
		t.evictArtificials(t.artStart)
	}

	// Phase 2: minimise the true objective; artificials are banned.
	p2 := make([]float64, total)
	copy(p2, obj)
	t.setObjective(p2)
	iters, status := t.iterate(t.artStart, math.Inf(-1))
	sol.Iterations += iters
	switch status {
	case statusIterLimit:
		return nil, fmt.Errorf("%w (phase 2, m=%d total=%d)", ErrIterationLimit, t.m, t.total)
	case statusUnbounded:
		sol.Status = Unbounded
		return sol, nil
	}

	// Extract the primal solution.
	for i, b := range t.basis {
		if b < n {
			sol.X[b] = t.rhs[i]
		}
	}
	objVal := 0.0
	for j, c := range obj {
		objVal += c * sol.X[j]
	}
	if m.maximize {
		sol.Objective = -objVal
	} else {
		sol.Objective = objVal
	}

	// Extract duals from the reduced costs of slack and artificial
	// columns: for a +slack column, y_i = -redcost; for an artificial
	// (EQ rows, or rows whose slack entered with -1), y_i = -redcost of
	// the artificial. Row negation during normalisation flips the sign.
	for i := range m.rows {
		var y float64
		switch {
		case t.slackOf[i] >= 0 && t.slackCoef[i] > 0:
			y = -t.objRow[t.slackOf[i]]
		case t.slackOf[i] >= 0: // slack entered with coefficient -1
			y = t.objRow[t.slackOf[i]]
		default: // EQ row: use the artificial column
			y = -t.objRow[artOf[i]]
		}
		y *= t.sign[i]
		if m.maximize {
			y = -y
		}
		sol.Dual[i] = y
	}
	sol.Status = Optimal
	return sol, nil
}

// mustSolve is a convenience used in tests and internal callers that
// treat solver failure as fatal.
func (m *Model) mustSolve() *Solution {
	s, err := m.Solve()
	if err != nil {
		panic(err)
	}
	return s
}

type iterStatus int

const (
	statusOptimal iterStatus = iota
	statusUnbounded
	statusIterLimit
)

type tableau struct {
	n, m, total int
	improveEps  float64   // objective decrease that counts as progress
	a           []float64 // m x total, row-major
	rhs         []float64
	basis       []int
	objRow      []float64
	objRHS      float64
	dead        []bool

	rowOf     []int
	sign      []float64
	slackOf   []int
	slackCoef []float64
	artStart  int
	denseRows [][]float64
}

func (t *tableau) row(i int) []float64 { return t.a[i*t.total : (i+1)*t.total] }

// setObjective installs a fresh objective row (costs over all columns)
// and prices it out against the current basis.
func (t *tableau) setObjective(cost []float64) {
	t.objRow = make([]float64, t.total)
	copy(t.objRow, cost)
	t.objRHS = 0
	for i, b := range t.basis {
		cb := cost[b]
		if cb == 0 {
			continue
		}
		r := t.row(i)
		for j := range t.objRow {
			t.objRow[j] -= cb * r[j]
		}
		t.objRHS -= cb * t.rhs[i]
	}
}

// objValue returns the current objective value (min sense).
func (t *tableau) objValue() float64 { return -t.objRHS }

// iterate runs simplex pivots until optimality, unboundedness, the
// iteration cap, or until the objective reaches stopBelow (a known
// lower bound on the objective; phase 1 passes its feasibility
// threshold so a feasible-at-start program exits immediately instead
// of pivoting around a degenerate optimum). Columns >= banStart may
// never enter the basis.
//
// Pricing starts with Dantzig's rule; under prolonged degeneracy it
// falls back to a seeded random-edge rule (which escapes cycles with
// probability one and is far faster than Bland in practice), and
// finally to Bland's rule with a widened zero tolerance.
func (t *tableau) iterate(banStart int, stopBelow float64) (int, iterStatus) {
	maxIter := 200*(t.m+t.total) + 2000
	if t.improveEps == 0 {
		// Perturbed rescue attempt: cap the effort so a pathological
		// program fails in seconds rather than minutes.
		maxIter = 40*(t.m+t.total) + 2000
	}
	stall := 0
	mode := pricingDantzig
	rng := newXorshift(uint64(t.m)*2654435761 + uint64(t.total) + 1)
	lastObj := t.objValue()
	stallLimit := 8*(t.m+t.total) + 500
	for iter := 0; iter < maxIter; iter++ {
		if t.objValue() <= stopBelow {
			return iter, statusOptimal
		}
		if stall > stallLimit {
			// Hopeless degenerate plateau: bail out so Solve can retry
			// with a perturbed right-hand side.
			return iter, statusIterLimit
		}
		enter := t.chooseEntering(banStart, mode, rng)
		if enter < 0 {
			return iter, statusOptimal
		}
		leave := t.chooseLeaving(enter, mode == pricingBland)
		if leave < 0 {
			return iter, statusUnbounded
		}
		t.pivot(leave, enter)
		if obj := t.objValue(); obj < lastObj-t.improveEps {
			lastObj = obj
			stall = 0
			mode = pricingDantzig
		} else {
			stall++
			switch {
			case stall > 4*(t.m+50):
				mode = pricingBland
			case stall > t.m/4+20:
				mode = pricingRandom
			}
		}
	}
	return maxIter, statusIterLimit
}

type pricingMode int

const (
	pricingDantzig pricingMode = iota
	pricingRandom
	pricingBland
)

// blandEps is the widened zero tolerance used in Bland mode, so that
// reduced costs oscillating within float noise do not re-enter.
const blandEps = 1e-8

func (t *tableau) chooseEntering(banStart int, mode pricingMode, rng *xorshift) int {
	switch mode {
	case pricingBland:
		for j := 0; j < banStart; j++ {
			if t.objRow[j] < -blandEps {
				return j
			}
		}
		return -1
	case pricingRandom:
		// Reservoir-sample uniformly among improving columns.
		count, pick := 0, -1
		for j := 0; j < banStart; j++ {
			if t.objRow[j] < -Eps {
				count++
				if rng.intn(count) == 0 {
					pick = j
				}
			}
		}
		return pick
	default:
		best, bestVal := -1, -Eps
		for j := 0; j < banStart; j++ {
			if v := t.objRow[j]; v < bestVal {
				best, bestVal = j, v
			}
		}
		return best
	}
}

// xorshift is a tiny deterministic PRNG so the solver needs no
// dependency on math/rand and stays reproducible.
type xorshift struct{ s uint64 }

func newXorshift(seed uint64) *xorshift {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &xorshift{s: seed}
}

func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

// chooseLeaving runs a Harris-style two-pass ratio test: find the
// minimum ratio, then among rows within tolerance of it pick the
// largest pivot element (numerical stability). In Bland mode the
// tie-break switches to the smallest basis index, which guarantees
// termination under degeneracy.
func (t *tableau) chooseLeaving(enter int, bland bool) int {
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		if t.dead[i] {
			continue
		}
		coef := t.a[i*t.total+enter]
		if coef <= Eps {
			continue
		}
		if ratio := t.rhs[i] / coef; ratio < bestRatio {
			bestRatio = ratio
		}
	}
	if math.IsInf(bestRatio, 1) {
		return -1
	}
	tol := Eps * (1 + math.Abs(bestRatio))
	best := -1
	bestCoef := 0.0
	for i := 0; i < t.m; i++ {
		if t.dead[i] {
			continue
		}
		coef := t.a[i*t.total+enter]
		if coef <= Eps {
			continue
		}
		if t.rhs[i]/coef > bestRatio+tol {
			continue
		}
		if bland {
			if best < 0 || t.basis[i] < t.basis[best] {
				best = i
			}
		} else if coef > bestCoef {
			best, bestCoef = i, coef
		}
	}
	return best
}

func (t *tableau) pivot(leave, enter int) {
	prow := t.row(leave)
	pv := prow[enter]
	inv := 1 / pv
	for j := range prow {
		prow[j] *= inv
	}
	prow[enter] = 1 // avoid drift
	t.rhs[leave] *= inv
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		r := t.row(i)
		f := r[enter]
		if f == 0 {
			continue
		}
		for j := range r {
			r[j] -= f * prow[j]
		}
		r[enter] = 0
		t.rhs[i] -= f * t.rhs[leave]
		if t.rhs[i] < 0 && t.rhs[i] > -Eps {
			t.rhs[i] = 0
		}
	}
	f := t.objRow[enter]
	if f != 0 {
		for j := range t.objRow {
			t.objRow[j] -= f * prow[j]
		}
		t.objRow[enter] = 0
		t.objRHS -= f * t.rhs[leave]
	}
	t.basis[leave] = enter
}

// evictArtificials pivots basic artificial variables (value ~0 after a
// successful phase 1) out of the basis, or marks their rows dead when
// the row is redundant.
func (t *tableau) evictArtificials(artStart int) {
	for i := 0; i < t.m; i++ {
		if t.dead[i] || t.basis[i] < artStart {
			continue
		}
		r := t.row(i)
		pivotCol := -1
		for j := 0; j < artStart; j++ {
			if math.Abs(r[j]) > 1e-7 {
				pivotCol = j
				break
			}
		}
		if pivotCol < 0 {
			t.dead[i] = true // redundant constraint
			continue
		}
		t.pivot(i, pivotCol)
	}
}
