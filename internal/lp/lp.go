// Package lp implements a small linear-programming toolkit: a sparse
// model builder and a sparse revised-simplex solver with reusable
// workspaces and warm starts.
//
// The paper's bounds and heuristics (Multicast-LB, Multicast-UB,
// Broadcast-EB, MulticastMultiSource-UB and the exact tree-packing
// program of Theorem 4) are all linear programs; the original authors
// relied on an external LP solver, which the Go standard library does
// not provide, so this package rebuilds the required machinery from
// scratch. Variables are non-negative; rows may be <=, >= or =;
// objectives may be minimised or maximised. Dual values are exposed,
// which the column-generation solvers in internal/tree and
// internal/steady require.
//
// # Solver engine
//
// The engine is a revised simplex over column-wise sparse storage (see
// DESIGN.md Section 5): the basis is held as a sparse LU factorisation
// with Markowitz-style pivoting plus a product-form eta file, so
// FTRAN/BTRAN are sparse triangular solves, a pivot appends one eta
// column, and the factors are rebuilt only on eta-file overflow or
// detected drift. Entering columns come from a partial-pricing
// candidate list. A Workspace owns every scratch allocation — the LU
// factors, the eta file, iterate vectors and the compiled column
// store — and is reusable across solves, so hot loops (cutting planes,
// column generation, heuristic search) stop paying allocation and
// phase-1 costs on every re-solve:
//
//   - Solve() is the one-shot entry point (fresh workspace, cold start).
//   - SolveWith(ws) reuses a workspace's allocations but still starts
//     cold.
//   - SolveFrom(ws, basis) warm-starts from a previous optimal basis.
//     Rows appended since the basis was captured enter the basis on
//     their slack and any resulting primal infeasibility is repaired by
//     dual-simplex pivots; columns appended since then are priced
//     directly by the primal. A stale or unusable basis silently falls
//     back to a cold solve, so SolveFrom is never less robust than
//     Solve.
package lp

import (
	"errors"
	"fmt"
)

// Eps is the pivot tolerance of the simplex solver.
const Eps = 1e-9

// feasTol is the tolerance used to declare phase-1 success and to report
// residual feasibility.
const feasTol = 1e-7

// Sense is the relational operator of a constraint row.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // <=
	GE              // >=
	EQ              // =
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Term is one coefficient of a constraint row.
type Term struct {
	Var  int
	Coef float64
}

type row struct {
	sense Sense
	rhs   float64
	terms []Term
}

// Model is a linear program under construction. All variables are
// implicitly bounded below by zero.
//
// A model may keep growing after a solve: AddRow and AddVar extend it
// in place, and SolveFrom re-solves the extended program from the
// previous optimal basis. Existing rows and objective coefficients must
// not change between warm-started solves.
type Model struct {
	obj        []float64
	names      []string
	rows       []row
	maximize   bool
	noPresolve bool
}

// NewModel returns an empty minimisation model.
func NewModel() *Model { return &Model{} }

// Maximize switches the model to maximisation.
func (m *Model) Maximize() { m.maximize = true }

// SetPresolve toggles the presolve reduction pass (presolve.go) that
// cold solves run by default. Turning it off makes SolveWith hand the
// model to the simplex verbatim — useful for debugging, for measuring
// presolve's effect, and as an escape hatch.
func (m *Model) SetPresolve(on bool) { m.noPresolve = !on }

// AddVar adds a non-negative variable with the given objective
// coefficient and returns its index.
func (m *Model) AddVar(objCoef float64, name string) int {
	m.obj = append(m.obj, objCoef)
	m.names = append(m.names, name)
	return len(m.obj) - 1
}

// NumVars returns the number of variables added so far.
func (m *Model) NumVars() int { return len(m.obj) }

// NumRows returns the number of constraint rows added so far.
func (m *Model) NumRows() int { return len(m.rows) }

// AddRow adds a constraint and returns its row index. Terms referencing
// the same variable twice are summed.
func (m *Model) AddRow(sense Sense, rhs float64, terms ...Term) int {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(m.obj) {
			panic(fmt.Sprintf("lp: term references unknown variable %d", t.Var))
		}
	}
	m.rows = append(m.rows, row{sense: sense, rhs: rhs, terms: append([]Term(nil), terms...)})
	return len(m.rows) - 1
}

// RowCoef is one entry of a column under construction: a coefficient
// in an already-added row.
type RowCoef struct {
	Row  int
	Coef float64
}

// AddColumn adds a non-negative variable together with its
// coefficients in existing rows and returns its index. It is the
// column-generation counterpart of AddRow: a master problem can grow
// one priced-in column at a time and re-solve warm via SolveFrom,
// because appending a column leaves every previous column — and hence
// the previous basis — intact.
func (m *Model) AddColumn(objCoef float64, name string, entries ...RowCoef) int {
	for _, e := range entries {
		if e.Row < 0 || e.Row >= len(m.rows) {
			panic(fmt.Sprintf("lp: column references unknown row %d", e.Row))
		}
	}
	j := m.AddVar(objCoef, name)
	for _, e := range entries {
		m.rows[e.Row].terms = append(m.rows[e.Row].terms, Term{Var: j, Coef: e.Coef})
	}
	return j
}

// Basis identifies the basic variable of every constraint row at the
// end of a solve, in a representation that stays meaningful while the
// model grows (appending rows or variables does not invalidate it).
// It is opaque: obtain one from Solution.Basis and pass it back to
// SolveFrom.
type Basis struct {
	cols  []int // >= 0: structural variable; < 0: unit column ^enc of a row
	valid bool  // set by exportBasis; distinguishes "no info" from a 0-row basis
}

// Empty reports whether the basis carries no information (the zero
// Basis); SolveFrom treats an empty basis as a cold start. A captured
// basis is never empty — not even the legitimate optimal basis of a
// model with zero rows, which has no basic columns at all but still
// round-trips through SolveFrom as a warm start.
func (b Basis) Empty() bool { return !b.valid }

// Rows returns the number of constraint rows the basis covers.
func (b Basis) Rows() int { return len(b.cols) }

// Solution is the result of solving a model.
type Solution struct {
	Status     Status
	Objective  float64   // in the model's own sense (negated back for maximisation)
	X          []float64 // one value per variable
	Dual       []float64 // one value per row; see the Dual convention below
	Iterations int       // simplex pivots performed (primal + dual)
	// DualIterations counts the dual-simplex cleanup pivots of a warm
	// start (included in Iterations).
	DualIterations int
	// WarmStarted reports whether the solve reused the caller's basis
	// rather than falling back to a cold start.
	WarmStarted bool
	// Basis is the optimal basis, reusable by SolveFrom after the model
	// has grown. Only populated for Optimal solutions.
	Basis Basis
}

// Dual convention: for a minimisation model the duals y satisfy
// complementary slackness with reduced costs c_j - y.A_j >= 0 and
// y.b = objective; y_i >= 0 for >= rows, y_i <= 0 for <= rows, free for
// = rows. For a maximisation model the returned duals are those of the
// equivalent negated minimisation, negated back, so that y_i >= 0 for
// <= rows of a max model (the usual convention).

// ErrIterationLimit is returned when the simplex fails to converge
// within its iteration budget (indicative of severe cycling).
var ErrIterationLimit = errors.New("lp: simplex iteration limit exceeded")

// ErrCanceled is returned when a solve observes its workspace's stop
// flag (Workspace.SetStop) mid-iteration. Unlike ErrIterationLimit it
// never triggers the perturbed retry or a warm-to-cold fallback — a
// canceled solve propagates immediately, and the workspace remains
// reusable for later solves (every solve recompiles and refactorises
// from scratch, so no canceled state survives).
var ErrCanceled = errors.New("lp: solve canceled")

// Solve runs the two-phase revised simplex from a cold start on a
// fresh workspace and returns the solution.
//
// Heavily degenerate programs (the steady-state flow LPs have hundreds
// of zero right-hand sides) can trap the simplex on a degenerate
// plateau; when that happens Solve retries once with a tiny
// deterministic right-hand-side perturbation, the standard lexicographic
// workaround, at the cost of O(1e-8)-relative noise on the result.
func (m *Model) Solve() (*Solution, error) {
	return m.SolveWith(nil)
}

// SolveWith runs a cold two-phase solve reusing the workspace's scratch
// allocations (a nil workspace allocates a private one). The workspace
// must not be shared between goroutines.
//
// Unless the model opts out via SetPresolve(false), the solve first
// runs the presolve reductions (presolve.go); the simplex sees the
// reduced program and postsolve maps its solution — values, duals and
// basis — back to the caller's row and column space. A model presolve
// reduces to nothing, or proves infeasible or unbounded outright, never
// reaches the simplex at all.
func (m *Model) SolveWith(ws *Workspace) (*Solution, error) {
	if ws == nil {
		ws = NewWorkspace()
	}
	if m.noPresolve {
		return ws.solveColdLadder(m)
	}
	switch ws.presolve(m) {
	case psInfeasible:
		return &Solution{Status: Infeasible, X: make([]float64, len(m.obj)), Dual: make([]float64, len(m.rows))}, nil
	case psNoChange:
		return ws.solveColdLadder(m)
	}
	rsol, err := ws.solveColdLadder(&ws.ps.red)
	if err != nil {
		return nil, err
	}
	if ws.ps.unbnd {
		// Presolve found an improving ray along an unconstrained column,
		// a verdict that only stands on a feasible model — infeasibility
		// always wins over unboundedness.
		st := Unbounded
		if rsol.Status == Infeasible {
			st = Infeasible
		}
		return &Solution{Status: st, X: make([]float64, len(m.obj)), Dual: make([]float64, len(m.rows))}, nil
	}
	return ws.postsolve(m, rsol), nil
}

// solveColdLadder is the cold retry ladder shared by SolveWith and
// SolveFrom's fallback: a clean cold solve, then — only if the simplex
// cycled out on a degenerate plateau — one retry with a tiny
// deterministic right-hand-side perturbation.
func (ws *Workspace) solveColdLadder(m *Model) (*Solution, error) {
	sol, err := ws.solveCold(m, 0)
	if errors.Is(err, ErrIterationLimit) {
		sol, err = ws.solveCold(m, 1e-7)
	}
	return sol, err
}

// SolveFrom re-solves the model warm-starting from a basis captured by
// an earlier solve of the same (possibly since grown) model. Appended
// rows must be inequalities; their slacks complete the basis and any
// primal infeasibility they introduce is repaired by dual-simplex
// pivots before the primal finishes the solve. Whenever the basis
// cannot be reused — unknown columns, appended equality rows, a
// singular or dual-infeasible basis, or any numerical trouble on the
// warm path — SolveFrom falls back to the cold path of SolveWith,
// including its perturbed ErrIterationLimit retry: a cycling warm
// start is never allowed to fail where the identical cold call would
// succeed.
func (m *Model) SolveFrom(ws *Workspace, basis Basis) (*Solution, error) {
	if ws == nil {
		ws = NewWorkspace()
	}
	if !basis.Empty() {
		ws.stats.WarmAttempts++
		sol, ok, err := ws.solveWarm(m, basis)
		if err != nil && !errors.Is(err, ErrIterationLimit) {
			return nil, err
		}
		if ok && err == nil {
			ws.stats.WarmHits++
			return sol, nil
		}
		// A warm path that stalled on a degenerate plateau
		// (ErrIterationLimit) or could not reuse the basis falls through
		// to the full cold ladder below, never straight to the caller.
	}
	return m.SolveWith(ws)
}

// mustSolve is a convenience used in tests and internal callers that
// treat solver failure as fatal.
func (m *Model) mustSolve() *Solution {
	s, err := m.Solve()
	if err != nil {
		panic(err)
	}
	return s
}

// xorshift is a tiny deterministic PRNG so the solver needs no
// dependency on math/rand and stays reproducible.
type xorshift struct{ s uint64 }

func newXorshift(seed uint64) *xorshift {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &xorshift{s: seed}
}

func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }
