package lp

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// cancelTestModel builds a transportation-style LP big enough to run
// the simplex for a nontrivial number of pivots.
func cancelTestModel(srcs, dsts int) *Model {
	rng := rand.New(rand.NewSource(7))
	m := NewModel()
	x := make([][]int, srcs)
	for i := range x {
		x[i] = make([]int, dsts)
		for j := range x[i] {
			x[i][j] = m.AddVar(1+rng.Float64()*9, "")
		}
	}
	for i := 0; i < srcs; i++ {
		terms := make([]Term, dsts)
		for j := 0; j < dsts; j++ {
			terms[j] = Term{x[i][j], 1}
		}
		m.AddRow(LE, 10+rng.Float64()*5, terms...)
	}
	for j := 0; j < dsts; j++ {
		terms := make([]Term, srcs)
		for i := 0; i < srcs; i++ {
			terms[i] = Term{x[i][j], 1}
		}
		m.AddRow(GE, 1+rng.Float64()*3, terms...)
	}
	return m
}

func TestSetStopCancelsSolve(t *testing.T) {
	for _, presolve := range []bool{true, false} {
		m := cancelTestModel(20, 30)
		m.SetPresolve(presolve)
		ws := NewWorkspace()
		var stop atomic.Bool
		stop.Store(true)
		ws.SetStop(&stop)
		sol, err := m.SolveWith(ws)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("presolve=%v: SolveWith = (%v, %v), want ErrCanceled", presolve, sol, err)
		}
	}
}

func TestSetStopCancelsWarmSolve(t *testing.T) {
	m := cancelTestModel(20, 30)
	ws := NewWorkspace()
	sol, err := m.SolveWith(ws)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("cold solve: (%v, %v)", sol, err)
	}
	// Grow the model so the warm start has real work, then cancel.
	terms := make([]Term, 0, m.NumVars())
	for j := 0; j < m.NumVars(); j++ {
		terms = append(terms, Term{j, 1})
	}
	m.AddRow(GE, 50, terms...)
	var stop atomic.Bool
	stop.Store(true)
	ws.SetStop(&stop)
	_, err = m.SolveFrom(ws, sol.Basis)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("SolveFrom under stop = %v, want ErrCanceled", err)
	}
}

// TestCanceledWorkspaceReusable checks that a canceled solve leaves no
// poisoned state behind: clearing the flag and re-solving on the same
// workspace must match a fresh solve exactly.
func TestCanceledWorkspaceReusable(t *testing.T) {
	m := cancelTestModel(20, 30)
	ws := NewWorkspace()
	var stop atomic.Bool
	stop.Store(true)
	ws.SetStop(&stop)
	if _, err := m.SolveWith(ws); !errors.Is(err, ErrCanceled) {
		t.Fatalf("first solve = %v, want ErrCanceled", err)
	}
	stop.Store(false)
	got, err := m.SolveWith(ws)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status || got.Objective != want.Objective {
		t.Fatalf("post-cancel solve (%v, %v) differs from fresh (%v, %v)",
			got.Status, got.Objective, want.Status, want.Objective)
	}
}

// TestStopMidSolve cancels a running solve from another goroutine. The
// exact pivot at which the flag lands is timing-dependent, so the test
// asserts liveness — the solve returns promptly either way — and that
// a canceled outcome is ErrCanceled, never a mangled solution. It
// retries with increasing delays until one attempt completes optimally
// (proving the cancel can land mid-solve rather than only at entry).
func TestStopMidSolve(t *testing.T) {
	m := cancelTestModel(60, 90)
	ws := NewWorkspace()
	sawCanceled := false
	for _, delay := range []time.Duration{0, 50 * time.Microsecond, time.Millisecond, 10 * time.Millisecond, time.Second} {
		var stop atomic.Bool
		ws.SetStop(&stop)
		timer := time.AfterFunc(delay, func() { stop.Store(true) })
		start := time.Now()
		sol, err := m.SolveWith(ws)
		timer.Stop()
		if d := time.Since(start); d > 30*time.Second {
			t.Fatalf("delay %v: solve took %v, cancellation not observed", delay, d)
		}
		switch {
		case err == nil:
			if sol.Status != Optimal {
				t.Fatalf("delay %v: uncanceled solve status %v", delay, sol.Status)
			}
			if !sawCanceled {
				t.Log("solve completed before any cancellation landed")
			}
			return
		case errors.Is(err, ErrCanceled):
			sawCanceled = true
		default:
			t.Fatalf("delay %v: unexpected error %v", delay, err)
		}
	}
	t.Fatal("solve never completed even with a 1s cancel delay")
}
