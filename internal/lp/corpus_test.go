package lp

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/testutil"
)

// corpusTol is the relative objective agreement required between the
// sparse production solver and the dense reference on corpus and fuzz
// instances.
const corpusTol = 1e-6

// maxResidual returns the largest constraint violation of x over the
// model's rows and the non-negativity bounds, scaled by row magnitude.
func maxResidual(m *Model, x []float64) float64 {
	worst := 0.0
	for _, v := range x {
		if -v > worst {
			worst = -v
		}
	}
	for i := range m.rows {
		ax := dot(densify(m, i), x)
		rhs := m.rows[i].rhs
		var r float64
		switch m.rows[i].sense {
		case LE:
			r = ax - rhs
		case GE:
			r = rhs - ax
		case EQ:
			r = math.Abs(ax - rhs)
		}
		if r /= 1 + math.Abs(rhs); r > worst {
			worst = r
		}
	}
	return worst
}

// crossValidate solves the model three ways — sparse with presolve,
// sparse without, dense reference — and asserts they agree on status
// and objective, and that the sparse solutions are feasible and
// satisfy strong duality.
func crossValidate(t *testing.T, name string, f *MPS) {
	t.Helper()
	m := f.Model

	m.SetPresolve(true)
	pre, err := m.SolveWith(NewWorkspace())
	if err != nil {
		t.Fatalf("%s: presolved solve: %v", name, err)
	}
	m.SetPresolve(false)
	raw, err := m.SolveWith(NewWorkspace())
	if err != nil {
		t.Fatalf("%s: raw solve: %v", name, err)
	}
	m.SetPresolve(true)
	ref, err := SolveDense(m)
	if err != nil {
		t.Fatalf("%s: dense reference: %v", name, err)
	}

	if pre.Status != ref.Status || raw.Status != ref.Status {
		t.Fatalf("%s: status presolved=%v raw=%v dense=%v", name, pre.Status, raw.Status, ref.Status)
	}
	if ref.Status != Optimal {
		return
	}
	if !testutil.Near(pre.Objective, ref.Objective, corpusTol) {
		t.Fatalf("%s: presolved objective %v, dense reference %v", name, pre.Objective, ref.Objective)
	}
	if !testutil.Near(raw.Objective, ref.Objective, corpusTol) {
		t.Fatalf("%s: raw objective %v, dense reference %v", name, raw.Objective, ref.Objective)
	}
	for label, sol := range map[string]*Solution{"presolved": pre, "raw": raw} {
		if r := maxResidual(m, sol.X); r > feasTol {
			t.Errorf("%s: %s solution violates feasibility by %v", name, label, r)
		}
		checkStrongDuality(t, m, sol)
	}
}

// TestCorpusCrossValidation runs every committed MPS instance through
// the sparse solver (with and without presolve) and the dense
// reference, demanding status and objective agreement. This is the
// acceptance gate of the toolkit: the production simplex must agree
// with an independently-written oracle on the whole corpus.
func TestCorpusCrossValidation(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.mps"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, fn := range files {
		fn := fn
		t.Run(filepath.Base(fn), func(t *testing.T) {
			data, err := os.ReadFile(fn)
			if err != nil {
				t.Fatal(err)
			}
			f, err := ParseMPS(data)
			if err != nil {
				t.Fatal(err)
			}
			crossValidate(t, filepath.Base(fn), f)
		})
	}
}

// TestCorpusKnownOptima pins the hand-computed objectives noted in the
// corpus file headers, so both engines agreeing on a wrong value (a
// shared modelling bug in the reader) still fails.
func TestCorpusKnownOptima(t *testing.T) {
	known := map[string]float64{
		"afiro.mps":     -170,
		"dupterms.mps":  3, // 3X >= 9 -> X=3, Y=0, obj = X = 3
		"emptyrows.mps": 4, // 2X >= 8 -> X=4
		"degen.mps":     4,
		"freefmt.mps":   9.5,
	}
	for fn, want := range known {
		data, err := os.ReadFile(filepath.Join("testdata", fn))
		if err != nil {
			t.Fatal(err)
		}
		f, err := ParseMPS(data)
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		sol, err := f.Model.Solve()
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		if sol.Status != Optimal || !testutil.Near(f.Objective(sol), want, 1e-6) {
			t.Errorf("%s: status %v objective %v, want optimal %v", fn, sol.Status, f.Objective(sol), want)
		}
	}
}

// TestCorpusStatuses pins the adversarial instances' verdicts.
func TestCorpusStatuses(t *testing.T) {
	for fn, want := range map[string]Status{
		"unbounded.mps": Unbounded,
		"infeas.mps":    Infeasible,
	} {
		data, err := os.ReadFile(filepath.Join("testdata", fn))
		if err != nil {
			t.Fatal(err)
		}
		f, err := ParseMPS(data)
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		sol, err := f.Model.Solve()
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		if sol.Status != want {
			t.Errorf("%s: status %v, want %v", fn, sol.Status, want)
		}
	}
}

// saneCorpusValue bounds the numeric range fuzzing may explore: the
// 1e-6 agreement contract between two different simplex
// implementations is only meaningful on reasonably-conditioned data.
func saneCorpusValue(v float64) bool {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return false
	}
	a := math.Abs(v)
	return a == 0 || (a >= 1e-6 && a <= 1e6)
}

func fuzzableModel(m *Model) bool {
	if m.NumVars() == 0 || m.NumVars() > 48 || m.NumRows() > 48 {
		return false
	}
	for _, c := range m.obj {
		if !saneCorpusValue(c) {
			return false
		}
	}
	nnz := 0
	for _, r := range m.rows {
		if !saneCorpusValue(r.rhs) {
			return false
		}
		for _, tm := range r.terms {
			if !saneCorpusValue(tm.Coef) {
				return false
			}
		}
		nnz += len(r.terms)
	}
	return nnz <= 1024
}

// statusBoundary reports whether the instance sits on a tolerance
// boundary: nudging every right-hand side (or, for unbounded
// disagreements, every objective coefficient) by +-1e-5 flips the
// production solver's verdict. Two independently-written simplexes
// may legitimately disagree on such knife-edge instances, so the fuzz
// oracle skips them instead of failing.
func statusBoundary(m *Model, disagreedOnUnbounded bool) bool {
	verdict := func(mm *Model) Status {
		sol, err := mm.SolveWith(NewWorkspace())
		if err != nil {
			return Status(-1)
		}
		return sol.Status
	}
	var a, b Status
	if disagreedOnUnbounded {
		perturbObj := func(d float64) *Model {
			mm := &Model{obj: append([]float64(nil), m.obj...), rows: m.rows, maximize: m.maximize}
			for j := range mm.obj {
				mm.obj[j] += d * (1 + math.Abs(mm.obj[j]))
			}
			return mm
		}
		a, b = verdict(perturbObj(1e-5)), verdict(perturbObj(-1e-5))
	} else {
		perturbRHS := func(d float64) *Model {
			mm := &Model{obj: m.obj, maximize: m.maximize, rows: append([]row(nil), m.rows...)}
			for i := range mm.rows {
				mm.rows[i].rhs += d * (1 + math.Abs(mm.rows[i].rhs))
			}
			return mm
		}
		a, b = verdict(perturbRHS(1e-5)), verdict(perturbRHS(-1e-5))
	}
	return a != b
}

// FuzzSolveMPS feeds fuzzed MPS text through the reader and, whenever
// it parses into a reasonably-conditioned model, cross-validates the
// production sparse simplex (presolve on, the default path) against
// the dense reference: statuses must agree, optimal objectives must
// match to 1e-6 relative, and the sparse solution must be primal
// feasible with duals satisfying y.b = objective.
func FuzzSolveMPS(f *testing.F) {
	files, _ := filepath.Glob(filepath.Join("testdata", "*.mps"))
	for _, fn := range files {
		if data, err := os.ReadFile(fn); err == nil {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		mf, err := ParseMPS(data)
		if err != nil {
			return // malformed input is the reader's job to reject, not a solver bug
		}
		m := mf.Model
		if !fuzzableModel(m) {
			return
		}
		sol, err := m.SolveWith(NewWorkspace())
		if err != nil {
			return // iteration-limit on an adversarial instance is not a disagreement
		}
		ref, err := SolveDense(m)
		if err != nil {
			return
		}
		if sol.Status != ref.Status {
			if statusBoundary(m, sol.Status == Unbounded || ref.Status == Unbounded) {
				return
			}
			t.Fatalf("status disagreement: sparse=%v dense=%v\n%s", sol.Status, ref.Status, data)
		}
		if sol.Status != Optimal {
			return
		}
		if !testutil.Near(sol.Objective, ref.Objective, corpusTol) {
			t.Fatalf("objective disagreement: sparse=%v dense=%v\n%s", sol.Objective, ref.Objective, data)
		}
		if r := maxResidual(m, sol.X); r > feasTol {
			t.Fatalf("sparse solution infeasible by %v\n%s", r, data)
		}
		b := make([]float64, len(m.rows))
		for i := range m.rows {
			b[i] = m.rows[i].rhs
		}
		if yb := dot(sol.Dual, b); !testutil.Near(yb, sol.Objective, 1e-5) {
			t.Fatalf("duality gap: y.b=%v objective=%v\n%s", yb, sol.Objective, data)
		}
	})
}
