package lp

// Presolve: a reduction pass that shrinks a model before the simplex
// sees it, plus the postsolve that maps the reduced solution back to
// the original variable and row space (DESIGN.md Section 11).
//
// The steady-state multicast LPs are full of degenerate structure —
// zero right-hand sides, singleton rows acting as bounds, duplicated
// cut rows — and every reduction here removes structure the simplex
// would otherwise spend pivots rediscovering. The implemented rules:
//
//   - per-row duplicate-term coalescing (and dropping of zero
//     coefficients, including duplicates that cancel);
//   - empty rows: trivially satisfiable rows drop, contradictory ones
//     prove infeasibility;
//   - redundant sign rows: a >= row with non-negative coefficients and
//     rhs <= 0 (the zero-RHS GE rows of the steady-state masters) holds
//     for every x >= 0 and drops, as does its <= mirror image;
//   - singleton rows: an = row with one term fixes its variable, a
//     lower-bounding inequality shifts the variable (bound tightening:
//     x >= l becomes x' = x - l >= 0 and the row drops), a near-zero
//     upper bound fixes the variable at zero; genuine positive upper
//     bounds stay as rows, which is how this solver represents them;
//   - duplicate rows: rows with identical coalesced coefficient
//     vectors merge (tighter rhs wins; contradictions prove
//     infeasibility); detection is exact, the form duplicates take
//     when a generator emits the same cut twice;
//   - empty and fixed columns: a variable in no live row fixes at zero
//     (an improving cost sign additionally records a pending unbounded
//     verdict, resolved against feasibility by SolveWith); columns
//     fixed by singleton = rows are substituted out everywhere;
//   - singleton columns: a variable appearing in exactly one row is
//     substituted out of an = row (the row becomes the inequality
//     enforcing the variable's non-negativity), and a zero-cost
//     variable that can absorb any slack of its inequality row removes
//     both the row and itself.
//
// Every reduction pushes a transform onto a stack; postsolve pops the
// stack in reverse, reconstructing the full primal values, a valid
// dual vector (complementary and sign-feasible for the original rows)
// and a basis in original row/column space that SolveFrom can
// warm-start from. All cost-based decisions use the min-normalised
// objective, so maximisation models reduce identically. Snapshots are
// taken at transform time; because postsolve runs last-in-first-out,
// every dual a snapshot references is already reconstructed when the
// snapshot is replayed.

import "math"

// psFeasTol is the tolerance under which presolve declares a
// contradiction infeasible (relative to the magnitudes involved). It
// matches the solver's own feasibility tolerance.
const psFeasTol = feasTol

// psMaxPasses bounds the reduction fixpoint loop; each pass is O(nnz)
// and in practice the fixpoint arrives within two or three.
const psMaxPasses = 8

type psVerdict int

const (
	psReduced    psVerdict = iota // reduced model ready to solve
	psNoChange                    // nothing to do: solve the original
	psInfeasible                  // contradiction found during reduction
)

type psTransKind uint8

const (
	// trFix: column fixed at a value by a singleton = row (row dropped,
	// column basic in it at postsolve) or at zero with no row attached
	// (row < 0: the empty-column rule).
	trFix psTransKind = iota
	// trFixBound: column fixed at zero by a near-zero upper-bound
	// singleton row (row dropped; dual sign-clamped at postsolve).
	trFixBound
	// trShift: column shifted by a lower bound from a singleton row
	// (row dropped; the shifted variable stays in the model).
	trShift
	// trDropRow: row dropped as redundant, duplicate or empty; dual 0,
	// its slack (for = rows, an artificial at zero) basic.
	trDropRow
	// trSubstEQ: singleton column substituted out of an = row; the row
	// stays, transformed into the inequality enforcing x >= 0.
	trSubstEQ
	// trFreeCol: zero-cost singleton column absorbed its inequality
	// row; both dropped.
	trFreeCol
)

// psTransform is one reduction step. Snapshots use original row and
// column indices throughout: rowTerms holds (column, coef) pairs of a
// row, colTerms holds (row, coef) pairs of a column (Term.Var is then
// a row index).
type psTransform struct {
	kind     psTransKind
	col, row int
	a        float64 // coefficient of col in row
	b        float64 // rhs / fix value / shift amount
	cobj     float64 // objective coefficient of col at transform time (model sense)
	sense    Sense   // row sense at transform time
	colTerms []Term  // column snapshot over live rows, excluding row
	rowTerms []Term  // row snapshot over live columns, excluding col
}

// psRow is a working row: coalesced terms (a view into the arena that
// the row edits in place), rhs, live flag.
type psRow struct {
	sense Sense
	rhs   float64
	terms []Term
	live  bool
}

// psState is the per-workspace presolve arena: every slice is reused
// across solves so cold solves stop paying presolve allocations once
// the workspace is warm. terms is an append-only arena; row slices and
// transform snapshots are views into it (snapshots are fresh copies,
// so in-place row edits never corrupt them).
type psState struct {
	rows    []psRow
	terms   []Term
	colCnt  []int32 // live-row reference count per column, maintained incrementally
	colRow  []int32 // a live row containing the column (cached; revalidated on use)
	colGone []bool  // column eliminated (fixed or substituted)
	obj     []float64
	trans   []psTransform
	infeas  bool // duplicate-row merge found a contradiction
	// unbnd records an improving cost ray along an unconstrained
	// column. It is only a *pending* verdict: unboundedness requires a
	// feasible point, and a contradiction may surface in a later pass —
	// or only in phase 1 of the reduced solve — so SolveWith resolves
	// it to Unbounded or Infeasible from the reduced solve's status.
	unbnd bool

	// Reduced-model storage (views into the arena).
	redRows []row
	redObj  []float64
	rowMap  []int32 // original row -> reduced row or -1
	colMap  []int32 // original col -> reduced col or -1
	rowOrig []int32 // reduced row -> original row
	colOrig []int32 // reduced col -> original col
	red     Model

	dupKeys map[uint64][]int32 // duplicate-row hash buckets
}

// presolve reduces the model. On psReduced the reduced model is
// ws.ps.red and postsolve() maps its solution back; the arena stays
// valid until the next presolve on the same workspace.
func (ws *Workspace) presolve(mdl *Model) psVerdict {
	ps := &ws.ps
	n := len(mdl.obj)
	m := len(mdl.rows)

	// Min-normalisation sign for cost-based decisions.
	sgn := 1.0
	if mdl.maximize {
		sgn = -1
	}

	if cap(ps.rows) < m {
		ps.rows = make([]psRow, m)
	}
	ps.rows = ps.rows[:m]
	ps.terms = ps.terms[:0]
	ps.colCnt = growI32(ps.colCnt, n)
	ps.colRow = growI32(ps.colRow, n)
	if cap(ps.colGone) < n {
		ps.colGone = make([]bool, n)
	}
	ps.colGone = ps.colGone[:n]
	ps.obj = growF(ps.obj, n)
	copy(ps.obj, mdl.obj)
	ps.trans = ps.trans[:0]
	ps.infeas = false
	ps.unbnd = false
	for j := 0; j < n; j++ {
		ps.colGone[j] = false
	}

	// Copy rows into the arena, coalescing duplicate terms and dropping
	// zero coefficients (including duplicates that cancel). The
	// stamp/slot scratch is shared with compile(), which always resets
	// it before use.
	ws.stamp = growI32(ws.stamp, n)
	ws.slot = growI32(ws.slot, n)
	stamp, slot := ws.stamp, ws.slot
	for j := range stamp {
		stamp[j] = -1
	}
	for i := 0; i < m; i++ {
		r := &mdl.rows[i]
		start := len(ps.terms)
		for _, t := range r.terms {
			if stamp[t.Var] == int32(i) {
				ps.terms[slot[t.Var]].Coef += t.Coef
				continue
			}
			stamp[t.Var] = int32(i)
			slot[t.Var] = int32(len(ps.terms))
			ps.terms = append(ps.terms, t)
		}
		w := start
		for e := start; e < len(ps.terms); e++ {
			if ps.terms[e].Coef != 0 {
				ps.terms[w] = ps.terms[e]
				w++
			}
		}
		ps.terms = ps.terms[:w]
		ps.rows[i] = psRow{sense: r.sense, rhs: r.rhs, terms: ps.terms[start:w:w], live: true}
	}

	reduced := false
	for pass := 0; pass < psMaxPasses; pass++ {
		// Recount live column references; mutations during the pass
		// maintain the counts incrementally.
		for j := 0; j < n; j++ {
			ps.colCnt[j] = 0
		}
		for i := range ps.rows {
			if !ps.rows[i].live {
				continue
			}
			for _, t := range ps.rows[i].terms {
				ps.colCnt[t.Var]++
				ps.colRow[t.Var] = int32(i)
			}
		}

		changed := false

		// Row rules: empty, redundant-sign, singleton.
		for i := range ps.rows {
			r := &ps.rows[i]
			if !r.live {
				continue
			}
			switch {
			case len(r.terms) == 0:
				if v := ps.emptyRow(i); v != psReduced {
					return v
				}
				changed = true
			case ps.redundantSignRow(i):
				changed = true
			case len(r.terms) == 1:
				v, did := ps.singletonRow(i)
				if v != psReduced {
					return v
				}
				changed = changed || did
			}
		}

		// Duplicate rows.
		if ps.dropDuplicateRows() {
			changed = true
		}
		if ps.infeas {
			return psInfeasible
		}

		// Column rules: empty and singleton columns.
		for j := 0; j < n; j++ {
			if ps.colGone[j] {
				continue
			}
			switch ps.colCnt[j] {
			case 0:
				if sgn*ps.obj[j] < 0 {
					// Improving cost ray along an unconstrained column. Not
					// yet a verdict (see psState.unbnd): fix the column out
					// and keep reducing so infeasibility elsewhere can still
					// win, as it must.
					ps.unbnd = true
				}
				ps.trans = append(ps.trans, psTransform{kind: trFix, col: j, row: -1, cobj: ps.obj[j]})
				ps.colGone[j] = true
				changed = true
			case 1:
				if ps.singletonCol(j) {
					changed = true
				}
			}
		}

		if !changed {
			break
		}
		reduced = true
	}

	if !reduced {
		return psNoChange
	}
	ps.buildReduced(mdl, n, m)
	ws.stats.PresolveRows += m - len(ps.red.rows)
	ws.stats.PresolveCols += n - len(ps.red.obj)
	return psReduced
}

// killRow marks a row dead, decrementing the column counts of its
// terms. Callers append their transform first.
func (ps *psState) killRow(i int) {
	for _, t := range ps.rows[i].terms {
		if ps.colCnt[t.Var] > 0 {
			ps.colCnt[t.Var]--
		}
	}
	ps.rows[i].live = false
}

// emptyRow resolves a live row with no terms: drop it when its
// "0 sense rhs" relation holds, otherwise declare infeasibility.
func (ps *psState) emptyRow(i int) psVerdict {
	r := &ps.rows[i]
	tol := psFeasTol * (1 + math.Abs(r.rhs))
	ok := false
	switch r.sense {
	case LE:
		ok = r.rhs >= -tol
	case GE:
		ok = r.rhs <= tol
	case EQ:
		ok = math.Abs(r.rhs) <= tol
	}
	if !ok {
		return psInfeasible
	}
	ps.dropRow(i)
	return psReduced
}

// redundantSignRow drops rows every x >= 0 satisfies: >= rows with
// non-negative coefficients and rhs <= 0 (the zero-RHS GE rows of the
// steady-state formulations), and their <= mirror images.
func (ps *psState) redundantSignRow(i int) bool {
	r := &ps.rows[i]
	switch r.sense {
	case GE:
		if r.rhs > 0 {
			return false
		}
		for _, t := range r.terms {
			if t.Coef < 0 {
				return false
			}
		}
	case LE:
		if r.rhs < 0 {
			return false
		}
		for _, t := range r.terms {
			if t.Coef > 0 {
				return false
			}
		}
	default:
		return false
	}
	ps.dropRow(i)
	return true
}

// singletonRow resolves a live row with exactly one term: an = row
// fixes its variable, a lower-bounding inequality shifts it (bound
// tightening), a near-zero upper bound fixes it at zero. A genuine
// positive upper bound keeps its row — that is how this solver
// represents upper bounds.
func (ps *psState) singletonRow(i int) (psVerdict, bool) {
	r := &ps.rows[i]
	t := r.terms[0]
	a := t.Coef
	v := r.rhs / a
	lower := (r.sense == GE && a > 0) || (r.sense == LE && a < 0)
	upper := (r.sense == GE && a < 0) || (r.sense == LE && a > 0)
	tol := psFeasTol * (1 + math.Abs(v))
	switch {
	case r.sense == EQ:
		if v < -tol {
			return psInfeasible, false
		}
		if v < 0 {
			v = 0
		}
		ps.fixVar(t.Var, v, i, a)
		return psReduced, true
	case lower:
		if v <= 0 {
			ps.dropRow(i) // x >= non-positive bound: implied by x >= 0
			return psReduced, true
		}
		ps.shiftVar(t.Var, v, i, a, r.sense)
		return psReduced, true
	case upper:
		if v < -tol {
			return psInfeasible, false
		}
		if v <= tol {
			ps.fixBoundZero(t.Var, i, a, r.sense)
			return psReduced, true
		}
	}
	return psReduced, false
}

// fixVar fixes column j at value v via singleton = row i (dropped; j
// becomes basic in it at postsolve) and substitutes it out of every
// other live row.
func (ps *psState) fixVar(j int, v float64, i int, a float64) {
	tr := psTransform{kind: trFix, col: j, row: i, a: a, b: v, cobj: ps.obj[j], sense: ps.rows[i].sense}
	tr.colTerms = ps.snapshotCol(j, i)
	ps.trans = append(ps.trans, tr)
	ps.killRow(i)
	ps.eliminateFixed(j, v)
}

// fixBoundZero fixes column j at zero via a near-zero upper-bound
// singleton row i (dropped; its dual is sign-clamped at postsolve).
func (ps *psState) fixBoundZero(j, i int, a float64, sense Sense) {
	tr := psTransform{kind: trFixBound, col: j, row: i, a: a, cobj: ps.obj[j], sense: sense}
	tr.colTerms = ps.snapshotCol(j, i)
	ps.trans = append(ps.trans, tr)
	ps.killRow(i)
	ps.eliminateFixed(j, 0)
}

// shiftVar applies the lower bound x_j >= l from singleton row i:
// x_j = l + x'_j with x'_j >= 0, folding the shift into every other
// row's rhs and dropping the bound row.
func (ps *psState) shiftVar(j int, l float64, i int, a float64, sense Sense) {
	tr := psTransform{kind: trShift, col: j, row: i, a: a, b: l, cobj: ps.obj[j], sense: sense}
	tr.colTerms = ps.snapshotCol(j, i)
	ps.trans = append(ps.trans, tr)
	ps.killRow(i)
	for k := range ps.rows {
		r := &ps.rows[k]
		if !r.live {
			continue
		}
		for _, t := range r.terms {
			if t.Var == j {
				r.rhs -= t.Coef * l
				break
			}
		}
	}
}

// eliminateFixed removes column j (known value v) from every live row,
// folding its contribution into the right-hand sides.
func (ps *psState) eliminateFixed(j int, v float64) {
	ps.colGone[j] = true
	ps.colCnt[j] = 0
	for k := range ps.rows {
		r := &ps.rows[k]
		if !r.live {
			continue
		}
		for e, t := range r.terms {
			if t.Var != j {
				continue
			}
			r.rhs -= t.Coef * v
			r.terms = append(r.terms[:e], r.terms[e+1:]...)
			break
		}
	}
}

// snapshotCol copies column j's live entries, excluding row skip, into
// the arena as (row, coef) pairs.
func (ps *psState) snapshotCol(j, skip int) []Term {
	start := len(ps.terms)
	for i := range ps.rows {
		if !ps.rows[i].live || i == skip {
			continue
		}
		for _, t := range ps.rows[i].terms {
			if t.Var == j {
				ps.terms = append(ps.terms, Term{Var: i, Coef: t.Coef})
				break
			}
		}
	}
	return ps.terms[start:len(ps.terms):len(ps.terms)]
}

// snapshotRow copies row i's live terms, excluding column skip, into
// the arena.
func (ps *psState) snapshotRow(i, skip int) []Term {
	start := len(ps.terms)
	for _, t := range ps.rows[i].terms {
		if t.Var != skip {
			ps.terms = append(ps.terms, t)
		}
	}
	return ps.terms[start:len(ps.terms):len(ps.terms)]
}

// dropRow drops a redundant/duplicate/empty row: dual 0, slack basic.
func (ps *psState) dropRow(i int) {
	ps.trans = append(ps.trans, psTransform{kind: trDropRow, row: i, col: -1, sense: ps.rows[i].sense})
	ps.killRow(i)
}

// dropDuplicateRows merges rows with identical coalesced coefficient
// vectors. Same-sense duplicates keep the tighter rhs; an = row
// absorbs a consistent inequality twin; contradictions set ps.infeas.
func (ps *psState) dropDuplicateRows() bool {
	if ps.dupKeys == nil {
		ps.dupKeys = make(map[uint64][]int32)
	} else {
		for k := range ps.dupKeys {
			delete(ps.dupKeys, k)
		}
	}
	changed := false
	for i := range ps.rows {
		r := &ps.rows[i]
		if !r.live || len(r.terms) == 0 {
			continue
		}
		key := hashTerms(r.terms)
		bucket := ps.dupKeys[key]
		matched := false
		for e, k32 := range bucket {
			k := int(k32)
			if !ps.rows[k].live || !sameTerms(ps.rows[k].terms, r.terms) {
				continue
			}
			matched = true
			if survivor, dropped := ps.mergeDuplicate(k, i); dropped {
				changed = true
				bucket[e] = int32(survivor)
			}
			break
		}
		if !matched && r.live {
			ps.dupKeys[key] = append(bucket, int32(i))
		}
	}
	return changed
}

// mergeDuplicate resolves twin rows k and i (identical coefficient
// vectors): the tighter row survives, the dominated one drops with
// dual 0 and its slack basic — valid exactly because the survivor's
// constraint keeps the dropped one slack (or degenerately tight). The
// rhs never migrates between rows: moving it would silently swap which
// original row is binding and wreck the dual attribution at postsolve.
// Returns the surviving row index and whether a row was dropped.
func (ps *psState) mergeDuplicate(k, i int) (int, bool) {
	a, b := &ps.rows[k], &ps.rows[i]
	tol := psFeasTol * (1 + math.Abs(a.rhs) + math.Abs(b.rhs))
	switch {
	case a.sense == b.sense:
		switch a.sense {
		case LE:
			if b.rhs < a.rhs {
				ps.dropRow(k)
				return i, true
			}
		case GE:
			if b.rhs > a.rhs {
				ps.dropRow(k)
				return i, true
			}
		case EQ:
			if math.Abs(a.rhs-b.rhs) > tol {
				ps.infeas = true
				return k, false
			}
		}
		ps.dropRow(i)
		return k, true
	case a.sense == EQ || b.sense == EQ:
		eqIdx, ineqIdx := k, i
		if b.sense == EQ {
			eqIdx, ineqIdx = i, k
		}
		eq, ineq := &ps.rows[eqIdx], &ps.rows[ineqIdx]
		ok := false
		switch ineq.sense {
		case LE:
			ok = eq.rhs <= ineq.rhs+tol
		case GE:
			ok = eq.rhs >= ineq.rhs-tol
		}
		if !ok {
			ps.infeas = true
			return k, false
		}
		ps.dropRow(ineqIdx) // the equality implies the inequality
		return eqIdx, true
	default:
		// A <= / >= pair over the same vector brackets a range:
		// infeasible when empty, otherwise both rows stay.
		le, ge := a, b
		if a.sense == GE {
			le, ge = b, a
		}
		if ge.rhs > le.rhs+tol {
			ps.infeas = true
		}
		return k, false
	}
}

// singletonCol resolves a column appearing in exactly one live row:
// substitution out of an = row, or absorbing a zero-cost inequality.
func (ps *psState) singletonCol(j int) bool {
	i := int(ps.colRow[j])
	if i < 0 || i >= len(ps.rows) || !ps.rows[i].live || !rowHasVar(ps.rows[i].terms, j) {
		// Cached row went stale; the count says exactly one live row
		// still references j, so find it.
		i = -1
		for k := range ps.rows {
			if ps.rows[k].live && rowHasVar(ps.rows[k].terms, j) {
				i = k
				break
			}
		}
		if i < 0 {
			return false
		}
		ps.colRow[j] = int32(i)
	}
	r := &ps.rows[i]
	var a float64
	for _, t := range r.terms {
		if t.Var == j {
			a = t.Coef
			break
		}
	}
	switch {
	case r.sense == EQ && len(r.terms) > 1:
		ps.substEQ(j, i, a)
		return true
	case ps.obj[j] == 0 && ((r.sense == GE && a > 0) || (r.sense == LE && a < 0)):
		// Zero-cost absorber: whatever the other variables do, some
		// x_j >= 0 satisfies the row, so both the row and column drop.
		tr := psTransform{kind: trFreeCol, col: j, row: i, a: a, b: r.rhs, sense: r.sense}
		tr.rowTerms = ps.snapshotRow(i, j)
		ps.trans = append(ps.trans, tr)
		ps.killRow(i)
		ps.colGone[j] = true
		ps.colCnt[j] = 0
		return true
	}
	return false
}

func rowHasVar(terms []Term, j int) bool {
	for _, t := range terms {
		if t.Var == j {
			return true
		}
	}
	return false
}

// substEQ substitutes singleton column j out of = row i: the row
// becomes the inequality that keeps x_j non-negative, and the
// objective absorbs x_j's contribution.
func (ps *psState) substEQ(j, i int, a float64) {
	r := &ps.rows[i]
	tr := psTransform{kind: trSubstEQ, col: j, row: i, a: a, b: r.rhs, cobj: ps.obj[j]}
	tr.rowTerms = ps.snapshotRow(i, j)
	ps.trans = append(ps.trans, tr)

	// x_j = (b - rest)/a >= 0 becomes: rest <= b (a > 0) or rest >= b.
	if a > 0 {
		r.sense = LE
	} else {
		r.sense = GE
	}
	for e, t := range r.terms {
		if t.Var == j {
			r.terms = append(r.terms[:e], r.terms[e+1:]...)
			break
		}
	}
	// Objective: c_j x_j = (c_j/a)(b - rest); the constant is
	// irrelevant (postsolve recomputes the objective from the original
	// model), the rest folds into the other costs.
	f := ps.obj[j] / a
	for _, t := range r.terms {
		ps.obj[t.Var] -= f * t.Coef
	}
	ps.colGone[j] = true
	ps.colCnt[j] = 0
}

// buildReduced compacts the live rows and columns into ps.red.
func (ps *psState) buildReduced(mdl *Model, n, m int) {
	ps.rowMap = growI32(ps.rowMap, m)
	ps.colMap = growI32(ps.colMap, n)
	ps.rowOrig = ps.rowOrig[:0]
	ps.colOrig = ps.colOrig[:0]
	ps.redObj = ps.redObj[:0]
	ps.redRows = ps.redRows[:0]
	for j := 0; j < n; j++ {
		if ps.colGone[j] {
			ps.colMap[j] = -1
			continue
		}
		ps.colMap[j] = int32(len(ps.colOrig))
		ps.colOrig = append(ps.colOrig, int32(j))
		ps.redObj = append(ps.redObj, ps.obj[j])
	}
	for i := 0; i < m; i++ {
		if !ps.rows[i].live {
			ps.rowMap[i] = -1
			continue
		}
		ps.rowMap[i] = int32(len(ps.rowOrig))
		ps.rowOrig = append(ps.rowOrig, int32(i))
		start := len(ps.terms)
		for _, t := range ps.rows[i].terms {
			ps.terms = append(ps.terms, Term{Var: int(ps.colMap[t.Var]), Coef: t.Coef})
		}
		ps.redRows = append(ps.redRows, row{
			sense: ps.rows[i].sense,
			rhs:   ps.rows[i].rhs,
			terms: ps.terms[start:len(ps.terms):len(ps.terms)],
		})
	}
	ps.red = Model{obj: ps.redObj, rows: ps.redRows, maximize: mdl.maximize}
}

// postsolve maps the reduced solution back to the original space:
// full X, a valid dual vector, and an original-space basis that
// SolveFrom can warm-start from.
func (ws *Workspace) postsolve(mdl *Model, rsol *Solution) *Solution {
	ps := &ws.ps
	n := len(mdl.obj)
	m := len(mdl.rows)
	sgn := 1.0
	if mdl.maximize {
		sgn = -1
	}

	sol := &Solution{
		Status:         rsol.Status,
		X:              make([]float64, n),
		Dual:           make([]float64, m),
		Iterations:     rsol.Iterations,
		DualIterations: rsol.DualIterations,
		WarmStarted:    rsol.WarmStarted,
	}
	if rsol.Status != Optimal {
		return sol
	}

	// Scatter the reduced solution. Duals are reconstructed in min
	// space (y = sgn * reported) and converted back at the end.
	y := sol.Dual
	basisOf := make([]int, m)
	haveBasis := make([]bool, m)
	structBasic := make([]bool, n)
	for j, v := range rsol.X {
		sol.X[ps.colOrig[j]] = v
	}
	for i, d := range rsol.Dual {
		y[ps.rowOrig[i]] = sgn * d
	}
	rn := len(ps.red.obj)
	for i, enc := range rsol.Basis.cols {
		orig := int(ps.rowOrig[i])
		code := decodeBasisCol(enc, rn)
		if code < rn {
			oc := int(ps.colOrig[code])
			basisOf[orig] = oc
			structBasic[oc] = true
		} else {
			// A basic unit column keeps its own row identity: it is the
			// same-signed unit column of the ORIGINAL row it belongs to,
			// which need not be the row of the basis position holding it
			// (a slack can be basic in a foreign position). Collapsing it
			// onto the position's row would make the transform replays
			// below misread which slacks are basic.
			k := (code - rn) / 2
			basisOf[orig] = ^(2*int(ps.rowOrig[k]) + (code-rn)%2)
		}
		haveBasis[orig] = true
	}

	for t := len(ps.trans) - 1; t >= 0; t-- {
		tr := &ps.trans[t]
		switch tr.kind {
		case trFix:
			sol.X[tr.col] = tr.b
			if tr.row >= 0 {
				// Dual of the dropped = row from the zero reduced cost of
				// its basic column: y_r = (c_j - sum_i y_i a_ij) / a.
				d := sgn * tr.cobj
				for _, ct := range tr.colTerms {
					d -= y[ct.Var] * ct.Coef
				}
				y[tr.row] = d / tr.a
				basisOf[tr.row] = tr.col
				haveBasis[tr.row] = true
				structBasic[tr.col] = true
			}
		case trFixBound:
			sol.X[tr.col] = 0
			// The bound row is tight at zero, so complementarity puts no
			// constraint on its dual; clamp it so the column's reduced
			// cost stays non-negative under a sign-valid multiplier.
			d := sgn * tr.cobj
			for _, ct := range tr.colTerms {
				d -= y[ct.Var] * ct.Coef
			}
			yr := d / tr.a
			if (tr.sense == LE && yr > 0) || (tr.sense == GE && yr < 0) {
				yr = 0
			}
			y[tr.row] = yr
			if yr != 0 {
				basisOf[tr.row] = tr.col
				structBasic[tr.col] = true
			} else {
				basisOf[tr.row] = slackCode(tr.row, tr.sense)
			}
			haveBasis[tr.row] = true
		case trShift:
			sol.X[tr.col] += tr.b
			if structBasic[tr.col] {
				// The shifted variable is basic elsewhere: the bound row
				// is slack, dual 0.
				y[tr.row] = 0
				basisOf[tr.row] = slackCode(tr.row, tr.sense)
			} else {
				// A nonbasic shifted variable sits on its bound: the row
				// is tight, the variable basic in it, the dual comes from
				// its (non-negative) reduced cost in the shifted model.
				d := sgn * tr.cobj
				for _, ct := range tr.colTerms {
					d -= y[ct.Var] * ct.Coef
				}
				y[tr.row] = d / tr.a
				basisOf[tr.row] = tr.col
				structBasic[tr.col] = true
			}
			haveBasis[tr.row] = true
		case trDropRow:
			y[tr.row] = 0
			basisOf[tr.row] = slackCode(tr.row, tr.sense)
			haveBasis[tr.row] = true
		case trSubstEQ:
			rest := tr.b
			for _, rt := range tr.rowTerms {
				rest -= rt.Coef * sol.X[rt.Var]
			}
			v := rest / tr.a
			if v < 0 {
				v = 0
			}
			sol.X[tr.col] = v
			y[tr.row] += sgn * tr.cobj / tr.a
			// The transformed row's slack stood for x_j >= 0: if a unit
			// column of this row is basic, the substituted variable takes
			// its place.
			for i := 0; i < m; i++ {
				if haveBasis[i] && basisOf[i] < 0 && (^basisOf[i])/2 == tr.row {
					basisOf[i] = tr.col
					structBasic[tr.col] = true
					break
				}
			}
		case trFreeCol:
			rest := tr.b
			for _, rt := range tr.rowTerms {
				rest -= rt.Coef * sol.X[rt.Var]
			}
			v := rest / tr.a
			if v < 0 {
				v = 0
			}
			sol.X[tr.col] = v
			y[tr.row] = 0
			if v > 0 {
				basisOf[tr.row] = tr.col
				structBasic[tr.col] = true
			} else {
				basisOf[tr.row] = slackCode(tr.row, tr.sense)
			}
			haveBasis[tr.row] = true
		}
	}

	// Objective from the original model; duals back to the reporting
	// convention.
	obj := 0.0
	for j, c := range mdl.obj {
		obj += c * sol.X[j]
	}
	sol.Objective = obj
	if mdl.maximize {
		for i := range y {
			y[i] = -y[i]
		}
	}

	ok := true
	for i := 0; i < m; i++ {
		if !haveBasis[i] {
			ok = false
			break
		}
	}
	if ok {
		cols := make([]int, m)
		copy(cols, basisOf)
		sol.Basis = Basis{cols: cols, valid: true}
	}
	return sol
}

// slackCode returns the encoded unit column that relaxes a row of the
// given sense (for = rows, the +e artificial, harmlessly basic at
// zero).
func slackCode(row int, sense Sense) int {
	bit := 0
	if sense == GE {
		bit = 1
	}
	return ^(2*row + bit)
}

// hashTerms hashes a coalesced term slice (FNV-1a over variable
// indices and coefficient bits).
func hashTerms(terms []Term) uint64 {
	h := uint64(1469598103934665603)
	for _, t := range terms {
		h ^= uint64(t.Var)
		h *= 1099511628211
		h ^= math.Float64bits(t.Coef)
		h *= 1099511628211
	}
	return h
}

// sameTerms reports whether two coalesced term slices are identical —
// same variables, same coefficients, same order. Rows coalesce in
// first-seen order, so duplicates emitted by the same generator match;
// permuted duplicates are out of scope.
func sameTerms(a, b []Term) bool {
	if len(a) != len(b) {
		return false
	}
	for e := range a {
		if a[e] != b[e] {
			return false
		}
	}
	return true
}
