* BLEND-style diet/blending LP exercising the BOUNDS section.
* Hand-written for this repo in the shape of netlib's BLEND (mixture
* constraints with general variable bounds); NOT the netlib instance.
* A has a lower bound, B an upper bound, C a two-sided box, D is free
* (the reader must split it) with a small cost so the blend total can
* flex both ways without going unbounded.
NAME          BLEND-STYLE
ROWS
 N  COST
 G  PROTEIN
 L  FAT
 E  TOTAL
COLUMNS
    A         COST      1.5   PROTEIN   0.3
    A         FAT       0.1   TOTAL     1.0
    B         COST      2.1   PROTEIN   0.5
    B         FAT       0.2   TOTAL     1.0
    C         COST      1.8   PROTEIN   0.4
    C         FAT       0.15  TOTAL     1.0
    D         COST      0.1   TOTAL     1.0
RHS
    RHS       PROTEIN   12.0  FAT       6.0
    RHS       TOTAL     35.0
BOUNDS
 LO BND       A         5.0
 UP BND       B         20.0
 LO BND       C         2.0
 UP BND       C         15.0
 FR BND       D
ENDATA
