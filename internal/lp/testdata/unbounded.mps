* Adversarial: unbounded ray. Maximising X with only a floor on X
* runs off to +infinity; both solvers must report unbounded, not an
* iteration-limit error or a bogus optimum. Y is a bounded bystander
* so the ray has to be found among other columns.
NAME          UNBOUNDED
OBJSENSE
    MAX
ROWS
 N  COST
 G  FLOOR
 L  CAPY
COLUMNS
    X         COST      1.0   FLOOR     1.0
    Y         COST      1.0   CAPY      1.0
RHS
    RHS       FLOOR     1.0   CAPY      5.0
ENDATA
