* AFIRO-style two-period production/inventory LP.
* Hand-written for this repo in the shape of netlib's AFIRO (small
* mixed E/L/G model with balance equations); NOT the netlib instance.
* Optimum by hand: sell S1 at its net margin first (P1=40, S1=40),
* then S2 from period-2 capacity (P2=50, S2=50), no inventory.
* Objective = 2*40 + 3*50 + 0 - 5*40 - 4*50 = -170.
NAME          AFIRO-STYLE
ROWS
 N  COST
 E  BAL1
 E  BAL2
 L  CAP1
 L  CAP2
 G  DEM1
 G  DEM2
COLUMNS
    P1        COST      2.0   BAL1      1.0
    P1        CAP1      1.0
    P2        COST      3.0   BAL2      1.0
    P2        CAP2      1.0
    I1        COST      0.5   BAL1      -1.0
    I1        BAL2      1.0
    S1        COST      -5.0  BAL1      -1.0
    S1        DEM1      1.0
    S2        COST      -4.0  BAL2      -1.0
    S2        DEM2      1.0
RHS
    RHS       CAP1      40.0  CAP2      50.0
    RHS       DEM1      10.0  DEM2      30.0
ENDATA
