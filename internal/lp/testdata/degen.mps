* Adversarial: heavily degenerate. The zero right-hand-side cycle
* Z1..Z4 forces X1 = X2 = X3 = X4 at any optimum (the shape of the
* steady-state flow LPs, whose hundreds of zero RHS rows trap naive
* pivoting on degenerate plateaus); the cover row then makes them all
* 1.0 for an objective of 4.0.
NAME          DEGEN
ROWS
 N  COST
 G  Z1
 G  Z2
 G  Z3
 G  Z4
 G  COVER
COLUMNS
    X1        COST      1.0   Z1        1.0
    X1        Z4        -1.0  COVER     1.0
    X2        COST      1.0   Z2        1.0
    X2        Z1        -1.0  COVER     1.0
    X3        COST      1.0   Z3        1.0
    X3        Z2        -1.0  COVER     1.0
    X4        COST      1.0   Z4        1.0
    X4        Z3        -1.0  COVER     1.0
RHS
    RHS       COVER     4.0
ENDATA
