* Adversarial: constraint rows declared in ROWS with no COLUMNS
* entries. ZERO is the vacuous 0 = 0, SLACKY is 0 <= 5 and NONNEG is
* 0 >= 0 — all redundant, and presolve must drop them without
* touching the one real covering row.
NAME          EMPTYROWS
ROWS
 N  COST
 E  ZERO
 L  SLACKY
 G  NONNEG
 G  REAL
COLUMNS
    X         COST      1.0   REAL      2.0
RHS
    RHS       SLACKY    5.0   REAL      8.0
ENDATA
