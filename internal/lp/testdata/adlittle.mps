* ADLITTLE-style routing LP with a RANGES section.
* Hand-written for this repo in the shape of netlib's ADLITTLE (mixed
* senses, a ranged row); NOT the netlib instance.
* FLOW with range 3.0 means 5 <= XA - XC <= 8.
NAME          ADLITTLE-STYLE
ROWS
 N  COST
 L  CAPA
 G  DEMB
 E  FLOW
COLUMNS
    XA        COST      3.0   CAPA      1.0
    XA        FLOW      1.0
    XB        COST      2.0   CAPA      1.0
    XB        DEMB      1.0
    XC        COST      4.0   DEMB      1.0
    XC        FLOW      -1.0
RHS
    RHS       CAPA      20.0  DEMB      15.0
    RHS       FLOW      5.0
RANGES
    RNG       FLOW      3.0
ENDATA
