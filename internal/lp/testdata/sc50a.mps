* SC50A-style chained covering LP.
* Hand-written for this repo in the shape of netlib's SC50A (sparse
* staircase of coupled covering rows under a capacity roof); NOT the
* netlib instance.
NAME          SC50A-STYLE
ROWS
 N  COST
 G  C1
 G  C2
 G  C3
 G  C4
 L  ROOF
COLUMNS
    Y1        COST      1.0   C1        1.0
    Y1        ROOF      1.0
    Y2        COST      1.2   C1        1.0
    Y2        C2        1.0   ROOF      1.0
    Y3        COST      0.9   C2        1.0
    Y3        C3        1.0   ROOF      1.0
    Y4        COST      1.1   C3        1.0
    Y4        C4        1.0   ROOF      1.0
    Y5        COST      1.3   C4        1.0
    Y5        ROOF      1.0
RHS
    RHS       C1        4.0   C2        3.0
    RHS       C3        5.0   C4        2.0
    RHS       ROOF      40.0
ENDATA
