* Free-format spacing: ragged indentation and single-space separators
* that fixed-column readers would reject but whitespace tokenisation
* accepts. Same tiny program as the TINY unit-test model:
* min 2x + 3y s.t. x + y >= 4, x <= 3, x - y = 1 -> 9.5.
NAME FREEFMT
ROWS
 N COST
 G COVER
 L CAP
 E TIE
COLUMNS
 X COST 2.0 COVER 1.0
 X CAP 1.0 TIE 1.0
 Y COST 3.0 COVER 1.0
 Y TIE -1.0
RHS
 RHS COVER 4.0 CAP 3.0
 RHS TIE 1.0
ENDATA
