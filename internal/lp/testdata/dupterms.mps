* Adversarial: duplicate (column,row) pairs split across lines.
* The same coefficient cell appears twice in COLUMNS (X hits R1 with
* 1.0 and then 2.0, and its COST entry is split 0.5 + 0.5); MPS
* semantics sum them, so the effective row is 3X + Y >= 9 with
* objective X + 2Y. Guards the duplicate-term coalescing paths of
* the compiled sparse columns and the dense reference alike.
NAME          DUPTERMS
ROWS
 N  COST
 G  R1
COLUMNS
    X         COST      0.5   R1        1.0
    X         COST      0.5   R1        2.0
    Y         COST      2.0   R1        1.0
RHS
    RHS       R1        9.0
ENDATA
