* Adversarial: infeasible system. The two equalities pin X to both 2
* and 3; phase 1 cannot drive the artificials out. The extra
* inequality pair is individually satisfiable so infeasibility is
* only detectable through the equality clash.
NAME          INFEAS
ROWS
 N  COST
 E  PIN2
 E  PIN3
 L  SOFT
COLUMNS
    X         COST      1.0   PIN2      1.0
    X         PIN3      1.0   SOFT      1.0
    Y         COST      1.0   SOFT      1.0
RHS
    RHS       PIN2      2.0   PIN3      3.0
    RHS       SOFT      10.0
ENDATA
