// Dense-tableau reference simplex.
//
// SolveDense is the cross-validation oracle for the sparse revised
// simplex: a textbook two-phase full-tableau simplex over a dense
// matrix, pivoting by Bland's rule so it provably terminates with no
// anti-cycling machinery, perturbations or partial pricing. It shares
// no code with the production path — lu.go, revised.go and presolve.go
// are all bypassed — so any bug the two engines share has to have been
// made twice independently. It is O(rows * totalCols) per pivot and
// allocates the full tableau, which is exactly why it is trusted and
// exactly why nothing on a hot path should call it.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// denseEps mirrors the production pivot tolerance so borderline
// pivots resolve the same way in both engines.
const denseEps = 1e-9

// ErrDenseIterationLimit is returned when the dense reference exceeds
// its pivot budget. Bland's rule cannot cycle, so hitting it means the
// problem is far too large for an oracle solver, not a solver bug.
var ErrDenseIterationLimit = errors.New("lp: dense reference solver iteration limit exceeded")

// SolveDense solves the model with the dense reference simplex and
// returns Status, Objective and X (duals are not computed — the
// production solver's duals are validated against y.b and reduced-cost
// feasibility instead). The model is read, never modified, and no
// workspace state is involved.
func SolveDense(m *Model) (*Solution, error) {
	n := len(m.obj)
	rows := len(m.rows)

	// Normalise to min with rhs >= 0 in dense form.
	type drow struct {
		a     []float64
		rhs   float64
		sense Sense
	}
	dr := make([]drow, rows)
	for i, r := range m.rows {
		a := make([]float64, n)
		for _, t := range r.terms {
			a[t.Var] += t.Coef
		}
		rhs, sense := r.rhs, r.sense
		if rhs < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		dr[i] = drow{a: a, rhs: rhs, sense: sense}
	}
	obj := make([]float64, n)
	for j, c := range m.obj {
		if m.maximize {
			obj[j] = -c
		} else {
			obj[j] = c
		}
	}

	// With no rows there is no tableau to pivot: x = 0 is feasible and
	// any negative (min-normalised) cost is an immediate ray.
	if rows == 0 {
		for _, c := range obj {
			if c < -denseEps {
				return &Solution{Status: Unbounded, X: make([]float64, n), Dual: []float64{}}, nil
			}
		}
		return &Solution{Status: Optimal, X: make([]float64, n), Dual: []float64{}}, nil
	}

	// Column layout: structural | slack/surplus | artificial.
	// LE rows get a slack (initial basis), GE rows a surplus plus an
	// artificial, EQ rows an artificial.
	total := n
	slackOf := make([]int, rows)
	artOf := make([]int, rows)
	for i := range dr {
		slackOf[i], artOf[i] = -1, -1
		if dr[i].sense != EQ {
			slackOf[i] = total
			total++
		}
	}
	artStart := total
	for i := range dr {
		if dr[i].sense != LE {
			artOf[i] = total
			total++
		}
	}

	// Full tableau: rows x (total+1), last column is the rhs.
	t := make([][]float64, rows)
	basis := make([]int, rows)
	for i := range dr {
		t[i] = make([]float64, total+1)
		copy(t[i], dr[i].a)
		switch {
		case dr[i].sense == LE:
			t[i][slackOf[i]] = 1
			basis[i] = slackOf[i]
		case dr[i].sense == GE:
			t[i][slackOf[i]] = -1
			t[i][artOf[i]] = 1
			basis[i] = artOf[i]
		default: // EQ
			t[i][artOf[i]] = 1
			basis[i] = artOf[i]
		}
		t[i][total] = dr[i].rhs
	}

	// A generous pivot budget: Bland's rule terminates, but an oracle
	// has no business running unbounded wall-clock on fuzz inputs.
	budget := 2000 + 200*(rows+1)*(total+1)

	// Phase 1: minimise the sum of artificials.
	phase1 := make([]float64, total)
	for i := range dr {
		if artOf[i] >= 0 {
			phase1[artOf[i]] = 1
		}
	}
	if _, err := densePivotLoop(t, basis, phase1, &budget, artStart, total); err != nil {
		return nil, err
	}
	artSum := 0.0
	for i, b := range basis {
		if b >= artStart {
			artSum += t[i][total]
		}
	}
	if artSum > feasTol {
		return &Solution{Status: Infeasible, X: make([]float64, n), Dual: make([]float64, rows)}, nil
	}
	// Drive any degenerate basic artificials out (or mark their rows
	// as redundant by pivoting on any nonzero structural entry).
	for i, b := range basis {
		if b < artStart {
			continue
		}
		for j := 0; j < artStart; j++ {
			if math.Abs(t[i][j]) > denseEps {
				densePivot(t, basis, i, j)
				break
			}
		}
		// No eligible pivot: the row is all zeros over the real columns
		// (redundant constraint); the artificial stays basic at zero,
		// which is harmless as long as it never re-enters — phase 2
		// only prices columns below artStart.
	}

	// Phase 2 over the real columns with the true objective.
	unbounded, err := densePivotLoop(t, basis, obj, &budget, artStart, artStart)
	if err != nil {
		return nil, err
	}
	if unbounded {
		return &Solution{Status: Unbounded, X: make([]float64, n), Dual: make([]float64, rows)}, nil
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = t[i][total]
		}
	}
	z := 0.0
	for j := range x {
		z += obj[j] * x[j]
	}
	if m.maximize {
		z = -z
	}
	return &Solution{Status: Optimal, Objective: z, X: x, Dual: make([]float64, rows)}, nil
}

// densePivotLoop runs Bland's-rule pivots until optimality for the
// given cost vector, pricing only columns below priceLimit. It returns
// true if an unbounded improving ray was found. artStart bounds the
// columns a leaving artificial check cares about.
func densePivotLoop(t [][]float64, basis []int, cost []float64, budget *int, artStart, priceLimit int) (bool, error) {
	rows := len(t)
	if rows == 0 {
		return false, nil
	}
	total := len(t[0]) - 1
	y := make([]float64, rows) // basic cost multipliers for reduced costs
	for {
		*budget = *budget - 1
		if *budget < 0 {
			return false, ErrDenseIterationLimit
		}
		// Reduced cost of column j in a full tableau: c_j - sum_i
		// c_basis[i] * t[i][j].
		for i, b := range basis {
			if b < len(cost) {
				y[i] = cost[b]
			} else {
				y[i] = 0
			}
		}
		enter := -1
		for j := 0; j < priceLimit; j++ {
			var cj float64
			if j < len(cost) {
				cj = cost[j]
			}
			red := cj
			for i := range t {
				if y[i] != 0 {
					red -= y[i] * t[i][j]
				}
			}
			if red < -denseEps {
				enter = j // Bland: first improving index
				break
			}
		}
		if enter < 0 {
			return false, nil
		}
		// Ratio test, Bland tie-break on the smallest basis index.
		leave := -1
		best := math.Inf(1)
		for i := range t {
			if t[i][enter] > denseEps {
				r := t[i][total] / t[i][enter]
				if r < best-denseEps || (r < best+denseEps && (leave < 0 || basis[i] < basis[leave])) {
					best, leave = r, i
				}
			}
		}
		if leave < 0 {
			return true, nil // improving ray, no blocking row
		}
		densePivot(t, basis, leave, enter)
	}
}

// densePivot performs a full Gauss-Jordan pivot on t[leave][enter].
func densePivot(t [][]float64, basis []int, leave, enter int) {
	piv := t[leave][enter]
	if piv == 0 {
		panic(fmt.Sprintf("lp: dense pivot on zero at row %d col %d", leave, enter))
	}
	row := t[leave]
	inv := 1 / piv
	for j := range row {
		row[j] *= inv
	}
	row[enter] = 1 // exact
	for i := range t {
		if i == leave {
			continue
		}
		f := t[i][enter]
		if f == 0 {
			continue
		}
		ti := t[i]
		for j := range ti {
			ti[j] -= f * row[j]
		}
		ti[enter] = 0 // exact
	}
	basis[leave] = enter
}
