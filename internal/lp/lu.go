package lp

// Sparse LU factorisation of the simplex basis, plus the product-form
// eta file that represents the pivots performed since the last
// (re)factorisation.
//
// The basis matrix B gathers one sparse column per basis slot:
// structural columns from the compiled CSC store, logical columns as
// implicit ±e_i. Factorisation is left-looking (Gilbert–Peierls): each
// column is solved against the L computed so far through a sparse
// triangular solve whose update order is driven by a min-heap over
// elimination steps, and the pivot row is chosen Markowitz-style —
// among the rows within luPivTol of the column's largest eligible
// magnitude, the row with the fewest nonzeros in B wins (a static
// fill-in estimate), ties broken by row index so factorisation is
// deterministic. Columns are eliminated sparsest-first for the same
// reason.
//
// Subsequent pivots do not touch L or U: each one appends an eta column
// (the FTRAN image of the entering column and its pivot slot) to the
// eta file, and FTRAN/BTRAN run through L, U and the etas. When the eta
// file grows past needRefactor's length/fill thresholds — or when the
// iteration loop detects drift of the incrementally updated basic
// values — the basis is refactorised from scratch and the eta file
// cleared.

import "math"

const (
	// luPivTol is the threshold-pivoting tolerance: rows within this
	// factor of the column's largest eligible magnitude are candidates,
	// and the sparsest wins.
	luPivTol = 0.1
	// luSingTol is the pivot magnitude below which the basis matrix is
	// declared singular.
	luSingTol = 1e-11
)

// luFactor holds P·B·Q = L·U in sparse column form plus the eta file.
// Row indices of L and U entries are *original* constraint rows; the
// permutations live in rowOf/slotOf (elimination step -> pivot row /
// eliminated basis slot). All storage is appended in place and reused
// across factorisations.
type luFactor struct {
	m int

	// L: unit lower triangular in elimination order; column j holds the
	// multipliers of step j (rows pivoted later, original indices).
	lPtr []int32
	lRow []int32
	lVal []float64

	// U: column k holds the entries of the column eliminated at step k
	// on rows pivoted at earlier steps; the diagonal is separate.
	uPtr  []int32
	uRow  []int32
	uVal  []float64
	uDiag []float64

	rowOf  []int32 // elimination step -> original pivot row
	rowInv []int32 // original row -> elimination step (-1 during factorisation)
	slotOf []int32 // elimination step -> basis slot eliminated

	// Row-wise transposes of L and U, rebuilt after each factorisation.
	// They exist so that BTRAN can run in scatter form with zero
	// skipping — the dot-product (column) form pays O(nnz) even for the
	// near-unit inputs of loadRho and computeY, which dominate the
	// solver's BTRAN traffic. Targets are pre-permuted: utCol holds the
	// slot to update, ltRow the original row.
	utPtr []int32 // per elimination step: U entries in that step's row
	utCol []int32
	utVal []float64
	ltPtr []int32 // per elimination step: L entries in that step's row
	ltRow []int32
	ltVal []float64

	// Eta file: one entry run per pivot since the factorisation, in
	// basis-slot space. etaPtr[e]..etaPtr[e+1] are the off-pivot
	// nonzeros of eta e.
	etaPtr    []int32
	etaPiv    []int32
	etaPivVal []float64
	etaRow    []int32
	etaVal    []float64

	luNNZ int // nnz(L) + nnz(U) + m at the last factorisation

	// Factorisation scratch.
	x      []float64
	xMark  []bool
	nzList []int32
	heap   []int32
	inHeap []bool
	rowCnt []int32
	order  []int32
	bucket []int32
}

func (f *luFactor) etas() int   { return len(f.etaPiv) }
func (f *luFactor) etaLen() int { return len(f.etaRow) }

func (f *luFactor) clearEtas() {
	f.etaPtr = f.etaPtr[:1]
	f.etaPiv = f.etaPiv[:0]
	f.etaPivVal = f.etaPivVal[:0]
	f.etaRow = f.etaRow[:0]
	f.etaVal = f.etaVal[:0]
}

// needRefactor reports whether the eta file has outgrown the factors:
// either too many etas (solve cost grows linearly with the file) or too
// much fill relative to the factorisation itself.
func (f *luFactor) needRefactor() bool {
	ne := f.etas()
	if ne == 0 {
		return false
	}
	limit := f.m
	if limit > 128 {
		limit = 128
	}
	if limit < 8 {
		limit = 8
	}
	if ne >= limit {
		return true
	}
	return f.etaLen() >= 4*(f.luNNZ+f.m)+1024
}

// factorize rebuilds L and U from the workspace's current basis and
// clears the eta file. It returns false when the basis matrix is
// numerically singular (the caller falls back to a cold start or the
// perturbed rescue path).
func (ws *Workspace) factorize() bool {
	m := ws.m
	f := &ws.lu
	f.m = m

	f.lPtr = growI32(f.lPtr, m+1)[:1]
	f.lPtr[0] = 0
	f.lRow = f.lRow[:0]
	f.lVal = f.lVal[:0]
	f.uPtr = growI32(f.uPtr, m+1)[:1]
	f.uPtr[0] = 0
	f.uRow = f.uRow[:0]
	f.uVal = f.uVal[:0]
	f.uDiag = growF(f.uDiag, m)
	f.rowOf = growI32(f.rowOf, m)
	f.rowInv = growI32(f.rowInv, m)
	f.slotOf = growI32(f.slotOf, m)
	if len(f.etaPtr) == 0 {
		f.etaPtr = append(f.etaPtr, 0)
	}
	f.clearEtas()

	f.x = growF(f.x, m)
	if cap(f.xMark) < m {
		f.xMark = make([]bool, m)
		f.inHeap = make([]bool, m)
	}
	f.xMark = f.xMark[:m]
	f.inHeap = f.inHeap[:m]
	f.nzList = growI32(f.nzList, m)[:0]
	f.heap = growI32(f.heap, m)[:0]
	f.rowCnt = growI32(f.rowCnt, m)
	f.order = growI32(f.order, m)
	f.bucket = growI32(f.bucket, m+2)

	for i := 0; i < m; i++ {
		f.x[i] = 0
		f.xMark[i] = false
		f.inHeap[i] = false
		f.rowInv[i] = -1
		f.rowCnt[i] = 0
	}

	// Static Markowitz surrogate: nonzero count per row of B.
	colNNZ := func(slot int) int32 {
		code := ws.basis[slot]
		if code >= ws.n {
			return 1
		}
		return ws.colPtr[code+1] - ws.colPtr[code]
	}
	for slot := 0; slot < m; slot++ {
		code := ws.basis[slot]
		if code >= ws.n {
			f.rowCnt[ws.unitRow(code)]++
			continue
		}
		for e := ws.colPtr[code]; e < ws.colPtr[code+1]; e++ {
			f.rowCnt[ws.colRow[e]]++
		}
	}

	// Column order: sparsest column first (counting sort, stable in
	// slot order so factorisation is deterministic).
	for i := range f.bucket[:m+2] {
		f.bucket[i] = 0
	}
	for slot := 0; slot < m; slot++ {
		nz := colNNZ(slot)
		if nz > int32(m) {
			nz = int32(m)
		}
		f.bucket[nz+1]++
	}
	for i := 1; i < m+2; i++ {
		f.bucket[i] += f.bucket[i-1]
	}
	for slot := 0; slot < m; slot++ {
		nz := colNNZ(slot)
		if nz > int32(m) {
			nz = int32(m)
		}
		f.order[f.bucket[nz]] = int32(slot)
		f.bucket[nz]++
	}

	for k := 0; k < m; k++ {
		slot := int(f.order[k])
		// Scatter the basis column of this slot into the sparse
		// accumulator, seeding the elimination heap with the already
		// pivoted rows it touches.
		code := ws.basis[slot]
		if code >= ws.n {
			i := ws.unitRow(code)
			f.x[i] = ws.unitSign(code)
			f.xMark[i] = true
			f.nzList = append(f.nzList, int32(i))
			if j := f.rowInv[i]; j >= 0 {
				f.heapPush(j)
			}
		} else {
			for e := ws.colPtr[code]; e < ws.colPtr[code+1]; e++ {
				i := ws.colRow[e]
				f.x[i] = ws.colVal[e]
				f.xMark[i] = true
				f.nzList = append(f.nzList, i)
				if j := f.rowInv[i]; j >= 0 {
					f.heapPush(j)
				}
			}
		}
		// Sparse lower-triangular solve: eliminate through the existing
		// L columns in ascending step order (a valid topological order,
		// since L column j only touches rows pivoted after j).
		for len(f.heap) > 0 {
			j := f.heapPop()
			v := f.x[f.rowOf[j]]
			if v != 0 {
				f.uRow = append(f.uRow, f.rowOf[j])
				f.uVal = append(f.uVal, v)
				for e := f.lPtr[j]; e < f.lPtr[j+1]; e++ {
					i := f.lRow[e]
					if !f.xMark[i] {
						f.xMark[i] = true
						f.nzList = append(f.nzList, i)
						if jj := f.rowInv[i]; jj >= 0 {
							f.heapPush(jj)
						}
					}
					f.x[i] -= f.lVal[e] * v
				}
			}
		}
		// Markowitz-style pivot choice among the eligible rows.
		amax := 0.0
		for _, i32 := range f.nzList {
			if f.rowInv[i32] >= 0 {
				continue
			}
			if a := math.Abs(f.x[i32]); a > amax {
				amax = a
			}
		}
		if amax < luSingTol {
			f.resetColumn()
			return false
		}
		piv, pivCnt := int32(-1), int32(0)
		for _, i32 := range f.nzList {
			if f.rowInv[i32] >= 0 {
				continue
			}
			if math.Abs(f.x[i32]) < luPivTol*amax {
				continue
			}
			if piv < 0 || f.rowCnt[i32] < pivCnt || (f.rowCnt[i32] == pivCnt && i32 < piv) {
				piv, pivCnt = i32, f.rowCnt[i32]
			}
		}
		pv := f.x[piv]
		f.uDiag[k] = pv
		f.rowOf[k] = piv
		f.rowInv[piv] = int32(k)
		f.slotOf[k] = int32(slot)
		for _, i32 := range f.nzList {
			if i32 == piv || f.rowInv[i32] >= 0 {
				continue
			}
			if f.x[i32] != 0 {
				f.lRow = append(f.lRow, i32)
				f.lVal = append(f.lVal, f.x[i32]/pv)
			}
		}
		f.lPtr = append(f.lPtr, int32(len(f.lRow)))
		f.uPtr = append(f.uPtr, int32(len(f.uRow)))
		f.resetColumn()
	}
	f.luNNZ = len(f.lRow) + len(f.uRow) + m
	f.buildTransposes()
	return true
}

// buildTransposes fills the row-wise copies of U and L that btran's
// scatter solves walk (counting sort per pivot row, O(nnz)).
func (f *luFactor) buildTransposes() {
	m := f.m
	f.utPtr = growI32(f.utPtr, m+1)
	f.ltPtr = growI32(f.ltPtr, m+1)
	f.utCol = growI32(f.utCol, len(f.uRow))
	f.utVal = growF(f.utVal, len(f.uVal))
	f.ltRow = growI32(f.ltRow, len(f.lRow))
	f.ltVal = growF(f.ltVal, len(f.lVal))
	for i := 0; i <= m; i++ {
		f.utPtr[i] = 0
		f.ltPtr[i] = 0
	}
	// U column k holds entries on rows pivoted at earlier steps; bucket
	// them by that step. The scatter target of an entry is the slot of
	// the column it came from.
	for k := 0; k < m; k++ {
		for e := f.uPtr[k]; e < f.uPtr[k+1]; e++ {
			f.utPtr[f.rowInv[f.uRow[e]]+1]++
		}
	}
	for i := 0; i < m; i++ {
		f.utPtr[i+1] += f.utPtr[i]
	}
	fill := f.bucket[:m]
	for i := 0; i < m; i++ {
		fill[i] = f.utPtr[i]
	}
	for k := 0; k < m; k++ {
		for e := f.uPtr[k]; e < f.uPtr[k+1]; e++ {
			j := f.rowInv[f.uRow[e]]
			f.utCol[fill[j]] = f.slotOf[k]
			f.utVal[fill[j]] = f.uVal[e]
			fill[j]++
		}
	}
	// L column j holds entries on rows pivoted at later steps; bucket by
	// that step. The scatter target is the pivot row of the column.
	for j := 0; j < m; j++ {
		for e := f.lPtr[j]; e < f.lPtr[j+1]; e++ {
			f.ltPtr[f.rowInv[f.lRow[e]]+1]++
		}
	}
	for i := 0; i < m; i++ {
		f.ltPtr[i+1] += f.ltPtr[i]
	}
	for i := 0; i < m; i++ {
		fill[i] = f.ltPtr[i]
	}
	for j := 0; j < m; j++ {
		for e := f.lPtr[j]; e < f.lPtr[j+1]; e++ {
			k := f.rowInv[f.lRow[e]]
			f.ltRow[fill[k]] = f.rowOf[j]
			f.ltVal[fill[k]] = f.lVal[e]
			fill[k]++
		}
	}
}

// resetColumn clears the sparse accumulator between eliminated columns.
func (f *luFactor) resetColumn() {
	for _, i := range f.nzList {
		f.x[i] = 0
		f.xMark[i] = false
	}
	f.nzList = f.nzList[:0]
	for _, j := range f.heap {
		f.inHeap[j] = false
	}
	f.heap = f.heap[:0]
}

// heapPush / heapPop maintain the min-heap of pending elimination
// steps for the sparse triangular solve.
func (f *luFactor) heapPush(j int32) {
	if f.inHeap[j] {
		return
	}
	f.inHeap[j] = true
	f.heap = append(f.heap, j)
	c := len(f.heap) - 1
	for c > 0 {
		p := (c - 1) / 2
		if f.heap[p] <= f.heap[c] {
			break
		}
		f.heap[p], f.heap[c] = f.heap[c], f.heap[p]
		c = p
	}
}

func (f *luFactor) heapPop() int32 {
	top := f.heap[0]
	f.inHeap[top] = false
	last := len(f.heap) - 1
	f.heap[0] = f.heap[last]
	f.heap = f.heap[:last]
	p := 0
	for {
		c := 2*p + 1
		if c >= last {
			break
		}
		if c+1 < last && f.heap[c+1] < f.heap[c] {
			c++
		}
		if f.heap[p] <= f.heap[c] {
			break
		}
		f.heap[p], f.heap[c] = f.heap[c], f.heap[p]
		p = c
	}
	return top
}

// lowerSolve solves L·z = a in place; a is a dense vector in original
// row space.
func (f *luFactor) lowerSolve(a []float64) {
	for j := 0; j < f.m; j++ {
		v := a[f.rowOf[j]]
		if v == 0 {
			continue
		}
		for e := f.lPtr[j]; e < f.lPtr[j+1]; e++ {
			a[f.lRow[e]] -= f.lVal[e] * v
		}
	}
}

// upperSolve solves U·w = z, reading the row-space vector a left by
// lowerSolve (destroyed) and writing the slot-space result into out
// (every slot is overwritten).
func (f *luFactor) upperSolve(a, out []float64) {
	for k := f.m - 1; k >= 0; k-- {
		v := a[f.rowOf[k]] / f.uDiag[k]
		out[f.slotOf[k]] = v
		if v == 0 {
			continue
		}
		for e := f.uPtr[k]; e < f.uPtr[k+1]; e++ {
			a[f.uRow[e]] -= f.uVal[e] * v
		}
	}
}

// applyEtas applies the eta file in pivot order to the slot-space FTRAN
// result: for eta (r, w), out_r /= w_r and out_i -= w_i·out_r.
func (f *luFactor) applyEtas(out []float64) {
	for e := 0; e < len(f.etaPiv); e++ {
		r := f.etaPiv[e]
		p := out[r]
		if p == 0 {
			continue
		}
		p /= f.etaPivVal[e]
		out[r] = p
		for t := f.etaPtr[e]; t < f.etaPtr[e+1]; t++ {
			out[f.etaRow[t]] -= f.etaVal[t] * p
		}
	}
}

// btran solves y·B = c: z is the slot-space input (destroyed), y
// receives the row-space result. The eta file is applied in reverse,
// then the transposed U and L solves run in scatter form over the
// row-wise copies, skipping zero pivots — near-unit inputs (loadRho,
// the mostly-zero basic costs of computeY) stay sparse all the way
// through.
func (f *luFactor) btran(z, y []float64) {
	for e := len(f.etaPiv) - 1; e >= 0; e-- {
		acc := 0.0
		for t := f.etaPtr[e]; t < f.etaPtr[e+1]; t++ {
			acc += z[f.etaRow[t]] * f.etaVal[t]
		}
		r := f.etaPiv[e]
		z[r] = (z[r] - acc) / f.etaPivVal[e]
	}
	for k := 0; k < f.m; k++ {
		v := z[f.slotOf[k]] / f.uDiag[k]
		y[f.rowOf[k]] = v
		if v == 0 {
			continue
		}
		for e := f.utPtr[k]; e < f.utPtr[k+1]; e++ {
			z[f.utCol[e]] -= f.utVal[e] * v
		}
	}
	for j := f.m - 1; j >= 0; j-- {
		v := y[f.rowOf[j]]
		if v == 0 {
			continue
		}
		for e := f.ltPtr[j]; e < f.ltPtr[j+1]; e++ {
			y[f.ltRow[e]] -= f.ltVal[e] * v
		}
	}
}

// appendEta records one pivot: the FTRAN image w of the entering column
// and the leaving slot.
func (f *luFactor) appendEta(w []float64, leave int) {
	for i, v := range w[:f.m] {
		if v != 0 && i != leave {
			f.etaRow = append(f.etaRow, int32(i))
			f.etaVal = append(f.etaVal, v)
		}
	}
	f.etaPiv = append(f.etaPiv, int32(leave))
	f.etaPivVal = append(f.etaPivVal, w[leave])
	f.etaPtr = append(f.etaPtr, int32(len(f.etaRow)))
}
