package lp

// The revised simplex engine. The constraint matrix is compiled once
// per solve into column-wise sparse storage; iterations maintain only
// the dense m x m basis inverse (column-major, so FTRAN and the pivot
// update walk contiguous memory) plus the basic-value vector. Logical
// columns — slack, surplus and artificial — are implicit unit columns
// and never stored.
//
// Column code space, for n structural variables and m rows:
//
//	[0, n)          structural variable j
//	n + 2i          the +e_i unit column of row i
//	n + 2i + 1      the -e_i unit column of row i
//
// Whether a unit column is the row's slack (cost 0, may enter the
// basis) or an artificial (phase-1 cost 1, may start basic but never
// enters) depends on the row sense: a <= row relaxes along +e_i, a >=
// row along -e_i, and an = row owns no slack at all. The cold start
// picks, per row, whichever unit column is feasible for the sign of the
// right-hand side; phase 1 is needed exactly when some of those picks
// are artificials.

import (
	"errors"
	"fmt"
	"math"
)

// refactorRowCap bounds the problem size for which a stale warm-start
// basis is refactorised from scratch (O(m^3)); beyond it SolveFrom
// falls straight back to a cold solve.
const refactorRowCap = 1500

// blandEps is the widened zero tolerance used in Bland mode, so that
// reduced costs oscillating within float noise do not re-enter.
const blandEps = 1e-8

// WorkspaceStats accumulates solver activity over the lifetime of a
// Workspace.
type WorkspaceStats struct {
	Solves           int // solves that ran the iteration loop (cold or warm)
	ColdSolves       int // cold two-phase solves (including warm-start fallbacks)
	WarmAttempts     int // SolveFrom calls that carried a basis
	WarmHits         int // warm starts that completed on the warm path
	Refactorizations int // basis inverses rebuilt from scratch
	Iterations       int // primal simplex pivots
	DualIterations   int // dual simplex pivots
}

// Workspace owns every scratch allocation of the revised simplex — the
// compiled sparse columns, the basis inverse and the iterate vectors —
// so repeated solves reuse memory instead of reallocating per call,
// and warm starts can reuse the previous basis inverse outright. A
// Workspace must not be used from multiple goroutines concurrently.
type Workspace struct {
	// Compiled model, standardised to min sense.
	n, m   int
	colPtr []int32
	colRow []int32
	colVal []float64
	obj    []float64 // structural costs, min sense
	rhs    []float64
	sense  []Sense

	// Factorisation and iterate state.
	binv     []float64 // m x m basis inverse, column-major: binv[k*m+i] = (B^-1)[i][k]
	basis    []int     // column code per row
	basisPos []int     // column code -> basis row, or -1
	xb       []float64 // basic variable values
	cb       []float64 // basic costs under the current phase
	y        []float64 // simplex multipliers c_B . B^-1
	w        []float64 // FTRAN result B^-1 . A_enter
	rho      []float64 // a row of B^-1 (dual simplex, eviction)
	nzcb     []int32   // rows with nonzero basic cost

	// Compilation scratch.
	stamp []int32
	slot  []int32
	tmp   []float64

	// Warm-start bookkeeping: the model, row count and (encoded) basis
	// the current binv corresponds to.
	lastModel *Model
	lastRows  int
	lastBasis []int
	haveBinv  bool

	phase      int
	improveEps float64
	rng        *xorshift
	stats      WorkspaceStats
}

// NewWorkspace returns an empty solver workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Stats returns the cumulative solver statistics of this workspace.
func (ws *Workspace) Stats() WorkspaceStats { return ws.stats }

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growFKeep grows like growF but preserves the existing prefix, for
// buffers whose old contents the caller still needs (the basis inverse
// across a warm-start extension).
func growFKeep(s []float64, n int) []float64 {
	if cap(s) < n {
		ns := make([]float64, n)
		copy(ns, s)
		return ns
	}
	return s[:n]
}

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// compile standardises the model into the workspace: min-sense
// objective, per-row rhs/sense, and the structural columns in CSC form
// with duplicate terms per row summed.
func (ws *Workspace) compile(mdl *Model, perturb float64) {
	n := len(mdl.obj)
	m := len(mdl.rows)
	ws.n, ws.m = n, m

	ws.obj = growF(ws.obj, n)
	copy(ws.obj, mdl.obj)
	if mdl.maximize {
		for j := range ws.obj {
			ws.obj[j] = -ws.obj[j]
		}
	}
	prng := newXorshift(uint64(m)*0x9e3779b9 + uint64(n) + 7)
	ws.rhs = growF(ws.rhs, m)
	if cap(ws.sense) < m {
		ws.sense = make([]Sense, m)
	}
	ws.sense = ws.sense[:m]
	for i := range mdl.rows {
		r := mdl.rows[i].rhs
		if perturb > 0 {
			r += perturb * (1 + math.Abs(r)) * (1 + float64(prng.intn(1000))/1000)
		}
		ws.rhs[i] = r
		ws.sense[i] = mdl.rows[i].sense
	}

	// Count deduped entries, then fill the CSC arrays. stamp[v] holds
	// the last row that touched variable v; slot[v] its entry index.
	ws.stamp = growI32(ws.stamp, n)
	ws.slot = growI32(ws.slot, n)
	for j := range ws.stamp {
		ws.stamp[j] = -1
	}
	ws.colPtr = growI32(ws.colPtr, n+1)
	for j := range ws.colPtr {
		ws.colPtr[j] = 0
	}
	nnz := 0
	for i := range mdl.rows {
		for _, t := range mdl.rows[i].terms {
			if ws.stamp[t.Var] != int32(i) {
				ws.stamp[t.Var] = int32(i)
				ws.colPtr[t.Var+1]++
				nnz++
			}
		}
	}
	for j := 0; j < n; j++ {
		ws.colPtr[j+1] += ws.colPtr[j]
	}
	ws.colRow = growI32(ws.colRow, nnz)
	ws.colVal = growF(ws.colVal, nnz)
	next := ws.slot // reuse as per-column fill cursor
	for j := 0; j < n; j++ {
		next[j] = ws.colPtr[j]
	}
	for j := range ws.stamp {
		ws.stamp[j] = -1
	}
	for i := range mdl.rows {
		for _, t := range mdl.rows[i].terms {
			if ws.stamp[t.Var] == int32(i) {
				// Duplicate within the row: sum into the open entry.
				ws.colVal[next[t.Var]-1] += t.Coef
				continue
			}
			ws.stamp[t.Var] = int32(i)
			e := next[t.Var]
			ws.colRow[e] = int32(i)
			ws.colVal[e] = t.Coef
			next[t.Var] = e + 1
		}
	}
}

// ensureIterState sizes the factorisation and iterate arrays for the
// compiled model.
func (ws *Workspace) ensureIterState() {
	n, m := ws.n, ws.m
	ws.binv = growFKeep(ws.binv, m*m)
	ws.basis = growI(ws.basis, m)
	ws.basisPos = growI(ws.basisPos, n+2*m)
	ws.xb = growF(ws.xb, m)
	ws.cb = growF(ws.cb, m)
	ws.y = growF(ws.y, m)
	ws.w = growF(ws.w, m)
	ws.rho = growF(ws.rho, m)
	for j := range ws.basisPos {
		ws.basisPos[j] = -1
	}
}

// Column-code helpers.

func (ws *Workspace) unitRow(code int) int { return (code - ws.n) / 2 }

func (ws *Workspace) unitSign(code int) float64 {
	if (code-ws.n)%2 == 1 {
		return -1
	}
	return 1
}

// isSlack reports whether the unit column relaxes its row in the row's
// natural direction (and so has cost 0 and may enter the basis).
func (ws *Workspace) isSlack(code int) bool {
	if code < ws.n {
		return false
	}
	switch ws.sense[ws.unitRow(code)] {
	case LE:
		return ws.unitSign(code) > 0
	case GE:
		return ws.unitSign(code) < 0
	}
	return false
}

func (ws *Workspace) isArtificial(code int) bool {
	return code >= ws.n && !ws.isSlack(code)
}

func (ws *Workspace) canEnter(code int) bool {
	return code < ws.n || ws.isSlack(code)
}

// costOf returns the column's cost under the current phase.
func (ws *Workspace) costOf(code int) float64 {
	if ws.phase == 1 {
		if ws.isArtificial(code) {
			return 1
		}
		return 0
	}
	if code < ws.n {
		return ws.obj[code]
	}
	return 0
}

func (ws *Workspace) setPhase(p int) {
	ws.phase = p
	for i := 0; i < ws.m; i++ {
		ws.cb[i] = ws.costOf(ws.basis[i])
	}
}

func (ws *Workspace) objValue() float64 {
	v := 0.0
	for i := 0; i < ws.m; i++ {
		if c := ws.cb[i]; c != 0 {
			v += c * ws.xb[i]
		}
	}
	return v
}

// computeY prices the basis: y = c_B . B^-1.
func (ws *Workspace) computeY() {
	m := ws.m
	nz := ws.nzcb[:0]
	for i := 0; i < m; i++ {
		if ws.cb[i] != 0 {
			nz = append(nz, int32(i))
		}
	}
	ws.nzcb = nz
	for k := 0; k < m; k++ {
		col := ws.binv[k*m : (k+1)*m]
		acc := 0.0
		for _, i := range nz {
			acc += ws.cb[i] * col[i]
		}
		ws.y[k] = acc
	}
}

// reducedCost returns d_j = c_j - y.A_j for the current phase; callers
// must have refreshed y.
func (ws *Workspace) reducedCost(code int) float64 {
	if code < ws.n {
		d := ws.costOf(code)
		for e := ws.colPtr[code]; e < ws.colPtr[code+1]; e++ {
			d -= ws.y[ws.colRow[e]] * ws.colVal[e]
		}
		return d
	}
	return ws.costOf(code) - ws.unitSign(code)*ws.y[ws.unitRow(code)]
}

// ftran computes w = B^-1 . A_code.
func (ws *Workspace) ftran(code int) {
	m := ws.m
	w := ws.w[:m]
	if code >= ws.n {
		i := ws.unitRow(code)
		s := ws.unitSign(code)
		col := ws.binv[i*m : (i+1)*m]
		for k := 0; k < m; k++ {
			w[k] = s * col[k]
		}
		return
	}
	for k := range w {
		w[k] = 0
	}
	for e := ws.colPtr[code]; e < ws.colPtr[code+1]; e++ {
		v := ws.colVal[e]
		col := ws.binv[int(ws.colRow[e])*m : (int(ws.colRow[e])+1)*m]
		for i := 0; i < m; i++ {
			w[i] += v * col[i]
		}
	}
}

// loadRho extracts row r of B^-1 into ws.rho.
func (ws *Workspace) loadRho(r int) {
	m := ws.m
	for k := 0; k < m; k++ {
		ws.rho[k] = ws.binv[k*m+r]
	}
}

// rhoDot returns rho . A_code.
func (ws *Workspace) rhoDot(code int) float64 {
	if code >= ws.n {
		return ws.unitSign(code) * ws.rho[ws.unitRow(code)]
	}
	acc := 0.0
	for e := ws.colPtr[code]; e < ws.colPtr[code+1]; e++ {
		acc += ws.rho[ws.colRow[e]] * ws.colVal[e]
	}
	return acc
}

// pivot brings column enter (with its FTRAN image already in ws.w) into
// the basis at row leave, updating B^-1, the basic values and the
// bookkeeping.
func (ws *Workspace) pivot(leave, enter int) {
	m := ws.m
	w := ws.w[:m]
	inv := 1 / w[leave]
	theta := ws.xb[leave] * inv
	for i := 0; i < m; i++ {
		if i == leave {
			continue
		}
		if w[i] != 0 {
			ws.xb[i] -= theta * w[i]
			if ws.xb[i] < 0 && ws.xb[i] > -Eps {
				ws.xb[i] = 0
			}
		}
	}
	ws.xb[leave] = theta
	for k := 0; k < m; k++ {
		col := ws.binv[k*m : (k+1)*m]
		cr := col[leave] * inv
		if cr == 0 {
			continue
		}
		for i := 0; i < m; i++ {
			col[i] -= w[i] * cr
		}
		col[leave] = cr
	}
	ws.basisPos[ws.basis[leave]] = -1
	ws.basis[leave] = enter
	ws.basisPos[enter] = leave
	ws.cb[leave] = ws.costOf(enter)
}

type iterStatus int

const (
	statusOptimal iterStatus = iota
	statusUnbounded
	statusIterLimit
)

type pricingMode int

const (
	pricingDantzig pricingMode = iota
	pricingRandom
	pricingBland
)

// chooseEntering scans the non-basic enterable columns under the given
// pricing rule; y must be fresh. Returns -1 when no column prices in.
func (ws *Workspace) chooseEntering(mode pricingMode) int {
	total := ws.n + 2*ws.m
	switch mode {
	case pricingBland:
		for j := 0; j < total; j++ {
			if ws.basisPos[j] >= 0 || !ws.canEnter(j) {
				continue
			}
			if ws.reducedCost(j) < -blandEps {
				return j
			}
		}
		return -1
	case pricingRandom:
		// Reservoir-sample uniformly among improving columns.
		count, pick := 0, -1
		for j := 0; j < total; j++ {
			if ws.basisPos[j] >= 0 || !ws.canEnter(j) {
				continue
			}
			if ws.reducedCost(j) < -Eps {
				count++
				if ws.rng.intn(count) == 0 {
					pick = j
				}
			}
		}
		return pick
	default:
		best, bestVal := -1, -Eps
		for j := 0; j < total; j++ {
			if ws.basisPos[j] >= 0 || !ws.canEnter(j) {
				continue
			}
			if v := ws.reducedCost(j); v < bestVal {
				best, bestVal = j, v
			}
		}
		return best
	}
}

// chooseLeaving runs a Harris-style two-pass ratio test over ws.w: find
// the minimum ratio, then among rows within tolerance of it pick the
// largest pivot element (numerical stability). In Bland mode the
// tie-break switches to the smallest basis column code, which
// guarantees termination under degeneracy.
func (ws *Workspace) chooseLeaving(bland bool) int {
	m := ws.m
	w := ws.w[:m]
	bestRatio := math.Inf(1)
	for i := 0; i < m; i++ {
		if w[i] <= Eps {
			continue
		}
		if ratio := ws.xb[i] / w[i]; ratio < bestRatio {
			bestRatio = ratio
		}
	}
	if math.IsInf(bestRatio, 1) {
		return -1
	}
	tol := Eps * (1 + math.Abs(bestRatio))
	best := -1
	bestCoef := 0.0
	for i := 0; i < m; i++ {
		if w[i] <= Eps {
			continue
		}
		if ws.xb[i]/w[i] > bestRatio+tol {
			continue
		}
		if bland {
			if best < 0 || ws.basis[i] < ws.basis[best] {
				best = i
			}
		} else if w[i] > bestCoef {
			best, bestCoef = i, w[i]
		}
	}
	return best
}

// primal runs simplex pivots until optimality, unboundedness, the
// iteration cap, or until the objective reaches stopBelow (a known
// lower bound on the objective; phase 1 passes its feasibility
// threshold so a feasible-at-start program exits immediately instead of
// pivoting around a degenerate optimum).
//
// Pricing starts with Dantzig's rule; under prolonged degeneracy it
// falls back to a seeded random-edge rule (which escapes cycles with
// probability one and is far faster than Bland in practice), and
// finally to Bland's rule with a widened zero tolerance.
func (ws *Workspace) primal(stopBelow float64) (int, iterStatus) {
	m := ws.m
	total := ws.n + 2*m
	maxIter := 200*(m+total) + 2000
	if ws.improveEps == 0 {
		// Perturbed rescue attempt: cap the effort so a pathological
		// program fails in seconds rather than minutes.
		maxIter = 40*(m+total) + 2000
	}
	stall := 0
	mode := pricingDantzig
	lastObj := ws.objValue()
	stallLimit := 8*(m+total) + 500
	for iter := 0; iter < maxIter; iter++ {
		if ws.objValue() <= stopBelow {
			return iter, statusOptimal
		}
		if stall > stallLimit {
			// Hopeless degenerate plateau: bail out so the caller can
			// retry with a perturbed right-hand side.
			return iter, statusIterLimit
		}
		ws.computeY()
		enter := ws.chooseEntering(mode)
		if enter < 0 {
			return iter, statusOptimal
		}
		ws.ftran(enter)
		leave := ws.chooseLeaving(mode == pricingBland)
		if leave < 0 {
			return iter, statusUnbounded
		}
		ws.pivot(leave, enter)
		if obj := ws.objValue(); obj < lastObj-ws.improveEps {
			lastObj = obj
			stall = 0
			mode = pricingDantzig
		} else {
			stall++
			switch {
			case stall > 4*(m+50):
				mode = pricingBland
			case stall > m/4+20:
				mode = pricingRandom
			}
		}
	}
	return maxIter, statusIterLimit
}

// dualSimplex restores primal feasibility of a dual-feasible basis
// (negative basic values appear when rows were appended to a previously
// optimal basis). Returns ok=false when it cannot finish on the warm
// path — the caller falls back to a cold solve.
func (ws *Workspace) dualSimplex() (int, bool) {
	m := ws.m
	total := ws.n + 2*m
	maxIter := 50*(m+total) + 1000
	for iter := 0; iter < maxIter; iter++ {
		// Leaving: the most negative basic value.
		r, worst := -1, -feasTol
		for i := 0; i < m; i++ {
			if ws.xb[i] < worst {
				worst, r = ws.xb[i], i
			}
		}
		if r < 0 {
			return iter, true
		}
		ws.loadRho(r)
		ws.computeY()
		// Entering: dual ratio test min d_j / -alpha_j over alpha_j < 0,
		// breaking near-ties towards the larger |pivot|.
		best, bestRatio, bestAlpha := -1, math.Inf(1), 0.0
		for j := 0; j < total; j++ {
			if ws.basisPos[j] >= 0 || !ws.canEnter(j) {
				continue
			}
			alpha := ws.rhoDot(j)
			if alpha >= -Eps {
				continue
			}
			d := ws.reducedCost(j)
			if d < 0 {
				d = 0 // dual feasibility noise
			}
			ratio := d / -alpha
			if ratio < bestRatio-1e-12 || (ratio <= bestRatio+1e-9 && -alpha > -bestAlpha) {
				best, bestRatio, bestAlpha = j, ratio, alpha
			}
		}
		if best < 0 {
			// No pivot can lift the violated row: the appended rows are
			// (numerically) contradictory. Let the cold path decide.
			return iter, false
		}
		ws.ftran(best)
		if ws.w[r] >= -Eps {
			return iter, false // pivot vanished under FTRAN: numerics
		}
		ws.pivot(r, best)
	}
	return maxIter, false
}

// evictArtificials pivots basic artificial variables (value ~0 after a
// successful phase 1) out of the basis where possible; rows whose
// artificials cannot leave are redundant and keep them, harmlessly
// basic at zero and banned from ever re-entering.
func (ws *Workspace) evictArtificials() {
	total := ws.n + 2*ws.m
	for i := 0; i < ws.m; i++ {
		if !ws.isArtificial(ws.basis[i]) {
			continue
		}
		ws.loadRho(i)
		pivotCol := -1
		for j := 0; j < total; j++ {
			if ws.basisPos[j] >= 0 || !ws.canEnter(j) {
				continue
			}
			if math.Abs(ws.rhoDot(j)) > 1e-7 {
				pivotCol = j
				break
			}
		}
		if pivotCol < 0 {
			continue // redundant constraint
		}
		ws.ftran(pivotCol)
		ws.pivot(i, pivotCol)
	}
}

// extract fills the primal values, objective and duals of an optimal
// basis into sol.
func (ws *Workspace) extract(mdl *Model, sol *Solution) {
	for i, b := range ws.basis[:ws.m] {
		if b < ws.n {
			sol.X[b] = ws.xb[i]
		}
	}
	objVal := 0.0
	for j, c := range ws.obj[:ws.n] {
		objVal += c * sol.X[j]
	}
	if mdl.maximize {
		sol.Objective = -objVal
	} else {
		sol.Objective = objVal
	}
	ws.computeY()
	for i := 0; i < ws.m; i++ {
		d := ws.y[i]
		if mdl.maximize {
			d = -d
		}
		sol.Dual[i] = d
	}
	sol.Status = Optimal
}

// Basis encoding: structural columns are stored as their variable
// index (stable under growth); unit columns as ^(2*row + minusBit),
// which is independent of the variable count.

func encodeBasisCol(code, n int) int {
	if code < n {
		return code
	}
	return ^(code - n)
}

func decodeBasisCol(enc, n int) int {
	if enc >= 0 {
		return enc
	}
	return n + ^enc
}

func (ws *Workspace) exportBasis() Basis {
	cols := make([]int, ws.m)
	for i, code := range ws.basis[:ws.m] {
		cols[i] = encodeBasisCol(code, ws.n)
	}
	return Basis{cols: cols}
}

// noteBasis records the optimal basis the current binv corresponds to,
// enabling the cheap warm-start extension on the next SolveFrom.
func (ws *Workspace) noteBasis(mdl *Model) {
	ws.lastModel = mdl
	ws.lastRows = ws.m
	ws.lastBasis = growI(ws.lastBasis, ws.m)
	for i, code := range ws.basis[:ws.m] {
		ws.lastBasis[i] = encodeBasisCol(code, ws.n)
	}
	ws.haveBinv = true
}

// solveCold runs the classic two-phase solve from the diagonal unit
// basis.
func (ws *Workspace) solveCold(mdl *Model, perturb float64) (*Solution, error) {
	ws.stats.Solves++
	ws.stats.ColdSolves++
	ws.haveBinv = false
	ws.compile(mdl, perturb)
	n, m := ws.n, ws.m
	ws.ensureIterState()
	ws.rng = newXorshift(uint64(m)*2654435761 + uint64(n+2*m) + 1)
	ws.improveEps = Eps
	if perturb > 0 {
		// Perturbed pivots make strictly positive but sub-Eps progress;
		// any strict decrease counts, otherwise the stall bailout would
		// defeat the perturbation.
		ws.improveEps = 0
	}

	for i := range ws.binv[:m*m] {
		ws.binv[i] = 0
	}
	nart := 0
	for i := 0; i < m; i++ {
		code := n + 2*i
		if ws.rhs[i] < 0 {
			code++
		}
		ws.basis[i] = code
		ws.basisPos[code] = i
		ws.binv[i*m+i] = ws.unitSign(code)
		ws.xb[i] = math.Abs(ws.rhs[i])
		if ws.isArtificial(code) {
			nart++
		}
	}

	sol := &Solution{X: make([]float64, n), Dual: make([]float64, m)}

	// Phase 1: minimise the sum of artificials. The artificial sum can
	// never drop below zero: stop at the feasibility threshold (with its
	// perturbation slack).
	if nart > 0 {
		ws.setPhase(1)
		phase1Stop := feasTol / 2
		if perturb > 0 {
			phase1Stop = feasTol
		}
		iters, status := ws.primal(phase1Stop)
		sol.Iterations += iters
		ws.stats.Iterations += iters
		if status == statusIterLimit {
			return nil, fmt.Errorf("%w (phase 1, m=%d n=%d)", ErrIterationLimit, m, n)
		}
		if status == statusUnbounded {
			return nil, errors.New("lp: internal: phase 1 reported unbounded")
		}
		slack := feasTol
		if perturb > 0 {
			for _, r := range ws.rhs[:m] {
				slack += 2 * perturb * (2 + math.Abs(r))
			}
		}
		if ws.objValue() > slack {
			sol.Status = Infeasible
			return sol, nil
		}
		ws.evictArtificials()
	}

	// Phase 2: minimise the true objective; artificials are banned.
	ws.setPhase(2)
	iters, status := ws.primal(math.Inf(-1))
	sol.Iterations += iters
	ws.stats.Iterations += iters
	switch status {
	case statusIterLimit:
		return nil, fmt.Errorf("%w (phase 2, m=%d n=%d)", ErrIterationLimit, m, n)
	case statusUnbounded:
		sol.Status = Unbounded
		return sol, nil
	}
	ws.extract(mdl, sol)
	ws.noteBasis(mdl)
	sol.Basis = ws.exportBasis()
	return sol, nil
}

// solveWarm attempts the warm-started solve. ok=false means the basis
// could not be used and the caller should run the cold path; a non-nil
// error is a genuine solver failure.
func (ws *Workspace) solveWarm(mdl *Model, basis Basis) (sol *Solution, ok bool, err error) {
	k := len(basis.cols)
	mm := len(mdl.rows)
	if k == 0 || k > mm {
		return nil, false, nil
	}
	// Appended rows join the basis on their slack; equality rows have
	// none, so their appearance forces a cold start.
	for i := k; i < mm; i++ {
		if mdl.rows[i].sense == EQ {
			return nil, false, nil
		}
	}
	// The basis inverse survives from the previous solve when the model
	// object and the basis prefix are unchanged; otherwise it must be
	// refactorised from scratch below.
	reuse := ws.haveBinv && ws.lastModel == mdl && ws.lastRows == k &&
		intsEqual(basis.cols, ws.lastBasis[:ws.lastRows])

	ws.compile(mdl, 0)
	n, m := ws.n, ws.m
	ws.ensureIterState()

	// Decode and validate the basis under the current column space.
	for i := 0; i < k; i++ {
		code := decodeBasisCol(basis.cols[i], n)
		if enc := basis.cols[i]; enc >= 0 {
			if enc >= n {
				return nil, false, nil
			}
		} else if ws.unitRow(code) >= k {
			return nil, false, nil
		}
		if ws.basisPos[code] >= 0 {
			return nil, false, nil // duplicate basic column
		}
		ws.basis[i] = code
		ws.basisPos[code] = i
	}
	for i := k; i < m; i++ {
		code := n + 2*i // +e_i relaxes <=
		if ws.sense[i] == GE {
			code++ // -e_i relaxes >=
		}
		ws.basis[i] = code
		ws.basisPos[code] = i
	}

	if reuse {
		ws.extendBinv(k)
	} else {
		if m > refactorRowCap {
			return nil, false, nil
		}
		if !ws.refactor() {
			return nil, false, nil
		}
		ws.stats.Refactorizations++
	}

	// xb = B^-1 b, exploiting the (typically very) sparse rhs.
	for i := 0; i < m; i++ {
		ws.xb[i] = 0
	}
	for kk := 0; kk < m; kk++ {
		b := ws.rhs[kk]
		if b == 0 {
			continue
		}
		col := ws.binv[kk*m : (kk+1)*m]
		for i := 0; i < m; i++ {
			ws.xb[i] += b * col[i]
		}
	}
	primalInfeas := false
	for i := 0; i < m; i++ {
		if ws.xb[i] < 0 {
			if ws.xb[i] > -Eps {
				ws.xb[i] = 0
			} else if ws.xb[i] < -feasTol {
				primalInfeas = true
			}
		}
	}

	ws.stats.Solves++
	ws.rng = newXorshift(uint64(m)*2654435761 + uint64(n+2*m) + 1)
	ws.improveEps = Eps
	ws.setPhase(2)

	if primalInfeas {
		// Dual-simplex cleanup needs dual feasibility; a violated
		// reduced cost alongside primal infeasibility means the basis is
		// stale in both senses.
		ws.computeY()
		total := n + 2*m
		for j := 0; j < total; j++ {
			if ws.basisPos[j] >= 0 || !ws.canEnter(j) {
				continue
			}
			if ws.reducedCost(j) < -1e-6 {
				return nil, false, nil
			}
		}
	}

	sol = &Solution{X: make([]float64, n), Dual: make([]float64, m), WarmStarted: true}
	if primalInfeas {
		iters, dualOK := ws.dualSimplex()
		sol.Iterations += iters
		sol.DualIterations += iters
		ws.stats.DualIterations += iters
		if !dualOK {
			return nil, false, nil
		}
	}
	iters, status := ws.primal(math.Inf(-1))
	sol.Iterations += iters
	ws.stats.Iterations += iters
	if status != statusOptimal {
		// Unbounded or stalled on the warm path: re-derive the verdict
		// from a trustworthy cold start.
		return nil, false, nil
	}
	ws.extract(mdl, sol)
	ws.noteBasis(mdl)
	sol.Basis = ws.exportBasis()
	return sol, true, nil
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// extendBinv grows the k x k basis inverse of the previous solve to the
// current m rows, given that rows k..m-1 entered the basis on their own
// unit columns: with B' = [[B, 0], [C, D]] and D diagonal,
// B'^-1 = [[B^-1, 0], [-D^-1 C B^-1, D^-1]].
func (ws *Workspace) extendBinv(k int) {
	m := ws.m
	if k == m {
		return // same shape; binv is already current
	}
	old := growF(ws.tmp, k*k)
	copy(old, ws.binv[:k*k])
	ws.tmp = old
	for i := range ws.binv[:m*m] {
		ws.binv[i] = 0
	}
	for kk := 0; kk < k; kk++ {
		copy(ws.binv[kk*m:kk*m+k], old[kk*k:(kk+1)*k])
	}
	// Gather, per appended row, its coefficients on the old basic
	// columns (only structural columns can touch foreign rows).
	rowCoef := ws.w[:m] // scratch; ftran is not in flight here
	for i := k; i < m; i++ {
		s := ws.unitSign(ws.basis[i])
		for pos := 0; pos < k; pos++ {
			rowCoef[pos] = 0
			code := ws.basis[pos]
			if code >= ws.n {
				continue
			}
			for e := ws.colPtr[code]; e < ws.colPtr[code+1]; e++ {
				if int(ws.colRow[e]) == i {
					rowCoef[pos] = ws.colVal[e]
					break
				}
			}
		}
		for kk := 0; kk < k; kk++ {
			acc := 0.0
			col := old[kk*k : (kk+1)*k]
			for pos := 0; pos < k; pos++ {
				if c := rowCoef[pos]; c != 0 {
					acc += c * col[pos]
				}
			}
			if acc != 0 {
				ws.binv[kk*m+i] = -s * acc
			}
		}
		ws.binv[i*m+i] = s
	}
}

// refactor rebuilds the basis inverse from the basis columns by
// Gauss-Jordan elimination with partial pivoting. Returns false when
// the basis matrix is singular.
func (ws *Workspace) refactor() bool {
	m := ws.m
	a := growF(ws.tmp, 2*m*m)
	ws.tmp = a
	B := a[:m*m] // row-major working copy of the basis matrix
	R := a[m*m:] // row-major inverse under construction
	for i := range B {
		B[i] = 0
		R[i] = 0
	}
	for pos := 0; pos < m; pos++ {
		code := ws.basis[pos]
		if code >= ws.n {
			B[ws.unitRow(code)*m+pos] = ws.unitSign(code)
			continue
		}
		for e := ws.colPtr[code]; e < ws.colPtr[code+1]; e++ {
			B[int(ws.colRow[e])*m+pos] = ws.colVal[e]
		}
	}
	for i := 0; i < m; i++ {
		R[i*m+i] = 1
	}
	for c := 0; c < m; c++ {
		p := -1
		for r := c; r < m; r++ {
			if p < 0 || math.Abs(B[r*m+c]) > math.Abs(B[p*m+c]) {
				p = r
			}
		}
		if p < 0 || math.Abs(B[p*m+c]) < 1e-10 {
			return false
		}
		if p != c {
			for j := 0; j < m; j++ {
				B[p*m+j], B[c*m+j] = B[c*m+j], B[p*m+j]
				R[p*m+j], R[c*m+j] = R[c*m+j], R[p*m+j]
			}
		}
		pv := 1 / B[c*m+c]
		for j := 0; j < m; j++ {
			B[c*m+j] *= pv
			R[c*m+j] *= pv
		}
		for r := 0; r < m; r++ {
			if r == c {
				continue
			}
			f := B[r*m+c]
			if f == 0 {
				continue
			}
			for j := 0; j < m; j++ {
				B[r*m+j] -= f * B[c*m+j]
				R[r*m+j] -= f * R[c*m+j]
			}
		}
	}
	// R is B^-1 in row-major [pos][row]; binv wants column-major
	// binv[row*m + pos].
	for pos := 0; pos < m; pos++ {
		for rr := 0; rr < m; rr++ {
			ws.binv[rr*m+pos] = R[pos*m+rr]
		}
	}
	return true
}
