package lp

// The revised simplex engine. The constraint matrix is compiled once
// per solve into column-wise sparse storage; iterations maintain the
// basis as a sparse LU factorisation plus a product-form eta file (see
// lu.go) and the basic-value vector. FTRAN and BTRAN are sparse
// triangular solves through L, U and the etas; pivots append one eta
// column instead of updating an inverse, and the factors are rebuilt
// from scratch only when the eta file outgrows them or the basic
// values drift. Logical columns — slack, surplus and artificial — are
// implicit unit columns and never stored.
//
// Column code space, for n structural variables and m rows:
//
//	[0, n)          structural variable j
//	n + 2i          the +e_i unit column of row i
//	n + 2i + 1      the -e_i unit column of row i
//
// Whether a unit column is the row's slack (cost 0, may enter the
// basis) or an artificial (phase-1 cost 1, may start basic but never
// enters) depends on the row sense: a <= row relaxes along +e_i, a >=
// row along -e_i, and an = row owns no slack at all. The cold start
// picks, per row, whichever unit column is feasible for the sign of the
// right-hand side; phase 1 is needed exactly when some of those picks
// are artificials.

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// blandEps is the widened zero tolerance used in Bland mode, so that
// reduced costs oscillating within float noise do not re-enter.
const blandEps = 1e-8

// candCap bounds the partial-pricing candidate list: a pricing pass
// stops scanning once it has collected this many improving columns
// (or proved optimality by a full wrap).
const candCap = 64

// driftCheckEvery is the primal iteration interval of the basic-value
// drift check (a residual ||B·x_B - b||_inf against the compiled
// columns); a drifted iterate triggers a refactorisation.
const driftCheckEvery = 96

// stopCheckMask gates the cooperative-cancellation poll: the stop flag
// is loaded every stopCheckMask+1 iterations (a power of two so the
// gate is a single AND), bounding both the poll's cost in the hot loop
// and the latency between a cancellation request and the solve
// observing it to at most that many pivots.
const stopCheckMask = 63

// WorkspaceStats accumulates solver activity over the lifetime of a
// Workspace.
type WorkspaceStats struct {
	Solves           int // solves that ran the iteration loop (cold or warm)
	ColdSolves       int // cold two-phase solves (including warm-start fallbacks)
	WarmAttempts     int // SolveFrom calls that carried a basis
	WarmHits         int // warm starts that completed on the warm path
	Factorizations   int // sparse LU factorisations built (every solve needs one)
	Refactorizations int // mid-solve rebuilds: eta-file overflow or detected drift
	Iterations       int // primal simplex pivots
	DualIterations   int // dual simplex pivots
	PresolveRows     int // constraint rows removed by presolve, cumulative
	PresolveCols     int // columns removed by presolve, cumulative
}

// Workspace owns every scratch allocation of the revised simplex — the
// compiled sparse columns, the LU factors with their eta file and the
// iterate vectors — so repeated solves reuse memory instead of
// reallocating per call. A Workspace must not be used from multiple
// goroutines concurrently.
type Workspace struct {
	// Compiled model, standardised to min sense.
	n, m   int
	colPtr []int32
	colRow []int32
	colVal []float64
	obj    []float64 // structural costs, min sense
	rhs    []float64
	sense  []Sense

	// Factorisation and iterate state.
	lu       luFactor  // sparse basis factorisation + eta file
	basis    []int     // column code per row
	basisPos []int     // column code -> basis row, or -1
	xb       []float64 // basic variable values
	cb       []float64 // basic costs under the current phase
	y        []float64 // simplex multipliers c_B . B^-1
	w        []float64 // FTRAN result B^-1 . A_enter
	rho      []float64 // a row of B^-1 (dual simplex, eviction)
	ftmp     []float64 // FTRAN right-hand-side scratch (row space)
	btmp     []float64 // BTRAN input scratch (slot space)
	artRow   []bool    // row's basic column is an artificial (ratio-test pinning)
	nart     int       // number of basic artificials
	luBad    bool      // a mid-solve refactorisation failed; bail out

	// Partial pricing: the candidate list of improving columns and the
	// rolling scan cursor, both reset at every solve.
	cand        []int32
	priceCursor int

	// Compilation scratch.
	stamp []int32
	slot  []int32

	// Presolve arena (presolve.go), reused across solves.
	ps psState

	phase      int
	improveEps float64
	rhsScale   float64
	rng        *xorshift
	stats      WorkspaceStats

	// stop, when non-nil, is polled every stopCheckMask+1 iterations by
	// the primal and dual loops; a set flag aborts the solve with
	// ErrCanceled. See SetStop.
	stop *atomic.Bool
}

// NewWorkspace returns an empty solver workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Stats returns the cumulative solver statistics of this workspace.
func (ws *Workspace) Stats() WorkspaceStats { return ws.stats }

// SetStop installs (or, with nil, removes) a cancellation flag shared
// with the caller. While a solve runs, the simplex loops poll the flag
// every few dozen iterations; once it reads true the solve aborts and
// returns ErrCanceled. The flag is the caller's: it is never cleared
// by the workspace, so arm a fresh (or freshly reset) flag per solve.
// Setting the flag is safe from any goroutine; SetStop itself must be
// called only between solves, like every other workspace method.
func (ws *Workspace) SetStop(stop *atomic.Bool) { ws.stop = stop }

// stopped reports whether a cancellation flag is installed and set.
func (ws *Workspace) stopped() bool { return ws.stop != nil && ws.stop.Load() }

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// compile standardises the model into the workspace: min-sense
// objective, per-row rhs/sense, and the structural columns in CSC form
// with duplicate terms per row summed.
func (ws *Workspace) compile(mdl *Model, perturb float64) {
	n := len(mdl.obj)
	m := len(mdl.rows)
	ws.n, ws.m = n, m

	ws.obj = growF(ws.obj, n)
	copy(ws.obj, mdl.obj)
	if mdl.maximize {
		for j := range ws.obj {
			ws.obj[j] = -ws.obj[j]
		}
	}
	prng := newXorshift(uint64(m)*0x9e3779b9 + uint64(n) + 7)
	ws.rhs = growF(ws.rhs, m)
	if cap(ws.sense) < m {
		ws.sense = make([]Sense, m)
	}
	ws.sense = ws.sense[:m]
	ws.rhsScale = 0
	for i := range mdl.rows {
		r := mdl.rows[i].rhs
		if perturb > 0 {
			r += perturb * (1 + math.Abs(r)) * (1 + float64(prng.intn(1000))/1000)
		}
		ws.rhs[i] = r
		ws.sense[i] = mdl.rows[i].sense
		if a := math.Abs(r); a > ws.rhsScale {
			ws.rhsScale = a
		}
	}

	// Count deduped entries, then fill the CSC arrays. stamp[v] holds
	// the last row that touched variable v; slot[v] its entry index.
	ws.stamp = growI32(ws.stamp, n)
	ws.slot = growI32(ws.slot, n)
	for j := range ws.stamp {
		ws.stamp[j] = -1
	}
	ws.colPtr = growI32(ws.colPtr, n+1)
	for j := range ws.colPtr {
		ws.colPtr[j] = 0
	}
	nnz := 0
	for i := range mdl.rows {
		for _, t := range mdl.rows[i].terms {
			if ws.stamp[t.Var] != int32(i) {
				ws.stamp[t.Var] = int32(i)
				ws.colPtr[t.Var+1]++
				nnz++
			}
		}
	}
	for j := 0; j < n; j++ {
		ws.colPtr[j+1] += ws.colPtr[j]
	}
	ws.colRow = growI32(ws.colRow, nnz)
	ws.colVal = growF(ws.colVal, nnz)
	next := ws.slot // reuse as per-column fill cursor
	for j := 0; j < n; j++ {
		next[j] = ws.colPtr[j]
	}
	for j := range ws.stamp {
		ws.stamp[j] = -1
	}
	for i := range mdl.rows {
		for _, t := range mdl.rows[i].terms {
			if ws.stamp[t.Var] == int32(i) {
				// Duplicate within the row: sum into the open entry.
				ws.colVal[next[t.Var]-1] += t.Coef
				continue
			}
			ws.stamp[t.Var] = int32(i)
			e := next[t.Var]
			ws.colRow[e] = int32(i)
			ws.colVal[e] = t.Coef
			next[t.Var] = e + 1
		}
	}
}

// ensureIterState sizes the factorisation and iterate arrays for the
// compiled model and resets the per-solve pricing state.
func (ws *Workspace) ensureIterState() {
	n, m := ws.n, ws.m
	ws.basis = growI(ws.basis, m)
	ws.basisPos = growI(ws.basisPos, n+2*m)
	ws.xb = growF(ws.xb, m)
	ws.cb = growF(ws.cb, m)
	ws.y = growF(ws.y, m)
	ws.w = growF(ws.w, m)
	ws.rho = growF(ws.rho, m)
	ws.ftmp = growF(ws.ftmp, m)
	ws.btmp = growF(ws.btmp, m)
	if cap(ws.artRow) < m {
		ws.artRow = make([]bool, m)
	}
	ws.artRow = ws.artRow[:m]
	for i := range ws.artRow {
		ws.artRow[i] = false
	}
	ws.nart = 0
	for j := range ws.basisPos {
		ws.basisPos[j] = -1
	}
	ws.cand = ws.cand[:0]
	ws.priceCursor = 0
	ws.luBad = false
}

// Column-code helpers.

func (ws *Workspace) unitRow(code int) int { return (code - ws.n) / 2 }

func (ws *Workspace) unitSign(code int) float64 {
	if (code-ws.n)%2 == 1 {
		return -1
	}
	return 1
}

// isSlack reports whether the unit column relaxes its row in the row's
// natural direction (and so has cost 0 and may enter the basis).
func (ws *Workspace) isSlack(code int) bool {
	if code < ws.n {
		return false
	}
	switch ws.sense[ws.unitRow(code)] {
	case LE:
		return ws.unitSign(code) > 0
	case GE:
		return ws.unitSign(code) < 0
	}
	return false
}

func (ws *Workspace) isArtificial(code int) bool {
	return code >= ws.n && !ws.isSlack(code)
}

func (ws *Workspace) canEnter(code int) bool {
	return code < ws.n || ws.isSlack(code)
}

// costOf returns the column's cost under the current phase.
func (ws *Workspace) costOf(code int) float64 {
	if ws.phase == 1 {
		if ws.isArtificial(code) {
			return 1
		}
		return 0
	}
	if code < ws.n {
		return ws.obj[code]
	}
	return 0
}

func (ws *Workspace) setPhase(p int) {
	ws.phase = p
	for i := 0; i < ws.m; i++ {
		ws.cb[i] = ws.costOf(ws.basis[i])
	}
}

func (ws *Workspace) objValue() float64 {
	v := 0.0
	for i := 0; i < ws.m; i++ {
		if c := ws.cb[i]; c != 0 {
			v += c * ws.xb[i]
		}
	}
	return v
}

// computeY prices the basis: y = c_B . B^-1, one BTRAN through the eta
// file and the transposed LU factors.
func (ws *Workspace) computeY() {
	m := ws.m
	z := ws.btmp[:m]
	copy(z, ws.cb[:m])
	ws.lu.btran(z, ws.y[:m])
}

// reducedCost returns d_j = c_j - y.A_j for the current phase; callers
// must have refreshed y.
func (ws *Workspace) reducedCost(code int) float64 {
	if code < ws.n {
		d := ws.costOf(code)
		for e := ws.colPtr[code]; e < ws.colPtr[code+1]; e++ {
			d -= ws.y[ws.colRow[e]] * ws.colVal[e]
		}
		return d
	}
	return ws.costOf(code) - ws.unitSign(code)*ws.y[ws.unitRow(code)]
}

// ftran computes w = B^-1 . A_code: scatter the sparse column, solve
// through L and U, then apply the eta file.
func (ws *Workspace) ftran(code int) {
	m := ws.m
	a := ws.ftmp[:m]
	for i := range a {
		a[i] = 0
	}
	if code >= ws.n {
		a[ws.unitRow(code)] = ws.unitSign(code)
	} else {
		for e := ws.colPtr[code]; e < ws.colPtr[code+1]; e++ {
			a[ws.colRow[e]] = ws.colVal[e]
		}
	}
	ws.lu.lowerSolve(a)
	ws.lu.upperSolve(a, ws.w[:m])
	ws.lu.applyEtas(ws.w[:m])
}

// loadRho extracts row r of B^-1 into ws.rho (a BTRAN of e_r).
func (ws *Workspace) loadRho(r int) {
	m := ws.m
	z := ws.btmp[:m]
	for i := range z {
		z[i] = 0
	}
	z[r] = 1
	ws.lu.btran(z, ws.rho[:m])
}

// rhoDot returns rho . A_code.
func (ws *Workspace) rhoDot(code int) float64 {
	if code >= ws.n {
		return ws.unitSign(code) * ws.rho[ws.unitRow(code)]
	}
	acc := 0.0
	for e := ws.colPtr[code]; e < ws.colPtr[code+1]; e++ {
		acc += ws.rho[ws.colRow[e]] * ws.colVal[e]
	}
	return acc
}

// pivot brings column enter (with its FTRAN image already in ws.w) into
// the basis at row leave: update the basic values, append the pivot to
// the eta file and refactorise if the file has outgrown the factors.
func (ws *Workspace) pivot(leave, enter int) {
	m := ws.m
	w := ws.w[:m]
	inv := 1 / w[leave]
	theta := ws.xb[leave] * inv
	for i := 0; i < m; i++ {
		if i == leave {
			continue
		}
		if w[i] != 0 {
			ws.xb[i] -= theta * w[i]
			if ws.xb[i] < 0 && ws.xb[i] > -Eps {
				ws.xb[i] = 0
			}
		}
	}
	ws.xb[leave] = theta
	ws.lu.appendEta(w, leave)
	ws.basisPos[ws.basis[leave]] = -1
	ws.basis[leave] = enter
	ws.basisPos[enter] = leave
	ws.cb[leave] = ws.costOf(enter)
	if ws.artRow[leave] {
		// Entering columns are never artificial (canEnter), so a pivot
		// can only shrink the artificial set.
		ws.artRow[leave] = false
		ws.nart--
	}
	if ws.lu.needRefactor() {
		ws.refactorInPlace()
	}
}

// refactorInPlace rebuilds the LU factors from the current basis and
// recomputes the basic values from the right-hand side, bounding the
// drift the eta-file updates accumulate. A numerically singular
// rebuild (possible only after severe round-off) marks the workspace;
// the iteration loops bail out to their cold or perturbed fallbacks.
func (ws *Workspace) refactorInPlace() {
	if !ws.factorize() {
		ws.luBad = true
		return
	}
	ws.stats.Factorizations++
	ws.stats.Refactorizations++
	ws.recomputeXB()
}

// recomputeXB refreshes xb = B^-1 b through the fresh factors,
// clamping sub-Eps negativity noise exactly like the pivot updates do.
func (ws *Workspace) recomputeXB() {
	m := ws.m
	a := ws.ftmp[:m]
	copy(a, ws.rhs[:m])
	ws.lu.lowerSolve(a)
	ws.lu.upperSolve(a, ws.xb[:m])
	for i := 0; i < m; i++ {
		if ws.xb[i] < 0 && ws.xb[i] > -Eps {
			ws.xb[i] = 0
		}
	}
}

// driftedXB reports whether the incrementally updated basic values
// have drifted from B^-1 b: it computes the residual ||B·x_B - b||_inf
// against the compiled columns (O(m + nnz), no solve needed).
func (ws *Workspace) driftedXB() bool {
	m := ws.m
	a := ws.ftmp[:m]
	copy(a, ws.rhs[:m])
	for pos := 0; pos < m; pos++ {
		v := ws.xb[pos]
		if v == 0 {
			continue
		}
		code := ws.basis[pos]
		if code >= ws.n {
			a[ws.unitRow(code)] -= ws.unitSign(code) * v
			continue
		}
		for e := ws.colPtr[code]; e < ws.colPtr[code+1]; e++ {
			a[ws.colRow[e]] -= ws.colVal[e] * v
		}
	}
	tol := 0.5 * feasTol * (1 + ws.rhsScale)
	for _, v := range a {
		if v > tol || v < -tol {
			return true
		}
	}
	return false
}

type iterStatus int

const (
	statusOptimal iterStatus = iota
	statusUnbounded
	statusIterLimit
	statusCanceled
)

type pricingMode int

const (
	pricingDantzig pricingMode = iota
	pricingRandom
	pricingBland
)

// chooseEntering picks the entering column under the given pricing
// rule; y must be fresh. Returns -1 when no column prices in.
//
// The default (Dantzig) rule runs partial pricing with a candidate
// list: first the surviving candidates of the previous pass are
// re-priced and the most negative wins; when the list runs dry, a
// circular scan from a rolling cursor refills it with up to candCap
// improving columns (continuing all the way around when none appear,
// so returning -1 still proves optimality). Cold solves therefore stop
// paying a full column scan per pivot. The random and Bland
// anti-cycling modes keep their full scans — their termination
// guarantees depend on seeing every column.
func (ws *Workspace) chooseEntering(mode pricingMode) int {
	total := ws.n + 2*ws.m
	switch mode {
	case pricingBland:
		for j := 0; j < total; j++ {
			if ws.basisPos[j] >= 0 || !ws.canEnter(j) {
				continue
			}
			if ws.reducedCost(j) < -blandEps {
				return j
			}
		}
		return -1
	case pricingRandom:
		// Reservoir-sample uniformly among improving columns.
		count, pick := 0, -1
		for j := 0; j < total; j++ {
			if ws.basisPos[j] >= 0 || !ws.canEnter(j) {
				continue
			}
			if ws.reducedCost(j) < -Eps {
				count++
				if ws.rng.intn(count) == 0 {
					pick = j
				}
			}
		}
		return pick
	default:
		best, bestVal := -1, -Eps
		if len(ws.cand) > 0 {
			keep := ws.cand[:0]
			for _, j32 := range ws.cand {
				j := int(j32)
				if ws.basisPos[j] >= 0 {
					continue
				}
				if v := ws.reducedCost(j); v < -Eps {
					keep = append(keep, j32)
					if v < bestVal {
						best, bestVal = j, v
					}
				}
			}
			ws.cand = keep
			if best >= 0 {
				return best
			}
		}
		j := ws.priceCursor
		if j >= total {
			j = 0
		}
		for scanned := 0; scanned < total; scanned++ {
			if ws.basisPos[j] < 0 && ws.canEnter(j) {
				if v := ws.reducedCost(j); v < -Eps {
					ws.cand = append(ws.cand, int32(j))
					if v < bestVal {
						best, bestVal = j, v
					}
				}
			}
			j++
			if j == total {
				j = 0
			}
			if len(ws.cand) >= candCap {
				break
			}
		}
		ws.priceCursor = j
		return best
	}
}

// chooseLeaving runs a Harris-style two-pass ratio test over ws.w: find
// the minimum ratio, then among rows within tolerance of it pick the
// largest pivot element (numerical stability). In Bland mode the
// tie-break switches to the smallest basis column code, which
// guarantees termination under degeneracy.
//
// Rows whose basic variable is an artificial sitting at zero are
// pinned: the artificial must never move off zero again, so *any*
// nonzero pivot element — either sign — forces it out at ratio ~0.
// This is the lazy eviction of the phase-1 artificials: instead of an
// explicit O(rows · columns) eviction sweep after phase 1, an
// artificial leaves the basis the first time a pivot touches its row,
// and rows the optimisation never touches keep theirs, harmlessly
// basic at zero (the redundant-constraint case). Such pivots are
// degenerate but cannot cycle — an artificial never re-enters.
func (ws *Workspace) chooseLeaving(bland bool) int {
	m := ws.m
	w := ws.w[:m]
	pinned := ws.nart > 0
	bestRatio := math.Inf(1)
	for i := 0; i < m; i++ {
		wi := w[i]
		if pinned {
			wi = ws.leaveCoef(i, wi)
		}
		if wi <= Eps {
			continue
		}
		if ratio := ws.xb[i] / wi; ratio < bestRatio {
			bestRatio = ratio
		}
	}
	if math.IsInf(bestRatio, 1) {
		return -1
	}
	tol := Eps * (1 + math.Abs(bestRatio))
	best := -1
	bestCoef := 0.0
	for i := 0; i < m; i++ {
		wi := w[i]
		if pinned {
			wi = ws.leaveCoef(i, wi)
		}
		if wi <= Eps {
			continue
		}
		if ws.xb[i]/wi > bestRatio+tol {
			continue
		}
		if bland {
			if best < 0 || ws.basis[i] < ws.basis[best] {
				best = i
			}
		} else if wi > bestCoef {
			best, bestCoef = i, wi
		}
	}
	return best
}

// leaveCoef returns the effective ratio-test coefficient of row i: the
// FTRAN value itself, except that a basic artificial at (or within the
// phase-1 residual tolerance of) zero is pinned and blocks movement in
// either direction. The threshold is feasTol, not Eps: phase 1 stops
// at an artificial *sum* below feasTol, so an individual artificial
// may carry up to that much residual — pinning only exact zeros would
// let a phase-2 pivot with a negative coefficient regrow such a
// residual arbitrarily and report a constraint-violating optimum. The
// artRow bitmap is maintained by the basis bookkeeping so the common
// no-artificials case never pays the per-row classification.
func (ws *Workspace) leaveCoef(i int, wi float64) float64 {
	if wi < 0 && ws.artRow[i] && ws.xb[i] <= feasTol {
		return -wi
	}
	return wi
}

// artificialsClean reports whether every basic artificial still sits
// within the feasibility tolerance. A violated artificial at an
// "optimal" basis means the solve silently relaxed its row — callers
// must treat the solve as failed rather than extract the solution.
func (ws *Workspace) artificialsClean() bool {
	if ws.nart == 0 {
		return true
	}
	for i := 0; i < ws.m; i++ {
		if ws.artRow[i] && ws.xb[i] > feasTol {
			return false
		}
	}
	return true
}

// primal runs simplex pivots until optimality, unboundedness, the
// iteration cap, or until the objective reaches stopBelow (a known
// lower bound on the objective; phase 1 passes its feasibility
// threshold so a feasible-at-start program exits immediately instead of
// pivoting around a degenerate optimum).
//
// Pricing starts with the partial-pricing Dantzig rule; under
// prolonged degeneracy it falls back to a seeded random-edge rule
// (which escapes cycles with probability one and is far faster than
// Bland in practice), and finally to Bland's rule with a widened zero
// tolerance. Every driftCheckEvery iterations the basic values are
// checked against B^-1 b and a drifted iterate forces an early
// refactorisation.
func (ws *Workspace) primal(stopBelow float64) (int, iterStatus) {
	m := ws.m
	total := ws.n + 2*m
	maxIter := 200*(m+total) + 2000
	if ws.improveEps == 0 {
		// Perturbed rescue attempt: cap the effort so a pathological
		// program fails in seconds rather than minutes.
		maxIter = 40*(m+total) + 2000
	}
	stall := 0
	mode := pricingDantzig
	obj := ws.objValue()
	lastObj := obj
	stallLimit := 8*(m+total) + 500
	for iter := 0; iter < maxIter; iter++ {
		if ws.luBad {
			return iter, statusIterLimit
		}
		if iter&stopCheckMask == 0 && ws.stopped() {
			return iter, statusCanceled
		}
		if obj <= stopBelow {
			return iter, statusOptimal
		}
		if stall > stallLimit {
			// Hopeless degenerate plateau: bail out so the caller can
			// retry with a perturbed right-hand side.
			return iter, statusIterLimit
		}
		if iter%driftCheckEvery == driftCheckEvery-1 && ws.lu.etas() > 0 && ws.driftedXB() {
			ws.refactorInPlace()
			if ws.luBad {
				return iter, statusIterLimit
			}
		}
		ws.computeY()
		enter := ws.chooseEntering(mode)
		if enter < 0 {
			return iter, statusOptimal
		}
		ws.ftran(enter)
		leave := ws.chooseLeaving(mode == pricingBland)
		if leave < 0 {
			return iter, statusUnbounded
		}
		leavingArt := ws.artRow[leave]
		ws.pivot(leave, enter)
		if obj = ws.objValue(); obj < lastObj-ws.improveEps {
			lastObj = obj
			stall = 0
			mode = pricingDantzig
		} else if !leavingArt {
			// Degenerate pivots that evict an artificial are structural
			// progress (each one happens at most once per artificial), so
			// they never count towards the anti-cycling ladder.
			stall++
			switch {
			case stall > 4*(m+50):
				mode = pricingBland
			case stall > m/4+20:
				mode = pricingRandom
			}
		}
	}
	return maxIter, statusIterLimit
}

// dualSimplex restores primal feasibility of a dual-feasible basis
// (negative basic values appear when rows were appended to a previously
// optimal basis). Returns statusOptimal on success, statusIterLimit
// when it cannot finish on the warm path (the caller falls back to a
// cold solve) and statusCanceled when the stop flag fired.
func (ws *Workspace) dualSimplex() (int, iterStatus) {
	m := ws.m
	total := ws.n + 2*m
	maxIter := 50*(m+total) + 1000
	for iter := 0; iter < maxIter; iter++ {
		if ws.luBad {
			return iter, statusIterLimit
		}
		if iter&stopCheckMask == 0 && ws.stopped() {
			return iter, statusCanceled
		}
		// Leaving: the most negative basic value.
		r, worst := -1, -feasTol
		for i := 0; i < m; i++ {
			if ws.xb[i] < worst {
				worst, r = ws.xb[i], i
			}
		}
		if r < 0 {
			return iter, statusOptimal
		}
		ws.loadRho(r)
		ws.computeY()
		// Entering: dual ratio test min d_j / -alpha_j over alpha_j < 0,
		// breaking near-ties towards the larger |pivot|.
		best, bestRatio, bestAlpha := -1, math.Inf(1), 0.0
		for j := 0; j < total; j++ {
			if ws.basisPos[j] >= 0 || !ws.canEnter(j) {
				continue
			}
			alpha := ws.rhoDot(j)
			if alpha >= -Eps {
				continue
			}
			d := ws.reducedCost(j)
			if d < 0 {
				d = 0 // dual feasibility noise
			}
			ratio := d / -alpha
			if ratio < bestRatio-1e-12 || (ratio <= bestRatio+1e-9 && -alpha > -bestAlpha) {
				best, bestRatio, bestAlpha = j, ratio, alpha
			}
		}
		if best < 0 {
			// No pivot can lift the violated row: the appended rows are
			// (numerically) contradictory. Let the cold path decide.
			return iter, statusIterLimit
		}
		ws.ftran(best)
		if ws.w[r] >= -Eps {
			return iter, statusIterLimit // pivot vanished under FTRAN: numerics
		}
		ws.pivot(r, best)
	}
	return maxIter, statusIterLimit
}

// extract fills the primal values, objective and duals of an optimal
// basis into sol.
func (ws *Workspace) extract(mdl *Model, sol *Solution) {
	for i, b := range ws.basis[:ws.m] {
		if b < ws.n {
			sol.X[b] = ws.xb[i]
		}
	}
	objVal := 0.0
	for j, c := range ws.obj[:ws.n] {
		objVal += c * sol.X[j]
	}
	if mdl.maximize {
		sol.Objective = -objVal
	} else {
		sol.Objective = objVal
	}
	ws.computeY()
	for i := 0; i < ws.m; i++ {
		d := ws.y[i]
		if mdl.maximize {
			d = -d
		}
		sol.Dual[i] = d
	}
	sol.Status = Optimal
}

// Basis encoding: structural columns are stored as their variable
// index (stable under growth); unit columns as ^(2*row + minusBit),
// which is independent of the variable count.

func encodeBasisCol(code, n int) int {
	if code < n {
		return code
	}
	return ^(code - n)
}

func decodeBasisCol(enc, n int) int {
	if enc >= 0 {
		return enc
	}
	return n + ^enc
}

func (ws *Workspace) exportBasis() Basis {
	cols := make([]int, ws.m)
	for i, code := range ws.basis[:ws.m] {
		cols[i] = encodeBasisCol(code, ws.n)
	}
	return Basis{cols: cols, valid: true}
}

// solveCold runs the classic two-phase solve from the diagonal unit
// basis.
func (ws *Workspace) solveCold(mdl *Model, perturb float64) (*Solution, error) {
	ws.stats.Solves++
	ws.stats.ColdSolves++
	ws.compile(mdl, perturb)
	n, m := ws.n, ws.m
	ws.ensureIterState()
	ws.rng = newXorshift(uint64(m)*2654435761 + uint64(n+2*m) + 1)
	ws.improveEps = Eps
	if perturb > 0 {
		// Perturbed pivots make strictly positive but sub-Eps progress;
		// any strict decrease counts, otherwise the stall bailout would
		// defeat the perturbation.
		ws.improveEps = 0
	}

	nart := 0
	for i := 0; i < m; i++ {
		// Per row, the unit column that is feasible for the sign of the
		// right-hand side; on a tie (rhs = 0) prefer whichever is the
		// row's slack, so zero-rhs inequalities — the cut rows of the
		// steady-state masters — start basic on their slack instead of
		// an artificial that phase 2 would have to evict again.
		code := n + 2*i
		if ws.rhs[i] < 0 || (ws.rhs[i] == 0 && ws.sense[i] == GE) {
			code++
		}
		ws.basis[i] = code
		ws.basisPos[code] = i
		ws.xb[i] = math.Abs(ws.rhs[i])
		if ws.isArtificial(code) {
			nart++
			ws.artRow[i] = true
		}
	}
	ws.nart = nart
	// The initial basis is a ±1 diagonal; its factorisation is trivial
	// but runs through the same code path as every later one.
	if !ws.factorize() {
		return nil, errors.New("lp: internal: singular initial basis")
	}
	ws.stats.Factorizations++

	sol := &Solution{X: make([]float64, n), Dual: make([]float64, m)}

	// Phase 1: minimise the sum of artificials. The artificial sum can
	// never drop below zero: stop at the feasibility threshold (with its
	// perturbation slack).
	if nart > 0 {
		ws.setPhase(1)
		phase1Stop := feasTol / 2
		if perturb > 0 {
			phase1Stop = feasTol
		}
		iters, status := ws.primal(phase1Stop)
		sol.Iterations += iters
		ws.stats.Iterations += iters
		if status == statusCanceled {
			return nil, fmt.Errorf("%w (phase 1, m=%d n=%d)", ErrCanceled, m, n)
		}
		if status == statusIterLimit {
			return nil, fmt.Errorf("%w (phase 1, m=%d n=%d)", ErrIterationLimit, m, n)
		}
		if status == statusUnbounded {
			return nil, errors.New("lp: internal: phase 1 reported unbounded")
		}
		slack := feasTol
		if perturb > 0 {
			for _, r := range ws.rhs[:m] {
				slack += 2 * perturb * (2 + math.Abs(r))
			}
		}
		if ws.objValue() > slack {
			sol.Status = Infeasible
			return sol, nil
		}
		// Artificials left basic at ~zero are *not* swept out here: the
		// ratio test pins them (see chooseLeaving), so phase 2 evicts
		// lazily — only the rows the optimisation actually touches pay a
		// pivot, instead of one BTRAN + column scan per artificial row.
	}

	// Phase 2: minimise the true objective; artificials are banned.
	ws.setPhase(2)
	iters, status := ws.primal(math.Inf(-1))
	sol.Iterations += iters
	ws.stats.Iterations += iters
	switch status {
	case statusCanceled:
		return nil, fmt.Errorf("%w (phase 2, m=%d n=%d)", ErrCanceled, m, n)
	case statusIterLimit:
		return nil, fmt.Errorf("%w (phase 2, m=%d n=%d)", ErrIterationLimit, m, n)
	case statusUnbounded:
		sol.Status = Unbounded
		return sol, nil
	}
	if !ws.artificialsClean() {
		// A lazily kept artificial regrew past the feasibility tolerance
		// (severe degeneracy interacting with the pinned ratio test):
		// the basis no longer represents the true program, so fail into
		// the perturbed retry instead of extracting a relaxed optimum.
		return nil, fmt.Errorf("%w (artificial regrew, m=%d n=%d)", ErrIterationLimit, m, n)
	}
	ws.extract(mdl, sol)
	sol.Basis = ws.exportBasis()
	return sol, nil
}

// solveWarm attempts the warm-started solve. ok=false means the basis
// could not be used and the caller should run the cold path; a non-nil
// error is a genuine solver failure.
func (ws *Workspace) solveWarm(mdl *Model, basis Basis) (sol *Solution, ok bool, err error) {
	k := len(basis.cols)
	mm := len(mdl.rows)
	// k == 0 with a valid basis is the legitimate optimal basis of a
	// 0-row model (a rowless column-generation master): it round-trips
	// as a warm start, with any appended inequality rows joining on
	// their slacks exactly like rows appended to a non-trivial basis.
	if !basis.valid || k > mm {
		return nil, false, nil
	}
	// Appended rows join the basis on their slack; equality rows have
	// none, so their appearance forces a cold start.
	for i := k; i < mm; i++ {
		if mdl.rows[i].sense == EQ {
			return nil, false, nil
		}
	}

	ws.compile(mdl, 0)
	n, m := ws.n, ws.m
	ws.ensureIterState()

	// Decode and validate the basis under the current column space.
	for i := 0; i < k; i++ {
		code := decodeBasisCol(basis.cols[i], n)
		if enc := basis.cols[i]; enc >= 0 {
			if enc >= n {
				return nil, false, nil
			}
		} else if ws.unitRow(code) >= k {
			return nil, false, nil
		}
		if ws.basisPos[code] >= 0 {
			return nil, false, nil // duplicate basic column
		}
		ws.basis[i] = code
		ws.basisPos[code] = i
		if ws.isArtificial(code) {
			ws.artRow[i] = true
			ws.nart++
		}
	}
	for i := k; i < m; i++ {
		code := n + 2*i // +e_i relaxes <=
		if ws.sense[i] == GE {
			code++ // -e_i relaxes >=
		}
		ws.basis[i] = code
		ws.basisPos[code] = i
	}

	// The sparse factorisation is cheap enough to rebuild on every warm
	// start — there is no dense O(m^3) rebuild to dodge any more, so no
	// row cap and no block-extension special case. A singular basis
	// matrix simply falls back to the cold path.
	if !ws.factorize() {
		return nil, false, nil
	}
	ws.stats.Factorizations++

	ws.recomputeXB()
	primalInfeas := false
	for i := 0; i < m; i++ {
		if ws.xb[i] < -feasTol {
			primalInfeas = true
			break
		}
	}

	ws.stats.Solves++
	ws.rng = newXorshift(uint64(m)*2654435761 + uint64(n+2*m) + 1)
	ws.improveEps = Eps
	ws.setPhase(2)

	if primalInfeas {
		// Dual-simplex cleanup needs dual feasibility; a violated
		// reduced cost alongside primal infeasibility means the basis is
		// stale in both senses.
		ws.computeY()
		total := n + 2*m
		for j := 0; j < total; j++ {
			if ws.basisPos[j] >= 0 || !ws.canEnter(j) {
				continue
			}
			if ws.reducedCost(j) < -1e-6 {
				return nil, false, nil
			}
		}
	}

	sol = &Solution{X: make([]float64, n), Dual: make([]float64, m), WarmStarted: true}
	if primalInfeas {
		iters, dualStatus := ws.dualSimplex()
		sol.Iterations += iters
		sol.DualIterations += iters
		ws.stats.DualIterations += iters
		if dualStatus == statusCanceled {
			return nil, false, fmt.Errorf("%w (warm dual, m=%d n=%d)", ErrCanceled, m, n)
		}
		if dualStatus != statusOptimal {
			return nil, false, nil
		}
	}
	iters, status := ws.primal(math.Inf(-1))
	sol.Iterations += iters
	ws.stats.Iterations += iters
	if status == statusCanceled {
		// Cancellation must propagate, never fall back to a cold solve —
		// a fallback would keep burning time the caller asked back.
		return nil, false, fmt.Errorf("%w (warm, m=%d n=%d)", ErrCanceled, m, n)
	}
	if status == statusIterLimit {
		// A degenerate plateau trapped the warm primal. Report it as
		// ErrIterationLimit so SolveFrom runs the full cold ladder —
		// cold start plus the perturbed retry — rather than giving up
		// where the identical cold call would have succeeded.
		return nil, false, fmt.Errorf("%w (warm, m=%d n=%d)", ErrIterationLimit, m, n)
	}
	if status != statusOptimal || !ws.artificialsClean() {
		// Unbounded or a regrown artificial on the warm path:
		// re-derive the verdict from a trustworthy cold start.
		return nil, false, nil
	}
	ws.extract(mdl, sol)
	sol.Basis = ws.exportBasis()
	return sol, true, nil
}
