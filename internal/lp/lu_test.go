package lp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/testutil"
)

// denseBasis gathers the workspace's current basis matrix as a dense
// row-major m x m matrix (column slot s = A_{basis[s]}), the reference
// the LU engine is checked against.
func denseBasis(ws *Workspace) [][]float64 {
	m := ws.m
	B := make([][]float64, m)
	for i := range B {
		B[i] = make([]float64, m)
	}
	for slot := 0; slot < m; slot++ {
		code := ws.basis[slot]
		if code >= ws.n {
			B[ws.unitRow(code)][slot] = ws.unitSign(code)
			continue
		}
		for e := ws.colPtr[code]; e < ws.colPtr[code+1]; e++ {
			B[ws.colRow[e]][slot] += ws.colVal[e]
		}
	}
	return B
}

// denseSolve solves B x = b (transpose=false) or B^T x = b
// (transpose=true) by Gaussian elimination with partial pivoting — the
// plain dense reference for FTRAN and BTRAN.
func denseSolve(B [][]float64, b []float64, transpose bool) []float64 {
	m := len(B)
	a := make([][]float64, m)
	for i := 0; i < m; i++ {
		a[i] = make([]float64, m+1)
		for j := 0; j < m; j++ {
			if transpose {
				a[i][j] = B[j][i]
			} else {
				a[i][j] = B[i][j]
			}
		}
		a[i][m] = b[i]
	}
	for c := 0; c < m; c++ {
		p := c
		for r := c + 1; r < m; r++ {
			if math.Abs(a[r][c]) > math.Abs(a[p][c]) {
				p = r
			}
		}
		a[p], a[c] = a[c], a[p]
		pv := a[c][c]
		for r := 0; r < m; r++ {
			if r == c || a[r][c] == 0 {
				continue
			}
			f := a[r][c] / pv
			for j := c; j <= m; j++ {
				a[r][j] -= f * a[c][j]
			}
		}
	}
	x := make([]float64, m)
	for i := 0; i < m; i++ {
		x[i] = a[i][m] / a[i][i]
	}
	return x
}

// TestFtranBtranMatchDense factorises randomly grown bases — including
// bases carrying a non-empty eta file — and checks FTRAN and BTRAN
// against dense Gaussian elimination on the explicit basis matrix.
func TestFtranBtranMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const tol = 1e-8
	for trial := 0; trial < 30; trial++ {
		mdl := randomPackingModel(rng)
		ws := NewWorkspace()
		ws.compile(mdl, 0)
		ws.ensureIterState()
		m := ws.m
		// Start from the diagonal unit basis, then pivot a few random
		// structural columns in through the real pivot path so the eta
		// file grows exactly as it would mid-solve.
		for i := 0; i < m; i++ {
			code := ws.n + 2*i
			ws.basis[i] = code
			ws.basisPos[code] = i
			ws.xb[i] = math.Abs(ws.rhs[i])
		}
		ws.phase = 2
		ws.setPhase(2)
		if !ws.factorize() {
			t.Fatalf("trial %d: unit basis reported singular", trial)
		}
		for pivots := 0; pivots < 1+rng.Intn(4); pivots++ {
			enter := rng.Intn(ws.n)
			if ws.basisPos[enter] >= 0 {
				continue
			}
			ws.ftran(enter)
			leave := -1
			for i := 0; i < m; i++ {
				if math.Abs(ws.w[i]) > 1e-6 && (leave < 0 || math.Abs(ws.w[i]) > math.Abs(ws.w[leave])) {
					leave = i
				}
			}
			if leave < 0 {
				continue
			}
			ws.pivot(leave, enter)
		}
		B := denseBasis(ws)

		// FTRAN of a random structural column vs the dense solve.
		code := rng.Intn(ws.n)
		ws.ftran(code)
		rhs := make([]float64, m)
		for e := ws.colPtr[code]; e < ws.colPtr[code+1]; e++ {
			rhs[ws.colRow[e]] += ws.colVal[e]
		}
		want := denseSolve(B, rhs, false)
		for i := 0; i < m; i++ {
			if !testutil.Near(ws.w[i], want[i], tol) {
				t.Fatalf("trial %d: FTRAN[%d] = %v, dense %v", trial, i, ws.w[i], want[i])
			}
		}

		// BTRAN of a random slot-space vector vs the dense transposed
		// solve (y B = c  <=>  B^T y = c).
		c := make([]float64, m)
		for i := range c {
			if rng.Float64() < 0.4 {
				c[i] = rng.NormFloat64()
			}
		}
		z := make([]float64, m)
		copy(z, c)
		y := make([]float64, m)
		ws.lu.btran(z, y)
		wantY := denseSolve(B, c, true)
		for i := 0; i < m; i++ {
			if !testutil.Near(y[i], wantY[i], tol) {
				t.Fatalf("trial %d: BTRAN[%d] = %v, dense %v", trial, i, y[i], wantY[i])
			}
		}
	}
}

// TestSolveBitIdenticalAcrossWorkspaceReuse re-solves one model on a
// fresh workspace and on a workspace that already solved unrelated
// programs, and demands bit-identical Solutions, Basis encodings and
// iteration counts — the property the serving layer's
// Reset-an-evaluator-per-request contract rests on (partial-pricing
// cursors, candidate lists and eta files must all reset per solve).
func TestSolveBitIdenticalAcrossWorkspaceReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		mdl := randomPackingModel(rng)
		fresh, err := mdl.SolveWith(NewWorkspace())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dirty := NewWorkspace()
		for warmups := 0; warmups < 3; warmups++ {
			if _, err := randomCoveringModel(rng).SolveWith(dirty); err != nil {
				t.Fatalf("trial %d: warmup: %v", trial, err)
			}
		}
		reused, err := mdl.SolveWith(dirty)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if fresh.Status != reused.Status || fresh.Objective != reused.Objective {
			t.Fatalf("trial %d: fresh %v/%v vs reused %v/%v",
				trial, fresh.Status, fresh.Objective, reused.Status, reused.Objective)
		}
		if fresh.Iterations != reused.Iterations {
			t.Errorf("trial %d: iteration count %d vs %d on workspace reuse", trial, fresh.Iterations, reused.Iterations)
		}
		if !reflect.DeepEqual(fresh.X, reused.X) || !reflect.DeepEqual(fresh.Dual, reused.Dual) {
			t.Errorf("trial %d: X/Dual differ across workspace reuse", trial)
		}
		if !reflect.DeepEqual(fresh.Basis, reused.Basis) {
			t.Errorf("trial %d: Basis encodings differ across workspace reuse", trial)
		}
	}
}

// TestEtaGrowthTriggersRefactor drives a solve long enough that the
// eta file exceeds its length threshold mid-solve and checks the
// workspace refactorised (and still reached a correct optimum).
func TestEtaGrowthTriggersRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	triggered := false
	for trial := 0; trial < 60 && !triggered; trial++ {
		// Covering shape: every >= row with a positive right-hand side
		// starts on an artificial, so phase 1 alone pivots about one eta
		// per row — comfortably past the eta-file length threshold.
		m := NewModel()
		n := 16
		for j := 0; j < n; j++ {
			m.AddVar(0.1+rng.Float64(), "")
		}
		for r := 0; r < 48; r++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.4 {
					terms = append(terms, Term{j, 0.1 + rng.Float64()})
				}
			}
			if len(terms) == 0 {
				terms = append(terms, Term{rng.Intn(n), 1})
			}
			m.AddRow(GE, 0.5+rng.Float64()*3, terms...)
		}
		ws := NewWorkspace()
		sol, err := m.SolveWith(ws)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		checkPrimalFeasible(t, m, sol.X)
		checkStrongDuality(t, m, sol)
		if st := ws.Stats(); st.Refactorizations > 0 {
			if st.Factorizations <= st.Refactorizations {
				t.Fatalf("trial %d: %d factorizations vs %d refactorizations — every solve must factorise at least once",
					trial, st.Factorizations, st.Refactorizations)
			}
			triggered = true
		}
	}
	if !triggered {
		t.Fatal("no trial exceeded the eta-file threshold; the refactor path is untested")
	}
}

// TestRefactorPreservesIterate pins the drift control: a refactorised
// basis must reproduce the same basic values the eta-file updates
// maintained (recomputeXB agrees with the incremental iterate).
func TestRefactorPreservesIterate(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	mdl := randomPackingModel(rng)
	ws := NewWorkspace()
	if _, err := mdl.SolveWith(ws); err != nil {
		t.Fatal(err)
	}
	before := make([]float64, ws.m)
	copy(before, ws.xb[:ws.m])
	ws.refactorInPlace()
	if ws.luBad {
		t.Fatal("refactorisation of an optimal basis reported singular")
	}
	for i := 0; i < ws.m; i++ {
		if !testutil.Near(before[i], ws.xb[i], 1e-9) {
			t.Fatalf("xb[%d] drifted across refactorisation: %v vs %v", i, before[i], ws.xb[i])
		}
	}
}
