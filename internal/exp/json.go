package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// EncodeCells writes the cells as an indented JSON array, the
// persistence format for finished sweeps: a sweep can be run once (see
// cmd/experiments -json) and re-rendered into either Figure 11 panel
// later without re-solving the LPs.
func EncodeCells(w io.Writer, cells []Cell) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cells); err != nil {
		return fmt.Errorf("exp: encode cells: %w", err)
	}
	return nil
}

// WriteCellsFile persists the cells to a JSON file, the shared
// behind-a-flag helper for cmd/experiments -json and cmd/figures
// -json.
func WriteCellsFile(path string, cells []Cell) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodeCells(f, cells); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DecodeCells reads a JSON array previously written by EncodeCells.
func DecodeCells(r io.Reader) ([]Cell, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cells []Cell
	if err := dec.Decode(&cells); err != nil {
		return nil, fmt.Errorf("exp: decode cells: %w", err)
	}
	return cells, nil
}
