package exp

import (
	"strings"
	"testing"
)

// TestRunSmallSweep is a miniature Figure 11 run: one small platform,
// two densities. It checks the structural invariants the paper's plots
// rely on: heuristics sit between the lower bound and the scatter
// bound, and every requested cell is filled.
func TestRunSmallSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full heuristic sweep is slow")
	}
	cfg := Config{
		Size:      "small",
		Platforms: 1,
		Densities: []float64{0.1, 0.6},
		Seed:      3,
	}
	cells, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSeries := 3 + 4 // baselines + heuristics
	if len(cells) != 2*wantSeries {
		t.Fatalf("got %d cells, want %d", len(cells), 2*wantSeries)
	}
	for _, c := range cells {
		if c.Runs != 1 {
			t.Errorf("%s@%v: runs = %d", c.Series, c.Density, c.Runs)
		}
		if c.VsLB < 1-1e-6 {
			t.Errorf("%s@%v: ratio to LB %v < 1", c.Series, c.Density, c.VsLB)
		}
		if c.Series == SeriesScatter && (c.VsScatter < 1-1e-9 || c.VsScatter > 1+1e-9) {
			t.Errorf("scatter self-ratio = %v", c.VsScatter)
		}
		// Multisource MC starts from the scatter solution and only
		// accepts improvements, so it can never lose to scatter. (The
		// broadcast-based heuristics can, at very low density — the
		// paper's Figure 11a shows the same effect for plain broadcast.)
		if c.Series == "Multisource MC" && c.VsScatter > 1+1e-6 {
			t.Errorf("%s@%v: worse than scatter: %v", c.Series, c.Density, c.VsScatter)
		}
	}
}

func TestRunRejectsUnknownSize(t *testing.T) {
	if _, err := Run(Config{Size: "galactic", Platforms: 1, Densities: []float64{0.5}}); err == nil {
		t.Fatal("unknown size accepted")
	}
}

func TestTableRendering(t *testing.T) {
	cells := []Cell{
		{Density: 0.2, Series: "MCPH", VsScatter: 0.5, VsLB: 1.2, Runs: 10},
		{Density: 0.2, Series: "scatter", VsScatter: 1, VsLB: 2.4, Runs: 10},
	}
	out := Table(cells, "scatter")
	if !strings.Contains(out, "MCPH") || !strings.Contains(out, "0.500") {
		t.Fatalf("bad table:\n%s", out)
	}
	out = Table(cells, "lb")
	if !strings.Contains(out, "1.200") {
		t.Fatalf("bad lb table:\n%s", out)
	}
}

func TestDefaultDensities(t *testing.T) {
	d := DefaultDensities()
	if len(d) != 6 || d[len(d)-1] != 1.0 {
		t.Fatalf("densities = %v", d)
	}
}
