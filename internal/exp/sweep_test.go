package exp

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/heur"
	"repro/internal/steady"
)

// detConfig is a reduced sweep used by the determinism tests: small
// platforms and only the cheapest heuristic, so three full runs stay
// fast while still exercising the worker pool across several tasks.
func detConfig(workers int) Config {
	return Config{
		Size:       "small",
		Platforms:  2,
		Densities:  []float64{0.2, 0.8},
		Seed:       7,
		Heuristics: heur.All()[:1], // MCPH
		Workers:    workers,
	}
}

// TestSweepDeterminism is the regression test for the concurrent
// engine's central promise: the aggregated cells are bit-identical
// regardless of worker count, and repeated parallel runs agree with
// each other.
func TestSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep determinism run is slow")
	}
	serial, err := Run(detConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(detConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Workers=1 and Workers=8 disagree:\n1: %+v\n8: %+v", serial, parallel)
	}
	again, err := Run(detConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parallel, again) {
		t.Errorf("two Workers=8 runs disagree:\n1st: %+v\n2nd: %+v", parallel, again)
	}
	if len(serial) != 2*4 { // 2 densities x (3 baselines + MCPH)
		t.Fatalf("got %d cells, want 8", len(serial))
	}
}

// TestSweepTaskOrder checks that Sweep returns structured results in
// task order (platform-major) whatever order the workers finish in,
// and that the progress sink sees one line per task.
func TestSweepTaskOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	var progress bytes.Buffer
	cfg := detConfig(4)
	cfg.Progress = &progress
	results, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	want := []Task{
		{Platform: 0, DensityIndex: 0, Density: 0.2},
		{Platform: 0, DensityIndex: 1, Density: 0.8},
		{Platform: 1, DensityIndex: 0, Density: 0.2},
		{Platform: 1, DensityIndex: 1, Density: 0.8},
	}
	for i, r := range results {
		if r.Task != want[i] {
			t.Errorf("result %d task = %+v, want %+v", i, r.Task, want[i])
		}
		if r.Err != nil {
			t.Errorf("result %d failed: %v", i, r.Err)
		}
		if r.Scatter <= 0 || r.LB <= 0 || len(r.Periods) != 4 {
			t.Errorf("result %d not fully populated: %+v", i, r)
		}
	}
	if n := strings.Count(progress.String(), "\n"); n != 4 {
		t.Errorf("progress wrote %d lines, want 4:\n%s", n, progress.String())
	}
}

// TestSweepErrorsAsValues plants a failing heuristic and checks that
// the failure is carried on the task result — and joined into Run's
// error — instead of tearing down the whole sweep.
func TestSweepErrorsAsValues(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	boom := errors.New("boom")
	cfg := Config{
		Size:      "small",
		Platforms: 1,
		Densities: []float64{0.2},
		Seed:      7,
		Heuristics: []heur.Heuristic{{
			Name: "exploding",
			Run:  func(steady.Problem) (*heur.Result, error) { return nil, boom },
		}},
	}
	results, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Err == nil || !errors.Is(results[0].Err, boom) {
		t.Fatalf("task error not carried as a value: %+v", results)
	}
	cells, err := Run(cfg)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want wrapped boom", err)
	}
	if len(cells) != 0 {
		t.Fatalf("failed task contributed cells: %+v", cells)
	}
}

// TestAggregateDuplicateDensities checks that duplicate entries in the
// density sweep merge into a single cell keyed by the density value —
// not one ambiguously-ordered cell per sweep index — and that failed
// tasks are excluded from the fold.
func TestAggregateDuplicateDensities(t *testing.T) {
	results := []TaskResult{
		{
			Task:    Task{Platform: 0, DensityIndex: 0, Density: 0.2},
			Scatter: 4, LB: 2,
			Periods: map[string]float64{"MCPH": 2},
		},
		{
			Task:    Task{Platform: 0, DensityIndex: 1, Density: 0.2}, // duplicate density
			Scatter: 4, LB: 2,
			Periods: map[string]float64{"MCPH": 4},
		},
		{
			Task: Task{Platform: 0, DensityIndex: 2, Density: 0.4},
			Err:  errors.New("disconnected"),
		},
	}
	cells := Aggregate(results)
	want := []Cell{{Density: 0.2, Series: "MCPH", VsScatter: 0.75, VsLB: 1.5, Runs: 2}}
	if !reflect.DeepEqual(cells, want) {
		t.Errorf("cells = %+v, want %+v", cells, want)
	}
}

func TestTaskSeedDistinct(t *testing.T) {
	seen := map[int64][2]int{}
	for pi := 0; pi < 50; pi++ {
		for di := 0; di < 50; di++ {
			s := taskSeed(1, pi, di)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d) -> %d", prev[0], prev[1], pi, di, s)
			}
			seen[s] = [2]int{pi, di}
		}
	}
	if taskSeed(1, 2, 3) == taskSeed(2, 2, 3) {
		t.Error("base seed does not influence task seed")
	}
}

// TestTableGolden pins the exact rendering of both Figure 11 panel
// baselines, including the missing-cell placeholder.
func TestTableGolden(t *testing.T) {
	cells := []Cell{
		{Density: 0.2, Series: "MCPH", VsScatter: 0.5, VsLB: 1.25, Runs: 10},
		{Density: 0.2, Series: "scatter", VsScatter: 1, VsLB: 2.5, Runs: 10},
		{Density: 0.6, Series: "MCPH", VsScatter: 0.75, VsLB: 1.5, Runs: 10},
	}
	wantScatter := "density              MCPH         scatter\n" +
		"0.200               0.500           1.000\n" +
		"0.600               0.750               -\n"
	wantLB := "density              MCPH         scatter\n" +
		"0.200               1.250           2.500\n" +
		"0.600               1.500               -\n"
	if got := Table(cells, "scatter"); got != wantScatter {
		t.Errorf("scatter table:\ngot:\n%s\nwant:\n%s", got, wantScatter)
	}
	if got := Table(cells, "lb"); got != wantLB {
		t.Errorf("lb table:\ngot:\n%s\nwant:\n%s", got, wantLB)
	}
}

// TestCellsJSONRoundTrip checks that persisted sweeps decode to
// exactly the cells that were encoded, including floats with no finite
// decimal representation.
func TestCellsJSONRoundTrip(t *testing.T) {
	cells := []Cell{
		{Density: 0.05, Series: "MCPH", VsScatter: 1.0 / 3.0, VsLB: 1.7320508075688772, Runs: 10},
		{Density: 1, Series: "lower bound", VsScatter: 0.9999999999999999, VsLB: 1, Runs: 3},
	}
	var buf bytes.Buffer
	if err := EncodeCells(&buf, cells); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCells(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cells) {
		t.Errorf("round trip changed cells:\ngot:  %+v\nwant: %+v", got, cells)
	}
	if _, err := DecodeCells(strings.NewReader(`[{"density": 1, "bogus": 2}]`)); err == nil {
		t.Error("unknown field accepted")
	}
}
