// Package exp is the simulation harness behind the paper's Figure 11:
// it sweeps multicast target density over randomly generated Tiers-like
// platforms, runs the LP bounds and all heuristics, and aggregates the
// period ratios that the paper plots — each heuristic's period against
// the scatter upper bound (Figures 11a/11c) and against the theoretical
// lower bound (Figures 11b/11d).
//
// The sweep grid is embarrassingly parallel: each (platform, density)
// cell is an independent task. Run executes the grid on a worker pool
// (Config.Workers) with deterministic per-task seeding — every task
// derives its own rand.Rand from (Config.Seed, platform index, density
// index), so the aggregated cells are bit-identical regardless of the
// number of workers or the order in which tasks complete.
package exp

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/heur"
	"repro/internal/steady"
	"repro/internal/tiers"
)

// Baseline and heuristic series names, matching the paper's legend.
const (
	SeriesScatter    = "scatter"
	SeriesLowerBound = "lower bound"
	SeriesBroadcast  = "broadcast"
)

// Config parameterises a sweep.
type Config struct {
	// Size selects the platform preset: "small" (30 nodes) or "big"
	// (65 nodes).
	Size string
	// Platforms is the number of random platforms per density (the
	// paper uses 10).
	Platforms int
	// Densities are the target densities over the LAN hosts; nil means
	// DefaultDensities.
	Densities []float64
	// Seed drives platform generation and target selection. Each
	// (platform, density) task derives its own generator from Seed and
	// the task coordinates, so results do not depend on Workers.
	Seed int64
	// Heuristics to run; nil means heur.All(). An empty non-nil slice
	// runs only the three baselines.
	Heuristics []heur.Heuristic
	// Workers is the number of concurrent sweep workers; values < 1
	// mean runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when non-nil, receives one line per completed
	// (platform, density) task. Lines arrive in completion order, but
	// all writes happen from a single collector goroutine, so the
	// writer needs no locking of its own.
	Progress io.Writer
}

// DefaultDensities mirrors the paper's sweep: one single target, then
// 20% to 100% of the LAN hosts.
func DefaultDensities() []float64 {
	return []float64{0.05, 0.2, 0.4, 0.6, 0.8, 1.0}
}

// Cell is one aggregated data point: a series at a density.
type Cell struct {
	Density   float64 `json:"density"`
	Series    string  `json:"series"`
	VsScatter float64 `json:"vs_scatter"` // mean period(series) / period(scatter)
	VsLB      float64 `json:"vs_lb"`      // mean period(series) / period(lower bound)
	Runs      int     `json:"runs"`
}

// Task is one unit of sweep work: a single (platform, density) grid
// point.
type Task struct {
	Platform     int     // platform index in [0, Config.Platforms)
	DensityIndex int     // index into the density sweep
	Density      float64 // target density over the LAN hosts
}

// TaskResult is the structured outcome of one task. A task failure is
// carried in Err rather than aborting the sweep, so one disconnected
// platform does not discard the rest of the grid.
type TaskResult struct {
	Task
	Targets int                // size of the drawn target set
	Scatter float64            // scatter bound period (Multicast-UB)
	LB      float64            // lower bound period (Multicast-LB)
	Periods map[string]float64 // period per series (baselines + heuristics)
	// Stats aggregates the task evaluator's LP-solver activity: solves,
	// simplex iterations, warm-start hits, cache hits, cuts.
	Stats steady.SolveStats
	Err   error
}

// DeriveSeed mixes a base seed and integer coordinates through
// splitmix64 into one well-scrambled RNG seed. It is the shared seeding
// path of the sweep engine (one coordinate pair per grid task) and the
// CLIs (cmd/mcast derives its target-drawing stream the same way), so
// every surface that draws random target sets is reproducible from the
// same (seed, coordinates) tuple, independent of go version and worker
// count.
func DeriveSeed(seed int64, coords ...int) int64 {
	z := uint64(seed) ^ 0x9e3779b97f4a7c15
	muls := [...]uint64{0xbf58476d1ce4e5b9, 0x94d049bb133111eb}
	for i, c := range coords {
		z = splitmix(z + uint64(c)*muls[i%len(muls)])
	}
	return int64(z >> 1)
}

// NewRNG returns a rand.Rand seeded with DeriveSeed(seed, coords...).
func NewRNG(seed int64, coords ...int) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(seed, coords...)))
}

// Mix64 is the splitmix64 finalizer behind DeriveSeed, exported as the
// repo's one well-scrambled 64-bit mixing function (the serving layer
// routes plan requests over shards with it).
func Mix64(z uint64) uint64 { return splitmix(z) }

// taskSeed derives the deterministic per-task RNG seed from the sweep
// seed and the task coordinates, mixing through splitmix64 so that
// neighbouring tasks get uncorrelated streams.
func taskSeed(seed int64, platform, densityIndex int) int64 {
	return DeriveSeed(seed, platform, densityIndex)
}

func splitmix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Run executes the sweep and returns one Cell per (density, series),
// ordered by density then series name. Configuration-level failures
// (unknown size, platform generation) abort the run; per-task failures
// are aggregated into the returned error while the surviving tasks
// still contribute cells.
func Run(cfg Config) ([]Cell, error) {
	results, err := Sweep(cfg)
	if err != nil {
		return nil, err
	}
	return Aggregate(results), Errors(results)
}

// Sweep executes the task grid on the worker pool and returns one
// TaskResult per (platform, density) in task order (platform-major),
// independent of worker count and completion order. Per-task failures
// are reported in TaskResult.Err; only configuration-level failures
// return an error.
func Sweep(cfg Config) ([]TaskResult, error) {
	if cfg.Platforms <= 0 {
		cfg.Platforms = 10
	}
	densities := cfg.Densities
	if len(densities) == 0 {
		densities = DefaultDensities()
	}
	// nil Heuristics resolves inside each task: the default registry is
	// bound to the task's own evaluator so all five series of a cell
	// share cached bounds, pooled cuts and one LP workspace.
	heuristics := cfg.Heuristics

	// Platform generation is cheap and deterministic; do it serially up
	// front so every task for platform i shares one read-only topology.
	platforms := make([]*tiers.Platform, cfg.Platforms)
	for pi := range platforms {
		p, err := generate(cfg.Size, cfg.Seed+int64(pi))
		if err != nil {
			return nil, err
		}
		platforms[pi] = p
	}

	tasks := make([]Task, 0, cfg.Platforms*len(densities))
	for pi := 0; pi < cfg.Platforms; pi++ {
		for di, d := range densities {
			tasks = append(tasks, Task{Platform: pi, DensityIndex: di, Density: d})
		}
	}

	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	results := make([]TaskResult, len(tasks))
	todo := make(chan int)
	done := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker scratch: one evaluator — and, when the caller
			// did not supply heuristics, one registry bound to it — is
			// reused for every task this worker runs. Reset() between
			// tasks restores the fresh-evaluator semantics bit for bit
			// (see steady.Evaluator.Reset) while keeping the LP
			// workspace, flow solver and buffer allocations, so a sweep
			// stops paying a full evaluator allocation per grid point.
			ev := steady.NewEvaluator()
			hs := heuristics
			if hs == nil {
				hs = heur.AllWith(ev)
			}
			for i := range todo {
				t := tasks[i]
				rng := rand.New(rand.NewSource(taskSeed(cfg.Seed, t.Platform, t.DensityIndex)))
				ev.Reset()
				results[i] = runTask(platforms[t.Platform], t, hs, rng, ev)
				done <- i
			}
		}()
	}
	go func() {
		for i := range tasks {
			todo <- i
		}
		close(todo)
		wg.Wait()
		close(done)
	}()
	// The collector is the sole writer to Progress, which makes the
	// sink safe without any synchronisation on the caller's side.
	for i := range done {
		if cfg.Progress == nil {
			continue
		}
		r := results[i]
		if r.Err != nil {
			fmt.Fprintf(cfg.Progress, "platform %d density %.2f: error: %v\n", r.Platform, r.Density, r.Err)
			continue
		}
		fmt.Fprintf(cfg.Progress, "platform %d density %.2f: |T|=%d scatter=%.1f lb=%.1f\n",
			r.Platform, r.Density, r.Targets, r.Scatter, r.LB)
	}
	return results, nil
}

// runTask draws the target set and computes every series' period for
// one grid point on the worker's (freshly Reset) bound evaluator, so
// the three baselines and every heuristic share LP work — cached
// bounds, pooled cuts, one workspace — and consecutive tasks share the
// allocations. Failures are returned as values on the result. Stats
// are reported as the delta over this task, so the per-task
// attribution is unchanged by the worker-level reuse.
func runTask(platform *tiers.Platform, task Task, heuristics []heur.Heuristic, rng *rand.Rand, ev *steady.Evaluator) TaskResult {
	res := TaskResult{Task: task}
	before := ev.Stats()
	fail := func(err error) TaskResult {
		res.Stats = ev.Stats().Delta(before)
		res.Err = fmt.Errorf("exp: platform %d density %.2f: %w", task.Platform, task.Density, err)
		return res
	}
	targets := platform.RandomTargets(rng, task.Density)
	res.Targets = len(targets)
	p, err := steady.NewProblem(platform.G, platform.Source, targets)
	if err != nil {
		return fail(err)
	}
	scatter, err := ev.ScatterUB(p)
	if err != nil {
		return fail(err)
	}
	lb, err := ev.MulticastLB(p)
	if err != nil {
		return fail(err)
	}
	bc, err := ev.BroadcastEB(platform.G, platform.Source)
	if err != nil {
		return fail(err)
	}
	if scatter.Infeasible() || lb.Infeasible() || bc.Infeasible() {
		return fail(errors.New("generated platform disconnected"))
	}
	res.Scatter, res.LB = scatter.Period, lb.Period
	res.Periods = map[string]float64{
		SeriesScatter:    scatter.Period,
		SeriesLowerBound: lb.Period,
		SeriesBroadcast:  bc.Period,
	}
	for _, h := range heuristics {
		hr, err := h.Run(p)
		if err != nil {
			return fail(fmt.Errorf("%s: %w", h.Name, err))
		}
		if math.IsInf(hr.Period, 1) {
			return fail(fmt.Errorf("%s returned an infinite period", h.Name))
		}
		res.Periods[h.Name] = hr.Period
	}
	res.Stats = ev.Stats().Delta(before)
	return res
}

// Errors joins the per-task failures of a sweep (nil when every task
// succeeded) — the shared fold behind Run and the CLIs' partial-failure
// warnings.
func Errors(results []TaskResult) error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	return errors.Join(errs...)
}

// AggregateStats folds the per-task solver statistics of a sweep into
// one total (failed tasks included: their solves happened too).
func AggregateStats(results []TaskResult) steady.SolveStats {
	var total steady.SolveStats
	for i := range results {
		total.Add(results[i].Stats)
	}
	return total
}

// Aggregate folds task results into one Cell per (density, series),
// ordered by density then series name. Failed tasks are skipped. The
// fold visits results in task order, so for a fixed result slice the
// floating-point sums — and hence the cells — are bit-identical
// however the results were produced. Accumulators key on the density
// value, not the sweep index, so duplicate entries in Config.Densities
// merge into one cell (with their runs combined) and the final sort
// over the unique (density, series) keys is total.
func Aggregate(results []TaskResult) []Cell {
	type acc struct {
		vsScatter, vsLB float64
		runs            int
	}
	type key struct {
		density float64
		series  string
	}
	sums := map[key]*acc{}
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		// Per-series accumulators each receive their contributions in
		// task order; map iteration order only interleaves independent
		// accumulators, so the sums stay deterministic.
		for series, period := range r.Periods {
			k := key{r.Density, series}
			a := sums[k]
			if a == nil {
				a = &acc{}
				sums[k] = a
			}
			a.vsScatter += period / r.Scatter
			a.vsLB += period / r.LB
			a.runs++
		}
	}
	cells := make([]Cell, 0, len(sums))
	for k, a := range sums {
		cells = append(cells, Cell{
			Density:   k.density,
			Series:    k.series,
			VsScatter: a.vsScatter / float64(a.runs),
			VsLB:      a.vsLB / float64(a.runs),
			Runs:      a.runs,
		})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Density != cells[j].Density {
			return cells[i].Density < cells[j].Density
		}
		return cells[i].Series < cells[j].Series
	})
	return cells
}

func generate(size string, seed int64) (*tiers.Platform, error) {
	switch size {
	case "", "small":
		return tiers.Generate(tiers.Small(seed))
	case "big":
		return tiers.Generate(tiers.Big(seed))
	default:
		return nil, fmt.Errorf("exp: unknown platform size %q", size)
	}
}

// Table renders the cells as a fixed-width table of the chosen ratio
// ("scatter" or "lb"), one row per density, one column per series —
// the textual form of one Figure 11 panel.
func Table(cells []Cell, baseline string) string {
	var seriesNames []string
	seen := map[string]bool{}
	var densities []float64
	seenD := map[float64]bool{}
	for _, c := range cells {
		if !seen[c.Series] {
			seen[c.Series] = true
			seriesNames = append(seriesNames, c.Series)
		}
		if !seenD[c.Density] {
			seenD[c.Density] = true
			densities = append(densities, c.Density)
		}
	}
	sort.Strings(seriesNames)
	sort.Float64s(densities)
	value := func(d float64, s string) (float64, bool) {
		for _, c := range cells {
			if c.Density == d && c.Series == s {
				if baseline == "lb" {
					return c.VsLB, true
				}
				return c.VsScatter, true
			}
		}
		return 0, false
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s", "density")
	for _, s := range seriesNames {
		fmt.Fprintf(&sb, " %15s", s)
	}
	sb.WriteByte('\n')
	for _, d := range densities {
		fmt.Fprintf(&sb, "%-9.3f", d)
		for _, s := range seriesNames {
			if v, ok := value(d, s); ok {
				fmt.Fprintf(&sb, " %15.3f", v)
			} else {
				fmt.Fprintf(&sb, " %15s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
