// Package exp is the simulation harness behind the paper's Figure 11:
// it sweeps multicast target density over randomly generated Tiers-like
// platforms, runs the LP bounds and all heuristics, and aggregates the
// period ratios that the paper plots — each heuristic's period against
// the scatter upper bound (Figures 11a/11c) and against the theoretical
// lower bound (Figures 11b/11d).
package exp

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/heur"
	"repro/internal/steady"
	"repro/internal/tiers"
)

// Baseline and heuristic series names, matching the paper's legend.
const (
	SeriesScatter    = "scatter"
	SeriesLowerBound = "lower bound"
	SeriesBroadcast  = "broadcast"
)

// Config parameterises a sweep.
type Config struct {
	// Size selects the platform preset: "small" (30 nodes) or "big"
	// (65 nodes).
	Size string
	// Platforms is the number of random platforms per density (the
	// paper uses 10).
	Platforms int
	// Densities are the target densities over the LAN hosts; nil means
	// DefaultDensities.
	Densities []float64
	// Seed drives platform generation and target selection.
	Seed int64
	// Heuristics to run; nil means heur.All().
	Heuristics []heur.Heuristic
	// Progress, when non-nil, receives one line per (platform,
	// density) step.
	Progress io.Writer
}

// DefaultDensities mirrors the paper's sweep: one single target, then
// 20% to 100% of the LAN hosts.
func DefaultDensities() []float64 {
	return []float64{0.05, 0.2, 0.4, 0.6, 0.8, 1.0}
}

// Cell is one aggregated data point: a series at a density.
type Cell struct {
	Density   float64
	Series    string
	VsScatter float64 // mean period(series) / period(scatter)
	VsLB      float64 // mean period(series) / period(lower bound)
	Runs      int
}

// Run executes the sweep and returns one Cell per (density, series),
// ordered by density then series name.
func Run(cfg Config) ([]Cell, error) {
	if cfg.Platforms <= 0 {
		cfg.Platforms = 10
	}
	densities := cfg.Densities
	if len(densities) == 0 {
		densities = DefaultDensities()
	}
	heuristics := cfg.Heuristics
	if heuristics == nil {
		heuristics = heur.All()
	}

	type acc struct {
		vsScatter, vsLB float64
		runs            int
	}
	sums := map[[2]string]*acc{} // (density label, series)
	densLabel := func(d float64) string { return fmt.Sprintf("%.4f", d) }
	add := func(d float64, series string, period, scatter, lb float64) {
		key := [2]string{densLabel(d), series}
		a := sums[key]
		if a == nil {
			a = &acc{}
			sums[key] = a
		}
		a.vsScatter += period / scatter
		a.vsLB += period / lb
		a.runs++
	}

	for pi := 0; pi < cfg.Platforms; pi++ {
		platform, err := generate(cfg.Size, cfg.Seed+int64(pi))
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(pi)))
		for _, d := range densities {
			targets := platform.RandomTargets(rng, d)
			p, err := steady.NewProblem(platform.G, platform.Source, targets)
			if err != nil {
				return nil, err
			}
			scatter, err := steady.ScatterUB(p)
			if err != nil {
				return nil, err
			}
			lb, err := steady.MulticastLB(p)
			if err != nil {
				return nil, err
			}
			bc, err := steady.BroadcastEB(platform.G, platform.Source)
			if err != nil {
				return nil, err
			}
			if scatter.Infeasible() || lb.Infeasible() || bc.Infeasible() {
				return nil, fmt.Errorf("exp: generated platform disconnected (seed %d)", cfg.Seed+int64(pi))
			}
			add(d, SeriesScatter, scatter.Period, scatter.Period, lb.Period)
			add(d, SeriesLowerBound, lb.Period, scatter.Period, lb.Period)
			add(d, SeriesBroadcast, bc.Period, scatter.Period, lb.Period)
			for _, h := range heuristics {
				res, err := h.Run(p)
				if err != nil {
					return nil, fmt.Errorf("exp: %s: %w", h.Name, err)
				}
				if math.IsInf(res.Period, 1) {
					return nil, fmt.Errorf("exp: %s returned an infinite period", h.Name)
				}
				add(d, h.Name, res.Period, scatter.Period, lb.Period)
			}
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "platform %d density %.2f: |T|=%d scatter=%.1f lb=%.1f\n",
					pi, d, len(targets), scatter.Period, lb.Period)
			}
		}
	}

	var cells []Cell
	for _, d := range densities {
		for key, a := range sums {
			if key[0] != densLabel(d) {
				continue
			}
			cells = append(cells, Cell{
				Density:   d,
				Series:    key[1],
				VsScatter: a.vsScatter / float64(a.runs),
				VsLB:      a.vsLB / float64(a.runs),
				Runs:      a.runs,
			})
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Density != cells[j].Density {
			return cells[i].Density < cells[j].Density
		}
		return cells[i].Series < cells[j].Series
	})
	return cells, nil
}

func generate(size string, seed int64) (*tiers.Platform, error) {
	switch size {
	case "", "small":
		return tiers.Generate(tiers.Small(seed))
	case "big":
		return tiers.Generate(tiers.Big(seed))
	default:
		return nil, fmt.Errorf("exp: unknown platform size %q", size)
	}
}

// Table renders the cells as a fixed-width table of the chosen ratio
// ("scatter" or "lb"), one row per density, one column per series —
// the textual form of one Figure 11 panel.
func Table(cells []Cell, baseline string) string {
	var seriesNames []string
	seen := map[string]bool{}
	var densities []float64
	seenD := map[float64]bool{}
	for _, c := range cells {
		if !seen[c.Series] {
			seen[c.Series] = true
			seriesNames = append(seriesNames, c.Series)
		}
		if !seenD[c.Density] {
			seenD[c.Density] = true
			densities = append(densities, c.Density)
		}
	}
	sort.Strings(seriesNames)
	sort.Float64s(densities)
	value := func(d float64, s string) (float64, bool) {
		for _, c := range cells {
			if c.Density == d && c.Series == s {
				if baseline == "lb" {
					return c.VsLB, true
				}
				return c.VsScatter, true
			}
		}
		return 0, false
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s", "density")
	for _, s := range seriesNames {
		fmt.Fprintf(&sb, " %15s", s)
	}
	sb.WriteByte('\n')
	for _, d := range densities {
		fmt.Fprintf(&sb, "%-9.3f", d)
		for _, s := range seriesNames {
			if v, ok := value(d, s); ok {
				fmt.Fprintf(&sb, " %15.3f", v)
			} else {
				fmt.Fprintf(&sb, " %15s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
