package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/live"
)

// SubscribeLine is one streamed update of GET
// /v1/platforms/{id}/subscribe: the platform version and either that
// version's plan — byte-identical to the POST /v1/plan body for the
// same spec against the same version, compactly encoded — or the error
// that version produced for the subscribed spec (e.g. a PATCH dropped
// the spec's source).
type SubscribeLine struct {
	Version int64           `json:"version"`
	Plan    json.RawMessage `json:"plan,omitempty"`
	Error   *ErrorBody      `json:"error,omitempty"`
	// Final marks the stream's terminator line: the server is shutting
	// down and closed the subscription deliberately. A stream that ends
	// without a final line was cut by the transport (or the client) —
	// reconnect-and-resume applies; after a final line it does not.
	Final bool `json:"final,omitempty"`
}

// LiveStats counts the live-platform traffic for GET /v1/stats.
type LiveStats struct {
	// Patches counts accepted PATCH /v1/platforms/{id} requests;
	// PatchOps the delta ops they applied.
	Patches  int64 `json:"patches"`
	PatchOps int64 `json:"patch_ops"`
	// StreamsStarted counts subscriptions ever opened; StreamsActive the
	// ones currently streaming.
	StreamsStarted int64 `json:"streams_started"`
	StreamsActive  int64 `json:"streams_active"`
	// Updates counts streamed lines across all subscriptions.
	Updates int64 `json:"updates"`
	// Loops is the number of distinct (platform, spec) replan loops
	// currently alive.
	Loops int `json:"loops"`
}

// streamKey identifies one replan loop: subscribers of the same
// platform and spec share a loop (and therefore one compute per
// version however many clients watch it). The source is the literal
// request value — an empty source follows the platform's default as it
// evolves, which is its own stream identity.
type streamKey struct {
	id      string
	source  string
	targets string
	bounds  uint8
	heurs   uint8
}

type hubLoop struct {
	loop *live.Loop
	refs int
}

// hub owns the server's replan loops, refcounted by subscriber: the
// first subscriber of a (platform, spec) starts the loop, the last one
// out closes it.
type hub struct {
	mu    sync.Mutex
	loops map[streamKey]*hubLoop
	// draining is set by closeAll: every existing loop has been closed
	// and every loop acquired from here on is closed before it is handed
	// out, so late subscribers get an immediate final line instead of a
	// stream that would outlive the drain.
	draining bool
}

func newHub() *hub { return &hub{loops: make(map[streamKey]*hubLoop)} }

func (h *hub) acquire(key streamKey, compute live.Compute) *live.Loop {
	h.mu.Lock()
	hl := h.loops[key]
	if hl == nil {
		hl = &hubLoop{loop: live.NewLoop(compute)}
		h.loops[key] = hl
	}
	hl.refs++
	draining := h.draining
	h.mu.Unlock()
	if draining {
		hl.loop.Close()
	}
	return hl.loop
}

// closeAll closes every replan loop (failing their subscribers' Next
// with live.ErrClosed, which the subscribe handlers turn into a final
// terminator line) and marks the hub draining. Entries stay in the map
// until their subscribers release them — Close is idempotent, so the
// last-out release closing again is harmless.
func (h *hub) closeAll() {
	h.mu.Lock()
	h.draining = true
	loops := make([]*live.Loop, 0, len(h.loops))
	for _, hl := range h.loops {
		loops = append(loops, hl.loop)
	}
	h.mu.Unlock()
	// Close outside the lock: it waits for loop goroutines that may be
	// mid-compute.
	for _, l := range loops {
		l.Close()
	}
}

func (h *hub) release(key streamKey) {
	h.mu.Lock()
	hl := h.loops[key]
	var done *live.Loop
	if hl != nil {
		hl.refs--
		if hl.refs <= 0 {
			delete(h.loops, key)
			done = hl.loop
		}
	}
	h.mu.Unlock()
	if done != nil {
		// Close outside the hub lock: it waits for the loop goroutine,
		// which may be mid-compute.
		done.Close()
	}
}

// notifyPlatform wakes every loop of the given platform and returns
// how many it woke. Notify never blocks, so this is safe to call from
// the PATCH handler with the hub lock held.
func (h *hub) notifyPlatform(id string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for key, hl := range h.loops {
		if key.id == id {
			hl.loop.Notify()
			n++
		}
	}
	return n
}

func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.loops)
}

// liveCompute builds the compute closure of one subscription spec. It
// resolves the spec against the platform's *current* snapshot and runs
// the canonical serving path — cache, coalescer, shard pool, Reset
// evaluator — so the streamed plan bytes are bit-identical to an
// interactive POST /v1/plan against the same version, and (by the
// serving determinism contract) to a cold solve of that snapshot. This
// is also the cache *repair* half of PATCH invalidation: the recompute
// re-enters the plan cache under the new fingerprint.
func (s *Server) liveCompute(spec PlanSpec) live.Compute {
	return func() (int64, json.RawMessage, error) {
		res, err := s.resolve(&spec)
		if err != nil {
			// Label the failure with the current version when the platform
			// still exists (e.g. the spec's source was dropped); version 0
			// means the platform itself is gone.
			var v int64
			if e, ok := s.reg.get(spec.PlatformID); ok {
				v = e.version
			}
			return v, nil, err
		}
		// Replan computes run under the server's default timeout (no
		// client to carry a timeout_ms); a deadline expiry surfaces as an
		// error line for the version, and the next mutation retries.
		ctx, cancel := s.requestContext(context.Background(), 0)
		defer cancel()
		resp, _, _, err := s.planResolved(ctx, res, false, false)
		if err != nil {
			return res.version, nil, err
		}
		raw, err := json.Marshal(resp)
		if err != nil {
			return res.version, nil, err
		}
		return res.version, raw, nil
	}
}

// splitList parses a comma-separated query value, distinguishing an
// absent parameter (nil — "all" for bounds/heuristics) from an
// explicitly empty one (empty slice — "none").
func splitList(q map[string][]string, name string) []string {
	vals, ok := q[name]
	if !ok {
		return nil
	}
	joined := strings.Join(vals, ",")
	if joined == "" {
		return []string{}
	}
	return strings.Split(joined, ",")
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	spec := PlanSpec{
		PlatformID: r.PathValue("id"),
		Source:     q.Get("source"),
		Targets:    splitList(q, "targets"),
		Bounds:     splitList(q, "bounds"),
		Heuristics: splitList(q, "heuristics"),
	}
	var after int64
	if v := q.Get("after"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeError(w, badRequest("bad after version %q", v))
			return
		}
		after = n
	}
	// Validate against the current version so a bad spec fails with a
	// proper 4xx instead of an error line on a 200 stream.
	res, err := s.resolve(&spec)
	if err != nil {
		writeError(w, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, badRequest("streaming unsupported by transport"))
		return
	}

	key := streamKey{
		id:      spec.PlatformID,
		source:  spec.Source,
		targets: strings.Join(spec.Targets, "\x00"),
		bounds:  res.bounds,
		heurs:   res.heurs,
	}
	loop := s.hub.acquire(key, s.liveCompute(spec))
	defer s.hub.release(key)
	sub := loop.Subscribe()
	defer sub.Cancel()

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	s.bumpLive(func(ls *LiveStats) { ls.StreamsStarted++; ls.StreamsActive++ })
	defer s.bumpLive(func(ls *LiveStats) { ls.StreamsActive-- })

	ctx := r.Context()
	for {
		u, err := sub.Next(ctx)
		if err != nil {
			if errors.Is(err, live.ErrClosed) && ctx.Err() == nil {
				// The server closed the loop (drain) while the client is
				// still reading: send the stream's final terminator line so
				// the client can tell a deliberate shutdown from a cut
				// connection.
				writeSubscribeLine(w, flusher, sse, 0, SubscribeLine{Final: true})
			}
			// Otherwise the client is gone; the stream just ends.
			return
		}
		if u.Version <= after {
			// Resume semantics: the subscriber already has this version
			// from a previous stream.
			continue
		}
		line := SubscribeLine{Version: u.Version, Plan: u.Data}
		if u.Err != nil {
			_, body := errorBody(u.Err)
			line.Error = &body
		}
		if err := faultinject.StreamWrite(ctx); err != nil {
			return
		}
		if !writeSubscribeLine(w, flusher, sse, u.Version, line) {
			return
		}
		s.bumpLive(func(ls *LiveStats) { ls.Updates++ })
	}
}

// writeSubscribeLine encodes and flushes one stream line in the
// negotiated framing. SSE plan events are id-stamped with the version
// so EventSource clients resume with Last-Event-ID semantics; the
// final terminator is its own un-stamped "final" event. It reports
// whether the write reached the transport (false: the client is gone).
func writeSubscribeLine(w http.ResponseWriter, flusher http.Flusher, sse bool, version int64, line SubscribeLine) bool {
	payload, err := json.Marshal(line)
	if err != nil {
		return false
	}
	switch {
	case sse && line.Final:
		_, err = fmt.Fprintf(w, "event: final\ndata: %s\n\n", payload)
	case sse:
		_, err = fmt.Fprintf(w, "id: %d\nevent: plan\ndata: %s\n\n", version, payload)
	default:
		_, err = fmt.Fprintf(w, "%s\n", payload)
	}
	if err != nil {
		return false
	}
	flusher.Flush()
	return true
}

func (s *Server) bumpLive(f func(*LiveStats)) {
	s.mu.Lock()
	f(&s.live)
	s.mu.Unlock()
}
