package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Job states reported by GET /v1/jobs/{id}. There is no "queued"
// state: admission control (MaxJobs / MaxJobItems) bounds how much
// work is accepted, and an accepted job starts immediately — its items
// then queue naturally on the shard lanes against interactive traffic.
const (
	JobRunning  = "running"
	JobDone     = "done"
	JobCanceled = "canceled"
)

// JobStatus is the body of a job poll (and of the submit response).
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Items / Completed / Failed are the progress counters: items in
	// the batch, plan lines already answered, and how many of those
	// carried an error body (a canceled job's drained items count as
	// failed with code "canceled").
	Items     int `json:"items"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// Bytes is the current NDJSON stream length: pass it as ?offset= to
	// GET /v1/jobs/{id}/stream to resume a tail exactly where a prior
	// read stopped.
	Bytes        int64 `json:"bytes"`
	CreatedUnix  int64 `json:"created_unix"`
	FinishedUnix int64 `json:"finished_unix,omitempty"`
}

// JobStats is the async-jobs section of GET /v1/stats.
type JobStats struct {
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Canceled  int64 `json:"canceled"`
	// Refused counts submissions bounced by admission control (429).
	Refused int64 `json:"refused"`
	// Evicted counts finished jobs reaped by TTL.
	Evicted int64 `json:"evicted"`
	// Active and PendingItems are the current admission-control load:
	// unfinished jobs and their not-yet-answered items.
	Active       int   `json:"active"`
	PendingItems int64 `json:"pending_items"`
}

// job is one async batch: the request's result stream accumulating in
// memory, with progress counters and a broadcast channel for stream
// tails. The buffer holds exactly the bytes POST /v1/plan:batch would
// have streamed for the same request — the job API is a persistence
// layer over the batch engine, not a different computation.
type job struct {
	id      string
	items   int
	created time.Time
	cancel  context.CancelFunc

	mu        sync.Mutex
	buf       []byte
	notify    chan struct{} // closed and replaced on every append
	state     string
	completed int
	failed    int
	finished  time.Time
}

func (j *job) append(line []byte, isPlan, isErr bool) {
	j.mu.Lock()
	j.buf = append(j.buf, line...)
	if isPlan {
		j.completed++
		if isErr {
			j.failed++
		}
	}
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Items:       j.items,
		Completed:   j.completed,
		Failed:      j.failed,
		Bytes:       int64(len(j.buf)),
		CreatedUnix: j.created.Unix(),
	}
	if !j.finished.IsZero() {
		st.FinishedUnix = j.finished.Unix()
	}
	return st
}

// jobStore is the in-memory job table with admission control and lazy
// TTL eviction: every access reaps finished jobs older than ttl, so no
// background janitor goroutine is needed (and tests can drive the
// clock through now).
type jobStore struct {
	maxJobs  int
	maxItems int
	ttl      time.Duration
	now      func() time.Time

	pendingItems atomic.Int64

	mu        sync.Mutex
	m         map[string]*job
	seq       int64
	active    int
	submitted int64
	done      int64
	canceled  int64
	refused   int64
	evicted   int64
}

func newJobStore(maxJobs, maxItems int, ttl time.Duration) *jobStore {
	return &jobStore{
		maxJobs:  maxJobs,
		maxItems: maxItems,
		ttl:      ttl,
		now:      time.Now,
		m:        make(map[string]*job),
	}
}

// reapLocked evicts finished jobs past their TTL. Callers hold st.mu.
func (st *jobStore) reapLocked() {
	cutoff := st.now().Add(-st.ttl)
	for id, j := range st.m {
		j.mu.Lock()
		gone := !j.finished.IsZero() && j.finished.Before(cutoff)
		j.mu.Unlock()
		if gone {
			delete(st.m, id)
			st.evicted++
		}
	}
}

// admit registers a new job of n items or returns the saturation
// error. The retry hint is deliberately coarse — 1s; admission
// pressure on an in-memory store clears at solve speed, not at a
// schedule the server could predict.
func (st *jobStore) admit(n int, cancel context.CancelFunc) (*job, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.reapLocked()
	if st.active >= st.maxJobs {
		st.refused++
		return nil, saturated(1, "job store is saturated: %d unfinished jobs (limit %d)", st.active, st.maxJobs)
	}
	if pending := int(st.pendingItems.Load()); pending+n > st.maxItems {
		st.refused++
		return nil, saturated(1, "job store is saturated: %d pending items + %d submitted exceeds the limit %d",
			pending, n, st.maxItems)
	}
	st.seq++
	j := &job{
		id:      "job-" + strconv.FormatInt(st.seq, 10),
		items:   n,
		created: st.now(),
		cancel:  cancel,
		notify:  make(chan struct{}),
		state:   JobRunning,
	}
	st.m[j.id] = j
	st.active++
	st.submitted++
	st.pendingItems.Add(int64(n))
	return j, nil
}

// finish marks j done or canceled and releases its admission slot.
func (st *jobStore) finish(j *job, canceled bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j.mu.Lock()
	if canceled {
		j.state = JobCanceled
	} else {
		j.state = JobDone
	}
	j.finished = st.now()
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
	st.active--
	if canceled {
		st.canceled++
	} else {
		st.done++
	}
}

// activeCount reports the unfinished jobs (Drain polls it to zero).
func (st *jobStore) activeCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.active
}

// cancelAll cancels every job's context — finished jobs' cancels are
// no-ops. Running jobs drain their remaining items as "canceled" error
// lines and finish in state "canceled", exactly like a client DELETE.
func (st *jobStore) cancelAll() {
	st.mu.Lock()
	jobs := make([]*job, 0, len(st.m))
	for _, j := range st.m {
		jobs = append(jobs, j)
	}
	st.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
}

func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.reapLocked()
	j, ok := st.m[id]
	return j, ok
}

func (st *jobStore) list() []*job {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.reapLocked()
	out := make([]*job, 0, len(st.m))
	for _, j := range st.m {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool {
		return out[i].created.Before(out[k].created) || (out[i].created.Equal(out[k].created) && out[i].id < out[k].id)
	})
	return out
}

func (st *jobStore) stats() JobStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.reapLocked()
	return JobStats{
		Submitted:    st.submitted,
		Done:         st.done,
		Canceled:     st.canceled,
		Refused:      st.refused,
		Evicted:      st.evicted,
		Active:       st.active,
		PendingItems: st.pendingItems.Load(),
	}
}

// --- handlers ---------------------------------------------------------

// handleSubmitJob is POST /v1/jobs: the batch shape of /v1/plan:batch,
// executed asynchronously. The response is 202 with the job's initial
// status; poll GET /v1/jobs/{id}, tail GET /v1/jobs/{id}/stream, abort
// with DELETE /v1/jobs/{id}. Saturation (too many unfinished jobs or
// pending items) is 429/saturated with a Retry-After header.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeBatch(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	// The job's context is its own: it outlives (and ignores) the
	// submit request's context — only DELETE cancels it. A job honours
	// an explicit timeout_ms (clamped to MaxTimeout) but not the
	// server's default interactive timeout: async jobs are the endpoint
	// for work too long to wait for.
	ctx, cancel := context.WithCancel(context.Background())
	if req.TimeoutMillis > 0 {
		inner := cancel
		tctx, tcancel := context.WithTimeout(ctx, s.cfg.requestTimeout(req.TimeoutMillis))
		ctx, cancel = tctx, func() { tcancel(); inner() }
	}
	j, err := s.jobs.admit(len(req.Items), cancel)
	if err != nil {
		cancel()
		writeError(w, err)
		return
	}
	go s.runJob(ctx, j, req)
	writeJSON(w, http.StatusAccepted, j.status())
}

// runJob drains the batch engine into the job's buffer. Each emitted
// line is encoded exactly as handleBatch encodes it, so a job's stream
// is byte-identical to the synchronous batch response for the same
// request.
func (s *Server) runJob(ctx context.Context, j *job, req *BatchRequest) {
	defer j.cancel() // release the context's resources once drained
	var lb bytes.Buffer
	s.runBatch(ctx, req, func(line BatchLine) {
		lb.Reset()
		json.NewEncoder(&lb).Encode(line) //nolint:errcheck // bytes.Buffer cannot fail
		isPlan := line.Kind == "plan"
		// append copies lb's bytes into the job buffer synchronously, so
		// resetting lb for the next line is safe.
		j.append(lb.Bytes(), isPlan, isPlan && line.Error != nil)
		if isPlan {
			s.jobs.pendingItems.Add(-1)
		}
	})
	s.jobs.finish(j, ctx.Err() != nil)
}

func (s *Server) jobByID(w http.ResponseWriter, r *http.Request) *job {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, notFound("unknown job id %q (finished jobs are evicted after %s)", r.PathValue("id"), s.cfg.jobTTL()))
		return nil
	}
	return j
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	if j := s.jobByID(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCancelJob is DELETE /v1/jobs/{id}: cancel the job's context.
// Items not yet computed drain as "canceled" error lines; the job
// lands in state "canceled" once the drain completes. Canceling a
// finished job is a no-op that reports its final status.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.status())
}

// handleStreamJob is GET /v1/jobs/{id}/stream?offset=N: the job's
// NDJSON stream from byte offset N (default 0), following live until
// the job finishes. The bytes served from offset N are exactly
// stream[N:] — a client that reconnects with the Bytes value of its
// last poll resumes with nothing lost and nothing repeated.
func (s *Server) handleStreamJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	offset := int64(0)
	if q := r.URL.Query().Get("offset"); q != "" {
		v, err := strconv.ParseInt(q, 10, 64)
		if err != nil || v < 0 {
			writeError(w, badRequest("bad offset %q", q))
			return
		}
		offset = v
	}
	j.mu.Lock()
	tooFar := offset > int64(len(j.buf)) && j.state != JobRunning
	j.mu.Unlock()
	if tooFar {
		writeError(w, badRequest("offset %d is beyond the %d-byte stream", offset, j.status().Bytes))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	for {
		j.mu.Lock()
		if offset < int64(len(j.buf)) {
			chunk := j.buf[offset:]
			j.mu.Unlock()
			if _, err := w.Write(chunk); err != nil {
				return // client gone
			}
			if flusher != nil {
				flusher.Flush()
			}
			offset += int64(len(chunk))
			continue
		}
		if j.state != JobRunning {
			j.mu.Unlock()
			return
		}
		ch := j.notify
		j.mu.Unlock()
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}
