package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestErrorEnvelopeAcrossEndpoints is the contract test for the
// unified v1 error surface: every endpoint's failure is the structured
// envelope {"error":{"code":...,"message":...}} with a machine-
// readable code, and the HTTP statuses are exactly the historical
// ones — the envelope changed the body shape, never the transport.
func TestErrorEnvelopeAcrossEndpoints(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	uploadDiamond(t, s, "d")

	cases := []struct {
		name       string
		method     string
		path       string
		body       any
		wantStatus int
		wantCode   ErrorCode
	}{
		{
			"plan unknown platform",
			http.MethodPost, "/v1/plan",
			PlanRequest{PlanSpec: PlanSpec{PlatformID: "missing", Targets: []string{"t1"}}},
			http.StatusNotFound, CodeNotFound,
		},
		{
			"plan conflicting platform addressing",
			http.MethodPost, "/v1/plan",
			PlanRequest{PlanSpec: PlanSpec{PlatformID: "d", Platform: diamondText, Targets: []string{"t1"}}},
			http.StatusBadRequest, CodePlatformConflict,
		},
		{
			"plan no targets",
			http.MethodPost, "/v1/plan",
			PlanRequest{PlanSpec: PlanSpec{PlatformID: "d"}},
			http.StatusBadRequest, CodeBadRequest,
		},
		{
			"plan unknown bound",
			http.MethodPost, "/v1/plan",
			PlanRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1"}, Bounds: []string{"nope"}}},
			http.StatusBadRequest, CodeBadRequest,
		},
		{
			"upload empty platform",
			http.MethodPost, "/v1/platforms",
			UploadRequest{Platform: ""},
			http.StatusBadRequest, CodeBadRequest,
		},
		{
			"get unknown platform",
			http.MethodGet, "/v1/platforms/nope", nil,
			http.StatusNotFound, CodeNotFound,
		},
		{
			"whatif unknown platform",
			http.MethodPost, "/v1/whatif",
			WhatifRequest{PlanSpec: PlanSpec{PlatformID: "missing", Targets: []string{"t1"}}},
			http.StatusNotFound, CodeNotFound,
		},
		{
			"whatif rejects bound subsets",
			http.MethodPost, "/v1/whatif",
			WhatifRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1"}, Bounds: []string{"lb"}}},
			http.StatusBadRequest, CodeBadRequest,
		},
		{
			"batch without items",
			http.MethodPost, "/v1/plan:batch",
			BatchRequest{PlanSpec: PlanSpec{PlatformID: "d"}},
			http.StatusBadRequest, CodeBadRequest,
		},
		{
			"job submit without items",
			http.MethodPost, "/v1/jobs",
			BatchRequest{PlanSpec: PlanSpec{PlatformID: "d"}},
			http.StatusBadRequest, CodeBadRequest,
		},
		{
			"poll unknown job",
			http.MethodGet, "/v1/jobs/job-404", nil,
			http.StatusNotFound, CodeNotFound,
		},
		{
			"cancel unknown job",
			http.MethodDelete, "/v1/jobs/job-404", nil,
			http.StatusNotFound, CodeNotFound,
		},
		{
			"stream unknown job",
			http.MethodGet, "/v1/jobs/job-404/stream", nil,
			http.StatusNotFound, CodeNotFound,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := doJSON(t, s, tc.method, tc.path, tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d (%s)", w.Code, tc.wantStatus, w.Body.String())
			}
			env := decodeJSON[ErrorEnvelope](t, w)
			if env.Error.Code != tc.wantCode {
				t.Errorf("code %q, want %q", env.Error.Code, tc.wantCode)
			}
			if env.Error.Message == "" {
				t.Error("empty error message")
			}
		})
	}
}

// TestMalformedBodyEnvelope: even JSON-level failures (before any
// validation) speak the envelope.
func TestMalformedBodyEnvelope(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	for _, path := range []string{"/v1/plan", "/v1/platforms", "/v1/whatif", "/v1/plan:batch", "/v1/jobs"} {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, path, strings.NewReader(`{"truncated`)))
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, w.Code)
			continue
		}
		env := decodeJSON[ErrorEnvelope](t, w)
		if env.Error.Code != CodeBadRequest {
			t.Errorf("%s: code %q", path, env.Error.Code)
		}
	}
}
