package serve

import (
	"fmt"
	"net/http"

	"repro/internal/graph"
)

// PatchOp is one wire-level mutation of PATCH /v1/platforms/{id} —
// the HTTP spelling of the shared graph-delta vocabulary
// (graph.DeltaOp), addressing nodes by name and edges by ID or by
// endpoint names.
type PatchOp struct {
	// Op is the operation: "drop_node", "restore_node", "add_node",
	// "add_edge", "disable_edge", "enable_edge", "set_edge_cost" or
	// "scale_edge_cost" (the graph.DeltaKind wire spellings).
	Op string `json:"op"`
	// Node names the dropped/restored/added node.
	Node string `json:"node,omitempty"`
	// From and To name an edge's endpoints: required for add_edge, and
	// an alternative to Edge for the other edge ops (resolving to the
	// lowest-ID edge from From to To, enabled or not).
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Edge addresses an edge by ID (the IDs reported in plan trees are
	// name pairs, so ID addressing is mostly for clients that uploaded
	// the platform and know its edge order).
	Edge *int `json:"edge,omitempty"`
	// Cost is the absolute cost of add_edge and set_edge_cost.
	Cost float64 `json:"cost,omitempty"`
	// Factor is the multiplier of scale_edge_cost.
	Factor float64 `json:"factor,omitempty"`
}

// PatchRequest is the body of PATCH /v1/platforms/{id}: an ordered
// delta batch, applied atomically — either every op applies and the
// platform version bumps once, or none do.
type PatchRequest struct {
	Ops []PatchOp `json:"ops"`
}

// PatchResponse is the body of a successful PATCH.
type PatchResponse struct {
	ID          string `json:"id"`
	Version     int64  `json:"version"`
	Fingerprint string `json:"fingerprint"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	// Applied counts the delta ops of the batch.
	Applied int `json:"applied"`
	// Invalidated counts the previous version's cached plans dropped by
	// this mutation.
	Invalidated int `json:"invalidated,omitempty"`
	// Repaired counts the live subscription loops notified to recompute
	// (and re-cache) their plans against the new version.
	Repaired int `json:"repaired,omitempty"`
}

// resolvePatchOp translates one wire op against the current state of
// the mutating clone — sequential semantics: an op may reference a
// node or edge created by an earlier op of the same batch.
func resolvePatchOp(g *graph.Graph, op PatchOp) (graph.DeltaOp, error) {
	node := func(name string) (graph.NodeID, error) {
		if name == "" {
			return 0, fmt.Errorf("missing node name")
		}
		v, ok := g.NodeByName(name)
		if !ok {
			return 0, fmt.Errorf("unknown node %q", name)
		}
		return v, nil
	}
	edge := func() (int, error) {
		if op.Edge != nil {
			return *op.Edge, nil
		}
		if op.From == "" || op.To == "" {
			return 0, fmt.Errorf("edge ops need either \"edge\" or both \"from\" and \"to\"")
		}
		from, err := node(op.From)
		if err != nil {
			return 0, err
		}
		to, err := node(op.To)
		if err != nil {
			return 0, err
		}
		// Scan the full edge set (not the adjacency lists): a disabled
		// edge is spliced out of adjacency but must stay addressable —
		// enable_edge exists to bring exactly those back. Parallel edges
		// resolve to the lowest ID.
		for id := 0; id < g.NumEdges(); id++ {
			e := g.Edge(id)
			if e.From == from && e.To == to {
				return id, nil
			}
		}
		return 0, fmt.Errorf("no edge %s->%s", op.From, op.To)
	}
	switch op.Op {
	case "drop_node":
		v, err := node(op.Node)
		if err != nil {
			return graph.DeltaOp{}, err
		}
		return graph.DropNodeOp(v), nil
	case "restore_node":
		v, err := node(op.Node)
		if err != nil {
			return graph.DeltaOp{}, err
		}
		return graph.RestoreNodeOp(v), nil
	case "add_node":
		if op.Node == "" {
			return graph.DeltaOp{}, fmt.Errorf("missing node name")
		}
		return graph.AddNodeOp(op.Node), nil
	case "add_edge":
		from, err := node(op.From)
		if err != nil {
			return graph.DeltaOp{}, err
		}
		to, err := node(op.To)
		if err != nil {
			return graph.DeltaOp{}, err
		}
		return graph.AddEdgeOp(from, to, op.Cost), nil
	case "disable_edge":
		id, err := edge()
		if err != nil {
			return graph.DeltaOp{}, err
		}
		return graph.DisableEdgeOp(id), nil
	case "enable_edge":
		id, err := edge()
		if err != nil {
			return graph.DeltaOp{}, err
		}
		return graph.EnableEdgeOp(id), nil
	case "set_edge_cost":
		id, err := edge()
		if err != nil {
			return graph.DeltaOp{}, err
		}
		return graph.SetEdgeCostOp(id, op.Cost), nil
	case "scale_edge_cost":
		id, err := edge()
		if err != nil {
			return graph.DeltaOp{}, err
		}
		return graph.ScaleEdgeCostOp(id, op.Factor), nil
	}
	return graph.DeltaOp{}, fmt.Errorf("unknown op %q", op.Op)
}

func (s *Server) handlePatchPlatform(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req PatchRequest
	if err := decodeBody(w, r, 1<<20, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, badRequest("empty delta batch"))
		return
	}
	old, cur, err := s.reg.patch(id, func(g *graph.Graph) ([]PatchOp, error) {
		// Resolve and apply op by op: name resolution must see the
		// effects of earlier ops of the batch. The clone is discarded on
		// any error, which is what makes the batch atomic.
		for i, wireOp := range req.Ops {
			op, err := resolvePatchOp(g, wireOp)
			if err != nil {
				return nil, badRequest("op %d (%s): %v", i, wireOp.Op, err)
			}
			if _, err := (graph.Delta{op}).Apply(g); err != nil {
				return nil, badRequest("op %d (%s): %v", i, wireOp.Op, err)
			}
		}
		return req.Ops, nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	resp := PatchResponse{
		ID:          cur.id,
		Version:     cur.version,
		Fingerprint: cur.fingerprint(),
		Nodes:       cur.nodes,
		Edges:       cur.edges,
		Applied:     len(req.Ops),
	}
	if old.fp != cur.fp {
		// Invalidate: the old version's cached plans are unreachable now
		// that the ID resolves to a new fingerprint.
		resp.Invalidated = s.cache.dropIf(func(k planKey) bool {
			return k.id == cur.id && k.fp == old.fp
		})
	}
	// Repair: wake the platform's replan loops so every subscribed spec
	// recomputes against the new version — re-entering the plan cache
	// instead of leaving the invalidated specs orphaned.
	resp.Repaired = s.hub.notifyPlatform(cur.id)
	s.bumpLive(func(ls *LiveStats) { ls.Patches++; ls.PatchOps += int64(len(req.Ops)) })
	w.Header().Set(HeaderVersion, fmt.Sprintf("%d", cur.version))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePlatformLog(w http.ResponseWriter, r *http.Request) {
	log, ok := s.reg.changes(r.PathValue("id"))
	if !ok {
		writeError(w, notFound("unknown platform id"))
		return
	}
	writeJSON(w, http.StatusOK, log)
}
