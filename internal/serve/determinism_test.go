package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/steady"
	"repro/internal/tiers"
)

// marshalBody reproduces writeJSON's encoding (two-space indent plus
// trailing newline) so expected bodies compare byte-for-byte against
// recorded HTTP responses.
func marshalBody(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestConcurrentPlansBitIdenticalToSerial is the server-path extension
// of the PR 1 sweep determinism test: 16 goroutines hammer one
// platform with a mix of plan requests through the full serving stack
// (shard pool, plan cache, coalescer), and every single response body
// must be byte-identical to the serial library-call reference — a
// fresh evaluator running the same canonical sequence. Whatever a
// request hits (cold shard, warm shard, cache, coalesced flight), the
// answer may never change by even an ULP.
func TestConcurrentPlansBitIdenticalToSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent determinism run is slow")
	}
	pl, err := tiers.Generate(tiers.Small(1))
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	if err := pl.G.Encode(&text); err != nil {
		t.Fatal(err)
	}

	s := New(Config{Shards: 4})
	w := httptest.NewRecorder()
	body, _ := json.Marshal(UploadRequest{ID: "tiers-small", Platform: text.String(), Source: pl.G.Name(pl.Source)})
	s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/platforms", bytes.NewReader(body)))
	if w.Code != http.StatusCreated {
		t.Fatalf("upload: %d %s", w.Code, w.Body.String())
	}
	entry, ok := s.reg.get("tiers-small")
	if !ok {
		t.Fatal("platform not registered")
	}

	// A mixed request pool over distinct target sets: bounds-only
	// probes, single-heuristic requests and one full plan.
	type reqSpec struct {
		targets    []graph.NodeID
		bounds     []string
		heuristics []string
	}
	var specs []reqSpec
	menu := []struct {
		bounds     []string
		heuristics []string
	}{
		{nil, []string{}},                  // all bounds, no heuristics
		{[]string{"lb"}, []string{"MCPH"}}, // cheap probe
		{[]string{"scatter", "lb"}, []string{"Red. BC"}},
		{nil, nil}, // the full plan
		{[]string{"broadcast"}, []string{"MCPH", "Multisource MC"}},
	}
	for i, m := range menu {
		rng := exp.NewRNG(99, i)
		specs = append(specs, reqSpec{
			targets:    pl.RandomTargets(rng, 0.3),
			bounds:     m.bounds,
			heuristics: m.heuristics,
		})
	}

	// Serial reference: the library-call sequence on a fresh evaluator
	// per request, exactly what executePlan canonicalises.
	expected := make([][]byte, len(specs))
	requests := make([][]byte, len(specs))
	for i, spec := range specs {
		bounds, err := boundsMask(spec.bounds)
		if err != nil {
			t.Fatal(err)
		}
		heurs, err := heurMask(spec.heuristics)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := executePlan(steady.NewEvaluator(), entry.g, entry.fp, entry.source(t), spec.targets, bounds, heurs)
		if err != nil {
			t.Fatal(err)
		}
		ref.PlatformID = "tiers-small"
		expected[i] = marshalBody(t, ref)

		names := make([]string, len(spec.targets))
		for j, id := range spec.targets {
			names[j] = entry.g.Name(id)
		}
		requests[i], err = json.Marshal(PlanRequest{PlanSpec: PlanSpec{
			PlatformID: "tiers-small",
			Targets:    names,
			Bounds:     spec.bounds,
			Heuristics: spec.heuristics,
		}})
		if err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 16
	const perGoroutine = 10
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*perGoroutine)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for n := 0; n < perGoroutine; n++ {
				i := (gi + n) % len(specs)
				w := httptest.NewRecorder()
				s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(requests[i])))
				if w.Code != http.StatusOK {
					errs <- w.Body.String()
					continue
				}
				if !bytes.Equal(w.Body.Bytes(), expected[i]) {
					errs <- "request " + string(rune('0'+i)) + " diverged from the serial reference"
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// Accounting sanity: 160 plan requests were served, and the heavy
	// lifting collapsed to (roughly) one computation per distinct
	// request via the cache and the coalescer.
	st, served := s.pool.stats()
	if st.Solves == 0 {
		t.Error("no solver activity recorded")
	}
	var totalServed int64
	for _, c := range served {
		totalServed += c
	}
	if totalServed < int64(len(specs)) {
		t.Errorf("shards served %d computations, want >= %d", totalServed, len(specs))
	}
	cs := s.cache.stats()
	if cs.Hits+s.flight.coalescedCount()+totalServed != goroutines*perGoroutine {
		t.Errorf("accounting mismatch: hits %d + coalesced %d + computed %d != %d",
			cs.Hits, s.flight.coalescedCount(), totalServed, goroutines*perGoroutine)
	}
}

// source resolves the entry's default source NodeID for tests.
func (e *platformEntry) source(t *testing.T) graph.NodeID {
	t.Helper()
	id, ok := e.g.NodeByName(e.sourceName)
	if !ok {
		t.Fatalf("entry %q has no resolvable source %q", e.id, e.sourceName)
	}
	return id
}

// TestChurnDeterminism is the live-platform extension of the serving
// determinism contract: 8 goroutines PATCH one platform (exact
// power-of-two cost scalings, one edge each) while plan and batch
// traffic and an NDJSON subscriber run against it concurrently. Every
// versioned response — plan bodies by their X-Mcastd-Version header,
// batch plan lines by their embedded fingerprint, subscribe lines by
// their version field — must be byte-identical to a cold solve
// (executePlan on a fresh evaluator) of that version's retained
// snapshot. Churn may change WHICH answer a request gets, never a byte
// WITHIN any answer.
func TestChurnDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("churn determinism run is slow")
	}
	pl, err := tiers.Generate(tiers.Small(1))
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	if err := pl.G.Encode(&text); err != nil {
		t.Fatal(err)
	}

	s := New(Config{Shards: 4, VersionHistory: 4096, MutationLog: 4096})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	body, _ := json.Marshal(UploadRequest{ID: "churn", Platform: text.String(), Source: pl.G.Name(pl.Source)})
	up, err := client.Post(ts.URL+"/v1/platforms", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	up.Body.Close()
	if up.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d", up.StatusCode)
	}

	rng := exp.NewRNG(7, 0)
	targets := pl.RandomTargets(rng, 0.3)
	names := make([]string, len(targets))
	for i, id := range targets {
		names[i] = pl.G.Name(id)
	}
	bounds := []string{"scatter", "lb"}
	heurs := []string{"MCPH"}

	planBody, _ := json.Marshal(PlanRequest{PlanSpec: PlanSpec{
		PlatformID: "churn", Targets: names, Bounds: bounds, Heuristics: heurs,
	}})
	batchBody, _ := json.Marshal(BatchRequest{
		PlanSpec: PlanSpec{PlatformID: "churn", Targets: names},
		Items: []BatchItem{
			{PlanSpec{Bounds: bounds, Heuristics: heurs}},
			{PlanSpec{Bounds: []string{"lb"}, Heuristics: []string{}}},
		},
	})

	const writers, patchesPerWriter = 8, 6
	finalVersion := int64(1 + writers*patchesPerWriter)

	// Subscriber: opened before the churn starts so it sees the initial
	// version too, reading until the stream converges to finalVersion.
	subCtx, subCancel := context.WithCancel(context.Background())
	defer subCancel()
	q := url.Values{}
	q.Set("targets", strings.Join(names, ","))
	q.Set("bounds", strings.Join(bounds, ","))
	q.Set("heuristics", strings.Join(heurs, ","))
	subReq, _ := http.NewRequestWithContext(subCtx, http.MethodGet,
		ts.URL+"/v1/platforms/churn/subscribe?"+q.Encode(), nil)
	subResp, err := client.Do(subReq)
	if err != nil {
		t.Fatal(err)
	}
	defer subResp.Body.Close()
	if subResp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe: %d", subResp.StatusCode)
	}
	if ct := subResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("subscribe content-type = %q", ct)
	}
	type subLine struct {
		Version int64           `json:"version"`
		Plan    json.RawMessage `json:"plan"`
		Error   json.RawMessage `json:"error"`
	}
	var subLines []subLine
	subDone := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(subResp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
		for sc.Scan() {
			var l subLine
			if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
				subDone <- err
				return
			}
			subLines = append(subLines, l)
			if l.Version >= finalVersion {
				subDone <- nil
				return
			}
		}
		subDone <- sc.Err()
	}()

	var wg sync.WaitGroup
	errs := make(chan string, 1024)
	patchVersions := make(chan int64, writers*patchesPerWriter)
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			edge := wi % pl.G.NumEdges()
			for n := 0; n < patchesPerWriter; n++ {
				// Alternate x2 / x0.5: exact in floating point, so an even
				// number of patches returns the edge bit-exactly to base and
				// distinct versions collapse onto few distinct contents.
				factor := 2.0
				if n%2 == 1 {
					factor = 0.5
				}
				b, _ := json.Marshal(PatchRequest{Ops: []PatchOp{
					{Op: "scale_edge_cost", Edge: &edge, Factor: factor},
				}})
				req, _ := http.NewRequest(http.MethodPatch, ts.URL+"/v1/platforms/churn", bytes.NewReader(b))
				resp, err := client.Do(req)
				if err != nil {
					errs <- err.Error()
					continue
				}
				var pr PatchResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || err != nil {
					errs <- fmt.Sprintf("patch: status %d err %v", resp.StatusCode, err)
					continue
				}
				patchVersions <- pr.Version
			}
		}(wi)
	}

	type recordedPlan struct {
		version int64
		body    []byte
	}
	planCh := make(chan recordedPlan, 1024)
	batchCh := make(chan []byte, 1024)
	for ri := 0; ri < 6; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			for n := 0; n < 8; n++ {
				if (ri+n)%3 == 2 {
					resp, err := client.Post(ts.URL+"/v1/plan:batch", "application/json", bytes.NewReader(batchBody))
					if err != nil {
						errs <- err.Error()
						continue
					}
					raw, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Sprintf("batch: status %d", resp.StatusCode)
						continue
					}
					batchCh <- raw
					continue
				}
				resp, err := client.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(planBody))
				if err != nil {
					errs <- err.Error()
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				ver, perr := strconv.ParseInt(resp.Header.Get(HeaderVersion), 10, 64)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || perr != nil {
					errs <- fmt.Sprintf("plan: status %d version %q", resp.StatusCode, resp.Header.Get(HeaderVersion))
					continue
				}
				planCh <- recordedPlan{version: ver, body: raw}
			}
		}(ri)
	}
	wg.Wait()
	close(errs)
	close(patchVersions)
	close(planCh)
	close(batchCh)
	for e := range errs {
		t.Fatal(e)
	}
	select {
	case err := <-subDone:
		if err != nil {
			t.Fatalf("subscriber: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("subscriber did not converge to the final version")
	}
	subCancel()

	// Every PATCH claimed a distinct version and together they cover
	// 2..finalVersion exactly: mutations serialised, none lost.
	seen := make(map[int64]bool)
	for v := range patchVersions {
		if seen[v] {
			t.Fatalf("version %d claimed by two patches", v)
		}
		seen[v] = true
	}
	for v := int64(2); v <= finalVersion; v++ {
		if !seen[v] {
			t.Fatalf("version %d never claimed by a patch", v)
		}
	}

	// Cold references: for every retained version, the snapshot's
	// fingerprint; per distinct fingerprint (the x2/x0.5 toggling folds
	// 49 versions onto few contents), executePlan on a fresh evaluator.
	verToFp := make(map[int64]string)
	fpToVer := make(map[string]int64)
	for v := int64(1); v <= finalVersion; v++ {
		snap, ok := s.reg.at("churn", v)
		if !ok {
			t.Fatalf("version %d rotated out of history", v)
		}
		fp := snap.fingerprint()
		verToFp[v] = fp
		if _, ok := fpToVer[fp]; !ok {
			fpToVer[fp] = v
		}
	}
	boundsM, _ := boundsMask(bounds)
	heursM, _ := heurMask(heurs)
	lbM, _ := boundsMask([]string{"lb"})
	noneH, _ := heurMask([]string{})
	fullRef := make(map[string]*PlanResponse)
	lbRef := make(map[string]*PlanResponse)
	refFor := func(cache map[string]*PlanResponse, fp string, bm, hm uint8) *PlanResponse {
		if r, ok := cache[fp]; ok {
			return r
		}
		v, ok := fpToVer[fp]
		if !ok {
			t.Fatalf("response fingerprint %s matches no retained version", fp)
		}
		snap, _ := s.reg.at("churn", v)
		ref, err := executePlan(steady.NewEvaluator(), snap.g, snap.fp, snap.source(t), targets, bm, hm)
		if err != nil {
			t.Fatalf("cold solve of version %d: %v", v, err)
		}
		ref.PlatformID = "churn"
		cache[fp] = ref
		return ref
	}

	plans := 0
	for rec := range planCh {
		plans++
		ref := refFor(fullRef, verToFp[rec.version], boundsM, heursM)
		if !bytes.Equal(rec.body, marshalBody(t, ref)) {
			t.Fatalf("plan response at version %d diverged from the cold solve of that snapshot", rec.version)
		}
	}
	if plans == 0 {
		t.Fatal("no plan responses recorded")
	}

	if len(subLines) == 0 {
		t.Fatal("no subscribe lines recorded")
	}
	lastVer := int64(0)
	for _, l := range subLines {
		if l.Error != nil {
			t.Fatalf("subscribe error line at version %d: %s", l.Version, l.Error)
		}
		if l.Version <= lastVer {
			t.Fatalf("subscribe versions not strictly increasing: %d after %d", l.Version, lastVer)
		}
		lastVer = l.Version
		ref := refFor(fullRef, verToFp[l.Version], boundsM, heursM)
		want, err := json.Marshal(ref)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(l.Plan, want) {
			t.Fatalf("subscribe plan at version %d diverged from the cold solve of that snapshot", l.Version)
		}
	}
	if subLines[len(subLines)-1].Version != finalVersion {
		t.Fatalf("subscriber converged to version %d, want %d", lastVer, finalVersion)
	}

	type batchLine struct {
		Kind  string          `json:"kind"`
		Index int             `json:"index"`
		Plan  json.RawMessage `json:"plan"`
		Error json.RawMessage `json:"error"`
	}
	batches := 0
	for raw := range batchCh {
		batches++
		for _, lineRaw := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
			var l batchLine
			if err := json.Unmarshal(lineRaw, &l); err != nil {
				t.Fatalf("bad batch line %q: %v", lineRaw, err)
			}
			if l.Kind != "plan" {
				continue
			}
			if l.Error != nil {
				t.Fatalf("batch item %d errored: %s", l.Index, l.Error)
			}
			var probe struct {
				Fingerprint string `json:"fingerprint"`
			}
			if err := json.Unmarshal(l.Plan, &probe); err != nil {
				t.Fatal(err)
			}
			var ref *PlanResponse
			if l.Index == 0 {
				ref = refFor(fullRef, probe.Fingerprint, boundsM, heursM)
			} else {
				ref = refFor(lbRef, probe.Fingerprint, lbM, noneH)
			}
			want, err := json.Marshal(ref)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(l.Plan, want) {
				t.Fatalf("batch item %d at fingerprint %s diverged from the cold solve", l.Index, probe.Fingerprint)
			}
		}
	}
	if batches == 0 {
		t.Fatal("no batch responses recorded")
	}

	// Live accounting flowed through /v1/stats.
	st, err := client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	st.Body.Close()
	if stats.Live.Patches != writers*patchesPerWriter {
		t.Errorf("stats.live.patches = %d, want %d", stats.Live.Patches, writers*patchesPerWriter)
	}
	if stats.Live.StreamsStarted != 1 || stats.Live.Updates == 0 {
		t.Errorf("stats.live streams=%d updates=%d", stats.Live.StreamsStarted, stats.Live.Updates)
	}
}
