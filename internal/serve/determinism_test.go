package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/steady"
	"repro/internal/tiers"
)

// marshalBody reproduces writeJSON's encoding (two-space indent plus
// trailing newline) so expected bodies compare byte-for-byte against
// recorded HTTP responses.
func marshalBody(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestConcurrentPlansBitIdenticalToSerial is the server-path extension
// of the PR 1 sweep determinism test: 16 goroutines hammer one
// platform with a mix of plan requests through the full serving stack
// (shard pool, plan cache, coalescer), and every single response body
// must be byte-identical to the serial library-call reference — a
// fresh evaluator running the same canonical sequence. Whatever a
// request hits (cold shard, warm shard, cache, coalesced flight), the
// answer may never change by even an ULP.
func TestConcurrentPlansBitIdenticalToSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent determinism run is slow")
	}
	pl, err := tiers.Generate(tiers.Small(1))
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	if err := pl.G.Encode(&text); err != nil {
		t.Fatal(err)
	}

	s := New(Config{Shards: 4})
	w := httptest.NewRecorder()
	body, _ := json.Marshal(UploadRequest{ID: "tiers-small", Platform: text.String(), Source: pl.G.Name(pl.Source)})
	s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/platforms", bytes.NewReader(body)))
	if w.Code != http.StatusCreated {
		t.Fatalf("upload: %d %s", w.Code, w.Body.String())
	}
	entry, ok := s.reg.get("tiers-small")
	if !ok {
		t.Fatal("platform not registered")
	}

	// A mixed request pool over distinct target sets: bounds-only
	// probes, single-heuristic requests and one full plan.
	type reqSpec struct {
		targets    []graph.NodeID
		bounds     []string
		heuristics []string
	}
	var specs []reqSpec
	menu := []struct {
		bounds     []string
		heuristics []string
	}{
		{nil, []string{}},                  // all bounds, no heuristics
		{[]string{"lb"}, []string{"MCPH"}}, // cheap probe
		{[]string{"scatter", "lb"}, []string{"Red. BC"}},
		{nil, nil}, // the full plan
		{[]string{"broadcast"}, []string{"MCPH", "Multisource MC"}},
	}
	for i, m := range menu {
		rng := exp.NewRNG(99, i)
		specs = append(specs, reqSpec{
			targets:    pl.RandomTargets(rng, 0.3),
			bounds:     m.bounds,
			heuristics: m.heuristics,
		})
	}

	// Serial reference: the library-call sequence on a fresh evaluator
	// per request, exactly what executePlan canonicalises.
	expected := make([][]byte, len(specs))
	requests := make([][]byte, len(specs))
	for i, spec := range specs {
		bounds, err := boundsMask(spec.bounds)
		if err != nil {
			t.Fatal(err)
		}
		heurs, err := heurMask(spec.heuristics)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := executePlan(steady.NewEvaluator(), entry.g, entry.fp, entry.source(t), spec.targets, bounds, heurs)
		if err != nil {
			t.Fatal(err)
		}
		ref.PlatformID = "tiers-small"
		expected[i] = marshalBody(t, ref)

		names := make([]string, len(spec.targets))
		for j, id := range spec.targets {
			names[j] = entry.g.Name(id)
		}
		requests[i], err = json.Marshal(PlanRequest{PlanSpec: PlanSpec{
			PlatformID: "tiers-small",
			Targets:    names,
			Bounds:     spec.bounds,
			Heuristics: spec.heuristics,
		}})
		if err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 16
	const perGoroutine = 10
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*perGoroutine)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for n := 0; n < perGoroutine; n++ {
				i := (gi + n) % len(specs)
				w := httptest.NewRecorder()
				s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(requests[i])))
				if w.Code != http.StatusOK {
					errs <- w.Body.String()
					continue
				}
				if !bytes.Equal(w.Body.Bytes(), expected[i]) {
					errs <- "request " + string(rune('0'+i)) + " diverged from the serial reference"
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// Accounting sanity: 160 plan requests were served, and the heavy
	// lifting collapsed to (roughly) one computation per distinct
	// request via the cache and the coalescer.
	st, served := s.pool.stats()
	if st.Solves == 0 {
		t.Error("no solver activity recorded")
	}
	var totalServed int64
	for _, c := range served {
		totalServed += c
	}
	if totalServed < int64(len(specs)) {
		t.Errorf("shards served %d computations, want >= %d", totalServed, len(specs))
	}
	cs := s.cache.stats()
	if cs.Hits+s.flight.coalescedCount()+totalServed != goroutines*perGoroutine {
		t.Errorf("accounting mismatch: hits %d + coalesced %d + computed %d != %d",
			cs.Hits, s.flight.coalescedCount(), totalServed, goroutines*perGoroutine)
	}
}

// source resolves the entry's default source NodeID for tests.
func (e *platformEntry) source(t *testing.T) graph.NodeID {
	t.Helper()
	id, ok := e.g.NodeByName(e.sourceName)
	if !ok {
		t.Fatalf("entry %q has no resolvable source %q", e.id, e.sourceName)
	}
	return id
}
