package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/steady"
	"repro/internal/whatif"
)

// WhatifRequest is the body of POST /v1/whatif: the shared PlanSpec
// request core (platform / source / target addressing) plus the
// scenario family. The PlanSpec bounds/heuristics subsets have no
// meaning for what-if analysis — a request that sets either is
// rejected with bad_request rather than silently ignored.
type WhatifRequest struct {
	PlanSpec
	// NodeFailures selects the single-node-failure family; omitted (or
	// null) means enabled.
	NodeFailures *bool `json:"node_failures,omitempty"`
	// FailNodes restricts node failures to these nodes; omitted or null
	// means every active non-source node.
	FailNodes []string `json:"fail_nodes"`
	// EdgeFactors selects the per-edge scenarios: 0 is a link failure,
	// f > 1 multiplies the edge cost by f (bandwidth degradation).
	// Omitted or null means [0] (every link failure); an explicit empty
	// list means no edge scenarios.
	EdgeFactors []float64 `json:"edge_factors"`
	// Sources lists the secondary-source promotion candidates. Omitted
	// or null means every active non-source node; empty means none.
	Sources []string `json:"sources"`
	// TimeoutMillis bounds the whole analysis in milliseconds (clamped
	// to MaxTimeout; 0 defers to DefaultTimeout). An expired budget
	// fails the baseline with 503/deadline, or — once streaming — drains
	// the remaining scenario lines with per-scenario errors.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// WhatifEdge identifies a platform edge on the wire.
type WhatifEdge struct {
	ID   int    `json:"id"`
	From string `json:"from"`
	To   string `json:"to"`
}

// WhatifLine is one NDJSON line of a /v1/whatif response. The first
// line has Kind "baseline", then one line per scenario in the
// deterministic enumeration order (node failures by node ID, edge
// scenarios by edge ID with factors in request order, promotions in
// candidate order), and a final "summary" line. Like PlanResponse, the
// full line sequence is a pure function of the request and the
// platform content: the concurrent shard fan-out is bit-identical to
// the serial single-evaluator scenario loop.
type WhatifLine struct {
	Kind string `json:"kind"`

	// Baseline fields.
	PlatformID        string   `json:"platform_id,omitempty"`
	Fingerprint       string   `json:"fingerprint,omitempty"`
	Source            string   `json:"source,omitempty"`
	Targets           []string `json:"targets,omitempty"`
	Scenarios         int      `json:"scenarios,omitempty"`
	LBPeriod          float64  `json:"lb_period,omitempty"`
	MultiSourcePeriod float64  `json:"multisource_period,omitempty"`

	// Scenario fields.
	Node         string      `json:"node,omitempty"`
	Edge         *WhatifEdge `json:"edge,omitempty"`
	Factor       float64     `json:"factor,omitempty"`
	Infeasible   bool        `json:"infeasible,omitempty"`
	TargetLost   bool        `json:"target_lost,omitempty"`
	Period       float64     `json:"period,omitempty"`
	Throughput   float64     `json:"throughput,omitempty"`
	Delta        float64     `json:"delta,omitempty"`
	TreeSurvives bool        `json:"tree_survives,omitempty"`
	TreePeriod   float64     `json:"tree_period,omitempty"`
	Error        string      `json:"error,omitempty"`

	// Summary fields.
	Errors            int            `json:"errors,omitempty"`
	TreeSurviving     int            `json:"tree_surviving,omitempty"`
	FastPathScenarios int            `json:"fast_path_scenarios,omitempty"`
	CriticalNodes     []WhatifRanked `json:"critical_nodes,omitempty"`
	CriticalEdges     []WhatifRanked `json:"critical_edges,omitempty"`
}

// WhatifRanked is one entry of the summary's criticality rankings.
type WhatifRanked struct {
	Node       string      `json:"node,omitempty"`
	Edge       *WhatifEdge `json:"edge,omitempty"`
	Delta      float64     `json:"delta"`
	Infeasible bool        `json:"infeasible,omitempty"`
}

// WhatifStats is the what-if section of GET /v1/stats.
type WhatifStats struct {
	Requests  int64 `json:"requests"`
	Scenarios int64 `json:"scenarios"`
	// FastPathScenarios counts scenarios answered through the tree
	// fast path (e.g. link failures whose disable mask leaves a tree).
	FastPathScenarios int64             `json:"fast_path_scenarios"`
	Solver            steady.SolveStats `json:"solver"`
}

// summaryRankCap bounds the summary's criticality rankings: the
// per-scenario lines already carry every delta, the summary is the
// headline.
const summaryRankCap = 16

// whatifConfig resolves the wire-level scenario family against the
// platform.
func whatifConfig(g *graph.Graph, req *WhatifRequest) (whatif.Config, error) {
	cfg := whatif.Config{
		NodeFailures: req.NodeFailures == nil || *req.NodeFailures,
		EdgeFactors:  req.EdgeFactors,
	}
	if req.EdgeFactors == nil {
		cfg.EdgeFactors = []float64{0}
	}
	for _, f := range cfg.EdgeFactors {
		// Standard JSON cannot carry NaN/Inf, but whatifConfig is also a
		// library path — reject them explicitly rather than panicking in
		// SetEdgeCost mid-stream.
		if f < 0 || math.IsInf(f, 0) || math.IsNaN(f) {
			return cfg, badRequest("edge factor %v is not a finite non-negative number", f)
		}
	}
	if req.FailNodes != nil {
		cfg.FailNodes = make([]graph.NodeID, len(req.FailNodes))
		for i, name := range req.FailNodes {
			id, ok := g.NodeByName(name)
			if !ok {
				return cfg, badRequest("unknown fail node %q", name)
			}
			cfg.FailNodes[i] = id
		}
	}
	if req.Sources == nil {
		cfg.AllSources = true
	} else {
		cfg.PromoteSources = make([]graph.NodeID, len(req.Sources))
		for i, name := range req.Sources {
			id, ok := g.NodeByName(name)
			if !ok {
				return cfg, badRequest("unknown promotion candidate %q", name)
			}
			cfg.PromoteSources[i] = id
		}
	}
	return cfg, nil
}

func whatifEdge(g *graph.Graph, id int) *WhatifEdge {
	e := g.Edge(id)
	return &WhatifEdge{ID: id, From: g.Name(e.From), To: g.Name(e.To)}
}

// whatifBaselineLine renders the first NDJSON line.
func whatifBaselineLine(id string, fp uint64, base *whatif.Baseline, scenarios int) WhatifLine {
	g := base.Problem.G
	return WhatifLine{
		Kind:              "baseline",
		PlatformID:        id,
		Fingerprint:       fmt.Sprintf("%016x", fp),
		Source:            g.Name(base.Problem.Source),
		Targets:           nodeNames(g, base.Problem.Targets),
		Scenarios:         scenarios,
		LBPeriod:          base.LB.Period,
		MultiSourcePeriod: base.MultiSource.Period,
		TreeSurvives:      base.Tree != nil,
		TreePeriod:        base.TreePeriod,
	}
}

// whatifScenarioLine renders one scenario result.
func whatifScenarioLine(g *graph.Graph, r whatif.Result) WhatifLine {
	line := WhatifLine{
		Kind:         string(r.Kind),
		Infeasible:   r.Infeasible,
		TargetLost:   r.TargetLost,
		Period:       r.Period,
		Throughput:   r.Throughput,
		Delta:        r.Delta,
		TreeSurvives: r.TreeSurvives,
		TreePeriod:   r.TreePeriod,
	}
	switch r.Kind {
	case whatif.KindNodeFailure, whatif.KindPromoteSource:
		line.Node = g.Name(r.Node)
	case whatif.KindEdgeFailure:
		line.Edge = whatifEdge(g, r.Edge)
	case whatif.KindEdgeDegrade:
		line.Edge = whatifEdge(g, r.Edge)
		line.Factor = r.Factor
	}
	if r.Err != nil {
		line.Error = r.Err.Error()
	}
	return line
}

// whatifSummaryLine renders the final NDJSON line from the assembled
// report.
func whatifSummaryLine(g *graph.Graph, rep *whatif.Report) WhatifLine {
	line := WhatifLine{
		Kind:              "summary",
		Scenarios:         len(rep.Results),
		TreeSurviving:     rep.Surviving,
		FastPathScenarios: rep.FastPathScenarios,
	}
	for _, r := range rep.Results {
		if r.Err != nil {
			line.Errors++
		}
	}
	for _, rk := range rep.CriticalNodes {
		if len(line.CriticalNodes) == summaryRankCap {
			break
		}
		line.CriticalNodes = append(line.CriticalNodes, WhatifRanked{
			Node: g.Name(rk.Node), Delta: rk.Delta, Infeasible: rk.Infeasible,
		})
	}
	for _, rk := range rep.CriticalEdges {
		if len(line.CriticalEdges) == summaryRankCap {
			break
		}
		line.CriticalEdges = append(line.CriticalEdges, WhatifRanked{
			Edge: whatifEdge(g, rk.Edge), Delta: rk.Delta, Infeasible: rk.Infeasible,
		})
	}
	return line
}

// handleWhatif is POST /v1/whatif: baseline on the routed shard, then
// the scenario family fanned out over the shard lanes on evaluator
// clones, streamed as NDJSON in the deterministic enumeration order
// (results are emitted as soon as they and all their predecessors are
// done), with a final summary line.
func (s *Server) handleWhatif(w http.ResponseWriter, r *http.Request) {
	var req WhatifRequest
	if err := decodeBody(w, r, 2*s.cfg.maxPlatformBytes()+(1<<16), &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Bounds != nil || req.Heuristics != nil {
		writeError(w, badRequest("bounds and heuristics subsets are not valid for what-if requests"))
		return
	}
	res, err := s.resolve(&req.PlanSpec)
	if err != nil {
		writeError(w, err)
		return
	}
	cfg, err := whatifConfig(res.g, &req)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := s.requestContext(r.Context(), req.TimeoutMillis)
	defer cancel()
	// One admission slot covers the baseline and the whole scenario
	// fan-out (per-scenario admission would deadlock the shard lanes
	// this request already occupies).
	if s.limit != nil {
		if err := s.limit.acquire(ctx); err != nil {
			s.countDeadline(err)
			writeError(w, err)
			return
		}
		defer s.limit.release()
	}
	p := res.p
	key := res.key()
	var base *whatif.Baseline
	if err := faultinject.SolveEnter(ctx); err != nil {
		s.countDeadline(err)
		writeError(w, err)
		return
	}
	if _, err := s.pool.run(key, func(ev *steady.Evaluator) (err error) {
		defer disarmPanic(&err)
		defer armStop(ctx, ev)()
		base, err = whatif.NewBaseline(ev, p)
		return err
	}); err != nil {
		err = ctxSolveErr(ctx, err)
		s.countDeadline(err)
		writeError(w, err)
		return
	}
	scenarios := whatif.Enumerate(res.g, res.source, cfg)

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(line WhatifLine) {
		enc.Encode(line) //nolint:errcheck // client gone: keep draining, nothing to report
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit(whatifBaselineLine(res.id, res.fp, base, len(scenarios)))

	// Fan the scenarios over the shard lanes, starting at the shard the
	// baseline routed to. Every scenario runs on its own clone of the
	// baseline evaluator over a worker-private platform copy, so the
	// results — and therefore the streamed bytes — cannot depend on
	// scheduling. If the client hangs up mid-stream the remaining
	// scenarios are drained as canceled instead of solved, so a dead
	// request does not hold the shard lanes against live plan traffic
	// (cancellation never changes the bytes of a body that is actually
	// delivered — a canceled request has no reader).
	// One request-level stop flag, armed on the deadline-bounded ctx and
	// shared by every worker's evaluator clones, stops scenario solves
	// mid-iteration when the budget expires (the ctx.Err check below
	// only catches scenarios that have not started).
	var stop atomic.Bool
	defer context.AfterFunc(ctx, func() { stop.Store(true) })()
	results := make([]whatif.Result, len(scenarios))
	ready := make(chan int, len(scenarios))
	var (
		next       atomic.Int64
		statsMu    sync.Mutex
		scenStats  steady.SolveStats
		fastScen   int
		wg         sync.WaitGroup
		startShard = int(key.routeHash() % uint64(len(s.pool.shards)))
	)
	workers := len(s.pool.shards)
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(shardIdx int) {
			defer wg.Done()
			s.pool.runOn(shardIdx, func() {
				g := res.g.Clone()
				var local steady.SolveStats
				localFast := 0
				for {
					i := int(next.Add(1)) - 1
					if i >= len(scenarios) {
						break
					}
					if err := ctx.Err(); err != nil {
						results[i] = whatif.Result{Scenario: scenarios[i], Err: err}
						ready <- i
						continue
					}
					sev := base.Ev.Clone()
					sev.SetStop(&stop)
					results[i] = whatif.Eval(base, sev, g, scenarios[i])
					// The clone is scenario-private, so a nonzero hit count
					// attributes the fast path to exactly this scenario.
					if sev.Stats().FastPathHits > 0 {
						localFast++
					}
					local.Add(sev.Stats())
					ready <- i
				}
				statsMu.Lock()
				scenStats.Add(local)
				fastScen += localFast
				statsMu.Unlock()
			})
		}((startShard + i) % len(s.pool.shards))
	}

	// Stream in order: emit scenario i once it and every predecessor
	// have landed.
	done := make([]bool, len(scenarios))
	emitted := 0
	for emitted < len(scenarios) {
		done[<-ready] = true
		for emitted < len(scenarios) && done[emitted] {
			emit(whatifScenarioLine(res.g, results[emitted]))
			emitted++
		}
	}
	wg.Wait()

	rep := whatif.BuildReport(base, scenarios, results)
	rep.FastPathScenarios = fastScen
	emit(whatifSummaryLine(res.g, rep))

	s.mu.Lock()
	s.whatif.Requests++
	s.whatif.Scenarios += int64(len(scenarios))
	s.whatif.FastPathScenarios += int64(fastScen)
	s.whatif.Solver.Add(scenStats)
	s.mu.Unlock()
}
