package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/faultinject"
	"repro/internal/tiers"
)

// solveGate is the stall choreography for admission and deadline
// tests: installed as the SolveEnter hook, it signals entered and then
// blocks the solve until release is closed (or the request's context
// expires, which it reports as the context's error — exactly what a
// wedged solver under a deadline looks like).
type solveGate struct {
	entered chan struct{}
	release chan struct{}
}

func newSolveGate() *solveGate {
	return &solveGate{entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (g *solveGate) hook(ctx context.Context) error {
	g.entered <- struct{}{}
	select {
	case <-g.release:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// waitUntil polls cond to true within a generous deadline (choreography
// only — nothing here times the code under test).
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

func planReq(targets []string, mut func(*PlanRequest)) PlanRequest {
	req := PlanRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: targets}}
	if mut != nil {
		mut(&req)
	}
	return req
}

func TestDeadlineTimeoutMs(t *testing.T) {
	gate := newSolveGate() // never released: the solver is wedged
	faultinject.Set(&faultinject.Hooks{SolveEnter: gate.hook})
	defer faultinject.Set(nil)

	s := newTestServer(t, Config{Shards: 1})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})
	w := doJSON(t, s, http.MethodPost, "/v1/plan", planReq([]string{"t1"}, func(r *PlanRequest) {
		r.TimeoutMillis = 20
	}))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("wedged solve under timeout_ms: got %d %s, want 503", w.Code, w.Body.String())
	}
	if env := decodeJSON[ErrorEnvelope](t, w); env.Error.Code != CodeDeadline {
		t.Errorf("error code %q, want %q", env.Error.Code, CodeDeadline)
	}
	st := decodeJSON[StatsResponse](t, doJSON(t, s, http.MethodGet, "/v1/stats", nil))
	if st.Resilience.Deadlines != 1 {
		t.Errorf("stats deadlines = %d, want 1", st.Resilience.Deadlines)
	}
}

func TestDeadlineServerDefault(t *testing.T) {
	gate := newSolveGate()
	faultinject.Set(&faultinject.Hooks{SolveEnter: gate.hook})
	defer faultinject.Set(nil)

	s := newTestServer(t, Config{Shards: 1, DefaultTimeout: 20 * time.Millisecond})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})
	w := doJSON(t, s, http.MethodPost, "/v1/plan", planReq([]string{"t1"}, nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("wedged solve under default timeout: got %d %s, want 503", w.Code, w.Body.String())
	}
	if env := decodeJSON[ErrorEnvelope](t, w); env.Error.Code != CodeDeadline {
		t.Errorf("error code %q, want %q", env.Error.Code, CodeDeadline)
	}
}

// TestDeadlineCancelsMidSolve drives a real (unstalled) solve that
// takes tens of milliseconds — the broadcast bound's LP on a generated
// platform — under a timeout_ms a fraction of that, and requires the
// 503 to come back well before a full solve could have finished: the
// simplex observed the stop flag mid-iteration instead of running the
// budget-blown solve to completion.
func TestDeadlineCancelsMidSolve(t *testing.T) {
	pl, err := tiers.Generate(tiers.Big(1))
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	if err := pl.G.Encode(&text); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Shards: 1})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "big", Platform: text.String(), Source: pl.G.Name(pl.Source)})
	targets := pl.RandomTargets(exp.NewRNG(5, 0), 0.5)
	names := make([]string, len(targets))
	for i, id := range targets {
		names[i] = pl.G.Name(id)
	}
	spec := PlanSpec{
		PlatformID: "big", Targets: names,
		Bounds:     []string{BoundScatter, BoundLB, BoundBroadcast},
		Heuristics: []string{},
	}

	// Reference: how long the full solve takes on this machine. Run it
	// twice and keep the warm measurement — the first pays one-time
	// allocator and page-fault costs that would inflate the budget.
	full := time.Duration(1 << 62)
	for i := 0; i < 2; i++ {
		start := time.Now()
		if w := doJSON(t, s, http.MethodPost, "/v1/plan", PlanRequest{PlanSpec: spec, NoCache: true}); w.Code != http.StatusOK {
			t.Fatalf("reference solve: %d %s", w.Code, w.Body.String())
		}
		if d := time.Since(start); d < full {
			full = d
		}
	}
	timeout := full / 4
	if timeout < 2*time.Millisecond {
		t.Skipf("full solve too fast to time a cancellation (%s)", full)
	}

	start := time.Now()
	w := doJSON(t, s, http.MethodPost, "/v1/plan", PlanRequest{
		PlanSpec: spec, NoCache: true, TimeoutMillis: timeout.Milliseconds(),
	})
	elapsed := time.Since(start)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out solve: got %d %s, want 503", w.Code, w.Body.String())
	}
	if env := decodeJSON[ErrorEnvelope](t, w); env.Error.Code != CodeDeadline {
		t.Errorf("error code %q, want %q", env.Error.Code, CodeDeadline)
	}
	if elapsed >= full {
		t.Errorf("canceled solve took %s, full solve only %s — cancellation not observed mid-solve", elapsed, full)
	}

	// The interrupted solve left no poisoned state: the same spec solves
	// cleanly, byte-identical to the reference body... which is the
	// cached body from the reference request.
	w2 := doJSON(t, s, http.MethodPost, "/v1/plan", PlanRequest{PlanSpec: spec, NoCache: true})
	if w2.Code != http.StatusOK {
		t.Fatalf("post-cancel solve: %d %s", w2.Code, w2.Body.String())
	}
	if wc := doJSON(t, s, http.MethodPost, "/v1/plan", PlanRequest{PlanSpec: spec}); !bytes.Equal(w2.Body.Bytes(), wc.Body.Bytes()) {
		t.Error("post-cancel recompute diverged from the cached pre-cancel body")
	}
}

func TestLimiterShedsAndReadyz(t *testing.T) {
	gate := newSolveGate()
	faultinject.Set(&faultinject.Hooks{SolveEnter: gate.hook})
	defer faultinject.Set(nil)

	s := newTestServer(t, Config{Shards: 2, MaxConcurrent: 1, MaxQueue: 1})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})

	// Leader: occupies the single compute slot, wedged on the gate.
	results := make(chan *httptest.ResponseRecorder, 2)
	go func() {
		results <- doJSON(t, s, http.MethodPost, "/v1/plan", planReq([]string{"t1"}, func(r *PlanRequest) { r.NoCache = true }))
	}()
	<-gate.entered

	// Second request: fills the single queue seat.
	go func() {
		results <- doJSON(t, s, http.MethodPost, "/v1/plan", planReq([]string{"t2"}, func(r *PlanRequest) { r.NoCache = true }))
	}()
	waitUntil(t, "one queued admission", func() bool { return s.limit.stats().Queued == 1 })

	// Slot busy, queue full: the next compute is shed.
	w := doJSON(t, s, http.MethodPost, "/v1/plan", planReq([]string{"t1", "t2"}, func(r *PlanRequest) { r.NoCache = true }))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: got %d %s, want 429", w.Code, w.Body.String())
	}
	if env := decodeJSON[ErrorEnvelope](t, w); env.Error.Code != CodeSaturated {
		t.Errorf("error code %q, want %q", env.Error.Code, CodeSaturated)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}

	// Saturation is a readiness signal, not a liveness one.
	if w := doJSON(t, s, http.MethodGet, "/readyz", nil); w.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while saturated: got %d, want 503", w.Code)
	} else if body := decodeJSON[map[string]any](t, w); body["reason"] != "saturated" {
		t.Errorf("readyz reason %v, want saturated", body["reason"])
	}
	if w := doJSON(t, s, http.MethodGet, "/healthz", nil); w.Code != http.StatusOK {
		t.Errorf("healthz while saturated: got %d, want 200", w.Code)
	}

	// Releasing the gate drains the slot and the queue: both admitted
	// requests finish as ordinary 200s.
	close(gate.release)
	for i := 0; i < 2; i++ {
		if rw := <-results; rw.Code != http.StatusOK {
			t.Errorf("admitted request %d: got %d %s, want 200", i, rw.Code, rw.Body.String())
		}
	}
	st := decodeJSON[StatsResponse](t, doJSON(t, s, http.MethodGet, "/v1/stats", nil))
	if st.Resilience.Limiter.Shed != 1 {
		t.Errorf("stats shed = %d, want 1", st.Resilience.Limiter.Shed)
	}
	if w := doJSON(t, s, http.MethodGet, "/readyz", nil); w.Code != http.StatusOK {
		t.Errorf("readyz after drain of the queue: got %d, want 200", w.Code)
	}
}

// saturate wedges s's single compute slot and fills its single queue
// seat (requires Config{MaxConcurrent: 1, MaxQueue: 1} and an
// installed gate hook). It returns a drain func that releases the gate
// and waits for both parked requests.
func saturate(t *testing.T, s *Server, gate *solveGate) func() {
	t.Helper()
	results := make(chan *httptest.ResponseRecorder, 2)
	go func() {
		results <- doJSON(t, s, http.MethodPost, "/v1/plan", planReq([]string{"r1"}, func(r *PlanRequest) { r.NoCache = true }))
	}()
	<-gate.entered
	go func() {
		results <- doJSON(t, s, http.MethodPost, "/v1/plan", planReq([]string{"r2"}, func(r *PlanRequest) { r.NoCache = true }))
	}()
	waitUntil(t, "one queued admission", func() bool { return s.limit.stats().Queued == 1 })
	return func() {
		close(gate.release)
		for i := 0; i < 2; i++ {
			if rw := <-results; rw.Code != http.StatusOK {
				t.Errorf("parked request %d: got %d %s, want 200", i, rw.Code, rw.Body.String())
			}
		}
	}
}

// occupyText gives the saturating requests their own platform ("d"
// with relay targets r1, r2) so the degraded tests' specs stay
// cache-cold until the test itself warms them.
const occupyText = `
node S
edge S r1 1
edge S r2 1
edge r1 t1 1
edge r2 t1 1
`

func TestDegradedCacheFallback(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2, MaxConcurrent: 1, MaxQueue: 1})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: occupyText, Source: "S"})

	// Warm the exact spec before the hooks go in.
	spec := PlanSpec{PlatformID: "d", Targets: []string{"t1"}}
	warm := doJSON(t, s, http.MethodPost, "/v1/plan", PlanRequest{PlanSpec: spec})
	if warm.Code != http.StatusOK {
		t.Fatalf("warmup: %d %s", warm.Code, warm.Body.String())
	}

	gate := newSolveGate()
	faultinject.Set(&faultinject.Hooks{SolveEnter: gate.hook})
	defer faultinject.Set(nil)
	drain := saturate(t, s, gate)

	// Degraded opt-in: shed, then answered from the plan cache with the
	// exact bytes the full-fidelity request produced.
	w := doJSON(t, s, http.MethodPost, "/v1/plan", PlanRequest{PlanSpec: spec, NoCache: true, Degraded: true})
	if w.Code != http.StatusOK {
		t.Fatalf("degraded request under saturation: got %d %s, want 200", w.Code, w.Body.String())
	}
	if got := w.Header().Get(HeaderDegraded); got != "cache" {
		t.Errorf("%s = %q, want cache", HeaderDegraded, got)
	}
	if !bytes.Equal(w.Body.Bytes(), warm.Body.Bytes()) {
		t.Error("degraded-cache body differs from the full-fidelity cached body")
	}

	// Without the opt-in the same shed is a hard 429 — degradation never
	// happens to a caller that did not ask for it.
	w = doJSON(t, s, http.MethodPost, "/v1/plan", PlanRequest{PlanSpec: spec, NoCache: true})
	if w.Code != http.StatusTooManyRequests {
		t.Errorf("non-degraded shed: got %d, want 429", w.Code)
	}
	if w.Header().Get(HeaderDegraded) != "" {
		t.Error("429 carries a degraded header")
	}

	drain()
	st := decodeJSON[StatsResponse](t, doJSON(t, s, http.MethodGet, "/v1/stats", nil))
	if st.Resilience.Degraded != 1 {
		t.Errorf("stats degraded = %d, want 1", st.Resilience.Degraded)
	}
}

func TestDegradedTreeFallback(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2, MaxConcurrent: 1, MaxQueue: 1})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: occupyText, Source: "S"})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "tree", Platform: treeText, Source: "S"})

	gate := newSolveGate()
	faultinject.Set(&faultinject.Hooks{SolveEnter: gate.hook})
	defer faultinject.Set(nil)
	drain := saturate(t, s, gate)

	// The tree spec was never computed, so the cache fallback misses —
	// but the platform is a tree, so the combinatorial bounds-only path
	// answers without touching the saturated shard pool.
	spec := PlanSpec{PlatformID: "tree", Targets: []string{"c", "d"}, Heuristics: []string{}}
	w := doJSON(t, s, http.MethodPost, "/v1/plan", PlanRequest{PlanSpec: spec, Degraded: true})
	if w.Code != http.StatusOK {
		t.Fatalf("degraded tree request: got %d %s, want 200", w.Code, w.Body.String())
	}
	if got := w.Header().Get(HeaderDegraded); got != "tree" {
		t.Errorf("%s = %q, want tree", HeaderDegraded, got)
	}
	degradedBody := append([]byte(nil), w.Body.Bytes()...)

	// A non-tree spec with no cached answer has no fallback left: the
	// saturation verdict stands even for a degraded caller.
	w = doJSON(t, s, http.MethodPost, "/v1/plan", PlanRequest{
		PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"r1", "r2"}}, NoCache: true, Degraded: true,
	})
	if w.Code != http.StatusTooManyRequests {
		t.Errorf("degraded non-tree uncached: got %d, want 429", w.Code)
	}

	drain()
	// The degraded tree body is the same pure function of the spec as
	// the full serving path computes for it (bounds only, no
	// heuristics): byte-identical to the unsaturated answer.
	w = doJSON(t, s, http.MethodPost, "/v1/plan", PlanRequest{PlanSpec: spec, NoCache: true})
	if w.Code != http.StatusOK {
		t.Fatalf("full-fidelity tree solve: %d %s", w.Code, w.Body.String())
	}
	if !bytes.Equal(degradedBody, w.Body.Bytes()) {
		t.Errorf("degraded-tree body diverged from the full serving path:\n%s\nvs\n%s", degradedBody, w.Body.Bytes())
	}
}

func TestHandlerPanicRecovered(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})

	faultinject.Set(&faultinject.Hooks{HandlerEnter: func(route string) {
		if route == "POST /v1/plan" {
			panic("chaos: handler bug")
		}
	}})
	w := doJSON(t, s, http.MethodPost, "/v1/plan", planReq([]string{"t1"}, nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: got %d, want 500", w.Code)
	}
	if env := decodeJSON[ErrorEnvelope](t, w); env.Error.Code != CodeInternal {
		t.Errorf("error code %q, want %q", env.Error.Code, CodeInternal)
	}

	// The daemon survived: liveness holds and the same request succeeds
	// once the fault is gone.
	faultinject.Set(nil)
	if w := doJSON(t, s, http.MethodGet, "/healthz", nil); w.Code != http.StatusOK {
		t.Errorf("healthz after panic: %d", w.Code)
	}
	if w := doJSON(t, s, http.MethodPost, "/v1/plan", planReq([]string{"t1"}, nil)); w.Code != http.StatusOK {
		t.Errorf("plan after panic: got %d %s, want 200", w.Code, w.Body.String())
	}
	st := decodeJSON[StatsResponse](t, doJSON(t, s, http.MethodGet, "/v1/stats", nil))
	if st.Resilience.Panics != 1 {
		t.Errorf("stats panics = %d, want 1", st.Resilience.Panics)
	}
}

// TestSolvePanicSharedWithFollowers pins the flight-leadership guard: a
// compute that panics (here via the SolveEnter hook, which runs inside
// the leadership but outside the shard closure) must surface as a
// 500/internal to the leader AND to any coalesced follower — never as
// a follower's empty 200 from a nil/nil flight slot.
func TestSolvePanicSharedWithFollowers(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	faultinject.Set(&faultinject.Hooks{SolveEnter: func(ctx context.Context) error {
		entered <- struct{}{}
		<-release
		panic("chaos: solve bug")
	}})
	defer faultinject.Set(nil)

	leader := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		leader <- doJSON(t, s, http.MethodPost, "/v1/plan", planReq([]string{"t1"}, nil))
	}()
	<-entered
	follower := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		follower <- doJSON(t, s, http.MethodPost, "/v1/plan", planReq([]string{"t1"}, nil))
	}()
	waitUntil(t, "a coalesced follower", func() bool { return s.flight.coalescedCount() == 1 })
	close(release)

	for name, ch := range map[string]chan *httptest.ResponseRecorder{"leader": leader, "follower": follower} {
		w := <-ch
		if w.Code != http.StatusInternalServerError {
			t.Errorf("%s: got %d %q, want 500", name, w.Code, w.Body.String())
			continue
		}
		if env := decodeJSON[ErrorEnvelope](t, w); env.Error.Code != CodeInternal {
			t.Errorf("%s error code %q, want %q", name, env.Error.Code, CodeInternal)
		}
	}
}

func TestInjectedSolveError(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})
	faultinject.Set(&faultinject.Hooks{SolveEnter: func(ctx context.Context) error {
		return errors.New("chaos: solver exploded")
	}})
	defer faultinject.Set(nil)

	w := doJSON(t, s, http.MethodPost, "/v1/plan", planReq([]string{"t1"}, nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("failing solve: got %d, want 500", w.Code)
	}
	env := decodeJSON[ErrorEnvelope](t, w)
	if env.Error.Code != CodeInternal || !strings.Contains(env.Error.Message, "solver exploded") {
		t.Errorf("unexpected envelope: %+v", env)
	}
	// Failures are never cached: the same spec succeeds after the fault.
	faultinject.Set(nil)
	if w := doJSON(t, s, http.MethodPost, "/v1/plan", planReq([]string{"t1"}, nil)); w.Code != http.StatusOK {
		t.Errorf("plan after fault cleared: got %d %s, want 200", w.Code, w.Body.String())
	}
}

func TestReadyzDrain(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	if w := doJSON(t, s, http.MethodGet, "/readyz", nil); w.Code != http.StatusOK {
		t.Fatalf("fresh readyz: %d", w.Code)
	}
	s.Drain(context.Background())
	w := doJSON(t, s, http.MethodGet, "/readyz", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: got %d, want 503", w.Code)
	}
	if body := decodeJSON[map[string]any](t, w); body["reason"] != "draining" {
		t.Errorf("readyz reason %v, want draining", body["reason"])
	}
	if w := doJSON(t, s, http.MethodGet, "/healthz", nil); w.Code != http.StatusOK {
		t.Errorf("healthz while draining: got %d, want 200 (liveness is not readiness)", w.Code)
	}
}

// TestDrainRacesSubscriberAndBatch is the shutdown regression test: a
// drain that starts while a subscriber holds a live stream open and a
// batch is mid-flight must (1) close the stream with the final
// terminator line, (2) let the batch finish normally, and (3) give a
// subscriber arriving during the drain an immediate final line instead
// of a stream that would outlive the shutdown.
func TestDrainRacesSubscriberAndBatch(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})

	// Subscriber: read the version-1 plan line, then hold the stream.
	sub, err := client.Get(ts.URL + "/v1/platforms/d/subscribe?targets=t1,t2")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Body.Close()
	if sub.StatusCode != http.StatusOK {
		t.Fatalf("subscribe: %d", sub.StatusCode)
	}
	sc := bufio.NewScanner(sub.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		t.Fatalf("no first subscribe line: %v", sc.Err())
	}
	var first SubscribeLine
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil || first.Version != 1 || first.Final {
		t.Fatalf("unexpected first line %q (err %v)", sc.Bytes(), err)
	}

	// Batch: wedge its first item on the gate so it is provably
	// mid-flight when the drain starts.
	gate := newSolveGate()
	faultinject.Set(&faultinject.Hooks{SolveEnter: gate.hook})
	defer faultinject.Set(nil)
	batchBody, _ := json.Marshal(BatchRequest{
		PlanSpec: PlanSpec{PlatformID: "d"},
		Items: []BatchItem{
			{PlanSpec{Targets: []string{"t1"}}},
			{PlanSpec{Targets: []string{"t2"}}},
		},
		NoCache: true,
	})
	batchDone := make(chan []byte, 1)
	go func() {
		resp, err := client.Post(ts.URL+"/v1/plan:batch", "application/json", bytes.NewReader(batchBody))
		if err != nil {
			batchDone <- nil
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body) //nolint:errcheck
		batchDone <- buf.Bytes()
	}()
	<-gate.entered

	drained := make(chan struct{})
	go func() {
		s.Drain(context.Background())
		close(drained)
	}()

	// (1) The held stream ends with the final terminator.
	if !sc.Scan() {
		t.Fatalf("stream ended without a final line: %v", sc.Err())
	}
	var last SubscribeLine
	if err := json.Unmarshal(sc.Bytes(), &last); err != nil || !last.Final {
		t.Fatalf("expected final terminator, got %q (err %v)", sc.Bytes(), err)
	}
	if sc.Scan() {
		t.Fatalf("line after the final terminator: %q", sc.Bytes())
	}

	// (2) The mid-flight batch completes its full line protocol.
	close(gate.release)
	raw := <-batchDone
	if raw == nil {
		t.Fatal("batch request failed")
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("batch streamed %d lines, want 3:\n%s", len(lines), raw)
	}
	var summary BatchLine
	if err := json.Unmarshal(lines[2], &summary); err != nil || summary.Kind != "summary" || summary.ErrorCount != 0 {
		t.Fatalf("bad batch summary %q (err %v)", lines[2], err)
	}
	<-drained

	// (3) A late subscriber gets an immediate final line.
	late, err := client.Get(ts.URL + "/v1/platforms/d/subscribe?targets=t1")
	if err != nil {
		t.Fatal(err)
	}
	defer late.Body.Close()
	lsc := bufio.NewScanner(late.Body)
	if !lsc.Scan() {
		t.Fatalf("late subscriber got no line: %v", lsc.Err())
	}
	var lateLine SubscribeLine
	if err := json.Unmarshal(lsc.Bytes(), &lateLine); err != nil || !lateLine.Final {
		t.Fatalf("late subscriber: expected an immediate final line, got %q (err %v)", lsc.Bytes(), err)
	}
	if lsc.Scan() {
		t.Fatalf("late subscriber got a line after final: %q", lsc.Bytes())
	}
}

func TestDrainWaitsForJobsThenCancels(t *testing.T) {
	gate := newSolveGate()
	faultinject.Set(&faultinject.Hooks{SolveEnter: gate.hook})
	defer faultinject.Set(nil)

	s := newTestServer(t, Config{Shards: 1})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})
	submit := func() string {
		w := doJSON(t, s, http.MethodPost, "/v1/jobs", BatchRequest{
			PlanSpec: PlanSpec{PlatformID: "d"},
			Items:    []BatchItem{{PlanSpec{Targets: []string{"t1"}}}, {PlanSpec{Targets: []string{"t2"}}}},
			NoCache:  true,
		})
		if w.Code != http.StatusAccepted {
			t.Fatalf("submit: %d %s", w.Code, w.Body.String())
		}
		return decodeJSON[JobStatus](t, w).ID
	}
	jobState := func(id string) JobStatus {
		w := doJSON(t, s, http.MethodGet, "/v1/jobs/"+id, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("job poll: %d %s", w.Code, w.Body.String())
		}
		return decodeJSON[JobStatus](t, w)
	}

	// A drain with time on the clock waits the running job out.
	id := submit()
	<-gate.entered
	drained := make(chan struct{})
	go func() {
		s.Drain(context.Background())
		close(drained)
	}()
	select {
	case <-drained:
		t.Fatal("Drain returned while a job was still running")
	case <-time.After(30 * time.Millisecond):
	}
	close(gate.release)
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned after the job finished")
	}
	if st := jobState(id); st.State != JobDone || st.Failed != 0 {
		t.Fatalf("drained job finished %q with %d failures, want done/0", st.State, st.Failed)
	}
}

func TestDrainDeadlineCancelsJobs(t *testing.T) {
	gate := newSolveGate() // never released: items only end via cancellation
	faultinject.Set(&faultinject.Hooks{SolveEnter: gate.hook})
	defer faultinject.Set(nil)

	s := newTestServer(t, Config{Shards: 1})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})
	w := doJSON(t, s, http.MethodPost, "/v1/jobs", BatchRequest{
		PlanSpec: PlanSpec{PlatformID: "d"},
		Items:    []BatchItem{{PlanSpec{Targets: []string{"t1"}}}, {PlanSpec{Targets: []string{"t2"}}}},
		NoCache:  true,
	})
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", w.Code, w.Body.String())
	}
	id := decodeJSON[JobStatus](t, w).ID
	<-gate.entered

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	s.Drain(ctx) // expires, cancels the wedged job, then waits out its drain

	w = doJSON(t, s, http.MethodGet, "/v1/jobs/"+id, nil)
	st := decodeJSON[JobStatus](t, w)
	if st.State != JobCanceled {
		t.Fatalf("job state %q after drain deadline, want canceled", st.State)
	}
}

// TestBatchClientCancelStopsRemainingItems: a client abandoning a
// batch mid-stream must not keep the shard lanes solving — items that
// have not computed yet drain as per-item "canceled" error lines.
func TestBatchClientCancelStopsRemainingItems(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})

	ctx, cancel := context.WithCancel(context.Background())
	var items atomic.Int64
	s.batchItemHook = func() {
		if items.Add(1) == 2 {
			cancel() // the client vanishes while item 1 computes
		}
	}
	defer func() { s.batchItemHook = nil }()

	body, _ := json.Marshal(BatchRequest{
		PlanSpec: PlanSpec{PlatformID: "d"},
		Items: []BatchItem{
			{PlanSpec{Targets: []string{"t1"}}},
			{PlanSpec{Targets: []string{"t2"}}},
			{PlanSpec{Targets: []string{"t1", "t2"}}},
			{PlanSpec{Targets: []string{"t2", "t1"}}},
		},
		NoCache: true,
	})
	req := httptest.NewRequest(http.MethodPost, "/v1/plan:batch", bytes.NewReader(body)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)

	lines := bytes.Split(bytes.TrimSpace(w.Body.Bytes()), []byte("\n"))
	if len(lines) != 5 {
		t.Fatalf("batch streamed %d lines, want 5:\n%s", len(lines), w.Body.String())
	}
	canceled := 0
	for i, raw := range lines[:4] {
		var l BatchLine
		if err := json.Unmarshal(raw, &l); err != nil || l.Kind != "plan" || l.Index != i {
			t.Fatalf("bad plan line %d: %q (err %v)", i, raw, err)
		}
		switch {
		case l.Error == nil && l.Plan != nil:
		case l.Error != nil && l.Error.Code == CodeCanceled:
			canceled++
		default:
			t.Fatalf("line %d: unexpected outcome %q", i, raw)
		}
	}
	if canceled == 0 {
		t.Fatal("no items drained as canceled after the client hung up")
	}
	var summary BatchLine
	if err := json.Unmarshal(lines[4], &summary); err != nil || summary.Kind != "summary" || summary.ErrorCount != canceled {
		t.Fatalf("bad summary %q (err %v, want %d errors)", lines[4], err, canceled)
	}
}

// TestCoalescedFollowerRerunsAfterLeaderDeadline re-verifies the PR 4
// coalescing semantics under deadlines: a leader abandoned by its own
// timeout fails alone; a follower that coalesced onto it re-runs the
// computation instead of inheriting the leader-private error.
func TestCoalescedFollowerRerunsAfterLeaderDeadline(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})

	entered := make(chan struct{}, 4)
	var calls atomic.Int64
	faultinject.Set(&faultinject.Hooks{SolveEnter: func(ctx context.Context) error {
		entered <- struct{}{}
		if calls.Add(1) == 1 {
			<-ctx.Done() // wedge the leader until its deadline
			return ctx.Err()
		}
		return nil
	}})
	defer faultinject.Set(nil)

	leader := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		leader <- doJSON(t, s, http.MethodPost, "/v1/plan", planReq([]string{"t1"}, func(r *PlanRequest) {
			r.TimeoutMillis = 40
		}))
	}()
	<-entered
	follower := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		follower <- doJSON(t, s, http.MethodPost, "/v1/plan", planReq([]string{"t1"}, nil))
	}()
	waitUntil(t, "a coalesced follower", func() bool { return s.flight.coalescedCount() == 1 })

	if w := <-leader; w.Code != http.StatusServiceUnavailable {
		t.Fatalf("leader: got %d %s, want 503", w.Code, w.Body.String())
	} else if env := decodeJSON[ErrorEnvelope](t, w); env.Error.Code != CodeDeadline {
		t.Errorf("leader error code %q, want %q", env.Error.Code, CodeDeadline)
	}
	if w := <-follower; w.Code != http.StatusOK {
		t.Fatalf("follower after leader deadline: got %d %s, want 200", w.Code, w.Body.String())
	} else if how := w.Header().Get(HeaderCache); how != "miss" {
		t.Errorf("follower served %q, want miss (it must have re-run the compute)", how)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("solver entered %d times, want 2 (leader + follower re-run)", got)
	}
	// The re-run rolled the coalesced count back.
	if c := s.flight.coalescedCount(); c != 0 {
		t.Errorf("coalesced count = %d after rollback, want 0", c)
	}
}

// TestChaosStorm is the acceptance chaos run: concurrent plan, batch
// and subscribe traffic through a fault-injected serving stack —
// stalled solves, injected solver failures, solve and handler panics,
// deadline storms, admission pressure — with three invariants:
//
//  1. liveness: the daemon answers every request with a well-formed
//     response (a v1 envelope on errors) and is healthy afterwards;
//  2. determinism: every non-degraded 200 plan body (interactive,
//     batch line or subscribe line) is byte-identical to the same
//     spec's answer from a clean single-shard server;
//  3. degraded marking: every degraded answer carries the
//     X-Mcastd-Degraded header (and only opt-in requests ever get one).
//
// All specs request heuristics explicitly (none), so even the
// degraded-tree fallback's bounds-only body must equal the clean
// reference — degradation here changes availability, never bytes.
func TestChaosStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm is slow")
	}
	upload := func(s *Server) {
		for _, up := range []UploadRequest{
			{ID: "cd", Platform: diamondText, Source: "S"},
			{ID: "ct", Platform: treeText, Source: "S"},
		} {
			if w := doJSON(t, s, http.MethodPost, "/v1/platforms", up); w.Code != http.StatusCreated {
				t.Fatalf("upload %s: %d %s", up.ID, w.Code, w.Body.String())
			}
		}
	}
	specs := []PlanSpec{
		{PlatformID: "cd", Targets: []string{"t1"}, Heuristics: []string{}},
		{PlatformID: "cd", Targets: []string{"t2"}, Heuristics: []string{}},
		{PlatformID: "cd", Targets: []string{"t1", "t2"}, Heuristics: []string{}},
		{PlatformID: "ct", Targets: []string{"c", "d"}, Heuristics: []string{}},
	}

	// Clean references: indented bodies from /v1/plan, compact per-item
	// bytes from one batch line stream (what batch and subscribe lines
	// embed), all on an unfaulted single-shard server.
	ref := newTestServer(t, Config{Shards: 1})
	upload(ref)
	canonical := make([][]byte, len(specs))
	for i, spec := range specs {
		w := doJSON(t, ref, http.MethodPost, "/v1/plan", PlanRequest{PlanSpec: spec})
		if w.Code != http.StatusOK {
			t.Fatalf("reference plan %d: %d %s", i, w.Code, w.Body.String())
		}
		canonical[i] = append([]byte(nil), w.Body.Bytes()...)
	}
	items := make([]BatchItem, len(specs))
	for i, spec := range specs {
		items[i] = BatchItem{spec}
	}
	bw := doJSON(t, ref, http.MethodPost, "/v1/plan:batch", BatchRequest{Items: items})
	if bw.Code != http.StatusOK {
		t.Fatalf("reference batch: %d %s", bw.Code, bw.Body.String())
	}
	canonicalCompact := make([][]byte, len(specs))
	for _, raw := range bytes.Split(bytes.TrimSpace(bw.Body.Bytes()), []byte("\n")) {
		var l struct {
			Kind  string          `json:"kind"`
			Index int             `json:"index"`
			Plan  json.RawMessage `json:"plan"`
		}
		if err := json.Unmarshal(raw, &l); err != nil {
			t.Fatal(err)
		}
		if l.Kind == "plan" {
			canonicalCompact[l.Index] = append([]byte(nil), l.Plan...)
		}
	}

	// The server under storm: tight enough admission limits that the
	// injected stalls genuinely saturate it.
	s := newTestServer(t, Config{Shards: 2, MaxConcurrent: 2, MaxQueue: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()
	upload(s)

	var solveCalls, handlerCalls, streamCalls atomic.Int64
	faultinject.Set(&faultinject.Hooks{
		SolveEnter: func(ctx context.Context) error {
			switch k := solveCalls.Add(1); {
			case k%31 == 0:
				panic("chaos: solve panic")
			case k%13 == 0:
				return errors.New("chaos: injected solver failure")
			case k%5 == 0:
				select {
				case <-time.After(2 * time.Millisecond):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			return nil
		},
		HandlerEnter: func(route string) {
			if strings.HasPrefix(route, "POST /v1/plan") && handlerCalls.Add(1)%37 == 0 {
				panic("chaos: handler panic")
			}
		},
		StreamWrite: func(ctx context.Context) error {
			if streamCalls.Add(1)%7 == 0 {
				return errors.New("chaos: wedged stream")
			}
			return nil
		},
	})
	defer faultinject.Set(nil)

	var mu sync.Mutex
	var degradedSeen, planOKs, subLines int64
	checkEnvelope := func(what string, status int, body []byte) {
		var env ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Errorf("%s: status %d with a non-envelope body %q", what, status, body)
			return
		}
		want := map[int]ErrorCode{
			http.StatusTooManyRequests:     CodeSaturated,
			http.StatusServiceUnavailable:  CodeDeadline,
			http.StatusInternalServerError: CodeInternal,
		}[status]
		if env.Error.Code != want {
			t.Errorf("%s: status %d carries code %q, want %q", what, status, env.Error.Code, want)
		}
	}

	timeouts := []int64{0, 1, 25}
	deadline := time.Now().Add(500 * time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; time.Now().Before(deadline); k++ {
				switch {
				case k%17 == 13: // subscribe: open, read one line, hang up
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
						ts.URL+"/v1/platforms/cd/subscribe?targets=t1&heuristics=", nil)
					resp, err := client.Do(req)
					if err != nil {
						cancel()
						continue // storm cancellation; not a server fault
					}
					if resp.StatusCode == http.StatusOK {
						sc := bufio.NewScanner(resp.Body)
						sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
						if sc.Scan() {
							var l SubscribeLine
							if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
								t.Errorf("bad subscribe line %q: %v", sc.Bytes(), err)
							} else if l.Plan != nil {
								if !bytes.Equal(l.Plan, canonicalCompact[0]) {
									t.Errorf("subscribe plan bytes diverged from the clean reference")
								}
								mu.Lock()
								subLines++
								mu.Unlock()
							} else if l.Error == nil && !l.Final {
								t.Errorf("subscribe line with neither plan, error nor final: %q", sc.Bytes())
							}
						}
					} else {
						body, _ := io.ReadAll(resp.Body)
						checkEnvelope("subscribe", resp.StatusCode, body)
					}
					resp.Body.Close()
					cancel()
				case k%11 == 7: // batch of every spec
					body, _ := json.Marshal(BatchRequest{
						Items: items, NoCache: k%2 == 0, TimeoutMillis: timeouts[k%3],
					})
					resp, err := client.Post(ts.URL+"/v1/plan:batch", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Errorf("batch transport: %v", err)
						continue
					}
					raw, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						checkEnvelope("batch", resp.StatusCode, raw)
						continue
					}
					lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
					// A mid-stream handler panic truncates the NDJSON stream:
					// liveness-wise that is a closed connection, not a protocol
					// violation. Lines that did arrive must still be exact.
					for _, lraw := range lines {
						var l BatchLine
						if err := json.Unmarshal(lraw, &l); err != nil {
							t.Errorf("bad batch line %q: %v", lraw, err)
							break
						}
						if l.Kind != "plan" {
							continue
						}
						if l.Error != nil {
							if c := l.Error.Code; c != CodeInternal && c != CodeDeadline && c != CodeCanceled {
								t.Errorf("batch item %d failed with unexpected code %q", l.Index, c)
							}
							continue
						}
						var compact []byte
						if raw, err := json.Marshal(l.Plan); err == nil {
							compact = raw
						}
						if !bytes.Equal(compact, canonicalCompact[l.Index]) {
							t.Errorf("batch item %d bytes diverged from the clean reference", l.Index)
						}
					}
				default: // interactive plan
					i := (g*7 + k) % len(specs)
					reqBody, _ := json.Marshal(PlanRequest{
						PlanSpec:      specs[i],
						NoCache:       k%3 == 0,
						Degraded:      k%2 == 0,
						TimeoutMillis: timeouts[k%3],
					})
					resp, err := client.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(reqBody))
					if err != nil {
						t.Errorf("plan transport: %v", err)
						continue
					}
					raw, _ := io.ReadAll(resp.Body)
					deg := resp.Header.Get(HeaderDegraded)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK:
						if deg != "" && deg != "cache" && deg != "tree" {
							t.Errorf("unexpected degraded header %q", deg)
						}
						if deg != "" && k%2 != 0 {
							t.Errorf("degraded answer for a request that did not opt in")
						}
						// Degraded or not: with heuristics pinned to none, every
						// 200 body is the same pure function of the spec.
						if !bytes.Equal(raw, canonical[i]) {
							t.Errorf("plan body for spec %d diverged from the clean reference (degraded=%q)", i, deg)
						}
						mu.Lock()
						planOKs++
						if deg != "" {
							degradedSeen++
						}
						mu.Unlock()
					case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusInternalServerError:
						checkEnvelope("plan", resp.StatusCode, raw)
						if deg != "" {
							t.Errorf("error response carries degraded header %q", deg)
						}
					default:
						t.Errorf("plan: unexpected status %d: %s", resp.StatusCode, raw)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The storm must have exercised the machinery, not tiptoed around
	// it: successful answers, fault recoveries and stream lines all > 0.
	if planOKs == 0 {
		t.Error("storm produced no successful plan responses")
	}
	if subLines == 0 {
		t.Error("storm produced no successful subscribe lines")
	}
	if solveCalls.Load() < 50 {
		t.Errorf("storm only reached the solver %d times", solveCalls.Load())
	}

	// Liveness after the storm: faults cleared, the daemon is healthy
	// and every spec still solves to the exact clean-reference bytes
	// (the chaos left no poisoned cache or evaluator state behind).
	faultinject.Set(nil)
	if w := doJSON(t, s, http.MethodGet, "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz after storm: %d", w.Code)
	}
	for i, spec := range specs {
		w := doJSON(t, s, http.MethodPost, "/v1/plan", PlanRequest{PlanSpec: spec, NoCache: true})
		if w.Code != http.StatusOK {
			t.Fatalf("post-storm solve %d: %d %s", i, w.Code, w.Body.String())
		}
		if !bytes.Equal(w.Body.Bytes(), canonical[i]) {
			t.Errorf("post-storm recompute of spec %d diverged from the clean reference", i)
		}
	}
	st := decodeJSON[StatsResponse](t, doJSON(t, s, http.MethodGet, "/v1/stats", nil))
	if st.Resilience.Panics == 0 {
		t.Error("no handler panics recovered — the storm never tripped the middleware")
	}
}
