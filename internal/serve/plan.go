package serve

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/heur"
	"repro/internal/steady"
)

// Bound names accepted in PlanRequest.Bounds, in canonical execution
// order.
const (
	BoundScatter   = "scatter"   // Multicast-UB, the achievable scatter relaxation
	BoundLB        = "lb"        // Multicast-LB, the optimistic lower bound
	BoundBroadcast = "broadcast" // Broadcast-EB of the full active platform
)

var boundOrder = []string{BoundScatter, BoundLB, BoundBroadcast}

// PlanRequest is the body of POST /v1/plan: the shared PlanSpec
// request core (exactly one of platform_id or an inline platform must
// be set) plus the interactive-only caching control. The JSON layout
// is identical to the historical flat struct — PlanSpec's fields are
// promoted into the object.
type PlanRequest struct {
	PlanSpec
	// NoCache bypasses the plan cache and the coalescer for this
	// request (the response is still cached for later requests).
	NoCache bool `json:"no_cache,omitempty"`
	// TimeoutMillis bounds this request's compute in milliseconds,
	// clamped to the server's MaxTimeout; 0 defers to the server's
	// DefaultTimeout. An expired budget answers 503/deadline.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// Degraded opts into the saturation fallbacks: when admission
	// control sheds this request, answer from the plan cache or — on a
	// tree platform — with a bounds-only combinatorial plan, marked by
	// the X-Mcastd-Degraded header, instead of a 429. Responses without
	// that header are always full-fidelity.
	Degraded bool `json:"degraded,omitempty"`
}

// BoundResult is one bound program's outcome.
type BoundResult struct {
	Name       string  `json:"name"`
	Period     float64 `json:"period,omitempty"`
	Throughput float64 `json:"throughput,omitempty"`
	Infeasible bool    `json:"infeasible,omitempty"`
}

// PlanEdge is one tree edge of a tree-shaped plan, by node name.
type PlanEdge struct {
	From string  `json:"from"`
	To   string  `json:"to"`
	Cost float64 `json:"cost"`
}

// PlanResult is one heuristic's outcome. A heuristic that fails on the
// instance (e.g. MCPH with an unreachable target) reports its error
// here instead of failing the whole request.
type PlanResult struct {
	Heuristic  string     `json:"heuristic"`
	Period     float64    `json:"period,omitempty"`
	Throughput float64    `json:"throughput,omitempty"`
	Infeasible bool       `json:"infeasible,omitempty"`
	Tree       []PlanEdge `json:"tree,omitempty"`
	Sources    []string   `json:"sources,omitempty"`
	Kept       []string   `json:"kept,omitempty"`
	Evals      int        `json:"evals,omitempty"`
	Error      string     `json:"error,omitempty"`
}

// PlanResponse is the body of a successful POST /v1/plan. It is a pure
// function of (platform content, source, target order, requested
// bounds and heuristics): concurrency, caching and coalescing never
// change a byte (serving metadata travels in response headers instead,
// see the X-Mcastd-* constants).
type PlanResponse struct {
	PlatformID  string        `json:"platform_id,omitempty"`
	Fingerprint string        `json:"fingerprint"`
	Source      string        `json:"source"`
	Targets     []string      `json:"targets"`
	Bounds      []BoundResult `json:"bounds,omitempty"`
	Plans       []PlanResult  `json:"plans,omitempty"`
}

// planKey identifies one plan computation for the cache, the
// coalescer and the shard router. Targets are joined as an exact
// ID string (no hashing), so distinct requests can never collide into
// each other's cache entries.
type planKey struct {
	id      string // registered platform ID ("" for inline platforms)
	fp      uint64
	source  graph.NodeID
	targets string
	bounds  uint8
	heurs   uint8
}

func targetsKey(targets []graph.NodeID) string {
	var sb strings.Builder
	for i, t := range targets {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", t)
	}
	return sb.String()
}

// routeHash spreads plan keys over shards with the sweep engine's
// splitmix64 finalizer. The masks are excluded so a bounds-only probe
// and a full plan for the same problem land on the same shard;
// distinct problems — even on one platform — spread across all
// shards, which is what lets one hot platform scale to the whole
// pool.
func (k planKey) routeHash() uint64 {
	z := k.fp
	z = exp.Mix64(z + uint64(k.source)*0xbf58476d1ce4e5b9)
	for i := 0; i < len(k.targets); i++ {
		z = exp.Mix64(z + uint64(k.targets[i])*0x94d049bb133111eb)
	}
	return z
}

// boundsMask resolves requested bound names to a bitmask over
// boundOrder. nil selects all bounds; an empty non-nil slice selects
// none.
func boundsMask(names []string) (uint8, error) {
	if names == nil {
		return 1<<len(boundOrder) - 1, nil
	}
	var mask uint8
	for _, n := range names {
		i := indexFold(boundOrder, n)
		if i < 0 {
			return 0, fmt.Errorf("unknown bound %q (want one of %s)", n, strings.Join(boundOrder, ", "))
		}
		mask |= 1 << i
	}
	return mask, nil
}

// heurNames is the registry order of heur.AllWith; the mask bit of a
// heuristic is its index here.
var heurNames = func() []string {
	all := heur.All()
	names := make([]string, len(all))
	for i, h := range all {
		names[i] = h.Name
	}
	return names
}()

// heurMask resolves requested heuristic names (case-insensitive) to a
// bitmask over the registry order. nil selects all; empty selects
// none.
func heurMask(names []string) (uint8, error) {
	if names == nil {
		return 1<<len(heurNames) - 1, nil
	}
	var mask uint8
	for _, n := range names {
		i := indexFold(heurNames, n)
		if i < 0 {
			return 0, fmt.Errorf("unknown heuristic %q (want one of %s)", n, strings.Join(heurNames, ", "))
		}
		mask |= 1 << i
	}
	return mask, nil
}

func indexFold(names []string, want string) int {
	for i, n := range names {
		if strings.EqualFold(n, want) {
			return i
		}
	}
	return -1
}

// executePlan runs the canonical plan sequence — the requested bounds
// in boundOrder, then the requested heuristics in registry order — on
// one evaluator. fp must be steady.Fingerprint(g) (passed in so the
// hot path hashes a registered platform once, at upload). This is
// exactly the serial library-call sequence: the server's determinism
// guarantee is that every response equals executePlan on a fresh
// evaluator, whatever shard, cache or coalescer state it was actually
// served from.
func executePlan(ev *steady.Evaluator, g *graph.Graph, fp uint64, source graph.NodeID, targets []graph.NodeID, bounds, heurs uint8) (*PlanResponse, error) {
	resp := &PlanResponse{
		Fingerprint: fmt.Sprintf("%016x", fp),
		Source:      g.Name(source),
		Targets:     nodeNames(g, targets),
	}
	p, err := steady.NewProblem(g, source, targets)
	if err != nil {
		return nil, err
	}
	run := func(name string, f func() (*steady.Bound, error)) error {
		b, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		br := BoundResult{Name: name}
		if b.Infeasible() {
			br.Infeasible = true
		} else {
			br.Period = b.Period
			br.Throughput = b.Throughput()
		}
		resp.Bounds = append(resp.Bounds, br)
		return nil
	}
	for i, name := range boundOrder {
		if bounds&(1<<i) == 0 {
			continue
		}
		var err error
		switch name {
		case BoundScatter:
			err = run(name, func() (*steady.Bound, error) { return ev.ScatterUB(p) })
		case BoundLB:
			err = run(name, func() (*steady.Bound, error) { return ev.MulticastLB(p) })
		case BoundBroadcast:
			err = run(name, func() (*steady.Bound, error) { return ev.BroadcastEB(g, source) })
		}
		if err != nil {
			return nil, err
		}
	}
	for i, h := range heur.AllWith(ev) {
		if heurs&(1<<i) == 0 {
			continue
		}
		pr := PlanResult{Heuristic: h.Name}
		res, err := h.Run(p)
		switch {
		case err != nil:
			pr.Error = err.Error()
		case res.Throughput() == 0:
			pr.Infeasible = true
		default:
			pr.Period = res.Period
			pr.Throughput = res.Throughput()
			pr.Sources = nodeNames(g, res.Sources)
			pr.Kept = nodeNames(g, res.Kept)
			pr.Evals = res.Evals
			if res.Tree != nil {
				edges := append([]int(nil), res.Tree.Edges...)
				sort.Ints(edges)
				for _, id := range edges {
					e := g.Edge(id)
					pr.Tree = append(pr.Tree, PlanEdge{From: g.Name(e.From), To: g.Name(e.To), Cost: e.Cost})
				}
			}
		}
		resp.Plans = append(resp.Plans, pr)
	}
	return resp, nil
}

func nodeNames(g *graph.Graph, ids []graph.NodeID) []string {
	if ids == nil {
		return nil
	}
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = g.Name(id)
	}
	return names
}
