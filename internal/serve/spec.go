package serve

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/steady"
)

// PlanSpec is the shared request core of the v1 planning surface: how
// a request addresses a platform (exactly one of PlatformID or an
// inline Platform), which source and targets it plans for, and which
// subset of bounds and heuristics it wants. PlanRequest, WhatifRequest
// and BatchItem all embed it, so Server.resolve sees one caller-side
// shape whatever the endpoint.
//
// The embedding is wire-compatible with the pre-batch flat layouts:
// encoding/json promotes an embedded struct's fields into the outer
// object, so the JSON bodies clients sent before the batch API keep
// decoding (and marshaling) unchanged. Go code that constructed the
// old flat literals moves to the nested PlanSpec literal; field
// *access* (req.PlatformID and friends) is unchanged via promotion.
type PlanSpec struct {
	// PlatformID references a registered platform; mutually exclusive
	// with Platform.
	PlatformID string `json:"platform_id,omitempty"`
	// Platform is an inline platform description in the graph text
	// format (node/edge/link lines).
	Platform string `json:"platform,omitempty"`
	// Source is the source node name; optional when the registered
	// platform declared a default source.
	Source string `json:"source,omitempty"`
	// Targets are the target node names, in request order (the order is
	// part of the plan identity: LP row order follows it).
	Targets []string `json:"targets"`
	// Bounds selects the bound programs to run ("scatter", "lb",
	// "broadcast"). Omitted or null means all three; an explicit empty
	// list means none. (Deliberately not omitempty: an empty selection
	// must survive client-side marshaling.)
	Bounds []string `json:"bounds"`
	// Heuristics selects the heuristics by registry name ("MCPH",
	// "Augm. MC", "Red. BC", "Multisource MC", case-insensitive).
	// Omitted or null means all; an explicit empty list means none.
	Heuristics []string `json:"heuristics"`
}

// merged returns the effective spec of a batch item: the item's
// fields, falling back to the batch-level shared spec field by field.
// Platform addressing is all-or-nothing — an item that sets either
// PlatformID or Platform replaces the shared addressing entirely, so
// a shared platform_id can never leak under an item's inline platform.
func (shared *PlanSpec) merged(item *PlanSpec) *PlanSpec {
	out := *item
	if out.PlatformID == "" && out.Platform == "" {
		out.PlatformID, out.Platform = shared.PlatformID, shared.Platform
	}
	if out.Source == "" {
		out.Source = shared.Source
	}
	if out.Targets == nil {
		out.Targets = shared.Targets
	}
	if out.Bounds == nil {
		out.Bounds = shared.Bounds
	}
	if out.Heuristics == nil {
		out.Heuristics = shared.Heuristics
	}
	return &out
}

// resolved is a request spec resolved against the registry: the
// platform graph, its fingerprint, the registered ID ("" for inline
// platforms), source/target node IDs, the bound/heuristic masks and
// the validated steady Problem built from them.
type resolved struct {
	g       *graph.Graph
	fp      uint64
	id      string
	version int64 // platform version of the snapshot, 0 for inline platforms
	source  graph.NodeID
	targets []graph.NodeID
	bounds  uint8
	heurs   uint8
	p       steady.Problem
}

// key builds the plan identity this resolution computes under — the
// cache, coalescer and shard-router key.
func (r *resolved) key() planKey {
	return planKey{
		id:      r.id,
		fp:      r.fp,
		source:  r.source,
		targets: targetsKey(r.targets),
		bounds:  r.bounds,
		heurs:   r.heurs,
	}
}

// resolve turns a wire-level spec into a validated instance. Malformed
// specs fail here with a 4xx apiError, so later execution failures are
// genuine 500s.
func (s *Server) resolve(spec *PlanSpec) (*resolved, error) {
	r := &resolved{}
	var src string
	switch {
	case spec.PlatformID != "" && spec.Platform != "":
		return nil, platformConflict("platform_id and platform are mutually exclusive")
	case spec.PlatformID != "":
		e, ok := s.reg.get(spec.PlatformID)
		if !ok {
			return nil, notFound("unknown platform id %q", spec.PlatformID)
		}
		// Snapshots are immutable once published (mutations publish a new
		// entry): reuse the fingerprint hashed at publish time instead of
		// re-walking the graph per request, and pin the whole resolution to
		// this snapshot — a concurrent PATCH cannot change what this
		// request computes, only what later requests resolve to.
		r.g, r.fp, r.id, src = e.g, e.fp, e.id, e.sourceName
		r.version = e.version
	case spec.Platform != "":
		var err error
		r.g, err = decodePlatform(spec.Platform, s.cfg.maxPlatformBytes())
		if err != nil {
			return nil, err
		}
		r.fp = steady.Fingerprint(r.g)
	default:
		return nil, badRequest("one of platform_id or platform is required")
	}
	if spec.Source != "" {
		src = spec.Source
	}
	if src == "" {
		return nil, badRequest("source is required (the platform declares no default)")
	}
	source, ok := r.g.NodeByName(src)
	if !ok {
		return nil, badRequest("unknown source node %q", src)
	}
	r.source = source
	if len(spec.Targets) == 0 {
		return nil, badRequest("at least one target is required")
	}
	r.targets = make([]graph.NodeID, len(spec.Targets))
	for i, name := range spec.Targets {
		t, ok := r.g.NodeByName(name)
		if !ok {
			return nil, badRequest("unknown target node %q", name)
		}
		r.targets[i] = t
	}
	var err error
	if r.bounds, err = boundsMask(spec.Bounds); err != nil {
		return nil, badRequest("%v", err)
	}
	if r.heurs, err = heurMask(spec.Heuristics); err != nil {
		return nil, badRequest("%v", err)
	}
	// Validate the instance up front (duplicate targets, source in the
	// target set, inactive nodes).
	p, err := steady.NewProblem(r.g, r.source, r.targets)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	r.p = p
	return r, nil
}

// executeResolved runs the canonical plan sequence of a resolved spec
// on one evaluator and stamps the platform ID — the single compute
// body behind the interactive, batch and job paths.
func executeResolved(ev *steady.Evaluator, res *resolved) (*PlanResponse, error) {
	resp, err := executePlan(ev, res.g, res.fp, res.source, res.targets, res.bounds, res.heurs)
	if err != nil {
		return nil, fmt.Errorf("plan execution: %w", err)
	}
	resp.PlatformID = res.id
	return resp, nil
}
