package serve

import (
	"sync"

	"repro/internal/steady"
)

// shard is one lane of the evaluator pool: a mutex-confined
// steady.Evaluator (documented as not safe for concurrent use) plus a
// request counter. The evaluator is Reset between requests — its
// logical state (result cache, cut and path pools) never leaks from
// one request into the next, which is what keeps every response
// bit-identical to a cold library call — while its LP workspace keeps
// its allocated scratch memory and its cumulative solver statistics
// across the shard's lifetime.
type shard struct {
	mu     sync.Mutex
	ev     *steady.Evaluator
	served int64
}

// shardPool routes plan computations onto a fixed set of shards by
// problem-key hash: identical requests always land on the same shard;
// distinct requests — even against one platform — spread over the
// whole pool.
type shardPool struct {
	shards []*shard
}

func newShardPool(n int) *shardPool {
	p := &shardPool{shards: make([]*shard, n)}
	for i := range p.shards {
		p.shards[i] = &shard{ev: steady.NewEvaluator()}
	}
	return p
}

// run executes fn on the shard selected by key, serialised with every
// other request on that shard, with a freshly Reset evaluator. It
// returns the shard index for the response metadata.
func (p *shardPool) run(key planKey, fn func(ev *steady.Evaluator) error) (int, error) {
	idx := int(key.routeHash() % uint64(len(p.shards)))
	return idx, p.runOnEv(idx, fn)
}

// runOnEv executes fn on shard idx's freshly Reset evaluator,
// serialised with the shard's other work. The batch fan-out pins each
// worker to one lane and computes every claimed item here — the lane
// choice cannot change response bytes (the evaluator is Reset per
// item), it only decides which lane's lock the work queues on.
//
// Lock discipline: a goroutine must never block on another flight or
// shard while it holds a shard mutex — batch workers wait out
// coalesced flights *outside* runOnEv, which is what makes a batch
// follower of an interactive leader (and vice versa) deadlock-free.
func (p *shardPool) runOnEv(idx int, fn func(ev *steady.Evaluator) error) error {
	s := p.shards[idx]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ev.Reset()
	s.served++
	return fn(s.ev)
}

// runOn serialises fn with the other work of shard idx without
// handing it the shard's evaluator: the what-if fan-out borrows the
// shard lanes for scenario jobs that bring their own cloned
// evaluators, so scenario work and plan requests share one concurrency
// budget.
func (p *shardPool) runOn(idx int, fn func()) {
	s := p.shards[idx]
	s.mu.Lock()
	defer s.mu.Unlock()
	fn()
}

// stats aggregates the cumulative solver statistics of every shard and
// returns the per-shard served-request counts.
func (p *shardPool) stats() (steady.SolveStats, []int64) {
	var total steady.SolveStats
	served := make([]int64, len(p.shards))
	for i, s := range p.shards {
		s.mu.Lock()
		total.Add(s.ev.Stats())
		served[i] = s.served
		s.mu.Unlock()
	}
	return total, served
}
