package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/steady"
)

// Response headers carrying serving metadata. They live in headers —
// not the body — so plan bodies stay byte-comparable across cache
// hits, coalesced followers and fresh computations.
const (
	// HeaderCache reports how the plan was served: "hit" (plan cache),
	// "coalesced" (follower of an identical in-flight request) or
	// "miss" (computed by a shard for this request).
	HeaderCache = "X-Mcastd-Cache"
	// HeaderShard is the index of the shard that computed the plan
	// (set only when this request executed, i.e. HeaderCache: miss).
	HeaderShard = "X-Mcastd-Shard"
	// HeaderVersion is the platform version a response was computed
	// against (registered platforms only). Like the cache/shard headers
	// it stays out of the body, so a version's plan bytes are directly
	// comparable to a cold solve of that version's snapshot.
	HeaderVersion = "X-Mcastd-Version"
	// HeaderDegraded marks a response answered by a degraded fallback
	// under saturation instead of a full shard compute: "cache" (the
	// exact requested plan, from the plan cache) or "tree" (a
	// bounds-only answer computed combinatorially on a tree platform,
	// skipping the requested heuristics). Absent on every non-degraded
	// response — whose bodies therefore stay byte-identical to a serial
	// cold solve.
	HeaderDegraded = "X-Mcastd-Degraded"
)

// UploadRequest is the body of POST /v1/platforms.
type UploadRequest struct {
	// ID names the platform; empty derives the content-addressed
	// "pf-<fingerprint>". Re-uploading an ID replaces its content and
	// invalidates the old content's cached plans.
	ID string `json:"id,omitempty"`
	// Platform is the platform description in the graph text format
	// (node/edge/link lines).
	Platform string `json:"platform"`
	// Source optionally declares a default source node for plan
	// requests that omit one.
	Source string `json:"source,omitempty"`
}

// UploadResponse is the body of a successful POST /v1/platforms.
type UploadResponse struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	Source      string `json:"source,omitempty"`
	Generation  int    `json:"generation"`
	Version     int64  `json:"version"`
	Replaced    bool   `json:"replaced,omitempty"`
	// Invalidated counts the cached plans of the replaced content that
	// were dropped.
	Invalidated int `json:"invalidated,omitempty"`
}

// PlatformInfo is one entry of GET /v1/platforms.
type PlatformInfo struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	Source      string `json:"source,omitempty"`
	Generation  int    `json:"generation"`
	Version     int64  `json:"version"`
}

// EndpointStats summarises one route's traffic for GET /v1/stats.
type EndpointStats struct {
	Count       int64   `json:"count"`
	Errors      int64   `json:"errors"`
	AvgMillis   float64 `json:"avg_ms"`
	MaxMillis   float64 `json:"max_ms"`
	TotalMillis float64 `json:"total_ms"`
}

// StatsResponse is the body of GET /v1/stats: cumulative solver
// activity across all shards plus serving-layer counters.
type StatsResponse struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Platforms     int                      `json:"platforms"`
	Shards        int                      `json:"shards"`
	ShardServed   []int64                  `json:"shard_served"`
	Solver        steady.SolveStats        `json:"solver"`
	PlanCache     CacheStats               `json:"plan_cache"`
	Coalesced     int64                    `json:"coalesced"`
	Whatif        WhatifStats              `json:"whatif"`
	Batch         BatchStats               `json:"batch"`
	Jobs          JobStats                 `json:"jobs"`
	Live          LiveStats                `json:"live"`
	Resilience    ResilienceStats          `json:"resilience"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
}

// ResilienceStats is the deadline/shedding/recovery section of
// GET /v1/stats.
type ResilienceStats struct {
	// Limiter reports the admission-control state; zero-valued when
	// admission control is disabled (MaxConcurrent < 0).
	Limiter LimiterStats `json:"limiter"`
	// Deadlines counts requests answered 503/deadline.
	Deadlines int64 `json:"deadlines"`
	// Degraded counts responses answered by a degraded fallback.
	Degraded int64 `json:"degraded"`
	// Panics counts handler panics converted into 500/internal
	// envelopes by the recovery middleware.
	Panics int64 `json:"panics"`
	// Draining reports whether the server is in its shutdown drain.
	Draining bool `json:"draining"`
}

// Server is the planning daemon: an http.Handler wiring the platform
// registry, the plan cache, the coalescer and the evaluator shard
// pool. Construct with New; the zero value is not usable.
type Server struct {
	cfg    Config
	reg    *registry
	pool   *shardPool
	cache  *planCache
	flight *flightGroup
	jobs   *jobStore
	hub    *hub
	mux    *http.ServeMux
	start  time.Time

	// limit is the compute admission gate (nil when MaxConcurrent < 0
	// disabled it). draining flips /readyz unready and is set by Drain.
	limit        *limiter
	draining     atomic.Bool
	deadlineHits atomic.Int64
	degraded     atomic.Int64
	panics       atomic.Int64

	// batchLane rotates the starting lane of batch fan-outs so
	// concurrent batches spread over the pool instead of piling onto
	// lane 0. The lane choice never affects response bytes (every lane's
	// evaluator is Reset before use), only load spreading.
	batchLane atomic.Int64

	// batchItemHook, when set, runs inside every batch item's flight
	// leadership, before the item acquires its shard lane. Tests use it
	// to gate batch compute mid-flight (cancellation and coalescing
	// regressions); nil in production.
	batchItemHook func()

	mu        sync.Mutex
	endpoints map[string]*endpointAccum
	whatif    WhatifStats
	batch     BatchStats
	live      LiveStats
}

type endpointAccum struct {
	count, errors int64
	totalMicros   int64
	maxMicros     int64
}

// New returns a ready-to-serve planning daemon.
func New(cfg Config) *Server {
	s := &Server{
		cfg:       cfg,
		reg:       newRegistry(cfg.versionHistory(), cfg.mutationLog()),
		pool:      newShardPool(cfg.shards()),
		cache:     newPlanCache(cfg.cacheSize()),
		flight:    newFlightGroup(),
		jobs:      newJobStore(cfg.maxJobs(), cfg.maxJobItems(), cfg.jobTTL()),
		hub:       newHub(),
		mux:       http.NewServeMux(),
		start:     time.Now(),
		endpoints: make(map[string]*endpointAccum),
	}
	if mc := cfg.maxConcurrent(); mc > 0 {
		s.limit = newLimiter(mc, cfg.maxQueue())
	}
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /readyz", s.handleReadyz)
	s.route("POST /v1/platforms", s.handleUpload)
	s.route("GET /v1/platforms", s.handleListPlatforms)
	s.route("GET /v1/platforms/{id}", s.handleGetPlatform)
	s.route("PATCH /v1/platforms/{id}", s.handlePatchPlatform)
	s.route("GET /v1/platforms/{id}/subscribe", s.handleSubscribe)
	s.route("GET /v1/platforms/{id}/log", s.handlePlatformLog)
	s.route("POST /v1/plan", s.handlePlan)
	s.route("POST /v1/plan:batch", s.handleBatch)
	s.route("POST /v1/whatif", s.handleWhatif)
	s.route("POST /v1/jobs", s.handleSubmitJob)
	s.route("GET /v1/jobs", s.handleListJobs)
	s.route("GET /v1/jobs/{id}", s.handleGetJob)
	s.route("GET /v1/jobs/{id}/stream", s.handleStreamJob)
	s.route("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.route("GET /v1/stats", s.handleStats)
	return s
}

// Shards reports the number of evaluator shards.
func (s *Server) Shards() int { return len(s.pool.shards) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// route registers a handler wrapped with panic recovery and the
// per-endpoint latency and error accounting surfaced by /v1/stats.
//
// The recovery middleware is what keeps a buggy (or fault-injected)
// handler from taking down the daemon: a panic is converted into the
// 500/internal v1 envelope when the response has not started, or into
// an aborted stream when it has (the client sees a truncated body, the
// next request sees a healthy server). Shard state survives because
// every shard Resets its evaluator per request and every LP solve
// recompiles from scratch — there is no cross-request solver state a
// mid-solve panic could poison.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				s.panics.Add(1)
				if !sw.wrote {
					writeError(sw, internalError("handler panicked: %v", p))
				}
				// Mid-stream panics cannot be enveloped (the status line is
				// gone); falling through closes the connection, which is the
				// strongest truncation signal HTTP/1.1 has.
			}
			s.observe(pattern, sw.status, time.Since(t0))
		}()
		faultinject.HandlerEnter(pattern)
		h(sw, r)
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
	// wrote reports whether the response has started (explicit
	// WriteHeader or first body Write), i.e. whether the recovery
	// middleware may still write an error envelope.
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer so the streaming endpoints
// (subscribe, batch, job streams) keep their incremental delivery
// through the accounting wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) observe(pattern string, status int, d time.Duration) {
	micros := d.Microseconds()
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.endpoints[pattern]
	if a == nil {
		a = &endpointAccum{}
		s.endpoints[pattern] = a
	}
	a.count++
	if status >= 400 {
		a.errors++
	}
	a.totalMicros += micros
	if micros > a.maxMicros {
		a.maxMicros = micros
	}
}

// --- helpers ----------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}

func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("bad request body: %v", err)
	}
	return nil
}

// --- handlers ---------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":             true,
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	var req UploadRequest
	// Worst-case JSON escaping doubles the platform text (every newline
	// becomes \n), so the wire limit is twice the decoded-text cap that
	// decodePlatform enforces.
	if err := decodeBody(w, r, 2*s.cfg.maxPlatformBytes()+4096, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := validateID(req.ID); err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	g, err := decodePlatform(req.Platform, s.cfg.maxPlatformBytes())
	if err != nil {
		writeError(w, err)
		return
	}
	if req.Source != "" {
		if _, ok := g.NodeByName(req.Source); !ok {
			writeError(w, badRequest("unknown source node %q", req.Source))
			return
		}
	}
	entry, old := s.reg.put(req.ID, g, req.Source)
	resp := UploadResponse{
		ID:          entry.id,
		Fingerprint: entry.fingerprint(),
		Nodes:       entry.nodes,
		Edges:       entry.edges,
		Source:      entry.sourceName,
		Generation:  entry.gen,
		Version:     entry.version,
	}
	if old != nil {
		resp.Replaced = true
		if old.fp != entry.fp {
			// The old content's cached plans are unreachable now that the
			// ID resolves to a new fingerprint; drop them eagerly.
			resp.Invalidated = s.cache.dropIf(func(k planKey) bool {
				return k.id == entry.id && k.fp == old.fp
			})
		}
		// A replacement is a mutation like any other: wake the platform's
		// replan loops so subscribers see the new content.
		s.hub.notifyPlatform(entry.id)
	}
	status := http.StatusCreated
	if old != nil {
		status = http.StatusOK
	}
	w.Header().Set(HeaderVersion, fmt.Sprintf("%d", entry.version))
	writeJSON(w, status, resp)
}

func decodePlatform(text string, limit int64) (*graph.Graph, error) {
	if text == "" {
		return nil, badRequest("empty platform description")
	}
	if int64(len(text)) > limit {
		return nil, badRequest("platform description exceeds %d bytes", limit)
	}
	g, err := graph.Decode(strings.NewReader(text))
	if err != nil {
		return nil, badRequest("bad platform: %v", err)
	}
	if g.NumActive() == 0 {
		return nil, badRequest("platform has no nodes")
	}
	return g, nil
}

func (s *Server) platformInfo(e *platformEntry) PlatformInfo {
	return PlatformInfo{
		ID:          e.id,
		Fingerprint: e.fingerprint(),
		Nodes:       e.nodes,
		Edges:       e.edges,
		Source:      e.sourceName,
		Generation:  e.gen,
		Version:     e.version,
	}
}

func (s *Server) handleListPlatforms(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.list()
	out := make([]PlatformInfo, len(entries))
	for i, e := range entries {
		out[i] = s.platformInfo(e)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetPlatform(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, notFound("unknown platform id"))
		return
	}
	writeJSON(w, http.StatusOK, s.platformInfo(e))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	solver, served := s.pool.stats()
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Platforms:     s.reg.len(),
		Shards:        len(s.pool.shards),
		ShardServed:   served,
		Solver:        solver,
		PlanCache:     s.cache.stats(),
		Coalesced:     s.flight.coalescedCount(),
		Endpoints:     make(map[string]EndpointStats),
	}
	resp.Jobs = s.jobs.stats()
	if s.limit != nil {
		resp.Resilience.Limiter = s.limit.stats()
	}
	resp.Resilience.Deadlines = s.deadlineHits.Load()
	resp.Resilience.Degraded = s.degraded.Load()
	resp.Resilience.Panics = s.panics.Load()
	resp.Resilience.Draining = s.draining.Load()
	s.mu.Lock()
	resp.Whatif = s.whatif
	resp.Batch = s.batch
	resp.Live = s.live
	resp.Live.Loops = s.hub.count()
	for pattern, a := range s.endpoints {
		es := EndpointStats{
			Count:       a.count,
			Errors:      a.errors,
			TotalMillis: float64(a.totalMicros) / 1e3,
			MaxMillis:   float64(a.maxMicros) / 1e3,
		}
		if a.count > 0 {
			es.AvgMillis = es.TotalMillis / float64(a.count)
		}
		resp.Endpoints[pattern] = es
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	// Same escaping headroom as uploads: an inline platform's JSON
	// encoding can be up to twice its decoded text.
	if err := decodeBody(w, r, 2*s.cfg.maxPlatformBytes()+(1<<16), &req); err != nil {
		writeError(w, err)
		return
	}
	res, err := s.resolve(&req.PlanSpec)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := s.requestContext(r.Context(), req.TimeoutMillis)
	defer cancel()
	resp, how, shardIdx, err := s.planResolved(ctx, res, req.NoCache, req.Degraded)
	if err != nil {
		s.countDeadline(err)
		writeError(w, err)
		return
	}
	if deg, ok := strings.CutPrefix(how, "degraded-"); ok {
		s.degraded.Add(1)
		w.Header().Set(HeaderDegraded, deg)
		if deg == "cache" {
			how = "hit"
		} else {
			how = "miss"
		}
	}
	w.Header().Set(HeaderCache, how)
	if shardIdx >= 0 {
		w.Header().Set(HeaderShard, fmt.Sprintf("%d", shardIdx))
	}
	if res.version > 0 {
		w.Header().Set(HeaderVersion, fmt.Sprintf("%d", res.version))
	}
	writeJSON(w, http.StatusOK, resp)
}

// requestContext derives a request's compute context: the caller's
// context bounded by the effective timeout (the request's timeout_ms
// clamped to MaxTimeout, else the server default; see Config).
func (s *Server) requestContext(ctx context.Context, timeoutMillis int64) (context.Context, context.CancelFunc) {
	if d := s.cfg.requestTimeout(timeoutMillis); d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return context.WithCancel(ctx)
}

// countDeadline bumps the 503/deadline counter when err is a deadline
// expiry (handlers call it on their top-level error path).
func (s *Server) countDeadline(err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.deadlineHits.Add(1)
	}
}

// Plan resolves and executes one plan request through the full serving
// stack (registry, cache, coalescer, shard pool). It returns the
// response, how it was served ("hit", "coalesced" or "miss") and the
// executing shard index (-1 unless this call computed the plan).
// It is the library entry point behind POST /v1/plan; the request's
// TimeoutMillis is honoured (Degraded too), the caller's context is
// the background one.
func (s *Server) Plan(req *PlanRequest) (*PlanResponse, string, int, error) {
	res, err := s.resolve(&req.PlanSpec)
	if err != nil {
		return nil, "", -1, err
	}
	ctx, cancel := s.requestContext(context.Background(), req.TimeoutMillis)
	defer cancel()
	return s.planResolved(ctx, res, req.NoCache, req.Degraded)
}

// planResolved executes an already-resolved spec through the cache,
// coalescer and shard pool — the shared back half of handlePlan, Plan
// and the subscription loops (which resolve per version themselves to
// stamp responses with the version they computed against).
//
// ctx bounds the compute: its cancellation is armed as the evaluator's
// stop flag while the shard solves, so a deadline stops the simplex
// mid-iteration, not merely between solves. A compute abandoned by
// ctx returns ctx's error (which coalesced followers do not inherit —
// they re-run; see flightGroup.do).
//
// degraded allows the saturation fallbacks when admission is refused:
// answer from the plan cache (the exact requested plan, how
// "degraded-cache"), or — on a tree-classified platform — a
// bounds-only combinatorial answer on a private evaluator, skipping
// the heuristics and the shard pool entirely (how "degraded-tree").
// Degraded answers are never cached and never coalesced: the tree
// fallback's body is NOT the requested plan's body, and must never be
// served to a caller that did not opt in.
func (s *Server) planResolved(ctx context.Context, res *resolved, noCache, degraded bool) (*PlanResponse, string, int, error) {
	key := res.key()
	// execIdx records the shard this call computed on; it stays -1 for
	// cache hits and coalesced followers (whose leader has its own
	// Plan frame and execIdx).
	execIdx := -1
	compute := func() (resp *PlanResponse, err error) {
		// Guard the whole leadership, hooks included: a panic escaping a
		// flight leader wakes its followers with a nil response AND a nil
		// error, which would serve as an empty 200.
		defer disarmPanic(&err)
		if s.limit != nil {
			if err := s.limit.acquire(ctx); err != nil {
				return nil, err
			}
			defer s.limit.release()
		}
		if err := faultinject.SolveEnter(ctx); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		idx, err := s.pool.run(key, func(ev *steady.Evaluator) (err error) {
			defer disarmPanic(&err)
			defer armStop(ctx, ev)()
			resp, err = executeResolved(ev, res)
			return err
		})
		if err != nil {
			return nil, ctxSolveErr(ctx, err)
		}
		execIdx = idx
		s.cache.put(key, resp)
		return resp, nil
	}

	resp, how, err := func() (*PlanResponse, string, error) {
		if noCache {
			resp, err := compute()
			return resp, "miss", err
		}
		if resp, ok := s.cache.get(key); ok {
			return resp, "hit", nil
		}
		resp, err, shared := s.flight.do(key, compute)
		if shared {
			how := "coalesced"
			if isSaturated(err) {
				// A follower sharing its leader's saturation verdict was
				// never admitted itself; it may still degrade below.
				how = ""
			}
			return resp, how, err
		}
		return resp, "miss", err
	}()
	if err == nil {
		return resp, how, execIdx, nil
	}
	if degraded && isSaturated(err) {
		if resp, ok := s.cache.get(key); ok {
			return resp, "degraded-cache", -1, nil
		}
		if resp, ok := s.degradedTreePlan(res); ok {
			return resp, "degraded-tree", -1, nil
		}
	}
	return nil, "", -1, err
}

// degradedTreePlan is the saturation fallback for tree platforms: the
// requested bounds computed combinatorially (fastpath) on a private
// evaluator, heuristics skipped. It never runs an LP — non-tree
// platforms return ok=false and the saturation error stands.
func (s *Server) degradedTreePlan(res *resolved) (*PlanResponse, bool) {
	var cl graph.Classifier
	if !cl.Classify(res.g, res.source).IsTree() {
		return nil, false
	}
	resp, err := executePlan(steady.NewEvaluator(), res.g, res.fp, res.source, res.targets, res.bounds, 0)
	if err != nil {
		return nil, false
	}
	resp.PlatformID = res.id
	return resp, true
}
