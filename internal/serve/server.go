package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/steady"
)

// Response headers carrying serving metadata. They live in headers —
// not the body — so plan bodies stay byte-comparable across cache
// hits, coalesced followers and fresh computations.
const (
	// HeaderCache reports how the plan was served: "hit" (plan cache),
	// "coalesced" (follower of an identical in-flight request) or
	// "miss" (computed by a shard for this request).
	HeaderCache = "X-Mcastd-Cache"
	// HeaderShard is the index of the shard that computed the plan
	// (set only when this request executed, i.e. HeaderCache: miss).
	HeaderShard = "X-Mcastd-Shard"
	// HeaderVersion is the platform version a response was computed
	// against (registered platforms only). Like the cache/shard headers
	// it stays out of the body, so a version's plan bytes are directly
	// comparable to a cold solve of that version's snapshot.
	HeaderVersion = "X-Mcastd-Version"
)

// UploadRequest is the body of POST /v1/platforms.
type UploadRequest struct {
	// ID names the platform; empty derives the content-addressed
	// "pf-<fingerprint>". Re-uploading an ID replaces its content and
	// invalidates the old content's cached plans.
	ID string `json:"id,omitempty"`
	// Platform is the platform description in the graph text format
	// (node/edge/link lines).
	Platform string `json:"platform"`
	// Source optionally declares a default source node for plan
	// requests that omit one.
	Source string `json:"source,omitempty"`
}

// UploadResponse is the body of a successful POST /v1/platforms.
type UploadResponse struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	Source      string `json:"source,omitempty"`
	Generation  int    `json:"generation"`
	Version     int64  `json:"version"`
	Replaced    bool   `json:"replaced,omitempty"`
	// Invalidated counts the cached plans of the replaced content that
	// were dropped.
	Invalidated int `json:"invalidated,omitempty"`
}

// PlatformInfo is one entry of GET /v1/platforms.
type PlatformInfo struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	Source      string `json:"source,omitempty"`
	Generation  int    `json:"generation"`
	Version     int64  `json:"version"`
}

// EndpointStats summarises one route's traffic for GET /v1/stats.
type EndpointStats struct {
	Count       int64   `json:"count"`
	Errors      int64   `json:"errors"`
	AvgMillis   float64 `json:"avg_ms"`
	MaxMillis   float64 `json:"max_ms"`
	TotalMillis float64 `json:"total_ms"`
}

// StatsResponse is the body of GET /v1/stats: cumulative solver
// activity across all shards plus serving-layer counters.
type StatsResponse struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Platforms     int                      `json:"platforms"`
	Shards        int                      `json:"shards"`
	ShardServed   []int64                  `json:"shard_served"`
	Solver        steady.SolveStats        `json:"solver"`
	PlanCache     CacheStats               `json:"plan_cache"`
	Coalesced     int64                    `json:"coalesced"`
	Whatif        WhatifStats              `json:"whatif"`
	Batch         BatchStats               `json:"batch"`
	Jobs          JobStats                 `json:"jobs"`
	Live          LiveStats                `json:"live"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
}

// Server is the planning daemon: an http.Handler wiring the platform
// registry, the plan cache, the coalescer and the evaluator shard
// pool. Construct with New; the zero value is not usable.
type Server struct {
	cfg    Config
	reg    *registry
	pool   *shardPool
	cache  *planCache
	flight *flightGroup
	jobs   *jobStore
	hub    *hub
	mux    *http.ServeMux
	start  time.Time

	// batchLane rotates the starting lane of batch fan-outs so
	// concurrent batches spread over the pool instead of piling onto
	// lane 0. The lane choice never affects response bytes (every lane's
	// evaluator is Reset before use), only load spreading.
	batchLane atomic.Int64

	// batchItemHook, when set, runs inside every batch item's flight
	// leadership, before the item acquires its shard lane. Tests use it
	// to gate batch compute mid-flight (cancellation and coalescing
	// regressions); nil in production.
	batchItemHook func()

	mu        sync.Mutex
	endpoints map[string]*endpointAccum
	whatif    WhatifStats
	batch     BatchStats
	live      LiveStats
}

type endpointAccum struct {
	count, errors int64
	totalMicros   int64
	maxMicros     int64
}

// New returns a ready-to-serve planning daemon.
func New(cfg Config) *Server {
	s := &Server{
		cfg:       cfg,
		reg:       newRegistry(cfg.versionHistory(), cfg.mutationLog()),
		pool:      newShardPool(cfg.shards()),
		cache:     newPlanCache(cfg.cacheSize()),
		flight:    newFlightGroup(),
		jobs:      newJobStore(cfg.maxJobs(), cfg.maxJobItems(), cfg.jobTTL()),
		hub:       newHub(),
		mux:       http.NewServeMux(),
		start:     time.Now(),
		endpoints: make(map[string]*endpointAccum),
	}
	s.route("GET /healthz", s.handleHealthz)
	s.route("POST /v1/platforms", s.handleUpload)
	s.route("GET /v1/platforms", s.handleListPlatforms)
	s.route("GET /v1/platforms/{id}", s.handleGetPlatform)
	s.route("PATCH /v1/platforms/{id}", s.handlePatchPlatform)
	s.route("GET /v1/platforms/{id}/subscribe", s.handleSubscribe)
	s.route("GET /v1/platforms/{id}/log", s.handlePlatformLog)
	s.route("POST /v1/plan", s.handlePlan)
	s.route("POST /v1/plan:batch", s.handleBatch)
	s.route("POST /v1/whatif", s.handleWhatif)
	s.route("POST /v1/jobs", s.handleSubmitJob)
	s.route("GET /v1/jobs", s.handleListJobs)
	s.route("GET /v1/jobs/{id}", s.handleGetJob)
	s.route("GET /v1/jobs/{id}/stream", s.handleStreamJob)
	s.route("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.route("GET /v1/stats", s.handleStats)
	return s
}

// Shards reports the number of evaluator shards.
func (s *Server) Shards() int { return len(s.pool.shards) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// route registers a handler wrapped with the per-endpoint latency and
// error accounting surfaced by /v1/stats.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.observe(pattern, sw.status, time.Since(t0))
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so the streaming endpoints
// (subscribe, batch, job streams) keep their incremental delivery
// through the accounting wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) observe(pattern string, status int, d time.Duration) {
	micros := d.Microseconds()
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.endpoints[pattern]
	if a == nil {
		a = &endpointAccum{}
		s.endpoints[pattern] = a
	}
	a.count++
	if status >= 400 {
		a.errors++
	}
	a.totalMicros += micros
	if micros > a.maxMicros {
		a.maxMicros = micros
	}
}

// --- helpers ----------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}

func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("bad request body: %v", err)
	}
	return nil
}

// --- handlers ---------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":             true,
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	var req UploadRequest
	// Worst-case JSON escaping doubles the platform text (every newline
	// becomes \n), so the wire limit is twice the decoded-text cap that
	// decodePlatform enforces.
	if err := decodeBody(w, r, 2*s.cfg.maxPlatformBytes()+4096, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := validateID(req.ID); err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	g, err := decodePlatform(req.Platform, s.cfg.maxPlatformBytes())
	if err != nil {
		writeError(w, err)
		return
	}
	if req.Source != "" {
		if _, ok := g.NodeByName(req.Source); !ok {
			writeError(w, badRequest("unknown source node %q", req.Source))
			return
		}
	}
	entry, old := s.reg.put(req.ID, g, req.Source)
	resp := UploadResponse{
		ID:          entry.id,
		Fingerprint: entry.fingerprint(),
		Nodes:       entry.nodes,
		Edges:       entry.edges,
		Source:      entry.sourceName,
		Generation:  entry.gen,
		Version:     entry.version,
	}
	if old != nil {
		resp.Replaced = true
		if old.fp != entry.fp {
			// The old content's cached plans are unreachable now that the
			// ID resolves to a new fingerprint; drop them eagerly.
			resp.Invalidated = s.cache.dropIf(func(k planKey) bool {
				return k.id == entry.id && k.fp == old.fp
			})
		}
		// A replacement is a mutation like any other: wake the platform's
		// replan loops so subscribers see the new content.
		s.hub.notifyPlatform(entry.id)
	}
	status := http.StatusCreated
	if old != nil {
		status = http.StatusOK
	}
	w.Header().Set(HeaderVersion, fmt.Sprintf("%d", entry.version))
	writeJSON(w, status, resp)
}

func decodePlatform(text string, limit int64) (*graph.Graph, error) {
	if text == "" {
		return nil, badRequest("empty platform description")
	}
	if int64(len(text)) > limit {
		return nil, badRequest("platform description exceeds %d bytes", limit)
	}
	g, err := graph.Decode(strings.NewReader(text))
	if err != nil {
		return nil, badRequest("bad platform: %v", err)
	}
	if g.NumActive() == 0 {
		return nil, badRequest("platform has no nodes")
	}
	return g, nil
}

func (s *Server) platformInfo(e *platformEntry) PlatformInfo {
	return PlatformInfo{
		ID:          e.id,
		Fingerprint: e.fingerprint(),
		Nodes:       e.nodes,
		Edges:       e.edges,
		Source:      e.sourceName,
		Generation:  e.gen,
		Version:     e.version,
	}
}

func (s *Server) handleListPlatforms(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.list()
	out := make([]PlatformInfo, len(entries))
	for i, e := range entries {
		out[i] = s.platformInfo(e)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetPlatform(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, notFound("unknown platform id"))
		return
	}
	writeJSON(w, http.StatusOK, s.platformInfo(e))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	solver, served := s.pool.stats()
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Platforms:     s.reg.len(),
		Shards:        len(s.pool.shards),
		ShardServed:   served,
		Solver:        solver,
		PlanCache:     s.cache.stats(),
		Coalesced:     s.flight.coalescedCount(),
		Endpoints:     make(map[string]EndpointStats),
	}
	resp.Jobs = s.jobs.stats()
	s.mu.Lock()
	resp.Whatif = s.whatif
	resp.Batch = s.batch
	resp.Live = s.live
	resp.Live.Loops = s.hub.count()
	for pattern, a := range s.endpoints {
		es := EndpointStats{
			Count:       a.count,
			Errors:      a.errors,
			TotalMillis: float64(a.totalMicros) / 1e3,
			MaxMillis:   float64(a.maxMicros) / 1e3,
		}
		if a.count > 0 {
			es.AvgMillis = es.TotalMillis / float64(a.count)
		}
		resp.Endpoints[pattern] = es
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	// Same escaping headroom as uploads: an inline platform's JSON
	// encoding can be up to twice its decoded text.
	if err := decodeBody(w, r, 2*s.cfg.maxPlatformBytes()+(1<<16), &req); err != nil {
		writeError(w, err)
		return
	}
	res, err := s.resolve(&req.PlanSpec)
	if err != nil {
		writeError(w, err)
		return
	}
	resp, how, shardIdx, err := s.planResolved(res, req.NoCache)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set(HeaderCache, how)
	if shardIdx >= 0 {
		w.Header().Set(HeaderShard, fmt.Sprintf("%d", shardIdx))
	}
	if res.version > 0 {
		w.Header().Set(HeaderVersion, fmt.Sprintf("%d", res.version))
	}
	writeJSON(w, http.StatusOK, resp)
}

// Plan resolves and executes one plan request through the full serving
// stack (registry, cache, coalescer, shard pool). It returns the
// response, how it was served ("hit", "coalesced" or "miss") and the
// executing shard index (-1 unless this call computed the plan).
// It is the library entry point behind POST /v1/plan.
func (s *Server) Plan(req *PlanRequest) (*PlanResponse, string, int, error) {
	res, err := s.resolve(&req.PlanSpec)
	if err != nil {
		return nil, "", -1, err
	}
	return s.planResolved(res, req.NoCache)
}

// planResolved executes an already-resolved spec through the cache,
// coalescer and shard pool — the shared back half of handlePlan, Plan
// and the subscription loops (which resolve per version themselves to
// stamp responses with the version they computed against).
func (s *Server) planResolved(res *resolved, noCache bool) (*PlanResponse, string, int, error) {
	key := res.key()
	// execIdx records the shard this call computed on; it stays -1 for
	// cache hits and coalesced followers (whose leader has its own
	// Plan frame and execIdx).
	execIdx := -1
	compute := func() (*PlanResponse, error) {
		var resp *PlanResponse
		idx, err := s.pool.run(key, func(ev *steady.Evaluator) error {
			var err error
			resp, err = executeResolved(ev, res)
			return err
		})
		if err != nil {
			return nil, err
		}
		execIdx = idx
		s.cache.put(key, resp)
		return resp, nil
	}

	if noCache {
		resp, err := compute()
		if err != nil {
			return nil, "", -1, err
		}
		return resp, "miss", execIdx, nil
	}

	if resp, ok := s.cache.get(key); ok {
		return resp, "hit", -1, nil
	}
	resp, err, shared := s.flight.do(key, compute)
	if err != nil {
		return nil, "", -1, err
	}
	if shared {
		return resp, "coalesced", -1, nil
	}
	return resp, "miss", execIdx, nil
}
