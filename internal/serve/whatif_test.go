package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/steady"
	"repro/internal/whatif"
)

// expectedWhatifBody builds the serial single-evaluator reference for
// a what-if request: baseline on a fresh evaluator, then every
// scenario in enumeration order on a clone of the baseline evaluator
// over a private platform copy — exactly what the handler's shard
// fan-out must reproduce byte for byte.
func expectedWhatifBody(t *testing.T, s *Server, req *WhatifRequest) []byte {
	t.Helper()
	res, err := s.resolve(&req.PlanSpec)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := whatifConfig(res.g, req)
	if err != nil {
		t.Fatal(err)
	}
	base, err := whatif.NewBaseline(steady.NewEvaluator(), res.p)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := whatif.Enumerate(res.g, res.source, cfg)
	results := make([]whatif.Result, len(scenarios))
	for i, sc := range scenarios {
		results[i] = whatif.Eval(base, base.Ev.Clone(), res.g.Clone(), sc)
	}
	rep := whatif.BuildReport(base, scenarios, results)

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	lines := []WhatifLine{whatifBaselineLine(res.id, res.fp, base, len(scenarios))}
	for _, r := range results {
		lines = append(lines, whatifScenarioLine(res.g, r))
	}
	lines = append(lines, whatifSummaryLine(res.g, rep))
	for _, line := range lines {
		if err := enc.Encode(line); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestWhatifEndpoint checks the NDJSON shape and the semantics on the
// diamond platform: one baseline line, one line per scenario in
// enumeration order, one summary, and sensible criticality.
func TestWhatifEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})
	w := doJSON(t, s, http.MethodPost, "/v1/whatif", WhatifRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1", "t2"}}})
	if w.Code != http.StatusOK {
		t.Fatalf("whatif: %d %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	raw := strings.TrimSuffix(w.Body.String(), "\n")
	var lines []WhatifLine
	for _, ln := range strings.Split(raw, "\n") {
		var l WhatifLine
		if err := json.Unmarshal([]byte(ln), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", ln, err)
		}
		lines = append(lines, l)
	}
	// Diamond: 4 node failures + 8 link failures + 4 promotions.
	const scenarios = 4 + 8 + 4
	if len(lines) != scenarios+2 {
		t.Fatalf("got %d lines, want %d", len(lines), scenarios+2)
	}
	head, tail := lines[0], lines[len(lines)-1]
	if head.Kind != "baseline" || head.Scenarios != scenarios || head.PlatformID != "d" || head.LBPeriod <= 0 {
		t.Errorf("baseline line: %+v", head)
	}
	if tail.Kind != "summary" || tail.Scenarios != scenarios || tail.Errors != 0 {
		t.Errorf("summary line: %+v", tail)
	}
	if len(tail.CriticalNodes) != 4 || len(tail.CriticalEdges) != 8 {
		t.Errorf("rankings: %d nodes, %d edges", len(tail.CriticalNodes), len(tail.CriticalEdges))
	}
	// Deltas rank throughput for the surviving targets, so losing a
	// relay (which throttles everyone left) must rank worst — losing a
	// target merely shrinks the demand.
	worst := tail.CriticalNodes[0]
	if worst.Node != "r1" && worst.Node != "r2" {
		t.Errorf("worst node %+v, want a relay", worst)
	}
	for _, l := range lines[1 : scenarios+1] {
		if l.Error != "" {
			t.Errorf("scenario error: %+v", l)
		}
	}
	// Per-scenario order: node failures first (by node ID), then edges,
	// then promotions.
	if lines[1].Kind != string(whatif.KindNodeFailure) {
		t.Errorf("first scenario line: %+v", lines[1])
	}
	if lines[scenarios].Kind != string(whatif.KindPromoteSource) {
		t.Errorf("last scenario line: %+v", lines[scenarios])
	}

	// Stats: the request and its scenarios are accounted.
	st := decodeJSON[StatsResponse](t, doJSON(t, s, http.MethodGet, "/v1/stats", nil))
	if st.Whatif.Requests != 1 || st.Whatif.Scenarios != scenarios || st.Whatif.Solver.Evaluations == 0 {
		t.Errorf("whatif stats: %+v", st.Whatif)
	}
}

func TestWhatifValidation(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})
	f := func(v float64) []float64 { return []float64{v} }
	cases := []struct {
		req  WhatifRequest
		want int
	}{
		{WhatifRequest{PlanSpec: PlanSpec{PlatformID: "missing", Targets: []string{"t1"}}}, http.StatusNotFound},
		{WhatifRequest{PlanSpec: PlanSpec{PlatformID: "d"}}, http.StatusBadRequest},                                              // no targets
		{WhatifRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"zz"}}}, http.StatusBadRequest},                     // unknown target
		{WhatifRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1"}}, EdgeFactors: f(-1)}, http.StatusBadRequest}, // negative factor
		{WhatifRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1"}}, FailNodes: []string{"zz"}}, http.StatusBadRequest},
		{WhatifRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1"}}, Sources: []string{"zz"}}, http.StatusBadRequest},
	}
	for i, c := range cases {
		if w := doJSON(t, s, http.MethodPost, "/v1/whatif", c.req); w.Code != c.want {
			t.Errorf("case %d: got %d, want %d (%s)", i, w.Code, c.want, w.Body.String())
		}
	}
}

// TestWhatifScenarioSubsets: explicit empty lists disable families and
// explicit candidates restrict them.
func TestWhatifScenarioSubsets(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})
	off := false
	w := doJSON(t, s, http.MethodPost, "/v1/whatif", WhatifRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1", "t2"}}, NodeFailures: &off, EdgeFactors: []float64{}, Sources: []string{"r1"}})
	if w.Code != http.StatusOK {
		t.Fatalf("whatif: %d %s", w.Code, w.Body.String())
	}
	lines := strings.Split(strings.TrimSuffix(w.Body.String(), "\n"), "\n")
	if len(lines) != 3 { // baseline + 1 promotion + summary
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), w.Body.String())
	}
	var sc WhatifLine
	if err := json.Unmarshal([]byte(lines[1]), &sc); err != nil {
		t.Fatal(err)
	}
	if sc.Kind != string(whatif.KindPromoteSource) || sc.Node != "r1" {
		t.Errorf("scenario line: %+v", sc)
	}
}

// TestConcurrentWhatifBitIdenticalToSerial is the /v1/whatif extension
// of the plan determinism test: 8 goroutines hammer the endpoint with
// a mix of what-if requests while plan traffic shares the shard lanes,
// and every streamed NDJSON body must be byte-identical to the serial
// single-evaluator scenario loop.
func TestConcurrentWhatifBitIdenticalToSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent determinism run is slow")
	}
	s := newTestServer(t, Config{Shards: 4})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "d", Platform: diamondText, Source: "S"})

	specs := []*WhatifRequest{
		{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1", "t2"}}},
		{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1"}}, EdgeFactors: []float64{0, 4}},
		{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t2", "t1"}}, Sources: []string{}},
	}
	expected := make([][]byte, len(specs))
	requests := make([][]byte, len(specs))
	for i, spec := range specs {
		expected[i] = expectedWhatifBody(t, s, spec)
		var err error
		requests[i], err = json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
	}

	planReq, err := json.Marshal(PlanRequest{PlanSpec: PlanSpec{PlatformID: "d", Targets: []string{"t1"}, Heuristics: []string{"MCPH"}}})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perGoroutine = 6
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*perGoroutine)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for n := 0; n < perGoroutine; n++ {
				i := (gi + n) % len(specs)
				w := httptest.NewRecorder()
				s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/whatif", bytes.NewReader(requests[i])))
				if w.Code != http.StatusOK {
					errs <- w.Body.String()
					continue
				}
				if !bytes.Equal(w.Body.Bytes(), expected[i]) {
					errs <- "whatif response diverged from the serial reference"
				}
				// Interleave plan traffic on the same shard lanes.
				pw := httptest.NewRecorder()
				s.ServeHTTP(pw, httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(planReq)))
				if pw.Code != http.StatusOK {
					errs <- pw.Body.String()
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	st := decodeJSON[StatsResponse](t, doJSON(t, s, http.MethodGet, "/v1/stats", nil))
	if st.Whatif.Requests != goroutines*perGoroutine {
		t.Errorf("whatif requests %d, want %d", st.Whatif.Requests, goroutines*perGoroutine)
	}
}

// treeText is an out-tree platform: every bound on it takes the
// combinatorial fast path.
const treeText = `
node S
edge S a 2
edge S b 3
edge a c 1
edge a d 4
`

// TestWhatifTreeFastPathStats drives /v1/whatif and /v1/plan on a tree
// platform and checks the fast-path accounting end to end: the summary
// line's fast_path_scenarios, the what-if section of /v1/stats, and
// the shard solver section's FastPathHits.
func TestWhatifTreeFastPathStats(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	doJSON(t, s, http.MethodPost, "/v1/platforms", UploadRequest{ID: "tr", Platform: treeText, Source: "S"})
	w := doJSON(t, s, http.MethodPost, "/v1/whatif", WhatifRequest{PlanSpec: PlanSpec{PlatformID: "tr", Targets: []string{"a", "b", "c", "d"}}, Sources: []string{}})
	if w.Code != http.StatusOK {
		t.Fatalf("whatif: %d %s", w.Code, w.Body.String())
	}
	raw := strings.TrimSuffix(w.Body.String(), "\n")
	parts := strings.Split(raw, "\n")
	var tail WhatifLine
	if err := json.Unmarshal([]byte(parts[len(parts)-1]), &tail); err != nil {
		t.Fatal(err)
	}
	// 4 node failures + 4 link failures, every one on a (sub)tree.
	const scenarios = 4 + 4
	if tail.Kind != "summary" || tail.Scenarios != scenarios {
		t.Fatalf("summary line: %+v", tail)
	}
	if tail.FastPathScenarios != scenarios {
		t.Errorf("summary fast_path_scenarios = %d, want %d", tail.FastPathScenarios, scenarios)
	}

	st := decodeJSON[StatsResponse](t, doJSON(t, s, http.MethodGet, "/v1/stats", nil))
	if st.Whatif.FastPathScenarios != scenarios {
		t.Errorf("stats whatif fast_path_scenarios = %d, want %d", st.Whatif.FastPathScenarios, scenarios)
	}
	if st.Whatif.Solver.FastPathHits < scenarios {
		t.Errorf("whatif solver FastPathHits = %d, want >= %d", st.Whatif.Solver.FastPathHits, scenarios)
	}

	// A bounds-only plan on the same platform lands its fast-path hits
	// in the shard solver section.
	pw := doJSON(t, s, http.MethodPost, "/v1/plan", PlanRequest{PlanSpec: PlanSpec{PlatformID: "tr", Targets: []string{"c", "d"}, Bounds: []string{"lb", "scatter"}, Heuristics: []string{}}, NoCache: true})
	if pw.Code != http.StatusOK {
		t.Fatalf("plan: %d %s", pw.Code, pw.Body.String())
	}
	st = decodeJSON[StatsResponse](t, doJSON(t, s, http.MethodGet, "/v1/stats", nil))
	if st.Solver.FastPathHits == 0 {
		t.Error("shard solver stats show no fast-path hits after a tree plan")
	}
}
