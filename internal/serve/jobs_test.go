package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// pollJob polls a job until it leaves the running state (or the test
// times out via the harness deadline).
func pollJob(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	for {
		w := doJSON(t, s, http.MethodGet, "/v1/jobs/"+id, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("poll %s: %d %s", id, w.Code, w.Body.String())
		}
		st := decodeJSON[JobStatus](t, w)
		if st.State != JobRunning {
			return st
		}
		time.Sleep(time.Millisecond)
	}
}

func submitJob(t *testing.T, s *Server, req BatchRequest) JobStatus {
	t.Helper()
	w := doJSON(t, s, http.MethodPost, "/v1/jobs", req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", w.Code, w.Body.String())
	}
	return decodeJSON[JobStatus](t, w)
}

// TestJobLifecycle: submit → poll to done → stream, with the job's
// stream byte-identical to the synchronous batch endpoint's response
// for the same request.
func TestJobLifecycle(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	uploadDiamond(t, s, "d")

	req := BatchRequest{
		PlanSpec: PlanSpec{PlatformID: "d", Heuristics: []string{}},
		Items: []BatchItem{
			{PlanSpec{Targets: []string{"t1"}}},
			{PlanSpec{Targets: []string{"t2"}}},
			{PlanSpec{Targets: []string{"t1", "t2"}}},
		},
	}
	// The synchronous reference first (also warms the cache; cached
	// items must still produce identical job stream bytes).
	bw := doJSON(t, s, http.MethodPost, "/v1/plan:batch", req)
	if bw.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", bw.Code, bw.Body.String())
	}

	sub := submitJob(t, s, req)
	if sub.ID == "" || sub.Items != 3 {
		t.Fatalf("submit status %+v", sub)
	}
	st := pollJob(t, s, sub.ID)
	if st.State != JobDone || st.Completed != 3 || st.Failed != 0 || st.FinishedUnix == 0 {
		t.Fatalf("final status %+v", st)
	}

	sw := doJSON(t, s, http.MethodGet, "/v1/jobs/"+sub.ID+"/stream", nil)
	if sw.Code != http.StatusOK {
		t.Fatalf("stream: %d %s", sw.Code, sw.Body.String())
	}
	if !bytes.Equal(sw.Body.Bytes(), bw.Body.Bytes()) {
		t.Errorf("job stream diverged from the batch endpoint:\njob   %s\nbatch %s", sw.Body.Bytes(), bw.Body.Bytes())
	}
	if int64(len(sw.Body.Bytes())) != st.Bytes {
		t.Errorf("stream is %d bytes, status says %d", len(sw.Body.Bytes()), st.Bytes)
	}

	// The job list includes it.
	lw := doJSON(t, s, http.MethodGet, "/v1/jobs", nil)
	list := decodeJSON[[]JobStatus](t, lw)
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Errorf("job list %+v", list)
	}
}

// TestJobStreamResume: ?offset=N serves exactly stream[N:] for every
// offset, and offsets beyond a finished stream are 400s.
func TestJobStreamResume(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	uploadDiamond(t, s, "d")
	sub := submitJob(t, s, BatchRequest{
		PlanSpec: PlanSpec{PlatformID: "d", Heuristics: []string{}},
		Items:    []BatchItem{{PlanSpec{Targets: []string{"t1"}}}, {PlanSpec{Targets: []string{"t2"}}}},
	})
	pollJob(t, s, sub.ID)
	full := doJSON(t, s, http.MethodGet, "/v1/jobs/"+sub.ID+"/stream", nil).Body.Bytes()
	if len(full) == 0 {
		t.Fatal("empty stream")
	}

	for _, off := range []int{0, 1, len(full) / 2, len(full) - 1, len(full)} {
		w := doJSON(t, s, http.MethodGet, "/v1/jobs/"+sub.ID+"/stream?offset="+strconv.Itoa(off), nil)
		if w.Code != http.StatusOK {
			t.Fatalf("offset %d: %d %s", off, w.Code, w.Body.String())
		}
		if !bytes.Equal(w.Body.Bytes(), full[off:]) {
			t.Errorf("offset %d: resumed bytes differ from stream[%d:]", off, off)
		}
	}

	for _, bad := range []string{strconv.Itoa(len(full) + 1), "-1", "zig"} {
		w := doJSON(t, s, http.MethodGet, "/v1/jobs/"+sub.ID+"/stream?offset="+bad, nil)
		if w.Code != http.StatusBadRequest {
			t.Errorf("offset %q: %d, want 400", bad, w.Code)
		}
		if env := decodeJSON[ErrorEnvelope](t, w); env.Error.Code != CodeBadRequest {
			t.Errorf("offset %q: code %q", bad, env.Error.Code)
		}
	}
}

// TestJobTTLEviction: finished jobs are reaped lazily once past the
// TTL — polls 404, stats count the eviction.
func TestJobTTLEviction(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, JobTTL: time.Minute})
	uploadDiamond(t, s, "d")
	sub := submitJob(t, s, BatchRequest{
		PlanSpec: PlanSpec{PlatformID: "d", Heuristics: []string{}},
		Items:    []BatchItem{{PlanSpec{Targets: []string{"t1"}}}},
	})
	pollJob(t, s, sub.ID)

	// Still visible inside the TTL.
	if w := doJSON(t, s, http.MethodGet, "/v1/jobs/"+sub.ID, nil); w.Code != http.StatusOK {
		t.Fatalf("pre-TTL poll: %d", w.Code)
	}

	// Advance the store's clock beyond the TTL.
	s.jobs.mu.Lock()
	s.jobs.now = func() time.Time { return time.Now().Add(2 * time.Minute) }
	s.jobs.mu.Unlock()

	w := doJSON(t, s, http.MethodGet, "/v1/jobs/"+sub.ID, nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("post-TTL poll: %d, want 404", w.Code)
	}
	if env := decodeJSON[ErrorEnvelope](t, w); env.Error.Code != CodeNotFound {
		t.Errorf("post-TTL code %q", env.Error.Code)
	}
	st := decodeJSON[StatsResponse](t, doJSON(t, s, http.MethodGet, "/v1/stats", nil))
	if st.Jobs.Evicted != 1 || st.Jobs.Done != 1 {
		t.Errorf("job stats %+v", st.Jobs)
	}
}

// TestJobAdmissionControl: MaxJobs and MaxJobItems refuse submissions
// with 429/saturated plus a Retry-After header, and the refusals are
// counted.
func TestJobAdmissionControl(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1, MaxJobs: 1, MaxJobItems: 4})
	uploadDiamond(t, s, "d")

	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	s.batchItemHook = func() {
		entered <- struct{}{}
		<-gate
	}
	one := BatchRequest{
		PlanSpec: PlanSpec{PlatformID: "d", Heuristics: []string{}},
		Items:    []BatchItem{{PlanSpec{Targets: []string{"t1"}}}},
	}
	sub := submitJob(t, s, one)
	<-entered // the job is mid-item, definitely unfinished

	// Second job: over MaxJobs.
	w := doJSON(t, s, http.MethodPost, "/v1/jobs", one)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over MaxJobs: %d %s", w.Code, w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Error("no Retry-After header on a saturated refusal")
	}
	if env := decodeJSON[ErrorEnvelope](t, w); env.Error.Code != CodeSaturated {
		t.Errorf("saturated code %q", env.Error.Code)
	}

	close(gate)
	pollJob(t, s, sub.ID)

	// Oversized job: over MaxJobItems even with no active jobs.
	s.batchItemHook = nil
	big := BatchRequest{PlanSpec: PlanSpec{PlatformID: "d", Heuristics: []string{}}}
	for i := 0; i < 5; i++ {
		big.Items = append(big.Items, BatchItem{PlanSpec{Targets: []string{"t1"}}})
	}
	if w := doJSON(t, s, http.MethodPost, "/v1/jobs", big); w.Code != http.StatusTooManyRequests {
		t.Fatalf("over MaxJobItems: %d %s", w.Code, w.Body.String())
	}

	st := decodeJSON[StatsResponse](t, doJSON(t, s, http.MethodGet, "/v1/stats", nil))
	if st.Jobs.Refused != 2 || st.Jobs.Submitted != 1 {
		t.Errorf("job stats %+v", st.Jobs)
	}
	if st.Jobs.PendingItems != 0 {
		t.Errorf("pending items %d after drain, want 0", st.Jobs.PendingItems)
	}
}

// TestJobCancelMidBatch: DELETE mid-run drains the remaining items as
// "canceled" error lines and lands the job in state canceled, with
// every line still emitted in submission order.
func TestJobCancelMidBatch(t *testing.T) {
	s := newTestServer(t, Config{Shards: 1})
	uploadDiamond(t, s, "d")

	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	var once sync.Once
	s.batchItemHook = func() {
		once.Do(func() { entered <- struct{}{} })
		<-gate
	}
	req := BatchRequest{
		PlanSpec: PlanSpec{PlatformID: "d", Heuristics: []string{}},
		Items: []BatchItem{
			{PlanSpec{Targets: []string{"t1"}}},
			{PlanSpec{Targets: []string{"t2"}}},
			{PlanSpec{Targets: []string{"t1", "t2"}}},
		},
	}
	sub := submitJob(t, s, req)
	<-entered // the first item is inside its flight, blocked

	cw := doJSON(t, s, http.MethodDelete, "/v1/jobs/"+sub.ID, nil)
	if cw.Code != http.StatusOK {
		t.Fatalf("cancel: %d %s", cw.Code, cw.Body.String())
	}
	close(gate)

	st := pollJob(t, s, sub.ID)
	if st.State != JobCanceled {
		t.Fatalf("state %q, want canceled", st.State)
	}
	if st.Completed != 3 || st.Failed == 0 {
		t.Errorf("status %+v: want all 3 lines emitted with >= 1 canceled", st)
	}

	sw := doJSON(t, s, http.MethodGet, "/v1/jobs/"+sub.ID+"/stream", nil)
	var canceled int
	for _, raw := range bytes.Split(bytes.TrimSuffix(sw.Body.Bytes(), []byte("\n")), []byte("\n")) {
		var line BatchLine
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatalf("bad line %q: %v", raw, err)
		}
		if line.Kind == "plan" && line.Error != nil {
			if line.Error.Code != CodeCanceled {
				t.Errorf("error line code %q, want canceled", line.Error.Code)
			}
			canceled++
		}
	}
	if canceled != st.Failed {
		t.Errorf("%d canceled lines, status says %d failed", canceled, st.Failed)
	}

	// Cancelling a finished job is a no-op reporting the final state.
	cw = doJSON(t, s, http.MethodDelete, "/v1/jobs/"+sub.ID, nil)
	if cw.Code != http.StatusOK || decodeJSON[JobStatus](t, cw).State != JobCanceled {
		t.Errorf("re-cancel: %d %s", cw.Code, cw.Body.String())
	}

	st2 := decodeJSON[StatsResponse](t, doJSON(t, s, http.MethodGet, "/v1/stats", nil))
	if st2.Jobs.Canceled != 1 || st2.Jobs.PendingItems != 0 {
		t.Errorf("job stats %+v", st2.Jobs)
	}
}

// TestCanceledJobLeaderDoesNotPoisonFollower extends the PR 4
// canceled-leader regression across the batch/interactive boundary: a
// job item that leads a flight and is then canceled must not hand its
// cancellation to an interactive request coalesced behind the same
// key — the follower re-runs and gets the real plan.
func TestCanceledJobLeaderDoesNotPoisonFollower(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	uploadDiamond(t, s, "d")

	spec := PlanSpec{PlatformID: "d", Targets: []string{"t1"}, Heuristics: []string{}}
	gate := make(chan struct{})
	leaderIn := make(chan struct{}, 1)
	s.batchItemHook = func() {
		select {
		case leaderIn <- struct{}{}:
		default:
		}
		<-gate
	}

	sub := submitJob(t, s, BatchRequest{Items: []BatchItem{{spec}}})
	<-leaderIn // the job item holds the flight leadership, blocked

	// Interactive request for the identical key: it coalesces behind
	// the doomed leader. The hook only gates the batch path, so the
	// follower's retry computes normally.
	planBody, err := json.Marshal(PlanRequest{PlanSpec: spec})
	if err != nil {
		t.Fatal(err)
	}
	followerDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(planBody)))
		followerDone <- w
	}()
	// Wait until the interactive request is actually coalesced.
	for {
		if s.flight.coalescedCount() >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	doJSON(t, s, http.MethodDelete, "/v1/jobs/"+sub.ID, nil)
	close(gate)

	fw := <-followerDone
	if fw.Code != http.StatusOK {
		t.Fatalf("follower inherited the cancellation: %d %s", fw.Code, fw.Body.String())
	}
	var resp PlanResponse
	if err := json.Unmarshal(fw.Body.Bytes(), &resp); err != nil || len(resp.Bounds) == 0 {
		t.Fatalf("follower response: %v %s", err, fw.Body.String())
	}

	st := pollJob(t, s, sub.ID)
	if st.State != JobCanceled || st.Failed != 1 {
		t.Errorf("job status %+v, want canceled with its one item failed", st)
	}
}
