package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
)

// ErrorCode is the machine-readable error class of the v1 API. Every
// error body — whatever the endpoint — is the structured envelope
//
//	{"error":{"code":"bad_request","message":"..."}}
//
// so clients branch on the code and log the message. The HTTP status
// is derived from the code (and never the other way around): codes are
// the contract, statuses are the transport mapping.
type ErrorCode string

const (
	// CodeBadRequest: the request is malformed or references unknown
	// nodes/bounds/heuristics. HTTP 400.
	CodeBadRequest ErrorCode = "bad_request"
	// CodeNotFound: the referenced platform or job does not exist (or a
	// job was already evicted by TTL). HTTP 404.
	CodeNotFound ErrorCode = "not_found"
	// CodePlatformConflict: the request addresses a platform two
	// contradictory ways (platform_id and an inline platform together).
	// HTTP 400 — the historical status of this error, kept stable.
	CodePlatformConflict ErrorCode = "platform_conflict"
	// CodeSaturated: the async job store is at its admission limits
	// (max queued jobs or max in-flight items). HTTP 429 with a
	// Retry-After header.
	CodeSaturated ErrorCode = "saturated"
	// CodeCanceled: the computation was abandoned — a canceled job's
	// remaining batch items carry this code in their per-item error
	// bodies. (Never a top-level HTTP error: a canceled request has no
	// reader.)
	CodeCanceled ErrorCode = "canceled"
	// CodeDeadline: the request's deadline (timeout_ms or the server's
	// default timeout) expired before the solve finished; the solver
	// observed the cancellation mid-iteration and stopped. HTTP 503 —
	// the request was valid, the server ran out of time, retrying with
	// a longer budget may succeed.
	CodeDeadline ErrorCode = "deadline"
	// CodeInternal: the solve stack failed on a validated instance.
	// HTTP 500.
	CodeInternal ErrorCode = "internal"
)

// ErrorBody is the inner object of the v1 error envelope.
type ErrorBody struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// ErrorEnvelope is the body of every v1 error response.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// apiError carries an HTTP status and an ErrorCode alongside the
// message. Handlers return it through writeError; errors that are not
// apiErrors render as code "internal" at 500.
type apiError struct {
	status int
	code   ErrorCode
	msg    string
	// retryAfterSecs > 0 sets a Retry-After header (saturation).
	retryAfterSecs int
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: CodeBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) *apiError {
	return &apiError{status: http.StatusNotFound, code: CodeNotFound, msg: fmt.Sprintf(format, args...)}
}

// platformConflict keeps the historical 400 status of the
// "platform_id and platform are mutually exclusive" error while giving
// it its own machine-readable code.
func platformConflict(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: CodePlatformConflict, msg: fmt.Sprintf(format, args...)}
}

func saturated(retryAfterSecs int, format string, args ...any) *apiError {
	return &apiError{
		status:         http.StatusTooManyRequests,
		code:           CodeSaturated,
		msg:            fmt.Sprintf(format, args...),
		retryAfterSecs: retryAfterSecs,
	}
}

// writeError renders err as the v1 error envelope. Unclassified errors
// are internal server errors by definition: resolve validates
// everything client-controlled up front.
func writeError(w http.ResponseWriter, err error) {
	status, body := errorBody(err)
	var ae *apiError
	if errors.As(err, &ae) && ae.retryAfterSecs > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", ae.retryAfterSecs))
	}
	writeJSON(w, status, ErrorEnvelope{Error: body})
}

// errorBody classifies err into (status, envelope body). A deadline
// expiry maps to CodeDeadline at 503 — the request was sound, the time
// budget was not. A plain context cancellation maps to CodeCanceled:
// it only ever appears in per-item batch lines, never as a top-level
// response (a canceled request has no reader).
func errorBody(err error) (int, ErrorBody) {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae.status, ErrorBody{Code: ae.code, Message: ae.msg}
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, ErrorBody{Code: CodeDeadline, Message: err.Error()}
	case errors.Is(err, context.Canceled):
		return http.StatusInternalServerError, ErrorBody{Code: CodeCanceled, Message: err.Error()}
	}
	return http.StatusInternalServerError, ErrorBody{Code: CodeInternal, Message: err.Error()}
}

// internalError builds a 500/internal apiError (panic recovery wraps
// recovered values through this so they render as the v1 envelope).
func internalError(format string, args ...any) *apiError {
	return &apiError{status: http.StatusInternalServerError, code: CodeInternal, msg: fmt.Sprintf(format, args...)}
}

// isSaturated reports whether err is the 429/saturated refusal (the
// trigger for degraded-mode fallbacks).
func isSaturated(err error) bool {
	var ae *apiError
	return errors.As(err, &ae) && ae.code == CodeSaturated
}
